//! Synthetic BookCorpus: an endless Zipf-distributed token stream with
//! sentence and document structure.

use crate::zipf::ZipfSampler;
use gaudi_tensor::SeededRng;

/// Padding token id.
pub const PAD: u32 = 0;
/// Classification/start token id.
pub const CLS: u32 = 1;
/// Separator/end-of-sentence token id.
pub const SEP: u32 = 2;
/// MLM mask token id.
pub const MASK: u32 = 3;
/// First ordinary word id.
pub const FIRST_WORD: u32 = 4;

/// A toy vocabulary mapping word ids to printable surface forms (for
/// example programs that want to show generated text).
#[derive(Debug, Clone)]
pub struct Vocab {
    size: usize,
}

impl Vocab {
    /// Vocabulary of the given total size (including special tokens).
    pub fn new(size: usize) -> Self {
        assert!(
            size > FIRST_WORD as usize,
            "vocab must hold the special tokens"
        );
        Vocab { size }
    }

    /// Total vocabulary size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Surface form of a token id.
    pub fn surface(&self, id: u32) -> String {
        match id {
            PAD => "[PAD]".to_string(),
            CLS => "[CLS]".to_string(),
            SEP => "[SEP]".to_string(),
            MASK => "[MASK]".to_string(),
            w => format!("w{w}"),
        }
    }

    /// Tokenize a whitespace-separated string of surface forms back to ids
    /// (unknown words hash into the ordinary-word range).
    pub fn tokenize(&self, text: &str) -> Vec<u32> {
        text.split_whitespace()
            .map(|w| match w {
                "[PAD]" => PAD,
                "[CLS]" => CLS,
                "[SEP]" => SEP,
                "[MASK]" => MASK,
                w => {
                    if let Some(rest) = w.strip_prefix('w') {
                        if let Ok(id) = rest.parse::<u32>() {
                            if (id as usize) < self.size {
                                return id;
                            }
                        }
                    }
                    let mut h = 5381u32;
                    for b in w.bytes() {
                        h = h.wrapping_mul(33) ^ b as u32;
                    }
                    FIRST_WORD + h % (self.size as u32 - FIRST_WORD)
                }
            })
            .collect()
    }
}

/// An endless synthetic document stream.
pub struct SyntheticBookCorpus {
    vocab: Vocab,
    zipf: ZipfSampler,
    rng: SeededRng,
}

impl SyntheticBookCorpus {
    /// Corpus over a vocabulary of `vocab_size` tokens, seeded.
    pub fn new(vocab_size: usize, seed: u64) -> Self {
        let vocab = Vocab::new(vocab_size);
        SyntheticBookCorpus {
            zipf: ZipfSampler::new(vocab_size - FIRST_WORD as usize, 1.05),
            vocab,
            rng: SeededRng::new(seed),
        }
    }

    /// The vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Generate one document of roughly `target_tokens` tokens, structured
    /// as `[CLS] sentence [SEP] sentence [SEP] ...`.
    pub fn document(&mut self, target_tokens: usize) -> Vec<u32> {
        let mut doc = Vec::with_capacity(target_tokens + 16);
        doc.push(CLS);
        while doc.len() < target_tokens {
            let sentence_len = 5 + self.rng.below(20);
            for _ in 0..sentence_len {
                doc.push(FIRST_WORD + self.zipf.sample(&mut self.rng) as u32);
            }
            doc.push(SEP);
        }
        doc
    }

    /// A flat token stream of exactly `n` tokens (documents concatenated).
    pub fn token_stream(&mut self, n: usize) -> Vec<u32> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let doc = self.document(512.min(n - out.len() + 32));
            out.extend_from_slice(&doc);
        }
        out.truncate(n);
        out
    }

    /// Mutable access to the RNG (the batchers reuse it for masking).
    pub fn rng(&mut self) -> &mut SeededRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn documents_are_structured() {
        let mut c = SyntheticBookCorpus::new(1000, 7);
        let doc = c.document(100);
        assert_eq!(doc[0], CLS);
        assert!(doc.contains(&SEP));
        assert!(doc.iter().all(|&t| (t as usize) < 1000));
        assert!(doc.len() >= 100);
    }

    #[test]
    fn stream_has_exact_length_and_zipf_shape() {
        let mut c = SyntheticBookCorpus::new(500, 8);
        let stream = c.token_stream(20_000);
        assert_eq!(stream.len(), 20_000);
        let mut counts = vec![0usize; 500];
        for &t in &stream {
            counts[t as usize] += 1;
        }
        // The most common ordinary word should beat the 50th.
        assert!(counts[FIRST_WORD as usize] > counts[FIRST_WORD as usize + 50]);
    }

    #[test]
    fn corpus_is_deterministic() {
        let mut a = SyntheticBookCorpus::new(300, 42);
        let mut b = SyntheticBookCorpus::new(300, 42);
        assert_eq!(a.token_stream(1000), b.token_stream(1000));
    }

    #[test]
    fn vocab_roundtrip() {
        let v = Vocab::new(100);
        assert_eq!(v.surface(MASK), "[MASK]");
        assert_eq!(v.surface(42), "w42");
        assert_eq!(v.tokenize("[CLS] w42 [SEP]"), vec![CLS, 42, SEP]);
        // Unknown words land in the ordinary range deterministically.
        let t1 = v.tokenize("hello");
        let t2 = v.tokenize("hello");
        assert_eq!(t1, t2);
        assert!(t1[0] >= FIRST_WORD && (t1[0] as usize) < 100);
    }
}
