//! # gaudi-workloads
//!
//! Synthetic training workloads standing in for the BookCorpus dataset the
//! paper feeds its end-to-end BERT/GPT profiles (§3.4).
//!
//! The evaluation never trains to convergence — it measures *throughput on
//! token batches of a given shape* — so a statistically-plausible synthetic
//! stream exercises the identical code path: token frequencies follow a
//! Zipf law (as natural language does), documents are sentence-structured,
//! and the batchers implement BERT's 80/10/10 MLM masking and GPT's
//! next-token shift.

pub mod batch;
pub mod corpus;
pub mod zipf;

pub use batch::{clm_batch, mlm_batch, MlmStats};
pub use corpus::{SyntheticBookCorpus, Vocab, CLS, MASK, PAD, SEP};
pub use zipf::ZipfSampler;
