//! Zipf-distributed sampling via inverse-CDF lookup.

use gaudi_tensor::SeededRng;

/// Samples ranks `0..n` with probability proportional to `1/(rank+1)^s`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Sampler over `n` ranks with exponent `s` (natural language ≈ 1.0).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "ZipfSampler needs at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler { cdf }
    }

    /// Draw one rank.
    pub fn sample(&self, rng: &mut SeededRng) -> usize {
        let u = rng.uniform() as f64;
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_stay_in_range() {
        let z = ZipfSampler::new(100, 1.0);
        let mut rng = SeededRng::new(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn low_ranks_dominate() {
        let z = ZipfSampler::new(1000, 1.0);
        let mut rng = SeededRng::new(2);
        let n = 50_000;
        let mut counts = vec![0usize; 1000];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 should be roughly twice as frequent as rank 1, and the top
        // 10 ranks should cover a large share.
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[4]);
        let top10: usize = counts[..10].iter().sum();
        assert!(
            top10 as f64 / n as f64 > 0.3,
            "top-10 share {}",
            top10 as f64 / n as f64
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let z = ZipfSampler::new(50, 1.2);
        let mut a = SeededRng::new(9);
        let mut b = SeededRng::new(9);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }
}
