//! Batch assembly: BERT-style MLM masking (15% selected, 80/10/10) and
//! GPT-style next-token (causal LM) batches, emitted as `f32` tensors in
//! the `[batch, seq]` layout the model builders expect.

use crate::corpus::{SyntheticBookCorpus, FIRST_WORD, MASK};
use gaudi_tensor::Tensor;

/// Masking statistics of an MLM batch (for tests and logging).
#[derive(Debug, Clone, Default)]
pub struct MlmStats {
    /// Positions selected for prediction.
    pub selected: usize,
    /// Selected positions replaced by `[MASK]`.
    pub masked: usize,
    /// Selected positions replaced by a random token.
    pub randomized: usize,
    /// Selected positions left unchanged.
    pub unchanged: usize,
}

/// Build one MLM batch: returns `(input_ids, labels, stats)`, both tensors
/// `[batch, seq]`. Labels hold the *original* token at every position (the
/// model builders compute loss over all positions; the selection statistics
/// are what matter for throughput shape).
pub fn mlm_batch(
    corpus: &mut SyntheticBookCorpus,
    batch: usize,
    seq: usize,
) -> (Tensor, Tensor, MlmStats) {
    let vocab = corpus.vocab().size() as u32;
    let tokens = corpus.token_stream(batch * seq);
    let labels: Vec<f32> = tokens.iter().map(|&t| t as f32).collect();
    let mut inputs: Vec<f32> = labels.clone();
    let mut stats = MlmStats::default();

    for (i, &tok) in tokens.iter().enumerate() {
        if tok < FIRST_WORD {
            continue; // never mask special tokens
        }
        let rng = corpus.rng();
        if rng.uniform() < 0.15 {
            stats.selected += 1;
            let r = rng.uniform();
            if r < 0.8 {
                inputs[i] = MASK as f32;
                stats.masked += 1;
            } else if r < 0.9 {
                inputs[i] = (FIRST_WORD + rng.below((vocab - FIRST_WORD) as usize) as u32) as f32;
                stats.randomized += 1;
            } else {
                stats.unchanged += 1;
            }
        }
    }

    let ids = Tensor::from_vec(&[batch, seq], inputs).expect("batch shape");
    let labels = Tensor::from_vec(&[batch, seq], labels).expect("batch shape");
    (ids, labels, stats)
}

/// Build one causal-LM batch: `(input_ids, labels)` where labels are the
/// inputs shifted left by one token.
pub fn clm_batch(corpus: &mut SyntheticBookCorpus, batch: usize, seq: usize) -> (Tensor, Tensor) {
    let tokens = corpus.token_stream(batch * seq + 1);
    let inputs: Vec<f32> = tokens[..batch * seq].iter().map(|&t| t as f32).collect();
    let labels: Vec<f32> = tokens[1..=batch * seq].iter().map(|&t| t as f32).collect();
    (
        Tensor::from_vec(&[batch, seq], inputs).expect("batch shape"),
        Tensor::from_vec(&[batch, seq], labels).expect("batch shape"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{CLS, SEP};

    #[test]
    fn mlm_batch_shapes_and_masking_rates() {
        let mut c = SyntheticBookCorpus::new(1000, 3);
        let (ids, labels, stats) = mlm_batch(&mut c, 8, 256);
        assert_eq!(ids.dims(), &[8, 256]);
        assert_eq!(labels.dims(), &[8, 256]);
        let total = 8 * 256;
        let frac = stats.selected as f64 / total as f64;
        assert!((0.10..0.20).contains(&frac), "selection rate {frac}");
        // 80/10/10 split within selected, loosely.
        assert!(stats.masked > stats.randomized);
        assert!(stats.masked > stats.unchanged);
        assert_eq!(
            stats.selected,
            stats.masked + stats.randomized + stats.unchanged
        );
    }

    #[test]
    fn labels_preserve_originals_under_masking() {
        let mut c = SyntheticBookCorpus::new(500, 4);
        let (ids, labels, _) = mlm_batch(&mut c, 2, 128);
        let mut masked_positions = 0;
        for i in 0..ids.numel() {
            if ids.data()[i] == MASK as f32 {
                masked_positions += 1;
                assert_ne!(labels.data()[i], MASK as f32, "label must be the original");
            }
        }
        assert!(masked_positions > 0);
    }

    #[test]
    fn special_tokens_never_masked() {
        let mut c = SyntheticBookCorpus::new(500, 5);
        let (ids, labels, _) = mlm_batch(&mut c, 2, 512);
        for i in 0..ids.numel() {
            let orig = labels.data()[i];
            if orig == CLS as f32 || orig == SEP as f32 {
                assert_eq!(ids.data()[i], orig);
            }
        }
    }

    #[test]
    fn clm_labels_are_shifted_inputs() {
        let mut c = SyntheticBookCorpus::new(500, 6);
        let (ids, labels) = clm_batch(&mut c, 2, 64);
        // Within each contiguous region of the stream the shift holds
        // globally (the batch is cut from one stream).
        for i in 0..(2 * 64 - 1) {
            assert_eq!(labels.data()[i], ids.data()[i + 1]);
        }
    }
}
