//! The dense tensor type and its structural operations.

use crate::dtype::{quantize, DType};
use crate::error::{Result, TensorError};
use crate::rng::SeededRng;
use crate::shape::Shape;

/// A dense, row-major, CPU-resident tensor.
///
/// Values are held as `f32`; [`DType`] records the storage format charged by
/// the simulator's memory model (and can be materialized with
/// [`Tensor::quantized`]).
///
/// ```
/// use gaudi_tensor::{ops, Tensor};
///
/// let a = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])?;
/// let b = Tensor::ones(&[3, 2])?;
/// let c = ops::matmul(&a, &b)?;
/// assert_eq!(c.dims(), &[2, 2]);
/// assert_eq!(c.data(), &[6.0, 6.0, 15.0, 15.0]);
/// # Ok::<(), gaudi_tensor::TensorError>(())
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    dtype: DType,
    data: Vec<f32>,
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor({} {}", self.shape, self.dtype)?;
        if self.numel() <= 8 {
            write!(f, " {:?}", self.data)?;
        }
        write!(f, ")")
    }
}

impl Tensor {
    /// Build a tensor from a flat row-major buffer.
    pub fn from_vec(dims: &[usize], data: Vec<f32>) -> Result<Self> {
        let shape = Shape::new(dims)?;
        if shape.numel() != data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.numel(),
                actual: data.len(),
            });
        }
        Ok(Tensor {
            shape,
            dtype: DType::F32,
            data,
        })
    }

    /// All-zeros tensor.
    pub fn zeros(dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims)?;
        Ok(Tensor {
            shape,
            dtype: DType::F32,
            data: vec![0.0; shape.numel()],
        })
    }

    /// All-ones tensor (`torch.ones_like` analog when given another tensor's
    /// dims; used by FAVOR's normalizer in Listing 1 of the paper).
    pub fn ones(dims: &[usize]) -> Result<Self> {
        Self::full(dims, 1.0)
    }

    /// Constant-filled tensor.
    pub fn full(dims: &[usize], value: f32) -> Result<Self> {
        let shape = Shape::new(dims)?;
        Ok(Tensor {
            shape,
            dtype: DType::F32,
            data: vec![value; shape.numel()],
        })
    }

    /// Tensor of standard-normal samples scaled by `std`.
    pub fn randn(dims: &[usize], std: f32, rng: &mut SeededRng) -> Result<Self> {
        let shape = Shape::new(dims)?;
        let mut data = vec![0.0f32; shape.numel()];
        rng.fill_normal(&mut data, std);
        Ok(Tensor {
            shape,
            dtype: DType::F32,
            data,
        })
    }

    /// A `ones_like` convenience mirroring `torch.ones_like`.
    pub fn ones_like(other: &Tensor) -> Self {
        Tensor {
            shape: other.shape,
            dtype: other.dtype,
            data: vec![1.0; other.numel()],
        }
    }

    /// A `zeros_like` convenience.
    pub fn zeros_like(other: &Tensor) -> Self {
        Tensor {
            shape: other.shape,
            dtype: other.dtype,
            data: vec![0.0; other.numel()],
        }
    }

    /// Tensor filled with `0, 1, 2, ...` (useful in tests).
    pub fn arange(n: usize) -> Self {
        Tensor {
            shape: Shape::of(&[n.max(1)]),
            dtype: DType::F32,
            data: (0..n.max(1)).map(|i| i as f32).collect(),
        }
    }

    /// Shape accessor.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimensions as a slice.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// Storage dtype.
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// Bytes this tensor occupies in the simulated memory system.
    pub fn storage_bytes(&self) -> usize {
        self.numel() * self.dtype.size_of()
    }

    /// Borrow the underlying buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the underlying buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor, yielding its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Return a copy re-tagged (and value-rounded) to the given dtype.
    pub fn quantized(&self, dtype: DType) -> Tensor {
        let data = self.data.iter().map(|&x| quantize(x, dtype)).collect();
        Tensor {
            shape: self.shape,
            dtype,
            data,
        }
    }

    /// Re-tag the dtype without changing values (affects only the memory
    /// model's byte accounting).
    pub fn with_dtype(mut self, dtype: DType) -> Tensor {
        self.dtype = dtype;
        self
    }

    /// Element access by multi-dimensional index.
    pub fn at(&self, coords: &[usize]) -> f32 {
        debug_assert_eq!(coords.len(), self.shape.rank());
        let strides = self.shape.strides();
        let idx: usize = coords.iter().zip(strides.iter()).map(|(c, s)| c * s).sum();
        self.data[idx]
    }

    /// Reshape to a new shape with the same element count.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor> {
        let shape = Shape::new(dims)?;
        if shape.numel() != self.numel() {
            return Err(TensorError::ReshapeMismatch {
                from: self.shape,
                to: shape,
            });
        }
        Ok(Tensor {
            shape,
            dtype: self.dtype,
            data: self.data.clone(),
        })
    }

    /// Transpose (swap) the last two dimensions, materializing the result.
    /// Mirrors `tensor.transpose(-2, -1)` in the paper's FAVOR listing.
    pub fn transpose_last2(&self) -> Result<Tensor> {
        let rank = self.shape.rank();
        if rank < 2 {
            return Err(TensorError::AxisOutOfRange { axis: 1, rank });
        }
        let (batch, m, n) = self.shape.as_batched_matrix().unwrap();
        let mut out_dims: Vec<usize> = self.dims().to_vec();
        out_dims.swap(rank - 2, rank - 1);
        let mut out = vec![0.0f32; self.numel()];
        for b in 0..batch {
            let src = &self.data[b * m * n..(b + 1) * m * n];
            let dst = &mut out[b * m * n..(b + 1) * m * n];
            for i in 0..m {
                for j in 0..n {
                    dst[j * m + i] = src[i * n + j];
                }
            }
        }
        Tensor::from_vec(&out_dims, out)
    }

    /// Split the last dimension into two equal halves, returning `(a, b)`.
    /// This is the structural half of GLU: `glu(x) = a * sigmoid(b)`.
    pub fn split_last_dim(&self) -> Result<(Tensor, Tensor)> {
        let d = self.shape.last_dim();
        if !d.is_multiple_of(2) {
            return Err(TensorError::OddSplitDim { dim: d });
        }
        let half = d / 2;
        let rows = self.shape.rows();
        let mut a = vec![0.0f32; rows * half];
        let mut b = vec![0.0f32; rows * half];
        for r in 0..rows {
            let row = &self.data[r * d..(r + 1) * d];
            a[r * half..(r + 1) * half].copy_from_slice(&row[..half]);
            b[r * half..(r + 1) * half].copy_from_slice(&row[half..]);
        }
        let mut dims: Vec<usize> = self.dims().to_vec();
        *dims.last_mut().unwrap() = half;
        Ok((Tensor::from_vec(&dims, a)?, Tensor::from_vec(&dims, b)?))
    }

    /// Maximum absolute difference against another tensor of identical shape.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(
            self.shape, other.shape,
            "max_abs_diff requires equal shapes"
        );
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max)
    }

    /// True if every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let z = Tensor::zeros(&[2, 3]).unwrap();
        assert_eq!(z.numel(), 6);
        assert!(z.data().iter().all(|&x| x == 0.0));
        let o = Tensor::ones(&[4]).unwrap();
        assert!(o.data().iter().all(|&x| x == 1.0));
        let f = Tensor::full(&[2, 2], 3.5).unwrap();
        assert_eq!(f.at(&[1, 1]), 3.5);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(&[2, 2], vec![1.0; 3]).is_err());
        assert!(Tensor::from_vec(&[2, 2], vec![1.0; 4]).is_ok());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::arange(6).reshape(&[2, 3]).unwrap();
        assert_eq!(t.at(&[1, 2]), 5.0);
        assert!(t.reshape(&[4]).is_err());
    }

    #[test]
    fn transpose_last2_2d() {
        let t = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let tt = t.transpose_last2().unwrap();
        assert_eq!(tt.dims(), &[3, 2]);
        assert_eq!(tt.at(&[0, 1]), 4.0);
        assert_eq!(tt.at(&[2, 0]), 3.0);
    }

    #[test]
    fn transpose_last2_batched_and_involutive() {
        let mut rng = SeededRng::new(5);
        let t = Tensor::randn(&[3, 4, 5], 1.0, &mut rng).unwrap();
        let back = t.transpose_last2().unwrap().transpose_last2().unwrap();
        assert_eq!(t.max_abs_diff(&back), 0.0);
    }

    #[test]
    fn split_last_dim_halves() {
        let t = Tensor::from_vec(&[2, 4], vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]).unwrap();
        let (a, b) = t.split_last_dim().unwrap();
        assert_eq!(a.data(), &[0.0, 1.0, 4.0, 5.0]);
        assert_eq!(b.data(), &[2.0, 3.0, 6.0, 7.0]);
        assert!(Tensor::zeros(&[2, 3]).unwrap().split_last_dim().is_err());
    }

    #[test]
    fn storage_bytes_follow_dtype() {
        let t = Tensor::zeros(&[10]).unwrap();
        assert_eq!(t.storage_bytes(), 40);
        assert_eq!(t.quantized(DType::BF16).storage_bytes(), 20);
    }

    #[test]
    fn quantized_bf16_rounds_values() {
        let t = Tensor::from_vec(&[2], vec![1.0, 1.0 + 1e-4]).unwrap();
        let q = t.quantized(DType::BF16);
        assert_eq!(q.data()[0], 1.0);
        assert_eq!(q.data()[1], 1.0); // 1.0001 rounds to 1.0 in bf16
    }

    #[test]
    fn ones_like_matches_shape_and_dtype() {
        let t = Tensor::zeros(&[2, 5]).unwrap().with_dtype(DType::BF16);
        let o = Tensor::ones_like(&t);
        assert_eq!(o.dims(), &[2, 5]);
        assert_eq!(o.dtype(), DType::BF16);
        assert!(o.data().iter().all(|&x| x == 1.0));
    }
}
