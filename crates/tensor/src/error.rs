//! Error type shared by every fallible tensor operation.

use crate::shape::Shape;
use std::fmt;

/// Convenient alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TensorError>;

/// Errors produced by tensor construction and tensor operations.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorError {
    /// A shape with zero dimensions or more than five dimensions was
    /// requested. Gaudi's TPC tensor-addressing hardware supports 1–5 dims.
    RankOutOfRange { rank: usize },
    /// The element count implied by a shape does not match the length of the
    /// provided buffer.
    LengthMismatch { expected: usize, actual: usize },
    /// Two operand shapes cannot be broadcast together.
    BroadcastMismatch { lhs: Shape, rhs: Shape },
    /// The inner dimensions of a matrix product do not agree, or an operand
    /// is not at least two-dimensional.
    MatmulMismatch { lhs: Shape, rhs: Shape },
    /// A reshape was requested to a shape with a different element count.
    ReshapeMismatch { from: Shape, to: Shape },
    /// An axis index was out of range for the tensor's rank.
    AxisOutOfRange { axis: usize, rank: usize },
    /// A dimension that must be even (e.g. GLU's gated split) was odd.
    OddSplitDim { dim: usize },
    /// Division (or another op) encountered an empty tensor where data was
    /// required.
    EmptyTensor,
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::RankOutOfRange { rank } => {
                write!(f, "tensor rank {rank} outside the supported 1..=5 range")
            }
            TensorError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "buffer of {actual} elements does not fill shape of {expected}"
                )
            }
            TensorError::BroadcastMismatch { lhs, rhs } => {
                write!(f, "shapes {lhs} and {rhs} cannot be broadcast together")
            }
            TensorError::MatmulMismatch { lhs, rhs } => {
                write!(f, "matmul shapes {lhs} x {rhs} are incompatible")
            }
            TensorError::ReshapeMismatch { from, to } => {
                write!(f, "cannot reshape {from} into {to}: element counts differ")
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
            TensorError::OddSplitDim { dim } => {
                write!(f, "cannot split dimension of size {dim} into two halves")
            }
            TensorError::EmptyTensor => write!(f, "operation requires a non-empty tensor"),
        }
    }
}

impl std::error::Error for TensorError {}
