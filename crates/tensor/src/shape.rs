//! Tensor shapes limited to the 1–5 dimensions the Gaudi TPC can address.

use crate::error::{Result, TensorError};
use std::fmt;

/// Maximum tensor rank supported by Gaudi's tensor-addressing hardware.
pub const MAX_RANK: usize = 5;

/// A row-major tensor shape of rank 1..=5.
///
/// Stored inline (no heap allocation) since the rank is bounded.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: [usize; MAX_RANK],
    rank: usize,
}

impl Shape {
    /// Build a shape, validating the rank bound.
    pub fn new(dims: &[usize]) -> Result<Self> {
        if dims.is_empty() || dims.len() > MAX_RANK {
            return Err(TensorError::RankOutOfRange { rank: dims.len() });
        }
        let mut d = [1usize; MAX_RANK];
        d[..dims.len()].copy_from_slice(dims);
        Ok(Shape {
            dims: d,
            rank: dims.len(),
        })
    }

    /// Build a shape, panicking on an invalid rank. Intended for literals in
    /// tests and examples where the rank is statically obvious.
    pub fn of(dims: &[usize]) -> Self {
        Self::new(dims).expect("valid shape literal")
    }

    /// The dimensions as a slice of length `rank()`.
    pub fn dims(&self) -> &[usize] {
        &self.dims[..self.rank]
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.dims().iter().product()
    }

    /// Size of dimension `axis`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims()[axis]
    }

    /// Row-major strides (in elements).
    pub fn strides(&self) -> [usize; MAX_RANK] {
        let mut s = [0usize; MAX_RANK];
        let mut acc = 1usize;
        for i in (0..self.rank).rev() {
            s[i] = acc;
            acc *= self.dims[i];
        }
        s
    }

    /// The last dimension (innermost, contiguous).
    pub fn last_dim(&self) -> usize {
        self.dims[self.rank - 1]
    }

    /// Product of all dimensions except the last: the number of contiguous
    /// rows, which is how the TPC tiles row-wise kernels.
    pub fn rows(&self) -> usize {
        self.numel() / self.last_dim()
    }

    /// NumPy-style broadcast of two shapes (align on trailing axes; a
    /// dimension of 1 stretches).
    pub fn broadcast(a: &Shape, b: &Shape) -> Result<Shape> {
        let rank = a.rank.max(b.rank);
        let mut out = [1usize; MAX_RANK];
        for i in 0..rank {
            let da = if i < a.rank {
                a.dims[a.rank - 1 - i]
            } else {
                1
            };
            let db = if i < b.rank {
                b.dims[b.rank - 1 - i]
            } else {
                1
            };
            out[rank - 1 - i] = if da == db {
                da
            } else if da == 1 {
                db
            } else if db == 1 {
                da
            } else {
                return Err(TensorError::BroadcastMismatch { lhs: *a, rhs: *b });
            };
        }
        let mut d = [1usize; MAX_RANK];
        d[..rank].copy_from_slice(&out[..rank]);
        Ok(Shape { dims: d, rank })
    }

    /// Interpret the shape as a batch of matrices: `([batch...], m, n)`.
    /// Rank-1 shapes are rejected; rank-2 shapes have an empty batch.
    pub fn as_batched_matrix(&self) -> Option<(usize, usize, usize)> {
        if self.rank < 2 {
            return None;
        }
        let m = self.dims[self.rank - 2];
        let n = self.dims[self.rank - 1];
        let batch: usize = self.dims()[..self.rank - 2].iter().product();
        Some((batch, m, n))
    }

    /// Convert a flat row-major element index into per-axis coordinates.
    pub fn unravel(&self, mut idx: usize) -> [usize; MAX_RANK] {
        let mut coords = [0usize; MAX_RANK];
        for i in (0..self.rank).rev() {
            coords[i] = idx % self.dims[i];
            idx /= self.dims[i];
        }
        coords
    }

    /// Map coordinates in this (broadcast target) shape to a flat index in a
    /// source shape that broadcasts to it.
    pub fn broadcast_source_index(&self, src: &Shape, coords: &[usize; MAX_RANK]) -> usize {
        let strides = src.strides();
        let offset = self.rank - src.rank;
        let mut idx = 0usize;
        for i in 0..src.rank {
            let c = coords[i + offset];
            let d = src.dims[i];
            let c = if d == 1 { 0 } else { c };
            idx += c * strides[i];
        }
        idx
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims().iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let s = Shape::of(&[2, 3, 4]);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.dims(), &[2, 3, 4]);
        assert_eq!(s.last_dim(), 4);
        assert_eq!(s.rows(), 6);
    }

    #[test]
    fn rejects_bad_ranks() {
        assert!(Shape::new(&[]).is_err());
        assert!(Shape::new(&[1, 1, 1, 1, 1, 1]).is_err());
        assert!(Shape::new(&[1, 1, 1, 1, 1]).is_ok());
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::of(&[2, 3, 4]);
        assert_eq!(&s.strides()[..3], &[12, 4, 1]);
    }

    #[test]
    fn broadcasting_rules() {
        let a = Shape::of(&[4, 1, 3]);
        let b = Shape::of(&[2, 3]);
        let c = Shape::broadcast(&a, &b).unwrap();
        assert_eq!(c.dims(), &[4, 2, 3]);

        let x = Shape::of(&[3]);
        let y = Shape::of(&[5, 3]);
        assert_eq!(Shape::broadcast(&x, &y).unwrap().dims(), &[5, 3]);

        let bad = Shape::broadcast(&Shape::of(&[2, 3]), &Shape::of(&[4, 3]));
        assert!(bad.is_err());
    }

    #[test]
    fn unravel_roundtrip() {
        let s = Shape::of(&[2, 3, 4]);
        for idx in 0..s.numel() {
            let c = s.unravel(idx);
            let strides = s.strides();
            let back: usize = (0..3).map(|i| c[i] * strides[i]).sum();
            assert_eq!(back, idx);
        }
    }

    #[test]
    fn batched_matrix_view() {
        assert_eq!(Shape::of(&[6, 4]).as_batched_matrix(), Some((1, 6, 4)));
        assert_eq!(
            Shape::of(&[2, 3, 6, 4]).as_batched_matrix(),
            Some((6, 6, 4))
        );
        assert_eq!(Shape::of(&[7]).as_batched_matrix(), None);
    }

    #[test]
    fn broadcast_source_index_maps_stretched_axes_to_zero() {
        let out = Shape::of(&[4, 2, 3]);
        let src = Shape::of(&[2, 3]);
        let coords = out.unravel(3 * 2 + 1); // [1, 0, 1] in 4x2x3? compute directly
        let idx = out.broadcast_source_index(&src, &coords);
        // coords = unravel(7) = [1,0,1]; src index = 0*3 + 1 = 1
        assert_eq!(idx, 1);
    }
}
