//! # gaudi-tensor
//!
//! A small, self-contained CPU tensor library that serves as the *numeric
//! substrate* of the Gaudi simulator workspace.
//!
//! The Habana Gaudi processor accepts tensors with **1 to 5 dimensions** (a
//! constraint of its TPC tensor-addressing hardware); this library enforces
//! the same limit so that any graph that executes here would also be
//! expressible on the real device.
//!
//! Compute is always performed in `f32`. Lower-precision dtypes (`bf16`,
//! integer types) are emulated: values are rounded through the narrow format
//! on request and the dtype determines how many bytes the simulator's memory
//! model charges for the tensor.
//!
//! The library provides exactly the operator set exercised by the paper
//! (Table 1 plus the operators the Transformer builders need):
//! element-wise arithmetic, (batched) matrix multiplication, reductions,
//! numerically-stable softmax, layer normalization, and the activation
//! functions evaluated in Figure 7 (ReLU, LeakyReLU, GELU, GLU) plus ELU
//! (Linear Transformer) and the exponential map (Performer).

pub mod dtype;
pub mod error;
pub mod ops;
pub mod parallel;
pub mod rng;
pub mod shape;
pub mod tensor;

pub use dtype::DType;
pub use error::{Result, TensorError};
pub use rng::SeededRng;
pub use shape::Shape;
pub use tensor::Tensor;
