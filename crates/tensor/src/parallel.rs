//! Minimal data-parallel helpers built on `std::thread::scope`.
//!
//! The workspace carries no external threading crates, so this module
//! provides the two primitives the tensor kernels need: a parallel
//! mutable-chunk map and a parallel row loop. Both fall back to sequential
//! execution for small inputs, where thread spawn overhead would dominate.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A mutable slice that parallel work items write to in *disjoint* regions.
///
/// This is the classic "split borrow by convention" escape hatch: the caller
/// guarantees that no two concurrent work items touch overlapping element
/// ranges, which is what makes the `Sync` impl sound.
pub struct DisjointSlice<'a>(UnsafeCell<&'a mut [f32]>);

// SAFETY: soundness is delegated to the caller's disjointness guarantee; the
// type itself adds no interior aliasing.
unsafe impl Send for DisjointSlice<'_> {}
unsafe impl Sync for DisjointSlice<'_> {}

impl<'a> DisjointSlice<'a> {
    /// Wrap a mutable slice for disjoint parallel writes.
    pub fn new(data: &'a mut [f32]) -> Self {
        DisjointSlice(UnsafeCell::new(data))
    }

    /// Obtain a mutable view of `range`.
    ///
    /// # Safety
    /// The caller must ensure no other live view overlaps `range`.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn range(&self, range: std::ops::Range<usize>) -> &mut [f32] {
        &mut (&mut *self.0.get())[range]
    }
}

/// Number of worker threads to use for data-parallel kernels.
pub fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Below this many elements, run sequentially.
const PAR_THRESHOLD: usize = 1 << 15;

/// Apply `f(chunk_start_index, chunk)` to disjoint chunks of `data` in
/// parallel.
pub fn par_chunks_mut<T, F>(data: &mut [T], min_chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let len = data.len();
    if len == 0 {
        return;
    }
    let threads = num_threads();
    if len < PAR_THRESHOLD || threads <= 1 {
        f(0, data);
        return;
    }
    let chunk = (len / threads).max(min_chunk).max(1);
    std::thread::scope(|s| {
        let mut start = 0usize;
        for piece in data.chunks_mut(chunk) {
            let begin = start;
            start += piece.len();
            let f = &f;
            s.spawn(move || f(begin, piece));
        }
    });
}

/// Run `f(i)` for `i in 0..n` in parallel, dynamically balancing via an
/// atomic work counter. `f` must be safe to call concurrently for distinct
/// indices.
pub fn par_for<F>(n: usize, grain: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    if n == 0 {
        return;
    }
    let threads = num_threads().min(n);
    if threads <= 1 || n * grain.max(1) < 4 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    let counter = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            let counter = &counter;
            let f = &f;
            s.spawn(move || loop {
                let i = counter.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                f(i);
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_chunks_covers_every_element_once() {
        let mut data = vec![0u32; 100_000];
        par_chunks_mut(&mut data, 1, |start, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = (start + i) as u32;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as u32);
        }
    }

    #[test]
    fn par_chunks_small_input_sequential_path() {
        let mut data = vec![1u8; 16];
        par_chunks_mut(&mut data, 1, |_, chunk| {
            for v in chunk {
                *v += 1;
            }
        });
        assert!(data.iter().all(|&v| v == 2));
    }

    #[test]
    fn par_for_visits_all_indices() {
        let n = 10_000;
        let sum = AtomicU64::new(0);
        par_for(n, 100, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), (n as u64 - 1) * n as u64 / 2);
    }

    #[test]
    fn par_for_zero_items_is_noop() {
        par_for(0, 1, |_| panic!("must not be called"));
    }
}
