//! Deterministic random number generation for weights and workloads.
//!
//! Every stochastic component in the workspace (weight init, Performer
//! feature matrices, synthetic corpora) draws from a [`SeededRng`] so that
//! experiments are exactly reproducible run-to-run.

/// A seeded RNG with the distributions the workspace needs.
///
/// The generator is a self-contained xoshiro256++ (Blackman & Vigna) whose
/// state is expanded from the 64-bit seed with splitmix64 — no external
/// crates, identical streams on every platform. Gaussian sampling is
/// implemented with the Box–Muller transform.
pub struct SeededRng {
    state: [u64; 4],
    /// Cached second output of the last Box–Muller draw.
    spare: Option<f32>,
}

impl SeededRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        // splitmix64 expansion, the canonical xoshiro seeding procedure.
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        SeededRng {
            state: [next(), next(), next(), next()],
            spare: None,
        }
    }

    /// Next raw 64-bit output (xoshiro256++).
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f32 {
        // Top 24 bits give every representable f32 step in [0, 1).
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is empty");
        // Modulo bias is negligible for the n (vocab sizes, ranks) used here.
        (self.next_u64() % n as u64) as usize
    }

    /// Standard normal sample via Box–Muller.
    pub fn normal(&mut self) -> f32 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Avoid ln(0).
        let u1 = loop {
            let u = self.uniform();
            if u > f32::EPSILON {
                break u;
            }
        };
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.normal()
    }

    /// Fill a buffer with standard-normal samples scaled by `std`.
    pub fn fill_normal(&mut self, buf: &mut [f32], std: f32) {
        for v in buf {
            *v = self.normal() * std;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SeededRng::new(42);
        let mut b = SeededRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.normal(), b.normal());
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4);
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = SeededRng::new(7);
        let n = 100_000;
        let mut sum = 0.0f64;
        let mut sumsq = 0.0f64;
        for _ in 0..n {
            let x = rng.normal() as f64;
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }

    #[test]
    fn uniform_range_respects_bounds() {
        let mut rng = SeededRng::new(3);
        for _ in 0..1000 {
            let x = rng.uniform_range(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SeededRng::new(9);
        for _ in 0..1000 {
            assert!(rng.below(17) < 17);
        }
    }
}
