//! Deterministic random number generation for weights and workloads.
//!
//! Every stochastic component in the workspace (weight init, Performer
//! feature matrices, synthetic corpora) draws from a [`SeededRng`] so that
//! experiments are exactly reproducible run-to-run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded RNG with the distributions the workspace needs.
///
/// Gaussian sampling is implemented with the Box–Muller transform (the
/// approved `rand` crate does not bundle `rand_distr`).
pub struct SeededRng {
    inner: StdRng,
    /// Cached second output of the last Box–Muller draw.
    spare: Option<f32>,
}

impl SeededRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SeededRng { inner: StdRng::seed_from_u64(seed), spare: None }
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f32 {
        self.inner.gen::<f32>()
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        self.inner.gen_range(0..n)
    }

    /// Standard normal sample via Box–Muller.
    pub fn normal(&mut self) -> f32 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Avoid ln(0).
        let u1 = loop {
            let u = self.uniform();
            if u > f32::EPSILON {
                break u;
            }
        };
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.normal()
    }

    /// Fill a buffer with standard-normal samples scaled by `std`.
    pub fn fill_normal(&mut self, buf: &mut [f32], std: f32) {
        for v in buf {
            *v = self.normal() * std;
        }
    }

    /// Access the underlying `rand` RNG for ad-hoc draws.
    pub fn raw(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SeededRng::new(42);
        let mut b = SeededRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.normal(), b.normal());
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4);
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = SeededRng::new(7);
        let n = 100_000;
        let mut sum = 0.0f64;
        let mut sumsq = 0.0f64;
        for _ in 0..n {
            let x = rng.normal() as f64;
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }

    #[test]
    fn uniform_range_respects_bounds() {
        let mut rng = SeededRng::new(3);
        for _ in 0..1000 {
            let x = rng.uniform_range(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SeededRng::new(9);
        for _ in 0..1000 {
            assert!(rng.below(17) < 17);
        }
    }
}
