//! Data types supported by the Gaudi TPC SIMD datapath.
//!
//! The TPC vector unit is 2048 bits wide and natively operates on `float`,
//! `bfloat16`, `INT32`, `INT16` and `INT8` lanes (see §2.2 of the paper).
//! Compute in this crate is always carried out in `f32`; the dtype records
//! the *storage* format, which is what the simulator's memory-traffic model
//! charges for, and provides rounding emulation for `bf16`.

/// Element storage formats of the Gaudi SIMD datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DType {
    /// IEEE-754 single precision, 4 bytes.
    #[default]
    F32,
    /// Brain floating point: f32 with a truncated 8-bit mantissa, 2 bytes.
    BF16,
    /// 32-bit signed integer.
    I32,
    /// 16-bit signed integer.
    I16,
    /// 8-bit signed integer.
    I8,
}

impl DType {
    /// Storage size of one element in bytes.
    pub const fn size_of(self) -> usize {
        match self {
            DType::F32 | DType::I32 => 4,
            DType::BF16 | DType::I16 => 2,
            DType::I8 => 1,
        }
    }

    /// Number of elements of this dtype that fit in one 2048-bit TPC vector
    /// register.
    pub const fn lanes_per_vector(self) -> usize {
        2048 / 8 / self.size_of()
    }

    /// Human-readable name matching SynapseAI nomenclature.
    pub const fn name(self) -> &'static str {
        match self {
            DType::F32 => "float32",
            DType::BF16 => "bfloat16",
            DType::I32 => "int32",
            DType::I16 => "int16",
            DType::I8 => "int8",
        }
    }
}

impl std::fmt::Display for DType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Round an `f32` through the `bf16` storage format (round-to-nearest-even),
/// returning the value that a load of the stored `bf16` would produce.
pub fn round_bf16(x: f32) -> f32 {
    if x.is_nan() {
        return f32::NAN;
    }
    let bits = x.to_bits();
    // Round to nearest even on the 16 truncated mantissa bits.
    let round_bit = 0x0000_8000u32;
    let lsb = (bits >> 16) & 1;
    let rounded = bits.wrapping_add(0x0000_7FFF + lsb) & 0xFFFF_0000;
    // Guard against rounding a finite value into infinity being silently odd:
    // that is in fact what bf16 hardware does, so we keep it.
    let _ = round_bit;
    f32::from_bits(rounded)
}

/// Quantize a value through a given storage dtype.
///
/// Integer dtypes saturate at their representable range, mirroring the TPC
/// convert-with-saturation intrinsics.
pub fn quantize(x: f32, dtype: DType) -> f32 {
    match dtype {
        DType::F32 => x,
        DType::BF16 => round_bf16(x),
        DType::I32 => saturate(x, i32::MIN as f32, i32::MAX as f32),
        DType::I16 => saturate(x, i16::MIN as f32, i16::MAX as f32),
        DType::I8 => saturate(x, i8::MIN as f32, i8::MAX as f32),
    }
}

fn saturate(x: f32, lo: f32, hi: f32) -> f32 {
    if x.is_nan() {
        0.0
    } else {
        x.round().clamp(lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_lanes() {
        assert_eq!(DType::F32.size_of(), 4);
        assert_eq!(DType::BF16.size_of(), 2);
        assert_eq!(DType::I8.size_of(), 1);
        assert_eq!(DType::F32.lanes_per_vector(), 64);
        assert_eq!(DType::BF16.lanes_per_vector(), 128);
        assert_eq!(DType::I8.lanes_per_vector(), 256);
    }

    #[test]
    fn bf16_roundtrip_exact_for_small_integers() {
        for i in -256..=256 {
            let x = i as f32;
            assert_eq!(round_bf16(x), x, "{x} should be exactly representable");
        }
    }

    #[test]
    fn bf16_relative_error_bound() {
        // bf16 has 8 mantissa bits, so relative error <= 2^-8.
        let values = [1.0f32, 3.25f32, 1e-3, 1e6, 123.456, 0.333_333];
        for &v in &values {
            let r = round_bf16(v);
            assert!(((r - v) / v).abs() <= 1.0 / 256.0, "v={v} r={r}");
        }
    }

    #[test]
    fn bf16_preserves_sign_and_nan() {
        assert!(round_bf16(f32::NAN).is_nan());
        assert_eq!(round_bf16(-2.0), -2.0);
        assert_eq!(round_bf16(0.0), 0.0);
    }

    #[test]
    fn integer_quantization_saturates() {
        assert_eq!(quantize(300.0, DType::I8), 127.0);
        assert_eq!(quantize(-300.0, DType::I8), -128.0);
        assert_eq!(quantize(12.4, DType::I8), 12.0);
        assert_eq!(quantize(70000.0, DType::I16), 32767.0);
        assert_eq!(quantize(f32::NAN, DType::I32), 0.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(DType::BF16.to_string(), "bfloat16");
        assert_eq!(DType::F32.to_string(), "float32");
    }
}
