//! Activation functions evaluated in the paper (Figure 7) plus the
//! attention feature maps.
//!
//! * ReLU, LeakyReLU, GELU, GLU — the Figure 7 sweep;
//! * ELU — Linear Transformer's `φ(x) = elu(x) + 1` feature map;
//! * sigmoid / tanh — building blocks.

use crate::error::Result;
use crate::ops::elementwise::{mul, unary_op};
use crate::tensor::Tensor;

/// Rectified linear unit.
pub fn relu(a: &Tensor) -> Tensor {
    unary_op(a, |x| x.max(0.0))
}

/// Leaky ReLU with the PyTorch default negative slope of 0.01.
pub fn leaky_relu(a: &Tensor, negative_slope: f32) -> Tensor {
    unary_op(a, move |x| if x >= 0.0 { x } else { negative_slope * x })
}

/// Gaussian Error Linear Unit, tanh approximation (as used by BERT/GPT-2).
pub fn gelu(a: &Tensor) -> Tensor {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    unary_op(a, |x| {
        0.5 * x * (1.0 + (C * (x + 0.044_715 * x * x * x)).tanh())
    })
}

/// Exponential linear unit with alpha = 1.
pub fn elu(a: &Tensor) -> Tensor {
    unary_op(a, |x| if x > 0.0 { x } else { x.exp() - 1.0 })
}

/// Logistic sigmoid.
pub fn sigmoid(a: &Tensor) -> Tensor {
    unary_op(a, |x| 1.0 / (1.0 + (-x).exp()))
}

/// Hyperbolic tangent.
pub fn tanh(a: &Tensor) -> Tensor {
    unary_op(a, f32::tanh)
}

/// Gated linear unit over the last axis: split the last dimension in half
/// into `(a, b)` and return `a * sigmoid(b)`. Halves the last dimension.
pub fn glu(a: &Tensor) -> Result<Tensor> {
    let (lhs, gate) = a.split_last_dim()?;
    mul(&lhs, &sigmoid(&gate))
}

/// Linear Transformer feature map `φ(x) = elu(x) + 1` (Katharopoulos et al.),
/// strictly positive so the attention normalizer never vanishes.
pub fn elu_plus_one(a: &Tensor) -> Tensor {
    unary_op(a, |x| if x > 0.0 { x + 1.0 } else { x.exp() })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_vec(&[v.len()], v.to_vec()).unwrap()
    }

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(relu(&t(&[-2.0, 0.0, 3.0])).data(), &[0.0, 0.0, 3.0]);
    }

    #[test]
    fn leaky_relu_scales_negatives() {
        let y = leaky_relu(&t(&[-2.0, 4.0]), 0.01);
        assert!((y.data()[0] + 0.02).abs() < 1e-7);
        assert_eq!(y.data()[1], 4.0);
    }

    #[test]
    fn gelu_reference_points() {
        let y = gelu(&t(&[0.0, 1.0, -1.0]));
        assert_eq!(y.data()[0], 0.0);
        assert!((y.data()[1] - 0.841_192).abs() < 1e-3);
        assert!((y.data()[2] + 0.158_808).abs() < 1e-3);
    }

    #[test]
    fn elu_continuous_at_zero() {
        let y = elu(&t(&[-1e-4, 0.0, 1e-4]));
        assert!(y.data()[0] < 0.0 && y.data()[0] > -2e-4);
        assert_eq!(y.data()[1], 0.0);
        assert_eq!(y.data()[2], 1e-4);
    }

    #[test]
    fn sigmoid_bounds_and_symmetry() {
        let y = sigmoid(&t(&[-10.0, 0.0, 10.0]));
        assert!(y.data()[0] < 1e-4);
        assert_eq!(y.data()[1], 0.5);
        assert!(y.data()[2] > 1.0 - 1e-4);
    }

    #[test]
    fn glu_halves_last_dim() {
        let x =
            Tensor::from_vec(&[2, 4], vec![1.0, 2.0, 0.0, 0.0, 3.0, 4.0, 100.0, 100.0]).unwrap();
        let y = glu(&x).unwrap();
        assert_eq!(y.dims(), &[2, 2]);
        // gate sigmoid(0)=0.5; sigmoid(100)=~1
        assert!((y.data()[0] - 0.5).abs() < 1e-6);
        assert!((y.data()[1] - 1.0).abs() < 1e-6);
        assert!((y.data()[2] - 3.0).abs() < 1e-4);
        assert!((y.data()[3] - 4.0).abs() < 1e-4);
    }

    #[test]
    fn glu_rejects_odd_dim() {
        assert!(glu(&Tensor::zeros(&[2, 3]).unwrap()).is_err());
    }

    #[test]
    fn elu_plus_one_strictly_positive() {
        let y = elu_plus_one(&t(&[-50.0, -1.0, 0.0, 2.0]));
        assert!(y.data().iter().all(|&v| v > 0.0));
        assert_eq!(y.data()[3], 3.0);
        assert_eq!(y.data()[2], 1.0);
    }

    #[test]
    fn elu_plus_one_equals_elu_shifted() {
        let x = t(&[-3.0, -0.5, 0.5, 3.0]);
        let a = elu_plus_one(&x);
        let b = crate::ops::elementwise::scalar_add(&elu(&x), 1.0);
        assert!(a.max_abs_diff(&b) < 1e-6);
    }
}
