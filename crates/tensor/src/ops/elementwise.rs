//! Element-wise operators with NumPy-style broadcasting.
//!
//! On real Gaudi hardware *every* operator in this module maps to the TPC
//! cluster (Table 1 of the paper) — even `scalar * tensor`.

use crate::error::Result;
use crate::parallel::par_chunks_mut;
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Apply a binary operation with broadcasting.
pub fn binary_op(a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Result<Tensor> {
    let out_shape = Shape::broadcast(a.shape(), b.shape())?;
    if *a.shape() == out_shape && *b.shape() == out_shape {
        // Fast path: identical shapes, contiguous zip.
        let mut out = vec![0.0f32; out_shape.numel()];
        let (ad, bd) = (a.data(), b.data());
        par_chunks_mut(&mut out, 1024, |start, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                let idx = start + i;
                *v = f(ad[idx], bd[idx]);
            }
        });
        return Tensor::from_vec(out_shape.dims(), out);
    }
    let mut out = vec![0.0f32; out_shape.numel()];
    let (ad, bd) = (a.data(), b.data());
    let (ashape, bshape) = (*a.shape(), *b.shape());
    par_chunks_mut(&mut out, 1024, |start, chunk| {
        for (i, v) in chunk.iter_mut().enumerate() {
            let coords = out_shape.unravel(start + i);
            let ai = out_shape.broadcast_source_index(&ashape, &coords);
            let bi = out_shape.broadcast_source_index(&bshape, &coords);
            *v = f(ad[ai], bd[bi]);
        }
    });
    Tensor::from_vec(out_shape.dims(), out)
}

/// Apply a unary operation element-wise.
pub fn unary_op(a: &Tensor, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
    let mut out = a.data().to_vec();
    par_chunks_mut(&mut out, 1024, |_, chunk| {
        for v in chunk {
            *v = f(*v);
        }
    });
    Tensor::from_vec(a.dims(), out).expect("same shape")
}

/// `a + b` with broadcasting.
pub fn add(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    binary_op(a, b, |x, y| x + y)
}

/// `a - b` with broadcasting.
pub fn sub(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    binary_op(a, b, |x, y| x - y)
}

/// Element-wise product (`torch.mul`).
pub fn mul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    binary_op(a, b, |x, y| x * y)
}

/// Element-wise quotient.
pub fn div(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    binary_op(a, b, |x, y| x / y)
}

/// Element-wise maximum.
pub fn maximum(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    binary_op(a, b, f32::max)
}

/// `scalar * tensor` — note this still runs on TPC on real hardware.
pub fn scalar_mul(a: &Tensor, s: f32) -> Tensor {
    unary_op(a, |x| x * s)
}

/// `scalar + tensor`.
pub fn scalar_add(a: &Tensor, s: f32) -> Tensor {
    unary_op(a, |x| x + s)
}

/// Element-wise square (`torch.square` / `**`).
pub fn square(a: &Tensor) -> Tensor {
    unary_op(a, |x| x * x)
}

/// Element-wise square root (`torch.sqrt`).
pub fn sqrt(a: &Tensor) -> Tensor {
    unary_op(a, f32::sqrt)
}

/// Element-wise natural exponential (`torch.exp`) — the TPC special-function
/// at the heart of softmax and Performer's FAVOR feature map.
pub fn exp(a: &Tensor) -> Tensor {
    unary_op(a, f32::exp)
}

/// Element-wise natural logarithm (`torch.log`).
pub fn log(a: &Tensor) -> Tensor {
    unary_op(a, f32::ln)
}

/// Element-wise negation.
pub fn neg(a: &Tensor) -> Tensor {
    unary_op(a, |x| -x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeededRng;

    #[test]
    fn add_same_shape() {
        let a = Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec(&[3], vec![10.0, 20.0, 30.0]).unwrap();
        assert_eq!(add(&a, &b).unwrap().data(), &[11.0, 22.0, 33.0]);
    }

    #[test]
    fn broadcast_row_vector() {
        let a = Tensor::from_vec(&[2, 3], vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0]).unwrap();
        let b = Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]).unwrap();
        let c = add(&a, &b).unwrap();
        assert_eq!(c.data(), &[1.0, 2.0, 3.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn broadcast_column_against_row() {
        let col = Tensor::from_vec(&[2, 1], vec![10.0, 20.0]).unwrap();
        let row = Tensor::from_vec(&[1, 3], vec![1.0, 2.0, 3.0]).unwrap();
        let c = add(&col, &row).unwrap();
        assert_eq!(c.dims(), &[2, 3]);
        assert_eq!(c.data(), &[11.0, 12.0, 13.0, 21.0, 22.0, 23.0]);
    }

    #[test]
    fn broadcast_mismatch_errors() {
        let a = Tensor::zeros(&[2, 3]).unwrap();
        let b = Tensor::zeros(&[4, 3]).unwrap();
        assert!(add(&a, &b).is_err());
    }

    #[test]
    fn mul_div_roundtrip() {
        let mut rng = SeededRng::new(11);
        let a = Tensor::randn(&[4, 5], 1.0, &mut rng).unwrap();
        let b = scalar_add(&Tensor::randn(&[4, 5], 0.1, &mut rng).unwrap(), 2.0);
        let roundtrip = div(&mul(&a, &b).unwrap(), &b).unwrap();
        assert!(a.max_abs_diff(&roundtrip) < 1e-5);
    }

    #[test]
    fn scalar_ops() {
        let a = Tensor::from_vec(&[2], vec![1.0, -2.0]).unwrap();
        assert_eq!(scalar_mul(&a, 3.0).data(), &[3.0, -6.0]);
        assert_eq!(scalar_add(&a, 1.0).data(), &[2.0, -1.0]);
        assert_eq!(neg(&a).data(), &[-1.0, 2.0]);
    }

    #[test]
    fn square_sqrt_exp_log() {
        let a = Tensor::from_vec(&[3], vec![1.0, 4.0, 9.0]).unwrap();
        assert_eq!(square(&a).data(), &[1.0, 16.0, 81.0]);
        assert_eq!(sqrt(&a).data(), &[1.0, 2.0, 3.0]);
        let e = exp(&Tensor::zeros(&[2]).unwrap());
        assert_eq!(e.data(), &[1.0, 1.0]);
        let l = log(&e);
        assert_eq!(l.data(), &[0.0, 0.0]);
    }

    #[test]
    fn maximum_is_elementwise_max() {
        let a = Tensor::from_vec(&[3], vec![1.0, 5.0, -1.0]).unwrap();
        let b = Tensor::from_vec(&[3], vec![2.0, 3.0, -4.0]).unwrap();
        assert_eq!(maximum(&a, &b).unwrap().data(), &[2.0, 5.0, -1.0]);
    }

    #[test]
    fn large_tensor_parallel_path_correct() {
        let n = 1 << 17;
        let a = Tensor::arange(n);
        let b = Tensor::full(&[n], 2.0).unwrap();
        let c = mul(&a, &b).unwrap();
        for i in (0..n).step_by(4097) {
            assert_eq!(c.data()[i], 2.0 * i as f32);
        }
    }
}
