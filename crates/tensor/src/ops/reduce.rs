//! Reductions, softmax and layer normalization.
//!
//! Reductions are the operations the paper identifies as "not well-suited
//! for single instruction, multiple data (SIMD) architectures like TPC"
//! (§3.3); the hardware model charges them a serialization penalty, while
//! this module provides their exact numerics.

use crate::error::{Result, TensorError};
use crate::parallel::{par_for, DisjointSlice};
use crate::tensor::Tensor;

fn rowwise(a: &Tensor, out_cols: usize, f: impl Fn(&[f32], &mut [f32]) + Sync) -> Vec<f32> {
    let d = a.shape().last_dim();
    let rows = a.shape().rows();
    let mut out = vec![0.0f32; rows * out_cols];
    let data = a.data();
    let shared = DisjointSlice::new(&mut out);
    par_for(rows, d, |r| {
        let row = &data[r * d..(r + 1) * d];
        // SAFETY: row r writes only out[r*out_cols .. (r+1)*out_cols].
        let orow = unsafe { shared.range(r * out_cols..(r + 1) * out_cols) };
        f(row, orow);
    });
    out
}

fn reduced_dims(a: &Tensor, keep: bool) -> Vec<usize> {
    let mut dims: Vec<usize> = a.dims().to_vec();
    if keep || dims.len() == 1 {
        *dims.last_mut().unwrap() = 1;
    } else {
        dims.pop();
    }
    dims
}

/// Sum over the last axis. `keep_dim` retains a trailing axis of size 1.
pub fn sum_last_axis(a: &Tensor, keep_dim: bool) -> Result<Tensor> {
    let out = rowwise(a, 1, |row, o| o[0] = row.iter().sum());
    Tensor::from_vec(&reduced_dims(a, keep_dim), out)
}

/// Maximum over the last axis.
pub fn max_last_axis(a: &Tensor, keep_dim: bool) -> Result<Tensor> {
    if a.numel() == 0 {
        return Err(TensorError::EmptyTensor);
    }
    let out = rowwise(a, 1, |row, o| {
        o[0] = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x))
    });
    Tensor::from_vec(&reduced_dims(a, keep_dim), out)
}

/// Mean over the last axis.
pub fn mean_last_axis(a: &Tensor, keep_dim: bool) -> Result<Tensor> {
    let d = a.shape().last_dim() as f32;
    let out = rowwise(a, 1, |row, o| o[0] = row.iter().sum::<f32>() / d);
    Tensor::from_vec(&reduced_dims(a, keep_dim), out)
}

/// Sum of every element.
pub fn sum_all(a: &Tensor) -> f32 {
    a.data().iter().sum()
}

/// Numerically-stable softmax over the last axis: the three-pass
/// max / exp-sum / normalize algorithm the TPC softmax kernel implements.
pub fn softmax_last_axis(a: &Tensor) -> Result<Tensor> {
    let d = a.shape().last_dim();
    let out = rowwise(a, d, |row, o| {
        let m = row.iter().fold(f32::NEG_INFINITY, |acc, &x| acc.max(x));
        let mut z = 0.0f32;
        for (oi, &x) in o.iter_mut().zip(row.iter()) {
            let e = (x - m).exp();
            *oi = e;
            z += e;
        }
        let inv = 1.0 / z;
        for oi in o.iter_mut() {
            *oi *= inv;
        }
    });
    Tensor::from_vec(a.dims(), out)
}

/// Layer normalization over the last axis with learned scale and shift.
pub fn layernorm_last_axis(a: &Tensor, gamma: &Tensor, beta: &Tensor, eps: f32) -> Result<Tensor> {
    let d = a.shape().last_dim();
    if gamma.numel() != d || beta.numel() != d {
        return Err(TensorError::LengthMismatch {
            expected: d,
            actual: gamma.numel(),
        });
    }
    let g = gamma.data().to_vec();
    let bta = beta.data().to_vec();
    let out = rowwise(a, d, |row, o| {
        let n = row.len() as f32;
        let mean = row.iter().sum::<f32>() / n;
        let var = row.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / n;
        let inv = 1.0 / (var + eps).sqrt();
        for ((oi, &x), (gv, bv)) in o.iter_mut().zip(row.iter()).zip(g.iter().zip(bta.iter())) {
            *oi = (x - mean) * inv * gv + bv;
        }
    });
    Tensor::from_vec(a.dims(), out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::elementwise::scalar_mul;
    use crate::rng::SeededRng;

    #[test]
    fn sum_and_mean_last_axis() {
        let t = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(sum_last_axis(&t, false).unwrap().data(), &[6.0, 15.0]);
        assert_eq!(mean_last_axis(&t, false).unwrap().data(), &[2.0, 5.0]);
        assert_eq!(sum_last_axis(&t, true).unwrap().dims(), &[2, 1]);
    }

    #[test]
    fn max_last_axis_values() {
        let t = Tensor::from_vec(&[2, 3], vec![1.0, 9.0, 3.0, -4.0, -5.0, -6.0]).unwrap();
        assert_eq!(max_last_axis(&t, false).unwrap().data(), &[9.0, -4.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut rng = SeededRng::new(8);
        let t = Tensor::randn(&[7, 13], 3.0, &mut rng).unwrap();
        let s = softmax_last_axis(&t).unwrap();
        let sums = sum_last_axis(&s, false).unwrap();
        for &v in sums.data() {
            assert!((v - 1.0).abs() < 1e-5);
        }
        assert!(s.data().iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let t = Tensor::from_vec(&[1, 4], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let shifted = crate::ops::elementwise::scalar_add(&t, 100.0);
        let a = softmax_last_axis(&t).unwrap();
        let b = softmax_last_axis(&shifted).unwrap();
        assert!(a.max_abs_diff(&b) < 1e-6);
    }

    #[test]
    fn softmax_stable_for_large_logits() {
        let t = Tensor::from_vec(&[1, 3], vec![1000.0, 999.0, 998.0]).unwrap();
        let s = softmax_last_axis(&t).unwrap();
        assert!(s.all_finite());
        assert!((sum_all(&s) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn layernorm_zero_mean_unit_var() {
        let mut rng = SeededRng::new(9);
        let t = Tensor::randn(&[4, 64], 5.0, &mut rng).unwrap();
        let g = Tensor::ones(&[64]).unwrap();
        let b = Tensor::zeros(&[64]).unwrap();
        let y = layernorm_last_axis(&t, &g, &b, 1e-5).unwrap();
        let mean = mean_last_axis(&y, false).unwrap();
        for &m in mean.data() {
            assert!(m.abs() < 1e-4);
        }
        let var = mean_last_axis(&crate::ops::elementwise::square(&y), false).unwrap();
        for &v in var.data() {
            assert!((v - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn layernorm_applies_gamma_beta() {
        let t = Tensor::from_vec(&[1, 2], vec![-1.0, 1.0]).unwrap();
        let g = Tensor::full(&[2], 2.0).unwrap();
        let b = Tensor::full(&[2], 10.0).unwrap();
        let y = layernorm_last_axis(&t, &g, &b, 0.0).unwrap();
        // normalized row is [-1, 1]; scaled: [8, 12]
        assert!((y.data()[0] - 8.0).abs() < 1e-4);
        assert!((y.data()[1] - 12.0).abs() < 1e-4);
    }

    #[test]
    fn layernorm_wrong_param_len_errors() {
        let t = Tensor::zeros(&[2, 4]).unwrap();
        let g = Tensor::ones(&[3]).unwrap();
        let b = Tensor::zeros(&[4]).unwrap();
        assert!(layernorm_last_axis(&t, &g, &b, 1e-5).is_err());
    }

    #[test]
    fn sum_all_scales_linearly() {
        let t = Tensor::ones(&[10, 10]).unwrap();
        assert_eq!(sum_all(&t), 100.0);
        assert_eq!(sum_all(&scalar_mul(&t, 3.0)), 300.0);
    }
}
