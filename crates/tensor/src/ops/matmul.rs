//! Matrix products — the only operators the SynapseAI graph compiler maps to
//! the MME (Table 1 of the paper).
//!
//! Supports plain 2-D `matmul` and `bmm`-style batched products with
//! broadcasting over leading batch dimensions, which is how the attention
//! builders express `Q Kᵀ` over `(batch, heads)`.

use crate::error::{Result, TensorError};
use crate::parallel::{par_for, DisjointSlice};
use crate::tensor::Tensor;

/// Batched matrix product `a @ b`.
///
/// Shapes follow `torch.matmul` semantics for rank ≥ 2 operands:
/// `a: [batch..., m, k]`, `b: [batch..., k, n]` where the batch prefixes must
/// either match or one of them be absent/singleton.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (ab, m, k) = a
        .shape()
        .as_batched_matrix()
        .ok_or(TensorError::MatmulMismatch {
            lhs: *a.shape(),
            rhs: *b.shape(),
        })?;
    let (bb, k2, n) = b
        .shape()
        .as_batched_matrix()
        .ok_or(TensorError::MatmulMismatch {
            lhs: *a.shape(),
            rhs: *b.shape(),
        })?;
    if k != k2 {
        return Err(TensorError::MatmulMismatch {
            lhs: *a.shape(),
            rhs: *b.shape(),
        });
    }
    let batch = if ab == bb {
        ab
    } else if ab == 1 {
        bb
    } else if bb == 1 {
        ab
    } else {
        return Err(TensorError::MatmulMismatch {
            lhs: *a.shape(),
            rhs: *b.shape(),
        });
    };

    // Output shape: take the higher-rank operand's batch prefix.
    let out_dims: Vec<usize> = {
        let (src, sm, sn) = if a.shape().rank() >= b.shape().rank() && ab >= bb {
            (a.dims(), m, n)
        } else if bb > ab {
            (b.dims(), m, n)
        } else {
            (a.dims(), m, n)
        };
        let mut d: Vec<usize> = src[..src.len() - 2].to_vec();
        d.push(sm);
        d.push(sn);
        d
    };

    let mut out = vec![0.0f32; batch * m * n];
    let ad = a.data();
    let bd = b.data();

    // Parallelize over (batch, row-block) work items.
    const ROW_BLOCK: usize = 32;
    let blocks_per_mat = m.div_ceil(ROW_BLOCK);
    let total = batch * blocks_per_mat;

    let shared = DisjointSlice::new(&mut out);

    par_for(total, m * n * k / 64, |item| {
        let bi = item / blocks_per_mat;
        let blk = item % blocks_per_mat;
        let row0 = blk * ROW_BLOCK;
        let row1 = (row0 + ROW_BLOCK).min(m);
        let a_off = if ab == 1 { 0 } else { bi * m * k };
        let b_off = if bb == 1 { 0 } else { bi * k * n };
        let amat = &ad[a_off..a_off + m * k];
        let bmat = &bd[b_off..b_off + k * n];
        // SAFETY: rows [row0, row1) of batch `bi` are written only by this item.
        let omat = unsafe { shared.range(bi * m * n + row0 * n..bi * m * n + row1 * n) };
        for i in row0..row1 {
            let orow = &mut omat[(i - row0) * n..(i - row0 + 1) * n];
            // ikj loop order: stream through b rows, accumulate into orow.
            for (kk, &aval) in amat[i * k..(i + 1) * k].iter().enumerate() {
                if aval == 0.0 {
                    continue;
                }
                let brow = &bmat[kk * n..(kk + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                    *o += aval * bv;
                }
            }
        }
    });

    Tensor::from_vec(&out_dims, out)
}

/// `torch.bmm` analog: strict 3-D batched product with equal batch sizes.
pub fn bmm(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.shape().rank() != 3 || b.shape().rank() != 3 || a.dims()[0] != b.dims()[0] {
        return Err(TensorError::MatmulMismatch {
            lhs: *a.shape(),
            rhs: *b.shape(),
        });
    }
    matmul(a, b)
}

/// Reference (naive, sequential) matmul used by tests to validate the
/// parallel kernel.
pub fn matmul_reference(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (ab, m, k) = a
        .shape()
        .as_batched_matrix()
        .ok_or(TensorError::MatmulMismatch {
            lhs: *a.shape(),
            rhs: *b.shape(),
        })?;
    let (bb, k2, n) = b
        .shape()
        .as_batched_matrix()
        .ok_or(TensorError::MatmulMismatch {
            lhs: *a.shape(),
            rhs: *b.shape(),
        })?;
    if k != k2 || (ab != bb && ab != 1 && bb != 1) {
        return Err(TensorError::MatmulMismatch {
            lhs: *a.shape(),
            rhs: *b.shape(),
        });
    }
    let batch = ab.max(bb);
    let mut out = vec![0.0f32; batch * m * n];
    for bi in 0..batch {
        let a_off = if ab == 1 { 0 } else { bi * m * k };
        let b_off = if bb == 1 { 0 } else { bi * k * n };
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a.data()[a_off + i * k + kk] * b.data()[b_off + kk * n + j];
                }
                out[bi * m * n + i * n + j] = acc;
            }
        }
    }
    let mut dims: Vec<usize> = if ab >= bb {
        a.dims()[..a.dims().len() - 2].to_vec()
    } else {
        b.dims()[..b.dims().len() - 2].to_vec()
    };
    dims.push(m);
    dims.push(n);
    Tensor::from_vec(&dims, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeededRng;

    #[test]
    fn matmul_2d_known_values() {
        let a = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Tensor::from_vec(&[3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = SeededRng::new(1);
        let a = Tensor::randn(&[5, 5], 1.0, &mut rng).unwrap();
        let mut id = Tensor::zeros(&[5, 5]).unwrap();
        for i in 0..5 {
            id.data_mut()[i * 5 + i] = 1.0;
        }
        let c = matmul(&a, &id).unwrap();
        assert!(a.max_abs_diff(&c) < 1e-6);
    }

    #[test]
    fn batched_matches_reference() {
        let mut rng = SeededRng::new(2);
        let a = Tensor::randn(&[4, 6, 3], 1.0, &mut rng).unwrap();
        let b = Tensor::randn(&[4, 3, 5], 1.0, &mut rng).unwrap();
        let fast = bmm(&a, &b).unwrap();
        let slow = matmul_reference(&a, &b).unwrap();
        assert!(fast.max_abs_diff(&slow) < 1e-4);
        assert_eq!(fast.dims(), &[4, 6, 5]);
    }

    #[test]
    fn broadcast_single_rhs_over_batch() {
        let mut rng = SeededRng::new(3);
        let a = Tensor::randn(&[4, 6, 3], 1.0, &mut rng).unwrap();
        let w = Tensor::randn(&[3, 5], 1.0, &mut rng).unwrap();
        let c = matmul(&a, &w).unwrap();
        assert_eq!(c.dims(), &[4, 6, 5]);
        let r = matmul_reference(&a, &w.reshape(&[1, 3, 5]).unwrap()).unwrap();
        assert!(c.reshape(&[4, 6, 5]).unwrap().max_abs_diff(&r) < 1e-4);
    }

    #[test]
    fn inner_dim_mismatch_errors() {
        let a = Tensor::zeros(&[2, 3]).unwrap();
        let b = Tensor::zeros(&[4, 2]).unwrap();
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn bmm_requires_rank3_equal_batch() {
        let a = Tensor::zeros(&[2, 3, 4]).unwrap();
        let b = Tensor::zeros(&[3, 4, 5]).unwrap();
        assert!(bmm(&a, &b).is_err());
        let b2 = Tensor::zeros(&[2, 4, 5]).unwrap();
        assert!(bmm(&a, &b2).is_ok());
    }

    #[test]
    fn larger_parallel_matmul_matches_reference() {
        let mut rng = SeededRng::new(4);
        let a = Tensor::randn(&[2, 130, 40], 0.5, &mut rng).unwrap();
        let b = Tensor::randn(&[2, 40, 70], 0.5, &mut rng).unwrap();
        let fast = matmul(&a, &b).unwrap();
        let slow = matmul_reference(&a, &b).unwrap();
        assert!(fast.max_abs_diff(&slow) < 1e-3);
    }

    #[test]
    fn associativity_enables_linear_attention() {
        // (A B) C == A (B C): the identity Performer/linear attention exploit.
        let mut rng = SeededRng::new(6);
        let a = Tensor::randn(&[8, 4], 0.3, &mut rng).unwrap();
        let b = Tensor::randn(&[4, 8], 0.3, &mut rng).unwrap();
        let c = Tensor::randn(&[8, 4], 0.3, &mut rng).unwrap();
        let left = matmul(&matmul(&a, &b).unwrap(), &c).unwrap();
        let right = matmul(&a, &matmul(&b, &c).unwrap()).unwrap();
        assert!(left.max_abs_diff(&right) < 1e-4);
    }
}
