//! Numeric operators over [`crate::Tensor`].
//!
//! The operator set mirrors what the paper's experiments exercise:
//!
//! * element-wise arithmetic (`torch.mul`, `+`, `-`, scalar ops, `exp`,
//!   `log`, `sqrt`, `square` — Table 1),
//! * (batched) matrix product (`torch.matmul` / `torch.bmm` — Table 2),
//! * reductions and numerically-stable softmax (§3.3),
//! * layer normalization,
//! * the activation functions of Figure 7 and the attention feature maps.

pub mod activation;
pub mod elementwise;
pub mod matmul;
pub mod reduce;

pub use activation::*;
pub use elementwise::*;
pub use matmul::*;
pub use reduce::*;
