//! Property-based tests of the tensor library's algebraic invariants.

use gaudi_tensor::{ops, DType, SeededRng, Shape, Tensor};
use proptest::prelude::*;

fn tensor_strategy(max: usize) -> impl Strategy<Value = Tensor> {
    (1usize..=max, 1usize..=max, any::<u64>()).prop_map(|(r, c, seed)| {
        let mut rng = SeededRng::new(seed);
        Tensor::randn(&[r, c], 1.0, &mut rng).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_commutes(t in tensor_strategy(12), seed in any::<u64>()) {
        let mut rng = SeededRng::new(seed);
        let u = Tensor::randn(t.dims(), 1.0, &mut rng).unwrap();
        let ab = ops::add(&t, &u).unwrap();
        let ba = ops::add(&u, &t).unwrap();
        prop_assert!(ab.max_abs_diff(&ba) == 0.0);
    }

    #[test]
    fn mul_distributes_over_add(seed in any::<u64>()) {
        let mut rng = SeededRng::new(seed);
        let a = Tensor::randn(&[5, 7], 1.0, &mut rng).unwrap();
        let b = Tensor::randn(&[5, 7], 1.0, &mut rng).unwrap();
        let c = Tensor::randn(&[5, 7], 1.0, &mut rng).unwrap();
        let lhs = ops::mul(&a, &ops::add(&b, &c).unwrap()).unwrap();
        let rhs = ops::add(&ops::mul(&a, &b).unwrap(), &ops::mul(&a, &c).unwrap()).unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-4);
    }

    #[test]
    fn matmul_is_linear_in_first_argument(seed in any::<u64>(), s in 1.0f32..3.0) {
        let mut rng = SeededRng::new(seed);
        let a = Tensor::randn(&[4, 6], 1.0, &mut rng).unwrap();
        let b = Tensor::randn(&[6, 5], 1.0, &mut rng).unwrap();
        let lhs = ops::matmul(&ops::scalar_mul(&a, s), &b).unwrap();
        let rhs = ops::scalar_mul(&ops::matmul(&a, &b).unwrap(), s);
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-3);
    }

    #[test]
    fn matmul_transpose_identity(seed in any::<u64>()) {
        // (A B)^T == B^T A^T
        let mut rng = SeededRng::new(seed);
        let a = Tensor::randn(&[4, 6], 1.0, &mut rng).unwrap();
        let b = Tensor::randn(&[6, 5], 1.0, &mut rng).unwrap();
        let lhs = ops::matmul(&a, &b).unwrap().transpose_last2().unwrap();
        let rhs = ops::matmul(
            &b.transpose_last2().unwrap(),
            &a.transpose_last2().unwrap(),
        )
        .unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-4);
    }

    #[test]
    fn softmax_is_a_probability_simplex_projection(t in tensor_strategy(16)) {
        let s = ops::softmax_last_axis(&t).unwrap();
        prop_assert!(s.data().iter().all(|&x| (0.0..=1.0).contains(&x)));
        let sums = ops::sum_last_axis(&s, false).unwrap();
        for &v in sums.data() {
            prop_assert!((v - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn softmax_preserves_argmax(t in tensor_strategy(12)) {
        let s = ops::softmax_last_axis(&t).unwrap();
        let d = t.shape().last_dim();
        for r in 0..t.shape().rows() {
            let row_in = &t.data()[r * d..(r + 1) * d];
            let row_out = &s.data()[r * d..(r + 1) * d];
            let argmax_in = row_in
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0;
            let argmax_out = row_out
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0;
            prop_assert_eq!(argmax_in, argmax_out);
        }
    }

    #[test]
    fn reshape_roundtrips(t in tensor_strategy(10)) {
        let n = t.numel();
        let flat = t.reshape(&[n]).unwrap();
        let back = flat.reshape(t.dims()).unwrap();
        prop_assert!(t.max_abs_diff(&back) == 0.0);
    }

    #[test]
    fn bf16_quantization_is_idempotent(t in tensor_strategy(10)) {
        let q1 = t.quantized(DType::BF16);
        let q2 = q1.quantized(DType::BF16);
        prop_assert!(q1.max_abs_diff(&q2) == 0.0);
    }

    #[test]
    fn broadcast_is_associative_on_shapes(
        a in 1usize..5, b in 1usize..5, c in 1usize..5,
    ) {
        // broadcast(broadcast(x, y), z) == broadcast(x, broadcast(y, z))
        let x = Shape::of(&[a, 1]);
        let y = Shape::of(&[1, b]);
        let z = Shape::of(&[c, 1, 1]);
        let l = Shape::broadcast(&Shape::broadcast(&x, &y).unwrap(), &z).unwrap();
        let r = Shape::broadcast(&x, &Shape::broadcast(&y, &z).unwrap()).unwrap();
        prop_assert_eq!(l.dims(), r.dims());
    }

    #[test]
    fn layernorm_is_shift_and_scale_invariant(seed in any::<u64>(), shift in -5.0f32..5.0, scale in 0.5f32..4.0) {
        let mut rng = SeededRng::new(seed);
        let x = Tensor::randn(&[3, 64], 1.0, &mut rng).unwrap();
        let g = Tensor::ones(&[64]).unwrap();
        let b = Tensor::zeros(&[64]).unwrap();
        let base = ops::layernorm_last_axis(&x, &g, &b, 1e-6).unwrap();
        let moved = ops::scalar_add(&ops::scalar_mul(&x, scale), shift);
        let same = ops::layernorm_last_axis(&moved, &g, &b, 1e-6).unwrap();
        prop_assert!(base.max_abs_diff(&same) < 1e-2);
    }

    #[test]
    fn relu_is_idempotent_and_monotone(t in tensor_strategy(12)) {
        let r1 = ops::relu(&t);
        let r2 = ops::relu(&r1);
        prop_assert!(r1.max_abs_diff(&r2) == 0.0);
        for (x, y) in t.data().iter().zip(r1.data()) {
            prop_assert!(*y >= 0.0 && *y >= *x - 1e-9 || *x < 0.0);
        }
    }

    #[test]
    fn glu_shrinks_and_bounds(seed in any::<u64>()) {
        let mut rng = SeededRng::new(seed);
        let x = Tensor::randn(&[4, 16], 2.0, &mut rng).unwrap();
        let y = ops::glu(&x).unwrap();
        prop_assert_eq!(y.dims(), &[4, 8]);
        // |glu(x)| <= |a| since sigmoid in (0,1).
        let (a, _) = x.split_last_dim().unwrap();
        for (yi, ai) in y.data().iter().zip(a.data()) {
            prop_assert!(yi.abs() <= ai.abs() + 1e-6);
        }
    }
}
