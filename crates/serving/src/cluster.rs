//! Cluster layer: route one request stream across per-box serving engines.
//!
//! The engine ([`crate::engine`]) simulates one box — up to a handful of
//! data-parallel replica cards behind one admission queue. This module
//! scales the same machinery to a datacenter row: a front-end router
//! splits the stream over `boxes` independent boxes of `cards_per_box`
//! cards each, every box runs the full continuous-batching engine, and the
//! per-box [`ServingReport`]s merge through the two-level
//! [`ServingReport::merge_boxes`] with the same conservation invariants
//! (every request terminates exactly once, cluster-wide).
//!
//! Routing is where cluster serving differs from a big box. Each request
//! has a deterministic **home box** — a hash of its id, standing in for
//! session affinity (its conversation history / prefix KV lives there).
//! The three [`RouterPolicy`]s trade locality against balance:
//!
//! - [`Locality`](RouterPolicy::Locality) always routes home: zero
//!   cross-box traffic, load as uneven as the hash happens to land;
//! - [`RoundRobin`](RouterPolicy::RoundRobin) perfectly balances request
//!   *counts*, shipping most requests off-home;
//! - [`LeastLoaded`](RouterPolicy::LeastLoaded) balances outstanding
//!   routed *tokens* (a static estimate — the router does not watch
//!   completions), also mostly off-home.
//!
//! An off-home request pays the switch tier: its prompt (4 bytes per
//! token) crosses the inter-box fabric of the hierarchical
//! [`Topology`], and the transfer time (oversubscribed bandwidth plus two
//! switch hops — [`Topology::cross_box_transfer_ns`]) delays the
//! request's effective arrival at the target box. Everything stays a pure
//! function of the configuration: boxes fan out over the policy's
//! [`gaudi_exec::ExecPool`] but are merged in box order, so the cluster
//! report is bit-identical across execution policies.

use crate::engine::{simulate_trace_with, ExecPolicy, PlanSharing, ServingConfig};
use crate::error::ServingError;
use crate::report::ServingReport;
use crate::request::{generate_requests, Request};
use gaudi_hw::Topology;
use std::sync::Arc;

/// How the front-end router assigns requests to boxes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RouterPolicy {
    /// Strict arrival-order round-robin over the boxes: request counts
    /// balance exactly, locality is ignored.
    #[default]
    RoundRobin,
    /// Route each request to the box with the fewest outstanding routed
    /// tokens (ties to the lowest box index): token load balances,
    /// locality is ignored.
    LeastLoaded,
    /// Route each request to its home box: no cross-box traffic, load as
    /// even as the session hash.
    Locality,
}

impl RouterPolicy {
    /// Short name for tables and JSON artifacts.
    pub fn name(&self) -> &'static str {
        match self {
            RouterPolicy::RoundRobin => "round_robin",
            RouterPolicy::LeastLoaded => "least_loaded",
            RouterPolicy::Locality => "locality",
        }
    }
}

/// Configuration of a cluster simulation: the fleet shape, the switch
/// tier, the router, and the per-box serving configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of independent serving boxes.
    pub boxes: usize,
    /// Data-parallel replica cards per box.
    pub cards_per_box: usize,
    /// Switch-tier oversubscription (`>= 1.0`; 1.0 = non-blocking). See
    /// [`gaudi_hw::SwitchTier`].
    pub oversubscription: f64,
    /// Request-to-box assignment policy.
    pub router: RouterPolicy,
    /// The per-box engine configuration. Its `traffic` describes the
    /// **cluster-wide** stream (the router splits it); its `devices`
    /// field is ignored and replaced by `cards_per_box`. A fault plan, if
    /// any, is applied identically to every box.
    pub box_config: ServingConfig,
}

impl ClusterConfig {
    /// A cluster of `boxes` × `cards_per_box` cards serving
    /// `box_config`'s stream through a non-blocking switch tier and the
    /// default round-robin router.
    pub fn new(box_config: ServingConfig, boxes: usize, cards_per_box: usize) -> Self {
        ClusterConfig {
            boxes,
            cards_per_box,
            oversubscription: 1.0,
            router: RouterPolicy::default(),
            box_config,
        }
    }

    /// The same cluster under a different router policy.
    pub fn router(mut self, router: RouterPolicy) -> Self {
        self.router = router;
        self
    }

    /// The same cluster with an oversubscribed switch tier.
    pub fn oversubscription(mut self, factor: f64) -> Self {
        self.oversubscription = factor;
        self
    }

    /// Total simulated cards.
    pub fn devices(&self) -> usize {
        self.boxes * self.cards_per_box
    }

    /// The hierarchical topology the router prices transfers against.
    pub fn topology(&self) -> Topology {
        Topology::cluster(
            &self.box_config.hw,
            self.boxes,
            self.cards_per_box,
            self.oversubscription,
        )
    }
}

/// Per-box slice of a cluster run, for balance and scaling analysis.
#[derive(Debug, Clone)]
pub struct BoxSummary {
    /// Box index.
    pub box_id: usize,
    /// Requests routed to (and terminated by) this box.
    pub offered: usize,
    /// Requests that completed within every SLO.
    pub completed: usize,
    /// Total tokens routed to this box (the least-loaded router's load
    /// measure).
    pub routed_tokens: u64,
    /// This box's goodput against its own makespan, tokens/s.
    pub goodput_tokens_per_s: f64,
    /// This box's local makespan, ms.
    pub makespan_ms: f64,
    /// This box's card availability against its **own** makespan
    /// ([`ServingReport::availability`] of the per-box report, captured
    /// before the merge stretches every box to the cluster makespan).
    pub availability: f64,
    /// Replica restarts inside this box.
    pub restarts: usize,
    /// KV bytes this box's cards checkpointed to host DRAM.
    pub checkpoint_bytes: u64,
    /// Simulated time this box spent restoring snapshots over DMA, ms.
    pub restore_ms: f64,
    /// Generated tokens this box recovered from snapshots instead of
    /// recomputing.
    pub recovered_tokens: u64,
}

/// Result of a cluster simulation: the merged cluster-level report plus
/// the routing telemetry the merge cannot carry.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// The cluster-level report ([`ServingReport::merge_boxes`] over the
    /// per-box reports, in box order).
    pub report: ServingReport,
    /// Fleet shape.
    pub boxes: usize,
    /// Cards per box.
    pub cards_per_box: usize,
    /// The router policy that produced this run.
    pub router: RouterPolicy,
    /// Requests routed off their home box (each paid one cross-box
    /// prompt transfer).
    pub cross_box_requests: usize,
    /// Total arrival delay injected by cross-box prompt transfers, ms.
    pub cross_box_delay_ms: f64,
    /// Per-box slices, in box order.
    pub per_box: Vec<BoxSummary>,
}

impl ClusterReport {
    /// Token-load imbalance across boxes: max routed tokens / mean routed
    /// tokens (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let max = self
            .per_box
            .iter()
            .map(|b| b.routed_tokens)
            .max()
            .unwrap_or(0);
        let total: u64 = self.per_box.iter().map(|b| b.routed_tokens).sum();
        if total == 0 {
            return 1.0;
        }
        max as f64 * self.per_box.len() as f64 / total as f64
    }

    /// Fraction of requests routed off their home box.
    pub fn cross_box_fraction(&self) -> f64 {
        if self.report.offered == 0 {
            return 0.0;
        }
        self.cross_box_requests as f64 / self.report.offered as f64
    }

    /// Device-weighted cluster availability: each box contributes its own
    /// [`BoxSummary::availability`] (measured against its *local*
    /// makespan) weighted by its card count. This is the same weighting
    /// fix `kv_block_utilization` needed — the naive
    /// `self.report.availability()` divides every card's up-time by the
    /// *cluster* makespan, under-counting boxes that finished early.
    pub fn availability(&self) -> f64 {
        let cards: usize = self.per_box.len() * self.cards_per_box;
        if cards == 0 {
            return 1.0;
        }
        let weighted: f64 = self
            .per_box
            .iter()
            .map(|b| b.availability * self.cards_per_box as f64)
            .sum();
        weighted / cards as f64
    }

    /// Total replica restarts across all boxes.
    pub fn restarts(&self) -> usize {
        self.per_box.iter().map(|b| b.restarts).sum()
    }

    /// Total KV bytes checkpointed to host DRAM across all boxes.
    pub fn checkpoint_bytes(&self) -> u64 {
        self.per_box.iter().map(|b| b.checkpoint_bytes).sum()
    }

    /// Total DMA restore time across all boxes, ms.
    pub fn restore_ms(&self) -> f64 {
        self.per_box.iter().map(|b| b.restore_ms).sum()
    }

    /// Total tokens recovered from snapshots across all boxes.
    pub fn recovered_tokens(&self) -> u64 {
        self.per_box.iter().map(|b| b.recovered_tokens).sum()
    }

    /// One-paragraph text summary.
    pub fn render(&self) -> String {
        let mut out = format!(
            "cluster: {} boxes x {} cards ({} devices), router {}\n\
             offered {} | completed {} | dropped {} | goodput {:.0} tok/s\n\
             makespan {:.1} ms | ttft p99 {:.2} ms | cross-box {} ({:.1}%) | imbalance {:.3}",
            self.boxes,
            self.cards_per_box,
            self.boxes * self.cards_per_box,
            self.router.name(),
            self.report.offered,
            self.report.completed.len(),
            self.report.dropped.len(),
            self.report.goodput_tokens_per_s,
            self.report.makespan_ms,
            self.report.ttft_ms.p99,
            self.cross_box_requests,
            100.0 * self.cross_box_fraction(),
            self.imbalance(),
        );
        if self.restarts() > 0 || self.checkpoint_bytes() > 0 {
            out.push_str(&format!(
                "\navailability {:.4} | restarts {} | checkpointed {} B | \
                 restored {:.2} ms | recovered {} tok",
                self.availability(),
                self.restarts(),
                self.checkpoint_bytes(),
                self.restore_ms(),
                self.recovered_tokens(),
            ));
        }
        out
    }
}

/// SplitMix64: the session-affinity hash assigning each request id a home
/// box. Chosen for avalanche quality (consecutive ids scatter uniformly)
/// and because it is already the workspace's seeding primitive.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Bytes the router ships when a prompt leaves its home box: one `u32`
/// token id per prompt token.
const BYTES_PER_PROMPT_TOKEN: u64 = 4;

/// Run a cluster simulation under the default execution policy.
pub fn simulate_cluster(cfg: &ClusterConfig) -> Result<ClusterReport, ServingError> {
    simulate_cluster_with(cfg, &ExecPolicy::default())
}

/// [`simulate_cluster`] under an explicit [`ExecPolicy`]: boxes fan out
/// across the policy's pool (each box simulates serially inline, so an
/// N-box cluster never nests fan-out) and merge in box order — the report
/// is bit-identical across policies.
pub fn simulate_cluster_with(
    cfg: &ClusterConfig,
    policy: &ExecPolicy,
) -> Result<ClusterReport, ServingError> {
    if cfg.boxes == 0 {
        return Err(ServingError::InvalidConfig(
            "cluster needs at least one box".into(),
        ));
    }
    if cfg.cards_per_box == 0 {
        return Err(ServingError::InvalidConfig(
            "boxes need at least one card".into(),
        ));
    }
    if !(cfg.oversubscription.is_finite() && cfg.oversubscription >= 1.0) {
        return Err(ServingError::InvalidConfig(format!(
            "oversubscription must be a finite factor >= 1.0, got {}",
            cfg.oversubscription
        )));
    }
    if cfg.box_config.traffic.num_requests == 0 {
        return Err(ServingError::InvalidConfig(
            "traffic.num_requests must be positive".into(),
        ));
    }

    let topo = cfg.topology();
    let mut requests = generate_requests(&cfg.box_config.traffic);
    requests.sort_by_key(|r| (r.arrival_us, r.id));

    // Route the stream. All router state is integer arithmetic over the
    // sorted stream, so the assignment is a pure function of the config.
    let mut shards: Vec<Vec<Request>> = vec![Vec::new(); cfg.boxes];
    let mut routed_tokens: Vec<u64> = vec![0; cfg.boxes];
    let mut rr = 0usize;
    let mut cross_box_requests = 0usize;
    let mut cross_box_delay_ms = 0.0f64;
    for mut r in requests {
        let home = (splitmix64(r.id) % cfg.boxes as u64) as usize;
        let target = match cfg.router {
            RouterPolicy::Locality => home,
            RouterPolicy::RoundRobin => {
                let t = rr;
                rr = (rr + 1) % cfg.boxes;
                t
            }
            RouterPolicy::LeastLoaded => (0..cfg.boxes)
                .min_by_key(|&b| (routed_tokens[b], b))
                .expect("boxes >= 1"),
        };
        routed_tokens[target] += r.total_tokens() as u64;
        if target != home {
            // The prompt crosses the switch tier before the target box
            // can see the request: oversubscribed bandwidth plus two
            // switch hops, quantized up to the engine's µs arrival grid.
            cross_box_requests += 1;
            let ns = topo.cross_box_transfer_ns(r.prompt_len as u64 * BYTES_PER_PROMPT_TOKEN);
            r.arrival_us += (ns / 1e3).ceil() as u64;
            cross_box_delay_ms += ns / 1e6;
        }
        shards[target].push(r);
    }

    // Every box serves its shard with the full engine; boxes are
    // independent, so they are the parallel grain (serial inline within a
    // box). Results come back in box order regardless of the pool.
    let mut box_cfg = cfg.box_config.clone();
    box_cfg.devices = cfg.cards_per_box;
    let inner = ExecPolicy {
        pool: gaudi_exec::ExecPool::serial(),
        plans: match &policy.plans {
            PlanSharing::PerReplica => PlanSharing::PerReplica,
            PlanSharing::PerCall => PlanSharing::PerCall,
            PlanSharing::Shared(cache) => PlanSharing::Shared(Arc::clone(cache)),
        },
    };
    let mut reports: Vec<ServingReport> =
        policy
            .pool
            .try_par_map(&shards, |_, shard| -> Result<_, ServingError> {
                simulate_trace_with(&box_cfg, shard.clone(), &inner)
            })?;

    let per_box: Vec<BoxSummary> = reports
        .iter()
        .enumerate()
        .map(|(b, r)| BoxSummary {
            box_id: b,
            offered: r.offered,
            completed: r.completed.len(),
            routed_tokens: routed_tokens[b],
            goodput_tokens_per_s: r.goodput_tokens_per_s,
            makespan_ms: r.makespan_ms,
            availability: r.availability(),
            restarts: r.restarts,
            checkpoint_bytes: r.checkpoint_bytes,
            restore_ms: r.restore_ms,
            recovered_tokens: r.recovered_tokens,
        })
        .collect();
    // A one-box cluster *is* its box: skip the second merge level so the
    // report is bit-identical to the plain engine (re-deriving a gauge as
    // `u × w / w` is not a floating-point no-op).
    let report = if reports.len() == 1 {
        reports.pop().expect("exactly one box")
    } else {
        ServingReport::merge_boxes(reports)
    };

    Ok(ClusterReport {
        report,
        boxes: cfg.boxes,
        cards_per_box: cfg.cards_per_box,
        router: cfg.router,
        cross_box_requests,
        cross_box_delay_ms,
        per_box,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::TrafficConfig;
    use gaudi_models::LlmConfig;

    fn cluster_config(boxes: usize, cards: usize, requests: usize) -> ClusterConfig {
        let mut model = LlmConfig::tiny(97);
        model.training = false;
        let base = ServingConfig::builder()
            .model(model)
            .traffic(TrafficConfig {
                arrival_rate_per_s: 2_000.0,
                num_requests: requests,
                prompt_range: (8, 64),
                output_range: (4, 16),
                zipf_s: 1.1,
                seed: 2024,
            })
            .max_batch(4)
            .ctx_bucket(32)
            .record_trace(false)
            .build();
        ClusterConfig::new(base, boxes, cards)
    }

    #[test]
    fn cluster_conserves_every_request_exactly_once() {
        for router in [
            RouterPolicy::RoundRobin,
            RouterPolicy::LeastLoaded,
            RouterPolicy::Locality,
        ] {
            let cfg = cluster_config(4, 2, 120).router(router);
            let c = simulate_cluster(&cfg).unwrap();
            assert_eq!(c.report.offered, 120, "router {router:?}");
            assert_eq!(
                c.report.completed.len() + c.report.dropped.len(),
                120,
                "router {router:?}"
            );
            assert_eq!(c.report.devices, 8);
            assert_eq!(
                c.per_box.iter().map(|b| b.offered).sum::<usize>(),
                120,
                "router {router:?}"
            );
        }
    }

    #[test]
    fn locality_never_crosses_boxes_and_balanced_routers_do() {
        let local =
            simulate_cluster(&cluster_config(4, 1, 100).router(RouterPolicy::Locality)).unwrap();
        assert_eq!(local.cross_box_requests, 0);
        assert_eq!(local.cross_box_delay_ms, 0.0);

        let rr =
            simulate_cluster(&cluster_config(4, 1, 100).router(RouterPolicy::RoundRobin)).unwrap();
        assert!(rr.cross_box_requests > 0, "round-robin must ship off-home");
        assert!(rr.cross_box_delay_ms > 0.0);
        // Round-robin request counts are exactly even.
        for b in &rr.per_box {
            assert_eq!(b.offered, 25);
        }

        let ll =
            simulate_cluster(&cluster_config(4, 1, 100).router(RouterPolicy::LeastLoaded)).unwrap();
        assert!(ll.cross_box_requests > 0);
        // Token balancing beats (or ties) the hash's token balance.
        assert!(ll.imbalance() <= local.imbalance() + 1e-12);
    }

    #[test]
    fn cross_box_transfers_delay_arrivals_through_the_switch_tier() {
        // Same cluster, fatter oversubscription: off-home requests wait
        // longer for their prompt, so total injected delay grows.
        let thin = simulate_cluster(&cluster_config(4, 1, 100).oversubscription(1.0)).unwrap();
        let fat = simulate_cluster(&cluster_config(4, 1, 100).oversubscription(16.0)).unwrap();
        assert_eq!(thin.cross_box_requests, fat.cross_box_requests);
        assert!(fat.cross_box_delay_ms > thin.cross_box_delay_ms);
    }

    #[test]
    fn identical_configs_produce_bit_identical_cluster_reports() {
        let cfg = cluster_config(3, 2, 90).router(RouterPolicy::LeastLoaded);
        let a = simulate_cluster(&cfg).unwrap();
        let b = simulate_cluster(&cfg).unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn single_box_cluster_matches_the_plain_engine() {
        // One box, locality routing: nothing crosses, nothing delays —
        // the cluster path must reduce to the box engine bit-for-bit.
        let cfg = cluster_config(1, 2, 60).router(RouterPolicy::Locality);
        let c = simulate_cluster(&cfg).unwrap();
        let mut plain = cfg.box_config;
        plain.devices = 2;
        let direct = crate::engine::simulate(&plain).unwrap();
        assert_eq!(format!("{:?}", c.report), format!("{direct:?}"));
        assert_eq!(c.cross_box_requests, 0);
    }

    #[test]
    fn cluster_availability_weights_boxes_by_their_own_makespan() {
        // Mirrors the PR-8 kv_block_utilization weighting fix at tp=2:
        // each box's availability must be measured against its *local*
        // makespan before device-weighting, not re-derived from the
        // cluster makespan the merged report carries.
        use gaudi_hw::{fault::FaultPlan, DeviceId};

        let mut cfg = cluster_config(2, 2, 120);
        cfg.box_config.faults = FaultPlan::none().kill_for(DeviceId(1), 5.0, 20.0);
        cfg.box_config.robustness = crate::RobustnessConfig::unlimited().checkpoint(4.0, 64e9);
        let c = simulate_cluster(&cfg).unwrap();

        // The same plan hits every box: both restart once and both
        // checkpoint, and the cluster accessors are the per-box sums.
        assert_eq!(c.restarts(), 2);
        assert_eq!(
            c.restarts(),
            c.per_box.iter().map(|b| b.restarts).sum::<usize>()
        );
        assert!(c.availability() < 1.0, "a down window must cost up-time");
        assert!(c.checkpoint_bytes() > 0, "live chains must snapshot");
        assert_eq!(
            c.checkpoint_bytes(),
            c.per_box.iter().map(|b| b.checkpoint_bytes).sum::<u64>()
        );

        // Device-weighted identity: equal-width boxes reduce to the mean
        // of the per-box values...
        let mean = c.per_box.iter().map(|b| b.availability).sum::<f64>() / c.boxes as f64;
        assert!((c.availability() - mean).abs() < 1e-12);
        // ...and the naive merged-report gauge disagrees whenever box
        // makespans differ (the shorter box's cards get under-counted
        // against the cluster-wide makespan).
        let spans: Vec<f64> = c.per_box.iter().map(|b| b.makespan_ms).collect();
        assert!(
            (spans[0] - spans[1]).abs() > 1e-9,
            "fixture must produce uneven box makespans, got {spans:?}"
        );
        assert!(
            (c.availability() - c.report.availability()).abs() > 1e-9,
            "weighted {} vs naive {} should diverge under uneven makespans",
            c.availability(),
            c.report.availability()
        );
        assert!(c.render().contains("availability"));
    }

    #[test]
    fn malformed_cluster_configs_are_rejected() {
        let ok = cluster_config(2, 2, 10);
        assert!(simulate_cluster(&ClusterConfig {
            boxes: 0,
            ..ok.clone()
        })
        .is_err());
        assert!(simulate_cluster(&ClusterConfig {
            cards_per_box: 0,
            ..ok.clone()
        })
        .is_err());
        assert!(simulate_cluster(&ok.clone().oversubscription(0.5)).is_err());
        let mut zero = ok;
        zero.box_config.traffic.num_requests = 0;
        assert!(simulate_cluster(&zero).is_err());
    }
}
