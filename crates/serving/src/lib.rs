//! # gaudi-serving — simulated multi-tenant LLM inference serving
//!
//! An online-serving layer over the Gaudi performance model: a seeded
//! request stream (Poisson arrivals, Zipf prompt/output lengths) is pushed
//! through a continuous-batching scheduler whose every phase — prefill and
//! decode alike — is priced by compiling a real compute graph through
//! `gaudi-compiler` onto the calibrated `gaudi-hw` engine models.
//!
//! The paper benchmarks training; this crate asks what its §3.3/§3.4
//! calibration implies for *inference serving*:
//!
//! - **prefill** is a large-GEMM workload that runs near the Table 2 MME
//!   throughput plateau, while **decode** is a batched-GEMV workload stuck
//!   at the small-matmul launch-overhead floor, with softmax/normalization
//!   TPC work growing with context — so the MME:TPC balance shifts per
//!   phase exactly as Table 2's small-shape columns predict;
//! - the **32 GB HBM** bound (§3.4) becomes a KV-cache admission limit
//!   with two selectable strategies ([`KvAdmissionConfig`]): the legacy
//!   contiguous accountant reserves each request's worst-case footprint up
//!   front, while paged admission ([`paged`]) allocates fixed-size blocks
//!   as contexts actually grow — more concurrent sequences from the same
//!   HBM, with deterministic preemption when the pool runs dry;
//! - SynapseAI's **recipe cache** becomes a compiled-phase-cost cache
//!   keyed by `(batch, bucketed length)` ([`CostModel`]), which is why the
//!   scheduler quantizes context lengths to buckets — and a quantitative
//!   warmup model ([`RecipeConfig`]) charges a compile-latency penalty the
//!   first time each replica sees a `(phase, ctx bucket, batch bucket)`
//!   shape, so cold or restarted replicas pay recipe compilation.
//!
//! ## Quick start
//!
//! ```
//! use gaudi_serving::{simulate, ServingConfig, TrafficConfig};
//!
//! let mut cfg = ServingConfig::paper_gpt();
//! cfg.traffic = TrafficConfig { num_requests: 10, ..TrafficConfig::default() };
//! let report = simulate(&cfg).unwrap();
//! assert_eq!(report.completed.len(), 10);
//! assert!(report.kv_peak_bytes <= report.kv_capacity_bytes);
//! println!("{}", report.render());
//! ```
//!
//! Identical configurations produce bit-identical reports: the simulation
//! is a pure function of its inputs (integer-microsecond arrival times, no
//! wall clock anywhere) — and that stays true under fault injection: a
//! [`FaultPlan`] in the config kills cards (permanently or with a restart
//! window), degrades links, and throttles phases deterministically, while
//! the scheduler re-dispatches the dead replica's work with exponential
//! backoff and readmits recovered replicas into the pool ([`fault`]).
//!
//! A [`RobustnessConfig`] adds overload protection on top: bounded
//! admission queues shed excess arrivals, TTFT/end-to-end deadlines expire
//! requests whose SLOs can no longer be met, and retry budgets bound how
//! long a victim of repeated failures is kept alive. Requests then
//! terminate as completed, rejected, timed-out, or failed ([`DropKind`]),
//! and the report separates goodput (SLO-met tokens) from raw throughput.

pub mod calendar;
pub mod cluster;
pub mod cost;
pub mod engine;
pub mod error;
pub mod fault;
pub mod kv;
pub mod paged;
pub mod report;
pub mod request;
pub mod robustness;

pub use calendar::EventCalendar;
pub use cluster::{
    simulate_cluster, simulate_cluster_with, BoxSummary, ClusterConfig, ClusterReport, RouterPolicy,
};
pub use cost::{
    CostContext, CostModel, Phase, PhaseCost, PlanCache, PlanCacheStats, RecipeCache, RecipeConfig,
};
pub use engine::{
    activation_estimate, simulate, simulate_trace, simulate_trace_with, simulate_with, ExecPolicy,
    PlanSharing, ServingConfig, ServingConfigBuilder,
};
pub use error::ServingError;
pub use fault::{Job, RedistributionPolicy};
pub use gaudi_exec::ExecPool;
pub use gaudi_hw::fault::{FaultCampaign, FaultError, FaultPlan};
pub use kv::{ActivationBudget, ContiguousKv, KvAccountant, KvAdmission, KvAdmissionConfig};
pub use paged::{BlockPool, PagedKv};
pub use report::{DropKind, DroppedRequest, Percentiles, RequestOutcome, ServingReport};
pub use request::{generate_requests, Request, TrafficConfig};
pub use robustness::{CheckpointPolicy, RobustnessConfig};
