//! The serving engine: continuous batching at decode-step boundaries.
//!
//! The simulator advances a single device clock through an
//! iteration-level (Orca-style) schedule:
//!
//! 1. ingest arrivals into a FIFO admission queue — re-checked after
//!    *every* phase, so requests landing during a long prefill or decode
//!    step become schedulable (and visible to `max_queue_depth`) at the
//!    phase boundary, not a full iteration later;
//! 2. at every step boundary, admit queued requests while the decode
//!    batch has a slot *and* the KV accountant accepts the request's
//!    worst-case reservation (otherwise: backpressure — the request
//!    waits, it is never dropped);
//! 3. admission runs the request's prefill as a dedicated phase (the
//!    engine is busy for its full duration). The prefill's last forward
//!    pass emits the request's **first output token**, so TTFT is
//!    queueing + prefill, and a request needs `output_len - 1` decode
//!    steps after admission;
//! 4. one decode step advances *every* running request by one token;
//!    requests that reach their output length retire at the boundary and
//!    free their KV reservation immediately, opening slots for the queue.
//!
//! Every phase is priced by the [`CostModel`], so
//! the same §3.3/§3.4 hardware calibration that reproduces the paper's
//! training figures also sets TTFT and per-token latency here.
//!
//! ## Fault injection
//!
//! A [`FaultPlan`] in the configuration makes replicas mortal. A replica
//! whose card the plan kills halts at the first phase boundary at or
//! after the failure time; its in-flight, queued, and not-yet-arrived
//! requests are re-queued (retry count bumped, tokens generated so far
//! discarded) and redistributed over the surviving replicas under the
//! configured [`RedistributionPolicy`]. Slowdown windows stretch the
//! phases that start inside them. Everything stays a pure function of the
//! configuration: same seed, same plan, bit-identical report.

use crate::cost::{CostContext, CostModel, PlanCache};
use crate::error::ServingError;
use crate::fault::{redistribute, Job, RedistributionPolicy};
use crate::kv::{kv_bytes_per_token, weight_bytes, KvAccountant};
use crate::report::{Percentiles, RequestOutcome, ServingReport};
use crate::request::{generate_requests, Request, TrafficConfig};
use gaudi_compiler::CompilerOptions;
use gaudi_exec::ExecPool;
use gaudi_hw::fault::FaultPlan;
use gaudi_hw::{DeviceId, EngineId, GaudiConfig};
use gaudi_models::LlmConfig;
use gaudi_profiler::trace::TraceEvent;
use gaudi_profiler::Trace;
use gaudi_tensor::DType;
use std::collections::VecDeque;
use std::sync::Arc;

/// Full configuration of a serving simulation.
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// The model being served (its `batch`/`seq_len`/`training` fields are
    /// ignored; serving shapes phases itself).
    pub model: LlmConfig,
    /// Request-stream parameters.
    pub traffic: TrafficConfig,
    /// Maximum decode batch size (continuous-batching slot count).
    pub max_batch: usize,
    /// Context-length bucket for the decode-graph cache, tokens.
    pub ctx_bucket: usize,
    /// KV-cache element type.
    pub kv_dtype: DType,
    /// Hardware model.
    pub hw: GaudiConfig,
    /// Compiler options used to cost every phase.
    pub opts: CompilerOptions,
    /// Number of cards serving as independent data-parallel replicas, each
    /// holding a full model copy and taking a round-robin share of the
    /// request stream.
    pub devices: usize,
    /// Deterministic fault schedule: card failures, degraded links, and
    /// slowdown windows. [`FaultPlan::none`] (the default) is steady state.
    pub faults: FaultPlan,
    /// How requests orphaned by a card failure spread over the survivors.
    pub redistribution: RedistributionPolicy,
}

impl ServingConfig {
    /// Serve the paper's §3.4 GPT configuration (2 layers, d=512). Tiny by
    /// modern standards — its KV cache almost never pressures 32 GB.
    pub fn paper_gpt() -> Self {
        let mut model = LlmConfig::paper_section_3_4(50257);
        model.training = false;
        ServingConfig {
            model,
            traffic: TrafficConfig::default(),
            max_batch: 8,
            ctx_bucket: 128,
            kv_dtype: DType::F32,
            hw: GaudiConfig::hls1(),
            opts: CompilerOptions::default(),
            devices: 1,
            faults: FaultPlan::none(),
            redistribution: RedistributionPolicy::default(),
        }
    }

    /// A GPT-2-XL-class model (48 layers, d=1600): heavy enough that KV
    /// reservations contend for the 32 GB device and admission
    /// backpressure actually engages.
    pub fn gpt2_xl() -> Self {
        let model = LlmConfig {
            vocab: 50257,
            seq_len: 2048,
            batch: 1,
            layers: 48,
            heads: 25,
            head_dim: 64,
            ffn_mult: 4,
            training: false,
        };
        ServingConfig {
            model,
            traffic: TrafficConfig::default(),
            max_batch: 16,
            ctx_bucket: 128,
            kv_dtype: DType::F32,
            hw: GaudiConfig::hls1(),
            opts: CompilerOptions::default(),
            devices: 1,
            faults: FaultPlan::none(),
            redistribution: RedistributionPolicy::default(),
        }
    }

    /// Largest prompt+output the traffic model can emit, tokens.
    fn max_request_tokens(&self) -> usize {
        self.traffic.prompt_range.1 + self.traffic.output_range.1
    }
}

/// How compiled phase plans are shared between the replicas of a
/// simulation (and possibly beyond it).
#[derive(Debug, Clone, Default)]
pub enum PlanSharing {
    /// Every replica compiles privately, cloning the model/hardware/option
    /// structs for its own [`CostModel`] — the legacy behavior, kept as
    /// the benchmark baseline.
    PerReplica,
    /// One [`CostContext`] per `simulate` call: replicas share compiled
    /// plans and borrow one set of configs instead of cloning them apiece.
    #[default]
    PerCall,
    /// Memoize into a caller-provided [`PlanCache`], shared across calls —
    /// sweep points with overlapping phase shapes compile each shape once
    /// process-wide.
    Shared(Arc<PlanCache>),
}

/// Execution policy for a serving simulation: where replica simulations
/// run and how their compiled plans are shared. The result of a simulation
/// is bit-identical under every policy — replicas are independent, the
/// pool returns their results in input order, and plan sharing only
/// changes *when* a shape is compiled, never what it costs.
#[derive(Debug, Clone)]
pub struct ExecPolicy {
    /// Thread pool replica simulations fan out on ([`ExecPool::serial`]
    /// runs them inline on the caller).
    pub pool: ExecPool,
    /// Plan-compilation sharing between replicas / across calls.
    pub plans: PlanSharing,
}

impl Default for ExecPolicy {
    /// Global process pool (`GAUDI_EXEC_THREADS` sizes it), plans shared
    /// within the call.
    fn default() -> Self {
        ExecPolicy {
            pool: ExecPool::global().clone(),
            plans: PlanSharing::default(),
        }
    }
}

impl ExecPolicy {
    /// Everything inline on the caller, every replica compiling privately:
    /// the pre-parallelism behavior, useful as a benchmark baseline and
    /// for `GAUDI_EXEC_THREADS=1`-style determinism checks.
    pub fn serial_baseline() -> Self {
        ExecPolicy {
            pool: ExecPool::serial(),
            plans: PlanSharing::PerReplica,
        }
    }

    /// Global pool, memoizing compilations into `cache` (share one cache
    /// across a sweep to compile each distinct phase shape once).
    pub fn shared(cache: Arc<PlanCache>) -> Self {
        ExecPolicy {
            pool: ExecPool::global().clone(),
            plans: PlanSharing::Shared(cache),
        }
    }

    /// The same policy with `pool` swapped in.
    pub fn with_pool(mut self, pool: ExecPool) -> Self {
        self.pool = pool;
        self
    }
}

/// A request currently holding a decode slot.
#[derive(Debug)]
struct Active {
    job: Job,
    /// Tokens visible to attention (prompt + generated so far).
    ctx: usize,
    generated: usize,
    outcome: RequestOutcome,
}

/// One replica's simulation result: its report plus whatever the fault
/// plan made it drop.
struct ReplicaRun {
    report: ServingReport,
    orphans: Vec<Job>,
}

/// Run a serving simulation to completion.
///
/// Identical configurations (including `traffic.seed` and the fault plan)
/// produce identical reports: the simulation is a deterministic function
/// of its inputs.
///
/// With `cfg.devices > 1` the request stream is split round-robin (in
/// arrival order) across that many data-parallel replicas, each running the
/// full continuous-batching schedule on its own card; the merged report
/// carries per-card-averaged utilizations and a device-tagged trace. A
/// replica the fault plan kills re-queues its unfinished work onto the
/// survivors (see the module docs); if the plan kills *every* replica
/// while requests are outstanding, the simulation fails with
/// [`ServingError::AllReplicasDead`].
pub fn simulate(cfg: &ServingConfig) -> Result<ServingReport, ServingError> {
    simulate_with(cfg, &ExecPolicy::default())
}

/// [`simulate`] under an explicit [`ExecPolicy`]. The policy affects wall
/// time only; the report is bit-identical across policies.
pub fn simulate_with(
    cfg: &ServingConfig,
    policy: &ExecPolicy,
) -> Result<ServingReport, ServingError> {
    if cfg.traffic.num_requests == 0 {
        return Err(ServingError::InvalidConfig(
            "traffic.num_requests must be positive".into(),
        ));
    }
    simulate_trace_with(cfg, generate_requests(&cfg.traffic), policy)
}

/// [`simulate`] over an explicit request trace instead of the seeded
/// generator — the hook for replaying recorded workloads and for tests
/// that need exact control over arrivals and lengths. Requests are
/// processed in `(arrival, id)` order regardless of input order.
pub fn simulate_trace(
    cfg: &ServingConfig,
    requests: Vec<Request>,
) -> Result<ServingReport, ServingError> {
    simulate_trace_with(cfg, requests, &ExecPolicy::default())
}

/// [`simulate_trace`] under an explicit [`ExecPolicy`].
pub fn simulate_trace_with(
    cfg: &ServingConfig,
    mut requests: Vec<Request>,
    policy: &ExecPolicy,
) -> Result<ServingReport, ServingError> {
    if cfg.max_batch == 0 {
        return Err(ServingError::InvalidConfig(
            "max_batch must be at least 1".into(),
        ));
    }
    if cfg.devices == 0 {
        return Err(ServingError::InvalidConfig(
            "devices must be at least 1".into(),
        ));
    }
    cfg.faults.validate(cfg.devices)?;

    requests.sort_by_key(|r| (r.arrival_us, r.id));
    let mut shards: Vec<Vec<Job>> = vec![Vec::new(); cfg.devices];
    for (i, r) in requests.into_iter().enumerate() {
        shards[i % cfg.devices].push(Job::fresh(r));
    }
    let shard_load: Vec<usize> = shards
        .iter()
        .map(|s| s.iter().map(|j| j.req.total_tokens()).sum())
        .collect();

    // One compile context shared by every replica of this call (unless the
    // policy asks for the legacy per-replica compilation).
    let ctx: Option<Arc<CostContext>> = match &policy.plans {
        PlanSharing::PerReplica => None,
        PlanSharing::PerCall => Some(Arc::new(CostContext::new(
            cfg.model.clone(),
            cfg.hw.clone(),
            cfg.opts.clone(),
            cfg.ctx_bucket,
            Arc::new(PlanCache::new()),
        ))),
        PlanSharing::Shared(cache) => Some(Arc::new(CostContext::new(
            cfg.model.clone(),
            cfg.hw.clone(),
            cfg.opts.clone(),
            cfg.ctx_bucket,
            Arc::clone(cache),
        ))),
    };
    let make_cost = || match &ctx {
        Some(c) => CostModel::with_context(Arc::clone(c)),
        None => CostModel::new(
            cfg.model.clone(),
            cfg.hw.clone(),
            cfg.opts.clone(),
            cfg.ctx_bucket,
        ),
    };

    // Pass 1: every replica runs its own share (possibly dying mid-way).
    // Replicas are independent single-card simulations, so they fan out on
    // the policy's pool; `try_par_map` returns results in input order and
    // surfaces the lowest-index error, matching the serial semantics.
    let mut runs: Vec<ReplicaRun> = policy.pool.try_par_map(&shards, |d, jobs| {
        simulate_replica(cfg, d, jobs.clone(), make_cost())
    })?;

    // Pass 2: re-queue orphans onto the survivors and re-simulate only the
    // replicas whose queues changed. Survivors never orphan (nothing kills
    // them), so one redistribution round settles the system.
    let orphans: Vec<Job> = runs
        .iter_mut()
        .flat_map(|r| std::mem::take(&mut r.orphans))
        .collect();
    if !orphans.is_empty() {
        let survivors: Vec<usize> = (0..cfg.devices)
            .filter(|&d| cfg.faults.kill_time_ms(DeviceId(d)).is_none())
            .collect();
        if survivors.is_empty() {
            return Err(ServingError::AllReplicasDead {
                unserved: orphans.len(),
            });
        }
        // Settle every affected queue first, then re-simulate them all in
        // one parallel wave. A device's final run depends only on its final
        // queue, so this is equivalent to re-simulating after each
        // redistribution step — minus the redundant intermediate runs.
        let mut affected: Vec<usize> = Vec::new();
        for (d, extra) in redistribute(orphans, &survivors, &shard_load, cfg.redistribution) {
            shards[d].extend(extra);
            shards[d].sort_by_key(|j| (j.submitted_us, j.req.id));
            if !affected.contains(&d) {
                affected.push(d);
            }
        }
        let reruns = policy.pool.try_par_map(&affected, |_, &d| {
            simulate_replica(cfg, d, shards[d].clone(), make_cost())
        })?;
        for (&d, rerun) in affected.iter().zip(reruns) {
            debug_assert!(
                rerun.orphans.is_empty(),
                "a surviving replica must not orphan work"
            );
            runs[d] = rerun;
        }
    }

    let mut reports: Vec<ServingReport> = runs.into_iter().map(|r| r.report).collect();
    if cfg.devices == 1 {
        return Ok(reports.pop().expect("exactly one replica"));
    }
    Ok(merge_replicas(cfg.devices, reports))
}

/// One card's continuous-batching simulation over its share of the stream,
/// honoring the fault plan's kill time and slowdown windows for `replica`.
fn simulate_replica(
    cfg: &ServingConfig,
    replica: usize,
    jobs: Vec<Job>,
    mut cost: CostModel,
) -> Result<ReplicaRun, ServingError> {
    let device = DeviceId(replica);
    let kill_at_ms = cfg.faults.kill_time_ms(device);
    let dead = |clock_ms: f64| kill_at_ms.is_some_and(|k| clock_ms >= k);

    let max_positions = cfg.max_request_tokens();
    let weights = weight_bytes(&cfg.model, max_positions, cfg.kv_dtype);
    let per_token = kv_bytes_per_token(&cfg.model, cfg.kv_dtype);
    let mut kv = KvAccountant::new(&cfg.hw.memory, weights, per_token)
        .map_err(ServingError::WeightsDontFit)?;

    // Reject outright only what can never fit; everything else queues.
    for j in &jobs {
        if j.req.total_tokens() as u64 > kv.max_admissible_tokens() {
            return Err(ServingError::RequestTooLarge {
                id: j.req.id,
                tokens: j.req.total_tokens(),
                max_tokens: kv.max_admissible_tokens(),
            });
        }
    }

    let mut pending: VecDeque<Job> = jobs.into_iter().collect();
    let mut waiting: VecDeque<Job> = VecDeque::new();
    let mut running: Vec<Active> = Vec::new();
    let mut done: Vec<RequestOutcome> = Vec::new();
    let mut orphans: Vec<Job> = Vec::new();

    let mut clock_ms = 0.0f64;
    let mut mme_busy_ns = 0.0f64;
    let mut tpc_busy_ns = 0.0f64;
    let mut dma_busy_ns = 0.0f64;
    let mut nic_busy_ns = 0.0f64;
    let mut decode_steps = 0usize;
    let mut prefills = 0usize;
    let mut backpressure_stalls = 0usize;
    let mut max_queue_depth = 0usize;
    let mut requeued_tokens = 0usize;
    let mut killed = false;
    let mut trace = Trace::new();

    /// Move every arrived job into the admission queue and refresh the
    /// depth high-water mark. Called at every phase boundary, not just at
    /// the loop top, so arrivals during long phases are never invisible.
    fn ingest(
        pending: &mut VecDeque<Job>,
        waiting: &mut VecDeque<Job>,
        clock_ms: f64,
        max_queue_depth: &mut usize,
    ) {
        while pending
            .front()
            .is_some_and(|j| j.submitted_ms() <= clock_ms)
        {
            if let Some(j) = pending.pop_front() {
                waiting.push_back(j);
            }
        }
        *max_queue_depth = (*max_queue_depth).max(waiting.len());
    }

    let total = pending.len();
    'sim: while done.len() < total {
        if dead(clock_ms) {
            killed = true;
            break 'sim;
        }
        // 1. Ingest everything that has arrived by now.
        ingest(&mut pending, &mut waiting, clock_ms, &mut max_queue_depth);

        // 2. Admit from the queue while slots and KV reservations allow.
        while running.len() < cfg.max_batch {
            let Some(front) = waiting.front() else { break };
            if kv.try_reserve(front.req.total_tokens()).is_err() {
                backpressure_stalls += 1;
                break; // FIFO: wait for retirements, do not starve the head.
            }
            let Some(job) = waiting.pop_front() else {
                break;
            };
            let queue_ms = clock_ms - job.submitted_ms();
            let factor = cfg.faults.slowdown_factor(device, clock_ms);
            let c = cost.prefill(1, job.req.prompt_len)?.scaled(factor);
            record_phase(&mut trace, "prefill", clock_ms, &c);
            clock_ms += c.ms;
            mme_busy_ns += c.mme_busy_ns;
            tpc_busy_ns += c.tpc_busy_ns;
            dma_busy_ns += c.dma_busy_ns;
            nic_busy_ns += c.nic_busy_ns;
            prefills += 1;
            // The prefill's final forward pass emits the first output
            // token: TTFT is queueing + prefill, measured from the
            // request's original arrival.
            let outcome = RequestOutcome {
                id: job.req.id,
                arrival_ms: job.req.arrival_ms(),
                prompt_len: job.req.prompt_len,
                output_len: job.req.output_len,
                queue_ms,
                ttft_ms: clock_ms - job.req.arrival_ms(),
                retries: job.retries,
                finish_ms: 0.0,
                token_times_ms: {
                    let mut t = Vec::with_capacity(job.req.output_len);
                    t.push(clock_ms);
                    t
                },
            };
            if job.req.output_len == 1 {
                // Single-token request: prefill completed it outright.
                let mut outcome = outcome;
                outcome.finish_ms = clock_ms;
                kv.release(job.req.total_tokens());
                done.push(outcome);
            } else {
                running.push(Active {
                    ctx: job.req.prompt_len + 1,
                    generated: 1,
                    outcome,
                    job,
                });
            }
            // Arrivals during this prefill become admissible immediately.
            ingest(&mut pending, &mut waiting, clock_ms, &mut max_queue_depth);
            if dead(clock_ms) {
                killed = true;
                break 'sim;
            }
        }

        // 3. Nothing running: jump the clock to the next arrival (or to
        //    the card's death, whichever comes first).
        if running.is_empty() {
            let Some(next) = pending.front() else {
                debug_assert!(
                    waiting.is_empty(),
                    "queued requests can always be admitted into an idle engine"
                );
                break;
            };
            let target = clock_ms.max(next.submitted_ms());
            clock_ms = match kill_at_ms {
                Some(k) if k < target => k, // dies idle, before the arrival
                _ => target,
            };
            continue;
        }

        // 4. One decode step advances every running request by one token.
        let batch = running.len();
        let max_ctx = running.iter().map(|a| a.ctx).max().unwrap_or(1);
        let factor = cfg.faults.slowdown_factor(device, clock_ms);
        let c = cost.decode(batch, max_ctx)?.scaled(factor);
        record_phase(&mut trace, "decode", clock_ms, &c);
        clock_ms += c.ms;
        mme_busy_ns += c.mme_busy_ns;
        tpc_busy_ns += c.tpc_busy_ns;
        dma_busy_ns += c.dma_busy_ns;
        nic_busy_ns += c.nic_busy_ns;
        decode_steps += 1;

        let mut i = 0;
        while i < running.len() {
            let a = &mut running[i];
            a.generated += 1;
            a.ctx += 1;
            a.outcome.token_times_ms.push(clock_ms);
            if a.generated == a.job.req.output_len {
                let mut finished = running.swap_remove(i);
                finished.outcome.finish_ms = clock_ms;
                kv.release(finished.job.req.total_tokens());
                done.push(finished.outcome);
            } else {
                i += 1;
            }
        }
        // Arrivals during this decode step join the queue at its boundary.
        ingest(&mut pending, &mut waiting, clock_ms, &mut max_queue_depth);
    }

    // A killed replica re-queues everything it did not finish: in-flight
    // work loses its generated-so-far tokens, queued and future arrivals
    // just move. All of it lands at the failure time, never earlier than
    // each request's own arrival.
    if killed {
        let at = kill_at_ms.expect("killed implies a kill time");
        for a in running.drain(..) {
            requeued_tokens += a.generated;
            kv.release(a.job.req.total_tokens());
            orphans.push(a.job.requeued(at));
        }
        for j in waiting.drain(..).chain(pending.drain(..)) {
            orphans.push(j.requeued(at));
        }
    }
    let uptime_ms = if killed {
        kill_at_ms.expect("killed implies a kill time")
    } else {
        clock_ms
    };

    done.sort_by_key(|o| o.id);
    let span_ns = clock_ms * 1e6;
    let generated_tokens: usize = done.iter().map(|o| o.output_len).sum();
    let retries: usize = done.iter().map(|o| o.retries as usize).sum();

    let ttft = Percentiles::of(done.iter().map(|o| o.ttft_ms));
    let tpot = Percentiles::of(done.iter().flat_map(|o| {
        o.token_times_ms
            .windows(2)
            .map(|w| w[1] - w[0])
            .collect::<Vec<_>>()
    }));
    let queue = Percentiles::of(done.iter().map(|o| o.queue_ms));
    let util = |busy_ns: f64| {
        if span_ns > 0.0 {
            busy_ns / span_ns
        } else {
            0.0
        }
    };

    let report = ServingReport {
        completed: done,
        makespan_ms: clock_ms,
        ttft_ms: ttft,
        tpot_ms: tpot,
        queue_ms: queue,
        goodput_tokens_per_s: if clock_ms > 0.0 {
            generated_tokens as f64 / (clock_ms / 1e3)
        } else {
            0.0
        },
        mme_utilization: util(mme_busy_ns),
        tpc_utilization: util(tpc_busy_ns),
        dma_utilization: util(dma_busy_ns),
        nic_utilization: util(nic_busy_ns),
        decode_steps,
        prefills,
        backpressure_stalls,
        max_queue_depth,
        kv_peak_bytes: kv.peak(),
        kv_capacity_bytes: kv.capacity(),
        compiled_graphs: cost.compiled_graphs(),
        devices: 1,
        retries,
        requeued_tokens,
        failed_replicas: killed as usize,
        replica_uptime_ms: vec![uptime_ms],
        trace,
    };
    Ok(ReplicaRun { report, orphans })
}

/// Merge per-replica reports into one box-level report: latency percentiles
/// recomputed over the union, throughput summed against the slowest
/// replica's makespan, utilizations averaged per card (busy time
/// reconstructed from each replica's utilization × its own makespan, NIC
/// included), availability counters summed, and the trace re-tagged with
/// each replica's [`DeviceId`].
fn merge_replicas(devices: usize, replicas: Vec<ServingReport>) -> ServingReport {
    let makespan_ms = replicas.iter().map(|r| r.makespan_ms).fold(0.0, f64::max);
    let span_ns = makespan_ms * 1e6;
    // Recover each replica's busy time from its own utilization x makespan.
    let busy = |f: fn(&ServingReport) -> f64| -> f64 {
        replicas.iter().map(|r| f(r) * r.makespan_ms * 1e6).sum()
    };
    let util = |f: fn(&ServingReport) -> f64| -> f64 {
        if span_ns > 0.0 {
            busy(f) / (span_ns * devices as f64)
        } else {
            0.0
        }
    };
    let mme_utilization = util(|r| r.mme_utilization);
    let tpc_utilization = util(|r| r.tpc_utilization);
    let dma_utilization = util(|r| r.dma_utilization);
    let nic_utilization = util(|r| r.nic_utilization);

    let mut completed: Vec<RequestOutcome> = Vec::new();
    let mut trace = Trace::new();
    let mut decode_steps = 0;
    let mut prefills = 0;
    let mut backpressure_stalls = 0;
    let mut max_queue_depth = 0;
    let mut kv_peak_bytes = 0;
    let mut kv_capacity_bytes = 0;
    let mut compiled_graphs = 0;
    let mut retries = 0;
    let mut requeued_tokens = 0;
    let mut failed_replicas = 0;
    let mut replica_uptime_ms = Vec::with_capacity(devices);
    for (d, r) in replicas.into_iter().enumerate() {
        completed.extend(r.completed);
        for ev in r.trace.events() {
            trace.push(ev.clone().on_device(DeviceId(d)));
        }
        decode_steps += r.decode_steps;
        prefills += r.prefills;
        backpressure_stalls += r.backpressure_stalls;
        max_queue_depth = max_queue_depth.max(r.max_queue_depth);
        kv_peak_bytes = r.kv_peak_bytes.max(kv_peak_bytes);
        kv_capacity_bytes = r.kv_capacity_bytes;
        compiled_graphs += r.compiled_graphs;
        retries += r.retries;
        requeued_tokens += r.requeued_tokens;
        failed_replicas += r.failed_replicas;
        replica_uptime_ms.extend(r.replica_uptime_ms);
    }
    completed.sort_by_key(|o| o.id);
    let generated_tokens: usize = completed.iter().map(|o| o.output_len).sum();

    let ttft_ms = Percentiles::of(completed.iter().map(|o| o.ttft_ms));
    let tpot_ms = Percentiles::of(completed.iter().flat_map(|o| {
        o.token_times_ms
            .windows(2)
            .map(|w| w[1] - w[0])
            .collect::<Vec<_>>()
    }));
    let queue_ms = Percentiles::of(completed.iter().map(|o| o.queue_ms));

    ServingReport {
        completed,
        makespan_ms,
        ttft_ms,
        tpot_ms,
        queue_ms,
        goodput_tokens_per_s: if makespan_ms > 0.0 {
            generated_tokens as f64 / (makespan_ms / 1e3)
        } else {
            0.0
        },
        mme_utilization,
        tpc_utilization,
        dma_utilization,
        nic_utilization,
        decode_steps,
        prefills,
        backpressure_stalls,
        max_queue_depth,
        kv_peak_bytes,
        kv_capacity_bytes,
        compiled_graphs,
        devices,
        retries,
        requeued_tokens,
        failed_replicas,
        replica_uptime_ms,
        trace,
    }
}

/// Append one trace event per busy engine for a phase, so the report's
/// timeline renders through the standard profiler tooling.
fn record_phase(trace: &mut Trace, name: &str, start_ms: f64, c: &crate::cost::PhaseCost) {
    let start_ns = start_ms * 1e6;
    for (engine, busy) in [
        (EngineId::Mme, c.mme_busy_ns),
        (EngineId::TpcCluster, c.tpc_busy_ns),
        (EngineId::Dma(0), c.dma_busy_ns),
        (EngineId::Nic, c.nic_busy_ns),
    ] {
        if busy > 0.0 {
            trace.push(TraceEvent::basic(name, "serving", engine, start_ns, busy));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ServingConfig {
        let mut model = LlmConfig::tiny(97);
        model.training = false;
        ServingConfig {
            model,
            traffic: TrafficConfig {
                arrival_rate_per_s: 50.0,
                num_requests: 30,
                prompt_range: (8, 64),
                output_range: (4, 16),
                zipf_s: 1.1,
                seed: 7,
            },
            max_batch: 4,
            ctx_bucket: 32,
            kv_dtype: DType::F32,
            hw: GaudiConfig::hls1(),
            opts: CompilerOptions::default(),
            devices: 1,
            faults: FaultPlan::none(),
            redistribution: RedistributionPolicy::default(),
        }
    }

    #[test]
    fn completes_every_request_exactly_once() {
        let r = simulate(&tiny_config()).unwrap();
        assert_eq!(r.completed.len(), 30);
        for (i, o) in r.completed.iter().enumerate() {
            assert_eq!(o.id, i as u64);
            assert_eq!(o.token_times_ms.len(), o.output_len);
            assert_eq!(o.retries, 0, "fault-free runs never retry");
        }
        assert_eq!(r.retries, 0);
        assert_eq!(r.failed_replicas, 0);
        assert_eq!(r.availability(), 1.0);
    }

    #[test]
    fn identical_seeds_identical_reports() {
        let a = simulate(&tiny_config()).unwrap();
        let b = simulate(&tiny_config()).unwrap();
        assert_eq!(a.makespan_ms, b.makespan_ms);
        assert_eq!(a.ttft_ms.p99, b.ttft_ms.p99);
        assert_eq!(a.goodput_tokens_per_s, b.goodput_tokens_per_s);
        assert_eq!(a.decode_steps, b.decode_steps);
    }

    #[test]
    fn token_times_are_strictly_increasing() {
        let r = simulate(&tiny_config()).unwrap();
        for o in &r.completed {
            for w in o.token_times_ms.windows(2) {
                assert!(w[0] < w[1], "token order violated for request {}", o.id);
            }
            assert!(o.ttft_ms > 0.0);
            assert!(o.finish_ms >= o.arrival_ms + o.ttft_ms);
        }
    }

    #[test]
    fn ttft_of_an_unloaded_request_is_exactly_its_prefill_cost() {
        // Regression for the off-by-one-decode-step TTFT bug: prefill's
        // last forward pass emits the first token, so a lone request on an
        // idle engine has TTFT == prefill(prompt) — no queueing, no decode
        // step folded in.
        let cfg = tiny_config();
        let req = Request {
            id: 0,
            arrival_us: 0,
            prompt_len: 48,
            output_len: 6,
        };
        let r = simulate_trace(&cfg, vec![req]).unwrap();
        let mut cost = CostModel::new(
            cfg.model.clone(),
            cfg.hw.clone(),
            cfg.opts.clone(),
            cfg.ctx_bucket,
        );
        let prefill_ms = cost.prefill(1, 48).unwrap().ms;
        let o = &r.completed[0];
        assert_eq!(o.queue_ms, 0.0);
        assert_eq!(o.ttft_ms, prefill_ms, "TTFT must equal the prefill cost");
        assert_eq!(o.token_times_ms[0], prefill_ms);
        // output_len - 1 decode steps finish the request.
        assert_eq!(r.decode_steps, 5);
        assert_eq!(o.token_times_ms.len(), 6);
    }

    #[test]
    fn arrivals_during_a_long_prefill_are_ingested_at_the_phase_boundary() {
        // Request 0's prefill is long; 1-4 arrive 1 µs into it. With
        // phase-boundary ingestion they are all queued (depth 4) and
        // admitted back-to-back before any decode step runs, so the whole
        // batch decodes together: output_len - 1 shared steps total.
        let cfg = ServingConfig {
            max_batch: 8,
            ..tiny_config()
        };
        let mut reqs = vec![Request {
            id: 0,
            arrival_us: 0,
            prompt_len: 256,
            output_len: 4,
        }];
        for id in 1..5 {
            reqs.push(Request {
                id,
                arrival_us: 1,
                prompt_len: 8,
                output_len: 4,
            });
        }
        let r = simulate_trace(&cfg, reqs).unwrap();
        assert_eq!(r.completed.len(), 5);
        assert_eq!(
            r.max_queue_depth, 4,
            "arrivals during the prefill must be visible to the depth gauge"
        );
        assert_eq!(
            r.decode_steps, 3,
            "all five requests decode as one batch after back-to-back prefills"
        );
        for o in &r.completed[1..] {
            assert!(
                o.queue_ms > 0.0,
                "requests 1-4 waited out request 0's prefill"
            );
        }
    }

    #[test]
    fn kv_peak_never_exceeds_capacity() {
        let r = simulate(&tiny_config()).unwrap();
        assert!(r.kv_peak_bytes <= r.kv_capacity_bytes);
    }

    #[test]
    fn impossible_request_is_rejected_up_front() {
        let mut cfg = tiny_config();
        // Leave KV room for 50 tokens; the worst-case request needs 64+16.
        let weights = weight_bytes(&cfg.model, cfg.max_request_tokens(), cfg.kv_dtype);
        let per_tok = kv_bytes_per_token(&cfg.model, cfg.kv_dtype);
        cfg.hw.memory.hbm_capacity_bytes = weights + per_tok * 50;
        let err = simulate(&cfg);
        assert!(matches!(err, Err(ServingError::RequestTooLarge { .. })));
    }

    #[test]
    fn tighter_memory_causes_backpressure_not_overflow() {
        let mut cfg = tiny_config();
        // Narrow the length ranges so the worst-case request (24 tokens)
        // fits, but two typical requests already crowd a 30-token device.
        cfg.traffic.prompt_range = (8, 16);
        cfg.traffic.output_range = (4, 8);
        let weights = weight_bytes(&cfg.model, cfg.max_request_tokens(), cfg.kv_dtype);
        let per_tok = kv_bytes_per_token(&cfg.model, cfg.kv_dtype);
        cfg.hw.memory.hbm_capacity_bytes = weights + per_tok * 30;
        let r = simulate(&cfg).unwrap();
        assert_eq!(r.completed.len(), 30, "backpressure must not drop requests");
        assert!(r.backpressure_stalls > 0, "expected KV admission stalls");
        assert!(r.kv_peak_bytes <= r.kv_capacity_bytes);
    }

    #[test]
    fn replicas_complete_everything_and_tag_the_trace() {
        let mut cfg = tiny_config();
        cfg.devices = 2;
        let r = simulate(&cfg).unwrap();
        assert_eq!(r.completed.len(), 30, "replicas must not drop requests");
        assert_eq!(r.devices, 2);
        assert_eq!(r.trace.devices().len(), 2);
        assert_eq!(r.replica_uptime_ms.len(), 2);
        for (i, o) in r.completed.iter().enumerate() {
            assert_eq!(o.id, i as u64);
        }
        // A two-replica box should not serve the stream slower.
        let single = simulate(&tiny_config()).unwrap();
        assert!(r.makespan_ms <= single.makespan_ms * 1.01);
    }

    #[test]
    fn larger_batch_does_not_hurt_goodput() {
        let mut small = tiny_config();
        small.max_batch = 1;
        let mut big = tiny_config();
        big.max_batch = 8;
        let rs = simulate(&small).unwrap();
        let rb = simulate(&big).unwrap();
        assert!(rb.goodput_tokens_per_s >= rs.goodput_tokens_per_s * 0.99);
        assert!(rb.makespan_ms <= rs.makespan_ms * 1.01);
    }

    #[test]
    fn killed_replica_requeues_onto_the_survivor() {
        let mut cfg = tiny_config();
        cfg.devices = 2;
        // Arrivals span ~600 ms; killing D1 at 20 ms strands most of its
        // round-robin share.
        cfg.faults = FaultPlan::none().kill(DeviceId(1), 20.0);
        let r = simulate(&cfg).unwrap();
        assert_eq!(r.completed.len(), 30, "failures must not drop requests");
        assert_eq!(r.failed_replicas, 1);
        assert!(r.retries > 0, "orphans must be retried on the survivor");
        assert!(r.availability() < 1.0);
        assert_eq!(r.replica_uptime_ms[1], 20.0);
        assert!(r.replica_uptime_ms[0] > 20.0);
        // Retried requests carry their retry count into the outcome.
        assert!(r.completed.iter().any(|o| o.retries == 1));
        // Faulted runs are as deterministic as clean ones.
        let again = simulate(&cfg).unwrap();
        assert_eq!(r.makespan_ms, again.makespan_ms);
        assert_eq!(r.retries, again.retries);
        assert_eq!(r.requeued_tokens, again.requeued_tokens);
        assert_eq!(r.completed, again.completed);
    }

    #[test]
    fn both_redistribution_policies_complete_everything() {
        for policy in [
            RedistributionPolicy::RoundRobin,
            RedistributionPolicy::LeastLoaded,
        ] {
            let mut cfg = tiny_config();
            cfg.devices = 3;
            cfg.redistribution = policy;
            cfg.faults = FaultPlan::none().kill(DeviceId(2), 10.0);
            let r = simulate(&cfg).unwrap();
            assert_eq!(r.completed.len(), 30, "{policy:?} dropped requests");
            assert!(r.retries > 0);
        }
    }

    #[test]
    fn killing_every_replica_is_an_error() {
        let mut cfg = tiny_config();
        cfg.faults = FaultPlan::none().kill(DeviceId(0), 0.0);
        match simulate(&cfg) {
            Err(ServingError::AllReplicasDead { unserved }) => assert_eq!(unserved, 30),
            other => panic!("expected AllReplicasDead, got {other:?}"),
        }
    }

    #[test]
    fn fault_plan_referencing_a_missing_device_is_rejected() {
        let mut cfg = tiny_config();
        cfg.faults = FaultPlan::none().kill(DeviceId(5), 1.0);
        assert!(matches!(simulate(&cfg), Err(ServingError::Fault(_))));
    }

    #[test]
    fn slowdown_window_stretches_the_run_deterministically() {
        // Saturate arrivals so the makespan is compute-bound; a throttle on
        // an idle, arrival-dominated run would hide in the slack.
        let mut base_cfg = tiny_config();
        base_cfg.traffic.arrival_rate_per_s = 1e6;
        let baseline = simulate(&base_cfg).unwrap();
        let mut cfg = base_cfg;
        cfg.faults = FaultPlan::none().slow(0.0, 1e9, 2.0);
        let slowed = simulate(&cfg).unwrap();
        assert!(
            slowed.makespan_ms > baseline.makespan_ms * 1.5,
            "a 2x box-wide throttle must visibly stretch the makespan \
             ({} vs {})",
            slowed.makespan_ms,
            baseline.makespan_ms
        );
        assert_eq!(slowed.completed.len(), 30);
        let again = simulate(&cfg).unwrap();
        assert_eq!(slowed.makespan_ms, again.makespan_ms);
    }
}
