//! The serving engine: continuous batching at decode-step boundaries.
//!
//! The simulator advances each replica's clock through an iteration-level
//! (Orca-style) schedule:
//!
//! 1. ingest arrivals into a FIFO admission queue — re-checked after
//!    *every* phase, so requests landing during a long prefill or decode
//!    step become schedulable (and visible to `max_queue_depth`) at the
//!    phase boundary, not a full iteration later. Ingestion is where the
//!    [`RobustnessConfig`] sheds: an arrival that would push the queue
//!    past its depth or token bound terminates as rejected, and a queued
//!    request whose TTFT or end-to-end deadline has already lapsed
//!    terminates as timed-out before wasting a prefill;
//! 2. at every step boundary, admit queued requests while the decode
//!    batch has a slot *and* the KV admission strategy
//!    ([`KvAdmissionConfig`]) accepts the request — the legacy contiguous
//!    accountant wants the worst-case `prompt + output` reservation, the
//!    paged allocator only the blocks of the current context (otherwise:
//!    backpressure — the request waits, it is never silently dropped);
//! 3. admission runs the request's prefill as a dedicated phase (the
//!    engine is busy for its full duration). The prefill's last forward
//!    pass emits the request's **first output token**, so TTFT is
//!    queueing + prefill, and a request needs `output_len - 1` decode
//!    steps after admission;
//! 4. one decode step advances *every* running request by one token;
//!    requests that reach their output length retire at the boundary and
//!    free their KV reservation immediately, opening slots for the queue.
//!    A running request that can no longer meet its end-to-end deadline
//!    is cancelled at the boundary, returning its KV pages to the queue.
//!    Under paged admission a decode step that cannot take a KV block for
//!    every runner first preempts the newest admissions back to the head
//!    of the queue (generated tokens discarded, recomputed on
//!    re-admission) until the survivors fit — deterministic, and bounded
//!    because a lone runner always fits by the admission-time pre-scan.
//!
//! Phases are additionally charged recipe-compile warmup: the first time
//! a replica runs a `(phase, batch bucket, ctx bucket)` shape, the
//! configured [`RecipeConfig::compile_ms`] lands on the clock (host
//! compile — engine-busy counters are untouched). Decode batches are
//! rounded up to `RecipeConfig::batch_bucket` for pricing, trading
//! padded compute for fewer distinct recipes; the report's
//! padded/scheduled token counters make the waste side of that trade
//! visible.
//!
//! Every phase is priced by the [`CostModel`], so the same §3.3/§3.4
//! hardware calibration that reproduces the paper's training figures also
//! sets TTFT and per-token latency here.
//!
//! ## Fault injection and recovery
//!
//! A [`FaultPlan`] in the configuration makes replicas mortal, and kills
//! turn the run into a single-pass event-driven simulation: replicas
//! advance to quiescence below the next fault or arrival event, then the
//! event is delivered. A killed replica halts at the first phase boundary
//! at or after the failure time; its in-flight, queued, and
//! dispatched-but-unarrived requests are re-queued through the central
//! dispatcher with deterministic exponential backoff (retry count bumped,
//! generated tokens discarded) — or terminated as failed once the retry
//! budget is spent. A kill with a restart window brings the card back with
//! a **cold recipe cache** (its compiled phase plans are recompiled on
//! demand, and with warmup enabled every shape pays its compile latency
//! again), and the recovered replica immediately rejoins the round-robin
//! / least-loaded dispatch pool. Slowdown windows stretch the phases that
//! start inside them. Everything stays a pure function of the
//! configuration: same seed, same plan, bit-identical report.

use crate::calendar::EventCalendar;
use crate::cost::{CostContext, CostModel, Phase, PhaseCost, PlanCache, RecipeCache, RecipeConfig};
use crate::error::ServingError;
use crate::fault::{Job, RedistributionPolicy};
use crate::kv::{ActivationBudget, KvAdmission, KvAdmissionConfig};
use crate::report::{DropKind, DroppedRequest, Percentiles, RequestOutcome, ServingReport};
use crate::request::{generate_requests, Request, TrafficConfig};
use crate::robustness::RobustnessConfig;
use gaudi_compiler::CompilerOptions;
use gaudi_exec::ExecPool;
use gaudi_hw::fault::FaultPlan;
use gaudi_hw::{DeviceId, EngineId, GaudiConfig};
use gaudi_models::LlmConfig;
use gaudi_profiler::trace::TraceEvent;
use gaudi_profiler::Trace;
use gaudi_tensor::DType;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Full configuration of a serving simulation.
///
/// Non-exhaustive: outside this crate, start from a preset
/// ([`paper_gpt`](Self::paper_gpt), [`gpt2_xl`](Self::gpt2_xl)) and
/// mutate fields, or go through [`ServingConfigBuilder`] — the same
/// treatment `CompilerOptions` got, so fields like `kv_admission` and
/// `recipes` can keep arriving without breaking downstream construction.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServingConfig {
    /// The model being served (its `batch`/`seq_len`/`training` fields are
    /// ignored; serving shapes phases itself).
    pub model: LlmConfig,
    /// Request-stream parameters.
    pub traffic: TrafficConfig,
    /// Maximum decode batch size (continuous-batching slot count).
    pub max_batch: usize,
    /// Context-length bucket for the decode-graph cache, tokens.
    pub ctx_bucket: usize,
    /// KV-cache element type.
    pub kv_dtype: DType,
    /// Hardware model.
    pub hw: GaudiConfig,
    /// Compiler options used to cost every phase.
    pub opts: CompilerOptions,
    /// Number of cards serving as independent data-parallel replicas, each
    /// holding a full model copy and taking a round-robin share of the
    /// request stream.
    pub devices: usize,
    /// Deterministic fault schedule: card failures (with optional restart
    /// windows), degraded links, and slowdown windows. [`FaultPlan::none`]
    /// (the default) is steady state.
    pub faults: FaultPlan,
    /// How requests orphaned by a card failure spread over the survivors.
    pub redistribution: RedistributionPolicy,
    /// Overload protection: admission bounds, SLO deadlines, retry budget,
    /// and backoff. The default ([`RobustnessConfig::unlimited`]) never
    /// sheds, expires, or fails a request.
    pub robustness: RobustnessConfig,
    /// How KV-cache HBM is reserved at admission: contiguous worst-case
    /// (the default, the legacy behavior) or block-granular paged
    /// allocation.
    pub kv_admission: KvAdmissionConfig,
    /// How activation/workspace memory of the compiled phase graphs is
    /// budgeted at admission. [`ActivationBudget::Off`] (the default)
    /// reserves nothing — the legacy `weights + KV` formula, bit-identical
    /// to earlier reports; `Unplanned`/`Planned` reserve the worst-case
    /// phase's naive or arena-packed footprint, so the admission formula
    /// becomes `weights + activations + KV`.
    pub activation_budget: ActivationBudget,
    /// Recipe-cache warmup model: per-replica first-use compile latency
    /// and decode batch bucketing. The default charges nothing and keeps
    /// exact batches — bit-identical to the pre-warmup engine.
    pub recipes: RecipeConfig,
    /// Whether replicas record per-phase [`Trace`] events. On (the
    /// default) for every analysis path; cluster-scale sweeps turn it off
    /// — a million requests would accumulate hundreds of megabytes of
    /// timeline nobody renders. Off changes no number in the report
    /// except the trace itself being empty.
    pub record_trace: bool,
}

impl ServingConfig {
    /// Serve the paper's §3.4 GPT configuration (2 layers, d=512). Tiny by
    /// modern standards — its KV cache almost never pressures 32 GB.
    pub fn paper_gpt() -> Self {
        let mut model = LlmConfig::paper_section_3_4(50257);
        model.training = false;
        ServingConfig {
            model,
            traffic: TrafficConfig::default(),
            max_batch: 8,
            ctx_bucket: 128,
            kv_dtype: DType::F32,
            hw: GaudiConfig::hls1(),
            opts: CompilerOptions::default(),
            devices: 1,
            faults: FaultPlan::none(),
            redistribution: RedistributionPolicy::default(),
            robustness: RobustnessConfig::default(),
            kv_admission: KvAdmissionConfig::default(),
            activation_budget: ActivationBudget::default(),
            recipes: RecipeConfig::default(),
            record_trace: true,
        }
    }

    /// A GPT-2-XL-class model (48 layers, d=1600): heavy enough that KV
    /// reservations contend for the 32 GB device and admission
    /// backpressure actually engages.
    pub fn gpt2_xl() -> Self {
        let model = LlmConfig {
            vocab: 50257,
            seq_len: 2048,
            batch: 1,
            layers: 48,
            heads: 25,
            head_dim: 64,
            ffn_mult: 4,
            training: false,
        };
        ServingConfig {
            model,
            traffic: TrafficConfig::default(),
            max_batch: 16,
            ctx_bucket: 128,
            kv_dtype: DType::F32,
            hw: GaudiConfig::hls1(),
            opts: CompilerOptions::default(),
            devices: 1,
            faults: FaultPlan::none(),
            redistribution: RedistributionPolicy::default(),
            robustness: RobustnessConfig::default(),
            kv_admission: KvAdmissionConfig::default(),
            activation_budget: ActivationBudget::default(),
            recipes: RecipeConfig::default(),
            record_trace: true,
        }
    }

    /// A builder seeded from [`paper_gpt`](Self::paper_gpt) — with the
    /// struct non-exhaustive, presets and this builder are the only ways
    /// to construct a config outside this crate.
    pub fn builder() -> ServingConfigBuilder {
        ServingConfigBuilder {
            cfg: ServingConfig::paper_gpt(),
        }
    }

    /// A builder seeded from this configuration, for derived variants.
    pub fn to_builder(&self) -> ServingConfigBuilder {
        ServingConfigBuilder { cfg: self.clone() }
    }

    /// Largest prompt+output the traffic model can emit, tokens.
    fn max_request_tokens(&self) -> usize {
        self.traffic.prompt_range.1 + self.traffic.output_range.1
    }
}

/// Builder for [`ServingConfig`]: every setter replaces one field of the
/// seed configuration (a preset, or an existing config via
/// [`ServingConfig::to_builder`]).
#[derive(Debug, Clone)]
pub struct ServingConfigBuilder {
    cfg: ServingConfig,
}

impl ServingConfigBuilder {
    /// The model being served.
    pub fn model(mut self, model: LlmConfig) -> Self {
        self.cfg.model = model;
        self
    }

    /// Request-stream parameters.
    pub fn traffic(mut self, traffic: TrafficConfig) -> Self {
        self.cfg.traffic = traffic;
        self
    }

    /// Maximum decode batch size.
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.cfg.max_batch = max_batch;
        self
    }

    /// Context-length bucket for the decode-graph cache, tokens.
    pub fn ctx_bucket(mut self, ctx_bucket: usize) -> Self {
        self.cfg.ctx_bucket = ctx_bucket;
        self
    }

    /// KV-cache element type.
    pub fn kv_dtype(mut self, kv_dtype: DType) -> Self {
        self.cfg.kv_dtype = kv_dtype;
        self
    }

    /// Hardware model.
    pub fn hw(mut self, hw: GaudiConfig) -> Self {
        self.cfg.hw = hw;
        self
    }

    /// Compiler options used to cost every phase.
    pub fn opts(mut self, opts: CompilerOptions) -> Self {
        self.cfg.opts = opts;
        self
    }

    /// Number of data-parallel replica cards.
    pub fn devices(mut self, devices: usize) -> Self {
        self.cfg.devices = devices;
        self
    }

    /// Deterministic fault schedule.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.cfg.faults = faults;
        self
    }

    /// Orphan-redistribution policy after a card failure.
    pub fn redistribution(mut self, redistribution: RedistributionPolicy) -> Self {
        self.cfg.redistribution = redistribution;
        self
    }

    /// Overload-protection policy.
    pub fn robustness(mut self, robustness: RobustnessConfig) -> Self {
        self.cfg.robustness = robustness;
        self
    }

    /// KV admission strategy (contiguous or paged).
    pub fn kv_admission(mut self, kv_admission: KvAdmissionConfig) -> Self {
        self.cfg.kv_admission = kv_admission;
        self
    }

    /// Activation-memory budget charged at admission (off by default).
    pub fn activation_budget(mut self, activation_budget: ActivationBudget) -> Self {
        self.cfg.activation_budget = activation_budget;
        self
    }

    /// Recipe-cache warmup model.
    pub fn recipes(mut self, recipes: RecipeConfig) -> Self {
        self.cfg.recipes = recipes;
        self
    }

    /// Whether replicas record per-phase trace events (on by default;
    /// cluster-scale sweeps turn it off to keep memory flat).
    pub fn record_trace(mut self, record_trace: bool) -> Self {
        self.cfg.record_trace = record_trace;
        self
    }

    /// Finish the build.
    pub fn build(self) -> ServingConfig {
        self.cfg
    }
}

/// How compiled phase plans are shared between the replicas of a
/// simulation (and possibly beyond it).
#[derive(Debug, Clone, Default)]
pub enum PlanSharing {
    /// Every replica compiles privately, cloning the model/hardware/option
    /// structs for its own [`CostModel`] — the legacy behavior, kept as
    /// the benchmark baseline.
    PerReplica,
    /// One [`CostContext`] per `simulate` call: replicas share compiled
    /// plans and borrow one set of configs instead of cloning them apiece.
    #[default]
    PerCall,
    /// Memoize into a caller-provided [`PlanCache`], shared across calls —
    /// sweep points with overlapping phase shapes compile each shape once
    /// process-wide.
    Shared(Arc<PlanCache>),
}

/// Execution policy for a serving simulation: where replica simulations
/// run and how their compiled plans are shared. The result of a simulation
/// is bit-identical under every policy — replicas are independent, the
/// pool returns their results in input order, and plan sharing only
/// changes *when* a shape is compiled, never what it costs.
#[derive(Debug, Clone)]
pub struct ExecPolicy {
    /// Thread pool replica simulations fan out on ([`ExecPool::serial`]
    /// runs them inline on the caller).
    pub pool: ExecPool,
    /// Plan-compilation sharing between replicas / across calls.
    pub plans: PlanSharing,
}

impl Default for ExecPolicy {
    /// Global process pool (`GAUDI_EXEC_THREADS` sizes it), plans shared
    /// within the call.
    fn default() -> Self {
        ExecPolicy {
            pool: ExecPool::global().clone(),
            plans: PlanSharing::default(),
        }
    }
}

impl ExecPolicy {
    /// Everything inline on the caller, every replica compiling privately:
    /// the pre-parallelism behavior, useful as a benchmark baseline and
    /// for `GAUDI_EXEC_THREADS=1`-style determinism checks.
    pub fn serial_baseline() -> Self {
        ExecPolicy {
            pool: ExecPool::serial(),
            plans: PlanSharing::PerReplica,
        }
    }

    /// Global pool, memoizing compilations into `cache` (share one cache
    /// across a sweep to compile each distinct phase shape once).
    pub fn shared(cache: Arc<PlanCache>) -> Self {
        ExecPolicy {
            pool: ExecPool::global().clone(),
            plans: PlanSharing::Shared(cache),
        }
    }

    /// The same policy with `pool` swapped in.
    pub fn with_pool(mut self, pool: ExecPool) -> Self {
        self.pool = pool;
        self
    }
}

/// A request currently holding a decode slot.
#[derive(Debug)]
struct Active {
    job: Job,
    /// Tokens visible to attention (prompt + generated so far).
    ctx: usize,
    generated: usize,
    outcome: RequestOutcome,
}

/// One data-parallel replica as an incremental state machine.
///
/// [`Replica::step`] runs at most one timed phase and never *starts* a
/// phase at `clock_ms >= limit_ms`; a phase that started strictly before
/// the limit may straddle it (kills take effect at the next phase
/// boundary, exactly like the SynapseAI runtime draining a launched
/// recipe). Driving `step` with `limit_ms = ∞` runs the replica to
/// completion; the event loop in [`simulate_box`] instead advances every
/// replica to quiescence below the next fault or dispatch event.
struct Replica<'a> {
    cfg: &'a ServingConfig,
    device: DeviceId,
    cost: CostModel,
    kv: Box<dyn KvAdmission>,
    /// Per-replica recipe warmup state; reset cold on restart.
    recipes: RecipeCache,
    /// Dispatched to this replica but not yet arrived, in submission order.
    pending: VecDeque<Job>,
    /// The FIFO admission queue.
    waiting: VecDeque<Job>,
    /// Worst-case token footprint of the admission queue.
    waiting_tokens: usize,
    running: Vec<Active>,
    completed: Vec<RequestOutcome>,
    dropped: Vec<DroppedRequest>,
    clock_ms: f64,
    up: bool,
    down_since: Option<f64>,
    down_ms: f64,
    kills: usize,
    restarts: usize,
    /// Token work enqueued but not yet terminated (least-loaded dispatch).
    outstanding_tokens: usize,
    mme_busy_ns: f64,
    tpc_busy_ns: f64,
    dma_busy_ns: f64,
    nic_busy_ns: f64,
    decode_steps: usize,
    prefills: usize,
    backpressure_stalls: usize,
    max_queue_depth: usize,
    peak_queued_tokens: usize,
    requeued_tokens: usize,
    /// Graphs compiled by cost models retired at restarts (cold-cache
    /// recovery recompiles, and the report counts every compilation).
    compiled_graphs_retired: usize,
    /// Recipe compiles charged by recipe caches retired at restarts.
    recipe_compiles_retired: u64,
    /// Runners preempted mid-decode because the paged pool ran dry.
    preemptions: usize,
    /// Largest decode batch this replica ever ran.
    peak_running: usize,
    /// Token-slots actually scheduled (bucket-padded shapes).
    scheduled_tokens: usize,
    /// The padding share of `scheduled_tokens`: slots priced but holding
    /// no live token, from ctx-bucket and batch-bucket rounding.
    padded_tokens: usize,
    /// KV row size, bytes — what checkpoint and restore copies are priced
    /// by.
    kv_bytes_per_token: u64,
    /// Replica clock of the next due KV snapshot (infinity: no policy).
    next_checkpoint_ms: f64,
    /// Host-side snapshot state: generated-token count per request at its
    /// last checkpoint. Host DRAM survives the card's death, so the map is
    /// *not* cleared on restart; it is only ever probed by id (never
    /// iterated), keeping the simulation order-deterministic.
    snapshots: HashMap<u64, usize>,
    /// Bytes snapshotted to host across all checkpoints.
    checkpoint_bytes: u64,
    /// Clock spent restoring snapshots over DMA, ms.
    restore_ms: f64,
    /// Generated tokens resumed from snapshots instead of recomputed.
    recovered_tokens: u64,
    trace: Trace,
}

impl<'a> Replica<'a> {
    fn new(
        cfg: &'a ServingConfig,
        device: DeviceId,
        cost: CostModel,
        activation_reserve: u64,
    ) -> Result<Self, ServingError> {
        let kv = cfg
            .kv_admission
            .build(
                &cfg.hw.memory,
                &cfg.model,
                cfg.max_request_tokens(),
                cfg.kv_dtype,
                activation_reserve,
            )
            .map_err(ServingError::WeightsDontFit)?;
        let kv_bytes_per_token = cfg
            .kv_admission
            .kv_bytes_per_token(&cfg.model, cfg.kv_dtype);
        let next_checkpoint_ms = cfg
            .robustness
            .checkpoint
            .map_or(f64::INFINITY, |c| c.interval_ms);
        Ok(Replica {
            cfg,
            device,
            cost,
            kv,
            recipes: RecipeCache::new(&cfg.recipes),
            pending: VecDeque::new(),
            waiting: VecDeque::new(),
            waiting_tokens: 0,
            running: Vec::new(),
            completed: Vec::new(),
            dropped: Vec::new(),
            clock_ms: 0.0,
            up: true,
            down_since: None,
            down_ms: 0.0,
            kills: 0,
            restarts: 0,
            outstanding_tokens: 0,
            mme_busy_ns: 0.0,
            tpc_busy_ns: 0.0,
            dma_busy_ns: 0.0,
            nic_busy_ns: 0.0,
            decode_steps: 0,
            prefills: 0,
            backpressure_stalls: 0,
            max_queue_depth: 0,
            peak_queued_tokens: 0,
            requeued_tokens: 0,
            compiled_graphs_retired: 0,
            recipe_compiles_retired: 0,
            preemptions: 0,
            peak_running: 0,
            scheduled_tokens: 0,
            padded_tokens: 0,
            kv_bytes_per_token,
            next_checkpoint_ms,
            snapshots: HashMap::new(),
            checkpoint_bytes: 0,
            restore_ms: 0.0,
            recovered_tokens: 0,
            trace: Trace::new(),
        })
    }

    /// Hand this replica a dispatched job (it arrives at its submission
    /// time; the replica ingests it at the next phase boundary past that).
    fn enqueue(&mut self, job: Job) {
        self.outstanding_tokens += job.req.total_tokens();
        self.pending.push_back(job);
    }

    /// Whether this replica can still make progress on its own — up with
    /// work dispatched, queued, or running. A replica with no local work
    /// leaves the event loop's ready set until the coordinator touches it
    /// again (dispatch, halt, or restart); one *with* work must stay in
    /// the set even while quiescent, because `step` never starts a phase
    /// at the limit and the pending job may sit exactly on it.
    fn has_local_work(&self) -> bool {
        self.up && !(self.pending.is_empty() && self.waiting.is_empty() && self.running.is_empty())
    }

    /// Execute one priced phase: advance the clock and the busy counters.
    fn record(&mut self, name: &str, c: &PhaseCost) {
        if self.cfg.record_trace {
            record_phase(&mut self.trace, name, self.clock_ms, c);
        }
        self.clock_ms += c.ms;
        self.mme_busy_ns += c.mme_busy_ns;
        self.tpc_busy_ns += c.tpc_busy_ns;
        self.dma_busy_ns += c.dma_busy_ns;
        self.nic_busy_ns += c.nic_busy_ns;
    }

    /// File a terminal drop record for `job` and release its accounting.
    fn drop_job(&mut self, job: Job, kind: DropKind, at_ms: f64, tokens_generated: usize) {
        self.outstanding_tokens = self
            .outstanding_tokens
            .saturating_sub(job.req.total_tokens());
        self.dropped.push(DroppedRequest {
            id: job.req.id,
            arrival_ms: job.req.arrival_ms(),
            kind,
            at_ms,
            retries: job.retries,
            tokens_generated,
        });
    }

    /// Terminally fail an orphan whose retry budget is exhausted. The job
    /// is already out of every queue (its halt drained it), so this only
    /// files the drop record.
    fn record_failure(&mut self, job: Job, at_ms: f64) {
        self.dropped.push(DroppedRequest {
            id: job.req.id,
            arrival_ms: job.req.arrival_ms(),
            kind: DropKind::Failed,
            at_ms,
            retries: job.retries,
            tokens_generated: 0,
        });
    }

    /// Ingest arrivals (shedding past the queue bounds), refresh the depth
    /// gauges, and expire queued requests whose deadlines already lapsed.
    /// Runs at every phase boundary so arrivals during long phases are
    /// never invisible to the bounds.
    fn housekeep(&mut self) {
        let rb = &self.cfg.robustness;
        while self
            .pending
            .front()
            .is_some_and(|j| j.submitted_ms() <= self.clock_ms)
        {
            let job = self.pending.pop_front().expect("front checked");
            let tokens = job.req.total_tokens();
            let full = rb.max_queue_depth.is_some_and(|d| self.waiting.len() >= d)
                || rb
                    .max_queued_tokens
                    .is_some_and(|t| self.waiting_tokens + tokens > t);
            if full {
                let at = self.clock_ms;
                self.drop_job(job, DropKind::Rejected, at, 0);
            } else {
                self.waiting_tokens += tokens;
                self.waiting.push_back(job);
            }
        }
        self.max_queue_depth = self.max_queue_depth.max(self.waiting.len());
        self.peak_queued_tokens = self.peak_queued_tokens.max(self.waiting_tokens);

        if rb.ttft_deadline_ms.is_some() || rb.deadline_ms.is_some() {
            let clock = self.clock_ms;
            let mut keep = VecDeque::with_capacity(self.waiting.len());
            for j in std::mem::take(&mut self.waiting) {
                let waited = clock - j.req.arrival_ms();
                let expired = rb.ttft_deadline_ms.is_some_and(|d| waited > d)
                    || rb.deadline_ms.is_some_and(|d| waited > d);
                if expired {
                    self.waiting_tokens -= j.req.total_tokens();
                    self.drop_job(j, DropKind::TimedOut, clock, 0);
                } else {
                    keep.push_back(j);
                }
            }
            self.waiting = keep;
        }
    }

    /// Free a finished request's KV reservation and classify it: completed
    /// if every SLO held, a timed-out drop (throughput, not goodput) if it
    /// finished past its end-to-end deadline.
    fn retire(&mut self, a: Active) -> Result<(), ServingError> {
        self.kv.release(a.job.req.id)?;
        // The host-side snapshot of a finished chain is dead weight.
        self.snapshots.remove(&a.job.req.id);
        let Active {
            job,
            outcome,
            generated,
            ..
        } = a;
        let latency = outcome.finish_ms - outcome.arrival_ms;
        if self.cfg.robustness.deadline_ms.is_some_and(|d| latency > d) {
            let at = outcome.finish_ms;
            self.drop_job(job, DropKind::TimedOut, at, generated);
        } else {
            self.outstanding_tokens = self
                .outstanding_tokens
                .saturating_sub(job.req.total_tokens());
            self.completed.push(outcome);
        }
        Ok(())
    }

    /// Run at most one timed phase, never starting one at or past
    /// `limit_ms`. Returns `Ok(true)` if the replica made progress and
    /// should be stepped again, `Ok(false)` once it is quiescent below the
    /// limit (down, out of work, or waiting on an event past the limit).
    fn step(&mut self, limit_ms: f64) -> Result<bool, ServingError> {
        if !self.up {
            return Ok(false);
        }
        self.housekeep();

        // Periodic KV checkpoint: snapshot every running chain to host,
        // priced as a DMA phase against the replica clock. The snapshot
        // captures each chain's generated-token count; a later `kill_for`
        // orphan restores it instead of recomputing from scratch.
        if let Some(ckpt) = self.cfg.robustness.checkpoint {
            if self.clock_ms >= self.next_checkpoint_ms && self.clock_ms < limit_ms {
                self.next_checkpoint_ms = self.clock_ms + ckpt.interval_ms;
                if !self.running.is_empty() {
                    let bytes: u64 = self
                        .running
                        .iter()
                        .map(|a| a.ctx as u64 * self.kv_bytes_per_token)
                        .sum();
                    let ms = bytes as f64 / ckpt.dma_bytes_per_s * 1e3;
                    let c = PhaseCost {
                        ms,
                        dma_busy_ns: ms * 1e6,
                        ..PhaseCost::default()
                    };
                    self.record("kv_checkpoint", &c);
                    self.checkpoint_bytes += bytes;
                    for a in &self.running {
                        self.snapshots.insert(a.job.req.id, a.generated);
                    }
                    return Ok(true);
                }
            }
        }

        // Admission: one prefill (or snapshot restore) per step, so the
        // caller's limit is re-checked between back-to-back admissions.
        if self.running.len() < self.cfg.max_batch && self.clock_ms < limit_ms {
            if let Some(front) = self.waiting.front() {
                // An orphan that was checkpointed before its replica died
                // restores the snapshot over DMA instead of re-running the
                // prefill — see the restore branch below.
                let snap = front.checkpointed_tokens;
                let admitted = if snap > 0 {
                    self.kv
                        .try_restore(
                            front.req.id,
                            front.req.prompt_len,
                            front.req.output_len,
                            snap,
                        )
                        .is_ok()
                } else {
                    self.kv
                        .try_admit(front.req.id, front.req.prompt_len, front.req.output_len)
                        .is_ok()
                };
                if admitted && snap > 0 {
                    let job = self.waiting.pop_front().expect("front checked");
                    self.waiting_tokens -= job.req.total_tokens();
                    let queue_ms = self.clock_ms - job.submitted_ms();
                    let factor = self.cfg.faults.slowdown_factor(self.device, self.clock_ms);
                    let ckpt = self
                        .cfg
                        .robustness
                        .checkpoint
                        .expect("a snapshot implies a checkpoint policy");
                    // The restore copies the whole checkpointed chain —
                    // prompt KV plus the snapshotted decode tokens — back
                    // from host over DMA. No recipe warmup: it is a copy,
                    // not a compiled graph, and the cold-cache recompiles
                    // still land on the first prefill/decode shapes.
                    let bytes = (job.req.prompt_len + snap) as u64 * self.kv_bytes_per_token;
                    let ms = bytes as f64 / ckpt.dma_bytes_per_s * 1e3;
                    let c = PhaseCost {
                        ms,
                        dma_busy_ns: ms * 1e6,
                        ..PhaseCost::default()
                    }
                    .scaled(factor);
                    // Deadline-aware restore, mirroring admission: a chain
                    // whose first re-served token would land past the TTFT
                    // SLO is dropped before wasting the copy.
                    let ttft_ms = self.clock_ms + c.ms - job.req.arrival_ms();
                    if self
                        .cfg
                        .robustness
                        .ttft_deadline_ms
                        .is_some_and(|d| ttft_ms > d)
                    {
                        self.kv.release(job.req.id)?;
                        let at = self.clock_ms;
                        self.drop_job(job, DropKind::TimedOut, at, 0);
                        return Ok(true);
                    }
                    self.record("kv_restore", &c);
                    self.restore_ms += c.ms;
                    self.recovered_tokens += snap as u64;
                    // The restored chain is (again) this replica's latest
                    // host snapshot.
                    self.snapshots.insert(job.req.id, snap);
                    let outcome = RequestOutcome {
                        id: job.req.id,
                        arrival_ms: job.req.arrival_ms(),
                        prompt_len: job.req.prompt_len,
                        output_len: job.req.output_len,
                        queue_ms,
                        ttft_ms,
                        retries: job.retries,
                        finish_ms: 0.0,
                        token_times_ms: {
                            let mut t = Vec::with_capacity(job.req.output_len - snap + 1);
                            t.push(self.clock_ms);
                            t
                        },
                    };
                    // A snapshot is always strictly mid-decode (running
                    // never holds finished chains at a boundary), so the
                    // restored chain re-enters the batch, never retires
                    // here.
                    self.running.push(Active {
                        ctx: job.req.prompt_len + snap,
                        generated: snap,
                        outcome,
                        job,
                    });
                    self.peak_running = self.peak_running.max(self.running.len());
                    return Ok(true);
                }
                if admitted {
                    let job = self.waiting.pop_front().expect("front checked");
                    self.waiting_tokens -= job.req.total_tokens();
                    let queue_ms = self.clock_ms - job.submitted_ms();
                    let factor = self.cfg.faults.slowdown_factor(self.device, self.clock_ms);
                    let mut c = self.cost.prefill(1, job.req.prompt_len)?.scaled(factor);
                    let prefill_len = self.cost.bucketed(job.req.prompt_len);
                    // Deadline-aware admission: the prefill (plus any
                    // recipe compile it would trigger) is priced before it
                    // runs, so a request that could only produce its first
                    // token past the TTFT SLO is dropped without wasting
                    // the engine time — the load-shedding analogue of a
                    // server's "estimated wait exceeds timeout" check. The
                    // warmup is *peeked*, not charged: a dropped request
                    // must not warm the cache.
                    let warmup = self.recipes.warmup_ms(Phase::Prefill, 1, prefill_len);
                    let ttft_ms = self.clock_ms + c.ms + warmup - job.req.arrival_ms();
                    if self
                        .cfg
                        .robustness
                        .ttft_deadline_ms
                        .is_some_and(|d| ttft_ms > d)
                    {
                        self.kv.release(job.req.id)?;
                        let at = self.clock_ms;
                        self.drop_job(job, DropKind::TimedOut, at, 0);
                        return Ok(true);
                    }
                    // First use of this prefill shape on this replica:
                    // the host compiles a recipe before launch. Wall time
                    // only — no engine is busy during a host compile.
                    c.ms += self.recipes.charge(Phase::Prefill, 1, prefill_len);
                    self.scheduled_tokens += prefill_len;
                    self.padded_tokens += prefill_len - job.req.prompt_len;
                    self.record("prefill", &c);
                    self.prefills += 1;
                    // The prefill's final forward pass emits the first
                    // output token: TTFT is queueing + prefill, measured
                    // from the request's original arrival.
                    let outcome = RequestOutcome {
                        id: job.req.id,
                        arrival_ms: job.req.arrival_ms(),
                        prompt_len: job.req.prompt_len,
                        output_len: job.req.output_len,
                        queue_ms,
                        ttft_ms,
                        retries: job.retries,
                        finish_ms: 0.0,
                        token_times_ms: {
                            let mut t = Vec::with_capacity(job.req.output_len);
                            t.push(self.clock_ms);
                            t
                        },
                    };
                    if job.req.output_len == 1 {
                        // Single-token request: prefill completed it.
                        let mut outcome = outcome;
                        outcome.finish_ms = self.clock_ms;
                        self.retire(Active {
                            ctx: job.req.prompt_len + 1,
                            generated: 1,
                            outcome,
                            job,
                        })?;
                    } else {
                        self.running.push(Active {
                            ctx: job.req.prompt_len + 1,
                            generated: 1,
                            outcome,
                            job,
                        });
                        self.peak_running = self.peak_running.max(self.running.len());
                    }
                    return Ok(true);
                }
                // FIFO backpressure: wait for retirements, never starve
                // or reorder past the queue head.
                self.backpressure_stalls += 1;
                debug_assert!(
                    !self.running.is_empty(),
                    "an idle engine always admits a pre-validated request"
                );
            }
        }

        // One decode step advances every running request by one token.
        if !self.running.is_empty() && self.clock_ms < limit_ms {
            // Every runner needs one more KV slot for the token this step
            // produces. Contiguous admission pre-reserved it; the paged
            // pool can run dry, in which case the newest admissions are
            // preempted back to the head of the queue — generated tokens
            // discarded and recomputed on re-admission (no KV migration is
            // modeled), vLLM's recompute preemption. The loop terminates:
            // every failure shrinks the batch by one, and the pre-scan
            // guarantees a lone runner always fits to completion.
            let mut g = 0;
            while g < self.running.len() {
                let id = self.running[g].job.req.id;
                if self.kv.grow(id).is_ok() {
                    g += 1;
                    continue;
                }
                let mut victim = self.running.pop().expect("running is non-empty");
                self.kv.release(victim.job.req.id)?;
                self.preemptions += 1;
                // A checkpointed victim restores its latest host snapshot
                // on re-admission instead of recomputing from scratch;
                // only the tokens past the snapshot are truly lost.
                let snap = self.snapshots.get(&victim.job.req.id).copied().unwrap_or(0);
                victim.job.checkpointed_tokens = snap;
                self.requeued_tokens += victim.generated.saturating_sub(snap);
                self.waiting_tokens += victim.job.req.total_tokens();
                self.waiting.push_front(victim.job);
            }
            debug_assert!(
                !self.running.is_empty(),
                "a lone runner can always grow (pre-scan bounds its total)"
            );

            let batch = self.running.len();
            // Decode batches are padded up to the recipe batch bucket
            // (capped at the slot count): coarser buckets mean fewer
            // distinct recipes but more dead slots per step.
            let priced_batch = self
                .cfg
                .recipes
                .bucketed_batch(batch)
                .min(self.cfg.max_batch);
            let max_ctx = self.running.iter().map(|a| a.ctx).max().unwrap_or(1);
            let factor = self.cfg.faults.slowdown_factor(self.device, self.clock_ms);
            let mut c = self.cost.decode(priced_batch, max_ctx)?.scaled(factor);
            let ctx_len = self.cost.bucketed(max_ctx);
            c.ms += self.recipes.charge(Phase::Decode, priced_batch, ctx_len);
            let live: usize = self.running.iter().map(|a| a.ctx).sum();
            self.scheduled_tokens += priced_batch * ctx_len;
            self.padded_tokens += priced_batch * ctx_len - live;
            self.record("decode", &c);
            self.decode_steps += 1;

            let mut i = 0;
            while i < self.running.len() {
                let a = &mut self.running[i];
                a.generated += 1;
                a.ctx += 1;
                a.outcome.token_times_ms.push(self.clock_ms);
                if a.generated == a.job.req.output_len {
                    let mut finished = self.running.swap_remove(i);
                    finished.outcome.finish_ms = self.clock_ms;
                    self.retire(finished)?;
                } else {
                    i += 1;
                }
            }
            // Cancel unfinished requests that already blew their e2e
            // deadline — their KV pages back the queue instead of feeding
            // tokens nobody is waiting for.
            if let Some(d) = self.cfg.robustness.deadline_ms {
                let mut i = 0;
                while i < self.running.len() {
                    if self.clock_ms - self.running[i].outcome.arrival_ms > d {
                        let a = self.running.swap_remove(i);
                        self.kv.release(a.job.req.id)?;
                        let at = self.clock_ms;
                        self.drop_job(a.job, DropKind::TimedOut, at, a.generated);
                    } else {
                        i += 1;
                    }
                }
            }
            return Ok(true);
        }

        // Idle: jump to the next dispatched arrival, if it precedes the
        // limit (the event loop owns anything past it).
        if self.running.is_empty() && self.waiting.is_empty() {
            if let Some(next) = self.pending.front() {
                let target = self.clock_ms.max(next.submitted_ms());
                if target < limit_ms {
                    self.clock_ms = target;
                    return Ok(true);
                }
            }
        }
        Ok(false)
    }

    /// Kill the replica at `at_ms`: every unfinished request — in-flight,
    /// queued, or dispatched-but-unarrived — is returned for the
    /// coordinator to re-dispatch. In-flight work loses its generated
    /// tokens (the simulator models no KV-cache migration).
    fn halt(&mut self, at_ms: f64) -> Result<Vec<Job>, ServingError> {
        self.up = false;
        self.down_since = Some(at_ms);
        self.kills += 1;
        let mut orphans = Vec::new();
        for mut a in self.running.drain(..).collect::<Vec<_>>() {
            // An in-flight chain with a host snapshot loses only the
            // tokens generated since the snapshot; the orphan carries the
            // snapshot position so its retry restores instead of
            // recomputing.
            let snap = self.snapshots.get(&a.job.req.id).copied().unwrap_or(0);
            a.job.checkpointed_tokens = snap;
            self.requeued_tokens += a.generated.saturating_sub(snap);
            self.kv.release(a.job.req.id)?;
            orphans.push(a.job);
        }
        orphans.extend(self.waiting.drain(..));
        orphans.extend(self.pending.drain(..));
        self.waiting_tokens = 0;
        for j in &orphans {
            self.outstanding_tokens = self.outstanding_tokens.saturating_sub(j.req.total_tokens());
        }
        debug_assert_eq!(self.outstanding_tokens, 0, "halt drains all work");
        Ok(orphans)
    }

    /// Bring the replica back at `at_ms` with a **cold** compiled-plan
    /// cache: a restarted SynapseAI process recompiles its recipes, so the
    /// warm cost model is retired (its compilations still count) and a
    /// fresh one takes over.
    fn restart(&mut self, at_ms: f64, cost: CostModel) {
        let since = self.down_since.take().expect("restart of an up replica");
        self.down_ms += at_ms - since;
        self.up = true;
        self.clock_ms = self.clock_ms.max(at_ms);
        self.restarts += 1;
        self.compiled_graphs_retired += self.cost.compiled_graphs();
        self.cost = cost;
        // The restarted process also lost its compiled recipes: every
        // shape pays warmup again, and the compiles already charged stay
        // in the report's total.
        self.recipe_compiles_retired += self.recipes.compiles();
        self.recipes = RecipeCache::new(&self.cfg.recipes);
    }

    /// Consume the replica into its single-device report.
    fn finalize(mut self) -> ServingReport {
        self.completed.sort_by_key(|o| o.id);
        self.dropped.sort_by_key(|d| d.id);
        let clock_ms = self.clock_ms;
        let span_ns = clock_ms * 1e6;
        let goodput_tokens: usize = self.completed.iter().map(|o| o.output_len).sum();
        let wasted_tokens: usize = self.dropped.iter().map(|d| d.tokens_generated).sum();
        let retries: usize = self
            .completed
            .iter()
            .map(|o| o.retries as usize)
            .sum::<usize>()
            + self
                .dropped
                .iter()
                .map(|d| d.retries as usize)
                .sum::<usize>();

        let ttft = Percentiles::of(self.completed.iter().map(|o| o.ttft_ms));
        let tpot = Percentiles::of(self.completed.iter().flat_map(|o| {
            o.token_times_ms
                .windows(2)
                .map(|w| w[1] - w[0])
                .collect::<Vec<_>>()
        }));
        let queue = Percentiles::of(self.completed.iter().map(|o| o.queue_ms));
        let timed_out = Percentiles::of(
            self.dropped
                .iter()
                .filter(|d| d.kind == DropKind::TimedOut)
                .map(|d| d.at_ms - d.arrival_ms),
        );
        let per_s = |tokens: usize| {
            if clock_ms > 0.0 {
                tokens as f64 / (clock_ms / 1e3)
            } else {
                0.0
            }
        };
        let util = |busy_ns: f64| {
            if span_ns > 0.0 {
                busy_ns / span_ns
            } else {
                0.0
            }
        };
        // Up-time: everything before the clock (or the unfinished down
        // window's start) minus the down windows already served.
        let uptime_ms = (self.down_since.unwrap_or(clock_ms) - self.down_ms).max(0.0);

        ServingReport {
            offered: self.completed.len() + self.dropped.len(),
            makespan_ms: clock_ms,
            ttft_ms: ttft,
            tpot_ms: tpot,
            queue_ms: queue,
            timed_out_latency_ms: timed_out,
            goodput_tokens_per_s: per_s(goodput_tokens),
            throughput_tokens_per_s: per_s(goodput_tokens + wasted_tokens),
            mme_utilization: util(self.mme_busy_ns),
            tpc_utilization: util(self.tpc_busy_ns),
            dma_utilization: util(self.dma_busy_ns),
            nic_utilization: util(self.nic_busy_ns),
            decode_steps: self.decode_steps,
            prefills: self.prefills,
            backpressure_stalls: self.backpressure_stalls,
            max_queue_depth: self.max_queue_depth,
            peak_queued_tokens: self.peak_queued_tokens,
            kv_peak_bytes: self.kv.peak(),
            kv_capacity_bytes: self.kv.capacity(),
            kv_block_utilization: self.kv.utilization_at_peak(),
            compiled_graphs: self.compiled_graphs_retired + self.cost.compiled_graphs(),
            recipe_compiles: self.recipe_compiles_retired + self.recipes.compiles(),
            preemptions: self.preemptions,
            peak_running: self.peak_running,
            scheduled_tokens: self.scheduled_tokens,
            padded_tokens: self.padded_tokens,
            devices: 1,
            retries,
            requeued_tokens: self.requeued_tokens,
            checkpoint_bytes: self.checkpoint_bytes,
            restore_ms: self.restore_ms,
            recovered_tokens: self.recovered_tokens,
            failed_replicas: self.kills,
            restarts: self.restarts,
            replica_uptime_ms: vec![uptime_ms],
            completed: self.completed,
            dropped: self.dropped,
            trace: self.trace,
        }
    }
}

/// Run a serving simulation to completion.
///
/// Identical configurations (including `traffic.seed`, the fault plan,
/// and the robustness policy) produce identical reports: the simulation
/// is a deterministic function of its inputs.
///
/// With `cfg.devices > 1` the request stream is dispatched round-robin
/// (in arrival order) across that many data-parallel replicas, each
/// running the full continuous-batching schedule on its own card; the
/// merged report carries per-card-averaged utilizations and a
/// device-tagged trace. A replica the fault plan kills re-queues its
/// unfinished work onto the live replicas with exponential backoff, and a
/// replica whose kill carries a restart window rejoins the dispatch pool
/// when it comes back (see the module docs). If the plan leaves *no*
/// replica alive — now or later — while requests need dispatching, the
/// simulation fails with [`ServingError::AllReplicasDead`].
pub fn simulate(cfg: &ServingConfig) -> Result<ServingReport, ServingError> {
    simulate_with(cfg, &ExecPolicy::default())
}

/// [`simulate`] under an explicit [`ExecPolicy`]. The policy affects wall
/// time only; the report is bit-identical across policies.
pub fn simulate_with(
    cfg: &ServingConfig,
    policy: &ExecPolicy,
) -> Result<ServingReport, ServingError> {
    if cfg.traffic.num_requests == 0 {
        return Err(ServingError::InvalidConfig(
            "traffic.num_requests must be positive".into(),
        ));
    }
    simulate_trace_with(cfg, generate_requests(&cfg.traffic), policy)
}

/// [`simulate`] over an explicit request trace instead of the seeded
/// generator — the hook for replaying recorded workloads and for tests
/// that need exact control over arrivals and lengths. Requests are
/// processed in `(arrival, id)` order regardless of input order.
pub fn simulate_trace(
    cfg: &ServingConfig,
    requests: Vec<Request>,
) -> Result<ServingReport, ServingError> {
    simulate_trace_with(cfg, requests, &ExecPolicy::default())
}

/// Worst-case activation workspace of `cfg`'s schedulable phase shapes, as
/// `(planned, naive)` bytes: the memory planner's packed-arena extent and
/// the sum-of-all-activation-tensors baseline it replaces. The shapes are
/// the same ones [`simulate_trace_with`] charges at admission — a prefill
/// of the longest admissible prompt (prefill always runs at batch 1) and a
/// decode at the bucket-padded max batch and longest context.
pub fn activation_estimate(cfg: &ServingConfig) -> Result<(u64, u64), ServingError> {
    let mut cost = CostModel::new(
        cfg.model.clone(),
        cfg.hw.clone(),
        cfg.opts.clone(),
        cfg.ctx_bucket,
    );
    activation_estimate_with(&mut cost, cfg)
}

fn activation_estimate_with(
    cost: &mut CostModel,
    cfg: &ServingConfig,
) -> Result<(u64, u64), ServingError> {
    let prefill = cost.prefill_compiled(1, cfg.traffic.prompt_range.1)?;
    let decode = cost.decode_compiled(
        cfg.recipes.bucketed_batch(cfg.max_batch),
        cfg.max_request_tokens(),
    )?;
    Ok((
        prefill
            .planned_activation_bytes
            .max(decode.planned_activation_bytes),
        prefill
            .naive_activation_bytes
            .max(decode.naive_activation_bytes),
    ))
}

/// [`simulate_trace`] under an explicit [`ExecPolicy`].
pub fn simulate_trace_with(
    cfg: &ServingConfig,
    mut requests: Vec<Request>,
    policy: &ExecPolicy,
) -> Result<ServingReport, ServingError> {
    if cfg.max_batch == 0 {
        return Err(ServingError::InvalidConfig(
            "max_batch must be at least 1".into(),
        ));
    }
    if cfg.devices == 0 {
        return Err(ServingError::InvalidConfig(
            "devices must be at least 1".into(),
        ));
    }
    cfg.faults.validate(cfg.devices)?;
    cfg.robustness
        .validate()
        .map_err(ServingError::InvalidConfig)?;
    cfg.kv_admission
        .validate()
        .map_err(ServingError::InvalidConfig)?;
    cfg.recipes
        .validate()
        .map_err(ServingError::InvalidConfig)?;

    requests.sort_by_key(|r| (r.arrival_us, r.id));

    // One compile context shared by every replica of this call (unless the
    // policy asks for the legacy per-replica compilation).
    let ctx: Option<Arc<CostContext>> = match &policy.plans {
        PlanSharing::PerReplica => None,
        PlanSharing::PerCall => Some(Arc::new(CostContext::new(
            cfg.model.clone(),
            cfg.hw.clone(),
            cfg.opts.clone(),
            cfg.ctx_bucket,
            Arc::new(PlanCache::new()),
        ))),
        PlanSharing::Shared(cache) => Some(Arc::new(CostContext::new(
            cfg.model.clone(),
            cfg.hw.clone(),
            cfg.opts.clone(),
            cfg.ctx_bucket,
            Arc::clone(cache),
        ))),
    };
    let make_cost = || match &ctx {
        Some(c) => CostModel::with_context(Arc::clone(c)),
        None => CostModel::new(
            cfg.model.clone(),
            cfg.hw.clone(),
            cfg.opts.clone(),
            cfg.ctx_bucket,
        ),
    };

    // Activation workspace charged against HBM at admission. Computed once
    // from the worst-case phase shapes this config can schedule: a prefill
    // at the longest admissible prompt (prefill always runs at batch 1) and
    // a decode at the padded max batch and longest context. `Off` (the
    // default) skips the compiles entirely so the plan-cache statistics and
    // compiled-graph counts of existing configurations are untouched.
    let activation_reserve = match cfg.activation_budget {
        ActivationBudget::Off => 0,
        budget => {
            let (planned, naive) = activation_estimate_with(&mut make_cost(), cfg)?;
            budget.reserve_bytes(planned, naive)
        }
    };

    // Reject outright only what can never fit; everything else queues.
    let probe = cfg
        .kv_admission
        .build(
            &cfg.hw.memory,
            &cfg.model,
            cfg.max_request_tokens(),
            cfg.kv_dtype,
            activation_reserve,
        )
        .map_err(ServingError::WeightsDontFit)?;
    for r in &requests {
        if r.total_tokens() as u64 > probe.max_admissible_tokens() {
            return Err(ServingError::RequestTooLarge {
                id: r.id,
                tokens: r.total_tokens(),
                max_tokens: probe.max_admissible_tokens(),
            });
        }
    }

    let mut reports: Vec<ServingReport> = if cfg.faults.card_failures.is_empty() {
        // Fault-free: replicas never interact, so shard the stream
        // round-robin up front and fan the independent single-card
        // simulations out on the policy's pool. `try_par_map` returns
        // results in input order and surfaces the lowest-index error,
        // matching the serial semantics.
        let mut shards: Vec<Vec<Job>> = vec![Vec::new(); cfg.devices];
        for (i, r) in requests.into_iter().enumerate() {
            shards[i % cfg.devices].push(Job::fresh(r));
        }
        policy
            .pool
            .try_par_map(&shards, |d, jobs| -> Result<_, ServingError> {
                let mut replica = Replica::new(cfg, DeviceId(d), make_cost(), activation_reserve)?;
                for j in jobs {
                    replica.enqueue(j.clone());
                }
                while replica.step(f64::INFINITY)? {}
                Ok(replica.finalize())
            })?
    } else {
        // Kills couple the replicas (orphans migrate, restarts rejoin):
        // run the single-pass event-driven box simulation.
        simulate_box(cfg, requests, &make_cost, activation_reserve)?
    };

    let mut report = if cfg.devices == 1 {
        reports.pop().expect("exactly one replica")
    } else {
        ServingReport::merge_replicas(cfg.devices, reports)
    };
    // Fault-lane observability: overlay the plan's kill/restart/flap/
    // slowdown windows as device-tagged trace lanes, so a Chrome-trace
    // export shows *why* a card's serving lanes go quiet. Appended after
    // the merge (merging re-tags per-replica events by device) so the
    // lanes keep their own device tags.
    if cfg.record_trace && !cfg.faults.is_empty() {
        record_fault_lanes(
            &mut report.trace,
            &cfg.faults,
            cfg.devices,
            report.makespan_ms,
        );
    }
    Ok(report)
}

/// Append one trace lane per fault window, tagged with the device it hits:
/// `kill` (down window, with a zero-width `restart` marker for transient
/// kills), `flap`/`degrade` on both endpoints of a degraded link, and
/// `slowdown` per throttled card. Open-ended windows (permanent kills and
/// degradations) extend to the report's makespan.
fn record_fault_lanes(trace: &mut Trace, faults: &FaultPlan, devices: usize, makespan_ms: f64) {
    let event = |name: &'static str, engine: EngineId, s_ms: f64, e_ms: f64| {
        TraceEvent::basic(
            name,
            "fault",
            engine,
            s_ms * 1e6,
            (e_ms - s_ms).max(0.0) * 1e6,
        )
    };
    for c in &faults.card_failures {
        let end_ms = c
            .restart_after_ms
            .map_or(makespan_ms.max(c.at_ms), |d| c.at_ms + d);
        trace.push(event("kill", EngineId::Host, c.at_ms, end_ms).on_device(c.device));
        if c.restart_after_ms.is_some() {
            trace.push(event("restart", EngineId::Host, end_ms, end_ms).on_device(c.device));
        }
    }
    for l in &faults.link_degradations {
        let name = if l.window.is_some() {
            "flap"
        } else {
            "degrade"
        };
        let (s, e) = l.window.unwrap_or((0.0, makespan_ms));
        for d in [l.a, l.b] {
            trace.push(event(name, EngineId::Nic, s, e).on_device(d));
        }
    }
    for s in &faults.slowdowns {
        let targets: Vec<DeviceId> = match s.device {
            Some(d) => vec![d],
            None => (0..devices).map(DeviceId).collect(),
        };
        for d in targets {
            trace.push(event("slowdown", EngineId::Host, s.start_ms, s.end_ms).on_device(d));
        }
    }
}

/// Event-driven multi-replica simulation under a fault plan with kills.
///
/// A single pass interleaves three deterministic streams: replica
/// execution (each advanced to quiescence below the next event), fault
/// transitions (kills halt and orphan; restarts rejoin the pool with a
/// cold recipe cache), and live dispatch (arrivals and backoff-delayed
/// retries routed to a live replica — round-robin for fresh work, the
/// configured [`RedistributionPolicy`] for orphans). The loop is
/// single-threaded on purpose: every interleaving decision is a pure
/// function of the configuration, so the result is bit-identical across
/// [`ExecPolicy`]s.
fn simulate_box(
    cfg: &ServingConfig,
    requests: Vec<Request>,
    make_cost: &impl Fn() -> CostModel,
    activation_reserve: u64,
) -> Result<Vec<ServingReport>, ServingError> {
    let mut replicas: Vec<Replica> = (0..cfg.devices)
        .map(|d| Replica::new(cfg, DeviceId(d), make_cost(), activation_reserve))
        .collect::<Result<_, _>>()?;

    // Kill/restart transitions, time-ordered; a restart at the same
    // instant as another device's kill is delivered first so the pool
    // never looks emptier than it is.
    let mut transitions: Vec<(f64, usize, bool)> = Vec::new();
    for d in 0..cfg.devices {
        for (t, up) in cfg.faults.transitions(DeviceId(d)) {
            transitions.push((t, d, up));
        }
    }
    transitions.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .expect("fault times are finite")
            .then((!a.2).cmp(&!b.2))
            .then(a.1.cmp(&b.1))
    });
    let mut ti = 0;

    // Undispatched work keyed by (submission µs, id): the initial
    // arrivals, plus re-queued orphans as failures produce them. Keys are
    // unique (a job is popped before it can be re-inserted, and ids are
    // unique), so the calendar pops in exactly the order the old
    // `BTreeMap` dispatcher iterated — see `tests/golden_report.rs`.
    let mut disp: EventCalendar<Job> = requests
        .into_iter()
        .map(Job::fresh)
        .map(|j| ((j.submitted_us, j.req.id), j))
        .collect();
    let mut rr_next = 0usize;

    // Per-replica ready-index: a replica leaves the ready set once it is
    // quiescent with nothing queued locally (its next event belongs to the
    // coordinator), and re-enters whenever the coordinator touches it. A
    // replica that *has* local work always stays ready, even if quiescent
    // below the current limit — `step` never starts a phase at the limit,
    // so its pending job at exactly `t_ext` must be revisited next round.
    let mut ready: Vec<bool> = vec![true; cfg.devices];

    loop {
        let next_disp = disp.peek_key().map(|(us, _)| us as f64 / 1e3);
        let next_tr = transitions.get(ti).map(|t| t.0);
        let t_ext = [next_disp, next_tr]
            .into_iter()
            .flatten()
            .fold(f64::INFINITY, f64::min);

        // Run every ready replica to quiescence below the next event.
        for (d, r) in replicas.iter_mut().enumerate() {
            if !ready[d] {
                continue;
            }
            while r.step(t_ext)? {}
            ready[d] = r.has_local_work();
        }
        if t_ext.is_infinite() {
            break;
        }

        // Deliver due fault transitions.
        while ti < transitions.len() && transitions[ti].0 <= t_ext {
            let (t, d, up) = transitions[ti];
            ti += 1;
            if up {
                replicas[d].restart(t, make_cost());
                ready[d] = true;
                continue;
            }
            for job in replicas[d].halt(t)? {
                let attempt = job.retries + 1;
                if attempt > cfg.robustness.max_retries {
                    replicas[d].record_failure(job, t);
                } else {
                    let delay = cfg.robustness.backoff_delay_ms(job.req.id, attempt);
                    let j = job.requeued(t + delay);
                    disp.push(j.submitted_us, j.req.id, j);
                }
            }
            // A halt drains the replica, but its clock still owes the
            // catch-up to the halt instant on restart; keep it ready so
            // the next pass re-evaluates.
            ready[d] = true;
        }

        // Dispatch due arrivals onto live replicas.
        while let Some(key) = disp.peek_key() {
            if key.0 as f64 / 1e3 > t_ext {
                break;
            }
            let (_, job) = disp.pop().expect("key just observed");
            match pick_replica(cfg, &replicas, &mut rr_next, &job) {
                Some(d) => {
                    replicas[d].enqueue(job);
                    ready[d] = true;
                }
                None => {
                    // Whole pool is down: park the job until the next
                    // restart, or fail the run if none is coming.
                    let Some(up_t) = transitions[ti..].iter().find(|t| t.2).map(|t| t.0) else {
                        return Err(ServingError::AllReplicasDead {
                            unserved: disp.len() + 1,
                        });
                    };
                    // Strictly later key than the one just removed, so the
                    // deferral always makes progress.
                    let up_us = ((up_t * 1e3).ceil() as u64).max(key.0 + 1);
                    let mut j = job;
                    j.submitted_us = j.submitted_us.max(up_us);
                    disp.push(j.submitted_us, j.req.id, j);
                }
            }
        }
    }

    Ok(replicas.into_iter().map(Replica::finalize).collect())
}

/// Choose a live replica for `job`, or `None` if the whole pool is down.
/// Fresh arrivals always round-robin over the live replicas (mirroring
/// the fault-free sharding); orphan re-dispatch follows the configured
/// [`RedistributionPolicy`].
fn pick_replica(
    cfg: &ServingConfig,
    replicas: &[Replica],
    rr_next: &mut usize,
    job: &Job,
) -> Option<usize> {
    if job.retries > 0 && cfg.redistribution == RedistributionPolicy::LeastLoaded {
        return (0..replicas.len())
            .filter(|&d| replicas[d].up)
            .min_by_key(|&d| (replicas[d].outstanding_tokens, d));
    }
    let n = replicas.len();
    for i in 0..n {
        let d = (*rr_next + i) % n;
        if replicas[d].up {
            *rr_next = (d + 1) % n;
            return Some(d);
        }
    }
    None
}

/// Append one trace event per busy engine for a phase, so the report's
/// timeline renders through the standard profiler tooling.
fn record_phase(trace: &mut Trace, name: &str, start_ms: f64, c: &PhaseCost) {
    let start_ns = start_ms * 1e6;
    for (engine, busy) in [
        (EngineId::Mme, c.mme_busy_ns),
        (EngineId::TpcCluster, c.tpc_busy_ns),
        (EngineId::Dma(0), c.dma_busy_ns),
        (EngineId::Nic, c.nic_busy_ns),
    ] {
        if busy > 0.0 {
            trace.push(TraceEvent::basic(name, "serving", engine, start_ns, busy));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ServingConfig {
        let mut model = LlmConfig::tiny(97);
        model.training = false;
        ServingConfig {
            model,
            traffic: TrafficConfig {
                arrival_rate_per_s: 50.0,
                num_requests: 30,
                prompt_range: (8, 64),
                output_range: (4, 16),
                zipf_s: 1.1,
                seed: 7,
            },
            max_batch: 4,
            ctx_bucket: 32,
            kv_dtype: DType::F32,
            hw: GaudiConfig::hls1(),
            opts: CompilerOptions::default(),
            devices: 1,
            faults: FaultPlan::none(),
            redistribution: RedistributionPolicy::default(),
            robustness: RobustnessConfig::default(),
            kv_admission: KvAdmissionConfig::default(),
            activation_budget: ActivationBudget::default(),
            recipes: RecipeConfig::default(),
            record_trace: true,
        }
    }

    fn tiny_cost_model(cfg: &ServingConfig) -> CostModel {
        CostModel::new(
            cfg.model.clone(),
            cfg.hw.clone(),
            cfg.opts.clone(),
            cfg.ctx_bucket,
        )
    }

    #[test]
    fn completes_every_request_exactly_once() {
        let r = simulate(&tiny_config()).unwrap();
        assert_eq!(r.completed.len(), 30);
        assert_eq!(r.offered, 30);
        assert!(r.dropped.is_empty());
        for (i, o) in r.completed.iter().enumerate() {
            assert_eq!(o.id, i as u64);
            assert_eq!(o.token_times_ms.len(), o.output_len);
            assert_eq!(o.retries, 0, "fault-free runs never retry");
        }
        assert_eq!(r.retries, 0);
        assert_eq!(r.failed_replicas, 0);
        assert_eq!(r.restarts, 0);
        assert_eq!(r.availability(), 1.0);
        assert_eq!(r.goodput_fraction(), 1.0);
        assert_eq!(r.goodput_tokens_per_s, r.throughput_tokens_per_s);
    }

    #[test]
    fn identical_seeds_identical_reports() {
        let a = simulate(&tiny_config()).unwrap();
        let b = simulate(&tiny_config()).unwrap();
        assert_eq!(a.makespan_ms, b.makespan_ms);
        assert_eq!(a.ttft_ms.p99, b.ttft_ms.p99);
        assert_eq!(a.goodput_tokens_per_s, b.goodput_tokens_per_s);
        assert_eq!(a.decode_steps, b.decode_steps);
    }

    #[test]
    fn token_times_are_strictly_increasing() {
        let r = simulate(&tiny_config()).unwrap();
        for o in &r.completed {
            for w in o.token_times_ms.windows(2) {
                assert!(w[0] < w[1], "token order violated for request {}", o.id);
            }
            assert!(o.ttft_ms > 0.0);
            assert!(o.finish_ms >= o.arrival_ms + o.ttft_ms);
        }
    }

    #[test]
    fn ttft_of_an_unloaded_request_is_exactly_its_prefill_cost() {
        // Regression for the off-by-one-decode-step TTFT bug: prefill's
        // last forward pass emits the first token, so a lone request on an
        // idle engine has TTFT == prefill(prompt) — no queueing, no decode
        // step folded in.
        let cfg = tiny_config();
        let req = Request {
            id: 0,
            arrival_us: 0,
            prompt_len: 48,
            output_len: 6,
        };
        let r = simulate_trace(&cfg, vec![req]).unwrap();
        let mut cost = tiny_cost_model(&cfg);
        let prefill_ms = cost.prefill(1, 48).unwrap().ms;
        let o = &r.completed[0];
        assert_eq!(o.queue_ms, 0.0);
        assert_eq!(o.ttft_ms, prefill_ms, "TTFT must equal the prefill cost");
        assert_eq!(o.token_times_ms[0], prefill_ms);
        // output_len - 1 decode steps finish the request.
        assert_eq!(r.decode_steps, 5);
        assert_eq!(o.token_times_ms.len(), 6);
    }

    #[test]
    fn arrivals_during_a_long_prefill_are_ingested_at_the_phase_boundary() {
        // Request 0's prefill is long; 1-4 arrive 1 µs into it. With
        // phase-boundary ingestion they are all queued (depth 4) and
        // admitted back-to-back before any decode step runs, so the whole
        // batch decodes together: output_len - 1 shared steps total.
        let cfg = ServingConfig {
            max_batch: 8,
            ..tiny_config()
        };
        let mut reqs = vec![Request {
            id: 0,
            arrival_us: 0,
            prompt_len: 256,
            output_len: 4,
        }];
        for id in 1..5 {
            reqs.push(Request {
                id,
                arrival_us: 1,
                prompt_len: 8,
                output_len: 4,
            });
        }
        let r = simulate_trace(&cfg, reqs).unwrap();
        assert_eq!(r.completed.len(), 5);
        assert_eq!(
            r.max_queue_depth, 4,
            "arrivals during the prefill must be visible to the depth gauge"
        );
        assert!(r.peak_queued_tokens >= 4 * 12);
        assert_eq!(
            r.decode_steps, 3,
            "all five requests decode as one batch after back-to-back prefills"
        );
        for o in &r.completed[1..] {
            assert!(
                o.queue_ms > 0.0,
                "requests 1-4 waited out request 0's prefill"
            );
        }
    }

    #[test]
    fn kv_peak_never_exceeds_capacity() {
        let r = simulate(&tiny_config()).unwrap();
        assert!(r.kv_peak_bytes <= r.kv_capacity_bytes);
    }

    #[test]
    fn impossible_request_is_rejected_up_front() {
        let mut cfg = tiny_config();
        // Leave KV room for 50 tokens; the worst-case request needs 64+16.
        let weights =
            cfg.kv_admission
                .weight_bytes(&cfg.model, cfg.max_request_tokens(), cfg.kv_dtype);
        let per_tok = cfg
            .kv_admission
            .kv_bytes_per_token(&cfg.model, cfg.kv_dtype);
        cfg.hw.memory.hbm_capacity_bytes = weights + per_tok * 50;
        let err = simulate(&cfg);
        assert!(matches!(err, Err(ServingError::RequestTooLarge { .. })));
    }

    #[test]
    fn tighter_memory_causes_backpressure_not_overflow() {
        let mut cfg = tiny_config();
        // Narrow the length ranges so the worst-case request (24 tokens)
        // fits, but two typical requests already crowd a 30-token device.
        cfg.traffic.prompt_range = (8, 16);
        cfg.traffic.output_range = (4, 8);
        let weights =
            cfg.kv_admission
                .weight_bytes(&cfg.model, cfg.max_request_tokens(), cfg.kv_dtype);
        let per_tok = cfg
            .kv_admission
            .kv_bytes_per_token(&cfg.model, cfg.kv_dtype);
        cfg.hw.memory.hbm_capacity_bytes = weights + per_tok * 30;
        let r = simulate(&cfg).unwrap();
        assert_eq!(r.completed.len(), 30, "backpressure must not drop requests");
        assert!(r.backpressure_stalls > 0, "expected KV admission stalls");
        assert!(r.kv_peak_bytes <= r.kv_capacity_bytes);
    }

    #[test]
    fn replicas_complete_everything_and_tag_the_trace() {
        let mut cfg = tiny_config();
        cfg.devices = 2;
        let r = simulate(&cfg).unwrap();
        assert_eq!(r.completed.len(), 30, "replicas must not drop requests");
        assert_eq!(r.offered, 30);
        assert_eq!(r.devices, 2);
        assert_eq!(r.trace.devices().len(), 2);
        assert_eq!(r.replica_uptime_ms.len(), 2);
        for (i, o) in r.completed.iter().enumerate() {
            assert_eq!(o.id, i as u64);
        }
        // A two-replica box should not serve the stream slower.
        let single = simulate(&tiny_config()).unwrap();
        assert!(r.makespan_ms <= single.makespan_ms * 1.01);
    }

    #[test]
    fn larger_batch_does_not_hurt_goodput() {
        let mut small = tiny_config();
        small.max_batch = 1;
        let mut big = tiny_config();
        big.max_batch = 8;
        let rs = simulate(&small).unwrap();
        let rb = simulate(&big).unwrap();
        assert!(rb.goodput_tokens_per_s >= rs.goodput_tokens_per_s * 0.99);
        assert!(rb.makespan_ms <= rs.makespan_ms * 1.01);
    }

    #[test]
    fn killed_replica_requeues_onto_the_survivor() {
        let mut cfg = tiny_config();
        cfg.devices = 2;
        // Arrivals span ~600 ms; killing D1 at 20 ms strands most of its
        // round-robin share.
        cfg.faults = FaultPlan::none().kill(DeviceId(1), 20.0);
        let r = simulate(&cfg).unwrap();
        assert_eq!(r.completed.len(), 30, "failures must not drop requests");
        assert_eq!(r.offered, 30);
        assert_eq!(r.failed_replicas, 1);
        assert_eq!(r.restarts, 0);
        assert!(r.retries > 0, "orphans must be retried on the survivor");
        assert!(r.availability() < 1.0);
        assert_eq!(r.replica_uptime_ms[1], 20.0);
        assert!(r.replica_uptime_ms[0] > 20.0);
        // Retried requests carry their retry count into the outcome.
        assert!(r.completed.iter().any(|o| o.retries == 1));
        // Faulted runs are as deterministic as clean ones.
        let again = simulate(&cfg).unwrap();
        assert_eq!(r.makespan_ms, again.makespan_ms);
        assert_eq!(r.retries, again.retries);
        assert_eq!(r.requeued_tokens, again.requeued_tokens);
        assert_eq!(r.completed, again.completed);
    }

    #[test]
    fn both_redistribution_policies_complete_everything() {
        // Saturate arrivals so every replica holds queued work when the
        // kill lands mid-run — otherwise the victim might die idle and
        // orphan nothing.
        let mut base = tiny_config();
        base.traffic.arrival_rate_per_s = 1e6;
        base.devices = 3;
        let kill_at = simulate(&base).unwrap().makespan_ms * 0.3;
        for policy in [
            RedistributionPolicy::RoundRobin,
            RedistributionPolicy::LeastLoaded,
        ] {
            let mut cfg = base.clone();
            cfg.redistribution = policy;
            cfg.faults = FaultPlan::none().kill(DeviceId(2), kill_at);
            let r = simulate(&cfg).unwrap();
            assert_eq!(r.completed.len(), 30, "{policy:?} dropped requests");
            assert!(r.retries > 0);
        }
    }

    #[test]
    fn killing_every_replica_is_an_error() {
        let mut cfg = tiny_config();
        cfg.faults = FaultPlan::none().kill(DeviceId(0), 0.0);
        match simulate(&cfg) {
            Err(ServingError::AllReplicasDead { unserved }) => assert_eq!(unserved, 30),
            other => panic!("expected AllReplicasDead, got {other:?}"),
        }
    }

    #[test]
    fn fault_plan_referencing_a_missing_device_is_rejected() {
        let mut cfg = tiny_config();
        cfg.faults = FaultPlan::none().kill(DeviceId(5), 1.0);
        assert!(matches!(simulate(&cfg), Err(ServingError::Fault(_))));
    }

    #[test]
    fn malformed_robustness_config_is_rejected() {
        let mut cfg = tiny_config();
        cfg.robustness = RobustnessConfig::default().queue_depth(0);
        assert!(matches!(
            simulate(&cfg),
            Err(ServingError::InvalidConfig(_))
        ));
    }

    #[test]
    fn slowdown_window_stretches_the_run_deterministically() {
        // Saturate arrivals so the makespan is compute-bound; a throttle on
        // an idle, arrival-dominated run would hide in the slack.
        let mut base_cfg = tiny_config();
        base_cfg.traffic.arrival_rate_per_s = 1e6;
        let baseline = simulate(&base_cfg).unwrap();
        let mut cfg = base_cfg;
        cfg.faults = FaultPlan::none().slow(0.0, 1e9, 2.0);
        let slowed = simulate(&cfg).unwrap();
        assert!(
            slowed.makespan_ms > baseline.makespan_ms * 1.5,
            "a 2x box-wide throttle must visibly stretch the makespan \
             ({} vs {})",
            slowed.makespan_ms,
            baseline.makespan_ms
        );
        assert_eq!(slowed.completed.len(), 30);
        let again = simulate(&cfg).unwrap();
        assert_eq!(slowed.makespan_ms, again.makespan_ms);
    }

    #[test]
    fn shedding_bounds_the_queue_and_conserves_requests() {
        // A ~30-request burst against a 4-deep admission queue: the
        // overflow is shed, the queue gauge respects the bound, and
        // completed + dropped still accounts for every arrival.
        let mut cfg = tiny_config();
        cfg.traffic.arrival_rate_per_s = 1e6;
        cfg.robustness = RobustnessConfig::default().queue_depth(4);
        let r = simulate(&cfg).unwrap();
        assert!(r.shed() > 0, "the burst must overflow a 4-deep queue");
        assert_eq!(r.completed.len() + r.dropped.len(), 30);
        assert_eq!(r.offered, 30);
        assert!(r.max_queue_depth <= 4);
        assert!(r
            .dropped
            .iter()
            .all(|d| d.kind == DropKind::Rejected && d.tokens_generated == 0));
        assert!(r.goodput_fraction() < 1.0);

        // The unbounded baseline absorbs the same burst without shedding —
        // visible as a deeper queue and a larger queued-token peak.
        let mut unbounded = tiny_config();
        unbounded.traffic.arrival_rate_per_s = 1e6;
        let ru = simulate(&unbounded).unwrap();
        assert_eq!(ru.completed.len(), 30);
        assert!(ru.max_queue_depth > 4);
        assert!(ru.peak_queued_tokens > r.peak_queued_tokens);
    }

    #[test]
    fn queued_token_bound_sheds_like_the_depth_bound() {
        let mut cfg = tiny_config();
        cfg.traffic.arrival_rate_per_s = 1e6;
        cfg.robustness = RobustnessConfig::default().queued_tokens(100);
        let r = simulate(&cfg).unwrap();
        assert!(r.shed() > 0);
        assert!(r.peak_queued_tokens <= 100);
        assert_eq!(r.completed.len() + r.dropped.len(), 30);
    }

    #[test]
    fn ttft_deadline_expires_queued_requests() {
        // A burst against a TTFT SLO of three worst-case prefills: the
        // head of the queue completes in time, the tail times out, and
        // every completion actually met the deadline.
        let mut cfg = tiny_config();
        cfg.traffic.arrival_rate_per_s = 1e6;
        let deadline = tiny_cost_model(&cfg).prefill(1, 64).unwrap().ms * 3.0;
        cfg.robustness = RobustnessConfig::default().ttft_deadline(deadline);
        let r = simulate(&cfg).unwrap();
        assert!(
            r.timed_out() > 0,
            "the burst tail must miss a {deadline} ms TTFT SLO"
        );
        assert!(!r.completed.is_empty(), "the burst head meets the SLO");
        assert_eq!(r.completed.len() + r.dropped.len(), 30);
        for o in &r.completed {
            assert!(o.ttft_ms <= deadline, "completed requests met the TTFT SLO");
        }
        assert!(r.timed_out_latency_ms.p50 > 0.0);
        assert!(r.throughput_tokens_per_s >= r.goodput_tokens_per_s);
    }

    #[test]
    fn e2e_deadline_cancels_mid_decode() {
        // Deadline admits the prefill plus a few decode steps, not all 15:
        // the request is cancelled at a decode boundary with its partial
        // tokens counted toward throughput only.
        let mut cfg = tiny_config();
        let mut cost = tiny_cost_model(&cfg);
        let prefill = cost.prefill(1, 32).unwrap().ms;
        let decode = cost.decode(1, 48).unwrap().ms;
        cfg.robustness = RobustnessConfig::default().deadline(prefill + 3.5 * decode);
        let req = Request {
            id: 0,
            arrival_us: 0,
            prompt_len: 32,
            output_len: 16,
        };
        let r = simulate_trace(&cfg, vec![req]).unwrap();
        assert!(r.completed.is_empty());
        assert_eq!(r.dropped.len(), 1);
        let d = &r.dropped[0];
        assert_eq!(d.kind, DropKind::TimedOut);
        assert!(
            d.tokens_generated >= 1 && d.tokens_generated < 16,
            "cancelled mid-decode, got {} tokens",
            d.tokens_generated
        );
        assert_eq!(r.goodput_tokens_per_s, 0.0);
        assert!(
            r.throughput_tokens_per_s > 0.0,
            "partial work is throughput"
        );
    }

    #[test]
    fn restarted_replica_rejoins_the_pool() {
        let mut cfg = tiny_config();
        cfg.devices = 2;
        // D1 dies at 20 ms and comes back at 120 ms — cold recipe cache,
        // same dispatch slot.
        cfg.faults = FaultPlan::none().kill_for(DeviceId(1), 20.0, 100.0);
        let r = simulate(&cfg).unwrap();
        assert_eq!(r.completed.len(), 30, "restart runs must not drop requests");
        assert!(r.dropped.is_empty());
        assert_eq!(r.failed_replicas, 1);
        assert_eq!(r.restarts, 1);
        assert!(r.retries > 0, "the kill still orphans in-flight work");
        // The restarted card served post-restart work: up-time beyond the
        // 20 ms it survived before dying.
        assert!(
            r.replica_uptime_ms[1] > 20.0,
            "D1 must accrue up-time after its restart, got {}",
            r.replica_uptime_ms[1]
        );
        // Availability sits strictly between a permanent kill and no fault.
        let mut perm = tiny_config();
        perm.devices = 2;
        perm.faults = FaultPlan::none().kill(DeviceId(1), 20.0);
        let rp = simulate(&perm).unwrap();
        assert!(r.availability() > rp.availability());
        assert!(r.availability() < 1.0);
        // Restart runs stay bit-deterministic.
        let again = simulate(&cfg).unwrap();
        assert_eq!(r.makespan_ms, again.makespan_ms);
        assert_eq!(r.completed, again.completed);
    }

    #[test]
    fn retry_budget_exhaustion_fails_requests() {
        let mut cfg = tiny_config();
        cfg.devices = 2;
        cfg.faults = FaultPlan::none().kill(DeviceId(1), 20.0);
        cfg.robustness = RobustnessConfig::default().retries(0);
        let r = simulate(&cfg).unwrap();
        assert!(r.failed() > 0, "a zero-retry budget fails every orphan");
        assert_eq!(r.completed.len() + r.dropped.len(), 30);
        assert_eq!(r.offered, 30);
        assert!(r.dropped.iter().all(|d| d.kind == DropKind::Failed));
        assert!(r.completed.iter().all(|o| o.retries == 0));
    }

    #[test]
    fn backoff_stretches_recovery_deterministically() {
        let mut instant = tiny_config();
        instant.devices = 2;
        instant.faults = FaultPlan::none().kill(DeviceId(1), 20.0);
        let ri = simulate(&instant).unwrap();
        let mut delayed = instant;
        delayed.robustness = RobustnessConfig::default().backoff(5_000.0, 0.25, 11);
        let rd = simulate(&delayed).unwrap();
        assert_eq!(rd.completed.len(), 30, "backoff delays, it never drops");
        assert!(
            rd.makespan_ms > ri.makespan_ms + 4_000.0,
            "a 5 s first-retry backoff must push orphans well past the \
             instant-requeue makespan ({} vs {})",
            rd.makespan_ms,
            ri.makespan_ms
        );
        let again = simulate(&delayed).unwrap();
        assert_eq!(rd.makespan_ms, again.makespan_ms);
        assert_eq!(rd.completed, again.completed);
    }

    /// A KV-tight variant of [`tiny_config`]: room for `tokens` of KV on
    /// top of the weights, saturating arrivals.
    fn kv_tight_config(tokens: u64) -> ServingConfig {
        let mut cfg = tiny_config();
        cfg.traffic.arrival_rate_per_s = 1e6;
        cfg.traffic.prompt_range = (8, 16);
        cfg.traffic.output_range = (16, 32);
        let weights =
            cfg.kv_admission
                .weight_bytes(&cfg.model, cfg.max_request_tokens(), cfg.kv_dtype);
        let per_tok = cfg
            .kv_admission
            .kv_bytes_per_token(&cfg.model, cfg.kv_dtype);
        cfg.hw.memory.hbm_capacity_bytes = weights + per_tok * tokens;
        cfg
    }

    #[test]
    fn paged_admission_raises_concurrency_at_equal_hbm() {
        // 96 KV tokens: contiguous admission fits at most two worst-case
        // (48-token) reservations, paged admission packs live contexts.
        let contiguous = simulate(&kv_tight_config(96)).unwrap();
        let mut cfg = kv_tight_config(96);
        cfg.kv_admission = KvAdmissionConfig::Paged { block_tokens: 8 };
        let paged = simulate(&cfg).unwrap();
        assert_eq!(paged.completed.len(), 30, "paged must not drop requests");
        assert!(
            paged.peak_running > contiguous.peak_running,
            "paged admission must raise max concurrent sequences \
             ({} vs {})",
            paged.peak_running,
            contiguous.peak_running
        );
        assert!(
            paged.kv_block_utilization > contiguous.kv_block_utilization,
            "block chains hold live tokens, worst-case reservations don't \
             ({} vs {})",
            paged.kv_block_utilization,
            contiguous.kv_block_utilization
        );
        assert!(paged.kv_peak_bytes <= paged.kv_capacity_bytes);
        // Deterministic, preemptions and all.
        let again = simulate(&cfg).unwrap();
        assert_eq!(paged.makespan_ms, again.makespan_ms);
        assert_eq!(paged.preemptions, again.preemptions);
        assert_eq!(paged.completed, again.completed);
    }

    /// An activation-aware variant of [`kv_tight_config`]: paged KV, and
    /// HBM sized as weights + the naive activation estimate + `tokens` of
    /// KV. Under `Unplanned` that leaves exactly `tokens` of KV headroom;
    /// under `Planned` the packed arena is smaller than the naive sum and
    /// the difference becomes extra KV blocks at the same capacity.
    fn mem_tight_config(budget: ActivationBudget, tokens: u64) -> ServingConfig {
        let mut cfg = kv_tight_config(0);
        cfg.kv_admission = KvAdmissionConfig::Paged { block_tokens: 8 };
        cfg.activation_budget = budget;
        let (_, naive) = activation_estimate(&cfg).unwrap();
        let weights =
            cfg.kv_admission
                .weight_bytes(&cfg.model, cfg.max_request_tokens(), cfg.kv_dtype);
        let per_tok = cfg
            .kv_admission
            .kv_bytes_per_token(&cfg.model, cfg.kv_dtype);
        cfg.hw.memory.hbm_capacity_bytes = weights + naive + per_tok * tokens;
        cfg
    }

    #[test]
    fn activation_budget_orders_admissible_kv() {
        // A bigger admission-time reserve leaves a smaller block pool at
        // the same HBM: Off > Planned > Unplanned admissible tokens,
        // strictly because the planner packs tighter than the naive sum
        // by more than a block on this model.
        let cfg = mem_tight_config(ActivationBudget::Off, 96);
        let (planned_bytes, naive_bytes) = activation_estimate(&cfg).unwrap();
        assert!(planned_bytes > 0);
        assert!(
            planned_bytes < naive_bytes,
            "the arena must beat the naive sum ({planned_bytes} vs {naive_bytes})"
        );
        let pool_of = |reserve: u64| {
            cfg.kv_admission
                .build(
                    &cfg.hw.memory,
                    &cfg.model,
                    cfg.max_request_tokens(),
                    cfg.kv_dtype,
                    reserve,
                )
                .unwrap()
                .max_admissible_tokens()
        };
        let off = pool_of(0);
        let planned = pool_of(planned_bytes);
        let unplanned = pool_of(naive_bytes);
        assert!(
            off > planned && planned > unplanned,
            "reserves must shrink the pool monotonically \
             ({off} vs {planned} vs {unplanned})"
        );
        for budget in [
            ActivationBudget::Off,
            ActivationBudget::Planned,
            ActivationBudget::Unplanned,
        ] {
            let r = simulate(&mem_tight_config(budget, 96)).unwrap();
            assert_eq!(r.completed.len(), 30, "{budget:?} stalls, never drops");
            assert!(r.kv_peak_bytes <= r.kv_capacity_bytes);
        }
    }

    #[test]
    fn planned_budget_reclaims_headroom_into_concurrency() {
        let unplanned = simulate(&mem_tight_config(ActivationBudget::Unplanned, 96)).unwrap();
        let planned = simulate(&mem_tight_config(ActivationBudget::Planned, 96)).unwrap();
        assert!(
            planned.peak_running >= unplanned.peak_running,
            "reclaimed activation headroom must not lower concurrency \
             ({} vs {})",
            planned.peak_running,
            unplanned.peak_running
        );
        assert!(planned.goodput_tokens_per_s >= unplanned.goodput_tokens_per_s);
        // Deterministic on both sides.
        let again = simulate(&mem_tight_config(ActivationBudget::Planned, 96)).unwrap();
        assert_eq!(planned.makespan_ms, again.makespan_ms);
        assert_eq!(planned.completed, again.completed);
    }

    #[test]
    fn activation_budget_off_is_the_default_and_reserves_nothing() {
        let cfg = kv_tight_config(96);
        assert_eq!(cfg.activation_budget, ActivationBudget::Off);
        let explicit = ServingConfig::builder()
            .activation_budget(ActivationBudget::Off)
            .build();
        assert_eq!(explicit.activation_budget, ActivationBudget::Off);
        // Off charges no activation reserve: same pool as the seed.
        let mut with_field = cfg.clone();
        with_field.activation_budget = ActivationBudget::Off;
        let a = simulate(&cfg).unwrap();
        let b = simulate(&with_field).unwrap();
        assert_eq!(a.kv_capacity_bytes, b.kv_capacity_bytes);
        assert_eq!(a.makespan_ms, b.makespan_ms);
        assert_eq!(a.completed, b.completed);
    }

    #[test]
    fn paged_preemption_discards_and_recomputes_not_drops() {
        // 40 KV tokens in 4-token blocks. Two requests of 8+30 = 38 total
        // tokens: paged admission takes both on their 9-token live
        // footprints, growth dries the 10-block pool mid-decode, and the
        // newest admission is preempted back to the queue — both still
        // complete.
        let mut cfg = kv_tight_config(40);
        cfg.kv_admission = KvAdmissionConfig::Paged { block_tokens: 4 };
        let reqs: Vec<Request> = (0..2)
            .map(|id| Request {
                id,
                arrival_us: 0,
                prompt_len: 8,
                output_len: 30,
            })
            .collect();
        let r = simulate_trace(&cfg, reqs).unwrap();
        assert_eq!(r.completed.len(), 2, "preemption must never drop");
        assert!(r.dropped.is_empty());
        assert!(
            r.preemptions > 0,
            "a 10-block pool cannot hold two 38-token chains"
        );
        assert!(
            r.requeued_tokens > 0,
            "the victim's generated tokens are recomputed"
        );
        assert_eq!(r.peak_running, 2, "both requests ran concurrently first");
        // Contiguous admission never preempts: it serializes instead.
        let base = kv_tight_config(40);
        let reqs: Vec<Request> = (0..2)
            .map(|id| Request {
                id,
                arrival_us: 0,
                prompt_len: 8,
                output_len: 30,
            })
            .collect();
        let rc = simulate_trace(&base, reqs).unwrap();
        assert_eq!(rc.preemptions, 0);
        assert_eq!(rc.peak_running, 1, "38 + 38 > 40 forces serial service");
    }

    #[test]
    fn recipe_warmup_stretches_the_clock_without_busying_engines() {
        // One request, so the schedule cannot reshuffle: prompt 48 (one
        // prefill shape) and 5 decode steps whose contexts 49..53 share
        // one ctx bucket — exactly two recipe compiles.
        let cfg = tiny_config();
        let req = Request {
            id: 0,
            arrival_us: 0,
            prompt_len: 48,
            output_len: 6,
        };
        let base = simulate_trace(&cfg, vec![req.clone()]).unwrap();
        let mut warm_cfg = tiny_config();
        warm_cfg.recipes = RecipeConfig {
            compile_ms: 25.0,
            batch_bucket: 1,
        };
        let warm = simulate_trace(&warm_cfg, vec![req]).unwrap();
        assert_eq!(warm.recipe_compiles, 2);
        assert!(
            (warm.makespan_ms - base.makespan_ms - 50.0).abs() < 1e-6,
            "two first-use compiles must stretch the clock by exactly 2 x \
             25 ms ({} vs {})",
            warm.makespan_ms,
            base.makespan_ms
        );
        // TTFT absorbs the prefill compile only.
        assert!((warm.ttft_ms.p50 - base.ttft_ms.p50 - 25.0).abs() < 1e-6);
        // Warmup is host time: engine-busy totals (utilization x makespan)
        // are unchanged, so utilization strictly dilutes.
        let base_busy = base.mme_utilization * base.makespan_ms;
        let warm_busy = warm.mme_utilization * warm.makespan_ms;
        assert!((base_busy - warm_busy).abs() < 1e-6);
        assert!(warm.mme_utilization < base.mme_utilization);
        // Even the no-penalty default counts distinct shapes.
        assert_eq!(base.recipe_compiles, 2);
        assert_eq!(base.padding_waste(), warm.padding_waste());
    }

    #[test]
    fn restart_pays_recipe_warmup_again() {
        // Pin all work to D1 (D0 dies at t=0) so the comparison is not
        // muddied by work moving between replicas: a mid-run kill_for on
        // D1 parks the stream until its restart, and the cold cache then
        // recompiles shapes D1 already paid for.
        let mut clean = tiny_config();
        clean.traffic.arrival_rate_per_s = 1e6;
        clean.devices = 2;
        clean.faults = FaultPlan::none().kill(DeviceId(0), 0.0);
        clean.recipes = RecipeConfig {
            compile_ms: 10.0,
            batch_bucket: 1,
        };
        let r_clean = simulate(&clean).unwrap();
        assert_eq!(r_clean.completed.len(), 30);
        let mut faulted = clean;
        let kill_at = r_clean.makespan_ms * 0.5;
        faulted.faults =
            FaultPlan::none()
                .kill(DeviceId(0), 0.0)
                .kill_for(DeviceId(1), kill_at, 50.0);
        let r = simulate(&faulted).unwrap();
        assert_eq!(r.restarts, 1);
        assert_eq!(r.completed.len() + r.dropped.len(), 30);
        assert!(
            r.recipe_compiles > r_clean.recipe_compiles,
            "a cold-restarted replica recompiles shapes it already paid for \
             ({} vs {})",
            r.recipe_compiles,
            r_clean.recipe_compiles
        );
        let again = simulate(&faulted).unwrap();
        assert_eq!(r.recipe_compiles, again.recipe_compiles);
        assert_eq!(r.makespan_ms, again.makespan_ms);
    }

    #[test]
    fn batch_bucketing_trades_padding_for_fewer_recipes() {
        let mut exact = tiny_config();
        exact.traffic.arrival_rate_per_s = 1e6;
        exact.recipes = RecipeConfig {
            compile_ms: 5.0,
            batch_bucket: 1,
        };
        let r_exact = simulate(&exact).unwrap();
        let mut coarse = exact;
        coarse.recipes = RecipeConfig {
            compile_ms: 5.0,
            batch_bucket: 4,
        };
        let r_coarse = simulate(&coarse).unwrap();
        assert_eq!(r_coarse.completed.len(), 30);
        assert!(
            r_coarse.recipe_compiles <= r_exact.recipe_compiles,
            "coarser batch buckets cannot need more recipes ({} vs {})",
            r_coarse.recipe_compiles,
            r_exact.recipe_compiles
        );
        assert!(
            r_coarse.padding_waste() > r_exact.padding_waste(),
            "padding is the price of coarse buckets ({} vs {})",
            r_coarse.padding_waste(),
            r_exact.padding_waste()
        );
    }

    #[test]
    fn builder_constructs_and_derives_configs() {
        let cfg = ServingConfig::builder()
            .max_batch(4)
            .devices(2)
            .kv_admission(KvAdmissionConfig::paged())
            .recipes(RecipeConfig {
                compile_ms: 1.0,
                batch_bucket: 2,
            })
            .build();
        assert_eq!(cfg.max_batch, 4);
        assert_eq!(cfg.devices, 2);
        assert_eq!(
            cfg.kv_admission,
            KvAdmissionConfig::Paged { block_tokens: 16 }
        );
        let derived = cfg.to_builder().devices(1).build();
        assert_eq!(derived.devices, 1);
        assert_eq!(derived.max_batch, 4, "unset fields carry over");
        assert_eq!(derived.recipes.batch_bucket, 2);
    }

    #[test]
    fn malformed_kv_and_recipe_configs_are_rejected() {
        let mut cfg = tiny_config();
        cfg.kv_admission = KvAdmissionConfig::Paged { block_tokens: 0 };
        assert!(matches!(
            simulate(&cfg),
            Err(ServingError::InvalidConfig(_))
        ));
        let mut cfg = tiny_config();
        cfg.recipes.batch_bucket = 0;
        assert!(matches!(
            simulate(&cfg),
            Err(ServingError::InvalidConfig(_))
        ));
    }
}
