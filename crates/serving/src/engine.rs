//! The serving engine: continuous batching at decode-step boundaries.
//!
//! The simulator advances a single device clock through an
//! iteration-level (Orca-style) schedule:
//!
//! 1. ingest arrivals into a FIFO admission queue;
//! 2. at every step boundary, admit queued requests while the decode
//!    batch has a slot *and* the KV accountant accepts the request's
//!    worst-case reservation (otherwise: backpressure — the request
//!    waits, it is never dropped);
//! 3. admission runs the request's prefill as a dedicated phase (the
//!    engine is busy for its full duration);
//! 4. one decode step advances *every* running request by one token;
//!    requests that reach their output length retire at the boundary and
//!    free their KV reservation immediately, opening slots for the queue.
//!
//! Every phase is priced by the [`CostModel`], so
//! the same §3.3/§3.4 hardware calibration that reproduces the paper's
//! training figures also sets TTFT and per-token latency here.

use crate::cost::CostModel;
use crate::error::ServingError;
use crate::kv::{kv_bytes_per_token, weight_bytes, KvAccountant};
use crate::report::{Percentiles, RequestOutcome, ServingReport};
use crate::request::{generate_requests, Request, TrafficConfig};
use gaudi_compiler::CompilerOptions;
use gaudi_hw::{DeviceId, EngineId, GaudiConfig};
use gaudi_models::LlmConfig;
use gaudi_profiler::trace::TraceEvent;
use gaudi_profiler::Trace;
use gaudi_tensor::DType;
use std::collections::VecDeque;

/// Full configuration of a serving simulation.
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// The model being served (its `batch`/`seq_len`/`training` fields are
    /// ignored; serving shapes phases itself).
    pub model: LlmConfig,
    /// Request-stream parameters.
    pub traffic: TrafficConfig,
    /// Maximum decode batch size (continuous-batching slot count).
    pub max_batch: usize,
    /// Context-length bucket for the decode-graph cache, tokens.
    pub ctx_bucket: usize,
    /// KV-cache element type.
    pub kv_dtype: DType,
    /// Hardware model.
    pub hw: GaudiConfig,
    /// Compiler options used to cost every phase.
    pub opts: CompilerOptions,
    /// Number of cards serving as independent data-parallel replicas, each
    /// holding a full model copy and taking a round-robin share of the
    /// request stream.
    pub devices: usize,
}

impl ServingConfig {
    /// Serve the paper's §3.4 GPT configuration (2 layers, d=512). Tiny by
    /// modern standards — its KV cache almost never pressures 32 GB.
    pub fn paper_gpt() -> Self {
        let mut model = LlmConfig::paper_section_3_4(50257);
        model.training = false;
        ServingConfig {
            model,
            traffic: TrafficConfig::default(),
            max_batch: 8,
            ctx_bucket: 128,
            kv_dtype: DType::F32,
            hw: GaudiConfig::hls1(),
            opts: CompilerOptions::default(),
            devices: 1,
        }
    }

    /// A GPT-2-XL-class model (48 layers, d=1600): heavy enough that KV
    /// reservations contend for the 32 GB device and admission
    /// backpressure actually engages.
    pub fn gpt2_xl() -> Self {
        let model = LlmConfig {
            vocab: 50257,
            seq_len: 2048,
            batch: 1,
            layers: 48,
            heads: 25,
            head_dim: 64,
            ffn_mult: 4,
            training: false,
        };
        ServingConfig {
            model,
            traffic: TrafficConfig::default(),
            max_batch: 16,
            ctx_bucket: 128,
            kv_dtype: DType::F32,
            hw: GaudiConfig::hls1(),
            opts: CompilerOptions::default(),
            devices: 1,
        }
    }

    /// Largest prompt+output the traffic model can emit, tokens.
    fn max_request_tokens(&self) -> usize {
        self.traffic.prompt_range.1 + self.traffic.output_range.1
    }
}

/// A request currently holding a decode slot.
#[derive(Debug)]
struct Active {
    req: Request,
    /// Tokens visible to attention (prompt + generated so far).
    ctx: usize,
    generated: usize,
    outcome: RequestOutcome,
}

/// Run a serving simulation to completion.
///
/// Identical configurations (including `traffic.seed`) produce identical
/// reports: the simulation is a deterministic function of its inputs.
///
/// With `cfg.devices > 1` the request stream is split round-robin (in
/// arrival order) across that many data-parallel replicas, each running the
/// full continuous-batching schedule on its own card; the merged report
/// carries per-card-averaged utilizations and a device-tagged trace.
pub fn simulate(cfg: &ServingConfig) -> Result<ServingReport, ServingError> {
    if cfg.max_batch == 0 {
        return Err(ServingError::InvalidConfig(
            "max_batch must be at least 1".into(),
        ));
    }
    if cfg.traffic.num_requests == 0 {
        return Err(ServingError::InvalidConfig(
            "traffic.num_requests must be positive".into(),
        ));
    }
    if cfg.devices == 0 {
        return Err(ServingError::InvalidConfig(
            "devices must be at least 1".into(),
        ));
    }

    let requests = generate_requests(&cfg.traffic);
    if cfg.devices == 1 {
        return simulate_replica(cfg, requests);
    }
    let mut shards: Vec<Vec<Request>> = vec![Vec::new(); cfg.devices];
    for (i, r) in requests.into_iter().enumerate() {
        shards[i % cfg.devices].push(r);
    }
    let replicas = shards
        .into_iter()
        .map(|shard| simulate_replica(cfg, shard))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(merge_replicas(cfg.devices, replicas))
}

/// One card's continuous-batching simulation over its share of the stream.
fn simulate_replica(
    cfg: &ServingConfig,
    requests: Vec<Request>,
) -> Result<ServingReport, ServingError> {
    let max_positions = cfg.max_request_tokens();
    let weights = weight_bytes(&cfg.model, max_positions, cfg.kv_dtype);
    let per_token = kv_bytes_per_token(&cfg.model, cfg.kv_dtype);
    let mut kv = KvAccountant::new(&cfg.hw.memory, weights, per_token)
        .map_err(ServingError::WeightsDontFit)?;

    let mut cost = CostModel::new(
        cfg.model.clone(),
        cfg.hw.clone(),
        cfg.opts.clone(),
        cfg.ctx_bucket,
    );

    // Reject outright only what can never fit; everything else queues.
    for r in &requests {
        if r.total_tokens() as u64 > kv.max_admissible_tokens() {
            return Err(ServingError::RequestTooLarge {
                id: r.id,
                tokens: r.total_tokens(),
                max_tokens: kv.max_admissible_tokens(),
            });
        }
    }

    let mut pending: VecDeque<Request> = requests.into_iter().collect();
    let mut waiting: VecDeque<Request> = VecDeque::new();
    let mut running: Vec<Active> = Vec::new();
    let mut done: Vec<RequestOutcome> = Vec::new();

    let mut clock_ms = 0.0f64;
    let mut mme_busy_ns = 0.0f64;
    let mut tpc_busy_ns = 0.0f64;
    let mut dma_busy_ns = 0.0f64;
    let mut decode_steps = 0usize;
    let mut prefills = 0usize;
    let mut backpressure_stalls = 0usize;
    let mut max_queue_depth = 0usize;
    let mut trace = Trace::new();

    let total = pending.len();
    while done.len() < total {
        // 1. Ingest everything that has arrived by now.
        while pending.front().is_some_and(|r| r.arrival_ms() <= clock_ms) {
            if let Some(r) = pending.pop_front() {
                waiting.push_back(r);
            }
        }
        max_queue_depth = max_queue_depth.max(waiting.len());

        // 2. Admit from the queue while slots and KV reservations allow.
        while running.len() < cfg.max_batch {
            let Some(front) = waiting.front() else { break };
            if kv.try_reserve(front.total_tokens()).is_err() {
                backpressure_stalls += 1;
                break; // FIFO: wait for retirements, do not starve the head.
            }
            let Some(req) = waiting.pop_front() else {
                break;
            };
            let queue_ms = clock_ms - req.arrival_ms();
            let c = cost.prefill(1, req.prompt_len)?;
            record_phase(&mut trace, "prefill", clock_ms, &c);
            clock_ms += c.ms;
            mme_busy_ns += c.mme_busy_ns;
            tpc_busy_ns += c.tpc_busy_ns;
            dma_busy_ns += c.dma_busy_ns;
            prefills += 1;
            running.push(Active {
                ctx: req.prompt_len,
                generated: 0,
                outcome: RequestOutcome {
                    id: req.id,
                    arrival_ms: req.arrival_ms(),
                    prompt_len: req.prompt_len,
                    output_len: req.output_len,
                    queue_ms,
                    ttft_ms: 0.0,
                    finish_ms: 0.0,
                    token_times_ms: Vec::with_capacity(req.output_len),
                },
                req,
            });
        }

        // 3. Nothing running: jump the clock to the next arrival.
        if running.is_empty() {
            let Some(next) = pending.front() else {
                debug_assert!(
                    waiting.is_empty(),
                    "queued requests can always be admitted into an idle engine"
                );
                break;
            };
            clock_ms = clock_ms.max(next.arrival_ms());
            continue;
        }

        // 4. One decode step advances every running request by one token.
        let batch = running.len();
        let max_ctx = running.iter().map(|a| a.ctx).max().unwrap_or(1);
        let c = cost.decode(batch, max_ctx)?;
        record_phase(&mut trace, "decode", clock_ms, &c);
        clock_ms += c.ms;
        mme_busy_ns += c.mme_busy_ns;
        tpc_busy_ns += c.tpc_busy_ns;
        dma_busy_ns += c.dma_busy_ns;
        decode_steps += 1;

        let mut i = 0;
        while i < running.len() {
            let a = &mut running[i];
            a.generated += 1;
            a.ctx += 1;
            if a.generated == 1 {
                a.outcome.ttft_ms = clock_ms - a.req.arrival_ms();
            }
            a.outcome.token_times_ms.push(clock_ms);
            if a.generated == a.req.output_len {
                let mut finished = running.swap_remove(i);
                finished.outcome.finish_ms = clock_ms;
                kv.release(finished.req.total_tokens());
                done.push(finished.outcome);
            } else {
                i += 1;
            }
        }
    }

    done.sort_by_key(|o| o.id);
    let span_ns = clock_ms * 1e6;
    let generated_tokens: usize = done.iter().map(|o| o.output_len).sum();

    let ttft = Percentiles::of(done.iter().map(|o| o.ttft_ms));
    let tpot = Percentiles::of(done.iter().flat_map(|o| {
        o.token_times_ms
            .windows(2)
            .map(|w| w[1] - w[0])
            .collect::<Vec<_>>()
    }));
    let queue = Percentiles::of(done.iter().map(|o| o.queue_ms));

    Ok(ServingReport {
        completed: done,
        makespan_ms: clock_ms,
        ttft_ms: ttft,
        tpot_ms: tpot,
        queue_ms: queue,
        goodput_tokens_per_s: generated_tokens as f64 / (clock_ms / 1e3),
        mme_utilization: if span_ns > 0.0 {
            mme_busy_ns / span_ns
        } else {
            0.0
        },
        tpc_utilization: if span_ns > 0.0 {
            tpc_busy_ns / span_ns
        } else {
            0.0
        },
        dma_utilization: if span_ns > 0.0 {
            dma_busy_ns / span_ns
        } else {
            0.0
        },
        decode_steps,
        prefills,
        backpressure_stalls,
        max_queue_depth,
        kv_peak_bytes: kv.peak(),
        kv_capacity_bytes: kv.capacity(),
        compiled_graphs: cost.compiled_graphs(),
        devices: 1,
        trace,
    })
}

/// Merge per-replica reports into one box-level report: latency percentiles
/// recomputed over the union, throughput summed against the slowest
/// replica's makespan, utilizations averaged per card, and the trace
/// re-tagged with each replica's [`DeviceId`].
fn merge_replicas(devices: usize, replicas: Vec<ServingReport>) -> ServingReport {
    let makespan_ms = replicas.iter().map(|r| r.makespan_ms).fold(0.0, f64::max);
    let span_ns = makespan_ms * 1e6;
    // Recover each replica's busy time from its own utilization x makespan.
    let busy = |f: fn(&ServingReport) -> f64| -> f64 {
        replicas.iter().map(|r| f(r) * r.makespan_ms * 1e6).sum()
    };
    let util = |f: fn(&ServingReport) -> f64| -> f64 {
        if span_ns > 0.0 {
            busy(f) / (span_ns * devices as f64)
        } else {
            0.0
        }
    };
    let mme_utilization = util(|r| r.mme_utilization);
    let tpc_utilization = util(|r| r.tpc_utilization);
    let dma_utilization = util(|r| r.dma_utilization);

    let mut completed: Vec<RequestOutcome> = Vec::new();
    let mut trace = Trace::new();
    let mut decode_steps = 0;
    let mut prefills = 0;
    let mut backpressure_stalls = 0;
    let mut max_queue_depth = 0;
    let mut kv_peak_bytes = 0;
    let mut kv_capacity_bytes = 0;
    let mut compiled_graphs = 0;
    for (d, r) in replicas.into_iter().enumerate() {
        completed.extend(r.completed);
        for ev in r.trace.events() {
            trace.push(ev.clone().on_device(DeviceId(d)));
        }
        decode_steps += r.decode_steps;
        prefills += r.prefills;
        backpressure_stalls += r.backpressure_stalls;
        max_queue_depth = max_queue_depth.max(r.max_queue_depth);
        kv_peak_bytes = r.kv_peak_bytes.max(kv_peak_bytes);
        kv_capacity_bytes = r.kv_capacity_bytes;
        compiled_graphs += r.compiled_graphs;
    }
    completed.sort_by_key(|o| o.id);
    let generated_tokens: usize = completed.iter().map(|o| o.output_len).sum();

    let ttft_ms = Percentiles::of(completed.iter().map(|o| o.ttft_ms));
    let tpot_ms = Percentiles::of(completed.iter().flat_map(|o| {
        o.token_times_ms
            .windows(2)
            .map(|w| w[1] - w[0])
            .collect::<Vec<_>>()
    }));
    let queue_ms = Percentiles::of(completed.iter().map(|o| o.queue_ms));

    ServingReport {
        completed,
        makespan_ms,
        ttft_ms,
        tpot_ms,
        queue_ms,
        goodput_tokens_per_s: if makespan_ms > 0.0 {
            generated_tokens as f64 / (makespan_ms / 1e3)
        } else {
            0.0
        },
        mme_utilization,
        tpc_utilization,
        dma_utilization,
        decode_steps,
        prefills,
        backpressure_stalls,
        max_queue_depth,
        kv_peak_bytes,
        kv_capacity_bytes,
        compiled_graphs,
        devices,
        trace,
    }
}

/// Append one trace event per busy engine for a phase, so the report's
/// timeline renders through the standard profiler tooling.
fn record_phase(trace: &mut Trace, name: &str, start_ms: f64, c: &crate::cost::PhaseCost) {
    let start_ns = start_ms * 1e6;
    for (engine, busy) in [
        (EngineId::Mme, c.mme_busy_ns),
        (EngineId::TpcCluster, c.tpc_busy_ns),
        (EngineId::Dma(0), c.dma_busy_ns),
        (EngineId::Nic, c.nic_busy_ns),
    ] {
        if busy > 0.0 {
            trace.push(TraceEvent::basic(name, "serving", engine, start_ns, busy));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ServingConfig {
        let mut model = LlmConfig::tiny(97);
        model.training = false;
        ServingConfig {
            model,
            traffic: TrafficConfig {
                arrival_rate_per_s: 50.0,
                num_requests: 30,
                prompt_range: (8, 64),
                output_range: (4, 16),
                zipf_s: 1.1,
                seed: 7,
            },
            max_batch: 4,
            ctx_bucket: 32,
            kv_dtype: DType::F32,
            hw: GaudiConfig::hls1(),
            opts: CompilerOptions::default(),
            devices: 1,
        }
    }

    #[test]
    fn completes_every_request_exactly_once() {
        let r = simulate(&tiny_config()).unwrap();
        assert_eq!(r.completed.len(), 30);
        for (i, o) in r.completed.iter().enumerate() {
            assert_eq!(o.id, i as u64);
            assert_eq!(o.token_times_ms.len(), o.output_len);
        }
    }

    #[test]
    fn identical_seeds_identical_reports() {
        let a = simulate(&tiny_config()).unwrap();
        let b = simulate(&tiny_config()).unwrap();
        assert_eq!(a.makespan_ms, b.makespan_ms);
        assert_eq!(a.ttft_ms.p99, b.ttft_ms.p99);
        assert_eq!(a.goodput_tokens_per_s, b.goodput_tokens_per_s);
        assert_eq!(a.decode_steps, b.decode_steps);
    }

    #[test]
    fn token_times_are_strictly_increasing() {
        let r = simulate(&tiny_config()).unwrap();
        for o in &r.completed {
            for w in o.token_times_ms.windows(2) {
                assert!(w[0] < w[1], "token order violated for request {}", o.id);
            }
            assert!(o.ttft_ms > 0.0);
            assert!(o.finish_ms >= o.arrival_ms + o.ttft_ms);
        }
    }

    #[test]
    fn kv_peak_never_exceeds_capacity() {
        let r = simulate(&tiny_config()).unwrap();
        assert!(r.kv_peak_bytes <= r.kv_capacity_bytes);
    }

    #[test]
    fn impossible_request_is_rejected_up_front() {
        let mut cfg = tiny_config();
        // Leave KV room for 50 tokens; the worst-case request needs 64+16.
        let weights = weight_bytes(&cfg.model, cfg.max_request_tokens(), cfg.kv_dtype);
        let per_tok = kv_bytes_per_token(&cfg.model, cfg.kv_dtype);
        cfg.hw.memory.hbm_capacity_bytes = weights + per_tok * 50;
        let err = simulate(&cfg);
        assert!(matches!(err, Err(ServingError::RequestTooLarge { .. })));
    }

    #[test]
    fn tighter_memory_causes_backpressure_not_overflow() {
        let mut cfg = tiny_config();
        // Narrow the length ranges so the worst-case request (24 tokens)
        // fits, but two typical requests already crowd a 30-token device.
        cfg.traffic.prompt_range = (8, 16);
        cfg.traffic.output_range = (4, 8);
        let weights = weight_bytes(&cfg.model, cfg.max_request_tokens(), cfg.kv_dtype);
        let per_tok = kv_bytes_per_token(&cfg.model, cfg.kv_dtype);
        cfg.hw.memory.hbm_capacity_bytes = weights + per_tok * 30;
        let r = simulate(&cfg).unwrap();
        assert_eq!(r.completed.len(), 30, "backpressure must not drop requests");
        assert!(r.backpressure_stalls > 0, "expected KV admission stalls");
        assert!(r.kv_peak_bytes <= r.kv_capacity_bytes);
    }

    #[test]
    fn replicas_complete_everything_and_tag_the_trace() {
        let mut cfg = tiny_config();
        cfg.devices = 2;
        let r = simulate(&cfg).unwrap();
        assert_eq!(r.completed.len(), 30, "replicas must not drop requests");
        assert_eq!(r.devices, 2);
        assert_eq!(r.trace.devices().len(), 2);
        for (i, o) in r.completed.iter().enumerate() {
            assert_eq!(o.id, i as u64);
        }
        // A two-replica box should not serve the stream slower.
        let single = simulate(&tiny_config()).unwrap();
        assert!(r.makespan_ms <= single.makespan_ms * 1.01);
    }

    #[test]
    fn larger_batch_does_not_hurt_goodput() {
        let mut small = tiny_config();
        small.max_batch = 1;
        let mut big = tiny_config();
        big.max_batch = 8;
        let rs = simulate(&small).unwrap();
        let rb = simulate(&big).unwrap();
        assert!(rb.goodput_tokens_per_s >= rs.goodput_tokens_per_s * 0.99);
        assert!(rb.makespan_ms <= rs.makespan_ms * 1.01);
    }
}
