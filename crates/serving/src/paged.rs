//! Block-granular (paged) KV-cache allocation.
//!
//! The contiguous accountant in [`kv`](crate::kv) reserves a request's
//! worst-case `prompt + output` footprint at admission, so every token the
//! request has not generated yet is HBM nobody else can use. Paged
//! allocation (the vLLM design, picked up by the HPU serving stack's
//! bucketed block tables) instead carves the KV region into fixed-size
//! blocks: a request is admitted on the blocks its *current* context
//! needs and takes one more block only when decode actually crosses a
//! block boundary. The reclaimed headroom admits more concurrent
//! sequences from the same device; the price is per-chain rounding waste
//! (the tail of the last block) and the possibility that the pool runs
//! dry mid-decode, which the engine resolves by deterministically
//! preempting the newest sequence.

use crate::error::ServingError;
use crate::kv::KvAdmission;
use gaudi_hw::config::MemoryConfig;
use gaudi_hw::memory::OutOfMemory;
use std::collections::HashMap;

/// Fixed-size block allocator over the KV region of one device.
///
/// Blocks are identified by dense indices `0..capacity`. The free list is
/// LIFO, so allocation order is deterministic: a fresh pool hands out
/// `0, 1, 2, …` and re-uses the most recently freed block first (warm
/// blocks, like a real allocator chasing cache locality).
///
/// Invariant (checked by the conservation property test):
/// `free_blocks() + allocated_blocks() == capacity_blocks()` at all times.
#[derive(Debug, Clone)]
pub struct BlockPool {
    /// Free block indices; `pop` yields the next allocation.
    free: Vec<u32>,
    capacity: u32,
}

impl BlockPool {
    /// Pool over `capacity_blocks` blocks, all initially free.
    pub fn new(capacity_blocks: u32) -> Self {
        // Reverse order so LIFO pop hands out 0, 1, 2, … on a fresh pool.
        BlockPool {
            free: (0..capacity_blocks).rev().collect(),
            capacity: capacity_blocks,
        }
    }

    /// Take one block, or `None` when the pool is dry.
    pub fn alloc(&mut self) -> Option<u32> {
        self.free.pop()
    }

    /// Return a block to the pool. The caller owns the handed-out index;
    /// returning a foreign or doubly-freed index is a logic error (checked
    /// in debug builds).
    pub fn dealloc(&mut self, block: u32) {
        debug_assert!(block < self.capacity, "freed block {block} out of range");
        debug_assert!(!self.free.contains(&block), "double free of block {block}");
        self.free.push(block);
    }

    /// Blocks currently free.
    pub fn free_blocks(&self) -> usize {
        self.free.len()
    }

    /// Blocks currently handed out.
    pub fn allocated_blocks(&self) -> usize {
        self.capacity as usize - self.free.len()
    }

    /// Total blocks in the pool.
    pub fn capacity_blocks(&self) -> usize {
        self.capacity as usize
    }
}

/// One request's block chain: the ordered blocks backing its context plus
/// the live token count (which the last block only partially fills).
#[derive(Debug, Clone)]
struct Chain {
    blocks: Vec<u32>,
    tokens: usize,
}

/// Paged [`KvAdmission`]: per-request block chains over a [`BlockPool`],
/// with weights resident outside the pool.
#[derive(Debug)]
pub struct PagedKv {
    pool: BlockPool,
    chains: HashMap<u64, Chain>,
    block_tokens: usize,
    block_bytes: u64,
    weight_bytes: u64,
    capacity_bytes: u64,
    /// Live context tokens summed over all chains.
    tokens_in_use: usize,
    peak_bytes: u64,
    /// Snapshot taken whenever `peak_bytes` advances.
    tokens_at_peak: usize,
    blocks_at_peak: usize,
}

impl PagedKv {
    /// Carve the HBM left after `weight_bytes` of resident parameters into
    /// `block_tokens`-sized KV blocks. Fails if the weights alone overflow.
    pub fn new(
        mem: &MemoryConfig,
        weight_bytes: u64,
        bytes_per_token: u64,
        block_tokens: usize,
    ) -> Result<Self, OutOfMemory> {
        assert!(bytes_per_token > 0, "KV rows cannot be zero-sized");
        assert!(
            block_tokens > 0,
            "paged KV blocks must hold at least 1 token"
        );
        let capacity_bytes = mem.hbm_capacity_bytes;
        if weight_bytes > capacity_bytes {
            return Err(OutOfMemory::new(weight_bytes, capacity_bytes));
        }
        let block_bytes = block_tokens as u64 * bytes_per_token;
        let capacity_blocks = ((capacity_bytes - weight_bytes) / block_bytes).min(u32::MAX as u64);
        Ok(PagedKv {
            pool: BlockPool::new(capacity_blocks as u32),
            chains: HashMap::new(),
            block_tokens,
            block_bytes,
            weight_bytes,
            capacity_bytes,
            tokens_in_use: 0,
            peak_bytes: weight_bytes,
            tokens_at_peak: 0,
            blocks_at_peak: 0,
        })
    }

    /// Growth headroom held back per live chain at admission, tokens
    /// (capped at one block for coarse block sizes).
    const WATERMARK_TOKENS: usize = 8;

    /// Blocks needed to hold `tokens` context tokens.
    fn blocks_for(&self, tokens: usize) -> usize {
        tokens.div_ceil(self.block_tokens)
    }

    fn note_peak(&mut self) {
        let now = self.allocated();
        if now > self.peak_bytes {
            self.peak_bytes = now;
            self.tokens_at_peak = self.tokens_in_use;
            self.blocks_at_peak = self.pool.allocated_blocks();
        }
    }

    /// The underlying pool (read-only), for reporting.
    pub fn pool(&self) -> &BlockPool {
        &self.pool
    }

    /// Tokens per block.
    pub fn block_tokens(&self) -> usize {
        self.block_tokens
    }
}

impl KvAdmission for PagedKv {
    fn try_admit(
        &mut self,
        id: u64,
        prompt_len: usize,
        _output_len: usize,
    ) -> Result<(), OutOfMemory> {
        // Prefill leaves `prompt + 1` live tokens (its last forward pass
        // emits the first output token). The rest of the output is NOT
        // reserved — that is the whole point. A watermark of a few tokens
        // of growth headroom per live chain is held back (vLLM holds a
        // free-block watermark for the same reason), so a saturating burst
        // cannot over-admit the pool into recompute-preemption thrash on
        // the very next decode steps.
        let tokens = prompt_len + 1;
        let need = self.blocks_for(tokens);
        let headroom_tokens = self.block_tokens.min(Self::WATERMARK_TOKENS);
        let watermark = (self.chains.len() * headroom_tokens).div_ceil(self.block_tokens);
        if need + watermark > self.pool.free_blocks() {
            // Report the caller's true request; the watermark is the
            // pool's own reserve and is surfaced separately so operators
            // can size pools from the error instead of chasing a phantom
            // oversized request.
            return Err(OutOfMemory {
                requested: need as u64 * self.block_bytes,
                available: self.pool.free_blocks() as u64 * self.block_bytes,
                held_back: watermark as u64 * self.block_bytes,
            });
        }
        let mut blocks = Vec::with_capacity(need);
        for _ in 0..need {
            blocks.push(self.pool.alloc().expect("free count was just checked"));
        }
        self.chains.insert(id, Chain { blocks, tokens });
        self.tokens_in_use += tokens;
        self.note_peak();
        Ok(())
    }

    fn grow(&mut self, id: u64) -> Result<(), OutOfMemory> {
        let block_bytes = self.block_bytes;
        let block_tokens = self.block_tokens;
        let free = self.pool.free_blocks();
        let Some(chain) = self.chains.get_mut(&id) else {
            // Unknown id: nothing to grow (mirrors ContiguousKv::grow).
            return Ok(());
        };
        let needs_block = chain.tokens + 1 > chain.blocks.len() * block_tokens;
        if needs_block && free == 0 {
            // Leave the chain unchanged; the scheduler will preempt.
            return Err(OutOfMemory::new(block_bytes, 0));
        }
        if needs_block {
            let b = self.pool.alloc().expect("free count was just checked");
            self.chains
                .get_mut(&id)
                .expect("chain existed above")
                .blocks
                .push(b);
        }
        let chain = self.chains.get_mut(&id).expect("chain existed above");
        chain.tokens += 1;
        self.tokens_in_use += 1;
        self.note_peak();
        Ok(())
    }

    fn release(&mut self, id: u64) -> Result<(), ServingError> {
        let chain = self.chains.remove(&id).ok_or_else(|| {
            ServingError::KvAccounting(format!("request {id} released without a block chain"))
        })?;
        self.tokens_in_use -= chain.tokens;
        // Free in reverse so the LIFO free list re-issues this chain's
        // blocks in their original order on the next allocation.
        for b in chain.blocks.into_iter().rev() {
            self.pool.dealloc(b);
        }
        Ok(())
    }

    fn allocated(&self) -> u64 {
        self.weight_bytes + self.pool.allocated_blocks() as u64 * self.block_bytes
    }

    fn peak(&self) -> u64 {
        self.peak_bytes
    }

    fn capacity(&self) -> u64 {
        self.capacity_bytes
    }

    fn max_admissible_tokens(&self) -> u64 {
        // `ceil(t / block_tokens) <= capacity_blocks` iff
        // `t <= capacity_blocks * block_tokens`, so the block-rounded
        // bound equals the token-granular one.
        self.pool.capacity_blocks() as u64 * self.block_tokens as u64
    }

    fn utilization_at_peak(&self) -> f64 {
        if self.blocks_at_peak == 0 {
            1.0
        } else {
            self.tokens_at_peak as f64 / (self.blocks_at_peak * self.block_tokens) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem(cap: u64) -> MemoryConfig {
        MemoryConfig {
            hbm_capacity_bytes: cap,
            ..MemoryConfig::default()
        }
    }

    // 1 KiB/token, 4-token blocks, 16 blocks of KV after 4 KiB of weights.
    fn small() -> PagedKv {
        PagedKv::new(&mem(4096 + 16 * 4096), 4096, 1024, 4).unwrap()
    }

    #[test]
    fn pool_hands_out_blocks_in_order_and_reuses_lifo() {
        let mut p = BlockPool::new(4);
        assert_eq!(p.alloc(), Some(0));
        assert_eq!(p.alloc(), Some(1));
        p.dealloc(0);
        assert_eq!(p.alloc(), Some(0), "most recently freed comes back first");
        assert_eq!(p.free_blocks() + p.allocated_blocks(), p.capacity_blocks());
    }

    #[test]
    fn admit_charges_current_footprint_not_worst_case() {
        let mut kv = small();
        // prompt 3 → 4 live tokens → 1 block, regardless of output_len.
        kv.try_admit(0, 3, 1000).unwrap();
        assert_eq!(kv.pool().allocated_blocks(), 1);
        // Contiguous admission could never have taken this request.
        assert!(3 + 1000 > kv.max_admissible_tokens() as usize);
    }

    #[test]
    fn grow_takes_a_block_only_at_the_boundary() {
        let mut kv = small();
        kv.try_admit(0, 2, 8).unwrap(); // 3 live tokens, 1 block
        assert_eq!(kv.pool().allocated_blocks(), 1);
        kv.grow(0).unwrap(); // 4 tokens — still fits block 0
        assert_eq!(kv.pool().allocated_blocks(), 1);
        kv.grow(0).unwrap(); // 5 tokens — crosses into block 1
        assert_eq!(kv.pool().allocated_blocks(), 2);
    }

    #[test]
    fn dry_pool_fails_growth_without_corrupting_the_chain() {
        // 3 blocks of 4 tokens (admission holds one back as watermark).
        let mut kv = PagedKv::new(&mem(3 * 4096), 0, 1024, 4).unwrap();
        kv.try_admit(0, 3, 64).unwrap(); // 4 tokens, block 0
        kv.try_admit(1, 3, 64).unwrap(); // 4 tokens, block 1
        kv.grow(0).unwrap(); // 5 tokens — takes the last block
        let err = kv.grow(1).unwrap_err();
        assert_eq!(err.available, 0);
        // Chain 1 is untouched: releasing both must return exactly 3 blocks.
        kv.release(0).unwrap();
        kv.release(1).unwrap();
        assert_eq!(kv.pool().free_blocks(), 3);
        assert_eq!(kv.allocated(), 0);
    }

    #[test]
    fn admission_holds_back_one_block_per_live_chain() {
        // 2 blocks of 4: admitting a second chain would leave no growth
        // headroom for the first, so the watermark rejects it.
        let mut kv = PagedKv::new(&mem(2 * 4096), 0, 1024, 4).unwrap();
        kv.try_admit(0, 3, 64).unwrap();
        assert!(kv.try_admit(1, 3, 64).is_err());
        // Once the first chain completes, the pool is all headroom again.
        kv.release(0).unwrap();
        kv.try_admit(1, 3, 64).unwrap();
        assert_eq!(kv.pool().allocated_blocks(), 1);
    }

    #[test]
    fn admission_oom_reports_true_request_and_watermark_separately() {
        // Regression: the error used to fold the growth watermark into
        // `requested`, making a 1-block ask look like a 2-block one.
        let mut kv = PagedKv::new(&mem(2 * 4096), 0, 1024, 4).unwrap();
        kv.try_admit(0, 3, 64).unwrap(); // 1 block live, 1 free
        let err = kv.try_admit(1, 3, 64).unwrap_err();
        assert_eq!(err.requested, 4096, "one block actually requested");
        assert_eq!(err.held_back, 4096, "one watermark block withheld");
        assert_eq!(err.available, 4096);
        let msg = err.to_string();
        assert!(msg.contains("held back"), "watermark surfaced: {msg}");
    }

    #[test]
    fn release_is_checked() {
        let mut kv = small();
        kv.try_admit(5, 3, 4).unwrap();
        kv.release(5).unwrap();
        assert!(matches!(kv.release(5), Err(ServingError::KvAccounting(_))));
        assert!(matches!(kv.release(99), Err(ServingError::KvAccounting(_))));
    }

    #[test]
    fn utilization_counts_last_block_rounding_only() {
        let mut kv = small();
        // 5 live tokens over 2 blocks of 4 → 5/8 at the peak.
        kv.try_admit(0, 4, 100).unwrap();
        assert!((kv.utilization_at_peak() - 5.0 / 8.0).abs() < 1e-12);
        // Growing into the slack raises utilization at the next peak…
        kv.grow(0).unwrap(); // 6/8, no new block: same bytes, old snapshot
        kv.grow(0).unwrap(); // 7/8
        kv.grow(0).unwrap(); // 8/8
        kv.grow(0).unwrap(); // 9 tokens, 3rd block → new byte peak, 9/12
        assert!((kv.utilization_at_peak() - 9.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn max_admissible_matches_token_granular_bound() {
        let kv = small();
        assert_eq!(kv.max_admissible_tokens(), 64);
        // A 64-token request takes exactly all 16 blocks.
        let mut kv = small();
        kv.try_admit(0, 63, 1).unwrap();
        assert_eq!(kv.pool().free_blocks(), 0);
        // 65 tokens can never fit.
        let mut kv = small();
        assert!(kv.try_admit(0, 64, 1).is_err());
    }

    #[test]
    fn weights_that_overflow_fail_construction() {
        assert!(PagedKv::new(&mem(1 << 20), 2 << 20, 1, 16).is_err());
    }
}
