//! KV-cache HBM accounting with admission backpressure.
//!
//! Decode-phase attention reads every previously-cached key/value row, so a
//! request's KV footprint is `2 · layers · heads · head_dim · tokens`
//! elements and lives until the request completes. The accountant charges
//! the modelled 32 GB device (§3.4) with resident model weights plus a
//! *worst-case* reservation (`prompt + output` tokens) per admitted
//! request — reserving up front is what makes the capacity invariant
//! airtight: a request that is admitted can always finish, and a request
//! that would overflow is queued (backpressure) instead of OOM-ing
//! mid-generation.

use gaudi_hw::config::MemoryConfig;
use gaudi_hw::memory::{HbmTracker, OutOfMemory};
use gaudi_models::LlmConfig;
use gaudi_tensor::DType;

/// Bytes of KV cache per token for a model (keys + values, all layers).
pub fn kv_bytes_per_token(model: &LlmConfig, dtype: DType) -> u64 {
    2 * model.layers as u64 * model.model_dim() as u64 * dtype.size_of() as u64
}

/// Bytes of resident model weights (embeddings, per-layer projections and
/// norms, LM head tied to the token embedding).
pub fn weight_bytes(model: &LlmConfig, max_positions: usize, dtype: DType) -> u64 {
    let d = model.model_dim() as u64;
    let d_ff = d * model.ffn_mult as u64;
    let embed = model.vocab as u64 * d + max_positions as u64 * d;
    // q/k/v/out projections + biases, two layernorms, two FFN projections.
    let per_layer = 4 * (d * d + d) + 2 * 2 * d + (d * d_ff + d_ff) + (d_ff * d + d);
    (embed + model.layers as u64 * per_layer + 2 * d) * dtype.size_of() as u64
}

/// Tracks KV-cache reservations against device HBM.
#[derive(Debug, Clone)]
pub struct KvAccountant {
    tracker: HbmTracker,
    bytes_per_token: u64,
    weight_bytes: u64,
}

impl KvAccountant {
    /// Accountant for a device, with `weight_bytes` of model parameters
    /// made resident up front. Fails if the weights alone overflow HBM.
    pub fn new(
        mem: &MemoryConfig,
        weight_bytes: u64,
        bytes_per_token: u64,
    ) -> Result<Self, OutOfMemory> {
        assert!(bytes_per_token > 0, "KV rows cannot be zero-sized");
        let mut tracker = HbmTracker::new(mem);
        tracker.allocate(weight_bytes)?;
        Ok(KvAccountant {
            tracker,
            bytes_per_token,
            weight_bytes,
        })
    }

    /// Reserve the full KV footprint of a request (`tokens` = prompt +
    /// output). Fails — leaving the accountant unchanged — when the
    /// reservation would exceed device capacity; the scheduler turns that
    /// into admission backpressure.
    pub fn try_reserve(&mut self, tokens: usize) -> Result<(), OutOfMemory> {
        self.tracker.allocate(tokens as u64 * self.bytes_per_token)
    }

    /// Release a completed request's reservation.
    pub fn release(&mut self, tokens: usize) {
        self.tracker.free(tokens as u64 * self.bytes_per_token);
    }

    /// Bytes currently reserved (weights + live KV).
    pub fn allocated(&self) -> u64 {
        self.tracker.allocated()
    }

    /// High-water mark in bytes.
    pub fn peak(&self) -> u64 {
        self.tracker.peak()
    }

    /// Device capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.tracker.capacity()
    }

    /// KV bytes per cached token.
    pub fn bytes_per_token(&self) -> u64 {
        self.bytes_per_token
    }

    /// Largest request (in total tokens) this device can ever admit.
    pub fn max_admissible_tokens(&self) -> u64 {
        (self.capacity() - self.weight_bytes) / self.bytes_per_token
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem(cap: u64) -> MemoryConfig {
        MemoryConfig {
            hbm_capacity_bytes: cap,
            ..MemoryConfig::default()
        }
    }

    #[test]
    fn paper_model_kv_row_size() {
        // 2 layers * 512 model dim * 2 (K and V) * 4 bytes = 8 KiB/token.
        let m = LlmConfig::paper_section_3_4(50257);
        assert_eq!(kv_bytes_per_token(&m, DType::F32), 8192);
    }

    #[test]
    fn reserve_release_roundtrip() {
        let mut acc = KvAccountant::new(&mem(1 << 20), 1 << 16, 256).unwrap();
        let before = acc.allocated();
        acc.try_reserve(100).unwrap();
        assert_eq!(acc.allocated(), before + 100 * 256);
        acc.release(100);
        assert_eq!(acc.allocated(), before);
        assert!(acc.peak() >= before + 100 * 256);
    }

    #[test]
    fn overflow_is_rejected_not_exceeded() {
        let mut acc = KvAccountant::new(&mem(1 << 20), 0, 1024).unwrap();
        // Capacity is 1024 tokens worth; reserve most of it.
        acc.try_reserve(1000).unwrap();
        let err = acc.try_reserve(100).unwrap_err();
        assert_eq!(err.available, 24 * 1024);
        // Failed reservation must not change accounting.
        assert_eq!(acc.allocated(), 1000 * 1024);
        assert!(acc.allocated() <= acc.capacity());
    }

    #[test]
    fn weights_that_overflow_fail_construction() {
        assert!(KvAccountant::new(&mem(1 << 20), 2 << 20, 1).is_err());
    }
}
