//! KV-cache HBM accounting with admission backpressure.
//!
//! Decode-phase attention reads every previously-cached key/value row, so a
//! request's KV footprint is `2 · layers · heads · head_dim · tokens`
//! elements and lives until the request completes. How that footprint is
//! *reserved* is the [`KvAdmission`] strategy:
//!
//! * [`KvAdmissionConfig::Contiguous`] (the legacy accountant) charges a
//!   worst-case reservation — `prompt + output` tokens — at admission.
//!   Reserving up front makes the capacity invariant airtight (an admitted
//!   request can always finish), but every not-yet-generated output token
//!   is dead headroom while the request decodes.
//! * [`KvAdmissionConfig::Paged`] allocates fixed-size blocks from a
//!   [`BlockPool`](crate::paged::BlockPool) as the context actually grows
//!   (the vLLM design): admission needs only the prompt's blocks, so many
//!   more sequences fit the same HBM, at the price of block-rounding waste
//!   and the possibility of preempting the newest sequence when the pool
//!   runs dry mid-decode.
//!
//! Either way the model weights are resident up front and overflow turns
//! into queueing backpressure (or deterministic preemption) instead of a
//! mid-generation OOM.

use crate::error::ServingError;
use gaudi_hw::config::MemoryConfig;
use gaudi_hw::memory::{HbmTracker, OutOfMemory};
use gaudi_models::LlmConfig;
use gaudi_tensor::DType;
use std::collections::HashMap;

/// How much HBM admission charges for the activation/workspace memory of
/// the compiled phase graphs, on top of resident weights and KV cache.
///
/// The legacy budget ([`Off`](Self::Off), the default) reserves nothing —
/// the optimism the paper's §3.4 warns against, kept as the default so
/// existing reports stay bit-identical. [`Unplanned`](Self::Unplanned)
/// reserves the worst-case phase graph's *naive* footprint (every tensor
/// gets its own slot, no lifetime reuse); [`Planned`](Self::Planned)
/// reserves the static memory planner's packed arena instead, and the
/// difference — the arena's reclaimed headroom — flows straight into KV
/// capacity: more blocks in the paged pool, more concurrent sequences at
/// equal HBM.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ActivationBudget {
    /// No activation reserve (`weights + KV` only) — the legacy,
    /// bit-identical default.
    #[default]
    Off,
    /// Reserve the naive sum-of-tensors footprint of the worst-case phase.
    Unplanned,
    /// Reserve the memory planner's arena extent for the worst-case phase.
    Planned,
}

impl ActivationBudget {
    /// Bytes this budget reserves, given the worst-case phase's planned
    /// (arena) and naive (sum-of-tensors) footprints.
    pub fn reserve_bytes(&self, planned_bytes: u64, naive_bytes: u64) -> u64 {
        match self {
            ActivationBudget::Off => 0,
            ActivationBudget::Unplanned => naive_bytes,
            ActivationBudget::Planned => planned_bytes,
        }
    }
}

/// Admission-strategy selection for [`ServingConfig`], and the home of the
/// model-footprint arithmetic both strategies share.
///
/// [`ServingConfig`]: crate::ServingConfig
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum KvAdmissionConfig {
    /// Worst-case contiguous reservation (`prompt + output` tokens charged
    /// at admission) — the legacy accountant.
    #[default]
    Contiguous,
    /// Block-granular paged allocation: sequences are admitted on their
    /// *current* footprint and grow block by block, so idle worst-case
    /// headroom becomes admissible concurrency.
    Paged {
        /// Tokens per KV block. Smaller blocks waste less of the last
        /// block per sequence but make the free list churn more.
        block_tokens: usize,
    },
}

impl KvAdmissionConfig {
    /// Paged admission with a 16-token block — the vLLM default size.
    pub fn paged() -> Self {
        KvAdmissionConfig::Paged { block_tokens: 16 }
    }

    /// Bytes of KV cache per token for a model (keys + values, all
    /// layers). Identical under both strategies; paged admission rounds
    /// *reservations* to blocks, not the rows themselves.
    pub fn kv_bytes_per_token(&self, model: &LlmConfig, dtype: DType) -> u64 {
        2 * model.layers as u64 * model.model_dim() as u64 * dtype.size_of() as u64
    }

    /// Bytes of resident model weights (embeddings, per-layer projections
    /// and norms, LM head tied to the token embedding).
    pub fn weight_bytes(&self, model: &LlmConfig, max_positions: usize, dtype: DType) -> u64 {
        let d = model.model_dim() as u64;
        let d_ff = d * model.ffn_mult as u64;
        let embed = model.vocab as u64 * d + max_positions as u64 * d;
        // q/k/v/out projections + biases, two layernorms, two FFN projections.
        let per_layer = 4 * (d * d + d) + 2 * 2 * d + (d * d_ff + d_ff) + (d_ff * d + d);
        (embed + model.layers as u64 * per_layer + 2 * d) * dtype.size_of() as u64
    }

    /// Reject malformed strategies before a simulation starts.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            KvAdmissionConfig::Contiguous => Ok(()),
            KvAdmissionConfig::Paged { block_tokens: 0 } => {
                Err("paged KV blocks must hold at least 1 token".into())
            }
            KvAdmissionConfig::Paged { .. } => Ok(()),
        }
    }

    /// Build the admission state for one replica: weights plus
    /// `activation_bytes` of planned phase workspace resident up front,
    /// strategy-specific KV bookkeeping empty. `activation_bytes` is what
    /// the configured [`ActivationBudget`] reserved — `0` under the legacy
    /// `Off` budget, where admission is `weights + KV` exactly as before.
    /// Fails if the resident footprint alone overflows HBM.
    pub fn build(
        &self,
        mem: &MemoryConfig,
        model: &LlmConfig,
        max_positions: usize,
        dtype: DType,
        activation_bytes: u64,
    ) -> Result<Box<dyn KvAdmission>, OutOfMemory> {
        let resident = self.weight_bytes(model, max_positions, dtype) + activation_bytes;
        let per_token = self.kv_bytes_per_token(model, dtype);
        match *self {
            KvAdmissionConfig::Contiguous => Ok(Box::new(ContiguousKv::new(KvAccountant::new(
                mem, resident, per_token,
            )?))),
            KvAdmissionConfig::Paged { block_tokens } => Ok(Box::new(crate::paged::PagedKv::new(
                mem,
                resident,
                per_token,
                block_tokens,
            )?)),
        }
    }
}

/// Per-replica KV admission bookkeeping: what [`ServingConfig`]'s strategy
/// selection dispatches to. One value per replica; requests are identified
/// by their id.
///
/// The lifecycle per request is `try_admit` → `grow` once per decode step
/// → `release` exactly once (completion, cancellation, preemption, or
/// halt). `release` is *checked*: releasing an id that holds nothing is a
/// [`ServingError::KvAccounting`] bug report, never silent corruption.
///
/// [`ServingConfig`]: crate::ServingConfig
pub trait KvAdmission: std::fmt::Debug + Send {
    /// Reserve the admission footprint of request `id` (`prompt_len + 1`
    /// live tokens; contiguous admission additionally pins the whole
    /// worst-case `prompt + output`). Fails — leaving the state
    /// unchanged — when the reservation does not fit; the scheduler turns
    /// that into backpressure.
    fn try_admit(
        &mut self,
        id: u64,
        prompt_len: usize,
        output_len: usize,
    ) -> Result<(), OutOfMemory>;

    /// Extend request `id` by one decoded token. Never fails under
    /// contiguous admission (the worst case is pre-reserved); under paged
    /// admission a dry pool fails the growth and the scheduler preempts.
    fn grow(&mut self, id: u64) -> Result<(), OutOfMemory>;

    /// Release everything request `id` holds. Errors if `id` holds
    /// nothing — a double free or unknown id is a scheduler bug.
    fn release(&mut self, id: u64) -> Result<(), ServingError>;

    /// Bytes currently reserved (weights + KV).
    fn allocated(&self) -> u64;

    /// High-water mark in bytes.
    fn peak(&self) -> u64;

    /// Device capacity in bytes.
    fn capacity(&self) -> u64;

    /// Largest request (in total tokens) this device can ever admit.
    fn max_admissible_tokens(&self) -> u64;

    /// Fraction of the reserved KV bytes that held live tokens when the
    /// reservation peaked (`1.0` when nothing was ever reserved).
    /// Contiguous admission wastes the not-yet-generated output tail;
    /// paged admission wastes only the rounding of each chain's last
    /// block.
    fn utilization_at_peak(&self) -> f64;

    /// Re-admit request `id` at a checkpointed decode position: reserve
    /// its admission footprint and then grow it to `generated` live decode
    /// tokens, as if the chain had been decoded in place. All-or-nothing:
    /// if any growth step fails, the partial reservation is released and
    /// the state is as before the call — the scheduler turns the failure
    /// into backpressure exactly like a failed [`try_admit`].
    ///
    /// `generated` must be at least 1 (the chain was checkpointed after
    /// its prefill produced the first token) and below `output_len`.
    ///
    /// [`try_admit`]: KvAdmission::try_admit
    fn try_restore(
        &mut self,
        id: u64,
        prompt_len: usize,
        output_len: usize,
        generated: usize,
    ) -> Result<(), OutOfMemory> {
        debug_assert!((1..output_len.max(1)).contains(&generated));
        self.try_admit(id, prompt_len, output_len)?;
        // Admission leaves `prompt + 1` live tokens — the first generated
        // token — so the snapshot needs `generated - 1` growth steps.
        for _ in 1..generated {
            if let Err(oom) = self.grow(id) {
                self.release(id)
                    .expect("rolling back a reservation this call just made");
                return Err(oom);
            }
        }
        Ok(())
    }
}

/// Tracks KV-cache reservations against device HBM.
#[derive(Debug, Clone)]
pub struct KvAccountant {
    tracker: HbmTracker,
    bytes_per_token: u64,
    weight_bytes: u64,
}

impl KvAccountant {
    /// Accountant for a device, with `weight_bytes` of model parameters
    /// made resident up front. Fails if the weights alone overflow HBM.
    pub fn new(
        mem: &MemoryConfig,
        weight_bytes: u64,
        bytes_per_token: u64,
    ) -> Result<Self, OutOfMemory> {
        assert!(bytes_per_token > 0, "KV rows cannot be zero-sized");
        let mut tracker = HbmTracker::new(mem);
        tracker.allocate(weight_bytes)?;
        Ok(KvAccountant {
            tracker,
            bytes_per_token,
            weight_bytes,
        })
    }

    /// Reserve the full KV footprint of a request (`tokens` = prompt +
    /// output). Fails — leaving the accountant unchanged — when the
    /// reservation would exceed device capacity; the scheduler turns that
    /// into admission backpressure.
    pub fn try_reserve(&mut self, tokens: usize) -> Result<(), OutOfMemory> {
        self.tracker.allocate(tokens as u64 * self.bytes_per_token)
    }

    /// Release a completed request's reservation.
    ///
    /// Checked: releasing more tokens than are currently reserved is a
    /// [`ServingError::KvAccounting`] error, not a saturating free — a
    /// saturating free would silently eat into the resident-weight
    /// reservation and corrupt every later admission decision.
    pub fn release(&mut self, tokens: usize) -> Result<(), ServingError> {
        let bytes = tokens as u64 * self.bytes_per_token;
        let kv_reserved = self.tracker.allocated() - self.weight_bytes;
        if bytes > kv_reserved {
            return Err(ServingError::KvAccounting(format!(
                "released {tokens} tokens ({bytes} B) but only {kv_reserved} B of KV is reserved"
            )));
        }
        self.tracker.free(bytes);
        Ok(())
    }

    /// Bytes currently reserved (weights + live KV).
    pub fn allocated(&self) -> u64 {
        self.tracker.allocated()
    }

    /// High-water mark in bytes.
    pub fn peak(&self) -> u64 {
        self.tracker.peak()
    }

    /// Device capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.tracker.capacity()
    }

    /// KV bytes per cached token.
    pub fn bytes_per_token(&self) -> u64 {
        self.bytes_per_token
    }

    /// Largest request (in total tokens) this device can ever admit.
    pub fn max_admissible_tokens(&self) -> u64 {
        (self.capacity() - self.weight_bytes) / self.bytes_per_token
    }
}

/// The legacy worst-case strategy behind the [`KvAdmission`] trait: a
/// [`KvAccountant`] plus per-request bookkeeping of what was reserved and
/// how much of it is actually live, so the waste of up-front reservation
/// becomes measurable ([`utilization_at_peak`](KvAdmission::utilization_at_peak)).
#[derive(Debug)]
pub struct ContiguousKv {
    acct: KvAccountant,
    /// Worst-case tokens reserved per admitted request.
    reserved: HashMap<u64, usize>,
    /// Live context tokens per admitted request (prompt + generated).
    live: HashMap<u64, usize>,
    reserved_tokens: usize,
    live_tokens: usize,
    peak_bytes_seen: u64,
    live_at_peak: usize,
    reserved_at_peak: usize,
}

impl ContiguousKv {
    /// Wrap an accountant (weights already resident).
    pub fn new(acct: KvAccountant) -> Self {
        let peak = acct.allocated();
        ContiguousKv {
            acct,
            reserved: HashMap::new(),
            live: HashMap::new(),
            reserved_tokens: 0,
            live_tokens: 0,
            peak_bytes_seen: peak,
            live_at_peak: 0,
            reserved_at_peak: 0,
        }
    }

    fn note_peak(&mut self) {
        if self.acct.allocated() > self.peak_bytes_seen {
            self.peak_bytes_seen = self.acct.allocated();
            self.live_at_peak = self.live_tokens;
            self.reserved_at_peak = self.reserved_tokens;
        }
    }
}

impl KvAdmission for ContiguousKv {
    fn try_admit(
        &mut self,
        id: u64,
        prompt_len: usize,
        output_len: usize,
    ) -> Result<(), OutOfMemory> {
        let total = prompt_len + output_len;
        self.acct.try_reserve(total)?;
        self.reserved.insert(id, total);
        // Prefill leaves `prompt + 1` tokens live (its last forward pass
        // emits the first output token).
        self.live.insert(id, prompt_len + 1);
        self.reserved_tokens += total;
        self.live_tokens += prompt_len + 1;
        self.note_peak();
        Ok(())
    }

    fn grow(&mut self, id: u64) -> Result<(), OutOfMemory> {
        // The worst case is pre-reserved; growth just moves a token from
        // "reserved headroom" to "live".
        if let Some(live) = self.live.get_mut(&id) {
            *live += 1;
            self.live_tokens += 1;
            // Allocation did not change, but the live/reserved mix at the
            // standing peak did — only a *new* peak re-snapshots.
        }
        Ok(())
    }

    fn release(&mut self, id: u64) -> Result<(), ServingError> {
        let tokens = self.reserved.remove(&id).ok_or_else(|| {
            ServingError::KvAccounting(format!("request {id} released without a reservation"))
        })?;
        let live = self.live.remove(&id).unwrap_or(0);
        self.acct.release(tokens)?;
        self.reserved_tokens -= tokens;
        self.live_tokens -= live;
        Ok(())
    }

    fn allocated(&self) -> u64 {
        self.acct.allocated()
    }

    fn peak(&self) -> u64 {
        self.acct.peak()
    }

    fn capacity(&self) -> u64 {
        self.acct.capacity()
    }

    fn max_admissible_tokens(&self) -> u64 {
        self.acct.max_admissible_tokens()
    }

    fn utilization_at_peak(&self) -> f64 {
        if self.reserved_at_peak == 0 {
            1.0
        } else {
            self.live_at_peak as f64 / self.reserved_at_peak as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem(cap: u64) -> MemoryConfig {
        MemoryConfig {
            hbm_capacity_bytes: cap,
            ..MemoryConfig::default()
        }
    }

    #[test]
    fn paper_model_kv_row_size() {
        // 2 layers * 512 model dim * 2 (K and V) * 4 bytes = 8 KiB/token.
        let m = LlmConfig::paper_section_3_4(50257);
        assert_eq!(
            KvAdmissionConfig::Contiguous.kv_bytes_per_token(&m, DType::F32),
            8192
        );
        // The footprint arithmetic is strategy-independent.
        assert_eq!(
            KvAdmissionConfig::paged().kv_bytes_per_token(&m, DType::F32),
            8192
        );
        assert_eq!(
            KvAdmissionConfig::Contiguous.weight_bytes(&m, 1024, DType::F32),
            KvAdmissionConfig::paged().weight_bytes(&m, 1024, DType::F32),
        );
    }

    #[test]
    fn reserve_release_roundtrip() {
        let mut acc = KvAccountant::new(&mem(1 << 20), 1 << 16, 256).unwrap();
        let before = acc.allocated();
        acc.try_reserve(100).unwrap();
        assert_eq!(acc.allocated(), before + 100 * 256);
        acc.release(100).unwrap();
        assert_eq!(acc.allocated(), before);
        assert!(acc.peak() >= before + 100 * 256);
    }

    #[test]
    fn overflow_is_rejected_not_exceeded() {
        let mut acc = KvAccountant::new(&mem(1 << 20), 0, 1024).unwrap();
        // Capacity is 1024 tokens worth; reserve most of it.
        acc.try_reserve(1000).unwrap();
        let err = acc.try_reserve(100).unwrap_err();
        assert_eq!(err.available, 24 * 1024);
        // Failed reservation must not change accounting.
        assert_eq!(acc.allocated(), 1000 * 1024);
        assert!(acc.allocated() <= acc.capacity());
    }

    #[test]
    fn weights_that_overflow_fail_construction() {
        assert!(KvAccountant::new(&mem(1 << 20), 2 << 20, 1).is_err());
    }

    #[test]
    fn over_release_is_a_checked_error_not_weight_corruption() {
        // Regression: release used to saturate through HbmTracker::free,
        // silently freeing resident-weight bytes when over-released.
        let mut acc = KvAccountant::new(&mem(1 << 20), 1 << 16, 256).unwrap();
        acc.try_reserve(10).unwrap();
        let err = acc.release(11).unwrap_err();
        assert!(matches!(err, ServingError::KvAccounting(_)));
        // The failed release must not have touched the weights.
        assert_eq!(acc.allocated(), (1 << 16) + 10 * 256);
        acc.release(10).unwrap();
        assert_eq!(acc.allocated(), 1 << 16);
        assert!(acc.release(1).is_err(), "nothing left to release");
    }

    #[test]
    fn contiguous_admission_tracks_per_request_reservations() {
        let acc = KvAccountant::new(&mem(1 << 20), 0, 1024).unwrap();
        let mut kv = ContiguousKv::new(acc);
        kv.try_admit(7, 100, 50).unwrap();
        assert_eq!(kv.allocated(), 150 * 1024);
        // Double admit of another id, then release both by id.
        kv.try_admit(8, 10, 5).unwrap();
        assert_eq!(kv.allocated(), 165 * 1024);
        kv.release(7).unwrap();
        assert_eq!(kv.allocated(), 15 * 1024);
        assert!(matches!(kv.release(7), Err(ServingError::KvAccounting(_))));
        kv.release(8).unwrap();
        assert_eq!(kv.allocated(), 0);
    }

    #[test]
    fn contiguous_utilization_measures_worst_case_waste() {
        let acc = KvAccountant::new(&mem(1 << 20), 0, 1024).unwrap();
        let mut kv = ContiguousKv::new(acc);
        // 100 reserved, 11 live at the (only) peak: utilization is the
        // live fraction of the reservation.
        kv.try_admit(0, 10, 90).unwrap();
        let u = kv.utilization_at_peak();
        assert!((u - 11.0 / 100.0).abs() < 1e-12, "utilization {u}");
        // Growth without a new peak does not rewrite the snapshot…
        kv.grow(0).unwrap();
        assert_eq!(kv.utilization_at_peak(), u);
        // …but a new peak does.
        kv.try_admit(1, 10, 10).unwrap();
        assert!(kv.utilization_at_peak() > u);
    }

    #[test]
    fn try_restore_is_all_or_nothing() {
        let acc = KvAccountant::new(&mem(1 << 20), 0, 1024).unwrap();
        let mut kv = ContiguousKv::new(acc);
        // Restore at 5 generated tokens: prompt 100 + 5 live, 140 reserved.
        kv.try_restore(3, 100, 40, 5).unwrap();
        assert_eq!(kv.allocated(), 140 * 1024);
        kv.grow(3).unwrap();
        kv.release(3).unwrap();
        assert_eq!(kv.allocated(), 0);
        // A restore that cannot even admit leaves the state untouched.
        kv.try_admit(0, 900, 100).unwrap();
        let before = kv.allocated();
        assert!(kv.try_restore(4, 100, 40, 5).is_err());
        assert_eq!(kv.allocated(), before);
    }

    #[test]
    fn paged_restore_rolls_back_when_the_pool_runs_dry() {
        // Paged pool sized so admission fits but mid-restore growth does
        // not: the failed restore must release its partial reservation.
        let m = LlmConfig::paper_section_3_4(50257);
        let per_token = KvAdmissionConfig::paged().kv_bytes_per_token(&m, DType::F32);
        let cap = 40 * per_token;
        let mut kv = crate::paged::PagedKv::new(&mem(cap), 0, per_token, 16).unwrap();
        // One block-hungry resident chain leaves a single 16-token block.
        kv.try_admit(0, 20, 4).unwrap();
        let before = kv.allocated();
        // Restoring 100 prompt + 30 generated needs far more than a block.
        assert!(kv.try_restore(1, 100, 40, 30).is_err());
        assert_eq!(kv.allocated(), before, "partial restore must roll back");
        assert!(kv.peak() <= kv.capacity());
    }

    #[test]
    fn paged_config_validates_block_size() {
        assert!(KvAdmissionConfig::Paged { block_tokens: 0 }
            .validate()
            .is_err());
        assert!(KvAdmissionConfig::paged().validate().is_ok());
        assert!(KvAdmissionConfig::Contiguous.validate().is_ok());
    }
}
