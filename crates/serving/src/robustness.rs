//! Overload protection: admission bounds, SLO deadlines, and retry backoff.
//!
//! Without limits, the serving engine is infinitely patient: queues grow
//! without bound and every request eventually "succeeds", which makes an
//! overloaded system indistinguishable from a healthy one in every metric
//! except latency tails. A [`RobustnessConfig`] makes overload explicit:
//!
//! * **bounded admission queue** — arrivals that would push the queue past
//!   `max_queue_depth` requests or `max_queued_tokens` tokens are *shed*
//!   (terminated as [`Rejected`]) instead of queued;
//! * **SLO deadlines** — a request whose first token cannot be produced
//!   within `ttft_deadline_ms` of arrival, or whose completion would
//!   exceed `deadline_ms`, is terminated as [`TimedOut`]; its tokens count
//!   toward throughput but not goodput;
//! * **bounded retries** — a request orphaned by a replica failure is
//!   re-dispatched with deterministic exponential backoff plus seeded
//!   jitter, up to `max_retries` attempts, after which it terminates as
//!   [`Failed`].
//!
//! The default configuration is [`RobustnessConfig::unlimited`]: no queue
//! bound, no deadlines, unbounded instant retries — exactly the legacy
//! engine behavior, so fault-free runs and existing tests are unchanged.
//!
//! Everything here is a pure function of the configuration: the backoff
//! jitter is drawn from a [`SeededRng`] keyed by `(backoff_seed, request
//! id, attempt)`, so a retry schedule is reproducible bit-for-bit across
//! runs and across execution policies.
//!
//! [`Rejected`]: crate::report::DropKind::Rejected
//! [`TimedOut`]: crate::report::DropKind::TimedOut
//! [`Failed`]: crate::report::DropKind::Failed

use gaudi_tensor::SeededRng;

/// Periodic KV-cache checkpointing to host memory.
///
/// Every `interval_ms` of replica clock, a replica snapshots the KV chains
/// of its running requests to host DRAM over PCIe/DMA. The snapshot is
/// *priced*, not free: the copy occupies the DMA engine for
/// `bytes / dma_bytes_per_s` seconds of replica clock, so aggressive
/// intervals show up as goodput loss even with zero faults.
///
/// The payoff comes at restart: a request orphaned by a [`kill_for`] whose
/// chain was checkpointed restores the snapshot (again priced over DMA,
/// `(prompt + checkpointed) * kv_bytes_per_token / dma_bytes_per_s`) and
/// resumes decoding *past* the snapshot instead of re-running the full
/// prefill plus every decode step from scratch. Cold recipe-cache
/// recompiles after a restart are unaffected — checkpointing saves
/// recomputation, not recompilation.
///
/// [`kill_for`]: gaudi_hw::FaultPlan::kill_for
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointPolicy {
    /// Replica-clock interval between snapshots, ms (> 0).
    pub interval_ms: f64,
    /// Host-link bandwidth the snapshot and restore copies are priced
    /// against, bytes per second (> 0).
    pub dma_bytes_per_s: f64,
}

/// Overload-protection and recovery policy for a serving simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessConfig {
    /// Shed arrivals once this many requests are queued (`None`: no bound).
    pub max_queue_depth: Option<usize>,
    /// Shed arrivals once the queued requests' worst-case token footprints
    /// sum past this bound (`None`: no bound).
    pub max_queued_tokens: Option<usize>,
    /// Time-to-first-token SLO, ms from the request's original arrival
    /// (`None`: no TTFT deadline). Checked while queued and again at
    /// admission with the prefill priced but not yet run, so a request
    /// that cannot meet the SLO never wastes engine time.
    pub ttft_deadline_ms: Option<f64>,
    /// End-to-end latency SLO, ms from arrival (`None`: no deadline).
    pub deadline_ms: Option<f64>,
    /// Failed scheduling attempts tolerated before a request terminates as
    /// `Failed`. `u32::MAX` (the default) retries forever.
    pub max_retries: u32,
    /// Base of the exponential backoff: retry `r` waits
    /// `backoff_base_ms * 2^(r-1)` ms (before jitter). `0.0` re-queues
    /// instantly, reproducing the legacy requeue-at-failure-time behavior.
    pub backoff_base_ms: f64,
    /// Jitter fraction in `[0, 1]`: each delay is stretched by a
    /// deterministic uniform factor in `[1, 1 + backoff_jitter)`.
    pub backoff_jitter: f64,
    /// Seed for the jitter stream (mixed with request id and attempt).
    pub backoff_seed: u64,
    /// Demand that every offered request completes: a run in which this
    /// policy shed, expired, or failed any request is treated as an
    /// overload error by the session facade (`GaudiSession::serve`)
    /// instead of a report with drops. The engine itself still records
    /// the drops; the flag only changes how the run is surfaced.
    pub require_completion: bool,
    /// Periodic KV-cache checkpointing to host (`None`: orphaned requests
    /// recompute from scratch on retry, the legacy behavior).
    pub checkpoint: Option<CheckpointPolicy>,
}

impl Default for RobustnessConfig {
    fn default() -> Self {
        RobustnessConfig::unlimited()
    }
}

impl RobustnessConfig {
    /// No queue bounds, no deadlines, unbounded instant retries — the
    /// legacy engine behavior in which every request eventually completes.
    pub fn unlimited() -> Self {
        RobustnessConfig {
            max_queue_depth: None,
            max_queued_tokens: None,
            ttft_deadline_ms: None,
            deadline_ms: None,
            max_retries: u32::MAX,
            backoff_base_ms: 0.0,
            backoff_jitter: 0.0,
            backoff_seed: 0,
            require_completion: false,
            checkpoint: None,
        }
    }

    /// Whether this configuration can ever shed, expire, or fail a request.
    pub fn is_unlimited(&self) -> bool {
        self.max_queue_depth.is_none()
            && self.max_queued_tokens.is_none()
            && self.ttft_deadline_ms.is_none()
            && self.deadline_ms.is_none()
            && self.max_retries == u32::MAX
    }

    /// Demand that every offered request completes (see
    /// [`require_completion`](Self::require_completion)).
    pub fn guaranteed(mut self) -> Self {
        self.require_completion = true;
        self
    }

    /// Bound the admission queue to `depth` waiting requests.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.max_queue_depth = Some(depth);
        self
    }

    /// Bound the admission queue to `tokens` queued worst-case tokens.
    pub fn queued_tokens(mut self, tokens: usize) -> Self {
        self.max_queued_tokens = Some(tokens);
        self
    }

    /// Set the time-to-first-token SLO, ms from arrival.
    pub fn ttft_deadline(mut self, ms: f64) -> Self {
        self.ttft_deadline_ms = Some(ms);
        self
    }

    /// Set the end-to-end latency SLO, ms from arrival.
    pub fn deadline(mut self, ms: f64) -> Self {
        self.deadline_ms = Some(ms);
        self
    }

    /// Tolerate at most `n` failed scheduling attempts per request.
    pub fn retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// Checkpoint running KV chains to host every `interval_ms`, pricing
    /// the copies against `dma_bytes_per_s` (see [`CheckpointPolicy`]).
    pub fn checkpoint(mut self, interval_ms: f64, dma_bytes_per_s: f64) -> Self {
        self.checkpoint = Some(CheckpointPolicy {
            interval_ms,
            dma_bytes_per_s,
        });
        self
    }

    /// Disable KV checkpointing (the default).
    pub fn no_checkpoint(mut self) -> Self {
        self.checkpoint = None;
        self
    }

    /// Configure exponential backoff: retry `r` waits
    /// `base_ms * 2^(r-1) * u` where `u` is a deterministic uniform draw in
    /// `[1, 1 + jitter)` keyed by `(seed, request id, r)`.
    pub fn backoff(mut self, base_ms: f64, jitter: f64, seed: u64) -> Self {
        self.backoff_base_ms = base_ms;
        self.backoff_jitter = jitter;
        self.backoff_seed = seed;
        self
    }

    /// Delay before retry `attempt` (1-based) of request `id`, ms.
    ///
    /// Pure function of `(self, id, attempt)`: exponential in the attempt
    /// number, stretched by seeded jitter. Zero when `backoff_base_ms` is
    /// zero — instant requeue, the legacy behavior.
    pub fn backoff_delay_ms(&self, id: u64, attempt: u32) -> f64 {
        if self.backoff_base_ms <= 0.0 || attempt == 0 {
            return 0.0;
        }
        // Cap the exponent: past 2^40 the delay is already astronomically
        // beyond any simulation horizon, and powi would overflow to inf.
        let exp = (attempt - 1).min(40);
        let base = self.backoff_base_ms * 2f64.powi(exp as i32);
        if self.backoff_jitter <= 0.0 {
            return base;
        }
        let mut rng = SeededRng::new(
            self.backoff_seed
                ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ u64::from(attempt).wrapping_mul(0xBF58_476D_1CE4_E5B9),
        );
        base * (1.0 + self.backoff_jitter * f64::from(rng.uniform()))
    }

    /// Reject malformed policies (negative deadlines, jitter outside
    /// `[0, 1]`, zero-size queue bounds that could never admit anything).
    pub fn validate(&self) -> Result<(), String> {
        if let Some(d) = self.ttft_deadline_ms {
            if !d.is_finite() || d <= 0.0 {
                return Err(format!("ttft_deadline_ms must be finite and > 0, got {d}"));
            }
        }
        if let Some(d) = self.deadline_ms {
            if !d.is_finite() || d <= 0.0 {
                return Err(format!("deadline_ms must be finite and > 0, got {d}"));
            }
        }
        if let Some(0) = self.max_queue_depth {
            return Err("max_queue_depth of 0 would shed every arrival".into());
        }
        if let Some(0) = self.max_queued_tokens {
            return Err("max_queued_tokens of 0 would shed every arrival".into());
        }
        if !self.backoff_base_ms.is_finite() || self.backoff_base_ms < 0.0 {
            return Err(format!(
                "backoff_base_ms must be finite and >= 0, got {}",
                self.backoff_base_ms
            ));
        }
        if !self.backoff_jitter.is_finite() || !(0.0..=1.0).contains(&self.backoff_jitter) {
            return Err(format!(
                "backoff_jitter must be in [0, 1], got {}",
                self.backoff_jitter
            ));
        }
        if let Some(ckpt) = self.checkpoint {
            if !ckpt.interval_ms.is_finite() || ckpt.interval_ms <= 0.0 {
                return Err(format!(
                    "checkpoint interval_ms must be finite and > 0, got {}",
                    ckpt.interval_ms
                ));
            }
            if !ckpt.dma_bytes_per_s.is_finite() || ckpt.dma_bytes_per_s <= 0.0 {
                return Err(format!(
                    "checkpoint dma_bytes_per_s must be finite and > 0, got {}",
                    ckpt.dma_bytes_per_s
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_is_the_default_and_validates() {
        let cfg = RobustnessConfig::default();
        assert!(cfg.is_unlimited());
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.backoff_delay_ms(7, 1), 0.0, "no backoff by default");
    }

    #[test]
    fn builders_compose() {
        let cfg = RobustnessConfig::unlimited()
            .queue_depth(16)
            .queued_tokens(4096)
            .ttft_deadline(50.0)
            .deadline(500.0)
            .retries(3)
            .backoff(2.0, 0.5, 99)
            .guaranteed();
        assert!(!cfg.is_unlimited());
        assert_eq!(cfg.max_queue_depth, Some(16));
        assert_eq!(cfg.max_retries, 3);
        assert!(cfg.require_completion);
        assert!(cfg.validate().is_ok());
        assert!(
            !RobustnessConfig::default().require_completion,
            "completion guarantees are opt-in"
        );
    }

    #[test]
    fn backoff_is_exponential_and_deterministic() {
        let cfg = RobustnessConfig::unlimited().backoff(2.0, 0.0, 0);
        assert_eq!(cfg.backoff_delay_ms(1, 1), 2.0);
        assert_eq!(cfg.backoff_delay_ms(1, 2), 4.0);
        assert_eq!(cfg.backoff_delay_ms(1, 3), 8.0);
        // Without jitter the id does not matter.
        assert_eq!(cfg.backoff_delay_ms(42, 3), 8.0);

        let jittered = RobustnessConfig::unlimited().backoff(2.0, 0.5, 7);
        let d = jittered.backoff_delay_ms(3, 2);
        assert_eq!(d, jittered.backoff_delay_ms(3, 2), "same key, same delay");
        assert!((4.0..4.0 * 1.5).contains(&d), "jitter stays in [1, 1.5)x");
        // Different requests de-synchronize (thundering-herd protection).
        assert_ne!(d, jittered.backoff_delay_ms(4, 2));
        // Different seeds give different schedules.
        let other = RobustnessConfig::unlimited().backoff(2.0, 0.5, 8);
        assert_ne!(d, other.backoff_delay_ms(3, 2));
    }

    #[test]
    fn huge_attempt_counts_do_not_overflow() {
        let cfg = RobustnessConfig::unlimited().backoff(1.0, 0.0, 0);
        let d = cfg.backoff_delay_ms(0, u32::MAX);
        assert!(d.is_finite());
        assert_eq!(d, 2f64.powi(40));
    }

    #[test]
    fn validation_rejects_malformed_policies() {
        assert!(RobustnessConfig::unlimited()
            .ttft_deadline(-1.0)
            .validate()
            .is_err());
        assert!(RobustnessConfig::unlimited()
            .deadline(f64::NAN)
            .validate()
            .is_err());
        assert!(RobustnessConfig::unlimited()
            .queue_depth(0)
            .validate()
            .is_err());
        assert!(RobustnessConfig::unlimited()
            .queued_tokens(0)
            .validate()
            .is_err());
        assert!(RobustnessConfig::unlimited()
            .backoff(1.0, 1.5, 0)
            .validate()
            .is_err());
        assert!(RobustnessConfig::unlimited()
            .backoff(-1.0, 0.0, 0)
            .validate()
            .is_err());
    }

    #[test]
    fn checkpoint_policy_composes_and_validates() {
        let cfg = RobustnessConfig::unlimited().checkpoint(25.0, 64e9);
        assert_eq!(
            cfg.checkpoint,
            Some(CheckpointPolicy {
                interval_ms: 25.0,
                dma_bytes_per_s: 64e9,
            })
        );
        assert!(cfg.validate().is_ok());
        assert!(
            cfg.is_unlimited(),
            "checkpointing never sheds or fails requests"
        );
        assert_eq!(cfg.no_checkpoint().checkpoint, None);
        assert!(RobustnessConfig::unlimited()
            .checkpoint(0.0, 64e9)
            .validate()
            .is_err());
        assert!(RobustnessConfig::unlimited()
            .checkpoint(25.0, -1.0)
            .validate()
            .is_err());
        assert!(RobustnessConfig::unlimited()
            .checkpoint(f64::NAN, 64e9)
            .validate()
            .is_err());
    }
}
