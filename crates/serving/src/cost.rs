//! Phase cost model: prefill and decode steps priced by the graph compiler.
//!
//! Every phase is a real `gaudi-graph` compute graph compiled through the
//! existing `gaudi-compiler`/`gaudi-hw` cost models, so serving latencies
//! inherit the paper's calibration: prefill GEMMs amortize the MME's
//! launch overhead over a whole prompt, while decode's batched GEMVs sit
//! on the small-matmul launch-overhead floor of Table 2 — per-token cost
//! explodes and the busy-time balance tilts toward the MME.
//!
//! Compiling a graph per simulated step would dwarf the simulation itself,
//! so compiled costs are memoized — the serving analog of SynapseAI's
//! recipe cache, and the reason the scheduler quantizes context lengths to
//! buckets at all. Memoization is two-level:
//!
//! * each [`CostModel`] keeps a private L1 keyed by `(batch, bucketed
//!   length)` — a lock-free `HashMap` hit on every simulated phase;
//! * L1 misses fall through to the [`PlanCache`] of the model's
//!   [`CostContext`], keyed by the full
//!   `(model/hardware/options/bucket/partition fingerprint, phase, batch,
//!   bucketed length)` — shareable across data-parallel replicas and
//!   across sweep configuration points, so the compiler runs **once per
//!   distinct shape process-wide** instead of once per replica per point.
//!
//! The cache is safe to share between threads (the engine's replicas run
//! on a [`gaudi_exec::ExecPool`]); a compile happens under the cache lock,
//! so each shape is compiled exactly once no matter how many replicas race
//! to it, and every caller gets back the *same* [`Arc`]'d entry — which is
//! what the pointer-equality tests pin down.

use crate::error::ServingError;
use gaudi_compiler::{CompilerOptions, ExecutionPlan, GraphCompiler};
use gaudi_hw::{EngineId, GaudiConfig};
use gaudi_models::decode::{build_decode_step, build_prefill};
use gaudi_models::LlmConfig;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

/// Compiled cost of one phase execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseCost {
    /// Wall time of the phase on the simulated device, ms.
    pub ms: f64,
    /// MME busy time, ns.
    pub mme_busy_ns: f64,
    /// TPC-cluster busy time, ns.
    pub tpc_busy_ns: f64,
    /// DMA busy time, ns.
    pub dma_busy_ns: f64,
    /// NIC (collective) busy time, ns — nonzero only for multi-card plans.
    pub nic_busy_ns: f64,
}

impl PhaseCost {
    /// The same phase stretched by a slowdown `factor` (≥ 1): wall time
    /// and every engine-busy term scale together, so a throttled phase
    /// reports the same utilization doing the same work more slowly.
    pub fn scaled(self, factor: f64) -> Self {
        PhaseCost {
            ms: self.ms * factor,
            mme_busy_ns: self.mme_busy_ns * factor,
            tpc_busy_ns: self.tpc_busy_ns * factor,
            dma_busy_ns: self.dma_busy_ns * factor,
            nic_busy_ns: self.nic_busy_ns * factor,
        }
    }

    fn from_plan(plan: &ExecutionPlan) -> Self {
        let mut cost = PhaseCost {
            ms: plan.makespan_ns / 1e6,
            ..PhaseCost::default()
        };
        for step in &plan.steps {
            match step.engine {
                EngineId::Mme => cost.mme_busy_ns += step.dur_ns,
                EngineId::TpcCluster => cost.tpc_busy_ns += step.dur_ns,
                EngineId::Dma(_) => cost.dma_busy_ns += step.dur_ns,
                EngineId::Nic => cost.nic_busy_ns += step.dur_ns,
                EngineId::Host => {}
            }
        }
        cost
    }
}

/// Which phase graph a cache entry prices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Whole-prompt forward pass (emits the first output token).
    Prefill,
    /// One batched single-token decode step.
    Decode,
}

/// Full identity of a compiled phase plan. The `config` component is a
/// collision-free fingerprint of everything else that shapes the plan:
/// model configuration, hardware model, compiler options, context bucket,
/// and partition spec (serving phases are single-card, so the partition
/// component is currently the constant `1-card replica`; a future
/// tensor-parallel serving path would put its `PartitionSpec` here).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    config: Arc<str>,
    phase: Phase,
    batch: usize,
    /// Bucket-quantized prompt/context length, tokens.
    len: usize,
}

/// One memoized compilation: the plan's engine-busy summary plus its
/// static memory plan, shared by [`Arc`] so repeated shapes are
/// pointer-equal across replicas and sweep points.
#[derive(Debug, Clone, Copy)]
pub struct CompiledPhase {
    /// The priced phase.
    pub cost: PhaseCost,
    /// Packed activation-arena extent of the phase graph (the memory
    /// planner's locked-offset region) — what planned admission reserves.
    pub planned_activation_bytes: u64,
    /// Sum of every activation tensor in the phase graph: the no-reuse
    /// footprint a planner-less budget must reserve.
    pub naive_activation_bytes: u64,
}

/// Running totals of a [`PlanCache`]'s effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups answered without compiling.
    pub hits: u64,
    /// Lookups that compiled a new plan.
    pub misses: u64,
    /// Distinct plans currently cached (== `misses` unless cleared).
    pub entries: usize,
}

/// A keyed, thread-safe memo of compiled phase plans.
///
/// The compile closure runs under the cache lock, so every distinct
/// [`PlanKey`] is compiled exactly once even when many replicas race to
/// the same cold shape, and all of them receive the same `Arc` entry.
#[derive(Debug, Default)]
pub struct PlanCache {
    inner: Mutex<PlanCacheInner>,
}

#[derive(Debug, Default)]
struct PlanCacheInner {
    map: HashMap<PlanKey, Arc<CompiledPhase>>,
    hits: u64,
    misses: u64,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// Fetch `key`, compiling (and memoizing) it on first sight.
    pub fn get_or_compile(
        &self,
        key: PlanKey,
        compile: impl FnOnce() -> Result<CompiledPhase, ServingError>,
    ) -> Result<Arc<CompiledPhase>, ServingError> {
        let mut inner = self.inner.lock().expect("plan cache lock");
        if let Some(hit) = inner.map.get(&key).map(Arc::clone) {
            inner.hits += 1;
            return Ok(hit);
        }
        // Compile under the lock: a cold shape is compiled exactly once.
        let compiled = Arc::new(compile()?);
        inner.misses += 1;
        inner.map.insert(key, Arc::clone(&compiled));
        Ok(compiled)
    }

    /// Distinct plans cached.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("plan cache lock").map.len()
    }

    /// Whether nothing has been compiled yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss/entry counters, for benchmarking and reports.
    pub fn stats(&self) -> PlanCacheStats {
        let inner = self.inner.lock().expect("plan cache lock");
        PlanCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            entries: inner.map.len(),
        }
    }
}

/// Quantitative model of SynapseAI recipe-cache warmup.
///
/// The [`PlanCache`]/[`CostModel`] memos above keep the *simulation* fast;
/// this models what recipe compilation costs the *simulated device*. The
/// first time a replica runs a phase shape — keyed `(phase, batch bucket,
/// ctx bucket)` — the host compiles a recipe, and that latency lands on
/// the request stream. A fresh replica starts cold; a restarted replica
/// (the `kill_for` path) loses its recipe cache and pays warmup again.
///
/// `batch_bucket` is the knob the HPU serving stack exposes as batch-size
/// bucketing: coarser buckets mean fewer distinct recipes (fewer warmup
/// stalls) but every decode step is padded up to the bucket and priced at
/// the padded batch — the padding-waste vs. cache-miss tradeoff the
/// `kv_sweep` bin measures.
#[derive(Debug, Clone, PartialEq)]
pub struct RecipeConfig {
    /// Host-side recipe-compile latency charged on the first use of each
    /// shape per replica, ms. `0.0` disables warmup.
    pub compile_ms: f64,
    /// Decode batch sizes are rounded up to a multiple of this before
    /// keying (and pricing) the step. `1` = exact batches.
    pub batch_bucket: usize,
}

impl Default for RecipeConfig {
    /// Warmup off, exact batches — the legacy cost model, bit-identical
    /// to reports produced before the recipe model existed.
    fn default() -> Self {
        RecipeConfig {
            compile_ms: 0.0,
            batch_bucket: 1,
        }
    }
}

impl RecipeConfig {
    /// Round a batch size up to its bucket.
    pub fn bucketed_batch(&self, batch: usize) -> usize {
        batch.max(1).div_ceil(self.batch_bucket) * self.batch_bucket
    }

    /// Reject malformed warmup parameters before a simulation starts.
    pub fn validate(&self) -> Result<(), String> {
        if self.batch_bucket == 0 {
            return Err("recipe batch_bucket must be at least 1".into());
        }
        if !self.compile_ms.is_finite() || self.compile_ms < 0.0 {
            return Err(format!(
                "recipe compile_ms must be finite and non-negative, got {}",
                self.compile_ms
            ));
        }
        Ok(())
    }
}

/// Per-replica record of which recipe shapes have been compiled, charging
/// [`RecipeConfig::compile_ms`] on each first sight. Dropped (and
/// recreated cold) when a replica restarts.
#[derive(Debug, Clone, Default)]
pub struct RecipeCache {
    seen: HashSet<(Phase, usize, usize)>,
    compiles: u64,
    compile_ms: f64,
}

impl RecipeCache {
    /// A cold cache for one replica.
    pub fn new(cfg: &RecipeConfig) -> Self {
        RecipeCache {
            seen: HashSet::new(),
            compiles: 0,
            compile_ms: cfg.compile_ms,
        }
    }

    /// Peek: the warmup penalty running `(phase, batch, len)` *would*
    /// incur, without committing the compile. Used for SLO-feasibility
    /// checks that must not warm the cache for work that is then dropped.
    pub fn warmup_ms(&self, phase: Phase, batch: usize, len: usize) -> f64 {
        if self.seen.contains(&(phase, batch, len)) {
            0.0
        } else {
            self.compile_ms
        }
    }

    /// Commit: record the shape as compiled and return the warmup penalty
    /// this (first) use pays.
    pub fn charge(&mut self, phase: Phase, batch: usize, len: usize) -> f64 {
        if self.seen.insert((phase, batch, len)) {
            self.compiles += 1;
            self.compile_ms
        } else {
            0.0
        }
    }

    /// Recipes compiled so far on this replica.
    pub fn compiles(&self) -> u64 {
        self.compiles
    }
}

/// Everything needed to compile and price phases for one combination of
/// model, hardware, and compiler configuration: immutable and `Sync`,
/// built once per serving simulation (or once per sweep) and shared by
/// `Arc` across all replica [`CostModel`]s — replicas no longer clone the
/// model, hardware, and option structs apiece.
#[derive(Debug)]
pub struct CostContext {
    compiler: GraphCompiler,
    model: LlmConfig,
    /// Context/prompt lengths are rounded up to a multiple of this before
    /// graph construction, bounding the number of distinct compilations.
    bucket: usize,
    /// Collision-free identity of this configuration inside [`PlanCache`]
    /// keys (the cache may be shared across differently-configured sweep
    /// points).
    fingerprint: Arc<str>,
    cache: Arc<PlanCache>,
}

impl CostContext {
    /// Context for `model` on `hw` under compiler `opts`, memoizing into
    /// `cache` (pass one `Arc` to every point of a sweep to share plans
    /// across it).
    pub fn new(
        model: LlmConfig,
        hw: GaudiConfig,
        opts: CompilerOptions,
        bucket: usize,
        cache: Arc<PlanCache>,
    ) -> Self {
        assert!(bucket > 0, "bucket must be positive");
        let fingerprint: Arc<str> = format!(
            "model={model:?}|hw={hw:?}|opts={opts:?}|bucket={bucket}|partition=1-card replica"
        )
        .into();
        CostContext {
            compiler: GraphCompiler::new(hw, opts),
            model,
            bucket,
            fingerprint,
            cache,
        }
    }

    /// Round a length up to its bucket.
    pub fn bucketed(&self, len: usize) -> usize {
        len.max(1).div_ceil(self.bucket) * self.bucket
    }

    /// The model being priced.
    pub fn model(&self) -> &LlmConfig {
        &self.model
    }

    /// The shared plan cache this context memoizes into.
    pub fn cache(&self) -> &Arc<PlanCache> {
        &self.cache
    }

    /// Compile-or-fetch one phase at an already-bucketed length.
    fn compiled(
        &self,
        phase: Phase,
        batch: usize,
        len: usize,
    ) -> Result<Arc<CompiledPhase>, ServingError> {
        let key = PlanKey {
            config: Arc::clone(&self.fingerprint),
            phase,
            batch,
            len,
        };
        self.cache.get_or_compile(key, || {
            let graph = match phase {
                Phase::Prefill => build_prefill(&self.model, batch, len)?.0,
                Phase::Decode => build_decode_step(&self.model, batch, len)?.0,
            };
            // The memory planner runs on the *scheduled* graph (after
            // lowering/DCE/fusion), so the footprint matches what the
            // plan actually executes.
            let (_, plan, mem) = self.compiler.compile_with_memplan(&graph)?;
            Ok(CompiledPhase {
                cost: PhaseCost::from_plan(&plan),
                planned_activation_bytes: mem.arena_bytes,
                naive_activation_bytes: mem.naive_bytes,
            })
        })
    }
}

/// Caching cost model over one model + compiler configuration: a private
/// per-replica L1 over a shared [`CostContext`].
pub struct CostModel {
    ctx: Arc<CostContext>,
    prefill_l1: HashMap<(usize, usize), Arc<CompiledPhase>>,
    decode_l1: HashMap<(usize, usize), Arc<CompiledPhase>>,
}

impl CostModel {
    /// Cost model for `model` on `hw` under compiler `opts`, with a
    /// private plan cache. To share compiled plans across replicas or
    /// sweep points, build one [`CostContext`] and use
    /// [`with_context`](Self::with_context) instead.
    pub fn new(model: LlmConfig, hw: GaudiConfig, opts: CompilerOptions, bucket: usize) -> Self {
        Self::with_context(Arc::new(CostContext::new(
            model,
            hw,
            opts,
            bucket,
            Arc::new(PlanCache::new()),
        )))
    }

    /// A cost model over a shared compile context: cheap to construct (no
    /// config clones), and plan compilations are shared with every other
    /// model on the same context.
    pub fn with_context(ctx: Arc<CostContext>) -> Self {
        CostModel {
            ctx,
            prefill_l1: HashMap::new(),
            decode_l1: HashMap::new(),
        }
    }

    /// Round a length up to its bucket.
    pub fn bucketed(&self, len: usize) -> usize {
        self.ctx.bucketed(len)
    }

    /// Cost of prefilling a `[batch, prompt_len]` prompt batch.
    pub fn prefill(&mut self, batch: usize, prompt_len: usize) -> Result<PhaseCost, ServingError> {
        Ok(self.prefill_compiled(batch, prompt_len)?.cost)
    }

    /// The shared cache entry behind [`prefill`](Self::prefill) — the same
    /// `Arc` for every caller that asks for the same shape.
    pub fn prefill_compiled(
        &mut self,
        batch: usize,
        prompt_len: usize,
    ) -> Result<Arc<CompiledPhase>, ServingError> {
        let key = (batch, self.ctx.bucketed(prompt_len));
        if let Some(hit) = self.prefill_l1.get(&key) {
            return Ok(Arc::clone(hit));
        }
        let compiled = self.ctx.compiled(Phase::Prefill, key.0, key.1)?;
        self.prefill_l1.insert(key, Arc::clone(&compiled));
        Ok(compiled)
    }

    /// Cost of one decode step for `batch` requests whose longest live
    /// context is `max_ctx` tokens.
    pub fn decode(&mut self, batch: usize, max_ctx: usize) -> Result<PhaseCost, ServingError> {
        Ok(self.decode_compiled(batch, max_ctx)?.cost)
    }

    /// The shared cache entry behind [`decode`](Self::decode).
    pub fn decode_compiled(
        &mut self,
        batch: usize,
        max_ctx: usize,
    ) -> Result<Arc<CompiledPhase>, ServingError> {
        let key = (batch, self.ctx.bucketed(max_ctx));
        if let Some(hit) = self.decode_l1.get(&key) {
            return Ok(Arc::clone(hit));
        }
        let compiled = self.ctx.compiled(Phase::Decode, key.0, key.1)?;
        self.decode_l1.insert(key, Arc::clone(&compiled));
        Ok(compiled)
    }

    /// Number of distinct phase shapes this model has priced (the
    /// recipe-cache size as seen by one replica; a shared [`CostContext`]
    /// may have compiled some of them on another replica's behalf).
    pub fn compiled_graphs(&self) -> usize {
        self.prefill_l1.len() + self.decode_l1.len()
    }

    /// The model being served.
    pub fn model(&self) -> &LlmConfig {
        self.ctx.model()
    }

    /// The shared compile context.
    pub fn context(&self) -> &Arc<CostContext> {
        &self.ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> LlmConfig {
        LlmConfig::tiny(97)
    }

    fn cm() -> CostModel {
        CostModel::new(model(), GaudiConfig::hls1(), CompilerOptions::default(), 64)
    }

    #[test]
    fn bucketing_rounds_up() {
        let m = cm();
        assert_eq!(m.bucketed(1), 64);
        assert_eq!(m.bucketed(64), 64);
        assert_eq!(m.bucketed(65), 128);
    }

    #[test]
    fn caching_is_exact_per_bucket() {
        let mut m = cm();
        let a = m.decode(2, 10).unwrap();
        let b = m.decode(2, 60).unwrap(); // same bucket
        assert_eq!(m.compiled_graphs(), 1);
        assert_eq!(a.ms, b.ms);
        let c = m.decode(2, 70).unwrap(); // next bucket
        assert_eq!(m.compiled_graphs(), 2);
        assert!(c.ms >= a.ms);
    }

    #[test]
    fn shared_context_returns_pointer_equal_plans_across_replicas() {
        let cache = Arc::new(PlanCache::new());
        let ctx = Arc::new(CostContext::new(
            model(),
            GaudiConfig::hls1(),
            CompilerOptions::default(),
            64,
            Arc::clone(&cache),
        ));
        let mut replica_a = CostModel::with_context(Arc::clone(&ctx));
        let mut replica_b = CostModel::with_context(Arc::clone(&ctx));

        let a = replica_a.decode_compiled(2, 10).unwrap();
        let b = replica_b.decode_compiled(2, 60).unwrap(); // same bucket
        assert!(
            Arc::ptr_eq(&a, &b),
            "repeated shapes must share one compiled plan"
        );
        assert_eq!(
            cache.stats(),
            PlanCacheStats {
                hits: 1,
                misses: 1,
                entries: 1
            },
            "one compile, one hit"
        );

        // A different ctx bucket is a different plan…
        let c = replica_a.decode_compiled(2, 70).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        // …and so is a different phase at the same shape.
        let p = replica_a.prefill_compiled(2, 10).unwrap();
        assert!(!Arc::ptr_eq(&a, &p));
        assert_eq!(cache.len(), 3);

        // L1 answers repeats without touching the shared cache again.
        let before = cache.stats();
        let a2 = replica_a.decode_compiled(2, 10).unwrap();
        assert!(Arc::ptr_eq(&a, &a2));
        assert_eq!(cache.stats(), before);
    }

    #[test]
    fn distinct_bucket_configs_do_not_collide_in_a_shared_cache() {
        let cache = Arc::new(PlanCache::new());
        let coarse = Arc::new(CostContext::new(
            model(),
            GaudiConfig::hls1(),
            CompilerOptions::default(),
            64,
            Arc::clone(&cache),
        ));
        let fine = Arc::new(CostContext::new(
            model(),
            GaudiConfig::hls1(),
            CompilerOptions::default(),
            16,
            Arc::clone(&cache),
        ));
        let a = CostModel::with_context(coarse)
            .decode_compiled(1, 10)
            .unwrap();
        let b = CostModel::with_context(fine)
            .decode_compiled(1, 10)
            .unwrap();
        // Same nominal request, different bucketing: 64- vs 16-token graphs.
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 2);
        assert!(
            b.cost.ms <= a.cost.ms,
            "finer bucket prices a smaller graph"
        );
    }

    fn paper_cm() -> CostModel {
        let mut m = LlmConfig::paper_section_3_4(50257);
        m.training = false;
        CostModel::new(m, GaudiConfig::hls1(), CompilerOptions::default(), 64)
    }

    #[test]
    fn decode_per_token_cost_dwarfs_prefill_per_token_cost() {
        // Table 2's small-matmul column: a [1,d]×[d,d] GEMV pays nearly the
        // same MME launch overhead as a full [S,d]×[d,d] GEMM, so one
        // decode step costs about as much as prefilling hundreds of prompt
        // tokens. This asymmetry is the entire case for continuous
        // batching.
        let mut m = paper_cm();
        let prefill = m.prefill(1, 512).unwrap();
        let decode = m.decode(1, 512).unwrap();
        assert!(
            prefill.ms > decode.ms,
            "prefill of 512 tokens ({} ms) should outweigh one decode step ({} ms)",
            prefill.ms,
            decode.ms
        );
        let prefill_per_tok = prefill.ms / 512.0;
        assert!(
            decode.ms > 50.0 * prefill_per_tok,
            "decode per-token {} ms vs prefill per-token {} ms",
            decode.ms,
            prefill_per_tok
        );
    }

    #[test]
    fn decode_shifts_busy_balance_toward_the_mme() {
        // Per Table 2, small matrix products collapse MME efficiency: a
        // decode step's GEMVs keep the MME busy for its full launch
        // overhead while doing ~1/S of prefill's matmul flops, and its
        // softmax/norm TPC work shrinks from S×S scores to 1×S. The busy
        // balance therefore tilts toward the MME in decode.
        let mut m = paper_cm();
        let prefill = m.prefill(1, 512).unwrap();
        let decode = m.decode(1, 512).unwrap();
        let prefill_tpc_share = prefill.tpc_busy_ns / (prefill.tpc_busy_ns + prefill.mme_busy_ns);
        let decode_tpc_share = decode.tpc_busy_ns / (decode.tpc_busy_ns + decode.mme_busy_ns);
        assert!(
            decode_tpc_share < prefill_tpc_share,
            "decode TPC share {decode_tpc_share:.3} should fall below prefill {prefill_tpc_share:.3}"
        );
    }

    #[test]
    fn recipe_cache_charges_each_shape_once() {
        let cfg = RecipeConfig {
            compile_ms: 7.5,
            batch_bucket: 4,
        };
        let mut rc = RecipeCache::new(&cfg);
        // Peek does not warm the cache…
        assert_eq!(rc.warmup_ms(Phase::Decode, 4, 64), 7.5);
        assert_eq!(rc.warmup_ms(Phase::Decode, 4, 64), 7.5);
        assert_eq!(rc.compiles(), 0);
        // …charge does, exactly once per shape.
        assert_eq!(rc.charge(Phase::Decode, 4, 64), 7.5);
        assert_eq!(rc.charge(Phase::Decode, 4, 64), 0.0);
        assert_eq!(rc.warmup_ms(Phase::Decode, 4, 64), 0.0);
        // Phase, batch, and length are all part of the key.
        assert_eq!(rc.charge(Phase::Prefill, 4, 64), 7.5);
        assert_eq!(rc.charge(Phase::Decode, 8, 64), 7.5);
        assert_eq!(rc.charge(Phase::Decode, 4, 128), 7.5);
        assert_eq!(rc.compiles(), 4);
    }

    #[test]
    fn recipe_batch_bucketing_rounds_up() {
        let cfg = RecipeConfig {
            compile_ms: 1.0,
            batch_bucket: 4,
        };
        assert_eq!(cfg.bucketed_batch(1), 4);
        assert_eq!(cfg.bucketed_batch(4), 4);
        assert_eq!(cfg.bucketed_batch(5), 8);
        let exact = RecipeConfig::default();
        assert_eq!(exact.bucketed_batch(3), 3);
        assert_eq!(exact.compile_ms, 0.0);
    }

    #[test]
    fn recipe_config_validates() {
        assert!(RecipeConfig::default().validate().is_ok());
        assert!(RecipeConfig {
            compile_ms: 1.0,
            batch_bucket: 0
        }
        .validate()
        .is_err());
        assert!(RecipeConfig {
            compile_ms: f64::NAN,
            batch_bucket: 1
        }
        .validate()
        .is_err());
        assert!(RecipeConfig {
            compile_ms: -1.0,
            batch_bucket: 1
        }
        .validate()
        .is_err());
    }

    #[test]
    fn compiled_phases_carry_activation_plans() {
        let mut m = cm();
        for compiled in [
            m.prefill_compiled(1, 64).unwrap(),
            m.decode_compiled(4, 128).unwrap(),
        ] {
            assert!(compiled.planned_activation_bytes > 0);
            assert!(
                compiled.planned_activation_bytes <= compiled.naive_activation_bytes,
                "the packed arena can never exceed the naive sum \
                 ({} vs {})",
                compiled.planned_activation_bytes,
                compiled.naive_activation_bytes
            );
        }
        // A transformer phase has elementwise chains to collapse, so the
        // planner must actually win, not just tie.
        let p = m.prefill_compiled(1, 64).unwrap();
        assert!(p.planned_activation_bytes < p.naive_activation_bytes);
    }

    #[test]
    fn batched_decode_amortizes_launch_overhead() {
        // Continuous batching works because one decode step for B requests
        // costs far less than B single-request steps.
        let mut m = paper_cm();
        let single = m.decode(1, 512).unwrap();
        let batched = m.decode(8, 512).unwrap();
        assert!(
            batched.ms < 4.0 * single.ms,
            "batch-8 step {} ms vs single step {} ms",
            batched.ms,
            single.ms
        );
    }
}
