//! Phase cost model: prefill and decode steps priced by the graph compiler.
//!
//! Every phase is a real `gaudi-graph` compute graph compiled through the
//! existing `gaudi-compiler`/`gaudi-hw` cost models, so serving latencies
//! inherit the paper's calibration: prefill GEMMs amortize the MME's
//! launch overhead over a whole prompt, while decode's batched GEMVs sit
//! on the small-matmul launch-overhead floor of Table 2 — per-token cost
//! explodes and the busy-time balance tilts toward the MME.
//!
//! Compiling a graph per simulated step would dwarf the simulation itself,
//! so costs are cached per `(batch, bucketed length)` — the serving
//! analog of SynapseAI's recipe cache, and the reason the scheduler
//! quantizes context lengths to buckets at all.

use crate::error::ServingError;
use gaudi_compiler::{CompilerOptions, ExecutionPlan, GraphCompiler};
use gaudi_hw::{EngineId, GaudiConfig};
use gaudi_models::decode::{build_decode_step, build_prefill};
use gaudi_models::LlmConfig;
use std::collections::HashMap;

/// Compiled cost of one phase execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseCost {
    /// Wall time of the phase on the simulated device, ms.
    pub ms: f64,
    /// MME busy time, ns.
    pub mme_busy_ns: f64,
    /// TPC-cluster busy time, ns.
    pub tpc_busy_ns: f64,
    /// DMA busy time, ns.
    pub dma_busy_ns: f64,
    /// NIC (collective) busy time, ns — nonzero only for multi-card plans.
    pub nic_busy_ns: f64,
}

impl PhaseCost {
    /// The same phase stretched by a slowdown `factor` (≥ 1): wall time
    /// and every engine-busy term scale together, so a throttled phase
    /// reports the same utilization doing the same work more slowly.
    pub fn scaled(self, factor: f64) -> Self {
        PhaseCost {
            ms: self.ms * factor,
            mme_busy_ns: self.mme_busy_ns * factor,
            tpc_busy_ns: self.tpc_busy_ns * factor,
            dma_busy_ns: self.dma_busy_ns * factor,
            nic_busy_ns: self.nic_busy_ns * factor,
        }
    }

    fn from_plan(plan: &ExecutionPlan) -> Self {
        let mut cost = PhaseCost {
            ms: plan.makespan_ns / 1e6,
            ..PhaseCost::default()
        };
        for step in &plan.steps {
            match step.engine {
                EngineId::Mme => cost.mme_busy_ns += step.dur_ns,
                EngineId::TpcCluster => cost.tpc_busy_ns += step.dur_ns,
                EngineId::Dma(_) => cost.dma_busy_ns += step.dur_ns,
                EngineId::Nic => cost.nic_busy_ns += step.dur_ns,
                EngineId::Host => {}
            }
        }
        cost
    }
}

/// Caching cost model over one model + compiler configuration.
pub struct CostModel {
    compiler: GraphCompiler,
    model: LlmConfig,
    /// Context/prompt lengths are rounded up to a multiple of this before
    /// graph construction, bounding the number of distinct compilations.
    bucket: usize,
    prefill_cache: HashMap<(usize, usize), PhaseCost>,
    decode_cache: HashMap<(usize, usize), PhaseCost>,
}

impl CostModel {
    /// Cost model for `model` on `hw` under compiler `opts`.
    pub fn new(model: LlmConfig, hw: GaudiConfig, opts: CompilerOptions, bucket: usize) -> Self {
        assert!(bucket > 0, "bucket must be positive");
        CostModel {
            compiler: GraphCompiler::new(hw, opts),
            model,
            bucket,
            prefill_cache: HashMap::new(),
            decode_cache: HashMap::new(),
        }
    }

    /// Round a length up to its bucket.
    pub fn bucketed(&self, len: usize) -> usize {
        len.max(1).div_ceil(self.bucket) * self.bucket
    }

    /// Cost of prefilling a `[batch, prompt_len]` prompt batch.
    pub fn prefill(&mut self, batch: usize, prompt_len: usize) -> Result<PhaseCost, ServingError> {
        let key = (batch, self.bucketed(prompt_len));
        if let Some(c) = self.prefill_cache.get(&key) {
            return Ok(*c);
        }
        let (graph, _) = build_prefill(&self.model, key.0, key.1)?;
        let (_, plan) = self.compiler.compile(&graph)?;
        let cost = PhaseCost::from_plan(&plan);
        self.prefill_cache.insert(key, cost);
        Ok(cost)
    }

    /// Cost of one decode step for `batch` requests whose longest live
    /// context is `max_ctx` tokens.
    pub fn decode(&mut self, batch: usize, max_ctx: usize) -> Result<PhaseCost, ServingError> {
        let key = (batch, self.bucketed(max_ctx));
        if let Some(c) = self.decode_cache.get(&key) {
            return Ok(*c);
        }
        let (graph, _) = build_decode_step(&self.model, key.0, key.1)?;
        let (_, plan) = self.compiler.compile(&graph)?;
        let cost = PhaseCost::from_plan(&plan);
        self.decode_cache.insert(key, cost);
        Ok(cost)
    }

    /// Number of distinct graphs compiled so far (the recipe-cache size).
    pub fn compiled_graphs(&self) -> usize {
        self.prefill_cache.len() + self.decode_cache.len()
    }

    /// The model being served.
    pub fn model(&self) -> &LlmConfig {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> LlmConfig {
        LlmConfig::tiny(97)
    }

    fn cm() -> CostModel {
        CostModel::new(model(), GaudiConfig::hls1(), CompilerOptions::default(), 64)
    }

    #[test]
    fn bucketing_rounds_up() {
        let m = cm();
        assert_eq!(m.bucketed(1), 64);
        assert_eq!(m.bucketed(64), 64);
        assert_eq!(m.bucketed(65), 128);
    }

    #[test]
    fn caching_is_exact_per_bucket() {
        let mut m = cm();
        let a = m.decode(2, 10).unwrap();
        let b = m.decode(2, 60).unwrap(); // same bucket
        assert_eq!(m.compiled_graphs(), 1);
        assert_eq!(a.ms, b.ms);
        let c = m.decode(2, 70).unwrap(); // next bucket
        assert_eq!(m.compiled_graphs(), 2);
        assert!(c.ms >= a.ms);
    }

    fn paper_cm() -> CostModel {
        let mut m = LlmConfig::paper_section_3_4(50257);
        m.training = false;
        CostModel::new(m, GaudiConfig::hls1(), CompilerOptions::default(), 64)
    }

    #[test]
    fn decode_per_token_cost_dwarfs_prefill_per_token_cost() {
        // Table 2's small-matmul column: a [1,d]×[d,d] GEMV pays nearly the
        // same MME launch overhead as a full [S,d]×[d,d] GEMM, so one
        // decode step costs about as much as prefilling hundreds of prompt
        // tokens. This asymmetry is the entire case for continuous
        // batching.
        let mut m = paper_cm();
        let prefill = m.prefill(1, 512).unwrap();
        let decode = m.decode(1, 512).unwrap();
        assert!(
            prefill.ms > decode.ms,
            "prefill of 512 tokens ({} ms) should outweigh one decode step ({} ms)",
            prefill.ms,
            decode.ms
        );
        let prefill_per_tok = prefill.ms / 512.0;
        assert!(
            decode.ms > 50.0 * prefill_per_tok,
            "decode per-token {} ms vs prefill per-token {} ms",
            decode.ms,
            prefill_per_tok
        );
    }

    #[test]
    fn decode_shifts_busy_balance_toward_the_mme() {
        // Per Table 2, small matrix products collapse MME efficiency: a
        // decode step's GEMVs keep the MME busy for its full launch
        // overhead while doing ~1/S of prefill's matmul flops, and its
        // softmax/norm TPC work shrinks from S×S scores to 1×S. The busy
        // balance therefore tilts toward the MME in decode.
        let mut m = paper_cm();
        let prefill = m.prefill(1, 512).unwrap();
        let decode = m.decode(1, 512).unwrap();
        let prefill_tpc_share = prefill.tpc_busy_ns / (prefill.tpc_busy_ns + prefill.mme_busy_ns);
        let decode_tpc_share = decode.tpc_busy_ns / (decode.tpc_busy_ns + decode.mme_busy_ns);
        assert!(
            decode_tpc_share < prefill_tpc_share,
            "decode TPC share {decode_tpc_share:.3} should fall below prefill {prefill_tpc_share:.3}"
        );
    }

    #[test]
    fn batched_decode_amortizes_launch_overhead() {
        // Continuous batching works because one decode step for B requests
        // costs far less than B single-request steps.
        let mut m = paper_cm();
        let single = m.decode(1, 512).unwrap();
        let batched = m.decode(8, 512).unwrap();
        assert!(
            batched.ms < 4.0 * single.ms,
            "batch-8 step {} ms vs single step {} ms",
            batched.ms,
            single.ms
        );
    }
}
