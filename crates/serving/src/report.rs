//! Serving metrics: per-request outcomes and the aggregate report.

use gaudi_hw::DeviceId;
use gaudi_profiler::report::TextTable;
use gaudi_profiler::Trace;

/// p50/p95/p99 summary of a latency population, in milliseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Percentiles {
    /// Summarize a population. Empty input yields all zeros.
    ///
    /// Uses the nearest-rank method (`ceil(p·n)`-th order statistic), which
    /// always returns an observed value — important for exact reproducibility
    /// assertions on identical seeds.
    pub fn of(values: impl IntoIterator<Item = f64>) -> Self {
        let mut v: Vec<f64> = values.into_iter().collect();
        if v.is_empty() {
            return Percentiles::default();
        }
        v.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let rank = |p: f64| {
            let idx = (p * v.len() as f64).ceil() as usize;
            v[idx.clamp(1, v.len()) - 1]
        };
        Percentiles {
            p50: rank(0.50),
            p95: rank(0.95),
            p99: rank(0.99),
            mean: v.iter().sum::<f64>() / v.len() as f64,
        }
    }
}

/// Everything the engine observed about one completed request.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestOutcome {
    /// Request id (arrival order).
    pub id: u64,
    /// Arrival time, ms.
    pub arrival_ms: f64,
    /// Prompt tokens.
    pub prompt_len: usize,
    /// Generated tokens.
    pub output_len: usize,
    /// Time spent in the admission queue before prefill started, ms. For a
    /// retried request this counts waiting on the replica that finally
    /// served it (from its re-queue time, not its original arrival).
    pub queue_ms: f64,
    /// Time to first token: arrival → end of the prefill that produced
    /// token 0 (queueing + prefill; prefill's last forward pass emits the
    /// first output token), ms. Always measured from the request's
    /// original arrival, so replica failures and retries show up here.
    pub ttft_ms: f64,
    /// Scheduling attempts that were lost to replica failures before this
    /// one completed (0 in fault-free runs).
    pub retries: u32,
    /// Completion time, ms.
    pub finish_ms: f64,
    /// Absolute emission time of each generated token, ms. Strictly
    /// increasing — decode steps never reorder a request's tokens.
    pub token_times_ms: Vec<f64>,
}

/// Why a request terminated without (fully SLO-compliant) completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropKind {
    /// Shed at admission: the queue was at its depth or token bound when
    /// the request arrived (overload protection, never a silent drop).
    Rejected,
    /// An SLO deadline expired: either while queued (TTFT could no longer
    /// be met) or at completion (the finished request missed its deadline,
    /// so its tokens count toward throughput but not goodput).
    TimedOut,
    /// Replica failures exhausted the retry budget.
    Failed,
}

/// A request that terminated without completing inside its SLOs.
#[derive(Debug, Clone, PartialEq)]
pub struct DroppedRequest {
    /// Request id.
    pub id: u64,
    /// Arrival time, ms.
    pub arrival_ms: f64,
    /// Why it was dropped.
    pub kind: DropKind,
    /// When it was dropped, ms (shed/expiry/failure/late-finish time).
    pub at_ms: f64,
    /// Scheduling attempts lost to replica failures before the drop.
    pub retries: u32,
    /// Output tokens the engine generated for it anyway (non-zero only for
    /// late finishers — work done, SLO missed: throughput, not goodput).
    pub tokens_generated: usize,
}

/// Aggregate result of a serving simulation.
#[derive(Debug, Clone)]
pub struct ServingReport {
    /// Per-request outcomes of requests that completed within every
    /// configured SLO, sorted by id. With the default (unlimited)
    /// [`RobustnessConfig`] every generated request appears exactly once:
    /// admission backpressure delays, it never drops.
    ///
    /// [`RobustnessConfig`]: crate::RobustnessConfig
    pub completed: Vec<RequestOutcome>,
    /// Requests that terminated as shed, timed-out, or failed, sorted by
    /// id. Empty under the default unlimited robustness policy.
    pub dropped: Vec<DroppedRequest>,
    /// Requests offered to the engine. Conservation invariant:
    /// `offered == completed.len() + dropped.len()`.
    pub offered: usize,
    /// First arrival → last completion, ms.
    pub makespan_ms: f64,
    /// Time-to-first-token percentiles, ms.
    pub ttft_ms: Percentiles,
    /// Per-output-token latency percentiles (inter-token gaps), ms.
    pub tpot_ms: Percentiles,
    /// Admission-queue wait percentiles, ms.
    pub queue_ms: Percentiles,
    /// Arrival→drop latency percentiles of timed-out requests, ms. All
    /// zeros when nothing timed out.
    pub timed_out_latency_ms: Percentiles,
    /// Tokens of SLO-compliant completions per wall-clock second — the
    /// useful work rate. Under overload this plateaus at engine capacity
    /// while the shed fraction absorbs the excess.
    pub goodput_tokens_per_s: f64,
    /// All generated tokens per wall-clock second, including tokens of
    /// requests that finished past their deadline. `>= goodput`; the gap
    /// is work the engine did that no SLO-bound client waited for.
    pub throughput_tokens_per_s: f64,
    /// MME busy time / makespan.
    pub mme_utilization: f64,
    /// TPC-cluster busy time / makespan.
    pub tpc_utilization: f64,
    /// DMA busy time / makespan.
    pub dma_utilization: f64,
    /// NIC (collective/scale-out) busy time / makespan. Zero for purely
    /// data-parallel replicas, whose phase plans never touch the NIC.
    pub nic_utilization: f64,
    /// Decode iterations executed.
    pub decode_steps: usize,
    /// Prefill phases executed (= admissions).
    pub prefills: usize,
    /// Times the scheduler had a free slot but the KV accountant refused the
    /// queue head (HBM backpressure).
    pub backpressure_stalls: usize,
    /// Deepest the admission queue ever got, requests.
    pub max_queue_depth: usize,
    /// Largest worst-case token footprint the admission queue ever held —
    /// the saturation gauge that makes unbounded queue growth visible even
    /// with shedding disabled.
    pub peak_queued_tokens: usize,
    /// HBM high-water mark (weights + live KV), bytes.
    pub kv_peak_bytes: u64,
    /// Device HBM capacity, bytes.
    pub kv_capacity_bytes: u64,
    /// Fraction of the KV bytes reserved at the peak that held live
    /// tokens (mean over replicas). Contiguous admission wastes the
    /// not-yet-generated output tail of every reservation; paged
    /// admission wastes only each chain's last-block rounding — the gap
    /// between the two is the headroom paging reclaims.
    pub kv_block_utilization: f64,
    /// Distinct phase graphs compiled (the recipe-cache size).
    pub compiled_graphs: usize,
    /// Recipe compilations charged to the simulated devices: first use of
    /// each `(phase, batch bucket, ctx bucket)` shape per replica, summed
    /// over replicas, counting cold restarts again. With warmup enabled
    /// each compile stalls the replica for `RecipeConfig::compile_ms`.
    ///
    /// [`RecipeConfig::compile_ms`]: crate::RecipeConfig
    pub recipe_compiles: u64,
    /// Runners preempted mid-decode because the paged KV pool ran dry
    /// (their generated tokens were discarded and recomputed). Always zero
    /// under contiguous admission.
    pub preemptions: usize,
    /// Largest concurrent decode batch reached — per replica, summed over
    /// replicas (per-replica peaks need not be simultaneous). The
    /// max-concurrent-sequences gauge paged admission exists to raise.
    pub peak_running: usize,
    /// Token-slots scheduled across all phases at their bucket-padded
    /// shapes (prefill: bucketed prompt; decode: bucketed batch × bucketed
    /// context).
    pub scheduled_tokens: usize,
    /// The subset of `scheduled_tokens` that was padding: slots priced but
    /// holding no live token, from ctx- and batch-bucket rounding.
    pub padded_tokens: usize,
    /// Cards the simulation ran on (data-parallel serving replicas).
    pub devices: usize,
    /// Requests re-queued onto a surviving replica after a card failure
    /// (each counted once per lost attempt).
    pub retries: usize,
    /// Output tokens that had been generated on a card when it died and
    /// had to be regenerated elsewhere (lost work, excluded from goodput).
    /// With checkpointing, only tokens generated *past* the last snapshot
    /// count here — the snapshotted prefix restores instead.
    pub requeued_tokens: usize,
    /// KV bytes snapshotted to host across all periodic checkpoints (zero
    /// without a [`CheckpointPolicy`]).
    ///
    /// [`CheckpointPolicy`]: crate::CheckpointPolicy
    pub checkpoint_bytes: u64,
    /// Replica clock spent restoring host snapshots over DMA after
    /// failures and preemptions, ms.
    pub restore_ms: f64,
    /// Generated tokens resumed from host snapshots instead of being
    /// recomputed — the recomputation work checkpointing saved.
    pub recovered_tokens: u64,
    /// Replica kill events the fault plan delivered (a device that dies
    /// and restarts twice counts twice).
    pub failed_replicas: usize,
    /// Replica restart events: transient kills whose down window ended
    /// inside the run, returning the card to the dispatch pool with a cold
    /// compiled-plan cache.
    pub restarts: usize,
    /// Per-replica up-time, ms, indexed by device: the replica's own
    /// makespan minus the down windows it spent dead.
    pub replica_uptime_ms: Vec<f64>,
    /// Engine-busy timeline of every phase, for the profiler tooling.
    pub trace: Trace,
}

impl ServingReport {
    /// Mean decode batch size: decode-generated tokens per decode step.
    /// (Each request's first token comes out of its prefill, so a request
    /// contributes `output_len - 1` decode tokens.)
    pub fn mean_decode_batch(&self) -> f64 {
        let tokens: usize = self
            .completed
            .iter()
            .map(|o| o.output_len.saturating_sub(1))
            .sum();
        if self.decode_steps == 0 {
            0.0
        } else {
            tokens as f64 / self.decode_steps as f64
        }
    }

    /// Requests shed at admission (queue depth or token bound hit).
    pub fn shed(&self) -> usize {
        self.dropped
            .iter()
            .filter(|d| d.kind == DropKind::Rejected)
            .count()
    }

    /// Requests that missed a TTFT or end-to-end deadline.
    pub fn timed_out(&self) -> usize {
        self.dropped
            .iter()
            .filter(|d| d.kind == DropKind::TimedOut)
            .count()
    }

    /// Requests that exhausted their retry budget after replica failures.
    pub fn failed(&self) -> usize {
        self.dropped
            .iter()
            .filter(|d| d.kind == DropKind::Failed)
            .count()
    }

    /// Fraction of all scheduled token-slots that was bucket padding —
    /// the waste side of the recipe-bucketing tradeoff (`0.0` when nothing
    /// was scheduled).
    pub fn padding_waste(&self) -> f64 {
        if self.scheduled_tokens == 0 {
            0.0
        } else {
            self.padded_tokens as f64 / self.scheduled_tokens as f64
        }
    }

    /// Fraction of offered requests that completed within their SLOs.
    pub fn goodput_fraction(&self) -> f64 {
        if self.offered == 0 {
            return 1.0;
        }
        self.completed.len() as f64 / self.offered as f64
    }

    /// Mean fraction of the box's makespan its replicas were alive:
    /// `1.0` in fault-free runs, lower when cards died mid-run. A replica
    /// that restarts accrues up-time on both sides of its down window.
    pub fn availability(&self) -> f64 {
        if self.replica_uptime_ms.is_empty() || self.makespan_ms <= 0.0 {
            return 1.0;
        }
        let up: f64 = self
            .replica_uptime_ms
            .iter()
            .map(|&u| u.min(self.makespan_ms))
            .sum();
        up / (self.makespan_ms * self.replica_uptime_ms.len() as f64)
    }

    /// Render the report as text tables through the profiler tooling.
    pub fn render(&self) -> String {
        let ms = |x: f64| format!("{x:.2}");
        let mut lat = TextTable::new(&["latency", "p50 ms", "p95 ms", "p99 ms", "mean ms"]);
        let mut rows = vec![
            ("ttft", &self.ttft_ms),
            ("per-token", &self.tpot_ms),
            ("queue wait", &self.queue_ms),
        ];
        if self.timed_out() > 0 {
            rows.push(("timed-out e2e", &self.timed_out_latency_ms));
        }
        for (name, p) in rows {
            lat.row(&[
                name.to_string(),
                ms(p.p50),
                ms(p.p95),
                ms(p.p99),
                ms(p.mean),
            ]);
        }

        let mut eng = TextTable::new(&["metric", "value"]);
        eng.row(&["devices".into(), self.devices.to_string()])
            .row(&["requests offered".into(), self.offered.to_string()])
            .row(&["requests served".into(), self.completed.len().to_string()])
            .row(&["makespan ms".into(), ms(self.makespan_ms)])
            .row(&[
                "goodput tok/s".into(),
                format!("{:.1}", self.goodput_tokens_per_s),
            ])
            .row(&[
                "throughput tok/s".into(),
                format!("{:.1}", self.throughput_tokens_per_s),
            ])
            .row(&[
                "mean decode batch".into(),
                format!("{:.2}", self.mean_decode_batch()),
            ])
            .row(&[
                "MME utilization".into(),
                format!("{:.1}%", self.mme_utilization * 100.0),
            ])
            .row(&[
                "TPC utilization".into(),
                format!("{:.1}%", self.tpc_utilization * 100.0),
            ])
            .row(&[
                "DMA utilization".into(),
                format!("{:.1}%", self.dma_utilization * 100.0),
            ])
            .row(&[
                "NIC utilization".into(),
                format!("{:.1}%", self.nic_utilization * 100.0),
            ])
            .row(&["decode steps".into(), self.decode_steps.to_string()])
            .row(&["prefills".into(), self.prefills.to_string()])
            .row(&[
                "KV backpressure stalls".into(),
                self.backpressure_stalls.to_string(),
            ])
            .row(&["max queue depth".into(), self.max_queue_depth.to_string()])
            .row(&[
                "peak queued tokens".into(),
                self.peak_queued_tokens.to_string(),
            ])
            .row(&[
                "HBM peak / capacity".into(),
                format!(
                    "{:.2} / {:.0} GiB",
                    self.kv_peak_bytes as f64 / (1u64 << 30) as f64,
                    self.kv_capacity_bytes as f64 / (1u64 << 30) as f64
                ),
            ])
            .row(&[
                "KV utilization at peak".into(),
                format!("{:.1}%", self.kv_block_utilization * 100.0),
            ])
            .row(&["peak decode batch".into(), self.peak_running.to_string()])
            .row(&["compiled graphs".into(), self.compiled_graphs.to_string()])
            .row(&["recipe compiles".into(), self.recipe_compiles.to_string()])
            .row(&[
                "padding waste".into(),
                format!("{:.1}%", self.padding_waste() * 100.0),
            ]);
        if self.preemptions > 0 {
            eng.row(&["KV preemptions".into(), self.preemptions.to_string()]);
        }
        if !self.dropped.is_empty() {
            eng.row(&["shed (rejected)".into(), self.shed().to_string()])
                .row(&["timed out".into(), self.timed_out().to_string()])
                .row(&["failed (retries)".into(), self.failed().to_string()])
                .row(&[
                    "goodput fraction".into(),
                    format!("{:.1}%", self.goodput_fraction() * 100.0),
                ]);
        }
        if self.failed_replicas > 0 || self.retries > 0 {
            eng.row(&["failed replicas".into(), self.failed_replicas.to_string()])
                .row(&["replica restarts".into(), self.restarts.to_string()])
                .row(&["request retries".into(), self.retries.to_string()])
                .row(&["requeued tokens".into(), self.requeued_tokens.to_string()])
                .row(&[
                    "availability".into(),
                    format!("{:.1}%", self.availability() * 100.0),
                ]);
        }
        if self.checkpoint_bytes > 0 {
            eng.row(&["checkpoint bytes".into(), self.checkpoint_bytes.to_string()])
                .row(&["restore ms".into(), ms(self.restore_ms)])
                .row(&["recovered tokens".into(), self.recovered_tokens.to_string()]);
        }

        format!("{}\n{}", lat.render(), eng.render())
    }
}

/// Two-level report merging: replicas → box, boxes → cluster.
impl ServingReport {
    /// Merge per-replica reports into one box-level report: latency percentiles
    /// recomputed over the union, throughput summed against the slowest
    /// replica's makespan, utilizations averaged per card (busy time
    /// reconstructed from each replica's utilization × its own makespan, NIC
    /// included), availability counters summed, and the trace re-tagged with
    /// each replica's [`DeviceId`].
    pub fn merge_replicas(devices: usize, replicas: Vec<ServingReport>) -> ServingReport {
        let makespan_ms = replicas.iter().map(|r| r.makespan_ms).fold(0.0, f64::max);
        let span_ns = makespan_ms * 1e6;
        // Recover each replica's busy time from its own utilization x makespan.
        let busy = |f: fn(&ServingReport) -> f64| -> f64 {
            replicas.iter().map(|r| f(r) * r.makespan_ms * 1e6).sum()
        };
        let util = |f: fn(&ServingReport) -> f64| -> f64 {
            if span_ns > 0.0 {
                busy(f) / (span_ns * devices as f64)
            } else {
                0.0
            }
        };
        let mme_utilization = util(|r| r.mme_utilization);
        let tpc_utilization = util(|r| r.tpc_utilization);
        let dma_utilization = util(|r| r.dma_utilization);
        let nic_utilization = util(|r| r.nic_utilization);

        let mut completed: Vec<RequestOutcome> = Vec::new();
        let mut dropped: Vec<DroppedRequest> = Vec::new();
        let mut offered = 0;
        let mut trace = Trace::new();
        let mut decode_steps = 0;
        let mut prefills = 0;
        let mut backpressure_stalls = 0;
        let mut max_queue_depth = 0;
        let mut peak_queued_tokens = 0;
        let mut kv_peak_bytes = 0;
        let mut kv_capacity_bytes = 0;
        let mut kv_block_utilization = 0.0;
        let mut compiled_graphs = 0;
        let mut recipe_compiles = 0;
        let mut preemptions = 0;
        let mut peak_running = 0;
        let mut scheduled_tokens = 0;
        let mut padded_tokens = 0;
        let mut retries = 0;
        let mut requeued_tokens = 0;
        let mut checkpoint_bytes = 0;
        let mut restore_ms = 0.0;
        let mut recovered_tokens = 0;
        let mut failed_replicas = 0;
        let mut restarts = 0;
        let mut replica_uptime_ms = Vec::with_capacity(devices);
        for (d, r) in replicas.into_iter().enumerate() {
            completed.extend(r.completed);
            dropped.extend(r.dropped);
            offered += r.offered;
            for ev in r.trace.events() {
                trace.push(ev.clone().on_device(DeviceId(d)));
            }
            decode_steps += r.decode_steps;
            prefills += r.prefills;
            backpressure_stalls += r.backpressure_stalls;
            max_queue_depth = max_queue_depth.max(r.max_queue_depth);
            peak_queued_tokens = peak_queued_tokens.max(r.peak_queued_tokens);
            kv_peak_bytes = r.kv_peak_bytes.max(kv_peak_bytes);
            kv_capacity_bytes = r.kv_capacity_bytes;
            // Device-weighted like merge_boxes' gauges: a replica spanning
            // w cards (tensor parallelism) contributes w shares of the
            // box mean. Single-card replicas keep `r.devices == 1`, where
            // `x * 1.0 / d` is bit-identical to the old `x / d` — the
            // golden digests pin that. Dividing by `devices` without the
            // weight silently deflated the gauge whenever replicas !=
            // devices.
            kv_block_utilization += r.kv_block_utilization * r.devices as f64 / devices as f64;
            compiled_graphs += r.compiled_graphs;
            recipe_compiles += r.recipe_compiles;
            preemptions += r.preemptions;
            // Summed, not max'd: the box-level "max concurrent sequences" is
            // the aggregate decode capacity the stream actually reached
            // (per-replica peaks need not be simultaneous; each replica's own
            // peak is exact).
            peak_running += r.peak_running;
            scheduled_tokens += r.scheduled_tokens;
            padded_tokens += r.padded_tokens;
            retries += r.retries;
            requeued_tokens += r.requeued_tokens;
            checkpoint_bytes += r.checkpoint_bytes;
            restore_ms += r.restore_ms;
            recovered_tokens += r.recovered_tokens;
            failed_replicas += r.failed_replicas;
            restarts += r.restarts;
            replica_uptime_ms.extend(r.replica_uptime_ms);
        }
        completed.sort_by_key(|o| o.id);
        dropped.sort_by_key(|o| o.id);
        let goodput_tokens: usize = completed.iter().map(|o| o.output_len).sum();
        let wasted_tokens: usize = dropped.iter().map(|d| d.tokens_generated).sum();

        let ttft_ms = Percentiles::of(completed.iter().map(|o| o.ttft_ms));
        let tpot_ms = Percentiles::of(completed.iter().flat_map(|o| {
            o.token_times_ms
                .windows(2)
                .map(|w| w[1] - w[0])
                .collect::<Vec<_>>()
        }));
        let queue_ms = Percentiles::of(completed.iter().map(|o| o.queue_ms));
        let timed_out_latency_ms = Percentiles::of(
            dropped
                .iter()
                .filter(|d| d.kind == DropKind::TimedOut)
                .map(|d| d.at_ms - d.arrival_ms),
        );
        let per_s = |tokens: usize| {
            if makespan_ms > 0.0 {
                tokens as f64 / (makespan_ms / 1e3)
            } else {
                0.0
            }
        };

        ServingReport {
            completed,
            dropped,
            offered,
            makespan_ms,
            ttft_ms,
            tpot_ms,
            queue_ms,
            timed_out_latency_ms,
            goodput_tokens_per_s: per_s(goodput_tokens),
            throughput_tokens_per_s: per_s(goodput_tokens + wasted_tokens),
            mme_utilization,
            tpc_utilization,
            dma_utilization,
            nic_utilization,
            decode_steps,
            prefills,
            backpressure_stalls,
            max_queue_depth,
            peak_queued_tokens,
            kv_peak_bytes,
            kv_capacity_bytes,
            kv_block_utilization,
            compiled_graphs,
            recipe_compiles,
            preemptions,
            peak_running,
            scheduled_tokens,
            padded_tokens,
            devices,
            retries,
            requeued_tokens,
            checkpoint_bytes,
            restore_ms,
            recovered_tokens,
            failed_replicas,
            restarts,
            replica_uptime_ms,
            trace,
        }
    }

    /// Merge per-box reports into one cluster-level report — the second
    /// level of the two-level merge. Unlike [`merge_replicas`], whose
    /// float arithmetic is frozen (golden-pinned) to the single-box
    /// engine, this level weights every per-box gauge by that box's
    /// device count: busy time is reconstructed as
    /// `util × makespan × devices` per box, utilizations renormalize over
    /// the cluster's total device count and the slowest box's makespan,
    /// and latency percentiles are re-derived from the pooled per-request
    /// samples — never by averaging per-box percentiles (the p99 of a
    /// union is not the mean of the p99s). Trace events are re-tagged
    /// with cluster-global device ids (each box's devices offset by the
    /// devices of the boxes before it).
    ///
    /// [`merge_replicas`]: Self::merge_replicas
    pub fn merge_boxes(boxes: Vec<ServingReport>) -> ServingReport {
        let devices: usize = boxes.iter().map(|r| r.devices).sum();
        let makespan_ms = boxes.iter().map(|r| r.makespan_ms).fold(0.0, f64::max);
        let span_ns = makespan_ms * 1e6;
        let busy = |f: fn(&ServingReport) -> f64| -> f64 {
            boxes
                .iter()
                .map(|r| f(r) * r.makespan_ms * 1e6 * r.devices as f64)
                .sum()
        };
        let util = |f: fn(&ServingReport) -> f64| -> f64 {
            if span_ns > 0.0 && devices > 0 {
                busy(f) / (span_ns * devices as f64)
            } else {
                0.0
            }
        };
        let mme_utilization = util(|r| r.mme_utilization);
        let tpc_utilization = util(|r| r.tpc_utilization);
        let dma_utilization = util(|r| r.dma_utilization);
        let nic_utilization = util(|r| r.nic_utilization);
        let kv_block_utilization = if devices > 0 {
            boxes
                .iter()
                .map(|r| r.kv_block_utilization * r.devices as f64)
                .sum::<f64>()
                / devices as f64
        } else {
            0.0
        };

        let mut completed: Vec<RequestOutcome> = Vec::new();
        let mut dropped: Vec<DroppedRequest> = Vec::new();
        let mut offered = 0;
        let mut trace = Trace::new();
        let mut device_offset = 0;
        let mut decode_steps = 0;
        let mut prefills = 0;
        let mut backpressure_stalls = 0;
        let mut max_queue_depth = 0;
        let mut peak_queued_tokens = 0;
        let mut kv_peak_bytes = 0;
        let mut kv_capacity_bytes = 0;
        let mut compiled_graphs = 0;
        let mut recipe_compiles = 0;
        let mut preemptions = 0;
        let mut peak_running = 0;
        let mut scheduled_tokens = 0;
        let mut padded_tokens = 0;
        let mut retries = 0;
        let mut requeued_tokens = 0;
        let mut checkpoint_bytes = 0;
        let mut restore_ms = 0.0;
        let mut recovered_tokens = 0;
        let mut failed_replicas = 0;
        let mut restarts = 0;
        let mut replica_uptime_ms = Vec::with_capacity(devices);
        for r in boxes {
            completed.extend(r.completed);
            dropped.extend(r.dropped);
            offered += r.offered;
            for ev in r.trace.events() {
                let mut ev = ev.clone();
                ev.device = DeviceId(ev.device.0 + device_offset);
                trace.push(ev);
            }
            device_offset += r.devices;
            decode_steps += r.decode_steps;
            prefills += r.prefills;
            backpressure_stalls += r.backpressure_stalls;
            max_queue_depth = max_queue_depth.max(r.max_queue_depth);
            peak_queued_tokens = peak_queued_tokens.max(r.peak_queued_tokens);
            kv_peak_bytes = r.kv_peak_bytes.max(kv_peak_bytes);
            kv_capacity_bytes = r.kv_capacity_bytes.max(kv_capacity_bytes);
            compiled_graphs += r.compiled_graphs;
            recipe_compiles += r.recipe_compiles;
            preemptions += r.preemptions;
            peak_running += r.peak_running;
            scheduled_tokens += r.scheduled_tokens;
            padded_tokens += r.padded_tokens;
            retries += r.retries;
            requeued_tokens += r.requeued_tokens;
            checkpoint_bytes += r.checkpoint_bytes;
            restore_ms += r.restore_ms;
            recovered_tokens += r.recovered_tokens;
            failed_replicas += r.failed_replicas;
            restarts += r.restarts;
            replica_uptime_ms.extend(r.replica_uptime_ms);
        }
        completed.sort_by_key(|o| o.id);
        dropped.sort_by_key(|o| o.id);
        let goodput_tokens: usize = completed.iter().map(|o| o.output_len).sum();
        let wasted_tokens: usize = dropped.iter().map(|d| d.tokens_generated).sum();

        let ttft_ms = Percentiles::of(completed.iter().map(|o| o.ttft_ms));
        let tpot_ms = Percentiles::of(completed.iter().flat_map(|o| {
            o.token_times_ms
                .windows(2)
                .map(|w| w[1] - w[0])
                .collect::<Vec<_>>()
        }));
        let queue_ms = Percentiles::of(completed.iter().map(|o| o.queue_ms));
        let timed_out_latency_ms = Percentiles::of(
            dropped
                .iter()
                .filter(|d| d.kind == DropKind::TimedOut)
                .map(|d| d.at_ms - d.arrival_ms),
        );
        let per_s = |tokens: usize| {
            if makespan_ms > 0.0 {
                tokens as f64 / (makespan_ms / 1e3)
            } else {
                0.0
            }
        };

        ServingReport {
            completed,
            dropped,
            offered,
            makespan_ms,
            ttft_ms,
            tpot_ms,
            queue_ms,
            timed_out_latency_ms,
            goodput_tokens_per_s: per_s(goodput_tokens),
            throughput_tokens_per_s: per_s(goodput_tokens + wasted_tokens),
            mme_utilization,
            tpc_utilization,
            dma_utilization,
            nic_utilization,
            decode_steps,
            prefills,
            backpressure_stalls,
            max_queue_depth,
            peak_queued_tokens,
            kv_peak_bytes,
            kv_capacity_bytes,
            kv_block_utilization,
            compiled_graphs,
            recipe_compiles,
            preemptions,
            peak_running,
            scheduled_tokens,
            padded_tokens,
            devices,
            retries,
            requeued_tokens,
            checkpoint_bytes,
            restore_ms,
            recovered_tokens,
            failed_replicas,
            restarts,
            replica_uptime_ms,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal replica report spanning `devices` cards with the given
    /// block-utilization gauge; everything else is zero/empty.
    fn replica_report(devices: usize, kv_block_utilization: f64) -> ServingReport {
        ServingReport {
            completed: vec![],
            dropped: vec![],
            offered: 0,
            makespan_ms: 10.0,
            ttft_ms: Percentiles::default(),
            tpot_ms: Percentiles::default(),
            queue_ms: Percentiles::default(),
            timed_out_latency_ms: Percentiles::default(),
            goodput_tokens_per_s: 0.0,
            throughput_tokens_per_s: 0.0,
            mme_utilization: 0.0,
            tpc_utilization: 0.0,
            dma_utilization: 0.0,
            nic_utilization: 0.0,
            decode_steps: 0,
            prefills: 0,
            backpressure_stalls: 0,
            max_queue_depth: 0,
            peak_queued_tokens: 0,
            kv_peak_bytes: 0,
            kv_capacity_bytes: 0,
            kv_block_utilization,
            compiled_graphs: 0,
            recipe_compiles: 0,
            preemptions: 0,
            peak_running: 0,
            scheduled_tokens: 0,
            padded_tokens: 0,
            devices,
            retries: 0,
            requeued_tokens: 0,
            checkpoint_bytes: 0,
            restore_ms: 0.0,
            recovered_tokens: 0,
            failed_replicas: 0,
            restarts: 0,
            replica_uptime_ms: vec![10.0; devices],
            trace: Trace::new(),
        }
    }

    #[test]
    fn merge_replicas_weights_block_utilization_by_replica_width() {
        // Regression: two tp=2 replicas on a 4-card box. The old code
        // divided each replica's gauge by 4 *without* the 2-card weight,
        // reporting (0.9 + 0.6) / 4 = 0.375 for a box whose cards sit at
        // a true mean of (0.9*2 + 0.6*2) / 4 = 0.75.
        let merged =
            ServingReport::merge_replicas(4, vec![replica_report(2, 0.9), replica_report(2, 0.6)]);
        assert!(
            (merged.kv_block_utilization - 0.75).abs() < 1e-12,
            "device-weighted mean, got {}",
            merged.kv_block_utilization
        );
        // Data-parallel single-card replicas are the legacy path and must
        // stay bit-identical (x * 1.0 / d == x / d in IEEE f64).
        let dp =
            ServingReport::merge_replicas(2, vec![replica_report(1, 0.9), replica_report(1, 0.6)]);
        assert_eq!(dp.kv_block_utilization, 0.9 / 2.0 + 0.6 / 2.0);
    }

    #[test]
    fn percentiles_of_known_population() {
        let p = Percentiles::of((1..=100).map(|i| i as f64));
        assert_eq!(p.p50, 50.0);
        assert_eq!(p.p95, 95.0);
        assert_eq!(p.p99, 99.0);
        assert_eq!(p.mean, 50.5);
    }

    #[test]
    fn percentiles_of_singleton_and_empty() {
        let p = Percentiles::of([7.0]);
        assert_eq!((p.p50, p.p95, p.p99, p.mean), (7.0, 7.0, 7.0, 7.0));
        assert_eq!(Percentiles::of([]), Percentiles::default());
    }

    #[test]
    fn render_mentions_key_metrics() {
        let r = ServingReport {
            completed: vec![],
            dropped: vec![],
            offered: 0,
            makespan_ms: 12.5,
            ttft_ms: Percentiles::default(),
            tpot_ms: Percentiles::default(),
            queue_ms: Percentiles::default(),
            timed_out_latency_ms: Percentiles::default(),
            goodput_tokens_per_s: 42.0,
            throughput_tokens_per_s: 42.0,
            mme_utilization: 0.5,
            tpc_utilization: 0.25,
            dma_utilization: 0.1,
            nic_utilization: 0.05,
            decode_steps: 3,
            prefills: 2,
            backpressure_stalls: 1,
            max_queue_depth: 4,
            peak_queued_tokens: 96,
            kv_peak_bytes: 1 << 30,
            kv_capacity_bytes: 32 << 30,
            kv_block_utilization: 0.5,
            compiled_graphs: 5,
            recipe_compiles: 5,
            preemptions: 0,
            peak_running: 3,
            scheduled_tokens: 128,
            padded_tokens: 32,
            devices: 1,
            retries: 0,
            requeued_tokens: 0,
            checkpoint_bytes: 0,
            restore_ms: 0.0,
            recovered_tokens: 0,
            failed_replicas: 0,
            restarts: 0,
            replica_uptime_ms: vec![12.5],
            trace: Trace::new(),
        };
        let text = r.render();
        assert!(text.contains("ttft"));
        assert!(text.contains("42.0"));
        assert!(text.contains("32 GiB"));
        assert!(text.contains("NIC utilization"));
        assert!(text.contains("peak queued tokens"));
        assert!(text.contains("recipe compiles"));
        assert!(text.contains("peak decode batch"));
        assert!(text.contains("padding waste"));
        assert!((r.padding_waste() - 0.25).abs() < 1e-12);
        assert!(
            !text.contains("KV preemptions"),
            "preemption row hidden when contiguous admission never preempts"
        );
        assert!(
            !text.contains("failed replicas"),
            "fault rows hidden in fault-free reports"
        );
        assert!(
            !text.contains("shed (rejected)"),
            "overload rows hidden when nothing dropped"
        );

        let faulted = ServingReport {
            retries: 3,
            requeued_tokens: 17,
            failed_replicas: 1,
            replica_uptime_ms: vec![6.25, 12.5],
            devices: 2,
            ..r.clone()
        };
        let text = faulted.render();
        assert!(text.contains("failed replicas"));
        assert!(text.contains("requeued tokens"));
        assert_eq!(faulted.availability(), 0.75);
        assert!(
            !text.contains("checkpoint bytes"),
            "recovery rows hidden when nothing was checkpointed"
        );

        let checkpointed = ServingReport {
            checkpoint_bytes: 4096,
            restore_ms: 0.5,
            recovered_tokens: 12,
            ..r.clone()
        };
        let text = checkpointed.render();
        assert!(text.contains("checkpoint bytes"));
        assert!(text.contains("restore ms"));
        assert!(text.contains("recovered tokens"));

        let overloaded = ServingReport {
            offered: 3,
            completed: vec![RequestOutcome {
                id: 0,
                arrival_ms: 0.0,
                prompt_len: 8,
                output_len: 4,
                queue_ms: 0.0,
                ttft_ms: 1.0,
                retries: 0,
                finish_ms: 4.0,
                token_times_ms: vec![1.0, 2.0, 3.0, 4.0],
            }],
            dropped: vec![
                DroppedRequest {
                    id: 1,
                    arrival_ms: 0.0,
                    kind: DropKind::Rejected,
                    at_ms: 1.0,
                    retries: 0,
                    tokens_generated: 0,
                },
                DroppedRequest {
                    id: 2,
                    arrival_ms: 0.5,
                    kind: DropKind::TimedOut,
                    at_ms: 9.5,
                    retries: 0,
                    tokens_generated: 4,
                },
            ],
            ..r
        };
        assert_eq!(overloaded.shed(), 1);
        assert_eq!(overloaded.timed_out(), 1);
        assert_eq!(overloaded.failed(), 0);
        assert!((overloaded.goodput_fraction() - 1.0 / 3.0).abs() < 1e-12);
        let text = overloaded.render();
        assert!(text.contains("shed (rejected)"));
        assert!(text.contains("goodput fraction"));
        assert!(text.contains("timed-out e2e"));
    }
}
