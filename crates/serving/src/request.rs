//! Seeded request-stream generation: Poisson arrivals, Zipf lengths.
//!
//! An online serving trace is characterized by *when* requests arrive and
//! *how much work* each carries. Arrivals are memoryless (exponential
//! inter-arrival gaps — a Poisson process at the configured rate), and
//! prompt/output lengths follow a Zipf law over their configured ranges,
//! mirroring the short-head/long-tail mix of production LLM traffic. Both
//! draws come from one [`SeededRng`] stream, so a seed fully determines
//! the trace.

use gaudi_tensor::SeededRng;
use gaudi_workloads::ZipfSampler;

/// One inference request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Monotonic id in arrival order.
    pub id: u64,
    /// Arrival time in simulated milliseconds (stored as integer
    /// microseconds internally would lose nothing; f64 ms is exact enough
    /// for ordering and is what the report quotes).
    pub arrival_us: u64,
    /// Prompt length in tokens.
    pub prompt_len: usize,
    /// Number of tokens to generate.
    pub output_len: usize,
}

impl Request {
    /// Arrival time in milliseconds.
    pub fn arrival_ms(&self) -> f64 {
        self.arrival_us as f64 / 1e3
    }

    /// Total KV-cache footprint of the fully-decoded request, in tokens.
    pub fn total_tokens(&self) -> usize {
        self.prompt_len + self.output_len
    }
}

/// Request-stream parameters.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Mean arrival rate in requests per second.
    pub arrival_rate_per_s: f64,
    /// Number of requests in the trace.
    pub num_requests: usize,
    /// Shortest/longest prompt, tokens (inclusive).
    pub prompt_range: (usize, usize),
    /// Shortest/longest generation, tokens (inclusive).
    pub output_range: (usize, usize),
    /// Zipf exponent for both length distributions (≈1 for natural
    /// language; larger values skew shorter).
    pub zipf_s: f64,
    /// Seed for the whole trace.
    pub seed: u64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            arrival_rate_per_s: 4.0,
            num_requests: 100,
            prompt_range: (16, 1024),
            output_range: (8, 256),
            zipf_s: 1.1,
            seed: 0,
        }
    }
}

/// Generate the full request trace for a configuration, sorted by arrival.
pub fn generate_requests(cfg: &TrafficConfig) -> Vec<Request> {
    assert!(
        cfg.arrival_rate_per_s > 0.0,
        "arrival rate must be positive"
    );
    let (p_lo, p_hi) = cfg.prompt_range;
    let (o_lo, o_hi) = cfg.output_range;
    assert!(0 < p_lo && p_lo <= p_hi, "bad prompt range");
    assert!(0 < o_lo && o_lo <= o_hi, "bad output range");

    let mut rng = SeededRng::new(cfg.seed);
    let prompt_zipf = ZipfSampler::new(p_hi - p_lo + 1, cfg.zipf_s);
    let output_zipf = ZipfSampler::new(o_hi - o_lo + 1, cfg.zipf_s);

    let mut t_us = 0u64;
    let mut out = Vec::with_capacity(cfg.num_requests);
    for id in 0..cfg.num_requests as u64 {
        // Exponential inter-arrival gap, quantized to microseconds so the
        // trace is exactly reproducible regardless of float summation order.
        let u = (rng.uniform() as f64).min(1.0 - 1e-9);
        let gap_s = -(1.0 - u).ln() / cfg.arrival_rate_per_s;
        t_us += (gap_s * 1e6) as u64;
        out.push(Request {
            id,
            arrival_us: t_us,
            prompt_len: p_lo + prompt_zipf.sample(&mut rng),
            output_len: o_lo + output_zipf.sample(&mut rng),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic_per_seed() {
        let cfg = TrafficConfig::default();
        assert_eq!(generate_requests(&cfg), generate_requests(&cfg));
        let other = TrafficConfig { seed: 1, ..cfg };
        assert_ne!(generate_requests(&cfg), generate_requests(&other));
    }

    #[test]
    fn lengths_stay_in_range_and_arrivals_are_sorted() {
        let cfg = TrafficConfig {
            num_requests: 500,
            ..TrafficConfig::default()
        };
        let reqs = generate_requests(&cfg);
        assert_eq!(reqs.len(), 500);
        for w in reqs.windows(2) {
            assert!(w[0].arrival_us <= w[1].arrival_us);
        }
        for r in &reqs {
            assert!((16..=1024).contains(&r.prompt_len));
            assert!((8..=256).contains(&r.output_len));
        }
    }

    #[test]
    fn mean_interarrival_matches_rate() {
        let cfg = TrafficConfig {
            arrival_rate_per_s: 10.0,
            num_requests: 4000,
            ..TrafficConfig::default()
        };
        let reqs = generate_requests(&cfg);
        let span_s = reqs.last().unwrap().arrival_us as f64 / 1e6;
        let measured = reqs.len() as f64 / span_s;
        assert!((measured - 10.0).abs() < 1.0, "measured rate {measured}");
    }

    #[test]
    fn zipf_skews_lengths_short() {
        let cfg = TrafficConfig {
            num_requests: 2000,
            ..TrafficConfig::default()
        };
        let reqs = generate_requests(&cfg);
        let short = reqs.iter().filter(|r| r.prompt_len < 80).count();
        assert!(
            short * 2 > reqs.len(),
            "most prompts should be short under Zipf, got {short}/{}",
            reqs.len()
        );
    }
}
