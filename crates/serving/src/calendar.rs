//! Indexed event calendar: the dispatch structure of the serving engine.
//!
//! The PR-5 engine kept pending dispatches in a
//! `BTreeMap<(u64, u64), Job>` and popped the first entry each loop
//! iteration. That is O(log n) too, but with heavy constants (pointer-chasing
//! node allocations, one allocation per insert) and — more importantly — it
//! offers no cheap way to *peek* the next deadline without materializing an
//! iterator. The calendar replaces it with a binary min-heap keyed
//! `(time, seq)`, the classic discrete-event-simulation structure: push and
//! pop are O(log n) on a flat `Vec`, peek is O(1), and a million in-flight
//! events fit in one contiguous allocation.
//!
//! **Ordering contract.** Keys must be unique across live entries (the
//! engine keys by `(submitted_us, request id)`, and a job is popped before
//! it can be re-inserted, so uniqueness holds by construction). Under that
//! contract the heap pops in exactly ascending key order — byte-identical
//! to iterating the old `BTreeMap` — which is what lets the golden tests in
//! `tests/golden_report.rs` pin the refactor to bit-for-bit equivalence.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One calendar entry: a `(time, seq)` key and its payload. Ordering looks
/// at the key only, so the payload needs no `Ord`.
#[derive(Debug, Clone)]
struct Entry<T> {
    key: (u64, u64),
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, the calendar pops min first.
        other.key.cmp(&self.key)
    }
}

/// A min-ordered event calendar keyed `(time, seq)`.
///
/// `time` is whatever integer clock the caller uses (the serving engine
/// uses microseconds); `seq` breaks ties deterministically (the engine uses
/// the request id). See the module docs for the key-uniqueness contract.
#[derive(Debug, Clone)]
pub struct EventCalendar<T> {
    heap: BinaryHeap<Entry<T>>,
}

impl<T> EventCalendar<T> {
    /// An empty calendar.
    pub fn new() -> Self {
        EventCalendar {
            heap: BinaryHeap::new(),
        }
    }

    /// An empty calendar with room for `n` events before reallocating —
    /// use when the event count is known up front (e.g. one per request).
    pub fn with_capacity(n: usize) -> Self {
        EventCalendar {
            heap: BinaryHeap::with_capacity(n),
        }
    }

    /// Schedule `payload` at `(time, seq)`.
    pub fn push(&mut self, time: u64, seq: u64, payload: T) {
        self.heap.push(Entry {
            key: (time, seq),
            payload,
        });
    }

    /// The earliest key, without removing it.
    pub fn peek_key(&self) -> Option<(u64, u64)> {
        self.heap.peek().map(|e| e.key)
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<((u64, u64), T)> {
        self.heap.pop().map(|e| (e.key, e.payload))
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the calendar is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventCalendar<T> {
    fn default() -> Self {
        EventCalendar::new()
    }
}

impl<T> FromIterator<((u64, u64), T)> for EventCalendar<T> {
    fn from_iter<I: IntoIterator<Item = ((u64, u64), T)>>(iter: I) -> Self {
        let mut cal = EventCalendar::new();
        for ((time, seq), payload) in iter {
            cal.push(time, seq, payload);
        }
        cal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    #[test]
    fn pops_in_ascending_key_order() {
        let mut cal = EventCalendar::new();
        cal.push(30, 1, "c");
        cal.push(10, 2, "a");
        cal.push(10, 7, "b");
        cal.push(50, 0, "d");
        assert_eq!(cal.peek_key(), Some((10, 2)));
        assert_eq!(cal.pop(), Some(((10, 2), "a")));
        assert_eq!(cal.pop(), Some(((10, 7), "b")));
        assert_eq!(cal.pop(), Some(((30, 1), "c")));
        assert_eq!(cal.pop(), Some(((50, 0), "d")));
        assert_eq!(cal.pop(), None);
        assert!(cal.is_empty());
    }

    #[test]
    fn matches_btreemap_on_a_seeded_bulk_load() {
        let mut state = 0xC0FF_EE42u64;
        let mut cal = EventCalendar::with_capacity(10_000);
        let mut tree: BTreeMap<(u64, u64), u64> = BTreeMap::new();
        for seq in 0..10_000u64 {
            let t = splitmix(&mut state) % 1_000_000;
            let v = splitmix(&mut state);
            cal.push(t, seq, v);
            tree.insert((t, seq), v);
        }
        assert_eq!(cal.len(), tree.len());
        for (key, value) in tree {
            assert_eq!(cal.pop(), Some((key, value)));
        }
        assert!(cal.pop().is_none());
    }

    #[test]
    fn matches_btreemap_under_interleaved_push_and_pop() {
        // The engine's actual access pattern: pop the earliest event, maybe
        // re-schedule work later (strictly later key — uniqueness holds).
        let mut state = 7u64;
        let mut cal = EventCalendar::new();
        let mut tree: BTreeMap<(u64, u64), u64> = BTreeMap::new();
        let mut seq = 0u64;
        for round in 0..5_000 {
            if round % 3 != 2 || tree.is_empty() {
                let t = splitmix(&mut state) % 100_000;
                tree.insert((t, seq), seq);
                cal.push(t, seq, seq);
                seq += 1;
            } else {
                let first = *tree.keys().next().unwrap();
                let expect = tree.remove(&first).unwrap();
                assert_eq!(cal.pop(), Some((first, expect)));
                if expect.is_multiple_of(2) {
                    // Requeue with a bumped time, like a parked retry.
                    let t = first.0 + 1 + splitmix(&mut state) % 1_000;
                    tree.insert((t, seq), seq);
                    cal.push(t, seq, seq);
                    seq += 1;
                }
            }
        }
        while let Some((key, value)) = cal.pop() {
            assert_eq!(tree.remove(&key), Some(value));
        }
        assert!(tree.is_empty());
    }

    #[test]
    fn from_iterator_collects_and_orders() {
        let cal: EventCalendar<usize> = [((5, 0), 50usize), ((1, 1), 10), ((3, 0), 30)]
            .into_iter()
            .collect();
        assert_eq!(cal.len(), 3);
        let order: Vec<usize> = std::iter::from_fn({
            let mut c = cal;
            move || c.pop().map(|(_, v)| v)
        })
        .collect();
        assert_eq!(order, vec![10, 30, 50]);
    }
}
