//! Serving-layer errors.

use gaudi_graph::GraphError;
use gaudi_hw::fault::FaultError;
use gaudi_hw::memory::OutOfMemory;

/// Anything that can go wrong while setting up or running a serving
/// simulation.
#[derive(Debug)]
pub enum ServingError {
    /// A phase graph failed to build or compile.
    Graph(GraphError),
    /// The model weights alone exceed device HBM.
    WeightsDontFit(OutOfMemory),
    /// A single request can never fit on the device (prompt + output KV
    /// larger than HBM minus weights), so no amount of queueing helps.
    RequestTooLarge {
        /// Offending request id.
        id: u64,
        /// Its total token footprint.
        tokens: usize,
        /// The largest admissible footprint.
        max_tokens: u64,
    },
    /// Configuration rejected before simulation (empty trace, zero batch…).
    InvalidConfig(String),
    /// KV bookkeeping went inconsistent: a release without a matching
    /// reservation (double free, unknown request id, or more tokens than
    /// the request ever held). Always a scheduler bug, never a workload
    /// condition — surfaced instead of silently eating into the resident
    /// weights the way a saturating free would.
    KvAccounting(String),
    /// The fault plan is malformed (unknown device, bad factor…).
    Fault(FaultError),
    /// The fault plan kills every replica while work is still outstanding,
    /// so graceful degradation has nowhere left to re-queue.
    AllReplicasDead {
        /// Requests orphaned with no surviving replica to take them.
        unserved: usize,
    },
}

impl std::fmt::Display for ServingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServingError::Graph(e) => write!(f, "phase graph error: {e}"),
            ServingError::WeightsDontFit(e) => write!(f, "model weights do not fit HBM: {e}"),
            ServingError::RequestTooLarge {
                id,
                tokens,
                max_tokens,
            } => write!(
                f,
                "request {id} needs {tokens} KV tokens but the device fits at most {max_tokens}"
            ),
            ServingError::InvalidConfig(msg) => write!(f, "invalid serving config: {msg}"),
            ServingError::KvAccounting(msg) => write!(f, "KV accounting error: {msg}"),
            ServingError::Fault(e) => write!(f, "invalid fault plan: {e}"),
            ServingError::AllReplicasDead { unserved } => write!(
                f,
                "every replica is killed by the fault plan with {unserved} requests unserved"
            ),
        }
    }
}

impl std::error::Error for ServingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServingError::Graph(e) => Some(e),
            ServingError::WeightsDontFit(e) => Some(e),
            ServingError::Fault(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for ServingError {
    fn from(e: GraphError) -> Self {
        ServingError::Graph(e)
    }
}

impl From<FaultError> for ServingError {
    fn from(e: FaultError) -> Self {
        ServingError::Fault(e)
    }
}
