//! Serving-side fault handling: jobs, retries, and orphan re-dispatch.
//!
//! The hardware layer says *what* fails ([`gaudi_hw::FaultPlan`]); this
//! module says what the scheduler does about it. When a replica dies, every
//! request it had not finished — in-flight, queued, or not yet arrived —
//! becomes an **orphan**: a [`Job`] whose `submitted_us` is bumped to the
//! failure time plus its backoff delay and whose retry count is
//! incremented. The engine's event loop re-dispatches orphans *live*, onto
//! whichever replicas are up when the backoff expires — round-robin or
//! least-loaded, per the [`RedistributionPolicy`] — so a replica that
//! restarts mid-run takes new work the moment it is back. Without KV
//! checkpointing, tokens the dead card had already generated are lost and
//! regenerated from scratch — exactly the goodput cost the availability
//! metrics in [`crate::ServingReport`] quantify. With a
//! [`CheckpointPolicy`](crate::CheckpointPolicy), an orphan carries the
//! generated-token count of its last host-side snapshot
//! ([`Job::checkpointed_tokens`]), and the retry restores that many tokens
//! over DMA instead of re-running prefill plus the snapshotted decode
//! steps.

use crate::request::Request;

/// One scheduling attempt of a request on a particular replica.
///
/// A fresh job's `submitted_us` equals the request's arrival; a re-queued
/// job's is the failure time of the replica that dropped it. Queue time is
/// measured from `submitted_us` (time spent waiting on the serving
/// replica); TTFT is always measured from the request's *original* arrival,
/// so retries show up as tail latency, not as bookkeeping resets.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// The underlying request (arrival, prompt, output length).
    pub req: Request,
    /// When this attempt entered its replica's admission queue, µs.
    pub submitted_us: u64,
    /// Completed (failed) scheduling attempts before this one.
    pub retries: u32,
    /// Generated tokens captured by the request's last KV snapshot, if its
    /// previous attempt was checkpointed before the replica died. Zero for
    /// fresh jobs and for orphans that never reached a checkpoint: the
    /// attempt recomputes from scratch.
    pub checkpointed_tokens: usize,
}

impl Job {
    /// A first attempt: submitted at the request's own arrival time.
    pub fn fresh(req: Request) -> Self {
        Job {
            submitted_us: req.arrival_us,
            retries: 0,
            checkpointed_tokens: 0,
            req,
        }
    }

    /// Submission time of this attempt, ms.
    pub fn submitted_ms(&self) -> f64 {
        self.submitted_us as f64 / 1e3
    }

    /// The next attempt after a replica failure at `at_ms`: re-queued at
    /// the failure time (never before the request's own arrival), with the
    /// retry count bumped.
    pub fn requeued(mut self, at_ms: f64) -> Self {
        let at_us = (at_ms * 1e3).ceil() as u64;
        self.submitted_us = self.req.arrival_us.max(at_us);
        self.retries += 1;
        self
    }
}

/// How orphaned jobs from a dead replica spread over the live replicas
/// when their backoff expires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RedistributionPolicy {
    /// Cycle through live replicas in device order, one orphan each — the
    /// stateless default, mirroring the fresh-arrival round-robin.
    #[default]
    RoundRobin,
    /// Send each orphan to the live replica with the least outstanding
    /// token work at dispatch time, ties broken by lowest device index.
    /// Deterministic and load-aware.
    LeastLoaded,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, arrival_us: u64, tokens: usize) -> Request {
        Request {
            id,
            arrival_us,
            prompt_len: tokens,
            output_len: 1,
        }
    }

    #[test]
    fn requeue_bumps_submission_and_retries() {
        let j = Job::fresh(req(0, 5_000, 8));
        assert_eq!(j.submitted_us, 5_000);
        assert_eq!(j.retries, 0);
        let r = j.requeued(10.5);
        assert_eq!(r.submitted_us, 10_500);
        assert_eq!(r.retries, 1);
        assert_eq!(r.checkpointed_tokens, 0, "no snapshot unless one is set");
        // Requeue time never precedes the request's own arrival.
        let early = Job::fresh(req(1, 9_000, 8)).requeued(2.0);
        assert_eq!(early.submitted_us, 9_000);
    }
}
