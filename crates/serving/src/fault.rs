//! Serving-side fault handling: jobs, retries, and orphan redistribution.
//!
//! The hardware layer says *what* fails ([`gaudi_hw::FaultPlan`]); this
//! module says what the scheduler does about it. When a replica dies, every
//! request it had not finished — in-flight, queued, or not yet arrived —
//! becomes an **orphan**: a [`Job`] whose `submitted_us` is bumped to the
//! failure time and whose retry count is incremented. Orphans are then
//! redistributed across the surviving replicas under a configurable
//! [`RedistributionPolicy`], and the survivors are re-simulated with the
//! augmented queues. Tokens the dead card had already generated are lost
//! and regenerated from scratch (the simulator models no KV-cache
//! migration), which is exactly the goodput cost the availability metrics
//! in [`crate::ServingReport`] quantify.

use crate::request::Request;

/// One scheduling attempt of a request on a particular replica.
///
/// A fresh job's `submitted_us` equals the request's arrival; a re-queued
/// job's is the failure time of the replica that dropped it. Queue time is
/// measured from `submitted_us` (time spent waiting on the serving
/// replica); TTFT is always measured from the request's *original* arrival,
/// so retries show up as tail latency, not as bookkeeping resets.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// The underlying request (arrival, prompt, output length).
    pub req: Request,
    /// When this attempt entered its replica's admission queue, µs.
    pub submitted_us: u64,
    /// Completed (failed) scheduling attempts before this one.
    pub retries: u32,
}

impl Job {
    /// A first attempt: submitted at the request's own arrival time.
    pub fn fresh(req: Request) -> Self {
        Job {
            submitted_us: req.arrival_us,
            retries: 0,
            req,
        }
    }

    /// Submission time of this attempt, ms.
    pub fn submitted_ms(&self) -> f64 {
        self.submitted_us as f64 / 1e3
    }

    /// The next attempt after a replica failure at `at_ms`: re-queued at
    /// the failure time (never before the request's own arrival), with the
    /// retry count bumped.
    pub fn requeued(mut self, at_ms: f64) -> Self {
        let at_us = (at_ms * 1e3).ceil() as u64;
        self.submitted_us = self.req.arrival_us.max(at_us);
        self.retries += 1;
        self
    }
}

/// How orphaned jobs from a dead replica spread over the survivors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RedistributionPolicy {
    /// Cycle through surviving replicas in device order, one orphan each —
    /// the stateless default, mirroring the initial round-robin sharding.
    #[default]
    RoundRobin,
    /// Send each orphan to the survivor with the least total assigned
    /// token work (initial shard + orphans accepted so far), ties broken
    /// by lowest device index. Deterministic and load-aware.
    LeastLoaded,
}

/// Assign `orphans` to `survivors` (device indices of replicas the fault
/// plan never kills). `shard_load_tokens[d]` is replica `d`'s total
/// originally-assigned token work, which seeds the [`LeastLoaded`]
/// accounting. Returns `(survivor_index, jobs)` pairs; orphans are
/// processed in `(submitted_us, id)` order so the result is a pure
/// function of its inputs.
///
/// [`LeastLoaded`]: RedistributionPolicy::LeastLoaded
pub(crate) fn redistribute(
    mut orphans: Vec<Job>,
    survivors: &[usize],
    shard_load_tokens: &[usize],
    policy: RedistributionPolicy,
) -> Vec<(usize, Vec<Job>)> {
    assert!(!survivors.is_empty(), "redistribute needs a survivor");
    orphans.sort_by_key(|j| (j.submitted_us, j.req.id));
    let mut out: Vec<(usize, Vec<Job>)> = survivors.iter().map(|&d| (d, Vec::new())).collect();
    match policy {
        RedistributionPolicy::RoundRobin => {
            let n = out.len();
            for (i, j) in orphans.into_iter().enumerate() {
                out[i % n].1.push(j);
            }
        }
        RedistributionPolicy::LeastLoaded => {
            let mut load: Vec<usize> = survivors.iter().map(|&d| shard_load_tokens[d]).collect();
            for j in orphans {
                let pick = (0..load.len())
                    .min_by_key(|&i| (load[i], survivors[i]))
                    .expect("survivors is non-empty");
                load[pick] += j.req.total_tokens();
                out[pick].1.push(j);
            }
        }
    }
    out.retain(|(_, jobs)| !jobs.is_empty());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, arrival_us: u64, tokens: usize) -> Request {
        Request {
            id,
            arrival_us,
            prompt_len: tokens,
            output_len: 1,
        }
    }

    #[test]
    fn requeue_bumps_submission_and_retries() {
        let j = Job::fresh(req(0, 5_000, 8));
        assert_eq!(j.submitted_us, 5_000);
        assert_eq!(j.retries, 0);
        let r = j.requeued(10.5);
        assert_eq!(r.submitted_us, 10_500);
        assert_eq!(r.retries, 1);
        // Requeue time never precedes the request's own arrival.
        let early = Job::fresh(req(1, 9_000, 8)).requeued(2.0);
        assert_eq!(early.submitted_us, 9_000);
    }

    #[test]
    fn round_robin_cycles_survivors_in_order() {
        let orphans: Vec<Job> = (0..5).map(|i| Job::fresh(req(i, i * 100, 10))).collect();
        let out = redistribute(
            orphans,
            &[0, 2],
            &[0, 0, 0],
            RedistributionPolicy::RoundRobin,
        );
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, 0);
        assert_eq!(
            out[0].1.iter().map(|j| j.req.id).collect::<Vec<_>>(),
            [0, 2, 4]
        );
        assert_eq!(out[1].0, 2);
        assert_eq!(
            out[1].1.iter().map(|j| j.req.id).collect::<Vec<_>>(),
            [1, 3]
        );
    }

    #[test]
    fn least_loaded_balances_token_work() {
        // Replica 0 starts much heavier than replica 1: orphans (11 tokens
        // each) flow to 1 until its load crosses 0's, then spill back.
        let orphans: Vec<Job> = (0..5).map(|i| Job::fresh(req(i, 0, 10))).collect();
        let out = redistribute(
            orphans,
            &[0, 1],
            &[100, 60],
            RedistributionPolicy::LeastLoaded,
        );
        let ids = |d: usize| -> Vec<u64> {
            out.iter()
                .find(|(s, _)| *s == d)
                .map(|(_, js)| js.iter().map(|j| j.req.id).collect())
                .unwrap_or_default()
        };
        assert_eq!(ids(1), [0, 1, 2, 3], "first four close the 40-token gap");
        assert_eq!(ids(0), [4], "the fifth spills back to replica 0");
    }

    #[test]
    fn redistribution_is_deterministic() {
        let orphans: Vec<Job> = (0..7)
            .map(|i| Job::fresh(req(i, (7 - i) * 10, 5)))
            .collect();
        for policy in [
            RedistributionPolicy::RoundRobin,
            RedistributionPolicy::LeastLoaded,
        ] {
            let a = redistribute(orphans.clone(), &[1, 3], &[9, 9, 9, 9], policy);
            let b = redistribute(orphans.clone(), &[1, 3], &[9, 9, 9, 9], policy);
            assert_eq!(a, b);
        }
    }
}
