//! A small discrete-event simulation kernel.
//!
//! Two pieces:
//!
//! * [`EventQueue`] — a time-ordered event heap with stable FIFO ordering for
//!   simultaneous events (so simulation runs are deterministic), and
//! * [`Timeline`] — per-engine availability tracking used by the schedulers:
//!   an operation scheduled on an engine starts no earlier than both its
//!   dependencies and the engine's previous work.

use crate::engine::EngineId;
use crate::topology::DeviceId;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

/// An event scheduled at a simulated time.
#[derive(Debug, Clone)]
struct Scheduled<T> {
    time: f64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Scheduled<T> {}
impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap; ties broken by insertion order (FIFO).
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic min-time event queue.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Scheduled<T>>,
    seq: u64,
    now: f64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0.0,
        }
    }

    /// Current simulated time (the time of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedule `payload` at absolute time `time` (must not be in the past).
    pub fn schedule_at(&mut self, time: f64, payload: T) {
        debug_assert!(time >= self.now, "cannot schedule into the past");
        self.heap.push(Scheduled {
            time,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
    }

    /// Schedule `payload` after a delay from the current time.
    pub fn schedule_in(&mut self, delay: f64, payload: T) {
        self.schedule_at(self.now + delay, payload);
    }

    /// Pop the earliest event, advancing simulated time.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        self.heap.pop().map(|s| {
            self.now = s.time;
            (s.time, s.payload)
        })
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Per-engine availability tracker.
#[derive(Debug, Default, Clone)]
pub struct Timeline {
    free_at: HashMap<EngineId, f64>,
}

impl Timeline {
    /// Fresh timeline with every engine free at time zero.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// When the engine is next free.
    pub fn free_at(&self, engine: EngineId) -> f64 {
        self.free_at.get(&engine).copied().unwrap_or(0.0)
    }

    /// Reserve the engine for `duration` starting no earlier than
    /// `earliest_start`; returns the actual `(start, end)` interval.
    pub fn reserve(&mut self, engine: EngineId, earliest_start: f64, duration: f64) -> (f64, f64) {
        let start = self.free_at(engine).max(earliest_start);
        let end = start + duration;
        self.free_at.insert(engine, end);
        (start, end)
    }

    /// The time at which every engine is idle (overall makespan).
    pub fn makespan(&self) -> f64 {
        self.free_at.values().copied().fold(0.0, f64::max)
    }
}

/// Per-`(device, engine)` availability tracker — the multi-card analogue of
/// [`Timeline`], sharing one simulated clock across all cards of a box.
#[derive(Debug, Default, Clone)]
pub struct BoxTimeline {
    free_at: HashMap<(DeviceId, EngineId), f64>,
}

impl BoxTimeline {
    /// Fresh timeline with every engine on every device free at time zero.
    pub fn new() -> Self {
        BoxTimeline::default()
    }

    /// When `engine` on `device` is next free.
    pub fn free_at(&self, device: DeviceId, engine: EngineId) -> f64 {
        self.free_at.get(&(device, engine)).copied().unwrap_or(0.0)
    }

    /// Reserve `engine` on `device` for `duration` starting no earlier than
    /// `earliest_start`; returns the actual `(start, end)` interval.
    pub fn reserve(
        &mut self,
        device: DeviceId,
        engine: EngineId,
        earliest_start: f64,
        duration: f64,
    ) -> (f64, f64) {
        let start = self.free_at(device, engine).max(earliest_start);
        let end = start + duration;
        self.free_at.insert((device, engine), end);
        (start, end)
    }

    /// The time at which every engine on every device is idle.
    pub fn makespan(&self) -> f64 {
        self.free_at.values().copied().fold(0.0, f64::max)
    }

    /// The time at which every engine on one device is idle.
    pub fn device_makespan(&self, device: DeviceId) -> f64 {
        self.free_at
            .iter()
            .filter(|((d, _), _)| *d == device)
            .map(|(_, t)| *t)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_queue_orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule_at(5.0, "c");
        q.schedule_at(1.0, "a");
        q.schedule_at(3.0, "b");
        assert_eq!(q.pop().unwrap(), (1.0, "a"));
        assert_eq!(q.pop().unwrap(), (3.0, "b"));
        assert_eq!(q.now(), 3.0);
        assert_eq!(q.pop().unwrap(), (5.0, "c"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule_at(2.0, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule_at(10.0, "first");
        q.pop();
        q.schedule_in(5.0, "second");
        assert_eq!(q.pop().unwrap(), (15.0, "second"));
    }

    #[test]
    fn timeline_serializes_same_engine() {
        let mut t = Timeline::new();
        let (s1, e1) = t.reserve(EngineId::Mme, 0.0, 10.0);
        let (s2, e2) = t.reserve(EngineId::Mme, 0.0, 5.0);
        assert_eq!((s1, e1), (0.0, 10.0));
        assert_eq!((s2, e2), (10.0, 15.0));
    }

    #[test]
    fn timeline_engines_are_independent() {
        let mut t = Timeline::new();
        t.reserve(EngineId::Mme, 0.0, 10.0);
        let (s, e) = t.reserve(EngineId::TpcCluster, 0.0, 4.0);
        assert_eq!((s, e), (0.0, 4.0));
        assert_eq!(t.makespan(), 10.0);
    }

    #[test]
    fn timeline_respects_dependencies() {
        let mut t = Timeline::new();
        t.reserve(EngineId::Mme, 0.0, 3.0);
        // Dependency ready at 8 -> starts at 8 even though engine free at 3.
        let (s, _) = t.reserve(EngineId::Mme, 8.0, 1.0);
        assert_eq!(s, 8.0);
    }

    #[test]
    fn box_timeline_isolates_devices() {
        let mut t = BoxTimeline::new();
        t.reserve(DeviceId(0), EngineId::Mme, 0.0, 10.0);
        // The same engine on another card is independent...
        let (s, e) = t.reserve(DeviceId(1), EngineId::Mme, 0.0, 4.0);
        assert_eq!((s, e), (0.0, 4.0));
        // ...but the same (device, engine) pair serializes.
        let (s2, _) = t.reserve(DeviceId(0), EngineId::Mme, 0.0, 1.0);
        assert_eq!(s2, 10.0);
        assert_eq!(t.makespan(), 11.0);
        assert_eq!(t.device_makespan(DeviceId(1)), 4.0);
    }
}
