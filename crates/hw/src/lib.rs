//! # gaudi-hw
//!
//! An analytic + discrete-event model of the Habana Gaudi (HLS-1) training
//! processor, built to reproduce the performance study of Zhang et al.
//! (SC-W 2023) without access to the physical hardware.
//!
//! The model follows the architecture described in §2.1–2.2 of the paper:
//!
//! * a **Matrix Multiplication Engine (MME)** — the only unit the SynapseAI
//!   compiler maps matrix products to (Table 1),
//! * a cluster of **eight Tensor Processing Cores (TPC)** — VLIW SIMD
//!   processors with 2048-bit vectors that execute every non-GEMM operator,
//! * **DMA** engines moving data between the engines through shared memory,
//! * **HBM** (32 GB on-chip) and **RoCE v2** scale-out ports.
//!
//! Free constants are calibrated against the paper's own measurements
//! (Table 2 and Figures 4–7); see [`config::GaudiConfig`] and `DESIGN.md` §3.
//!
//! Times are expressed in nanoseconds (`f64`) throughout.

pub mod config;
pub mod des;
pub mod engine;
pub mod fault;
pub mod memory;
pub mod mme;
pub mod roce;
pub mod topology;
pub mod tpc_cost;

pub use config::GaudiConfig;
pub use engine::EngineId;
pub use fault::{CardFailure, FaultCampaign, FaultError, FaultPlan, LinkDegradation, Slowdown};
pub use mme::MmeModel;
pub use topology::{DeviceId, Link, SwitchTier, Topology};
pub use tpc_cost::{TpcCostModel, TpcOpClass};

/// Convert nanoseconds to milliseconds.
pub fn ns_to_ms(ns: f64) -> f64 {
    ns / 1.0e6
}

/// TFLOPS achieved for `flops` floating-point operations in `ns` nanoseconds.
pub fn tflops(flops: f64, ns: f64) -> f64 {
    if ns <= 0.0 {
        0.0
    } else {
        flops / ns / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        assert_eq!(ns_to_ms(2_000_000.0), 2.0);
        // 1e12 flops in 1e6 ns = 1e6 flops/ns = 1e6 GFLOP/s = 1000 TFLOPS.
        assert_eq!(tflops(1.0e12, 1.0e6), 1000.0);
        assert_eq!(tflops(1.0e12, 0.0), 0.0);
    }
}
