//! Memory-system model: HBM capacity accounting and DMA transfer timing.
//!
//! The paper notes (§3.4) that "due to limited GAUDI memory" the end-to-end
//! LLM runs had to shrink the batch size to 8 at sequence length 2048. The
//! capacity tracker lets the reproduction make the same check, and the DMA
//! model times the engine-to-engine tensor movements visible as the DMA lane
//! in Figures 4–9.

use crate::config::MemoryConfig;

/// DMA transfer timing.
#[derive(Debug, Clone)]
pub struct DmaModel {
    cfg: MemoryConfig,
}

impl DmaModel {
    /// Build a model from a configuration.
    pub fn new(cfg: MemoryConfig) -> Self {
        DmaModel { cfg }
    }

    /// Time to move `bytes` between engines through shared memory, ns.
    pub fn transfer_time_ns(&self, bytes: u64) -> f64 {
        // GB/s == bytes/ns.
        bytes as f64 / self.cfg.dma_bandwidth_gbps + self.cfg.dma_latency_ns
    }
}

/// Tracks simulated HBM allocations against the 32 GB device capacity.
#[derive(Debug, Clone)]
pub struct HbmTracker {
    capacity: u64,
    allocated: u64,
    peak: u64,
}

/// Error returned when an allocation exceeds device memory — the condition
/// that forced the paper's batch-size-8 LLM configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes requested by the failing allocation — the caller's actual
    /// ask, never inflated by allocator-internal reserves.
    pub requested: u64,
    /// Bytes still free at the time of the request.
    pub available: u64,
    /// Bytes the allocator held back on top of the request (e.g. a paged
    /// pool's growth watermark for already-admitted sequences). Zero for
    /// plain capacity trackers. Operators sizing a device from this error
    /// need `requested + held_back - available` more bytes.
    pub held_back: u64,
}

impl OutOfMemory {
    /// An over-capacity request with no allocator-internal reserve.
    pub fn new(requested: u64, available: u64) -> Self {
        OutOfMemory {
            requested,
            available,
            held_back: 0,
        }
    }
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "device out of memory: requested {} MiB, only {} MiB free",
            self.requested >> 20,
            self.available >> 20
        )?;
        if self.held_back > 0 {
            write!(
                f,
                " ({} KiB held back as growth watermark)",
                self.held_back >> 10
            )?;
        }
        Ok(())
    }
}

impl std::error::Error for OutOfMemory {}

impl HbmTracker {
    /// Tracker for a device with the given configuration.
    pub fn new(cfg: &MemoryConfig) -> Self {
        HbmTracker {
            capacity: cfg.hbm_capacity_bytes,
            allocated: 0,
            peak: 0,
        }
    }

    /// Attempt to allocate `bytes`; fails like the real allocator would.
    pub fn allocate(&mut self, bytes: u64) -> Result<(), OutOfMemory> {
        let available = self.capacity - self.allocated;
        if bytes > available {
            return Err(OutOfMemory::new(bytes, available));
        }
        self.allocated += bytes;
        self.peak = self.peak.max(self.allocated);
        Ok(())
    }

    /// Release `bytes`.
    ///
    /// Freeing more than is allocated is a caller accounting bug: it
    /// panics in debug builds (the same contract `BlockPool::dealloc`
    /// uses) and saturates to zero in release builds rather than
    /// wrapping. Callers with untrusted inputs — like the serving
    /// `KvAccountant::release` — must bounds-check before freeing.
    pub fn free(&mut self, bytes: u64) {
        debug_assert!(
            bytes <= self.allocated,
            "HBM underflow: freeing {bytes} B with only {} B allocated",
            self.allocated
        );
        self.allocated = self.allocated.saturating_sub(bytes);
    }

    /// Currently allocated bytes.
    pub fn allocated(&self) -> u64 {
        self.allocated
    }

    /// High-water mark of the allocation history.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Device capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dma_time_has_latency_floor() {
        let d = DmaModel::new(MemoryConfig::default());
        let t0 = d.transfer_time_ns(0);
        assert_eq!(t0, MemoryConfig::default().dma_latency_ns);
        // 1 GB at 1000 GB/s = 1 ms + latency.
        let t = d.transfer_time_ns(1 << 30);
        assert!((t - (1.073_741_824e6 + 2000.0)).abs() < 1.0);
    }

    #[test]
    fn hbm_allocates_and_frees() {
        let mut h = HbmTracker::new(&MemoryConfig::default());
        h.allocate(16 << 30).unwrap();
        assert_eq!(h.allocated(), 16 << 30);
        h.free(8 << 30);
        assert_eq!(h.allocated(), 8 << 30);
        assert_eq!(h.peak(), 16 << 30);
    }

    #[test]
    fn hbm_rejects_oversubscription() {
        let mut h = HbmTracker::new(&MemoryConfig::default());
        h.allocate(30 << 30).unwrap();
        let err = h.allocate(4 << 30).unwrap_err();
        assert_eq!(err.requested, 4 << 30);
        assert_eq!(err.available, 2 << 30);
        // State unchanged after a failed allocation.
        assert_eq!(h.allocated(), 30 << 30);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "HBM underflow")]
    fn free_underflow_is_a_debug_assertion() {
        // Regression: `free` used to saturate silently, so a double free
        // ate into someone else's reservation without a trace.
        let mut h = HbmTracker::new(&MemoryConfig::default());
        h.allocate(1024).unwrap();
        h.free(1 << 30);
    }

    #[test]
    fn free_of_exactly_the_allocation_is_fine() {
        let mut h = HbmTracker::new(&MemoryConfig::default());
        h.allocate(1024).unwrap();
        h.free(1024);
        assert_eq!(h.allocated(), 0);
        assert_eq!(h.peak(), 1024);
    }
}
