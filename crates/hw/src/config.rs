//! Hardware configuration and the HLS-1 calibration used by the paper.

/// Matrix Multiplication Engine parameters.
///
/// Rather than modelling the (undisclosed) systolic-array micro-architecture,
/// the MME is characterized by its *sustained* GEMM throughput plus two
/// launch-granularity constants. All three are calibrated directly against
/// the paper's Table 2 (see `DESIGN.md` §3).
#[derive(Debug, Clone)]
pub struct MmeConfig {
    /// Sustained large-GEMM throughput in TFLOPS (Table 2 F_MME plateau).
    pub peak_tflops: f64,
    /// Fixed per-launch software/descriptor overhead in nanoseconds.
    pub launch_overhead_ns: f64,
    /// Minimum wall time of any MME kernel, modelling pipeline fill/drain
    /// of the systolic array on small problems, in nanoseconds.
    pub min_kernel_ns: f64,
}

impl Default for MmeConfig {
    fn default() -> Self {
        // Calibrated so a batch-64 square bmm reproduces Table 2:
        //   size  128 -> ~2.35 TFLOPS (min-kernel bound)
        //   size  256 -> ~11.7 TFLOPS (overhead amortizing)
        //   size >=512 -> ~14.4-14.6 TFLOPS (plateau)
        MmeConfig {
            peak_tflops: 14.8,
            launch_overhead_ns: 36_000.0,
            min_kernel_ns: 114_000.0,
        }
    }
}

/// Tensor Processing Core cluster parameters (§2.2 of the paper).
#[derive(Debug, Clone)]
pub struct TpcConfig {
    /// Number of TPC cores on the die (eight on Gaudi 1).
    pub num_cores: usize,
    /// SIMD vector width in bits (2048 on Gaudi).
    pub simd_width_bits: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Scalar local memory per core, bytes (1 KB).
    pub scalar_local_mem_bytes: usize,
    /// Vector local memory per core, bytes (80 KB).
    pub vector_local_mem_bytes: usize,
    /// Cycles for one 2048-bit global-memory vector access ("on average every
    /// four cycles can accommodate the loading or writing of a 2048-bit
    /// vector to the global memory").
    pub global_access_cycles: f64,
    /// Extra cycles per element for special functions (exp/log/sqrt/tanh),
    /// which expand to multi-instruction sequences on the VPU.
    pub special_func_cycles: f64,
    /// Multiplier charged to reduction passes: reductions serialize lanes and
    /// "are not well-suited for SIMD architectures like TPC" (§3.3).
    pub reduction_penalty: f64,
    /// Fixed per-kernel launch overhead in nanoseconds.
    pub launch_overhead_ns: f64,
    /// Sustained matmul throughput of the whole cluster in TFLOPS when
    /// running the custom bmm kernel of Table 2.
    pub matmul_peak_tflops: f64,
}

impl Default for TpcConfig {
    fn default() -> Self {
        TpcConfig {
            num_cores: 8,
            simd_width_bits: 2048,
            clock_ghz: 1.35,
            scalar_local_mem_bytes: 1 << 10,
            vector_local_mem_bytes: 80 << 10,
            global_access_cycles: 4.0,
            special_func_cycles: 20.0,
            reduction_penalty: 4.0,
            launch_overhead_ns: 24_000.0,
            // Table 2 F_TPC plateau (~2.2 TFLOPS).
            matmul_peak_tflops: 2.23,
        }
    }
}

/// Memory-system parameters.
#[derive(Debug, Clone)]
pub struct MemoryConfig {
    /// HBM capacity in bytes (32 GB per Gaudi, §3.1).
    pub hbm_capacity_bytes: u64,
    /// HBM bandwidth in GB/s.
    pub hbm_bandwidth_gbps: f64,
    /// Shared SRAM size in bytes (24 MB on Gaudi 1).
    pub sram_bytes: u64,
    /// DMA sustained bandwidth between engines through shared memory, GB/s.
    pub dma_bandwidth_gbps: f64,
    /// DMA programming latency per transfer in nanoseconds.
    pub dma_latency_ns: f64,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig {
            hbm_capacity_bytes: 32 << 30,
            hbm_bandwidth_gbps: 1000.0,
            sram_bytes: 24 << 20,
            dma_bandwidth_gbps: 1000.0,
            dma_latency_ns: 2_000.0,
        }
    }
}

/// Scale-out networking parameters (on-chip RoCE v2, §2.1).
#[derive(Debug, Clone)]
pub struct RoceConfig {
    /// Number of 100 GbE ports dedicated to scale-out (10 on Gaudi 1).
    pub num_ports: usize,
    /// Per-port bandwidth in Gbit/s.
    pub port_gbit_per_s: f64,
    /// Per-message latency in nanoseconds.
    pub message_latency_ns: f64,
}

impl Default for RoceConfig {
    fn default() -> Self {
        RoceConfig {
            num_ports: 10,
            port_gbit_per_s: 100.0,
            message_latency_ns: 3_000.0,
        }
    }
}

/// Full single-processor configuration.
///
/// `GaudiConfig::hls1()` is the configuration used throughout the
/// reproduction: one Gaudi of the HLS-1 system the paper benchmarks.
#[derive(Debug, Clone, Default)]
pub struct GaudiConfig {
    pub mme: MmeConfig,
    pub tpc: TpcConfig,
    pub memory: MemoryConfig,
    pub roce: RoceConfig,
    /// One-time Graph-Compiler recompilation stall charged when an operator
    /// without a pre-compiled SynapseAI recipe (e.g. GLU, §3.3) is first
    /// executed, in nanoseconds.
    pub recompile_stall_ns: f64,
}

impl GaudiConfig {
    /// The calibrated HLS-1 single-Gaudi configuration.
    pub fn hls1() -> Self {
        GaudiConfig {
            recompile_stall_ns: 5_500_000.0,
            ..Default::default()
        }
    }

    /// SIMD lanes per TPC core for 4-byte elements.
    pub fn tpc_f32_lanes(&self) -> usize {
        self.tpc.simd_width_bits / 32
    }

    /// Aggregate TPC cluster element throughput for 1-cycle f32 vector ops,
    /// in elements per nanosecond.
    pub fn tpc_elems_per_ns(&self) -> f64 {
        (self.tpc.num_cores * self.tpc_f32_lanes()) as f64 * self.tpc.clock_ghz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hls1_matches_datasheet_facts() {
        let c = GaudiConfig::hls1();
        assert_eq!(c.tpc.num_cores, 8);
        assert_eq!(c.tpc.simd_width_bits, 2048);
        assert_eq!(c.memory.hbm_capacity_bytes, 32 << 30);
        assert_eq!(c.tpc.scalar_local_mem_bytes, 1024);
        assert_eq!(c.tpc.vector_local_mem_bytes, 80 * 1024);
        assert_eq!(c.tpc_f32_lanes(), 64);
    }

    #[test]
    fn tpc_cluster_rate() {
        let c = GaudiConfig::hls1();
        // 8 cores * 64 lanes * 1.35 GHz = 691.2 elements/ns
        assert!((c.tpc_elems_per_ns() - 691.2).abs() < 1e-6);
    }

    #[test]
    fn config_clones() {
        let c = GaudiConfig::hls1();
        let cloned = c.clone();
        assert!((cloned.mme.peak_tflops - c.mme.peak_tflops).abs() < f64::EPSILON);
    }
}
