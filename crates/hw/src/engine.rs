//! Identifiers for the compute and transfer engines on the die.

/// A hardware execution engine, matching the lanes of a SynapseAI profiler
/// trace (Figures 4–9 of the paper show one row per engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EngineId {
    /// The Matrix Multiplication Engine.
    Mme,
    /// The TPC cluster, scheduled as one unit by the graph compiler (kernels
    /// internally split their index space over the eight cores).
    TpcCluster,
    /// A direct-memory-access channel shuttling tensors between engines
    /// through shared memory.
    Dma(u8),
    /// The host CPU issuing work (used for recompilation stalls).
    Host,
    /// The scale-out NIC (the bonded RoCE v2 ports) — carries inter-device
    /// collective traffic in multi-card simulations.
    Nic,
}

impl EngineId {
    /// Short label used in trace rendering.
    pub fn label(&self) -> String {
        match self {
            EngineId::Mme => "MME".to_string(),
            EngineId::TpcCluster => "TPC".to_string(),
            EngineId::Dma(i) => format!("DMA{i}"),
            EngineId::Host => "HOST".to_string(),
            EngineId::Nic => "NIC".to_string(),
        }
    }

    /// All engines that appear in a single-Gaudi trace, in display order.
    pub fn trace_order() -> Vec<EngineId> {
        vec![
            EngineId::Mme,
            EngineId::TpcCluster,
            EngineId::Dma(0),
            EngineId::Nic,
            EngineId::Host,
        ]
    }

    /// Whether this engine performs numeric computation (vs. data movement
    /// or control).
    pub fn is_compute(&self) -> bool {
        matches!(self, EngineId::Mme | EngineId::TpcCluster)
    }
}

impl std::fmt::Display for EngineId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(EngineId::Mme.label(), "MME");
        assert_eq!(EngineId::TpcCluster.label(), "TPC");
        assert_eq!(EngineId::Dma(3).label(), "DMA3");
        assert_eq!(EngineId::Host.to_string(), "HOST");
        assert_eq!(EngineId::Nic.label(), "NIC");
    }

    #[test]
    fn compute_classification() {
        assert!(EngineId::Mme.is_compute());
        assert!(EngineId::TpcCluster.is_compute());
        assert!(!EngineId::Dma(0).is_compute());
        assert!(!EngineId::Host.is_compute());
        assert!(!EngineId::Nic.is_compute());
    }

    #[test]
    fn trace_order_starts_with_mme() {
        assert_eq!(EngineId::trace_order()[0], EngineId::Mme);
    }
}
