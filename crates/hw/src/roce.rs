//! Scale-out communication model over the on-chip RoCE v2 engines.
//!
//! The paper runs on one Gaudi of an HLS-1 (which houses eight), and lists
//! scale-out as the architecture's headline feature (§2.1). This module
//! models ring all-reduce over the 10×100 GbE ports so the reproduction can
//! extend the study with a data-parallel scaling experiment (DESIGN.md A4).

use crate::config::RoceConfig;

/// Ring all-reduce timing model across `world_size` Gaudi processors.
#[derive(Debug, Clone)]
pub struct RoceModel {
    cfg: RoceConfig,
}

impl RoceModel {
    /// Build a model from a configuration.
    pub fn new(cfg: RoceConfig) -> Self {
        RoceModel { cfg }
    }

    /// Aggregate scale-out bandwidth in bytes per nanosecond.
    pub fn aggregate_bandwidth(&self) -> f64 {
        // Gbit/s -> bytes/ns: 100 Gbit/s = 12.5 GB/s = 12.5 bytes/ns.
        self.cfg.num_ports as f64 * self.cfg.port_gbit_per_s / 8.0
    }

    /// Time for a ring all-reduce of `bytes` across `world_size` devices, ns.
    ///
    /// Classic cost: `2 (P-1)/P * bytes / bw` plus per-step message latency.
    pub fn allreduce_time_ns(&self, bytes: u64, world_size: usize) -> f64 {
        if world_size <= 1 {
            return 0.0;
        }
        let p = world_size as f64;
        let steps = 2.0 * (p - 1.0);
        let volume = 2.0 * (p - 1.0) / p * bytes as f64;
        volume / self.aggregate_bandwidth() + steps * self.cfg.message_latency_ns
    }

    /// Data-parallel scaling efficiency: compute time per step divided by
    /// compute plus (un-overlapped) all-reduce of the gradients.
    pub fn scaling_efficiency(&self, step_compute_ns: f64, grad_bytes: u64, world: usize) -> f64 {
        let comm = self.allreduce_time_ns(grad_bytes, world);
        step_compute_ns / (step_compute_ns + comm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> RoceModel {
        RoceModel::new(RoceConfig::default())
    }

    #[test]
    fn single_device_is_free() {
        assert_eq!(model().allreduce_time_ns(1 << 30, 1), 0.0);
    }

    #[test]
    fn aggregate_bandwidth_is_125_bytes_per_ns() {
        assert!((model().aggregate_bandwidth() - 125.0).abs() < 1e-9);
    }

    #[test]
    fn allreduce_grows_with_world_size_volume_factor() {
        let m = model();
        let t2 = m.allreduce_time_ns(1 << 30, 2);
        let t8 = m.allreduce_time_ns(1 << 30, 8);
        assert!(t8 > t2);
        // Volume factor tends to 2x bytes as P grows; never more than 2x+latency.
        let bytes = (1u64 << 30) as f64;
        assert!(t8 < 2.0 * bytes / m.aggregate_bandwidth() + 14.0 * 3000.0 + 1.0);
    }

    #[test]
    fn efficiency_decreases_with_world_size() {
        let m = model();
        let step = 5.0e6; // 5 ms of compute
        let grads = 500 << 20; // 500 MB of gradients
        let e2 = m.scaling_efficiency(step, grads, 2);
        let e8 = m.scaling_efficiency(step, grads, 8);
        assert!(e2 > e8);
        assert!(e8 > 0.0 && e2 < 1.0);
    }
}
