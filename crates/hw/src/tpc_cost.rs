//! TPC cluster cost model.
//!
//! The TPC is a VLIW SIMD processor: 2048-bit vectors (64 f32 lanes), eight
//! cores, and global-memory tensor access points that sustain one 2048-bit
//! vector per four cycles per core (§2.2). From those datasheet facts this
//! model derives two aggregate rates:
//!
//! * a **compute rate** of `cores × lanes × clock` single-cycle vector
//!   element-operations per nanosecond, and
//! * a **global-memory rate** of `cores × 256 B / 4 cycles × clock` bytes per
//!   nanosecond.
//!
//! Each kernel launch costs `max(compute, memory) + launch_overhead`.
//! Two workload-dependent penalties are calibrated against the paper's §3.3
//! observations: a multi-cycle cost for special functions (exp/log/...) and a
//! serialization penalty for reductions, which together make softmax the TPC
//! bottleneck at long sequence lengths (Figure 4).

use crate::config::TpcConfig;

/// Classes of TPC work with distinct per-element costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TpcOpClass {
    /// Simple element-wise arithmetic (add, mul, scale, compare): the
    /// embedded factor is cycles per element (usually 1–2).
    Elementwise(f64),
    /// Special-function evaluation (exp, log, sqrt, tanh, sigmoid, erf).
    SpecialFunc,
    /// A reduction pass over elements (sum/max/mean); poorly suited to SIMD.
    Reduction,
    /// Numerically-stable softmax over rows: max-reduce, exp, sum-reduce,
    /// normalize.
    Softmax,
    /// Layer normalization over rows: two reduction passes plus scale/shift.
    LayerNorm,
    /// Dense matmul forced onto the TPC (the Table 2 comparison kernel).
    MatmulOnTpc,
}

/// Analytic TPC-cluster timing model.
#[derive(Debug, Clone)]
pub struct TpcCostModel {
    cfg: TpcConfig,
}

impl TpcCostModel {
    /// Build a model from a configuration.
    pub fn new(cfg: TpcConfig) -> Self {
        TpcCostModel { cfg }
    }

    /// Single-cycle vector element-operations per nanosecond, cluster-wide.
    pub fn compute_rate(&self) -> f64 {
        let lanes = self.cfg.simd_width_bits / 32;
        (self.cfg.num_cores * lanes) as f64 * self.cfg.clock_ghz
    }

    /// Global-memory bytes per nanosecond, cluster-wide.
    pub fn memory_rate(&self) -> f64 {
        let bytes_per_access = (self.cfg.simd_width_bits / 8) as f64;
        self.cfg.num_cores as f64 * bytes_per_access / self.cfg.global_access_cycles
            * self.cfg.clock_ghz
    }

    /// Core launch + roofline time for a kernel touching `elems` elements at
    /// `cycles_per_elem` compute cost and moving `bytes` through global
    /// memory.
    pub fn kernel_time_ns(&self, elems: f64, cycles_per_elem: f64, bytes: f64) -> f64 {
        let compute = elems * cycles_per_elem / self.compute_rate();
        let memory = bytes / self.memory_rate();
        compute.max(memory) + self.cfg.launch_overhead_ns
    }

    /// Cycles per element for an op class, given the row length for
    /// row-structured ops.
    pub fn cycles_per_elem(&self, class: TpcOpClass) -> f64 {
        match class {
            TpcOpClass::Elementwise(c) => c,
            TpcOpClass::SpecialFunc => self.cfg.special_func_cycles,
            TpcOpClass::Reduction => self.cfg.reduction_penalty,
            // max-pass + sum-pass (each a reduction) + exp (special) + scale.
            TpcOpClass::Softmax => {
                2.0 * self.cfg.reduction_penalty + self.cfg.special_func_cycles + 1.0
            }
            // mean + variance reductions + normalize/scale/shift (~4 cycles).
            TpcOpClass::LayerNorm => 2.0 * self.cfg.reduction_penalty + 4.0,
            TpcOpClass::MatmulOnTpc => {
                // handled by matmul_time_ns; nominal 1 to keep the API total.
                1.0
            }
        }
    }

    /// Execution time of a kernel of the given class over `elems` elements
    /// with `bytes` of global traffic.
    pub fn class_time_ns(&self, class: TpcOpClass, elems: f64, bytes: f64) -> f64 {
        self.kernel_time_ns(elems, self.cycles_per_elem(class), bytes)
    }

    /// Execution time of a dense matmul forced onto the TPC cluster (the
    /// custom bmm kernel of Table 2).
    pub fn matmul_time_ns(&self, flops: f64) -> f64 {
        let peak_flops_per_ns = self.cfg.matmul_peak_tflops * 1000.0;
        flops / peak_flops_per_ns + self.cfg.launch_overhead_ns
    }

    /// Effective matmul throughput in TFLOPS for a batched GEMM on the TPC.
    pub fn matmul_effective_tflops(&self, batch: usize, m: usize, k: usize, n: usize) -> f64 {
        let flops = 2.0 * batch as f64 * m as f64 * k as f64 * n as f64;
        crate::tflops(flops, self.matmul_time_ns(flops))
    }

    /// The configured launch overhead in nanoseconds.
    pub fn launch_overhead_ns(&self) -> f64 {
        self.cfg.launch_overhead_ns
    }

    /// The underlying configuration.
    pub fn config(&self) -> &TpcConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TpcCostModel {
        TpcCostModel::new(TpcConfig::default())
    }

    #[test]
    fn datasheet_rates() {
        let m = model();
        assert!((m.compute_rate() - 691.2).abs() < 1e-9);
        assert!((m.memory_rate() - 691.2).abs() < 1e-9);
    }

    #[test]
    fn elementwise_is_memory_bound_for_f32() {
        // 1 cycle/elem compute but 8 bytes/elem traffic => memory bound.
        let m = model();
        let elems = 1.0e8;
        let t = m.kernel_time_ns(elems, 1.0, elems * 8.0);
        let compute_only = elems / m.compute_rate() + m.launch_overhead_ns();
        assert!(t > compute_only);
    }

    #[test]
    fn softmax_costs_more_than_elementwise() {
        let m = model();
        let e = m.class_time_ns(TpcOpClass::Elementwise(1.0), 1.0e9, 0.0);
        let s = m.class_time_ns(TpcOpClass::Softmax, 1.0e9, 0.0);
        assert!(
            s > 10.0 * (e - m.launch_overhead_ns()),
            "softmax must dominate"
        );
    }

    #[test]
    fn table2_tpc_throughput_plateau() {
        let m = model();
        let f128 = m.matmul_effective_tflops(64, 128, 128, 128);
        let f512 = m.matmul_effective_tflops(64, 512, 512, 512);
        let f2048 = m.matmul_effective_tflops(64, 2048, 2048, 2048);
        // Paper: 1.86 -> 2.13 -> 2.19 TFLOPS.
        assert!((f128 - 1.86).abs() < 0.3, "{f128}");
        assert!((f512 - 2.13).abs() < 0.2, "{f512}");
        assert!((f2048 - 2.19).abs() < 0.1, "{f2048}");
        assert!(f128 < f512 && f512 <= f2048 + 1e-9);
    }

    #[test]
    fn mme_vs_tpc_gemm_gap_is_about_7x() {
        // §3.2: "computational performance of TPC is up to 7x lower than MME".
        let tpc = model();
        let mme = crate::mme::MmeModel::new(crate::config::MmeConfig::default());
        let flops = 2.0 * 64.0 * 1024f64.powi(3);
        let ratio = tpc.matmul_time_ns(flops) / mme.time_for_flops(flops);
        assert!(ratio > 5.5 && ratio < 8.0, "ratio={ratio}");
    }

    #[test]
    fn launch_overhead_floor() {
        let m = model();
        assert!(m.kernel_time_ns(0.0, 1.0, 0.0) >= m.launch_overhead_ns());
    }

    #[test]
    fn layernorm_cheaper_than_softmax() {
        let m = model();
        assert!(m.cycles_per_elem(TpcOpClass::LayerNorm) < m.cycles_per_elem(TpcOpClass::Softmax));
    }
}
