//! Multi-card topology: device identities and the inter-device link model.
//!
//! The paper profiles a single Gaudi of an HLS-1 box, but the architecture's
//! headline feature is scale-out: every chip integrates 10×100 GbE RoCE v2
//! ports (§2.1). This module gives the rest of the workspace an explicit
//! notion of *which* card work runs on ([`DeviceId`]) and what moving bytes
//! between cards costs ([`Link`], [`Topology`]).
//!
//! The link parameters are **RoCE-plausible defaults derived from the spec
//! sheet** (aggregate port bandwidth, a microsecond-scale message latency) —
//! they are *not* measured in the source paper, which never runs multi-card.
//! Collective timings use the classic ring/tree closed forms, matching the
//! single-ring model in [`crate::roce::RoceModel`].

use crate::config::{GaudiConfig, RoceConfig};
use crate::fault::LinkDegradation;

/// Identity of one Gaudi card in a multi-card box.
///
/// Device 0 is the implicit card of every single-device simulation; traces
/// and plans produced by the single-device paths tag their work with
/// `DeviceId(0)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct DeviceId(pub usize);

impl DeviceId {
    /// Zero-based index of the device.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl std::fmt::Display for DeviceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "D{}", self.0)
    }
}

/// Point-to-point link cost model: a fixed per-message latency plus a
/// bandwidth term. All times in nanoseconds, bandwidth in bytes/ns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// Per-message latency in nanoseconds.
    pub latency_ns: f64,
    /// Sustained bandwidth in bytes per nanosecond (= GB/s).
    pub bandwidth_bytes_per_ns: f64,
}

impl Link {
    /// Derive a link from the RoCE port configuration: all ports bonded into
    /// one logical pipe (10 × 100 Gbit/s = 125 bytes/ns for HLS-1 defaults).
    pub fn from_roce(roce: &RoceConfig) -> Self {
        Link {
            latency_ns: roce.message_latency_ns,
            bandwidth_bytes_per_ns: roce.num_ports as f64 * roce.port_gbit_per_s / 8.0,
        }
    }

    /// Time to move `bytes` over the link, ns.
    pub fn time_ns(&self, bytes: u64) -> f64 {
        self.latency_ns + bytes as f64 / self.bandwidth_bytes_per_ns
    }
}

impl Default for Link {
    fn default() -> Self {
        Link::from_roce(&RoceConfig::default())
    }
}

/// A box of `devices` identical Gaudi cards joined by uniform [`Link`]s
/// (the all-to-all RoCE fabric of an HLS-1).
///
/// Collective timings use the standard closed forms for ring collectives
/// (bandwidth-optimal) and a binomial tree for broadcast; every method
/// returns `0.0` for a single-device topology.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    /// Number of cards in the box.
    pub devices: usize,
    /// The uniform inter-card link (nominal, before degradation).
    pub link: Link,
    /// Links running below nominal bandwidth (fault injection). Ring
    /// collectives pace to the slowest participating link, so every
    /// collective closed form divides bandwidth by
    /// [`bottleneck_factor`](Self::bottleneck_factor).
    pub link_degradations: Vec<LinkDegradation>,
}

impl Topology {
    /// One card, no interconnect (all collective times are zero).
    pub fn single() -> Self {
        Topology {
            devices: 1,
            link: Link::default(),
            link_degradations: Vec::new(),
        }
    }

    /// An HLS-1-like box of `devices` cards using the RoCE link defaults
    /// from `cfg`.
    pub fn hls1_box(cfg: &GaudiConfig, devices: usize) -> Self {
        assert!(devices >= 1, "topology needs at least one device");
        Topology {
            devices,
            link: Link::from_roce(&cfg.roce),
            link_degradations: Vec::new(),
        }
    }

    /// The same box with `degradations` applied on top of any existing
    /// ones (a fault plan repricing the fabric).
    pub fn degraded(mut self, degradations: &[LinkDegradation]) -> Self {
        self.link_degradations.extend_from_slice(degradations);
        self
    }

    /// The slowest registered link factor, in `(0, 1]`. The modelled
    /// fabric is uniform and every collective rings through all cards, so
    /// one slow edge paces the whole collective — the classic
    /// slowest-member property of ring algorithms.
    pub fn bottleneck_factor(&self) -> f64 {
        self.link_degradations
            .iter()
            .map(|l| l.factor.clamp(f64::MIN_POSITIVE, 1.0))
            .fold(1.0, f64::min)
    }

    /// Bandwidth the collectives actually see: nominal × bottleneck.
    pub fn effective_bandwidth_bytes_per_ns(&self) -> f64 {
        self.link.bandwidth_bytes_per_ns * self.bottleneck_factor()
    }

    /// All device ids in the box, in order.
    pub fn device_ids(&self) -> Vec<DeviceId> {
        (0..self.devices).map(DeviceId).collect()
    }

    /// Ring all-reduce of `bytes` (the full, unsharded payload) across the
    /// box: `2·(P-1)/P · bytes / bw` plus `2·(P-1)` message latencies.
    pub fn allreduce_time_ns(&self, bytes: u64) -> f64 {
        if self.devices <= 1 {
            return 0.0;
        }
        let p = self.devices as f64;
        let volume = 2.0 * (p - 1.0) / p * bytes as f64;
        volume / self.effective_bandwidth_bytes_per_ns() + 2.0 * (p - 1.0) * self.link.latency_ns
    }

    /// Ring all-gather producing `bytes` of gathered output per device:
    /// `(P-1)/P · bytes / bw` plus `(P-1)` message latencies.
    pub fn allgather_time_ns(&self, bytes: u64) -> f64 {
        if self.devices <= 1 {
            return 0.0;
        }
        let p = self.devices as f64;
        let volume = (p - 1.0) / p * bytes as f64;
        volume / self.effective_bandwidth_bytes_per_ns() + (p - 1.0) * self.link.latency_ns
    }

    /// Ring reduce-scatter over `bytes` of input per device (same wire cost
    /// shape as all-gather).
    pub fn reducescatter_time_ns(&self, bytes: u64) -> f64 {
        self.allgather_time_ns(bytes)
    }

    /// Binomial-tree broadcast of `bytes` from one root: `ceil(log2 P)`
    /// store-and-forward steps.
    pub fn broadcast_time_ns(&self, bytes: u64) -> f64 {
        if self.devices <= 1 {
            return 0.0;
        }
        let steps = (self.devices as f64).log2().ceil();
        steps * (self.link.latency_ns + bytes as f64 / self.effective_bandwidth_bytes_per_ns())
    }
}

impl Default for Topology {
    fn default() -> Self {
        Topology::single()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn box4() -> Topology {
        Topology::hls1_box(&GaudiConfig::hls1(), 4)
    }

    #[test]
    fn device_id_displays_and_orders() {
        assert_eq!(DeviceId(3).to_string(), "D3");
        assert!(DeviceId(0) < DeviceId(1));
        assert_eq!(DeviceId::default(), DeviceId(0));
    }

    #[test]
    fn link_from_hls1_roce_defaults() {
        let l = Link::from_roce(&RoceConfig::default());
        assert!((l.bandwidth_bytes_per_ns - 125.0).abs() < 1e-9);
        assert_eq!(l.latency_ns, 3000.0);
        // 1 MiB over 125 B/ns ≈ 8.4 µs + latency.
        let t = l.time_ns(1 << 20);
        assert!(t > 8000.0 && t < 12_000.0);
    }

    #[test]
    fn single_device_collectives_are_free() {
        let t = Topology::single();
        assert_eq!(t.allreduce_time_ns(1 << 30), 0.0);
        assert_eq!(t.allgather_time_ns(1 << 30), 0.0);
        assert_eq!(t.reducescatter_time_ns(1 << 30), 0.0);
        assert_eq!(t.broadcast_time_ns(1 << 30), 0.0);
    }

    #[test]
    fn allreduce_matches_roce_model() {
        // Same closed form as RoceModel::allreduce_time_ns.
        let cfg = GaudiConfig::hls1();
        let t = Topology::hls1_box(&cfg, 8);
        let legacy = crate::roce::RoceModel::new(cfg.roce);
        let bytes = 64 << 20;
        assert!((t.allreduce_time_ns(bytes) - legacy.allreduce_time_ns(bytes, 8)).abs() < 1e-6);
    }

    #[test]
    fn allreduce_costs_about_twice_allgather() {
        let t = box4();
        let bytes = 256 << 20;
        let ar = t.allreduce_time_ns(bytes);
        let ag = t.allgather_time_ns(bytes);
        assert!(ar > 1.9 * ag && ar < 2.1 * ag);
        assert_eq!(ag, t.reducescatter_time_ns(bytes));
    }

    #[test]
    fn broadcast_scales_logarithmically() {
        let cfg = GaudiConfig::hls1();
        let t2 = Topology::hls1_box(&cfg, 2).broadcast_time_ns(1 << 20);
        let t8 = Topology::hls1_box(&cfg, 8).broadcast_time_ns(1 << 20);
        assert!((t8 / t2 - 3.0).abs() < 1e-9); // log2(8) / log2(2)
    }

    #[test]
    fn degraded_links_slow_collectives_by_the_bottleneck() {
        let clean = box4();
        let bytes = 256u64 << 20;
        let degraded = clean
            .clone()
            .degraded(&[LinkDegradation {
                a: DeviceId(1),
                b: DeviceId(2),
                factor: 0.5,
                window: None,
            }])
            .degraded(&[LinkDegradation {
                a: DeviceId(0),
                b: DeviceId(1),
                factor: 0.8,
                window: None,
            }]);
        assert_eq!(degraded.bottleneck_factor(), 0.5);
        // Bandwidth term doubles; latency term is unchanged.
        let lat = 2.0 * 3.0 * clean.link.latency_ns;
        let clean_bw = clean.allreduce_time_ns(bytes) - lat;
        let slow_bw = degraded.allreduce_time_ns(bytes) - lat;
        assert!((slow_bw / clean_bw - 2.0).abs() < 1e-9);
        assert!(degraded.allgather_time_ns(bytes) > clean.allgather_time_ns(bytes));
        assert!(degraded.broadcast_time_ns(bytes) > clean.broadcast_time_ns(bytes));
    }

    #[test]
    fn unit_factor_degradation_is_a_noop() {
        let clean = box4();
        let degraded = clean.clone().degraded(&[LinkDegradation {
            a: DeviceId(2),
            b: DeviceId(3),
            factor: 1.0,
            window: None,
        }]);
        assert_eq!(degraded.bottleneck_factor(), 1.0);
        let bytes = 64u64 << 20;
        assert_eq!(
            degraded.allreduce_time_ns(bytes),
            clean.allreduce_time_ns(bytes)
        );
    }

    #[test]
    fn device_ids_enumerate_in_order() {
        assert_eq!(
            box4().device_ids(),
            vec![DeviceId(0), DeviceId(1), DeviceId(2), DeviceId(3)]
        );
    }
}
