//! Multi-card topology: device identities and the inter-device link model.
//!
//! The paper profiles a single Gaudi of an HLS-1 box, but the architecture's
//! headline feature is scale-out: every chip integrates 10×100 GbE RoCE v2
//! ports (§2.1). This module gives the rest of the workspace an explicit
//! notion of *which* card work runs on ([`DeviceId`]) and what moving bytes
//! between cards costs ([`Link`], [`Topology`]).
//!
//! The link parameters are **RoCE-plausible defaults derived from the spec
//! sheet** (aggregate port bandwidth, a microsecond-scale message latency) —
//! they are *not* measured in the source paper, which never runs multi-card.
//! Collective timings use the classic ring/tree closed forms, matching the
//! single-ring model in [`crate::roce::RoceModel`].

use crate::config::{GaudiConfig, RoceConfig};
use crate::fault::LinkDegradation;

/// Identity of one Gaudi card in a multi-card box.
///
/// Device 0 is the implicit card of every single-device simulation; traces
/// and plans produced by the single-device paths tag their work with
/// `DeviceId(0)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct DeviceId(pub usize);

impl DeviceId {
    /// Zero-based index of the device.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl std::fmt::Display for DeviceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "D{}", self.0)
    }
}

/// Point-to-point link cost model: a fixed per-message latency plus a
/// bandwidth term. All times in nanoseconds, bandwidth in bytes/ns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// Per-message latency in nanoseconds.
    pub latency_ns: f64,
    /// Sustained bandwidth in bytes per nanosecond (= GB/s).
    pub bandwidth_bytes_per_ns: f64,
}

impl Link {
    /// Derive a link from the RoCE port configuration: all ports bonded into
    /// one logical pipe (10 × 100 Gbit/s = 125 bytes/ns for HLS-1 defaults).
    pub fn from_roce(roce: &RoceConfig) -> Self {
        Link {
            latency_ns: roce.message_latency_ns,
            bandwidth_bytes_per_ns: roce.num_ports as f64 * roce.port_gbit_per_s / 8.0,
        }
    }

    /// Time to move `bytes` over the link, ns.
    pub fn time_ns(&self, bytes: u64) -> f64 {
        self.latency_ns + bytes as f64 / self.bandwidth_bytes_per_ns
    }
}

impl Default for Link {
    fn default() -> Self {
        Link::from_roce(&RoceConfig::default())
    }
}

/// The inter-box switch tier of a hierarchical (cluster) topology.
///
/// HLS-1 boxes attach to the datacenter fabric through their scale-out
/// RoCE ports; a leaf/spine switch tier joins the boxes. The tier is
/// modelled by two numbers: how much slower the uplinks are than the
/// intra-box fabric (`oversubscription` — the classic ratio of injection
/// bandwidth to uplink share; 1.0 means a non-blocking fabric) and the
/// extra store-and-forward latency each switch traversal adds
/// (`hop_latency_ns`). A box-to-box message crosses two switch hops
/// (source leaf up, destination leaf down).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchTier {
    /// Ratio of intra-box injection bandwidth to the uplink share a card
    /// actually gets through the switch tier; `>= 1.0`. Inter-box
    /// bandwidth is `link.bandwidth / oversubscription`.
    pub oversubscription: f64,
    /// Extra latency of one switch traversal, ns. An inter-box message
    /// pays two (leaf up + leaf down) on top of the NIC link latency.
    pub hop_latency_ns: f64,
}

impl SwitchTier {
    /// A non-blocking tier: full bandwidth through the switches, with a
    /// default per-hop traversal cost of 500 ns per switch.
    pub fn nonblocking() -> Self {
        SwitchTier {
            oversubscription: 1.0,
            hop_latency_ns: 500.0,
        }
    }

    /// The same tier with a different oversubscription factor.
    pub fn oversubscribed(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 1.0,
            "oversubscription must be >= 1.0, got {factor}"
        );
        self.oversubscription = factor;
        self
    }
}

/// A box of `devices` identical Gaudi cards joined by uniform [`Link`]s
/// (the all-to-all RoCE fabric of an HLS-1), or — in the hierarchical
/// form built by [`Topology::cluster`] — several such boxes joined by an
/// inter-box [`SwitchTier`].
///
/// Collective timings use the standard closed forms for ring collectives
/// (bandwidth-optimal) and a binomial tree for broadcast; every method
/// returns `0.0` for a single-device topology. When the ring spans boxes,
/// the closed forms route through the bottleneck tier: the slowest ring
/// edge is an inter-box edge, so bandwidth divides by the switch
/// oversubscription and every step pays two extra switch hops of latency
/// (the slowest-member property of ring algorithms, one tier up).
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    /// Number of cards in the box (flat form) or in the whole cluster
    /// (hierarchical form).
    pub devices: usize,
    /// The uniform inter-card link (nominal, before degradation).
    pub link: Link,
    /// Links running below nominal bandwidth (fault injection). Ring
    /// collectives pace to the slowest participating link, so every
    /// collective closed form divides bandwidth by
    /// [`bottleneck_factor`](Self::bottleneck_factor).
    pub link_degradations: Vec<LinkDegradation>,
    /// Cards per box. Flat topologies put every card in one box
    /// (`cards_per_box == devices`); [`Topology::cluster`] sets the box
    /// size explicitly. Never zero.
    pub cards_per_box: usize,
    /// The inter-box switch tier, when the topology is hierarchical.
    /// `None` means all cards share one box-level fabric (the flat form).
    pub switch: Option<SwitchTier>,
}

impl Topology {
    /// One card, no interconnect (all collective times are zero).
    pub fn single() -> Self {
        Topology {
            devices: 1,
            link: Link::default(),
            link_degradations: Vec::new(),
            cards_per_box: 1,
            switch: None,
        }
    }

    /// An HLS-1-like box of `devices` cards using the RoCE link defaults
    /// from `cfg`.
    pub fn hls1_box(cfg: &GaudiConfig, devices: usize) -> Self {
        assert!(devices >= 1, "topology needs at least one device");
        Topology {
            devices,
            link: Link::from_roce(&cfg.roce),
            link_degradations: Vec::new(),
            cards_per_box: devices,
            switch: None,
        }
    }

    /// A flat sub-ring of `devices` cards carved out of this topology's
    /// fabric (same links, same degradations) — what a tensor-parallel
    /// group inside one box sees.
    pub fn subring(&self, devices: usize) -> Self {
        assert!(devices >= 1, "topology needs at least one device");
        Topology {
            devices,
            link: self.link,
            link_degradations: self.link_degradations.clone(),
            cards_per_box: devices,
            switch: None,
        }
    }

    /// A hierarchical cluster of `boxes` HLS-1-like boxes of
    /// `cards_per_box` cards each, joined by a leaf/spine switch tier
    /// oversubscribed by `oversubscription` (1.0 = non-blocking).
    ///
    /// Intra-box edges keep the full RoCE link; inter-box edges see
    /// `bandwidth / oversubscription` and pay two extra switch hops of
    /// latency per message.
    pub fn cluster(
        cfg: &GaudiConfig,
        boxes: usize,
        cards_per_box: usize,
        oversubscription: f64,
    ) -> Self {
        assert!(boxes >= 1, "cluster needs at least one box");
        assert!(cards_per_box >= 1, "boxes need at least one card");
        let switch = if boxes > 1 {
            Some(SwitchTier::nonblocking().oversubscribed(oversubscription))
        } else {
            None
        };
        Topology {
            devices: boxes * cards_per_box,
            link: Link::from_roce(&cfg.roce),
            link_degradations: Vec::new(),
            cards_per_box,
            switch,
        }
    }

    /// The same box with `degradations` applied on top of any existing
    /// ones (a fault plan repricing the fabric).
    pub fn degraded(mut self, degradations: &[LinkDegradation]) -> Self {
        self.link_degradations.extend_from_slice(degradations);
        self
    }

    /// The slowest registered link factor, in `(0, 1]`. The modelled
    /// fabric is uniform and every collective rings through all cards, so
    /// one slow edge paces the whole collective — the classic
    /// slowest-member property of ring algorithms.
    pub fn bottleneck_factor(&self) -> f64 {
        self.link_degradations
            .iter()
            .map(|l| l.factor.clamp(f64::MIN_POSITIVE, 1.0))
            .fold(1.0, f64::min)
    }

    /// Bandwidth the collectives actually see: nominal × bottleneck.
    pub fn effective_bandwidth_bytes_per_ns(&self) -> f64 {
        self.link.bandwidth_bytes_per_ns * self.bottleneck_factor()
    }

    /// All device ids in the box, in order.
    pub fn device_ids(&self) -> Vec<DeviceId> {
        (0..self.devices).map(DeviceId).collect()
    }

    /// Number of boxes the cards occupy (`ceil(devices / cards_per_box)`;
    /// 1 for every flat topology).
    pub fn boxes(&self) -> usize {
        self.devices.div_ceil(self.cards_per_box)
    }

    /// Zero-based index of the box holding `device`.
    pub fn box_of(&self, device: DeviceId) -> usize {
        device.0 / self.cards_per_box
    }

    /// Whether the device ring spans more than one box — i.e. whether
    /// collectives must route through the switch tier.
    pub fn spans_boxes(&self) -> bool {
        self.switch.is_some() && self.boxes() > 1
    }

    /// Per-step latency of the ring the collectives run on: the NIC link
    /// latency, plus two switch hops when the ring crosses boxes (a ring
    /// step is paced by its slowest edge, and with cards numbered box by
    /// box the slowest edge is a box-boundary edge).
    fn ring_step_latency_ns(&self) -> f64 {
        match (&self.switch, self.spans_boxes()) {
            (Some(tier), true) => self.link.latency_ns + 2.0 * tier.hop_latency_ns,
            _ => self.link.latency_ns,
        }
    }

    /// Bandwidth of the bottleneck tier the collectives pace to: the
    /// degraded intra-box bandwidth for one box, divided by the switch
    /// oversubscription when the ring crosses boxes.
    pub fn bottleneck_bandwidth_bytes_per_ns(&self) -> f64 {
        let intra = self.effective_bandwidth_bytes_per_ns();
        match (&self.switch, self.spans_boxes()) {
            (Some(tier), true) => intra / tier.oversubscription,
            _ => intra,
        }
    }

    /// NIC hops a message from `src` to `dst` traverses: 0 on-card, 1
    /// across the intra-box fabric, 3 through the switch tier (source NIC
    /// → leaf → leaf → destination NIC).
    pub fn hops(&self, src: DeviceId, dst: DeviceId) -> usize {
        if src == dst {
            0
        } else if self.box_of(src) == self.box_of(dst) {
            1
        } else {
            3
        }
    }

    /// Time to move `bytes` point-to-point from `src` to `dst`, priced per
    /// hop: intra-box transfers pay the NIC link; inter-box transfers pay
    /// the NIC link at the oversubscribed uplink bandwidth plus two switch
    /// traversals. `0.0` on-card.
    pub fn nic_transfer_time_ns(&self, src: DeviceId, dst: DeviceId, bytes: u64) -> f64 {
        match self.hops(src, dst) {
            0 => 0.0,
            1 => self.link.latency_ns + bytes as f64 / self.effective_bandwidth_bytes_per_ns(),
            _ => {
                let tier = self.switch.expect("inter-box hop count implies a switch");
                self.link.latency_ns
                    + 2.0 * tier.hop_latency_ns
                    + bytes as f64
                        / (self.effective_bandwidth_bytes_per_ns() / tier.oversubscription)
            }
        }
    }

    /// Time to ship `bytes` from one box to another through the switch
    /// tier (any cross-box card pair — the fabric is uniform). `0.0` when
    /// the topology has a single box.
    pub fn cross_box_transfer_ns(&self, bytes: u64) -> f64 {
        if !self.spans_boxes() {
            return 0.0;
        }
        self.nic_transfer_time_ns(DeviceId(0), DeviceId(self.cards_per_box), bytes)
    }

    /// Ring all-reduce of `bytes` (the full, unsharded payload) across the
    /// box: `2·(P-1)/P · bytes / bw` plus `2·(P-1)` message latencies.
    /// When the ring spans boxes, `bw` is the oversubscribed switch tier
    /// and each latency term includes the two switch hops.
    pub fn allreduce_time_ns(&self, bytes: u64) -> f64 {
        if self.devices <= 1 {
            return 0.0;
        }
        let p = self.devices as f64;
        let volume = 2.0 * (p - 1.0) / p * bytes as f64;
        volume / self.bottleneck_bandwidth_bytes_per_ns()
            + 2.0 * (p - 1.0) * self.ring_step_latency_ns()
    }

    /// Ring all-gather producing `bytes` of gathered output per device:
    /// `(P-1)/P · bytes / bw` plus `(P-1)` message latencies, through the
    /// bottleneck tier.
    pub fn allgather_time_ns(&self, bytes: u64) -> f64 {
        if self.devices <= 1 {
            return 0.0;
        }
        let p = self.devices as f64;
        let volume = (p - 1.0) / p * bytes as f64;
        volume / self.bottleneck_bandwidth_bytes_per_ns() + (p - 1.0) * self.ring_step_latency_ns()
    }

    /// Ring reduce-scatter over `bytes` of input per device (same wire cost
    /// shape as all-gather).
    pub fn reducescatter_time_ns(&self, bytes: u64) -> f64 {
        self.allgather_time_ns(bytes)
    }

    /// Binomial-tree broadcast of `bytes` from one root: `ceil(log2 P)`
    /// store-and-forward steps through the bottleneck tier.
    pub fn broadcast_time_ns(&self, bytes: u64) -> f64 {
        if self.devices <= 1 {
            return 0.0;
        }
        let steps = (self.devices as f64).log2().ceil();
        steps
            * (self.ring_step_latency_ns()
                + bytes as f64 / self.bottleneck_bandwidth_bytes_per_ns())
    }
}

impl Default for Topology {
    fn default() -> Self {
        Topology::single()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn box4() -> Topology {
        Topology::hls1_box(&GaudiConfig::hls1(), 4)
    }

    #[test]
    fn device_id_displays_and_orders() {
        assert_eq!(DeviceId(3).to_string(), "D3");
        assert!(DeviceId(0) < DeviceId(1));
        assert_eq!(DeviceId::default(), DeviceId(0));
    }

    #[test]
    fn link_from_hls1_roce_defaults() {
        let l = Link::from_roce(&RoceConfig::default());
        assert!((l.bandwidth_bytes_per_ns - 125.0).abs() < 1e-9);
        assert_eq!(l.latency_ns, 3000.0);
        // 1 MiB over 125 B/ns ≈ 8.4 µs + latency.
        let t = l.time_ns(1 << 20);
        assert!(t > 8000.0 && t < 12_000.0);
    }

    #[test]
    fn single_device_collectives_are_free() {
        let t = Topology::single();
        assert_eq!(t.allreduce_time_ns(1 << 30), 0.0);
        assert_eq!(t.allgather_time_ns(1 << 30), 0.0);
        assert_eq!(t.reducescatter_time_ns(1 << 30), 0.0);
        assert_eq!(t.broadcast_time_ns(1 << 30), 0.0);
    }

    #[test]
    fn allreduce_matches_roce_model() {
        // Same closed form as RoceModel::allreduce_time_ns.
        let cfg = GaudiConfig::hls1();
        let t = Topology::hls1_box(&cfg, 8);
        let legacy = crate::roce::RoceModel::new(cfg.roce);
        let bytes = 64 << 20;
        assert!((t.allreduce_time_ns(bytes) - legacy.allreduce_time_ns(bytes, 8)).abs() < 1e-6);
    }

    #[test]
    fn allreduce_costs_about_twice_allgather() {
        let t = box4();
        let bytes = 256 << 20;
        let ar = t.allreduce_time_ns(bytes);
        let ag = t.allgather_time_ns(bytes);
        assert!(ar > 1.9 * ag && ar < 2.1 * ag);
        assert_eq!(ag, t.reducescatter_time_ns(bytes));
    }

    #[test]
    fn broadcast_scales_logarithmically() {
        let cfg = GaudiConfig::hls1();
        let t2 = Topology::hls1_box(&cfg, 2).broadcast_time_ns(1 << 20);
        let t8 = Topology::hls1_box(&cfg, 8).broadcast_time_ns(1 << 20);
        assert!((t8 / t2 - 3.0).abs() < 1e-9); // log2(8) / log2(2)
    }

    #[test]
    fn degraded_links_slow_collectives_by_the_bottleneck() {
        let clean = box4();
        let bytes = 256u64 << 20;
        let degraded = clean
            .clone()
            .degraded(&[LinkDegradation {
                a: DeviceId(1),
                b: DeviceId(2),
                factor: 0.5,
                window: None,
            }])
            .degraded(&[LinkDegradation {
                a: DeviceId(0),
                b: DeviceId(1),
                factor: 0.8,
                window: None,
            }]);
        assert_eq!(degraded.bottleneck_factor(), 0.5);
        // Bandwidth term doubles; latency term is unchanged.
        let lat = 2.0 * 3.0 * clean.link.latency_ns;
        let clean_bw = clean.allreduce_time_ns(bytes) - lat;
        let slow_bw = degraded.allreduce_time_ns(bytes) - lat;
        assert!((slow_bw / clean_bw - 2.0).abs() < 1e-9);
        assert!(degraded.allgather_time_ns(bytes) > clean.allgather_time_ns(bytes));
        assert!(degraded.broadcast_time_ns(bytes) > clean.broadcast_time_ns(bytes));
    }

    #[test]
    fn unit_factor_degradation_is_a_noop() {
        let clean = box4();
        let degraded = clean.clone().degraded(&[LinkDegradation {
            a: DeviceId(2),
            b: DeviceId(3),
            factor: 1.0,
            window: None,
        }]);
        assert_eq!(degraded.bottleneck_factor(), 1.0);
        let bytes = 64u64 << 20;
        assert_eq!(
            degraded.allreduce_time_ns(bytes),
            clean.allreduce_time_ns(bytes)
        );
    }

    #[test]
    fn device_ids_enumerate_in_order() {
        assert_eq!(
            box4().device_ids(),
            vec![DeviceId(0), DeviceId(1), DeviceId(2), DeviceId(3)]
        );
    }

    #[test]
    fn flat_topologies_are_one_box() {
        let t = box4();
        assert_eq!(t.boxes(), 1);
        assert_eq!(t.cards_per_box, 4);
        assert!(t.switch.is_none());
        assert!(!t.spans_boxes());
        assert_eq!(t.box_of(DeviceId(3)), 0);
        assert_eq!(t.cross_box_transfer_ns(1 << 20), 0.0);
    }

    #[test]
    fn cluster_assigns_cards_to_boxes_in_id_order() {
        let c = Topology::cluster(&GaudiConfig::hls1(), 4, 8, 2.0);
        assert_eq!(c.devices, 32);
        assert_eq!(c.boxes(), 4);
        assert_eq!(c.box_of(DeviceId(0)), 0);
        assert_eq!(c.box_of(DeviceId(7)), 0);
        assert_eq!(c.box_of(DeviceId(8)), 1);
        assert_eq!(c.box_of(DeviceId(31)), 3);
        assert!(c.spans_boxes());
    }

    #[test]
    fn single_box_cluster_is_flat() {
        let flat = Topology::hls1_box(&GaudiConfig::hls1(), 8);
        let c = Topology::cluster(&GaudiConfig::hls1(), 1, 8, 4.0);
        assert!(c.switch.is_none(), "one box needs no switch tier");
        let bytes = 64u64 << 20;
        assert_eq!(c.allreduce_time_ns(bytes), flat.allreduce_time_ns(bytes));
        assert_eq!(c.broadcast_time_ns(bytes), flat.broadcast_time_ns(bytes));
    }

    #[test]
    fn hop_counts_price_the_tiers() {
        let c = Topology::cluster(&GaudiConfig::hls1(), 2, 4, 2.0);
        assert_eq!(c.hops(DeviceId(1), DeviceId(1)), 0);
        assert_eq!(c.hops(DeviceId(0), DeviceId(3)), 1);
        assert_eq!(c.hops(DeviceId(0), DeviceId(4)), 3);
        let bytes = 1u64 << 20;
        let intra = c.nic_transfer_time_ns(DeviceId(0), DeviceId(3), bytes);
        let inter = c.nic_transfer_time_ns(DeviceId(0), DeviceId(4), bytes);
        assert_eq!(c.nic_transfer_time_ns(DeviceId(2), DeviceId(2), bytes), 0.0);
        // Inter-box: two switch hops of latency and half the bandwidth.
        let tier = c.switch.unwrap();
        let expect =
            intra + 2.0 * tier.hop_latency_ns + bytes as f64 / c.link.bandwidth_bytes_per_ns;
        assert!((inter - expect).abs() < 1e-9);
        assert_eq!(c.cross_box_transfer_ns(bytes), inter);
    }

    #[test]
    fn oversubscription_slows_cross_box_collectives_monotonically() {
        let cfg = GaudiConfig::hls1();
        let bytes = 256u64 << 20;
        let t1 = Topology::cluster(&cfg, 4, 8, 1.0).allreduce_time_ns(bytes);
        let t2 = Topology::cluster(&cfg, 4, 8, 2.0).allreduce_time_ns(bytes);
        let t4 = Topology::cluster(&cfg, 4, 8, 4.0).allreduce_time_ns(bytes);
        assert!(t1 < t2 && t2 < t4);
        // The bandwidth term scales linearly with the oversubscription.
        let lat = 2.0 * 31.0 * (cfg.roce.message_latency_ns + 2.0 * 500.0);
        assert!(((t4 - lat) / (t2 - lat) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn nonblocking_cluster_still_pays_switch_latency() {
        let cfg = GaudiConfig::hls1();
        let flat = Topology::hls1_box(&cfg, 32);
        let c = Topology::cluster(&cfg, 4, 8, 1.0);
        let bytes = 64u64 << 20;
        // Same bandwidth term, strictly more latency.
        assert!(c.allreduce_time_ns(bytes) > flat.allreduce_time_ns(bytes));
        assert_eq!(
            c.bottleneck_bandwidth_bytes_per_ns(),
            flat.effective_bandwidth_bytes_per_ns()
        );
    }

    #[test]
    fn degradations_compose_with_the_switch_tier() {
        let c = Topology::cluster(&GaudiConfig::hls1(), 2, 4, 2.0).degraded(&[LinkDegradation {
            a: DeviceId(0),
            b: DeviceId(1),
            factor: 0.5,
            window: None,
        }]);
        // Bottleneck = degraded intra bandwidth / oversubscription.
        let expect = c.link.bandwidth_bytes_per_ns * 0.5 / 2.0;
        assert!((c.bottleneck_bandwidth_bytes_per_ns() - expect).abs() < 1e-9);
    }

    #[test]
    fn subring_inherits_fabric_but_not_hierarchy() {
        let c = Topology::cluster(&GaudiConfig::hls1(), 4, 8, 2.0).degraded(&[LinkDegradation {
            a: DeviceId(0),
            b: DeviceId(1),
            factor: 0.5,
            window: None,
        }]);
        let sub = c.subring(4);
        assert_eq!(sub.devices, 4);
        assert_eq!(sub.boxes(), 1);
        assert!(sub.switch.is_none());
        assert_eq!(sub.link, c.link);
        assert_eq!(sub.bottleneck_factor(), 0.5);
    }
}
