//! Matrix Multiplication Engine cost model.
//!
//! The MME is characterized by three calibrated constants (see
//! [`crate::config::MmeConfig`]): a sustained throughput, a per-launch
//! overhead, and a minimum kernel time. The resulting execution-time model
//!
//! ```text
//! t = max(flops / peak + launch_overhead, min_kernel)
//! ```
//!
//! reproduces the efficiency ramp of the paper's Table 2: ~2.35 TFLOPS at
//! size 128 (minimum-kernel bound), ~11.7 at 256, plateauing at ~14.5 from
//! size 512 up.

use crate::config::MmeConfig;

/// Analytic MME timing model.
#[derive(Debug, Clone)]
pub struct MmeModel {
    cfg: MmeConfig,
}

impl MmeModel {
    /// Build a model from a configuration.
    pub fn new(cfg: MmeConfig) -> Self {
        MmeModel { cfg }
    }

    /// Floating-point operations of a batched GEMM `[batch, m, k] x [batch, k, n]`.
    pub fn gemm_flops(batch: usize, m: usize, k: usize, n: usize) -> f64 {
        2.0 * batch as f64 * m as f64 * k as f64 * n as f64
    }

    /// Execution time of one batched GEMM launch, in nanoseconds.
    pub fn gemm_time_ns(&self, batch: usize, m: usize, k: usize, n: usize) -> f64 {
        let flops = Self::gemm_flops(batch, m, k, n);
        self.time_for_flops(flops)
    }

    /// Execution time for an arbitrary flop count issued as one MME launch.
    pub fn time_for_flops(&self, flops: f64) -> f64 {
        let peak_flops_per_ns = self.cfg.peak_tflops * 1000.0; // GFLOP/s == flops/ns * 1e? (1 TFLOPS = 1000 flops/ns)
        let compute = flops / peak_flops_per_ns;
        (compute + self.cfg.launch_overhead_ns).max(self.cfg.min_kernel_ns)
    }

    /// Effective throughput in TFLOPS for one batched GEMM launch.
    pub fn effective_tflops(&self, batch: usize, m: usize, k: usize, n: usize) -> f64 {
        let flops = Self::gemm_flops(batch, m, k, n);
        crate::tflops(flops, self.gemm_time_ns(batch, m, k, n))
    }

    /// The configured sustained peak in TFLOPS.
    pub fn peak_tflops(&self) -> f64 {
        self.cfg.peak_tflops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> MmeModel {
        MmeModel::new(MmeConfig::default())
    }

    #[test]
    fn flop_count() {
        assert_eq!(
            MmeModel::gemm_flops(64, 128, 128, 128),
            64.0 * 2.0 * 128f64.powi(3)
        );
    }

    #[test]
    fn small_gemm_hits_min_kernel_floor() {
        let m = model();
        let t = m.gemm_time_ns(64, 128, 128, 128);
        assert_eq!(t, MmeConfig::default().min_kernel_ns);
    }

    #[test]
    fn large_gemm_approaches_peak() {
        let m = model();
        let eff = m.effective_tflops(64, 2048, 2048, 2048);
        assert!(eff > 0.99 * m.peak_tflops(), "eff={eff}");
    }

    #[test]
    fn table2_efficiency_ramp_shape() {
        // The calibrated model must reproduce the monotone ramp of Table 2.
        let m = model();
        let e128 = m.effective_tflops(64, 128, 128, 128);
        let e256 = m.effective_tflops(64, 256, 256, 256);
        let e512 = m.effective_tflops(64, 512, 512, 512);
        let e1024 = m.effective_tflops(64, 1024, 1024, 1024);
        assert!(e128 < e256 && e256 < e512 && e512 < e1024);
        // Paper: 2.35 / 11.67 / 14.37 / 14.56 TFLOPS. Allow a loose band —
        // we reproduce shape, not silicon.
        assert!((e128 - 2.35).abs() < 0.5, "size 128: {e128}");
        assert!((e256 - 11.67).abs() < 2.0, "size 256: {e256}");
        assert!((e512 - 14.37).abs() < 0.7, "size 512: {e512}");
    }

    #[test]
    fn time_monotone_in_flops() {
        let m = model();
        let mut last = 0.0;
        for s in [64usize, 128, 256, 512, 1024] {
            let t = m.gemm_time_ns(8, s, s, s);
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn zero_flops_still_costs_min_kernel() {
        let m = model();
        assert_eq!(m.time_for_flops(0.0), MmeConfig::default().min_kernel_ns);
    }
}
