//! Deterministic fault injection: what breaks, when, and by how much.
//!
//! The paper characterizes Gaudi in steady state; a production box does not
//! stay there. A [`FaultPlan`] is a *schedule* of hardware misbehavior —
//! whole-card failures at known times, RoCE links running below nominal
//! bandwidth, and transient slowdown windows (thermal throttling, noisy
//! neighbors) — that the serving and runtime layers consume to model
//! graceful degradation.
//!
//! Plans are plain data: building one never touches a clock or an OS RNG,
//! so a simulation driven by a plan is exactly as reproducible as the plan
//! itself. [`FaultPlan::seeded`] derives a randomized-but-deterministic
//! plan from a `u64` seed (SplitMix64), which is what the `fault_sweep`
//! binary uses to assert bit-identical reports across runs.
//!
//! What each fault means to consumers:
//!
//! * **Card failure** ([`CardFailure`]): the device stops at `at_ms`. The
//!   serving layer halts that replica at the next phase boundary at or
//!   after the failure time and re-queues its unfinished work elsewhere.
//!   A failure with `restart_after_ms` is *transient*: the card comes back
//!   `restart_after_ms` later with cold caches (the serving layer rebuilds
//!   its compiled-plan cache and the replica rejoins the dispatch pool).
//! * **Link degradation** ([`LinkDegradation`]): an inter-card edge runs at
//!   `factor` × nominal bandwidth. Ring collectives pace to the slowest
//!   participating link, so [`crate::Topology`] prices collectives against
//!   the bottleneck factor (see [`crate::Topology::bottleneck_factor`]).
//!   A degradation with a `window` is a *flap*: the edge is degraded only
//!   inside `[start_ms, end_ms)` and nominal outside it.
//! * **Slowdown window** ([`Slowdown`]): compute phases starting inside
//!   `[start_ms, end_ms)` take `factor` × their nominal time, on one card
//!   or box-wide.
//!
//! [`FaultPlan::validate`] rejects contradictory schedules — a second kill
//! of a device inside an earlier kill's down window (or after a permanent
//! kill), duplicate degradations of the same edge whose active windows
//! overlap — with a descriptive error instead of letting last-write-wins
//! pick a silent winner.

use crate::topology::{DeviceId, Topology};

/// A whole-card failure at a known simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CardFailure {
    /// The card that dies.
    pub device: DeviceId,
    /// Failure time in simulated milliseconds (≥ 0).
    pub at_ms: f64,
    /// Down-time before the card restarts, ms. `None` means the failure is
    /// permanent; `Some(d)` means the card is back (with cold caches) at
    /// `at_ms + d`, the end of the half-open down window `[at_ms, at_ms+d)`.
    pub restart_after_ms: Option<f64>,
}

/// One inter-card link running below nominal bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkDegradation {
    /// One endpoint of the degraded edge.
    pub a: DeviceId,
    /// The other endpoint.
    pub b: DeviceId,
    /// Remaining bandwidth fraction, in `(0, 1]`.
    pub factor: f64,
    /// Active window `[start_ms, end_ms)`, or `None` for a permanent
    /// degradation. A windowed entry models a link flap: nominal bandwidth
    /// outside the window.
    pub window: Option<(f64, f64)>,
}

/// A transient window in which compute runs slower than nominal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Slowdown {
    /// The throttled card, or `None` for a box-wide event.
    pub device: Option<DeviceId>,
    /// Window start, simulated ms (inclusive).
    pub start_ms: f64,
    /// Window end, simulated ms (exclusive).
    pub end_ms: f64,
    /// Wall-time multiplier for phases starting inside the window (≥ 1).
    pub factor: f64,
}

/// A malformed fault plan, rejected before any simulation runs.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultError {
    /// A fault names a device the box does not have.
    UnknownDevice {
        /// The out-of-range device.
        device: DeviceId,
        /// How many devices the box has.
        devices: usize,
    },
    /// A card failure time is negative or not finite.
    BadFailureTime {
        /// The device whose failure time is malformed.
        device: DeviceId,
        /// The offending time.
        at_ms: f64,
    },
    /// A link degradation factor is outside `(0, 1]`.
    BadLinkFactor {
        /// One endpoint of the edge.
        a: DeviceId,
        /// The other endpoint.
        b: DeviceId,
        /// The offending factor.
        factor: f64,
    },
    /// A slowdown window is empty, reversed, or its factor is below 1.
    BadSlowdown {
        /// Window start, ms.
        start_ms: f64,
        /// Window end, ms.
        end_ms: f64,
        /// The offending factor.
        factor: f64,
    },
    /// A restart delay is zero, negative, or not finite.
    BadRestart {
        /// The device whose restart delay is malformed.
        device: DeviceId,
        /// The kill time the delay is attached to.
        at_ms: f64,
        /// The offending delay.
        restart_after_ms: f64,
    },
    /// Two failures of the same device contradict each other: the second
    /// kill lands inside the first one's down window (or after a permanent
    /// kill — a dead card cannot die again).
    OverlappingFailures {
        /// The doubly-killed device.
        device: DeviceId,
        /// The earlier kill time.
        first_ms: f64,
        /// The contradictory later kill time.
        second_ms: f64,
    },
    /// A link-flap window is empty, reversed, negative, or not finite.
    BadLinkWindow {
        /// One endpoint of the edge.
        a: DeviceId,
        /// The other endpoint.
        b: DeviceId,
        /// Window start, ms.
        start_ms: f64,
        /// Window end, ms.
        end_ms: f64,
    },
    /// Two degradations of the same edge are simultaneously active: their
    /// windows overlap (a permanent degradation overlaps everything), so
    /// the edge's bandwidth would be ambiguous.
    OverlappingLinkDegradations {
        /// One endpoint of the doubly-degraded edge.
        a: DeviceId,
        /// The other endpoint.
        b: DeviceId,
    },
    /// A [`FaultCampaign`] parameter is out of range: an out-of-range
    /// cascade seed device, a spread/decay probability outside `[0, 1]`, a
    /// non-positive down window or horizon.
    BadCampaign {
        /// What was wrong with the campaign.
        reason: String,
    },
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::UnknownDevice { device, devices } => {
                write!(f, "fault names {device} but the box has {devices} devices")
            }
            FaultError::BadFailureTime { device, at_ms } => {
                write!(
                    f,
                    "failure time {at_ms} ms for {device} must be finite and >= 0"
                )
            }
            FaultError::BadLinkFactor { a, b, factor } => {
                write!(
                    f,
                    "link {a}-{b} degradation factor {factor} must be in (0, 1]"
                )
            }
            FaultError::BadSlowdown {
                start_ms,
                end_ms,
                factor,
            } => write!(
                f,
                "slowdown window [{start_ms}, {end_ms}) ms with factor {factor} \
                 must be non-empty with factor >= 1"
            ),
            FaultError::BadRestart {
                device,
                at_ms,
                restart_after_ms,
            } => write!(
                f,
                "restart delay {restart_after_ms} ms for {device} killed at \
                 {at_ms} ms must be finite and > 0"
            ),
            FaultError::OverlappingFailures {
                device,
                first_ms,
                second_ms,
            } => write!(
                f,
                "{device} is killed at {second_ms} ms while already down from \
                 the kill at {first_ms} ms — failures of one device must not \
                 overlap"
            ),
            FaultError::BadLinkWindow {
                a,
                b,
                start_ms,
                end_ms,
            } => write!(
                f,
                "link {a}-{b} flap window [{start_ms}, {end_ms}) ms must be \
                 non-empty, finite, and start at >= 0"
            ),
            FaultError::OverlappingLinkDegradations { a, b } => write!(
                f,
                "link {a}-{b} has two degradations active at the same time — \
                 their windows must not overlap"
            ),
            FaultError::BadCampaign { reason } => {
                write!(f, "fault campaign rejected: {reason}")
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// A deterministic schedule of hardware faults for one simulated box.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Whole-card failures. A device may fail repeatedly, but
    /// [`FaultPlan::validate`] requires the down windows to be disjoint
    /// (and nothing may follow a permanent kill).
    pub card_failures: Vec<CardFailure>,
    /// Degraded inter-card links (permanent or windowed flaps; windows on
    /// the same edge must not overlap).
    pub link_degradations: Vec<LinkDegradation>,
    /// Transient compute-slowdown windows.
    pub slowdowns: Vec<Slowdown>,
}

impl FaultPlan {
    /// The empty plan: nothing fails, nothing degrades.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when the plan injects no faults at all.
    pub fn is_empty(&self) -> bool {
        self.card_failures.is_empty()
            && self.link_degradations.is_empty()
            && self.slowdowns.is_empty()
    }

    /// Add a permanent whole-card failure: `device` dies at `at_ms`.
    pub fn kill(mut self, device: DeviceId, at_ms: f64) -> Self {
        self.card_failures.push(CardFailure {
            device,
            at_ms,
            restart_after_ms: None,
        });
        self
    }

    /// Add a transient whole-card failure: `device` dies at `at_ms` and
    /// restarts (cold caches) after `down_ms` of down-time.
    pub fn kill_for(mut self, device: DeviceId, at_ms: f64, down_ms: f64) -> Self {
        self.card_failures.push(CardFailure {
            device,
            at_ms,
            restart_after_ms: Some(down_ms),
        });
        self
    }

    /// Permanently degrade the `a`–`b` link to `factor` × nominal bandwidth.
    pub fn degrade_link(mut self, a: DeviceId, b: DeviceId, factor: f64) -> Self {
        self.link_degradations.push(LinkDegradation {
            a,
            b,
            factor,
            window: None,
        });
        self
    }

    /// Flap the `a`–`b` link: `factor` × nominal bandwidth inside
    /// `[start_ms, end_ms)`, nominal outside it.
    pub fn flap_link(
        mut self,
        a: DeviceId,
        b: DeviceId,
        factor: f64,
        start_ms: f64,
        end_ms: f64,
    ) -> Self {
        self.link_degradations.push(LinkDegradation {
            a,
            b,
            factor,
            window: Some((start_ms, end_ms)),
        });
        self
    }

    /// Add a box-wide slowdown window: phases starting in
    /// `[start_ms, end_ms)` take `factor` × their nominal time.
    pub fn slow(self, start_ms: f64, end_ms: f64, factor: f64) -> Self {
        self.slow_device(None, start_ms, end_ms, factor)
    }

    /// Add a slowdown window for one card (or box-wide with `None`).
    pub fn slow_device(
        mut self,
        device: Option<DeviceId>,
        start_ms: f64,
        end_ms: f64,
        factor: f64,
    ) -> Self {
        self.slowdowns.push(Slowdown {
            device,
            start_ms,
            end_ms,
            factor,
        });
        self
    }

    /// A randomized-but-deterministic plan over `devices` cards and a
    /// `horizon_ms` simulation window, fully determined by `seed`
    /// (SplitMix64; no OS entropy anywhere).
    ///
    /// Roughly one in four cards dies at a uniform time in the horizon
    /// (device 0 is spared so at least one replica survives) — half of the
    /// deaths are transient, restarting after 5–30% of the horizon — one
    /// in four adjacent links degrades to 25–100% bandwidth, and half of
    /// all plans carry one box-wide 1–3× slowdown window.
    pub fn seeded(seed: u64, devices: usize, horizon_ms: f64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut plan = FaultPlan::none();
        for d in 1..devices {
            if rng.uniform() < 0.25 {
                let at = rng.uniform() * horizon_ms;
                plan = if rng.uniform() < 0.5 {
                    let down = (0.05 + 0.25 * rng.uniform()) * horizon_ms;
                    plan.kill_for(DeviceId(d), at, down)
                } else {
                    plan.kill(DeviceId(d), at)
                };
            }
        }
        for d in 1..devices {
            if rng.uniform() < 0.25 {
                let factor = 0.25 + 0.75 * rng.uniform();
                plan = plan.degrade_link(DeviceId(d - 1), DeviceId(d), factor);
            }
        }
        if rng.uniform() < 0.5 {
            let start = rng.uniform() * horizon_ms * 0.5;
            let len = (0.1 + 0.4 * rng.uniform()) * horizon_ms;
            plan = plan.slow(start, start + len, 1.0 + 2.0 * rng.uniform());
        }
        plan
    }

    /// Earliest failure time of `device`, if the plan kills it at all.
    pub fn kill_time_ms(&self, device: DeviceId) -> Option<f64> {
        self.card_failures
            .iter()
            .filter(|c| c.device == device)
            .map(|c| c.at_ms)
            .min_by(|a, b| a.partial_cmp(b).expect("failure times are finite"))
    }

    /// The up/down transition schedule of `device`, sorted by time: each
    /// kill contributes `(at_ms, false)`, and a transient kill additionally
    /// contributes `(at_ms + restart_after_ms, true)` for the restart.
    /// Empty when the plan never touches the device.
    pub fn transitions(&self, device: DeviceId) -> Vec<(f64, bool)> {
        let mut out = Vec::new();
        for c in self.card_failures.iter().filter(|c| c.device == device) {
            out.push((c.at_ms, false));
            if let Some(d) = c.restart_after_ms {
                out.push((c.at_ms + d, true));
            }
        }
        out.sort_by(|x, y| x.partial_cmp(y).expect("failure times are finite"));
        out
    }

    /// Whether `device` is inside a down window at `t_ms` (kills are
    /// inclusive at `at_ms`, restarts exclusive at `at_ms + restart`).
    pub fn is_down(&self, device: DeviceId, t_ms: f64) -> bool {
        self.card_failures
            .iter()
            .filter(|c| c.device == device)
            .any(|c| t_ms >= c.at_ms && c.restart_after_ms.is_none_or(|d| t_ms < c.at_ms + d))
    }

    /// The link degradations active at `t_ms`: permanent entries plus
    /// every flap whose window contains the instant. The result is what a
    /// topology snapshot at `t_ms` should be degraded with.
    pub fn link_degradations_at(&self, t_ms: f64) -> Vec<LinkDegradation> {
        self.link_degradations
            .iter()
            .filter(|l| l.window.is_none_or(|(s, e)| s <= t_ms && t_ms < e))
            .copied()
            .collect()
    }

    /// Combined slowdown multiplier for a phase starting at `t_ms` on
    /// `device`: the product of every active window that targets the
    /// device or the whole box. `1.0` when nothing is active.
    pub fn slowdown_factor(&self, device: DeviceId, t_ms: f64) -> f64 {
        self.slowdowns
            .iter()
            .filter(|s| s.device.is_none_or(|d| d == device))
            .filter(|s| s.start_ms <= t_ms && t_ms < s.end_ms)
            .map(|s| s.factor)
            .product()
    }

    /// Reject plans that reference missing devices, carry malformed times
    /// or out-of-range factors, or schedule contradictory windows: a kill
    /// of a device that is already down (inside an earlier kill's restart
    /// window, or after a permanent kill), or two degradations of the same
    /// edge whose active windows overlap. `devices` is the box size.
    pub fn validate(&self, devices: usize) -> Result<(), FaultError> {
        let check_dev = |device: DeviceId| {
            if device.index() >= devices {
                Err(FaultError::UnknownDevice { device, devices })
            } else {
                Ok(())
            }
        };
        for c in &self.card_failures {
            check_dev(c.device)?;
            if !c.at_ms.is_finite() || c.at_ms < 0.0 {
                return Err(FaultError::BadFailureTime {
                    device: c.device,
                    at_ms: c.at_ms,
                });
            }
            if let Some(d) = c.restart_after_ms {
                if !d.is_finite() || d <= 0.0 {
                    return Err(FaultError::BadRestart {
                        device: c.device,
                        at_ms: c.at_ms,
                        restart_after_ms: d,
                    });
                }
            }
        }
        // Per device, down windows must be disjoint: sort kills by time and
        // require each to start at or after the previous window's end (a
        // permanent kill's window never ends, so nothing may follow it).
        for d in 0..devices {
            let mut kills: Vec<&CardFailure> = self
                .card_failures
                .iter()
                .filter(|c| c.device == DeviceId(d))
                .collect();
            kills.sort_by(|x, y| {
                x.at_ms
                    .partial_cmp(&y.at_ms)
                    .expect("failure times are finite")
            });
            for pair in kills.windows(2) {
                let overlap = match pair[0].restart_after_ms {
                    None => true, // dead forever; a second kill contradicts
                    Some(r) => pair[1].at_ms < pair[0].at_ms + r,
                };
                if overlap {
                    return Err(FaultError::OverlappingFailures {
                        device: DeviceId(d),
                        first_ms: pair[0].at_ms,
                        second_ms: pair[1].at_ms,
                    });
                }
            }
        }
        for l in &self.link_degradations {
            check_dev(l.a)?;
            check_dev(l.b)?;
            if !l.factor.is_finite() || l.factor <= 0.0 || l.factor > 1.0 {
                return Err(FaultError::BadLinkFactor {
                    a: l.a,
                    b: l.b,
                    factor: l.factor,
                });
            }
            if let Some((s, e)) = l.window {
                if !s.is_finite() || !e.is_finite() || s < 0.0 || e <= s {
                    return Err(FaultError::BadLinkWindow {
                        a: l.a,
                        b: l.b,
                        start_ms: s,
                        end_ms: e,
                    });
                }
            }
        }
        // Per undirected edge, at most one degradation may be active at any
        // instant; a permanent entry (no window) is active always.
        let edge = |l: &LinkDegradation| {
            let (x, y) = (l.a.index(), l.b.index());
            (x.min(y), x.max(y))
        };
        for (i, l) in self.link_degradations.iter().enumerate() {
            for m in &self.link_degradations[i + 1..] {
                if edge(l) != edge(m) {
                    continue;
                }
                let overlap = match (l.window, m.window) {
                    (None, _) | (_, None) => true,
                    (Some((s1, e1)), Some((s2, e2))) => s1 < e2 && s2 < e1,
                };
                if overlap {
                    return Err(FaultError::OverlappingLinkDegradations { a: l.a, b: l.b });
                }
            }
        }
        for s in &self.slowdowns {
            if let Some(d) = s.device {
                check_dev(d)?;
            }
            if !s.factor.is_finite()
                || s.factor < 1.0
                || !s.start_ms.is_finite()
                || !s.end_ms.is_finite()
                || s.start_ms < 0.0
                || s.end_ms <= s.start_ms
            {
                return Err(FaultError::BadSlowdown {
                    start_ms: s.start_ms,
                    end_ms: s.end_ms,
                    factor: s.factor,
                });
            }
        }
        Ok(())
    }
}

/// A correlated-fault burst model that lowers to a validated [`FaultPlan`].
///
/// [`FaultPlan::seeded`] draws *independent* faults: each card fails on its
/// own coin flip. Real fleet incidents are correlated — a rack PDU trip
/// takes down every card in a box at once, and a flapping link perturbs its
/// neighbors. A `FaultCampaign` captures those burst shapes as plain data;
/// [`FaultCampaign::seeded`] expands one into a concrete [`FaultPlan`]
/// deterministically from a `u64` seed, using the [`Topology`] to resolve
/// box membership and link adjacency.
///
/// Generation partitions the horizon into one slot per event and keeps each
/// event's fault windows inside its slot, so the lowered plan passes
/// [`FaultPlan::validate`] by construction: same-device down windows and
/// same-edge flap windows never overlap across events.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultCampaign {
    /// Rack-level power events: each event picks one box (via
    /// [`Topology::boxes`]) and kills *every* card in it for a shared down
    /// window drawn from `down_ms`, modelling a PDU trip or top-of-rack
    /// power fault.
    RackPower {
        /// How many power events to schedule across the horizon.
        events: usize,
        /// `(min, max)` down-time per event, ms (clamped to half the
        /// per-event slot so restart windows never cross into the next
        /// event's slot).
        down_ms: (f64, f64),
    },
    /// Cascading link flaps: each event flaps the link nearest `origin`,
    /// then spreads to neighboring links with probability
    /// `spread * decay^(depth-1)` up to `max_depth` hops, each child flap
    /// starting slightly after its parent — modelling a RoCE storm
    /// propagating along the ring.
    CascadeFlaps {
        /// The card whose adjacent link seeds each cascade.
        origin: DeviceId,
        /// How many cascade events to schedule across the horizon.
        events: usize,
        /// Probability that a flap spreads to an untouched neighbor link at
        /// depth 1, in `[0, 1]`.
        spread: f64,
        /// Multiplicative decay of the spread probability per extra hop, in
        /// `[0, 1]`.
        decay: f64,
        /// Maximum cascade depth in links from the origin (0 flaps only the
        /// origin link).
        max_depth: usize,
    },
}

impl FaultCampaign {
    /// A rack-power campaign: `events` box-wide kills with per-event
    /// down-time drawn uniformly from `down_ms`.
    pub fn rack_power(events: usize, down_ms: (f64, f64)) -> Self {
        FaultCampaign::RackPower { events, down_ms }
    }

    /// A cascading link-flap campaign seeded at `origin`'s adjacent link.
    pub fn cascade_flaps(
        origin: DeviceId,
        events: usize,
        spread: f64,
        decay: f64,
        max_depth: usize,
    ) -> Self {
        FaultCampaign::CascadeFlaps {
            origin,
            events,
            spread,
            decay,
            max_depth,
        }
    }

    /// Lower the campaign to a concrete, validated [`FaultPlan`] over
    /// `topo` and a `horizon_ms` simulation window, fully determined by
    /// `seed` (SplitMix64; no OS entropy anywhere).
    ///
    /// Rejects out-of-range parameters with
    /// [`FaultError::BadCampaign`] — a non-positive or non-finite horizon
    /// or down window, a cascade origin outside the topology, or
    /// spread/decay outside `[0, 1]` — and re-validates the lowered plan
    /// against `topo.devices` before returning it.
    pub fn seeded(
        &self,
        seed: u64,
        topo: &Topology,
        horizon_ms: f64,
    ) -> Result<FaultPlan, FaultError> {
        let reject = |reason: String| Err(FaultError::BadCampaign { reason });
        if !horizon_ms.is_finite() || horizon_ms <= 0.0 {
            return reject(format!("horizon {horizon_ms} ms must be finite and > 0"));
        }
        if topo.devices == 0 {
            return reject("topology has no devices".to_string());
        }
        let mut rng = SplitMix64::new(seed);
        let mut plan = FaultPlan::none();
        match *self {
            FaultCampaign::RackPower {
                events,
                down_ms: (lo, hi),
            } => {
                if !lo.is_finite() || !hi.is_finite() || lo <= 0.0 || hi < lo {
                    return reject(format!(
                        "down window ({lo}, {hi}) ms must be finite with 0 < min <= max"
                    ));
                }
                if events == 0 {
                    return Ok(plan);
                }
                let slot = horizon_ms / events as f64;
                let boxes = topo.boxes() as u64;
                for e in 0..events {
                    let b = (rng.next_u64() % boxes) as usize;
                    let start = (e as f64 + 0.4 * rng.uniform()) * slot;
                    // Clamp so the restart lands strictly inside this
                    // event's slot: a later event killing the same box can
                    // never overlap this down window.
                    let down = (lo + (hi - lo) * rng.uniform()).min(0.5 * slot);
                    for c in 0..topo.cards_per_box {
                        let d = b * topo.cards_per_box + c;
                        if d < topo.devices {
                            plan = plan.kill_for(DeviceId(d), start, down);
                        }
                    }
                }
            }
            FaultCampaign::CascadeFlaps {
                origin,
                events,
                spread,
                decay,
                max_depth,
            } => {
                if topo.devices < 2 {
                    return reject(format!(
                        "cascade needs >= 2 devices for a link, topology has {}",
                        topo.devices
                    ));
                }
                if origin.index() >= topo.devices {
                    return reject(format!(
                        "cascade seed {origin} is out of range for {} devices",
                        topo.devices
                    ));
                }
                if !spread.is_finite() || !(0.0..=1.0).contains(&spread) {
                    return reject(format!("spread {spread} must be in [0, 1]"));
                }
                if !decay.is_finite() || !(0.0..=1.0).contains(&decay) {
                    return reject(format!("decay {decay} must be in [0, 1]"));
                }
                if events == 0 {
                    return Ok(plan);
                }
                let slot = horizon_ms / events as f64;
                // Ring links: link `l` joins cards `l` and `l+1`.
                let links = topo.devices - 1;
                let origin_link = origin.index().min(links - 1);
                for e in 0..events {
                    let start = (e as f64 + 0.3 * rng.uniform()) * slot;
                    let dur = (0.15 + 0.25 * rng.uniform()) * slot;
                    // BFS over links; each link flaps at most once per
                    // event, and child flaps lag their parent by 2% of the
                    // slot per hop (capped so every window stays inside the
                    // slot — windows are half-open, so touching the slot
                    // boundary still never overlaps the next event).
                    let mut visited = vec![false; links];
                    let mut frontier = vec![(origin_link, 0usize)];
                    visited[origin_link] = true;
                    let mut i = 0;
                    while i < frontier.len() {
                        let (l, depth) = frontier[i];
                        i += 1;
                        let lag = ((depth as f64) * 0.02).min(0.3) * slot;
                        let factor = 0.25 + 0.5 * rng.uniform();
                        plan = plan.flap_link(
                            DeviceId(l),
                            DeviceId(l + 1),
                            factor,
                            start + lag,
                            start + lag + dur,
                        );
                        if depth >= max_depth {
                            continue;
                        }
                        let p = spread * decay.powi(depth as i32);
                        for n in [l.wrapping_sub(1), l + 1] {
                            if n < links && !visited[n] && rng.uniform() < p {
                                visited[n] = true;
                                frontier.push((n, depth + 1));
                            }
                        }
                    }
                }
            }
        }
        plan.validate(topo.devices)?;
        Ok(plan)
    }
}

/// SplitMix64: the standard 64-bit mixing PRNG. Tiny, seedable, and good
/// enough for fault-schedule generation; keeping it local avoids a
/// dependency from `gaudi-hw` on the tensor crate's RNG.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inert() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert_eq!(p.kill_time_ms(DeviceId(0)), None);
        assert_eq!(p.slowdown_factor(DeviceId(0), 10.0), 1.0);
        assert!(p.validate(1).is_ok());
    }

    #[test]
    fn builders_compose_and_query() {
        let p = FaultPlan::none()
            .kill_for(DeviceId(2), 30.0, 10.0)
            .kill(DeviceId(2), 50.0)
            .degrade_link(DeviceId(0), DeviceId(1), 0.5)
            .slow(10.0, 20.0, 2.0)
            .slow_device(Some(DeviceId(1)), 15.0, 25.0, 3.0);
        assert_eq!(p.kill_time_ms(DeviceId(2)), Some(30.0));
        assert_eq!(p.kill_time_ms(DeviceId(1)), None);
        // At t=15 on device 1: both the box-wide 2x and the local 3x apply.
        assert_eq!(p.slowdown_factor(DeviceId(1), 15.0), 6.0);
        // Device 0 only sees the box-wide window.
        assert_eq!(p.slowdown_factor(DeviceId(0), 15.0), 2.0);
        // Window ends are exclusive.
        assert_eq!(p.slowdown_factor(DeviceId(0), 20.0), 1.0);
        assert!(p.validate(4).is_ok());
    }

    #[test]
    fn transitions_and_is_down_track_restart_windows() {
        let p = FaultPlan::none()
            .kill_for(DeviceId(1), 20.0, 10.0)
            .kill(DeviceId(1), 50.0);
        assert_eq!(
            p.transitions(DeviceId(1)),
            vec![(20.0, false), (30.0, true), (50.0, false)]
        );
        assert_eq!(p.transitions(DeviceId(0)), vec![]);
        assert!(!p.is_down(DeviceId(1), 19.9));
        assert!(p.is_down(DeviceId(1), 20.0), "kill edge is inclusive");
        assert!(p.is_down(DeviceId(1), 29.9));
        assert!(!p.is_down(DeviceId(1), 30.0), "restart edge is exclusive");
        assert!(p.is_down(DeviceId(1), 50.0));
        assert!(p.is_down(DeviceId(1), 1e12), "the second kill is permanent");
        assert!(p.validate(2).is_ok());
    }

    #[test]
    fn link_flaps_window_the_degradation() {
        let p = FaultPlan::none()
            .flap_link(DeviceId(0), DeviceId(1), 0.5, 10.0, 20.0)
            .degrade_link(DeviceId(1), DeviceId(2), 0.75);
        assert!(p.validate(3).is_ok());
        let active = |t: f64| {
            p.link_degradations_at(t)
                .iter()
                .map(|l| (l.a.index(), l.b.index()))
                .collect::<Vec<_>>()
        };
        assert_eq!(active(5.0), [(1, 2)], "flap not yet active");
        assert_eq!(active(10.0), [(0, 1), (1, 2)], "flap start is inclusive");
        assert_eq!(active(20.0), [(1, 2)], "flap end is exclusive");
    }

    #[test]
    fn validation_rejects_contradictory_windows() {
        // A second kill inside the first kill's down window.
        let inside = FaultPlan::none()
            .kill_for(DeviceId(1), 10.0, 20.0)
            .kill(DeviceId(1), 15.0);
        assert!(matches!(
            inside.validate(2),
            Err(FaultError::OverlappingFailures {
                device: DeviceId(1),
                ..
            })
        ));
        // Any kill after a permanent kill of the same device.
        let after_permanent =
            FaultPlan::none()
                .kill(DeviceId(1), 10.0)
                .kill_for(DeviceId(1), 50.0, 5.0);
        assert!(matches!(
            after_permanent.validate(2),
            Err(FaultError::OverlappingFailures { .. })
        ));
        // Duplicate kills at the same instant.
        let dup = FaultPlan::none()
            .kill(DeviceId(1), 10.0)
            .kill(DeviceId(1), 10.0);
        assert!(matches!(
            dup.validate(2),
            Err(FaultError::OverlappingFailures { .. })
        ));
        // Back-to-back transient kills with disjoint windows are fine.
        let disjoint =
            FaultPlan::none()
                .kill_for(DeviceId(1), 10.0, 5.0)
                .kill_for(DeviceId(1), 15.0, 5.0);
        assert!(disjoint.validate(2).is_ok());
        // Malformed restart delay.
        let bad_restart = FaultPlan::none().kill_for(DeviceId(1), 10.0, 0.0);
        assert!(matches!(
            bad_restart.validate(2),
            Err(FaultError::BadRestart { .. })
        ));
        // Duplicate degradations of one edge (order-insensitive endpoints).
        let dup_link = FaultPlan::none()
            .degrade_link(DeviceId(0), DeviceId(1), 0.5)
            .flap_link(DeviceId(1), DeviceId(0), 0.75, 5.0, 10.0);
        assert!(matches!(
            dup_link.validate(2),
            Err(FaultError::OverlappingLinkDegradations { .. })
        ));
        // Disjoint flaps of one edge are fine.
        let flaps = FaultPlan::none()
            .flap_link(DeviceId(0), DeviceId(1), 0.5, 0.0, 5.0)
            .flap_link(DeviceId(0), DeviceId(1), 0.75, 5.0, 10.0);
        assert!(flaps.validate(2).is_ok());
        // Malformed flap window.
        let bad_window = FaultPlan::none().flap_link(DeviceId(0), DeviceId(1), 0.5, 8.0, 8.0);
        assert!(matches!(
            bad_window.validate(2),
            Err(FaultError::BadLinkWindow { .. })
        ));
        // Every rejection renders a descriptive message.
        for plan in [inside, after_permanent, dup, dup_link, bad_window] {
            let msg = plan.validate(2).unwrap_err().to_string();
            assert!(!msg.is_empty());
        }
    }

    #[test]
    fn validation_rejects_malformed_plans() {
        let unknown = FaultPlan::none().kill(DeviceId(4), 1.0);
        assert!(matches!(
            unknown.validate(4),
            Err(FaultError::UnknownDevice { .. })
        ));
        let bad_time = FaultPlan::none().kill(DeviceId(0), -1.0);
        assert!(matches!(
            bad_time.validate(1),
            Err(FaultError::BadFailureTime { .. })
        ));
        let bad_factor = FaultPlan::none().degrade_link(DeviceId(0), DeviceId(1), 1.5);
        assert!(matches!(
            bad_factor.validate(2),
            Err(FaultError::BadLinkFactor { .. })
        ));
        let zero_factor = FaultPlan::none().degrade_link(DeviceId(0), DeviceId(1), 0.0);
        assert!(matches!(
            zero_factor.validate(2),
            Err(FaultError::BadLinkFactor { .. })
        ));
        let bad_window = FaultPlan::none().slow(10.0, 10.0, 2.0);
        assert!(matches!(
            bad_window.validate(1),
            Err(FaultError::BadSlowdown { .. })
        ));
        let speedup = FaultPlan::none().slow(0.0, 1.0, 0.5);
        assert!(matches!(
            speedup.validate(1),
            Err(FaultError::BadSlowdown { .. })
        ));
        // Zero- and negative-duration windows are rejected for every fault
        // kind, each with its own descriptive variant.
        let zero_down = FaultPlan::none().kill_for(DeviceId(0), 10.0, 0.0);
        assert!(matches!(
            zero_down.validate(1),
            Err(FaultError::BadRestart { .. })
        ));
        let neg_down = FaultPlan::none().kill_for(DeviceId(0), 10.0, -5.0);
        assert!(matches!(
            neg_down.validate(1),
            Err(FaultError::BadRestart { .. })
        ));
        let neg_flap = FaultPlan::none().flap_link(DeviceId(0), DeviceId(1), 0.5, 10.0, 5.0);
        assert!(matches!(
            neg_flap.validate(2),
            Err(FaultError::BadLinkWindow { .. })
        ));
        let neg_slow = FaultPlan::none().slow_device(Some(DeviceId(0)), 10.0, 5.0, 2.0);
        assert!(matches!(
            neg_slow.validate(1),
            Err(FaultError::BadSlowdown { .. })
        ));
        for plan in [zero_down, neg_down, neg_flap, neg_slow] {
            assert!(!plan.validate(2).unwrap_err().to_string().is_empty());
        }
    }

    fn cluster_topo(boxes: usize, cards: usize) -> Topology {
        let cfg = crate::GaudiConfig::hls1();
        Topology::cluster(&cfg, boxes, cards, 1.0)
    }

    #[test]
    fn rack_power_kills_whole_boxes_deterministically() {
        let topo = cluster_topo(4, 2);
        let camp = FaultCampaign::rack_power(3, (10.0, 40.0));
        let a = camp.seeded(7, &topo, 600.0).unwrap();
        let b = camp.seeded(7, &topo, 600.0).unwrap();
        assert_eq!(a, b, "same seed must reproduce the plan");
        a.validate(topo.devices).unwrap();
        // 3 events x 2 cards per box: every kill is transient, and the two
        // kills of one event share a box, a start time, and a down window.
        assert_eq!(a.card_failures.len(), 6);
        for ev in a.card_failures.chunks(2) {
            assert_eq!(topo.box_of(ev[0].device), topo.box_of(ev[1].device));
            assert_eq!(ev[0].at_ms, ev[1].at_ms);
            assert_eq!(ev[0].restart_after_ms, ev[1].restart_after_ms);
            assert!(ev[0].restart_after_ms.unwrap() > 0.0);
        }
        // Different seeds eventually differ.
        assert!((0..20u64).any(|s| {
            camp.seeded(s, &topo, 600.0).unwrap() != camp.seeded(s + 20, &topo, 600.0).unwrap()
        }));
    }

    #[test]
    fn cascade_flaps_stay_within_depth_and_validate() {
        let topo = cluster_topo(1, 8);
        let camp = FaultCampaign::cascade_flaps(DeviceId(3), 4, 0.9, 0.7, 2);
        for seed in 0..30u64 {
            let plan = camp.seeded(seed, &topo, 800.0).unwrap();
            assert_eq!(plan, camp.seeded(seed, &topo, 800.0).unwrap());
            plan.validate(topo.devices).unwrap();
            assert!(plan.card_failures.is_empty());
            assert!(!plan.link_degradations.is_empty(), "origin always flaps");
            for l in &plan.link_degradations {
                let link = l.a.index().min(l.b.index());
                // Origin link is 3 (cards 3-4); depth 2 reaches links 1..=5.
                assert!(
                    (1..=5).contains(&link),
                    "seed {seed}: link {link} beyond max_depth"
                );
                assert!(l.window.is_some(), "cascade flaps are always windowed");
            }
        }
    }

    #[test]
    fn campaigns_reject_out_of_range_parameters() {
        let topo = cluster_topo(2, 2);
        let cases: Vec<(&str, Result<FaultPlan, FaultError>)> = vec![
            (
                "bad horizon",
                FaultCampaign::rack_power(2, (5.0, 10.0)).seeded(1, &topo, 0.0),
            ),
            (
                "zero down window",
                FaultCampaign::rack_power(2, (0.0, 10.0)).seeded(1, &topo, 100.0),
            ),
            (
                "reversed down window",
                FaultCampaign::rack_power(2, (10.0, 5.0)).seeded(1, &topo, 100.0),
            ),
            (
                "out-of-range cascade seed",
                FaultCampaign::cascade_flaps(DeviceId(9), 2, 0.5, 0.5, 1).seeded(1, &topo, 100.0),
            ),
            (
                "spread above 1",
                FaultCampaign::cascade_flaps(DeviceId(0), 2, 1.5, 0.5, 1).seeded(1, &topo, 100.0),
            ),
            (
                "negative decay",
                FaultCampaign::cascade_flaps(DeviceId(0), 2, 0.5, -0.1, 1).seeded(1, &topo, 100.0),
            ),
        ];
        for (what, res) in cases {
            let err = res.unwrap_err();
            assert!(
                matches!(err, FaultError::BadCampaign { .. }),
                "{what}: expected BadCampaign, got {err:?}"
            );
            let msg = err.to_string();
            assert!(msg.starts_with("fault campaign rejected"), "{what}: {msg}");
        }
        // Zero events is a valid no-op, not an error.
        let empty = FaultCampaign::rack_power(0, (5.0, 10.0))
            .seeded(1, &topo, 100.0)
            .unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn seeded_plans_are_deterministic_and_valid() {
        for seed in 0..50u64 {
            let a = FaultPlan::seeded(seed, 8, 1000.0);
            let b = FaultPlan::seeded(seed, 8, 1000.0);
            assert_eq!(a, b, "seed {seed} must reproduce the plan");
            a.validate(8).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            // Device 0 is always spared.
            assert_eq!(a.kill_time_ms(DeviceId(0)), None);
        }
        // Different seeds eventually differ.
        assert!((0..50u64)
            .any(|s| FaultPlan::seeded(s, 8, 1000.0) != FaultPlan::seeded(s + 50, 8, 1000.0)));
    }
}
