//! Deterministic fault injection: what breaks, when, and by how much.
//!
//! The paper characterizes Gaudi in steady state; a production box does not
//! stay there. A [`FaultPlan`] is a *schedule* of hardware misbehavior —
//! whole-card failures at known times, RoCE links running below nominal
//! bandwidth, and transient slowdown windows (thermal throttling, noisy
//! neighbors) — that the serving and runtime layers consume to model
//! graceful degradation.
//!
//! Plans are plain data: building one never touches a clock or an OS RNG,
//! so a simulation driven by a plan is exactly as reproducible as the plan
//! itself. [`FaultPlan::seeded`] derives a randomized-but-deterministic
//! plan from a `u64` seed (SplitMix64), which is what the `fault_sweep`
//! binary uses to assert bit-identical reports across runs.
//!
//! What each fault means to consumers:
//!
//! * **Card failure** ([`CardFailure`]): the device stops at `at_ms`. The
//!   serving layer halts that replica at the next phase boundary at or
//!   after the failure time and re-queues its unfinished work elsewhere.
//! * **Link degradation** ([`LinkDegradation`]): an inter-card edge runs at
//!   `factor` × nominal bandwidth. Ring collectives pace to the slowest
//!   participating link, so [`crate::Topology`] prices collectives against
//!   the bottleneck factor (see [`crate::Topology::bottleneck_factor`]).
//! * **Slowdown window** ([`Slowdown`]): compute phases starting inside
//!   `[start_ms, end_ms)` take `factor` × their nominal time, on one card
//!   or box-wide.

use crate::topology::DeviceId;

/// A whole-card failure at a known simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CardFailure {
    /// The card that dies.
    pub device: DeviceId,
    /// Failure time in simulated milliseconds (≥ 0).
    pub at_ms: f64,
}

/// One inter-card link running below nominal bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkDegradation {
    /// One endpoint of the degraded edge.
    pub a: DeviceId,
    /// The other endpoint.
    pub b: DeviceId,
    /// Remaining bandwidth fraction, in `(0, 1]`.
    pub factor: f64,
}

/// A transient window in which compute runs slower than nominal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Slowdown {
    /// The throttled card, or `None` for a box-wide event.
    pub device: Option<DeviceId>,
    /// Window start, simulated ms (inclusive).
    pub start_ms: f64,
    /// Window end, simulated ms (exclusive).
    pub end_ms: f64,
    /// Wall-time multiplier for phases starting inside the window (≥ 1).
    pub factor: f64,
}

/// A malformed fault plan, rejected before any simulation runs.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultError {
    /// A fault names a device the box does not have.
    UnknownDevice {
        /// The out-of-range device.
        device: DeviceId,
        /// How many devices the box has.
        devices: usize,
    },
    /// A card failure time is negative or not finite.
    BadFailureTime {
        /// The device whose failure time is malformed.
        device: DeviceId,
        /// The offending time.
        at_ms: f64,
    },
    /// A link degradation factor is outside `(0, 1]`.
    BadLinkFactor {
        /// One endpoint of the edge.
        a: DeviceId,
        /// The other endpoint.
        b: DeviceId,
        /// The offending factor.
        factor: f64,
    },
    /// A slowdown window is empty, reversed, or its factor is below 1.
    BadSlowdown {
        /// Window start, ms.
        start_ms: f64,
        /// Window end, ms.
        end_ms: f64,
        /// The offending factor.
        factor: f64,
    },
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::UnknownDevice { device, devices } => {
                write!(f, "fault names {device} but the box has {devices} devices")
            }
            FaultError::BadFailureTime { device, at_ms } => {
                write!(
                    f,
                    "failure time {at_ms} ms for {device} must be finite and >= 0"
                )
            }
            FaultError::BadLinkFactor { a, b, factor } => {
                write!(
                    f,
                    "link {a}-{b} degradation factor {factor} must be in (0, 1]"
                )
            }
            FaultError::BadSlowdown {
                start_ms,
                end_ms,
                factor,
            } => write!(
                f,
                "slowdown window [{start_ms}, {end_ms}) ms with factor {factor} \
                 must be non-empty with factor >= 1"
            ),
        }
    }
}

impl std::error::Error for FaultError {}

/// A deterministic schedule of hardware faults for one simulated box.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Whole-card failures (a device may appear once; the earliest wins).
    pub card_failures: Vec<CardFailure>,
    /// Degraded inter-card links.
    pub link_degradations: Vec<LinkDegradation>,
    /// Transient compute-slowdown windows.
    pub slowdowns: Vec<Slowdown>,
}

impl FaultPlan {
    /// The empty plan: nothing fails, nothing degrades.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when the plan injects no faults at all.
    pub fn is_empty(&self) -> bool {
        self.card_failures.is_empty()
            && self.link_degradations.is_empty()
            && self.slowdowns.is_empty()
    }

    /// Add a whole-card failure: `device` dies at `at_ms`.
    pub fn kill(mut self, device: DeviceId, at_ms: f64) -> Self {
        self.card_failures.push(CardFailure { device, at_ms });
        self
    }

    /// Degrade the `a`–`b` link to `factor` × nominal bandwidth.
    pub fn degrade_link(mut self, a: DeviceId, b: DeviceId, factor: f64) -> Self {
        self.link_degradations
            .push(LinkDegradation { a, b, factor });
        self
    }

    /// Add a box-wide slowdown window: phases starting in
    /// `[start_ms, end_ms)` take `factor` × their nominal time.
    pub fn slow(self, start_ms: f64, end_ms: f64, factor: f64) -> Self {
        self.slow_device(None, start_ms, end_ms, factor)
    }

    /// Add a slowdown window for one card (or box-wide with `None`).
    pub fn slow_device(
        mut self,
        device: Option<DeviceId>,
        start_ms: f64,
        end_ms: f64,
        factor: f64,
    ) -> Self {
        self.slowdowns.push(Slowdown {
            device,
            start_ms,
            end_ms,
            factor,
        });
        self
    }

    /// A randomized-but-deterministic plan over `devices` cards and a
    /// `horizon_ms` simulation window, fully determined by `seed`
    /// (SplitMix64; no OS entropy anywhere).
    ///
    /// Roughly one in four cards dies at a uniform time in the horizon
    /// (device 0 is spared so at least one replica survives), one in four
    /// adjacent links degrades to 25–100% bandwidth, and half of all plans
    /// carry one box-wide 1–3× slowdown window.
    pub fn seeded(seed: u64, devices: usize, horizon_ms: f64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut plan = FaultPlan::none();
        for d in 1..devices {
            if rng.uniform() < 0.25 {
                plan = plan.kill(DeviceId(d), rng.uniform() * horizon_ms);
            }
        }
        for d in 1..devices {
            if rng.uniform() < 0.25 {
                let factor = 0.25 + 0.75 * rng.uniform();
                plan = plan.degrade_link(DeviceId(d - 1), DeviceId(d), factor);
            }
        }
        if rng.uniform() < 0.5 {
            let start = rng.uniform() * horizon_ms * 0.5;
            let len = (0.1 + 0.4 * rng.uniform()) * horizon_ms;
            plan = plan.slow(start, start + len, 1.0 + 2.0 * rng.uniform());
        }
        plan
    }

    /// Earliest failure time of `device`, if the plan kills it at all.
    pub fn kill_time_ms(&self, device: DeviceId) -> Option<f64> {
        self.card_failures
            .iter()
            .filter(|c| c.device == device)
            .map(|c| c.at_ms)
            .min_by(|a, b| a.partial_cmp(b).expect("failure times are finite"))
    }

    /// Combined slowdown multiplier for a phase starting at `t_ms` on
    /// `device`: the product of every active window that targets the
    /// device or the whole box. `1.0` when nothing is active.
    pub fn slowdown_factor(&self, device: DeviceId, t_ms: f64) -> f64 {
        self.slowdowns
            .iter()
            .filter(|s| s.device.is_none_or(|d| d == device))
            .filter(|s| s.start_ms <= t_ms && t_ms < s.end_ms)
            .map(|s| s.factor)
            .product()
    }

    /// Reject plans that reference missing devices, carry malformed times,
    /// or use out-of-range factors. `devices` is the box size.
    pub fn validate(&self, devices: usize) -> Result<(), FaultError> {
        let check_dev = |device: DeviceId| {
            if device.index() >= devices {
                Err(FaultError::UnknownDevice { device, devices })
            } else {
                Ok(())
            }
        };
        for c in &self.card_failures {
            check_dev(c.device)?;
            if !c.at_ms.is_finite() || c.at_ms < 0.0 {
                return Err(FaultError::BadFailureTime {
                    device: c.device,
                    at_ms: c.at_ms,
                });
            }
        }
        for l in &self.link_degradations {
            check_dev(l.a)?;
            check_dev(l.b)?;
            if !l.factor.is_finite() || l.factor <= 0.0 || l.factor > 1.0 {
                return Err(FaultError::BadLinkFactor {
                    a: l.a,
                    b: l.b,
                    factor: l.factor,
                });
            }
        }
        for s in &self.slowdowns {
            if let Some(d) = s.device {
                check_dev(d)?;
            }
            if !s.factor.is_finite()
                || s.factor < 1.0
                || !s.start_ms.is_finite()
                || !s.end_ms.is_finite()
                || s.start_ms < 0.0
                || s.end_ms <= s.start_ms
            {
                return Err(FaultError::BadSlowdown {
                    start_ms: s.start_ms,
                    end_ms: s.end_ms,
                    factor: s.factor,
                });
            }
        }
        Ok(())
    }
}

/// SplitMix64: the standard 64-bit mixing PRNG. Tiny, seedable, and good
/// enough for fault-schedule generation; keeping it local avoids a
/// dependency from `gaudi-hw` on the tensor crate's RNG.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inert() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert_eq!(p.kill_time_ms(DeviceId(0)), None);
        assert_eq!(p.slowdown_factor(DeviceId(0), 10.0), 1.0);
        assert!(p.validate(1).is_ok());
    }

    #[test]
    fn builders_compose_and_query() {
        let p = FaultPlan::none()
            .kill(DeviceId(2), 50.0)
            .kill(DeviceId(2), 30.0)
            .degrade_link(DeviceId(0), DeviceId(1), 0.5)
            .slow(10.0, 20.0, 2.0)
            .slow_device(Some(DeviceId(1)), 15.0, 25.0, 3.0);
        assert_eq!(p.kill_time_ms(DeviceId(2)), Some(30.0));
        assert_eq!(p.kill_time_ms(DeviceId(1)), None);
        // At t=15 on device 1: both the box-wide 2x and the local 3x apply.
        assert_eq!(p.slowdown_factor(DeviceId(1), 15.0), 6.0);
        // Device 0 only sees the box-wide window.
        assert_eq!(p.slowdown_factor(DeviceId(0), 15.0), 2.0);
        // Window ends are exclusive.
        assert_eq!(p.slowdown_factor(DeviceId(0), 20.0), 1.0);
        assert!(p.validate(4).is_ok());
    }

    #[test]
    fn validation_rejects_malformed_plans() {
        let unknown = FaultPlan::none().kill(DeviceId(4), 1.0);
        assert!(matches!(
            unknown.validate(4),
            Err(FaultError::UnknownDevice { .. })
        ));
        let bad_time = FaultPlan::none().kill(DeviceId(0), -1.0);
        assert!(matches!(
            bad_time.validate(1),
            Err(FaultError::BadFailureTime { .. })
        ));
        let bad_factor = FaultPlan::none().degrade_link(DeviceId(0), DeviceId(1), 1.5);
        assert!(matches!(
            bad_factor.validate(2),
            Err(FaultError::BadLinkFactor { .. })
        ));
        let zero_factor = FaultPlan::none().degrade_link(DeviceId(0), DeviceId(1), 0.0);
        assert!(matches!(
            zero_factor.validate(2),
            Err(FaultError::BadLinkFactor { .. })
        ));
        let bad_window = FaultPlan::none().slow(10.0, 10.0, 2.0);
        assert!(matches!(
            bad_window.validate(1),
            Err(FaultError::BadSlowdown { .. })
        ));
        let speedup = FaultPlan::none().slow(0.0, 1.0, 0.5);
        assert!(matches!(
            speedup.validate(1),
            Err(FaultError::BadSlowdown { .. })
        ));
    }

    #[test]
    fn seeded_plans_are_deterministic_and_valid() {
        for seed in 0..50u64 {
            let a = FaultPlan::seeded(seed, 8, 1000.0);
            let b = FaultPlan::seeded(seed, 8, 1000.0);
            assert_eq!(a, b, "seed {seed} must reproduce the plan");
            a.validate(8).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            // Device 0 is always spared.
            assert_eq!(a.kill_time_ms(DeviceId(0)), None);
        }
        // Different seeds eventually differ.
        assert!((0..50u64)
            .any(|s| FaultPlan::seeded(s, 8, 1000.0) != FaultPlan::seeded(s + 50, 8, 1000.0)));
    }
}
