//! Graph partitioning for multi-card execution: data parallelism (batch
//! split across replica groups) and Megatron-style tensor parallelism
//! (column-split / row-split linear layers and attention-head split), with
//! collective ops inserted where partial sums must be combined.
//!
//! The pass is **SPMD**: it produces one per-device graph — every card runs
//! the same program on its own shard — plus shard metadata telling the
//! runtime how to slice inputs/parameters and how to reassemble outputs:
//!
//! * **column-parallel** linears (`.q_proj`, `.k_proj`, `.v_proj`, `.fc1`,
//!   `lm_head`): weight split on the output axis, bias split with it; the
//!   activation comes out sharded on its last axis (which `split_heads`
//!   turns into an attention-head shard),
//! * **row-parallel** linears (`.out_proj`, `.fc2`): weight split on the
//!   input axis, bias replicated; the matmul products are *partial* sums,
//!   combined with an [`AllReduce`](gaudi_graph::CollectiveKind::AllReduce) before the
//!   bias add — two all-reduces per transformer layer, exactly the
//!   Megatron-LM communication pattern.
//!
//! Parameters whose sharded dimension does not divide the tensor-parallel
//! degree (e.g. a 50257-token vocabulary on 4 cards) gracefully fall back
//! to replication.

use gaudi_graph::{Graph, GraphError, NodeId, OpKind};
use gaudi_tensor::Shape;
use std::collections::HashMap;

/// How many ways to split the work across the box.
///
/// `data` replica groups each hold a full model copy and `1/data` of the
/// batch; within a group, `tensor` cards each hold `1/tensor` of every
/// sharded weight. Total devices = `data * tensor`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Data-parallel replica groups (batch split).
    pub data: usize,
    /// Tensor-parallel degree within each group (weight split).
    pub tensor: usize,
}

impl Parallelism {
    /// No parallelism: one device.
    pub fn single() -> Self {
        Parallelism { data: 1, tensor: 1 }
    }

    /// Pure data parallelism across `n` replicas.
    pub fn data(n: usize) -> Self {
        Parallelism { data: n, tensor: 1 }
    }

    /// Pure tensor parallelism across `n` cards.
    pub fn tensor(n: usize) -> Self {
        Parallelism { data: 1, tensor: n }
    }

    /// Total number of devices required.
    pub fn world(&self) -> usize {
        self.data * self.tensor
    }

    /// Tensor-parallel rank of a device (position within its replica group).
    pub fn tp_rank(&self, device: usize) -> usize {
        device % self.tensor
    }

    /// Data-parallel group of a device.
    pub fn dp_rank(&self, device: usize) -> usize {
        device / self.tensor
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::single()
    }
}

/// Which graph inputs carry shardable axes. Matched by exact name or
/// suffix, so `".k_cache"` covers `serve.layer3.k_cache`.
#[derive(Debug, Clone, Default)]
pub struct PartitionSpec {
    /// Inputs carrying the batch on axis 0 — split across data-parallel
    /// groups. Required non-empty when `parallel.data > 1`.
    pub batch_inputs: Vec<String>,
    /// Rank-≥2 inputs carrying attention heads on axis 1 — split across
    /// tensor-parallel ranks (the KV caches of a decode step).
    pub head_inputs: Vec<String>,
    /// Insert an [`AllGather`](gaudi_graph::CollectiveKind::AllGather) on every
    /// tensor-parallel-sharded output so each card ends with full tensors
    /// (e.g. full logits for sampling). When off, outputs stay sharded and
    /// [`PartitionedGraph::output_shards`] records how to reassemble them.
    pub gather_outputs: bool,
}

impl PartitionSpec {
    /// The naming convention of `gaudi-models`' LLM builders: `ids`,
    /// `labels`, and `targets` carry the batch, per-layer
    /// `.k_cache`/`.v_cache` inputs carry both the batch (axis 0) and
    /// attention heads (axis 1).
    pub fn llm() -> Self {
        PartitionSpec {
            batch_inputs: vec![
                "ids".into(),
                "labels".into(),
                "targets".into(),
                ".k_cache".into(),
                ".v_cache".into(),
            ],
            head_inputs: vec![".k_cache".into(), ".v_cache".into()],
            gather_outputs: false,
        }
    }

    /// `llm()` with `gather_outputs` enabled.
    pub fn llm_gathered() -> Self {
        PartitionSpec {
            gather_outputs: true,
            ..PartitionSpec::llm()
        }
    }

    fn matches(list: &[String], name: &str) -> bool {
        list.iter().any(|e| name == e || name.ends_with(e.as_str()))
    }
}

/// How one tensor is laid out across the device mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardInfo {
    /// Axis split across data-parallel groups (the batch axis), if any.
    pub dp_axis: Option<usize>,
    /// Axis split across tensor-parallel ranks, if any.
    pub tp_axis: Option<usize>,
}

impl ShardInfo {
    /// Fully replicated on every device.
    pub fn replicated() -> Self {
        ShardInfo::default()
    }
}

/// Output of [`partition`]: the SPMD per-device graph plus the shard
/// metadata the runtime needs to feed and reassemble it.
#[derive(Debug, Clone)]
pub struct PartitionedGraph {
    /// The per-device graph. Identical on every card; node shapes are the
    /// *local* (sharded) shapes.
    pub graph: Graph,
    /// The mesh this graph was partitioned for.
    pub parallel: Parallelism,
    /// Tensor-parallel shard axis per *sharded* parameter name (parameters
    /// absent here are replicated). The graph holds local shapes; the
    /// runtime slices the full parameter along this axis.
    pub param_shards: HashMap<String, usize>,
    /// Layout of every graph input, by name.
    pub input_shards: HashMap<String, ShardInfo>,
    /// Layout of each marked output, aligned with `graph.outputs()`.
    pub output_shards: Vec<ShardInfo>,
    /// Number of collective nodes inserted.
    pub collectives: usize,
}

/// Tensor-parallel state of a value during propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tp {
    Rep,
    Shard(usize),
    /// Per-device partial sums of the full value (a contraction whose
    /// reduced axis was sharded) — must be all-reduced before use.
    Partial,
}

#[derive(Debug, Clone, Copy)]
struct Place {
    dp: Option<usize>,
    tp: Tp,
}

impl Place {
    fn rep() -> Self {
        Place {
            dp: None,
            tp: Tp::Rep,
        }
    }
}

const ERR_DIVIDE: GraphError =
    GraphError::Partition("sharded dimension not divisible by mesh size");
const ERR_FORWARD: GraphError =
    GraphError::Partition("partitioning supports forward (inference) graphs only");

/// Partition `graph` for the given mesh. With `parallel.world() == 1` this
/// is a validated clone with fully-replicated metadata.
pub fn partition(
    graph: &Graph,
    parallel: Parallelism,
    spec: &PartitionSpec,
) -> Result<PartitionedGraph, GraphError> {
    graph.validate()?;
    if parallel.data == 0 || parallel.tensor == 0 {
        return Err(GraphError::Partition("parallelism degrees must be >= 1"));
    }
    if parallel.data > 1 && spec.batch_inputs.is_empty() {
        return Err(GraphError::Partition(
            "data parallelism needs batch_inputs naming the batch-carrying inputs",
        ));
    }
    let dp = parallel.data;
    let tp = parallel.tensor;

    let mut out = Graph::new();
    out.storage_dtype = graph.storage_dtype;
    let mut map: HashMap<NodeId, NodeId> = HashMap::new();
    let mut place: HashMap<NodeId, Place> = HashMap::new();
    let mut collectives = 0usize;
    let mut param_shards = HashMap::new();
    let mut input_shards = HashMap::new();

    for node in graph.nodes() {
        // Any consumed partial sum is first combined with an all-reduce
        // (memoized per producer: later consumers reuse the reduced value).
        for &input in &node.inputs {
            if place[&input].tp == Tp::Partial {
                let reduced = out.all_reduce(map[&input])?;
                collectives += 1;
                map.insert(input, reduced);
                place.get_mut(&input).unwrap().tp = Tp::Rep;
            }
        }

        // The loss head needs fully-replicated operands: gather a
        // vocab-parallel logits shard (Megatron's column-parallel `lm_head`
        // without its fused parallel cross-entropy) before computing it.
        if matches!(node.kind, OpKind::CrossEntropy) {
            for &input in &node.inputs {
                if let Tp::Shard(ax) = place[&input].tp {
                    let gathered = out.all_gather(map[&input], ax, tp)?;
                    collectives += 1;
                    map.insert(input, gathered);
                    place.get_mut(&input).unwrap().tp = Tp::Rep;
                }
            }
        }

        let p = propagate(graph, node, &place, parallel, spec)?;

        if let OpKind::Parameter = node.kind {
            if let Tp::Shard(ax) = p.tp {
                param_shards.insert(node.name.clone(), ax);
            }
        }
        if let OpKind::Input = node.kind {
            input_shards.insert(
                node.name.clone(),
                ShardInfo {
                    dp_axis: p.dp,
                    tp_axis: match p.tp {
                        Tp::Shard(ax) => Some(ax),
                        _ => None,
                    },
                },
            );
        }

        // Local (sharded) shape: divide the dp/tp axes of the full shape.
        let mut dims = graph.shape(node.id).dims().to_vec();
        if let Some(ax) = p.dp {
            if !dims[ax].is_multiple_of(dp) {
                return Err(ERR_DIVIDE);
            }
            dims[ax] /= dp;
        }
        if let Tp::Shard(ax) = p.tp {
            if !dims[ax].is_multiple_of(tp) {
                return Err(ERR_DIVIDE);
            }
            dims[ax] /= tp;
        }
        let shape = Shape::new(&dims)?;
        let inputs: Vec<NodeId> = node.inputs.iter().map(|i| map[i]).collect();
        let new_id = out.push_node(node.kind.clone(), &inputs, shape, &node.name)?;
        map.insert(node.id, new_id);
        place.insert(node.id, p);
    }

    // Reassembly metadata (and optional gathering) for the marked outputs.
    let mut output_shards = Vec::with_capacity(graph.outputs().len());
    for &o in graph.outputs() {
        let mut p = place[&o];
        let mut new_id = map[&o];
        if p.tp == Tp::Partial {
            new_id = out.all_reduce(new_id)?;
            collectives += 1;
            map.insert(o, new_id);
            place.get_mut(&o).unwrap().tp = Tp::Rep;
            p.tp = Tp::Rep;
        }
        if spec.gather_outputs {
            if let Tp::Shard(ax) = p.tp {
                new_id = out.all_gather(new_id, ax, tp)?;
                collectives += 1;
                map.insert(o, new_id);
                place.get_mut(&o).unwrap().tp = Tp::Rep;
                p.tp = Tp::Rep;
            }
        }
        output_shards.push(ShardInfo {
            dp_axis: p.dp,
            tp_axis: match p.tp {
                Tp::Shard(ax) => Some(ax),
                _ => None,
            },
        });
        out.mark_output(new_id);
    }

    Ok(PartitionedGraph {
        graph: out,
        parallel,
        param_shards,
        input_shards,
        output_shards,
        collectives,
    })
}

/// Tensor-parallel layout of one parameter under the Megatron naming rules,
/// or `None` for replication (including the divisibility fallback).
fn param_tp_axis(name: &str, dims: &[usize], tensor: usize) -> Option<usize> {
    if tensor <= 1 {
        return None;
    }
    let (base, is_weight) = if let Some(b) = name.strip_suffix(".w") {
        (b, true)
    } else if let Some(b) = name.strip_suffix(".b") {
        (b, false)
    } else {
        return None;
    };
    let column = [".q_proj", ".k_proj", ".v_proj", ".fc1"]
        .iter()
        .any(|s| base.ends_with(s))
        || base.ends_with("lm_head");
    let row = [".out_proj", ".fc2"].iter().any(|s| base.ends_with(s));
    let axis = if column {
        if is_weight {
            dims.len() - 1
        } else {
            0
        }
    } else if row && is_weight {
        0 // row-parallel bias stays replicated (added after the all-reduce)
    } else {
        return None;
    };
    if !dims[axis].is_multiple_of(tensor) {
        return None; // graceful fallback to replication
    }
    Some(axis)
}

/// Map a shard axis through a reshape by matching prefix element counts of
/// the *full* shapes: the output axis must start at the same flat offset
/// stride and stay divisible by the mesh degree `p`.
fn reshape_axis(in_dims: &[usize], out_dims: &[usize], ax: usize, p: usize) -> Option<usize> {
    let prefix: usize = in_dims[..ax].iter().product();
    let mut acc = 1usize;
    for (j, &d) in out_dims.iter().enumerate() {
        if acc == prefix && d % p == 0 {
            return Some(j);
        }
        acc *= d;
    }
    None
}

/// Combine the placements of a broadcasting binary elementwise op.
fn combine_binary(
    graph: &Graph,
    node: &gaudi_graph::Node,
    pa: Place,
    pb: Place,
) -> Result<Place, GraphError> {
    let out_rank = graph.shape(node.id).rank();
    let ra = graph.shape(node.inputs[0]).rank();
    let rb = graph.shape(node.inputs[1]).rank();

    // Map an axis of input `i` (rank `r`) into output coordinates
    // (broadcasting right-aligns shapes).
    let to_out = |ax: usize, r: usize| ax + out_rank - r;
    // Whether the *other* input broadcasts along output axis `ax_out`.
    let broadcasts = |ax_out: usize, other: usize, other_rank: usize| {
        let shifted = ax_out as isize - (out_rank - other_rank) as isize;
        shifted < 0 || graph.shape(node.inputs[other]).dim(shifted as usize) == 1
    };

    let merge = |a: Option<usize>, b: Option<usize>| -> Result<Option<usize>, GraphError> {
        match (a, b) {
            (None, None) => Ok(None),
            (Some(x), Some(y)) if x == y => Ok(Some(x)),
            (Some(x), None) => {
                if broadcasts(x, 1, rb) {
                    Ok(Some(x))
                } else {
                    Err(GraphError::Partition("inconsistent sharding of operands"))
                }
            }
            (None, Some(y)) => {
                if broadcasts(y, 0, ra) {
                    Ok(Some(y))
                } else {
                    Err(GraphError::Partition("inconsistent sharding of operands"))
                }
            }
            _ => Err(GraphError::Partition("inconsistent sharding of operands")),
        }
    };

    let tp_axis = |p: &Place, r: usize| match p.tp {
        Tp::Shard(ax) => Some(to_out(ax, r)),
        _ => None,
    };
    let dp = merge(pa.dp.map(|a| to_out(a, ra)), pb.dp.map(|a| to_out(a, rb)))?;
    let tp = match merge(tp_axis(&pa, ra), tp_axis(&pb, rb))? {
        Some(ax) => Tp::Shard(ax),
        None => Tp::Rep,
    };
    Ok(Place { dp, tp })
}

/// Placement of `node`'s output given its inputs' placements.
fn propagate(
    graph: &Graph,
    node: &gaudi_graph::Node,
    place: &HashMap<NodeId, Place>,
    parallel: Parallelism,
    spec: &PartitionSpec,
) -> Result<Place, GraphError> {
    let dp = parallel.data;
    let tp = parallel.tensor;
    let p_of = |i: usize| place[&node.inputs[i]];
    let rank_of = |i: usize| graph.shape(node.inputs[i]).rank();
    let dims = graph.shape(node.id);

    Ok(match &node.kind {
        OpKind::Input => {
            let mut p = Place::rep();
            if dp > 1 && PartitionSpec::matches(&spec.batch_inputs, &node.name) {
                if !dims.dim(0).is_multiple_of(dp) {
                    return Err(ERR_DIVIDE);
                }
                p.dp = Some(0);
            }
            if tp > 1 && PartitionSpec::matches(&spec.head_inputs, &node.name) {
                if dims.rank() < 2 || !dims.dim(1).is_multiple_of(tp) {
                    return Err(GraphError::Partition(
                        "head-sharded input needs rank >= 2 with heads divisible on axis 1",
                    ));
                }
                p.tp = Tp::Shard(1);
            }
            p
        }
        OpKind::Parameter => match param_tp_axis(&node.name, dims.dims(), tp) {
            Some(ax) => Place {
                dp: None,
                tp: Tp::Shard(ax),
            },
            None => Place::rep(),
        },
        OpKind::Fill(_) => Place::rep(),

        OpKind::MatMul | OpKind::Einsum(_) => {
            let (pa, pb) = (p_of(0), p_of(1));
            let (ra, rb) = (rank_of(0), rank_of(1));
            let is_einsum = matches!(node.kind, OpKind::Einsum(_));
            // Contraction axes: matmul contracts a's last with b's
            // second-to-last; both einsum specs contract the last axes or
            // behave head-batched — only Rep/head-shard supported there.
            let out_dp = match (pa.dp, pb.dp) {
                (None, None) => None,
                (Some(a), None) if a < ra - 1 => Some(a),
                (Some(a), Some(b)) if a == b && a < ra.min(rb).saturating_sub(2) => Some(a),
                _ => {
                    return Err(GraphError::Partition(
                        "unsupported batch sharding of a contraction",
                    ))
                }
            };
            let out_tp = match (pa.tp, pb.tp) {
                (Tp::Rep, Tp::Rep) => Tp::Rep,
                (Tp::Rep, Tp::Shard(bx)) if !is_einsum && bx == rb - 1 => {
                    Tp::Shard(dims.rank() - 1)
                }
                (Tp::Shard(ax), Tp::Shard(bx)) if !is_einsum && ax == ra - 1 && bx == rb - 2 => {
                    Tp::Partial
                }
                (Tp::Shard(ax), Tp::Shard(bx)) if ra == rb && ax == bx && ax + 2 < ra => {
                    Tp::Shard(ax)
                }
                (Tp::Shard(ax), Tp::Rep) if !is_einsum && rb == 2 && ax < ra - 1 => Tp::Shard(ax),
                _ => {
                    return Err(GraphError::Partition(
                        "unsupported tensor sharding of a contraction",
                    ))
                }
            };
            Place {
                dp: out_dp,
                tp: out_tp,
            }
        }

        OpKind::Add | OpKind::Sub | OpKind::Mul | OpKind::Div | OpKind::Maximum => {
            combine_binary(graph, node, p_of(0), p_of(1))?
        }

        OpKind::ScalarMul(_)
        | OpKind::ScalarAdd(_)
        | OpKind::Square
        | OpKind::Sqrt
        | OpKind::Exp
        | OpKind::Log
        | OpKind::Neg
        | OpKind::FusedElementwise(_) => p_of(0),

        OpKind::Activation(act) => {
            let p = p_of(0);
            // GLU halves the last axis; a shard there would straddle gates.
            if matches!(act, gaudi_graph::Activation::Glu)
                && matches!(p.tp, Tp::Shard(ax) if ax == rank_of(0) - 1)
            {
                return Err(GraphError::Partition("cannot shard the gated axis of GLU"));
            }
            p
        }

        OpKind::Softmax
        | OpKind::ReduceSum { .. }
        | OpKind::ReduceMax { .. }
        | OpKind::ReduceMean { .. } => {
            let p = p_of(0);
            let last = rank_of(0) - 1;
            if p.dp == Some(last) || matches!(p.tp, Tp::Shard(ax) if ax == last) {
                return Err(GraphError::Partition(
                    "cannot shard the reduced axis of a softmax/reduction",
                ));
            }
            p
        }

        OpKind::LayerNorm { .. } => {
            let p = p_of(0);
            let last = rank_of(0) - 1;
            if p.dp == Some(last) || matches!(p.tp, Tp::Shard(ax) if ax == last) {
                return Err(GraphError::Partition(
                    "cannot shard the normalized axis of layernorm",
                ));
            }
            for i in [1, 2] {
                let q = p_of(i);
                if q.dp.is_some() || q.tp != Tp::Rep {
                    return Err(GraphError::Partition(
                        "layernorm scale/shift must be replicated",
                    ));
                }
            }
            p
        }

        OpKind::Transpose => {
            let mut p = p_of(0);
            let r = rank_of(0);
            let swap = |ax: usize| {
                if ax == r - 1 {
                    r - 2
                } else if ax == r - 2 {
                    r - 1
                } else {
                    ax
                }
            };
            p.dp = p.dp.map(swap);
            if let Tp::Shard(ax) = p.tp {
                p.tp = Tp::Shard(swap(ax));
            }
            p
        }

        OpKind::Permute(order) => {
            let mut p = p_of(0);
            let remap = |ax: usize| order.iter().position(|&o| o == ax).unwrap_or(ax);
            p.dp = p.dp.map(remap);
            if let Tp::Shard(ax) = p.tp {
                p.tp = Tp::Shard(remap(ax));
            }
            p
        }

        OpKind::Reshape => {
            let p = p_of(0);
            let in_dims = graph.shape(node.inputs[0]);
            let err = || GraphError::Partition("cannot map shard axis through reshape");
            let dp_axis = match p.dp {
                Some(ax) => {
                    Some(reshape_axis(in_dims.dims(), dims.dims(), ax, dp).ok_or_else(err)?)
                }
                None => None,
            };
            let tp_state = match p.tp {
                Tp::Shard(ax) => {
                    Tp::Shard(reshape_axis(in_dims.dims(), dims.dims(), ax, tp).ok_or_else(err)?)
                }
                other => other,
            };
            Place {
                dp: dp_axis,
                tp: tp_state,
            }
        }

        OpKind::Embedding => {
            let table = p_of(0);
            if table.dp.is_some() || table.tp != Tp::Rep {
                return Err(GraphError::Partition("embedding table must be replicated"));
            }
            let ids = p_of(1);
            if ids.tp != Tp::Rep {
                return Err(GraphError::Partition(
                    "embedding ids must not be tensor-sharded",
                ));
            }
            Place {
                dp: ids.dp,
                tp: Tp::Rep,
            }
        }

        OpKind::BroadcastTo | OpKind::ReduceTo => {
            let p = p_of(0);
            if p.dp.is_some() || p.tp != Tp::Rep {
                return Err(GraphError::Partition(
                    "broadcast/reduce-to supports replicated inputs only",
                ));
            }
            Place::rep()
        }

        OpKind::CrossEntropy
        | OpKind::CrossEntropyGrad
        | OpKind::SoftmaxGrad
        | OpKind::ActivationGrad(_)
        | OpKind::LayerNormGrad { .. }
        | OpKind::EmbeddingGrad => {
            for i in 0..node.inputs.len() {
                let q = p_of(i);
                if q.dp.is_some() || q.tp != Tp::Rep {
                    return Err(ERR_FORWARD);
                }
            }
            Place::rep()
        }

        // Fused attention propagates like the head-batched matmuls it
        // replaces: q/k/v must agree on batch/head sharding strictly above
        // the matrix dims, and the (broadcast) mask must be replicated.
        OpKind::FusedAttention { masked, .. } => {
            let pq = p_of(0);
            let r = rank_of(0);
            let above_matrix = |p: &Place| {
                p.dp.is_none_or(|ax| ax + 2 < r)
                    && match p.tp {
                        Tp::Shard(ax) => ax + 2 < r,
                        Tp::Rep => true,
                        Tp::Partial => false,
                    }
            };
            for i in 1..=2 {
                let q = p_of(i);
                if q.dp != pq.dp || q.tp != pq.tp {
                    return Err(GraphError::Partition(
                        "fused attention operands must share one batch/head sharding",
                    ));
                }
            }
            if !above_matrix(&pq) {
                return Err(GraphError::Partition(
                    "cannot shard the sequence/feature axes of fused attention",
                ));
            }
            if *masked {
                let pm = p_of(3);
                if pm.dp.is_some() || pm.tp != Tp::Rep {
                    return Err(GraphError::Partition(
                        "fused attention mask must be replicated",
                    ));
                }
            }
            pq
        }
        OpKind::FusedSoftmaxMatMul => {
            let (px, pv) = (p_of(0), p_of(1));
            let r = rank_of(0);
            if px.dp != pv.dp || px.tp != pv.tp {
                return Err(GraphError::Partition(
                    "fused softmax-matmul operands must share one batch sharding",
                ));
            }
            let ok = px.dp.is_none_or(|ax| ax + 2 < r)
                && match px.tp {
                    Tp::Shard(ax) => ax + 2 < r,
                    Tp::Rep => true,
                    Tp::Partial => false,
                };
            if !ok {
                return Err(GraphError::Partition(
                    "cannot shard the matrix axes of fused softmax-matmul",
                ));
            }
            px
        }
        OpKind::Collective(_) => return Err(GraphError::Partition("graph is already partitioned")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A one-layer Megatron pattern: x -> col-linear -> gelu -> row-linear.
    fn mlp_graph(d: usize, hidden: usize) -> Graph {
        let mut g = Graph::new();
        let x = g.input("x", &[4, 8, d]).unwrap();
        let w1 = g.parameter("mlp.fc1.w", &[d, hidden]).unwrap();
        let b1 = g.parameter("mlp.fc1.b", &[hidden]).unwrap();
        let h = g.matmul(x, w1).unwrap();
        let h = g.add(h, b1).unwrap();
        let h = g.activation(gaudi_graph::Activation::Gelu, h).unwrap();
        let w2 = g.parameter("mlp.fc2.w", &[hidden, d]).unwrap();
        let b2 = g.parameter("mlp.fc2.b", &[d]).unwrap();
        let y = g.matmul(h, w2).unwrap();
        let y = g.add(y, b2).unwrap();
        g.mark_output(y);
        g
    }

    #[test]
    fn single_device_partition_is_identity() {
        let g = mlp_graph(16, 32);
        let part = partition(&g, Parallelism::single(), &PartitionSpec::llm()).unwrap();
        assert_eq!(part.collectives, 0);
        assert_eq!(part.graph.len(), g.len());
        assert!(part.param_shards.is_empty());
        assert_eq!(part.output_shards[0], ShardInfo::replicated());
    }

    #[test]
    fn megatron_mlp_inserts_one_allreduce() {
        let g = mlp_graph(16, 32);
        let part = partition(&g, Parallelism::tensor(4), &PartitionSpec::llm()).unwrap();
        assert_eq!(
            part.collectives, 1,
            "one all-reduce after the row-parallel matmul"
        );
        // fc1 column-split (weight on out axis, bias with it); fc2 row-split.
        assert_eq!(part.param_shards["mlp.fc1.w"], 1);
        assert_eq!(part.param_shards["mlp.fc1.b"], 0);
        assert_eq!(part.param_shards["mlp.fc2.w"], 0);
        assert!(!part.param_shards.contains_key("mlp.fc2.b"));
        // Hidden activation is sharded 32/4 = 8 wide locally.
        assert!(part
            .graph
            .nodes()
            .iter()
            .any(|n| matches!(n.kind, OpKind::Activation(_)) && n.shape.dims() == [4, 8, 8]));
        // Output is full-width and replicated.
        let out = part.graph.outputs()[0];
        assert_eq!(part.graph.shape(out).dims(), &[4, 8, 16]);
        assert_eq!(part.output_shards[0], ShardInfo::replicated());
    }

    #[test]
    fn data_parallel_splits_the_batch() {
        let g = mlp_graph(16, 32);
        let spec = PartitionSpec {
            batch_inputs: vec!["x".into()],
            ..PartitionSpec::default()
        };
        let part = partition(&g, Parallelism::data(2), &spec).unwrap();
        assert_eq!(part.collectives, 0, "pure DP forward needs no collectives");
        let out = part.graph.outputs()[0];
        assert_eq!(part.graph.shape(out).dims(), &[2, 8, 16]);
        assert_eq!(part.output_shards[0].dp_axis, Some(0));
        assert_eq!(part.input_shards["x"].dp_axis, Some(0));
    }

    #[test]
    fn indivisible_vocab_falls_back_to_replication() {
        let mut g = Graph::new();
        let x = g.input("x", &[2, 1, 16]).unwrap();
        let w = g.parameter("serve.lm_head.w", &[16, 97]).unwrap();
        let b = g.parameter("serve.lm_head.b", &[97]).unwrap();
        let y = g.matmul(x, w).unwrap();
        let y = g.add(y, b).unwrap();
        g.mark_output(y);
        // 97 % 4 != 0 -> lm_head replicates instead of erroring.
        let part = partition(&g, Parallelism::tensor(4), &PartitionSpec::llm()).unwrap();
        assert!(part.param_shards.is_empty());
        assert_eq!(part.collectives, 0);
    }

    #[test]
    fn dp_without_batch_inputs_is_an_error() {
        let g = mlp_graph(16, 32);
        let err = partition(&g, Parallelism::data(2), &PartitionSpec::default()).unwrap_err();
        assert!(matches!(err, GraphError::Partition(_)));
    }

    #[test]
    fn gather_outputs_appends_allgather() {
        let mut g = Graph::new();
        let x = g.input("x", &[2, 1, 16]).unwrap();
        let w = g.parameter("serve.lm_head.w", &[16, 64]).unwrap();
        let b = g.parameter("serve.lm_head.b", &[64]).unwrap();
        let y = g.matmul(x, w).unwrap();
        let y = g.add(y, b).unwrap();
        g.mark_output(y);
        let sharded = partition(&g, Parallelism::tensor(2), &PartitionSpec::llm()).unwrap();
        assert_eq!(sharded.output_shards[0].tp_axis, Some(2));
        let gathered =
            partition(&g, Parallelism::tensor(2), &PartitionSpec::llm_gathered()).unwrap();
        assert_eq!(gathered.output_shards[0].tp_axis, None);
        assert_eq!(gathered.collectives, 1);
        let out = gathered.graph.outputs()[0];
        assert_eq!(gathered.graph.shape(out).dims(), &[2, 1, 64]);
    }
}
