//! Multi-device compilation: schedule a partitioned SPMD graph across the
//! cards of a box, pricing collectives on the NIC lanes.
//!
//! Because the partitioned program is symmetric — every card runs the same
//! graph over equally-sized shards, and the modelled cards are identical —
//! each device's timeline is identical too: a collective's start time (the
//! max of its producers' finish times across devices) equals the local
//! producer finish time. The scheduler therefore times the program once and
//! replicates the plan per device, tagging each copy with its [`DeviceId`].

use crate::partition::PartitionedGraph;
use crate::schedule::{ExecutionPlan, GraphCompiler};
use gaudi_graph::{Graph, GraphError};
use gaudi_hw::{DeviceId, EngineId, Topology};

/// Per-device execution plans for one partitioned graph.
#[derive(Debug, Clone)]
pub struct MultiDevicePlan {
    /// One plan per device, index = device id. Symmetric SPMD timing: all
    /// entries have equal makespans; steps are tagged with their device.
    pub device_plans: Vec<ExecutionPlan>,
    /// Overall makespan across the box, ns.
    pub makespan_ns: f64,
    /// NIC (collective) busy time per device, ns.
    pub collective_ns: f64,
}

impl MultiDevicePlan {
    /// Number of devices in the plan.
    pub fn devices(&self) -> usize {
        self.device_plans.len()
    }

    /// Fraction of the makespan one device's `engine` lane is busy.
    pub fn utilization(&self, device: DeviceId, engine: EngineId) -> f64 {
        if self.makespan_ns <= 0.0 {
            return 0.0;
        }
        self.device_plans[device.index()].engine_busy_ns(engine) / self.makespan_ns
    }

    /// Collective (NIC) time as a fraction of the makespan.
    pub fn collective_share(&self) -> f64 {
        if self.makespan_ns <= 0.0 {
            0.0
        } else {
            self.collective_ns / self.makespan_ns
        }
    }

    /// Makespan in milliseconds.
    pub fn makespan_ms(&self) -> f64 {
        self.makespan_ns / 1.0e6
    }
}

impl GraphCompiler {
    /// Compile a partitioned graph into per-device plans.
    ///
    /// `topo` describes the box; collectives ride its link but ring over the
    /// tensor-parallel group only (data-parallel replicas never exchange
    /// activations during a forward pass). The returned graph is the lowered
    /// per-device graph the plans refer to.
    pub fn compile_partitioned(
        &self,
        part: &PartitionedGraph,
        topo: &Topology,
    ) -> Result<(Graph, MultiDevicePlan), GraphError> {
        let world = part.parallel.world();
        if topo.devices < world {
            return Err(GraphError::Partition(
                "topology has fewer devices than the parallelism plan needs",
            ));
        }
        // Collectives span the tensor-parallel group; degraded links carry
        // over (one slow edge in the fabric paces any ring through it).
        let comm = topo.subring(part.parallel.tensor);
        let (g, base) = self.compile_with_topology(&part.graph, &comm)?;
        let collective_ns = base.engine_busy_ns(EngineId::Nic);
        let makespan_ns = base.makespan_ns;
        let device_plans = (0..world)
            .map(|d| {
                let mut plan = base.clone();
                for step in &mut plan.steps {
                    step.device = DeviceId(d);
                }
                plan
            })
            .collect();
        Ok((
            g,
            MultiDevicePlan {
                device_plans,
                makespan_ns,
                collective_ns,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{partition, Parallelism, PartitionSpec};
    use gaudi_hw::GaudiConfig;

    fn attention_mlp() -> Graph {
        // Big enough that sharding actually shrinks MME time.
        let mut g = Graph::new();
        let x = g.input("x", &[8, 512, 1024]).unwrap();
        let w1 = g.parameter("l.fc1.w", &[1024, 4096]).unwrap();
        let b1 = g.parameter("l.fc1.b", &[4096]).unwrap();
        let h = g.matmul(x, w1).unwrap();
        let h = g.add(h, b1).unwrap();
        let h = g.activation(gaudi_graph::Activation::Gelu, h).unwrap();
        let w2 = g.parameter("l.fc2.w", &[4096, 1024]).unwrap();
        let y = g.matmul(h, w2).unwrap();
        g.mark_output(y);
        g
    }

    #[test]
    fn per_device_plans_are_symmetric_and_tagged() {
        let g = attention_mlp();
        let part = partition(&g, Parallelism::tensor(4), &PartitionSpec::llm()).unwrap();
        let topo = Topology::hls1_box(&GaudiConfig::hls1(), 4);
        let (_, plan) = GraphCompiler::synapse_like()
            .compile_partitioned(&part, &topo)
            .unwrap();
        assert_eq!(plan.devices(), 4);
        for d in 1..4 {
            assert_eq!(
                plan.device_plans[d].makespan_ns,
                plan.device_plans[0].makespan_ns
            );
            assert!(plan.device_plans[d]
                .steps
                .iter()
                .all(|s| s.device == DeviceId(d)));
        }
        assert!(plan.collective_ns > 0.0, "all-reduce must occupy the NIC");
        assert!(plan.collective_share() > 0.0 && plan.collective_share() < 1.0);
    }

    #[test]
    fn single_device_topology_prices_collectives_free() {
        let g = attention_mlp();
        let part = partition(&g, Parallelism::single(), &PartitionSpec::llm()).unwrap();
        let topo = Topology::single();
        let (_, plan) = GraphCompiler::synapse_like()
            .compile_partitioned(&part, &topo)
            .unwrap();
        assert_eq!(plan.collective_ns, 0.0);
        assert_eq!(plan.devices(), 1);
    }

    #[test]
    fn sharding_shrinks_compute_but_adds_collectives() {
        let g = attention_mlp();
        let compiler = GraphCompiler::synapse_like();
        let single = partition(&g, Parallelism::single(), &PartitionSpec::llm()).unwrap();
        let (_, p1) = compiler
            .compile_partitioned(&single, &Topology::single())
            .unwrap();
        let sharded = partition(&g, Parallelism::tensor(4), &PartitionSpec::llm()).unwrap();
        let topo = Topology::hls1_box(&GaudiConfig::hls1(), 4);
        let (_, p4) = compiler.compile_partitioned(&sharded, &topo).unwrap();
        let mme1 = p1.device_plans[0].engine_busy_ns(EngineId::Mme);
        let mme4 = p4.device_plans[0].engine_busy_ns(EngineId::Mme);
        assert!(
            mme4 < mme1,
            "per-card MME work must shrink: {mme4} vs {mme1}"
        );
        assert!(p4.collective_ns > 0.0);
    }

    #[test]
    fn undersized_topology_is_rejected() {
        let g = attention_mlp();
        let part = partition(&g, Parallelism::tensor(4), &PartitionSpec::llm()).unwrap();
        let topo = Topology::hls1_box(&GaudiConfig::hls1(), 2);
        let err = GraphCompiler::synapse_like()
            .compile_partitioned(&part, &topo)
            .unwrap_err();
        assert!(matches!(err, GraphError::Partition(_)));
    }
}
