//! Dead-code elimination.
//!
//! Reverse-mode autograd computes gradients for *every* contributing node,
//! including input activations whose gradients nobody reads (e.g. the causal
//! mask). A production graph compiler prunes those chains before scheduling;
//! this pass removes every node not reachable from a marked output.
//!
//! Graphs with no marked outputs are returned unchanged (nothing would
//! survive, which is never what a caller wants).

use gaudi_graph::{Graph, GraphError, NodeId};
use std::collections::HashMap;

/// Remove nodes unreachable from the marked outputs. Returns the pruned
/// graph and the number of nodes eliminated.
pub fn eliminate_dead_code(graph: &Graph) -> Result<(Graph, usize), GraphError> {
    if graph.outputs().is_empty() {
        return Ok((graph.clone(), 0));
    }
    let mut live = vec![false; graph.len()];
    let mut stack: Vec<NodeId> = graph.outputs().to_vec();
    while let Some(id) = stack.pop() {
        if live[id.index()] {
            continue;
        }
        live[id.index()] = true;
        stack.extend_from_slice(&graph.node(id).inputs);
    }

    let mut out = Graph::new();
    out.storage_dtype = graph.storage_dtype;
    let mut remap: HashMap<NodeId, NodeId> = HashMap::new();
    let mut removed = 0usize;
    for node in graph.nodes() {
        if !live[node.id.index()] {
            removed += 1;
            continue;
        }
        let inputs: Vec<NodeId> = node.inputs.iter().map(|i| remap[i]).collect();
        let new_id = out.push_node(node.kind.clone(), &inputs, node.shape, node.name.clone())?;
        remap.insert(node.id, new_id);
    }
    for o in graph.outputs() {
        out.mark_output(remap[o]);
    }
    Ok((out, removed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaudi_graph::autograd;

    #[test]
    fn removes_unreachable_chains() {
        let mut g = Graph::new();
        let x = g.input("x", &[4]).unwrap();
        let live = g.exp(x).unwrap();
        let dead = g.log(x).unwrap();
        let _deader = g.square(dead).unwrap();
        g.mark_output(live);
        let (pruned, removed) = eliminate_dead_code(&g).unwrap();
        assert_eq!(removed, 2);
        assert_eq!(pruned.len(), 2);
        pruned.validate().unwrap();
    }

    #[test]
    fn no_outputs_means_no_pruning() {
        let mut g = Graph::new();
        let x = g.input("x", &[4]).unwrap();
        let _ = g.exp(x).unwrap();
        let (pruned, removed) = eliminate_dead_code(&g).unwrap();
        assert_eq!(removed, 0);
        assert_eq!(pruned.len(), g.len());
    }

    #[test]
    fn prunes_unused_input_gradients() {
        // Loss through matmul: autograd produces a gradient for the input x
        // that nobody marks as an output; DCE must remove that chain.
        let mut g = Graph::new();
        let x = g.input("x", &[4, 8]).unwrap();
        let w = g.parameter("w", &[8, 2]).unwrap();
        let y = g.matmul(x, w).unwrap();
        let s1 = g.reduce_sum(y, false).unwrap();
        let loss = g.reduce_sum(s1, false).unwrap();
        let grads = autograd::backward(&mut g, loss).unwrap();
        g.mark_output(loss);
        g.mark_output(grads[&w]); // keep only the weight gradient
        let before = g.len();
        let (pruned, removed) = eliminate_dead_code(&g).unwrap();
        assert!(removed > 0, "the dx chain must be dead");
        assert_eq!(pruned.len(), before - removed);
        pruned.validate().unwrap();
        assert_eq!(pruned.outputs().len(), 2);
    }

    #[test]
    fn preserves_output_shapes_and_order() {
        let mut g = Graph::new();
        let x = g.input("x", &[2, 3]).unwrap();
        let a = g.exp(x).unwrap();
        let b = g.softmax(x).unwrap();
        g.mark_output(b);
        g.mark_output(a);
        let (pruned, _) = eliminate_dead_code(&g).unwrap();
        assert_eq!(pruned.outputs().len(), 2);
        assert_eq!(pruned.shape(pruned.outputs()[0]).dims(), &[2, 3]);
    }
}
