//! Operation → compute-engine mapping (the paper's Table 1).
//!
//! The profiling conclusion of §3.2: *"only matrix multiplication operations
//! are mapped to MME, and all other operations are mapped to TPC. Even
//! linear operations on tensors like tensor multiplied by scalar are mapped
//! to TPC."*

use gaudi_graph::OpKind;
use gaudi_hw::EngineId;

/// Engine an operator executes on, per the SynapseAI mapping.
///
/// `lower_einsum` decides the fate of fused contractions: a lowered einsum
/// reaches the MME; an un-lowered one falls back to a TPC kernel.
pub fn engine_for(kind: &OpKind, lower_einsum: bool) -> EngineId {
    match kind {
        // The fused attention kernels are MME-anchored: the two GEMMs own
        // the systolic array while the online softmax rides the TPC out of
        // local memory, so the node occupies the MME lane.
        OpKind::MatMul | OpKind::FusedAttention { .. } | OpKind::FusedSoftmaxMatMul => {
            EngineId::Mme
        }
        OpKind::Einsum(_) => {
            if lower_einsum {
                EngineId::Mme
            } else {
                EngineId::TpcCluster
            }
        }
        OpKind::Input | OpKind::Parameter => EngineId::Host,
        OpKind::Collective(_) => EngineId::Nic,
        _ => EngineId::TpcCluster,
    }
}

/// One row of the reproduced Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// The torch-level operation.
    pub operation: &'static str,
    /// The paper's explanation column.
    pub explanation: &'static str,
    /// Engine the operation maps to.
    pub mapping: EngineId,
}

/// Regenerate Table 1: the operation/hardware mapping via SynapseAI.
///
/// The torch ops are represented by the graph IR operator that models them;
/// mappings are *queried from the compiler*, not hard-coded, so this table
/// is a live check of [`engine_for`].
pub fn table1() -> Vec<Table1Row> {
    let probe: Vec<(&'static str, &'static str, OpKind)> = vec![
        ("torch.mul", "element wise mul", OpKind::Mul),
        ("torch.matmul", "matrix product", OpKind::MatMul),
        ("torch.square", "tensor square", OpKind::Square),
        ("**", "tensor square", OpKind::Square),
        ("tensor +- tensor", "tensor +- tensor", OpKind::Add),
        ("scalar * tensor", "scalar * tensor", OpKind::ScalarMul(2.0)),
        (
            "scalar +- tensor",
            "scalar +- tensor",
            OpKind::ScalarAdd(2.0),
        ),
        ("torch.sqrt", "square root", OpKind::Sqrt),
        ("torch.log", "natural logarithm", OpKind::Log),
    ];
    probe
        .into_iter()
        .map(|(operation, explanation, kind)| Table1Row {
            operation,
            explanation,
            mapping: engine_for(&kind, false),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaudi_graph::{Activation, EinsumSpec};

    #[test]
    fn only_matmul_reaches_the_mme() {
        assert_eq!(engine_for(&OpKind::MatMul, false), EngineId::Mme);
        for kind in [
            OpKind::Mul,
            OpKind::Add,
            OpKind::ScalarMul(3.0),
            OpKind::ScalarAdd(-1.0),
            OpKind::Square,
            OpKind::Sqrt,
            OpKind::Exp,
            OpKind::Log,
            OpKind::Softmax,
            OpKind::LayerNorm { eps: 1e-5 },
            OpKind::Activation(Activation::Gelu),
            OpKind::ReduceSum { keep_dim: false },
            OpKind::Embedding,
        ] {
            assert_eq!(engine_for(&kind, false), EngineId::TpcCluster, "{kind:?}");
        }
    }

    #[test]
    fn einsum_mapping_depends_on_lowering() {
        let e = OpKind::Einsum(EinsumSpec::ScoresQKt);
        assert_eq!(engine_for(&e, false), EngineId::TpcCluster);
        assert_eq!(engine_for(&e, true), EngineId::Mme);
    }

    #[test]
    fn table1_matches_the_paper() {
        let rows = table1();
        assert_eq!(rows.len(), 9);
        // Exactly one row (torch.matmul) maps to MME.
        let mme_rows: Vec<_> = rows.iter().filter(|r| r.mapping == EngineId::Mme).collect();
        assert_eq!(mme_rows.len(), 1);
        assert_eq!(mme_rows[0].operation, "torch.matmul");
        // Every other row maps to TPC.
        assert!(rows
            .iter()
            .filter(|r| r.operation != "torch.matmul")
            .all(|r| r.mapping == EngineId::TpcCluster));
    }

    #[test]
    fn sources_live_on_the_host() {
        assert_eq!(engine_for(&OpKind::Input, false), EngineId::Host);
        assert_eq!(engine_for(&OpKind::Parameter, false), EngineId::Host);
    }
}
