//! Element-wise fusion pass.
//!
//! TPC element-wise operators are memory-bound on the global-access
//! datapath and each launch pays a fixed overhead (§2.2). Fusing chains of
//! shape-preserving unary ops into one kernel removes both the intermediate
//! global-memory round trips and the extra launches — the standard
//! optimization the SynapseAI Graph Compiler applies when it "can analyze
//! the source code thoroughly" (Insight #1). The `ablation_fusion` benchmark
//! quantifies it.

use gaudi_graph::{Graph, GraphError, NodeId, OpKind};
use std::collections::HashMap;

/// Statistics of one fusion run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FusionStats {
    /// Chains fused (each becomes one `FusedElementwise` node).
    pub chains: usize,
    /// Total operators folded into fused nodes.
    pub ops_fused: usize,
    /// Scale (`ScalarMul`) ops absorbed adjacent to an attention softmax —
    /// directly feeding it or feeding it through a mask add. These are the
    /// ops the fused-attention pattern-matcher (`attention_fusion`) folds
    /// into its `scale` factor.
    pub attention_scale_ops: usize,
}

/// Fuse maximal chains of single-consumer unary element-wise operators.
///
/// A node joins the chain of its producer when (a) both are fusible unary
/// ops of identical shape, (b) the producer has exactly one consumer, and
/// (c) the producer is not a marked graph output.
///
/// Attention adjacency: a scale (`ScalarMul`) whose value flows into a
/// softmax — directly or through a mask add — is *always* emitted as a
/// `FusedElementwise` node, even alone, so the attention pattern-matcher
/// sees one canonical scale node between the score matmul and the softmax
/// regardless of how many scale ops the model config emitted. The wrap is
/// cost-neutral (a single-op chain prices identically to the bare op).
pub fn fuse_elementwise(graph: &Graph) -> Result<(Graph, FusionStats), GraphError> {
    let consumers = graph.consumers();
    let is_output = |id: NodeId| graph.outputs().contains(&id);

    // Does `id` feed a softmax, directly or through one mask add?
    let feeds_softmax = |id: NodeId| -> bool {
        match consumers[id.index()].as_slice() {
            [c] => {
                matches!(graph.node(*c).kind, OpKind::Softmax)
                    || (matches!(graph.node(*c).kind, OpKind::Add)
                        && matches!(
                            consumers[c.index()].as_slice(),
                            [cc] if matches!(graph.node(*cc).kind, OpKind::Softmax)
                        ))
            }
            _ => false,
        }
    };

    // A node is a chain *interior* if its single consumer can absorb it.
    let absorbed = |id: NodeId| -> bool {
        let node = graph.node(id);
        if !node.kind.is_fusible_unary() || is_output(id) || consumers[id.index()].len() != 1 {
            return false;
        }
        let consumer = graph.node(consumers[id.index()][0]);
        consumer.kind.is_fusible_unary() && consumer.shape == node.shape
    };

    let mut out = Graph::new();
    out.storage_dtype = graph.storage_dtype;
    let mut remap: HashMap<NodeId, NodeId> = HashMap::new();
    let mut stats = FusionStats::default();

    for node in graph.nodes() {
        if absorbed(node.id) {
            // Skipped: will be emitted as part of its consumer's chain. Its
            // remap entry is written when the chain head is emitted.
            continue;
        }
        let new_id = if node.kind.is_fusible_unary() {
            // Walk the chain of absorbed producers backwards.
            let mut chain = vec![node.kind.clone()];
            let mut cursor = node.inputs[0];
            while absorbed(cursor) {
                chain.push(graph.node(cursor).kind.clone());
                cursor = graph.node(cursor).inputs[0];
            }
            chain.reverse();
            let src = remap[&cursor];
            let adjacent = !is_output(node.id) && feeds_softmax(node.id);
            if adjacent {
                stats.attention_scale_ops += chain
                    .iter()
                    .filter(|o| matches!(o, OpKind::ScalarMul(_)))
                    .count();
            }
            let wrap_lone_scale = adjacent && matches!(node.kind, OpKind::ScalarMul(_));
            if chain.len() == 1 && !wrap_lone_scale {
                out.push_node(node.kind.clone(), &[src], node.shape, node.name.clone())?
            } else {
                if chain.len() > 1 {
                    stats.chains += 1;
                    stats.ops_fused += chain.len();
                }
                out.push_node(
                    OpKind::FusedElementwise(chain),
                    &[src],
                    node.shape,
                    node.name.clone(),
                )?
            }
        } else {
            let inputs: Vec<NodeId> = node.inputs.iter().map(|i| remap[i]).collect();
            out.push_node(node.kind.clone(), &inputs, node.shape, node.name.clone())?
        };
        remap.insert(node.id, new_id);
    }
    for o in graph.outputs() {
        out.mark_output(remap[o]);
    }
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaudi_graph::Activation;

    #[test]
    fn fuses_a_simple_chain() {
        let mut g = Graph::new();
        let x = g.input("x", &[4, 8]).unwrap();
        let a = g.scalar_mul(x, 2.0).unwrap();
        let b = g.scalar_add(a, 1.0).unwrap();
        let c = g.exp(b).unwrap();
        g.mark_output(c);
        let (fused, stats) = fuse_elementwise(&g).unwrap();
        assert_eq!(stats.chains, 1);
        assert_eq!(stats.ops_fused, 3);
        // input + one fused node.
        assert_eq!(fused.len(), 2);
        let f = fused.node(fused.outputs()[0]);
        match &f.kind {
            OpKind::FusedElementwise(ops) => {
                assert_eq!(ops.len(), 3);
                assert!(matches!(ops[0], OpKind::ScalarMul(_)));
                assert!(matches!(ops[2], OpKind::Exp));
            }
            other => panic!("expected fused node, got {other:?}"),
        }
        fused.validate().unwrap();
    }

    #[test]
    fn fan_out_blocks_fusion() {
        let mut g = Graph::new();
        let x = g.input("x", &[4]).unwrap();
        let a = g.exp(x).unwrap();
        let b = g.log(a).unwrap(); // a also consumed below -> no fusion
        let c = g.square(a).unwrap();
        let d = g.add(b, c).unwrap();
        g.mark_output(d);
        let (fused, stats) = fuse_elementwise(&g).unwrap();
        assert_eq!(stats.chains, 0);
        assert_eq!(fused.len(), g.len());
    }

    #[test]
    fn outputs_are_never_absorbed() {
        let mut g = Graph::new();
        let x = g.input("x", &[4]).unwrap();
        let a = g.exp(x).unwrap();
        let b = g.log(a).unwrap();
        g.mark_output(a); // a must survive as an observable output
        g.mark_output(b);
        let (fused, stats) = fuse_elementwise(&g).unwrap();
        assert_eq!(stats.chains, 0);
        assert_eq!(fused.outputs().len(), 2);
    }

    #[test]
    fn glu_is_not_fused() {
        let mut g = Graph::new();
        let x = g.input("x", &[4, 8]).unwrap();
        let a = g.scalar_mul(x, 2.0).unwrap();
        let b = g.activation(Activation::Glu, a).unwrap();
        g.mark_output(b);
        let (fused, stats) = fuse_elementwise(&g).unwrap();
        assert_eq!(stats.chains, 0);
        assert_eq!(fused.len(), 3);
    }

    #[test]
    fn lone_attention_scale_is_canonicalized() {
        // A single score scale feeding a softmax wraps into a one-op
        // FusedElementwise so the attention matcher sees a canonical node.
        let mut g = Graph::new();
        let q = g.input("q", &[1, 8, 8]).unwrap();
        let s = g.matmul(q, q).unwrap();
        let scaled = g.scalar_mul(s, 0.125).unwrap();
        let probs = g.softmax(scaled).unwrap();
        g.mark_output(probs);
        let (fused, stats) = fuse_elementwise(&g).unwrap();
        assert_eq!(stats.attention_scale_ops, 1);
        assert_eq!(stats.chains, 0, "a lone op is not a chain");
        let f = fused
            .nodes()
            .iter()
            .find(|n| matches!(n.kind, OpKind::FusedElementwise(_)))
            .expect("scale wrapped");
        match &f.kind {
            OpKind::FusedElementwise(ops) => {
                assert_eq!(ops.len(), 1);
                assert!(matches!(ops[0], OpKind::ScalarMul(_)));
            }
            _ => unreachable!(),
        }
        fused.validate().unwrap();

        // Through a mask add, the scale is still counted and wrapped.
        let mut g2 = Graph::new();
        let q = g2.input("q", &[1, 8, 8]).unwrap();
        let mask = g2.input("mask", &[8, 8]).unwrap();
        let s = g2.matmul(q, q).unwrap();
        let scaled = g2.scalar_mul(s, 0.125).unwrap();
        let masked = g2.add(scaled, mask).unwrap();
        let probs = g2.softmax(masked).unwrap();
        g2.mark_output(probs);
        let (_, stats2) = fuse_elementwise(&g2).unwrap();
        assert_eq!(stats2.attention_scale_ops, 1);

        // A scale NOT feeding a softmax stays bare.
        let mut g3 = Graph::new();
        let x = g3.input("x", &[8]).unwrap();
        let y = g3.scalar_mul(x, 2.0).unwrap();
        g3.mark_output(y);
        let (f3, stats3) = fuse_elementwise(&g3).unwrap();
        assert_eq!(stats3.attention_scale_ops, 0);
        assert!(f3
            .nodes()
            .iter()
            .all(|n| !matches!(n.kind, OpKind::FusedElementwise(_))));
    }

    #[test]
    fn non_unary_ops_pass_through_with_remapped_inputs() {
        let mut g = Graph::new();
        let x = g.input("x", &[4, 4]).unwrap();
        let a = g.exp(x).unwrap();
        let b = g.neg(a).unwrap();
        let m = g.matmul(b, b).unwrap();
        g.mark_output(m);
        let (fused, stats) = fuse_elementwise(&g).unwrap();
        assert_eq!(stats.chains, 1);
        assert!(fused
            .nodes()
            .iter()
            .any(|n| matches!(n.kind, OpKind::MatMul)));
        fused.validate().unwrap();
    }
}
