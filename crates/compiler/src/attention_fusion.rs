//! Fused-attention pattern matching (the GFormer-style custom-kernel pass).
//!
//! `gaudi_models::attention::softmax_attention` emits the torch-idiomatic
//! subgraph
//!
//! ```text
//! Transpose(K) → MatMul(Q,Kᵀ) → Scale → [Mask add] → Softmax → MatMul(·,V)
//! ```
//!
//! whose two TPC round trips of the S×S score matrix produce exactly the
//! MME idle gaps of the paper's Fig. 4. This pass recognizes the subgraph
//! and swaps in a single [`OpKind::FusedAttention`] node backed by the
//! tiled FlashAttention-style TPC kernel (`gaudi_tpc::kernels::attention`),
//! so the scheduler prices one MME-anchored launch and the memory planner
//! never sees a materialized score tensor.
//!
//! Matching contract:
//!
//! * every *interior* node (the transpose, score matmul, scale chain, mask
//!   add, and softmax) must have exactly one consumer and must not be a
//!   marked graph output — fusion never changes observable values;
//! * the scale may be a bare [`OpKind::ScalarMul`], a chain of them, or a
//!   [`OpKind::FusedElementwise`] chain of only scalar-muls (the shape
//!   `fuse_elementwise` canonicalizes adjacent scale ops into) — the
//!   factors multiply into the fused node's `scale`; an absent scale
//!   matches with `scale = 1.0`;
//! * the mask arm of the optional `Add` may sit on either operand, must
//!   broadcast *into* the score shape, and survives as the fused node's
//!   fourth input;
//! * a `Softmax → MatMul` pair whose upstream does not complete the full
//!   pattern still fuses into the cheaper [`OpKind::FusedSoftmaxMatMul`]
//!   (probability rows stay in TPC local memory instead of round-tripping
//!   through HBM).

use gaudi_graph::{Graph, GraphError, NodeId, OpKind};
use std::collections::{HashMap, HashSet};

/// Statistics of one pattern-match run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AttentionFusionStats {
    /// Full `FusedAttention` swaps performed.
    pub attention: usize,
    /// Partial `FusedSoftmaxMatMul` swaps performed.
    pub softmax_matmul: usize,
    /// Graph nodes eliminated by the swaps.
    pub ops_removed: usize,
}

/// What to emit at a matched pattern's anchor (its final matmul).
enum Replacement {
    Attention {
        q: NodeId,
        k: NodeId,
        v: NodeId,
        mask: Option<NodeId>,
        scale: f32,
    },
    SoftmaxMatMul {
        x: NodeId,
        v: NodeId,
    },
}

struct Match {
    /// Interior nodes consumed into the fused node, dropped from the graph.
    consumed: Vec<NodeId>,
    /// The `MatMul(probs, V)` node the fused node replaces.
    anchor: NodeId,
    replacement: Replacement,
}

/// Run the pass: returns the rewritten graph and match statistics.
pub fn fuse_attention(graph: &Graph) -> Result<(Graph, AttentionFusionStats), GraphError> {
    let consumers = graph.consumers();
    let is_output = |id: NodeId| graph.outputs().contains(&id);
    // Interior nodes feed exactly one consumer and are not observable.
    let sole_consumer = |id: NodeId| -> Option<NodeId> {
        match consumers[id.index()].as_slice() {
            [c] if !is_output(id) => Some(*c),
            _ => None,
        }
    };

    // Walk a scale chain upward from `start` (consumed by `from`) down to a
    // non-scale producer. Returns (effective scale, chain nodes, terminus).
    let match_scale_chain = |start: NodeId, from: NodeId| -> Option<(f32, Vec<NodeId>, NodeId)> {
        let mut scale = 1.0f32;
        let mut chain = Vec::new();
        let mut cur = start;
        let mut expected_consumer = from;
        loop {
            let node = graph.node(cur);
            let factor = match &node.kind {
                OpKind::ScalarMul(s) => *s,
                OpKind::FusedElementwise(ops)
                    if ops.iter().all(|o| matches!(o, OpKind::ScalarMul(_))) =>
                {
                    ops.iter()
                        .map(|o| match o {
                            OpKind::ScalarMul(s) => *s,
                            _ => unreachable!(),
                        })
                        .product()
                }
                _ => return Some((scale, chain, cur)),
            };
            if sole_consumer(cur) != Some(expected_consumer) {
                return None; // fanned-out or observable: not an interior node
            }
            scale *= factor;
            chain.push(cur);
            expected_consumer = cur;
            cur = node.inputs[0];
        }
    };

    // A scores matmul is `MatMul(q, Transpose(k))` with interior transpose.
    let match_scores = |mm: NodeId, from: NodeId| -> Option<(NodeId, NodeId, Vec<NodeId>)> {
        let node = graph.node(mm);
        if !matches!(node.kind, OpKind::MatMul) || sole_consumer(mm) != Some(from) {
            return None;
        }
        let kt = node.inputs[1];
        let ktn = graph.node(kt);
        if !matches!(ktn.kind, OpKind::Transpose) || sole_consumer(kt) != Some(mm) {
            return None;
        }
        Some((node.inputs[0], ktn.inputs[0], vec![mm, kt]))
    };

    let mut matches: Vec<Match> = Vec::new();
    let mut taken: HashSet<NodeId> = HashSet::new();

    for sm in graph.nodes() {
        if !matches!(sm.kind, OpKind::Softmax) {
            continue;
        }
        let Some(pv) = sole_consumer(sm.id) else {
            continue;
        };
        let pvn = graph.node(pv);
        // The probabilities must be the left operand of a plain matmul.
        if !matches!(pvn.kind, OpKind::MatMul) || pvn.inputs[0] != sm.id || pvn.inputs[1] == sm.id {
            continue;
        }
        let v = pvn.inputs[1];

        // Full pattern: walk up through the optional mask add and the scale
        // chain to the Q·Kᵀ matmul.
        let pre = sm.inputs[0];
        let full = 'full: {
            let arms: Vec<(NodeId, Option<NodeId>, Vec<NodeId>)> = match &graph.node(pre).kind {
                OpKind::Add if sole_consumer(pre) == Some(sm.id) => {
                    let add = graph.node(pre);
                    // Try either operand as the score arm; the mask must
                    // broadcast *into* the scores, i.e. the add preserves
                    // the score-arm shape.
                    [0usize, 1]
                        .iter()
                        .filter(|&&i| graph.shape(add.inputs[i]) == add.shape)
                        .map(|&i| (add.inputs[i], Some(add.inputs[1 - i]), vec![pre]))
                        .collect()
                }
                _ => vec![(pre, None, Vec::new())],
            };
            for (scale_top, mask, mut extra) in arms {
                let Some((scale, chain, terminus)) =
                    match_scale_chain(scale_top, if extra.is_empty() { sm.id } else { pre })
                else {
                    continue;
                };
                let from =
                    chain
                        .last()
                        .copied()
                        .unwrap_or(if extra.is_empty() { sm.id } else { pre });
                let Some((q, k, score_nodes)) = match_scores(terminus, from) else {
                    continue;
                };
                // A mask that is itself an interior chain node would dangle.
                if let Some(m) = mask {
                    if score_nodes.contains(&m) || chain.contains(&m) {
                        continue;
                    }
                }
                extra.extend(chain);
                extra.extend(score_nodes);
                extra.push(sm.id);
                break 'full Some((q, k, mask, scale, extra));
            }
            None
        };

        let m = match full {
            Some((q, k, mask, scale, consumed)) => Match {
                consumed,
                anchor: pv,
                replacement: Replacement::Attention {
                    q,
                    k,
                    v,
                    mask,
                    scale,
                },
            },
            None => Match {
                consumed: vec![sm.id],
                anchor: pv,
                replacement: Replacement::SoftmaxMatMul { x: sm.inputs[0], v },
            },
        };
        // Two overlapping patterns (e.g. one's anchor is another's score
        // matmul) must not both rewrite; first match wins.
        if m.consumed
            .iter()
            .chain([&m.anchor])
            .any(|n| taken.contains(n))
        {
            continue;
        }
        taken.extend(m.consumed.iter().copied());
        taken.insert(m.anchor);
        matches.push(m);
    }

    // Rebuild, skipping consumed interiors and swapping the fused node in
    // at each anchor.
    let mut skip: HashSet<NodeId> = HashSet::new();
    let mut at_anchor: HashMap<NodeId, &Match> = HashMap::new();
    let mut stats = AttentionFusionStats::default();
    for m in &matches {
        skip.extend(m.consumed.iter().copied());
        at_anchor.insert(m.anchor, m);
        stats.ops_removed += m.consumed.len();
        match m.replacement {
            Replacement::Attention { .. } => stats.attention += 1,
            Replacement::SoftmaxMatMul { .. } => stats.softmax_matmul += 1,
        }
    }

    let mut out = Graph::new();
    out.storage_dtype = graph.storage_dtype;
    let mut remap: HashMap<NodeId, NodeId> = HashMap::new();
    for node in graph.nodes() {
        if skip.contains(&node.id) {
            continue;
        }
        let new_id = if let Some(m) = at_anchor.get(&node.id) {
            match &m.replacement {
                Replacement::Attention {
                    q,
                    k,
                    v,
                    mask,
                    scale,
                } => {
                    let mut inputs = vec![remap[q], remap[k], remap[v]];
                    if let Some(mk) = mask {
                        inputs.push(remap[mk]);
                    }
                    out.push_node(
                        OpKind::FusedAttention {
                            scale: *scale,
                            masked: mask.is_some(),
                        },
                        &inputs,
                        node.shape,
                        node.name.clone(),
                    )?
                }
                Replacement::SoftmaxMatMul { x, v } => out.push_node(
                    OpKind::FusedSoftmaxMatMul,
                    &[remap[x], remap[v]],
                    node.shape,
                    node.name.clone(),
                )?,
            }
        } else {
            let inputs: Vec<NodeId> = node.inputs.iter().map(|i| remap[i]).collect();
            out.push_node(node.kind.clone(), &inputs, node.shape, node.name.clone())?
        };
        remap.insert(node.id, new_id);
    }
    for o in graph.outputs() {
        out.mark_output(remap[o]);
    }
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-build the exact subgraph `gaudi_models::attention` emits.
    fn attention_graph(masked: bool) -> Graph {
        let mut g = Graph::new();
        let q = g.input("q", &[2, 4, 16, 8]).unwrap();
        let k = g.input("k", &[2, 4, 16, 8]).unwrap();
        let v = g.input("v", &[2, 4, 16, 8]).unwrap();
        let kt = g.transpose(k).unwrap();
        let scores = g.matmul(q, kt).unwrap();
        g.name_last("attn_scores");
        let scaled = g.scalar_mul(scores, 0.353).unwrap();
        let pre = if masked {
            let mask = g.input("mask", &[16, 16]).unwrap();
            g.add(scaled, mask).unwrap()
        } else {
            scaled
        };
        let probs = g.softmax(pre).unwrap();
        g.name_last("attn_softmax");
        let out = g.matmul(probs, v).unwrap();
        g.name_last("attn_output");
        g.mark_output(out);
        g
    }

    fn fused_nodes(g: &Graph) -> Vec<&gaudi_graph::Node> {
        g.nodes()
            .iter()
            .filter(|n| matches!(n.kind, OpKind::FusedAttention { .. }))
            .collect()
    }

    #[test]
    fn unmasked_attention_collapses_to_one_node() {
        let g = attention_graph(false);
        let (f, stats) = fuse_attention(&g).unwrap();
        assert_eq!(stats.attention, 1);
        assert_eq!(stats.softmax_matmul, 0);
        assert_eq!(stats.ops_removed, 4); // kt, scores, scaled, softmax
                                          // 3 inputs + the fused node.
        assert_eq!(f.len(), 4);
        let fa = fused_nodes(&f)[0];
        match fa.kind {
            OpKind::FusedAttention { scale, masked } => {
                assert!((scale - 0.353).abs() < 1e-7);
                assert!(!masked);
            }
            _ => unreachable!(),
        }
        assert_eq!(fa.inputs.len(), 3);
        assert_eq!(fa.name, "attn_output");
        assert_eq!(fa.shape.dims(), &[2, 4, 16, 8]);
        f.validate().unwrap();
        assert_eq!(f.outputs().len(), 1);
    }

    #[test]
    fn masked_attention_keeps_the_mask_operand() {
        let g = attention_graph(true);
        let (f, stats) = fuse_attention(&g).unwrap();
        assert_eq!(stats.attention, 1);
        assert_eq!(stats.ops_removed, 5); // + the mask add
        let fa = fused_nodes(&f)[0];
        assert!(matches!(
            fa.kind,
            OpKind::FusedAttention { masked: true, .. }
        ));
        assert_eq!(fa.inputs.len(), 4);
        let mask_in = f.node(fa.inputs[3]);
        assert_eq!(mask_in.name, "mask");
        f.validate().unwrap();
    }

    #[test]
    fn scale_chain_factors_multiply() {
        // Two stacked scalar-muls (and a FusedElementwise chain) both fold
        // into one effective scale.
        let mut g = Graph::new();
        let q = g.input("q", &[1, 8, 64]).unwrap();
        let k = g.input("k", &[1, 8, 64]).unwrap();
        let v = g.input("v", &[1, 8, 64]).unwrap();
        let kt = g.transpose(k).unwrap();
        let scores = g.matmul(q, kt).unwrap();
        let s1 = g.scalar_mul(scores, 0.5).unwrap();
        let s2 = g.scalar_mul(s1, 0.25).unwrap();
        let probs = g.softmax(s2).unwrap();
        let out = g.matmul(probs, v).unwrap();
        g.mark_output(out);
        let (f, stats) = fuse_attention(&g).unwrap();
        assert_eq!(stats.attention, 1);
        match fused_nodes(&f)[0].kind {
            OpKind::FusedAttention { scale, .. } => assert!((scale - 0.125).abs() < 1e-7),
            _ => unreachable!(),
        }

        // Same graph with the chain pre-fused by fuse_elementwise.
        let (pre, fs) = crate::fusion::fuse_elementwise(&g).unwrap();
        assert_eq!(fs.chains, 1);
        let (f2, stats2) = fuse_attention(&pre).unwrap();
        assert_eq!(stats2.attention, 1);
        match fused_nodes(&f2)[0].kind {
            OpKind::FusedAttention { scale, .. } => assert!((scale - 0.125).abs() < 1e-7),
            _ => unreachable!(),
        }
    }

    #[test]
    fn fanned_out_probabilities_block_fusion() {
        let mut g = Graph::new();
        let q = g.input("q", &[1, 8, 64]).unwrap();
        let k = g.input("k", &[1, 8, 64]).unwrap();
        let v = g.input("v", &[1, 8, 64]).unwrap();
        let kt = g.transpose(k).unwrap();
        let scores = g.matmul(q, kt).unwrap();
        let scaled = g.scalar_mul(scores, 0.125).unwrap();
        let probs = g.softmax(scaled).unwrap();
        let out = g.matmul(probs, v).unwrap();
        g.mark_output(out);
        g.mark_output(probs); // observable: must survive
        let (f, stats) = fuse_attention(&g).unwrap();
        assert_eq!(stats.attention, 0);
        assert_eq!(stats.softmax_matmul, 0);
        assert_eq!(f.len(), g.len());
    }

    #[test]
    fn bare_softmax_matmul_gets_the_partial_fusion() {
        let mut g = Graph::new();
        let x = g.input("x", &[4, 32, 128]).unwrap();
        let v = g.input("v", &[4, 128, 64]).unwrap();
        let probs = g.softmax(x).unwrap();
        let out = g.matmul(probs, v).unwrap();
        g.mark_output(out);
        let (f, stats) = fuse_attention(&g).unwrap();
        assert_eq!(stats.attention, 0);
        assert_eq!(stats.softmax_matmul, 1);
        assert_eq!(stats.ops_removed, 1);
        assert!(f
            .nodes()
            .iter()
            .any(|n| matches!(n.kind, OpKind::FusedSoftmaxMatMul)));
        f.validate().unwrap();
    }

    #[test]
    fn fanned_out_scores_fall_back_to_partial_fusion() {
        // The score matmul feeds a second consumer, so only the
        // softmax+matmul pair fuses.
        let mut g = Graph::new();
        let q = g.input("q", &[1, 8, 64]).unwrap();
        let k = g.input("k", &[1, 8, 64]).unwrap();
        let v = g.input("v", &[1, 8, 64]).unwrap();
        let kt = g.transpose(k).unwrap();
        let scores = g.matmul(q, kt).unwrap();
        let scaled = g.scalar_mul(scores, 0.125).unwrap();
        let probs = g.softmax(scaled).unwrap();
        let out = g.matmul(probs, v).unwrap();
        let aux = g.exp(scores).unwrap(); // second consumer of scores
        g.mark_output(out);
        g.mark_output(aux);
        let (f, stats) = fuse_attention(&g).unwrap();
        assert_eq!(stats.attention, 0);
        assert_eq!(stats.softmax_matmul, 1);
        f.validate().unwrap();
    }

    #[test]
    fn downstream_consumers_are_remapped() {
        let mut g = attention_graph(false);
        let out = g.outputs()[0];
        let tail = g.exp(out).unwrap();
        g.mark_output(tail);
        let (f, stats) = fuse_attention(&g).unwrap();
        assert_eq!(stats.attention, 1);
        f.validate().unwrap();
        let exp = f
            .nodes()
            .iter()
            .find(|n| matches!(n.kind, OpKind::Exp))
            .unwrap();
        assert!(matches!(
            f.node(exp.inputs[0]).kind,
            OpKind::FusedAttention { .. }
        ));
    }

    #[test]
    fn stacked_attention_layers_both_fuse() {
        // Layer 2 consumes layer 1's output as q/k/v: both patterns fuse.
        let mut g = Graph::new();
        let q = g.input("q", &[2, 16, 64]).unwrap();
        let k = g.input("k", &[2, 16, 64]).unwrap();
        let v = g.input("v", &[2, 16, 64]).unwrap();
        let layer = |g: &mut Graph, q: NodeId, k: NodeId, v: NodeId| {
            let kt = g.transpose(k).unwrap();
            let scores = g.matmul(q, kt).unwrap();
            let scaled = g.scalar_mul(scores, 0.125).unwrap();
            let probs = g.softmax(scaled).unwrap();
            g.matmul(probs, v).unwrap()
        };
        let h = layer(&mut g, q, k, v);
        let out = layer(&mut g, h, h, h);
        g.mark_output(out);
        let (f, stats) = fuse_attention(&g).unwrap();
        assert_eq!(stats.attention, 2);
        assert_eq!(fused_nodes(&f).len(), 2);
        f.validate().unwrap();
    }
}
