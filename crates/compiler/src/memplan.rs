//! Static HBM memory planning: tensor lifetimes, in-placing, and arena
//! packing for the scheduled phase graph.
//!
//! The paper's §3.4 pins 32 GB of HBM as the binding resource for LLM
//! workloads on Gaudi, so a credible admission controller has to budget
//! activation/workspace memory, not just weights and KV cache. This pass
//! plans that budget statically, in the InfiniNN staging order:
//!
//! 1. **lifetime analysis** — every non-parameter node defines one tensor
//!    at its issue step; the tensor stays live through the step of its
//!    last consumer (graph outputs survive to the end of the plan);
//! 2. **in-placing** — an elementwise op whose operand *dies at that very
//!    consumer* (and matches its byte size) writes over the operand's
//!    buffer instead of allocating a fresh one;
//! 3. **arena packing** — the surviving buffers are packed into one
//!    activation arena by a greedy best-fit free-list sweep over the
//!    lifetime events, producing a concrete byte offset per tensor;
//! 4. **offset locking** — the packed extent ([`MemoryPlan::arena_bytes`])
//!    is the number admission reserves: a fixed region the executor could
//!    address without ever calling an allocator mid-phase.
//!
//! Both schedulers issue nodes in the graph's SSA order, so step indices
//! here are node indices; zero-cost metadata ops still occupy a step,
//! which only makes the plan conservative (their "tensor" is an alias the
//! packer treats as storage).
//!
//! The reported numbers nest as
//! `peak_bytes <= arena_bytes <= naive_bytes`, where
//! [`MemoryPlan::naive_bytes`] is the sum-of-all-tensors footprint a
//! planner-less runtime would have to provision (no lifetime reuse at
//! all) and [`MemoryPlan::peak_bytes`] is the live-byte high-water mark —
//! exactly what an [`HbmTracker`](gaudi_hw::memory::HbmTracker) replaying
//! the alloc/free events observes, which the property tests pin.

use gaudi_graph::{Graph, NodeId, OpKind};

/// Planning knobs.
#[derive(Debug, Clone, Copy)]
pub struct MemPlanOptions {
    /// Let an elementwise consumer overwrite an operand that dies at it.
    pub inplace: bool,
}

impl Default for MemPlanOptions {
    fn default() -> Self {
        MemPlanOptions { inplace: true }
    }
}

/// One planned tensor: the closed lifetime interval `[start, end]` (in
/// issue steps) of the value a node defines, and where its bytes live in
/// the activation arena.
#[derive(Debug, Clone, Copy)]
pub struct TensorInterval {
    /// The defining node.
    pub node: NodeId,
    /// Tensor size in bytes (`numel * storage dtype size`).
    pub bytes: u64,
    /// Issue step at which the tensor is defined (== node index).
    pub start: usize,
    /// Issue step of the last consumer (inclusive); graph outputs extend
    /// to the final step.
    pub end: usize,
    /// Backing buffer id; in-placed tensors share their operand's buffer.
    pub buffer: usize,
    /// Byte offset of the backing buffer within the arena.
    pub offset: u64,
}

/// One physical allocation in the arena: the union of the lifetimes of
/// every tensor in-placed onto it.
#[derive(Debug, Clone, Copy)]
struct Buffer {
    bytes: u64,
    start: usize,
    end: usize,
    offset: u64,
}

/// The planner's output for one compiled phase graph.
#[derive(Debug, Clone, Default)]
pub struct MemoryPlan {
    /// Per-tensor lifetime intervals and locked offsets, in issue order.
    pub intervals: Vec<TensorInterval>,
    /// Live-byte high-water mark of the lifetime sweep — the peak an
    /// event-by-event allocator replay reaches.
    pub peak_bytes: u64,
    /// Extent of the packed arena (what admission reserves). Best-fit
    /// packing can fragment, so `arena_bytes >= peak_bytes`.
    pub arena_bytes: u64,
    /// Sum of every tensor's size: the no-reuse baseline a planner-less
    /// budget would have to reserve.
    pub naive_bytes: u64,
    /// Tensors that reuse a dying operand's buffer instead of a fresh one.
    pub inplaced: usize,
    /// Issue steps covered by the plan (== graph length).
    pub steps: usize,
    /// Bytes of fused-kernel tile scratch planned as single-step intervals
    /// (see [`fused_scratch_bytes`]). Already included in the peak/arena
    /// numbers; broken out for reporting.
    pub scratch_bytes: u64,
}

impl MemoryPlan {
    /// `naive_bytes / arena_bytes`: how many times over the arena is
    /// reused relative to a no-reuse budget (`1.0` for an empty plan).
    pub fn reuse_factor(&self) -> f64 {
        if self.arena_bytes == 0 {
            1.0
        } else {
            self.naive_bytes as f64 / self.arena_bytes as f64
        }
    }
}

/// Whether `kind` computes elementwise over same-shaped operands, making
/// it a legal in-place consumer of a dying input.
fn is_elementwise(kind: &OpKind) -> bool {
    kind.is_fusible_unary()
        || matches!(
            kind,
            OpKind::Add
                | OpKind::Sub
                | OpKind::Mul
                | OpKind::Div
                | OpKind::Maximum
                | OpKind::FusedElementwise(_)
        )
}

/// Cores per TPC cluster assumed for fused-kernel scratch sizing. Matches
/// `gaudi_hw::config::TpcConfig::default().num_cores` (the planner is
/// graph-only, so the constant is mirrored rather than imported).
const TPC_CORES: u64 = 8;

/// Per-phase HBM spill scratch of a fused kernel's tile buffers.
///
/// The fused attention kernels keep their working set (staged Q row,
/// output accumulator, one 64-wide score tile — or the staged probability
/// row for the softmax-matmul) in vector local memory, but the planner
/// charges one VLM-sized save area per core so a preempted phase can spill
/// its tiles — a *single-step* interval alive only while the fused node
/// executes, unlike the S×S score tensor the unfused graph keeps live
/// across five ops. Non-fused nodes need no scratch.
pub fn fused_scratch_bytes(g: &Graph, node: &gaudi_graph::Node) -> u64 {
    let elem = g.storage_dtype.size_of() as u64;
    match &node.kind {
        OpKind::FusedAttention { .. } => {
            let d = g.shape(node.inputs[0]).last_dim() as u64;
            let dv = g.shape(node.inputs[2]).last_dim() as u64;
            TPC_CORES * (d + dv + 64) * elem
        }
        OpKind::FusedSoftmaxMatMul => {
            let m = g.shape(node.inputs[0]).last_dim() as u64;
            TPC_CORES * m * elem
        }
        _ => 0,
    }
}

/// Plan `g` with default options (in-placing on).
pub fn plan_memory(g: &Graph) -> MemoryPlan {
    plan_memory_with(g, MemPlanOptions::default())
}

/// Plan the activation memory of a scheduled graph: lifetimes, in-placing,
/// and best-fit arena offsets. Parameters are excluded — they are resident
/// weights, budgeted separately by the serving stack.
pub fn plan_memory_with(g: &Graph, opts: MemPlanOptions) -> MemoryPlan {
    let steps = g.len();
    if steps == 0 {
        return MemoryPlan::default();
    }
    let elem = g.storage_dtype.size_of() as u64;
    let consumers = g.consumers();
    let last_step = steps - 1;

    // 1. Lifetimes. `planned[i]` is Some(interval index) for nodes whose
    // output the arena must hold.
    let mut planned: Vec<Option<usize>> = vec![None; steps];
    let mut intervals: Vec<TensorInterval> = Vec::new();
    let mut naive_bytes = 0u64;
    let mut scratch_bytes = 0u64;
    for node in g.nodes() {
        if matches!(node.kind, OpKind::Parameter) {
            continue; // resident weights, not activation workspace
        }
        let bytes = g.shape(node.id).numel() as u64 * elem;
        let end = if g.outputs().contains(&node.id) {
            last_step
        } else {
            consumers[node.id.index()]
                .iter()
                .map(|c| c.index())
                .max()
                .unwrap_or(node.id.index())
        };
        naive_bytes += bytes;
        planned[node.id.index()] = Some(intervals.len());
        intervals.push(TensorInterval {
            node: node.id,
            bytes,
            start: node.id.index(),
            end,
            buffer: usize::MAX, // assigned below
            offset: 0,
        });
        // Fused-kernel tile scratch: a second, single-step interval that
        // dies the moment the kernel retires. Pushed after the output
        // interval so `planned` (used for in-placing) keeps pointing at
        // the real tensor.
        let scratch = fused_scratch_bytes(g, node);
        if scratch > 0 {
            naive_bytes += scratch;
            scratch_bytes += scratch;
            intervals.push(TensorInterval {
                node: node.id,
                bytes: scratch,
                start: node.id.index(),
                end: node.id.index(),
                buffer: usize::MAX,
                offset: 0,
            });
        }
    }

    // 2. In-placing: an elementwise node may adopt the buffer of an
    // operand that (a) is planned, (b) matches its byte size, and (c) has
    // its last use at this very node — so the buffer is dead the moment
    // the output is produced and overwriting it aliases nothing live.
    let mut buffers: Vec<Buffer> = Vec::new();
    let mut inplaced = 0usize;
    for idx in 0..intervals.len() {
        let iv = intervals[idx];
        let node = g.node(iv.node);
        let mut adopted = None;
        if opts.inplace && is_elementwise(&node.kind) {
            for &input in &node.inputs {
                let Some(&Some(src)) = planned.get(input.index()) else {
                    continue;
                };
                let src_iv = intervals[src];
                let buf = buffers[src_iv.buffer];
                // The whole buffer (every tensor chained onto it) must die
                // exactly here, and byte sizes must match.
                if src_iv.bytes == iv.bytes && buf.end == iv.start && src_iv.end == iv.start {
                    adopted = Some(src_iv.buffer);
                    break;
                }
            }
        }
        let buffer = match adopted {
            Some(b) => {
                buffers[b].end = buffers[b].end.max(iv.end);
                inplaced += 1;
                b
            }
            None => {
                buffers.push(Buffer {
                    bytes: iv.bytes,
                    start: iv.start,
                    end: iv.end,
                    offset: 0,
                });
                buffers.len() - 1
            }
        };
        intervals[idx].buffer = buffer;
    }

    // 3. Live-byte peak: replay the buffer lifetimes step by step — a
    // buffer allocates at the top of its start step and frees at the
    // bottom of its end step, so a dying operand and the output consuming
    // it are both charged during the consumer's step.
    let mut alloc_at: Vec<Vec<usize>> = vec![Vec::new(); steps];
    let mut free_at: Vec<Vec<usize>> = vec![Vec::new(); steps];
    for (b, buf) in buffers.iter().enumerate() {
        alloc_at[buf.start].push(b);
        free_at[buf.end].push(b);
    }
    let mut live = 0u64;
    let mut peak_bytes = 0u64;
    for s in 0..steps {
        for &b in &alloc_at[s] {
            live += buffers[b].bytes;
        }
        peak_bytes = peak_bytes.max(live);
        for &b in &free_at[s] {
            live -= buffers[b].bytes;
        }
    }

    // 4. Greedy best-fit packing over the same event order: free gaps are
    // kept sorted by offset and coalesced; each new buffer takes the
    // smallest gap that fits (ties to the lowest offset), or extends the
    // arena top. Deterministic: events are processed in step order and
    // buffer-id order within a step.
    let mut gaps: Vec<(u64, u64)> = Vec::new(); // (offset, len), sorted by offset
    let mut top = 0u64; // high-water extent of the arena
    for s in 0..steps {
        for &b in &alloc_at[s] {
            let bytes = buffers[b].bytes;
            let best = gaps
                .iter()
                .enumerate()
                .filter(|(_, &(_, len))| len >= bytes)
                .min_by_key(|&(_, &(off, len))| (len, off))
                .map(|(i, _)| i);
            let offset = match best {
                Some(i) => {
                    let (off, len) = gaps[i];
                    if len == bytes {
                        gaps.remove(i);
                    } else {
                        gaps[i] = (off + bytes, len - bytes);
                    }
                    off
                }
                None => {
                    let off = top;
                    top += bytes;
                    off
                }
            };
            buffers[b].offset = offset;
        }
        for &b in &free_at[s] {
            let (off, len) = (buffers[b].offset, buffers[b].bytes);
            if len == 0 {
                continue;
            }
            let i = gaps.partition_point(|&(o, _)| o < off);
            gaps.insert(i, (off, len));
            // Coalesce with the right neighbor, then the left.
            if i + 1 < gaps.len() && gaps[i].0 + gaps[i].1 == gaps[i + 1].0 {
                gaps[i].1 += gaps[i + 1].1;
                gaps.remove(i + 1);
            }
            if i > 0 && gaps[i - 1].0 + gaps[i - 1].1 == gaps[i].0 {
                gaps[i - 1].1 += gaps[i].1;
                gaps.remove(i);
            }
        }
    }

    for iv in &mut intervals {
        iv.offset = buffers[iv.buffer].offset;
    }
    MemoryPlan {
        intervals,
        peak_bytes,
        arena_bytes: top,
        naive_bytes,
        inplaced,
        steps,
        scratch_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaudi_graph::Graph;

    /// A chain of elementwise ops: everything in-places onto one buffer.
    fn chain() -> Graph {
        let mut g = Graph::new();
        let x = g.input("x", &[64, 64]).unwrap();
        let a = g.exp(x).unwrap();
        let b = g.neg(a).unwrap();
        let c = g.sqrt(b).unwrap();
        g.mark_output(c);
        g
    }

    #[test]
    fn elementwise_chain_collapses_to_one_buffer() {
        let plan = plan_memory(&chain());
        let bytes = 64 * 64 * 4u64;
        assert_eq!(plan.naive_bytes, 4 * bytes);
        assert_eq!(plan.inplaced, 3);
        assert_eq!(plan.peak_bytes, bytes);
        assert_eq!(plan.arena_bytes, bytes);
        // All four tensors share buffer 0 at offset 0.
        assert!(plan.intervals.iter().all(|iv| iv.buffer == 0));
    }

    #[test]
    fn inplacing_off_keeps_distinct_buffers() {
        let plan = plan_memory_with(&chain(), MemPlanOptions { inplace: false });
        let bytes = 64 * 64 * 4u64;
        assert_eq!(plan.inplaced, 0);
        // Operand + result live together during each step…
        assert_eq!(plan.peak_bytes, 2 * bytes);
        // …and dead slots are still recycled by the packer.
        assert_eq!(plan.arena_bytes, 2 * bytes);
        assert!(plan.arena_bytes < plan.naive_bytes);
    }

    #[test]
    fn parameters_are_not_activation_workspace() {
        let mut g = Graph::new();
        let x = g.input("x", &[8, 16]).unwrap();
        let w = g.parameter("w", &[16, 16]).unwrap();
        let y = g.matmul(x, w).unwrap();
        g.mark_output(y);
        let plan = plan_memory(&g);
        let w_id = w;
        assert!(plan.intervals.iter().all(|iv| iv.node != w_id));
        assert_eq!(plan.naive_bytes, (8 * 16 + 8 * 16) * 4);
    }

    #[test]
    fn fanout_blocks_inplacing() {
        // x feeds two consumers: the first (exp) must NOT overwrite it.
        let mut g = Graph::new();
        let x = g.input("x", &[32]).unwrap();
        let a = g.exp(x).unwrap();
        let b = g.log(x).unwrap();
        let c = g.add(a, b).unwrap();
        g.mark_output(c);
        let plan = plan_memory(&g);
        let iv = |id: gaudi_graph::NodeId| {
            *plan
                .intervals
                .iter()
                .find(|iv| iv.node == id)
                .expect("planned")
        };
        assert_ne!(iv(a).buffer, iv(x).buffer, "x is still live at exp");
        // log is x's last consumer → it may take x's buffer; add reuses a
        // dying operand's buffer too.
        assert_eq!(plan.inplaced, 2);
    }

    #[test]
    fn outputs_survive_to_the_last_step() {
        let mut g = Graph::new();
        let x = g.input("x", &[16]).unwrap();
        let y = g.exp(x).unwrap();
        g.mark_output(y);
        let z = g.input("z", &[16]).unwrap();
        let w = g.neg(z).unwrap();
        g.mark_output(w);
        let plan = plan_memory(&g);
        let last = plan.steps - 1;
        for out in [y, w] {
            let iv = plan.intervals.iter().find(|iv| iv.node == out).unwrap();
            assert_eq!(iv.end, last);
        }
    }

    #[test]
    fn concurrently_live_buffers_never_overlap() {
        // Mixed graph with fan-out, reductions, and a matmul.
        let mut g = Graph::new();
        let x = g.input("x", &[16, 32]).unwrap();
        let w = g.parameter("w", &[32, 32]).unwrap();
        let h = g.matmul(x, w).unwrap();
        let s = g.softmax(h).unwrap();
        let r = g.reduce_sum(s, true).unwrap();
        let n = g.div(s, r).unwrap();
        g.mark_output(n);
        let plan = plan_memory(&g);
        for a in &plan.intervals {
            for b in &plan.intervals {
                if a.buffer == b.buffer {
                    continue;
                }
                let time_overlap = a.start <= b.end && b.start <= a.end;
                let space_overlap = a.offset < b.offset + b.bytes && b.offset < a.offset + a.bytes;
                assert!(
                    !(time_overlap && space_overlap),
                    "{:?} and {:?} overlap in time and space",
                    a,
                    b
                );
            }
        }
        assert!(plan.peak_bytes <= plan.arena_bytes);
        assert!(plan.arena_bytes <= plan.naive_bytes);
    }

    #[test]
    fn fused_attention_scratch_is_a_single_step_interval() {
        let mut g = Graph::new();
        let q = g.input("q", &[2, 64, 64]).unwrap();
        let k = g.input("k", &[2, 128, 64]).unwrap();
        let v = g.input("v", &[2, 128, 64]).unwrap();
        let a = g.fused_attention(q, k, v, None, 0.125).unwrap();
        let y = g.exp(a).unwrap();
        g.mark_output(y);
        let plan = plan_memory(&g);
        // Scratch = 8 cores * (d + dv + 64) elems * 4 B, alive one step.
        let expect = 8 * (64 + 64 + 64) * 4;
        assert_eq!(plan.scratch_bytes, expect);
        let scratch = plan
            .intervals
            .iter()
            .find(|iv| iv.node == a && iv.bytes == expect)
            .expect("scratch interval planned");
        assert_eq!(scratch.start, scratch.end, "scratch dies at its own step");
        assert!(plan.naive_bytes >= expect);

        // The fused phase's activation reserve beats the unfused one: the
        // unfused graph keeps the S×S scores (here 2*64*128 floats, three
        // tensors deep) live across the softmax pipeline.
        let mut u = Graph::new();
        let q = u.input("q", &[2, 64, 64]).unwrap();
        let k = u.input("k", &[2, 128, 64]).unwrap();
        let v = u.input("v", &[2, 128, 64]).unwrap();
        let kt = u.transpose(k).unwrap();
        let scores = u.matmul(q, kt).unwrap();
        let scaled = u.scalar_mul(scores, 0.125).unwrap();
        let probs = u.softmax(scaled).unwrap();
        let out = u.matmul(probs, v).unwrap();
        let y = u.exp(out).unwrap();
        u.mark_output(y);
        let unfused_plan = plan_memory(&u);
        assert!(
            plan.peak_bytes < unfused_plan.peak_bytes,
            "fused peak {} must undercut unfused peak {}",
            plan.peak_bytes,
            unfused_plan.peak_bytes
        );
        assert!(plan.arena_bytes < unfused_plan.arena_bytes);
    }

    #[test]
    fn empty_graph_plans_to_nothing() {
        let plan = plan_memory(&Graph::new());
        assert_eq!(plan.peak_bytes, 0);
        assert_eq!(plan.arena_bytes, 0);
        assert_eq!(plan.naive_bytes, 0);
        assert_eq!(plan.reuse_factor(), 1.0);
    }
}
