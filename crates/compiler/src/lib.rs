//! # gaudi-compiler
//!
//! The SynapseAI graph-compiler stand-in: given a [`gaudi_graph::Graph`], it
//!
//! 1. **maps** each operator to a hardware engine (the paper's Table 1: only
//!    matrix products reach the MME; *everything* else — even
//!    `scalar * tensor` — lands on the TPC cluster),
//! 2. **lowers** high-level ops (optionally rewriting `einsum` contractions
//!    into transpose + matmul so they can reach the MME — the paper's
//!    Insight #2 ablation),
//! 3. **costs** every node with the shape-driven hardware models of
//!    `gaudi-hw`, and
//! 4. **schedules** the nodes onto engine timelines, producing an
//!    [`schedule::ExecutionPlan`] the runtime replays.
//!
//! Two scheduling policies are provided:
//!
//! * [`SchedulerKind::InOrder`] — issue strictly in program order and
//!   serialize across engine switches. This reproduces the SynapseAI
//!   behaviour the paper observes: "Graph Compiler does not detect this
//!   independence, so it does not schedule MME and TPC tasks well so that
//!   they can overlap" (Figure 6).
//! * [`SchedulerKind::Overlap`] — dependency-only list scheduling, the
//!   idealized compiler the paper's insights call for.

pub mod attention_fusion;
pub mod cost;
pub mod dce;
pub mod fusion;
pub mod lowering;
pub mod mapping;
pub mod memplan;
pub mod multi;
pub mod partition;
pub mod schedule;

pub use attention_fusion::{fuse_attention, AttentionFusionStats};
pub use cost::{op_cost, OpCost};
pub use dce::eliminate_dead_code;
pub use fusion::{fuse_elementwise, FusionStats};
pub use lowering::lower_einsum;
pub use mapping::{engine_for, table1, Table1Row};
pub use memplan::{plan_memory, plan_memory_with, MemPlanOptions, MemoryPlan, TensorInterval};
pub use multi::MultiDevicePlan;
pub use partition::{partition, Parallelism, PartitionSpec, PartitionedGraph, ShardInfo};
pub use schedule::{ExecutionPlan, GraphCompiler, PlannedOp, SchedulerKind};

/// Compiler configuration knobs (the ablation axes of DESIGN.md §6).
///
/// The struct is `#[non_exhaustive]`: construct it with
/// [`CompilerOptions::builder`] (or the `default()`/`idealized()` presets)
/// so future knobs — e.g. serving's decode-graph caching — are not
/// breaking changes. Fields stay `pub` for reading.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct CompilerOptions {
    /// Scheduling policy.
    pub scheduler: SchedulerKind,
    /// Rewrite `einsum` contractions into transpose + MME matmul. When off,
    /// the fused op falls back to a TPC matmul kernel — the "bad mapping"
    /// the paper warns about.
    pub lower_einsum: bool,
    /// Charge the one-time Graph-Compiler recompilation stall the first time
    /// an op without a pre-compiled recipe (GLU) executes (§3.3, Figure 7).
    pub glu_recompile_stall: bool,
    /// Model engine-to-engine tensor movement on the DMA lane.
    pub model_dma: bool,
    /// Fuse chains of unary element-wise ops into single TPC launches,
    /// eliminating intermediate global-memory round trips (Insight #1's
    /// "good mapping and schedule" — see `fusion`).
    pub fuse_elementwise: bool,
    /// Prune nodes unreachable from marked outputs before scheduling (e.g.
    /// the unused input-gradient chains autograd produces).
    pub dce: bool,
    /// Pattern-match the `MatMul(Q,Kᵀ) → Scale → [Mask] → Softmax →
    /// MatMul(·,V)` attention subgraph and swap in a single tiled
    /// FlashAttention-style fused kernel (GFormer-style, see
    /// `attention_fusion`). On by default — this is the custom-kernel fix
    /// the paper's Fig. 4–6 analysis calls for; disable it
    /// (`--no-fused-attention` in the bins) to reproduce the observed
    /// SynapseAI idle-gap behaviour.
    pub fuse_attention: bool,
}

impl Default for CompilerOptions {
    fn default() -> Self {
        // Defaults mirror observed SynapseAI behaviour.
        CompilerOptions {
            scheduler: SchedulerKind::InOrder,
            lower_einsum: false,
            glu_recompile_stall: true,
            model_dma: true,
            fuse_elementwise: false,
            dce: true,
            fuse_attention: true,
        }
    }
}

impl CompilerOptions {
    /// The idealized configuration the paper's insights advocate.
    pub fn idealized() -> Self {
        CompilerOptions {
            scheduler: SchedulerKind::Overlap,
            lower_einsum: true,
            glu_recompile_stall: false,
            model_dma: true,
            fuse_elementwise: true,
            dce: true,
            fuse_attention: true,
        }
    }

    /// Start a builder from the SynapseAI-like defaults.
    pub fn builder() -> CompilerOptionsBuilder {
        CompilerOptionsBuilder {
            opts: CompilerOptions::default(),
        }
    }

    /// Turn this configuration back into a builder to tweak single knobs.
    pub fn to_builder(&self) -> CompilerOptionsBuilder {
        CompilerOptionsBuilder { opts: self.clone() }
    }
}

/// Builder for [`CompilerOptions`] — the only way to construct non-preset
/// options outside this crate now that the struct is `#[non_exhaustive]`.
///
/// ```
/// use gaudi_compiler::{CompilerOptions, SchedulerKind};
/// let opts = CompilerOptions::builder()
///     .scheduler(SchedulerKind::Overlap)
///     .fuse_elementwise(true)
///     .build();
/// assert_eq!(opts.scheduler, SchedulerKind::Overlap);
/// ```
#[derive(Debug, Clone)]
pub struct CompilerOptionsBuilder {
    opts: CompilerOptions,
}

impl CompilerOptionsBuilder {
    /// Select the scheduling policy.
    pub fn scheduler(mut self, kind: SchedulerKind) -> Self {
        self.opts.scheduler = kind;
        self
    }

    /// Toggle einsum-to-matmul lowering.
    pub fn lower_einsum(mut self, on: bool) -> Self {
        self.opts.lower_einsum = on;
        self
    }

    /// Toggle the GLU recompilation stall.
    pub fn glu_recompile_stall(mut self, on: bool) -> Self {
        self.opts.glu_recompile_stall = on;
        self
    }

    /// Toggle DMA transfer modelling.
    pub fn model_dma(mut self, on: bool) -> Self {
        self.opts.model_dma = on;
        self
    }

    /// Toggle element-wise fusion.
    pub fn fuse_elementwise(mut self, on: bool) -> Self {
        self.opts.fuse_elementwise = on;
        self
    }

    /// Toggle dead-code elimination.
    pub fn dce(mut self, on: bool) -> Self {
        self.opts.dce = on;
        self
    }

    /// Toggle the fused-attention pattern-match pass.
    pub fn fuse_attention(mut self, on: bool) -> Self {
        self.opts.fuse_attention = on;
        self
    }

    /// Finish, yielding the configured options.
    pub fn build(self) -> CompilerOptions {
        self.opts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_are_synapseai_like() {
        let o = CompilerOptions::default();
        assert_eq!(o.scheduler, SchedulerKind::InOrder);
        assert!(!o.lower_einsum);
        assert!(o.glu_recompile_stall);
    }

    #[test]
    fn idealized_options_flip_the_knobs() {
        let o = CompilerOptions::idealized();
        assert_eq!(o.scheduler, SchedulerKind::Overlap);
        assert!(o.lower_einsum);
        assert!(!o.glu_recompile_stall);
    }
}
