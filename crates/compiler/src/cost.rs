//! Shape-driven per-operator cost: which engine, how long, how many flops,
//! how many bytes of global traffic.

use crate::mapping::engine_for;
use gaudi_graph::{Activation, Graph, Node, OpKind};
use gaudi_hw::{EngineId, GaudiConfig, MmeModel, TpcCostModel, TpcOpClass};

/// Cost of executing one graph node on the modelled hardware.
#[derive(Debug, Clone)]
pub struct OpCost {
    /// Engine the node executes on.
    pub engine: EngineId,
    /// Execution time in nanoseconds (0 for metadata-only ops).
    pub time_ns: f64,
    /// Floating-point operations performed.
    pub flops: f64,
    /// Bytes of global-memory traffic (inputs read + output written).
    pub bytes: u64,
}

impl OpCost {
    fn free() -> Self {
        OpCost {
            engine: EngineId::Host,
            time_ns: 0.0,
            flops: 0.0,
            bytes: 0,
        }
    }
}

fn matmul_dims(graph: &Graph, node: &Node) -> (usize, usize, usize, usize) {
    // Output is [batch..., m, n]; the contraction length comes from input 0.
    let out = graph.shape(node.id);
    let (batch, m, n) = out
        .as_batched_matrix()
        .expect("matmul output is matrix-shaped");
    let k = graph.shape(node.inputs[0]).last_dim();
    (batch, m, k, n)
}

/// Total bytes moved by a node: each input read once plus the output written
/// once, at the graph's storage dtype.
fn io_bytes(graph: &Graph, node: &Node) -> u64 {
    let elem = graph.storage_dtype.size_of() as u64;
    let inputs: u64 = node
        .inputs
        .iter()
        .map(|&i| graph.shape(i).numel() as u64)
        .sum();
    let output = graph.shape(node.id).numel() as u64;
    (inputs + output) * elem
}

/// Compute the cost of one node.
///
/// `lower_einsum` matches the option passed to the scheduler: an un-lowered
/// einsum is priced as a TPC matmul (the 7x-slower fallback of Table 2),
/// a lowered one should never reach this function (the lowering pass rewrote
/// it into transpose + matmul).
pub fn op_cost(graph: &Graph, node: &Node, cfg: &GaudiConfig, lower_einsum: bool) -> OpCost {
    let mme = MmeModel::new(cfg.mme.clone());
    let tpc = TpcCostModel::new(cfg.tpc.clone());
    let elems = graph.shape(node.id).numel() as f64;
    let bytes = io_bytes(graph, node);
    let engine = engine_for(&node.kind, lower_einsum);

    let tpc_cost = |class: TpcOpClass, elems: f64, bytes: u64| OpCost {
        engine: EngineId::TpcCluster,
        time_ns: tpc.class_time_ns(class, elems, bytes as f64),
        flops: elems * tpc.cycles_per_elem(class).min(4.0),
        bytes,
    };

    match &node.kind {
        OpKind::Input | OpKind::Parameter => OpCost::free(),
        // Reshape is metadata-only on a contiguous tensor.
        OpKind::Reshape => OpCost::free(),
        OpKind::Fill(_) => tpc_cost(
            TpcOpClass::Elementwise(1.0),
            elems,
            graph.shape(node.id).numel() as u64 * graph.storage_dtype.size_of() as u64,
        ),
        OpKind::MatMul => {
            let (batch, m, k, n) = matmul_dims(graph, node);
            OpCost {
                engine: EngineId::Mme,
                time_ns: mme.gemm_time_ns(batch, m, k, n),
                flops: MmeModel::gemm_flops(batch, m, k, n),
                bytes,
            }
        }
        OpKind::Einsum(_) => {
            let (batch, m, k, n) = matmul_dims(graph, node);
            let flops = MmeModel::gemm_flops(batch, m, k, n);
            if engine == EngineId::Mme {
                OpCost {
                    engine,
                    time_ns: mme.time_for_flops(flops),
                    flops,
                    bytes,
                }
            } else {
                // Fused op fell back to a TPC matmul kernel.
                OpCost {
                    engine,
                    time_ns: tpc.matmul_time_ns(flops),
                    flops,
                    bytes,
                }
            }
        }
        OpKind::FusedAttention { .. } => {
            // softmax(scale·QKᵀ [+ mask])·V as ONE kernel: two GEMMs on the
            // MME plus a compute-only online softmax — the S×S score matrix
            // lives in TPC local memory and never touches HBM, so the
            // softmax term is priced at zero global bytes and `bytes` below
            // covers only the real operands (q, k, v, mask) and the output.
            let (batch, n, d) = graph
                .shape(node.inputs[0])
                .as_batched_matrix()
                .expect("fused attention q is matrix-shaped");
            let kshape = graph.shape(node.inputs[1]);
            let m = kshape.dim(kshape.rank() - 2);
            let dv = graph.shape(node.inputs[2]).last_dim();
            let score_elems = (batch * n * m) as f64;
            let flops = MmeModel::gemm_flops(batch, n, d, m)
                + MmeModel::gemm_flops(batch, n, m, dv)
                + score_elems * 4.0;
            OpCost {
                engine: EngineId::Mme,
                time_ns: mme.gemm_time_ns(batch, n, d, m)
                    + mme.gemm_time_ns(batch, n, m, dv)
                    + tpc.class_time_ns(TpcOpClass::Softmax, score_elems, 0.0),
                flops,
                bytes,
            }
        }
        OpKind::FusedSoftmaxMatMul => {
            // softmax(X)·V in one launch: X streams in from HBM once, the
            // probability rows stay in local memory for the GEMM.
            let (batch, n, m) = graph
                .shape(node.inputs[0])
                .as_batched_matrix()
                .expect("fused softmax-matmul input is matrix-shaped");
            let dv = graph.shape(node.id).last_dim();
            let x_bytes =
                graph.shape(node.inputs[0]).numel() as f64 * graph.storage_dtype.size_of() as f64;
            let score_elems = (batch * n * m) as f64;
            OpCost {
                engine: EngineId::Mme,
                time_ns: tpc.class_time_ns(TpcOpClass::Softmax, score_elems, x_bytes)
                    + mme.gemm_time_ns(batch, n, m, dv),
                flops: MmeModel::gemm_flops(batch, n, m, dv) + score_elems * 4.0,
                bytes,
            }
        }
        OpKind::FusedElementwise(ops) => {
            // One launch; intermediates live in registers, so only the input
            // and output touch global memory.
            let cycles: f64 = ops.iter().map(|op| unary_cycles(&tpc, op)).sum();
            OpCost {
                engine: EngineId::TpcCluster,
                time_ns: tpc.kernel_time_ns(elems, cycles, bytes as f64),
                flops: elems * ops.len() as f64,
                bytes,
            }
        }
        OpKind::Add | OpKind::Sub | OpKind::Maximum | OpKind::Mul => {
            tpc_cost(TpcOpClass::Elementwise(1.0), elems, bytes)
        }
        OpKind::Div => tpc_cost(TpcOpClass::Elementwise(2.0), elems, bytes),
        OpKind::ScalarMul(_) | OpKind::ScalarAdd(_) | OpKind::Neg | OpKind::Square => {
            tpc_cost(TpcOpClass::Elementwise(1.0), elems, bytes)
        }
        OpKind::Sqrt | OpKind::Exp | OpKind::Log => tpc_cost(TpcOpClass::SpecialFunc, elems, bytes),
        OpKind::Activation(act) => activation_cost(&tpc, *act, elems, bytes),
        OpKind::ActivationGrad(act) => {
            // Backward evaluates the derivative and multiplies: ~forward + 1.
            let mut c = activation_cost(&tpc, *act, elems, bytes);
            c.time_ns += tpc.class_time_ns(TpcOpClass::Elementwise(1.0), elems, 0.0)
                - tpc.launch_overhead_ns();
            c
        }
        OpKind::Softmax => tpc_cost(TpcOpClass::Softmax, elems, bytes),
        OpKind::SoftmaxGrad => {
            // mul + row-sum + subtract + mul: two passes and a reduction.
            tpc_cost(TpcOpClass::Reduction, elems * 2.0, bytes)
        }
        OpKind::LayerNorm { .. } => tpc_cost(TpcOpClass::LayerNorm, elems, bytes),
        OpKind::LayerNormGrad { .. } => tpc_cost(TpcOpClass::LayerNorm, elems * 1.5, bytes),
        OpKind::Transpose | OpKind::Permute(_) | OpKind::BroadcastTo => {
            tpc_cost(TpcOpClass::Elementwise(1.0), elems, bytes)
        }
        OpKind::ReduceTo
        | OpKind::ReduceSum { .. }
        | OpKind::ReduceMax { .. }
        | OpKind::ReduceMean { .. } => {
            // Reductions are priced on the elements *read*.
            let in_elems = graph.shape(node.inputs[0]).numel() as f64;
            tpc_cost(TpcOpClass::Reduction, in_elems, bytes)
        }
        OpKind::Embedding => tpc_cost(TpcOpClass::Elementwise(2.0), elems, bytes),
        OpKind::EmbeddingGrad => {
            let in_elems = graph.shape(node.inputs[1]).numel() as f64;
            tpc_cost(TpcOpClass::Reduction, in_elems, bytes)
        }
        OpKind::CrossEntropy => {
            // Contains a softmax over the logits plus a gather and mean.
            let logits = graph.shape(node.inputs[0]).numel() as f64;
            tpc_cost(TpcOpClass::Softmax, logits, bytes)
        }
        OpKind::CrossEntropyGrad => {
            let logits = graph.shape(node.id).numel() as f64;
            tpc_cost(TpcOpClass::Softmax, logits, bytes)
        }
        // Collectives run on the NIC; their duration depends on the box
        // topology, which the multi-device scheduler prices separately
        // (`schedule_multi`). On a single device they are identity ops.
        OpKind::Collective(_) => OpCost {
            engine: EngineId::Nic,
            time_ns: 0.0,
            flops: 0.0,
            bytes,
        },
    }
}

/// Cycles per element of one member of a fused unary chain.
fn unary_cycles(tpc: &TpcCostModel, op: &OpKind) -> f64 {
    match op {
        OpKind::Sqrt | OpKind::Exp | OpKind::Log => tpc.cycles_per_elem(TpcOpClass::SpecialFunc),
        OpKind::Activation(a) if a.uses_special_func() => {
            tpc.cycles_per_elem(TpcOpClass::SpecialFunc)
        }
        OpKind::Activation(Activation::LeakyRelu(_)) => 2.0,
        _ => 1.0,
    }
}

fn activation_cost(tpc: &TpcCostModel, act: Activation, elems: f64, bytes: u64) -> OpCost {
    let class = match act {
        Activation::Relu => TpcOpClass::Elementwise(1.0),
        Activation::LeakyRelu(_) => TpcOpClass::Elementwise(2.0),
        // exp/tanh/erf-based activations hit the special-function pipeline.
        Activation::Gelu
        | Activation::Elu
        | Activation::Sigmoid
        | Activation::Tanh
        | Activation::EluPlusOne
        | Activation::Glu => TpcOpClass::SpecialFunc,
    };
    OpCost {
        engine: EngineId::TpcCluster,
        time_ns: tpc.class_time_ns(class, elems, bytes as f64),
        flops: elems * 2.0,
        bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaudi_graph::Graph;

    fn cfg() -> GaudiConfig {
        GaudiConfig::hls1()
    }

    #[test]
    fn matmul_is_costed_on_the_mme() {
        let mut g = Graph::new();
        let a = g.input("a", &[64, 512, 512]).unwrap();
        let b = g.input("b", &[64, 512, 512]).unwrap();
        let m = g.matmul(a, b).unwrap();
        let c = op_cost(&g, g.node(m), &cfg(), false);
        assert_eq!(c.engine, EngineId::Mme);
        assert_eq!(c.flops, 2.0 * 64.0 * 512f64.powi(3));
        assert!(c.time_ns > 0.0);
    }

    #[test]
    fn scalar_mul_runs_on_tpc_despite_linearity() {
        let mut g = Graph::new();
        let a = g.input("a", &[1024]).unwrap();
        let s = g.scalar_mul(a, 0.125).unwrap();
        let c = op_cost(&g, g.node(s), &cfg(), false);
        assert_eq!(c.engine, EngineId::TpcCluster);
    }

    #[test]
    fn softmax_dominates_equal_size_elementwise() {
        let mut g = Graph::new();
        g.storage_dtype = gaudi_tensor::DType::BF16;
        let a = g.input("a", &[2048, 2048]).unwrap();
        let sm = g.softmax(a).unwrap();
        let ad = g.scalar_add(a, 1.0).unwrap();
        let c_sm = op_cost(&g, g.node(sm), &cfg(), false);
        let c_ad = op_cost(&g, g.node(ad), &cfg(), false);
        assert!(c_sm.time_ns > 2.0 * c_ad.time_ns);
    }

    #[test]
    fn unlowered_einsum_pays_the_tpc_penalty() {
        let mut g = Graph::new();
        let q = g.input("q", &[8, 4, 2048, 64]).unwrap();
        let k = g.input("k", &[8, 4, 2048, 64]).unwrap();
        let e = g.einsum(gaudi_graph::EinsumSpec::ScoresQKt, q, k).unwrap();
        let naive = op_cost(&g, g.node(e), &cfg(), false);
        let lowered = op_cost(&g, g.node(e), &cfg(), true);
        assert_eq!(naive.engine, EngineId::TpcCluster);
        assert_eq!(lowered.engine, EngineId::Mme);
        assert!(
            naive.time_ns > 3.0 * lowered.time_ns,
            "TPC fallback must be several-fold slower: {} vs {}",
            naive.time_ns,
            lowered.time_ns
        );
    }

    #[test]
    fn sources_and_reshape_are_free() {
        let mut g = Graph::new();
        let a = g.input("a", &[4, 4]).unwrap();
        let r = g.reshape(a, &[16]).unwrap();
        assert_eq!(op_cost(&g, g.node(a), &cfg(), false).time_ns, 0.0);
        assert_eq!(op_cost(&g, g.node(r), &cfg(), false).time_ns, 0.0);
    }

    #[test]
    fn special_activations_cost_more_than_relu() {
        let mut g = Graph::new();
        let a = g.input("a", &[1 << 20]).unwrap();
        let relu = g.activation(Activation::Relu, a).unwrap();
        let gelu = g.activation(Activation::Gelu, a).unwrap();
        let c_r = op_cost(&g, g.node(relu), &cfg(), false);
        let c_g = op_cost(&g, g.node(gelu), &cfg(), false);
        assert!(c_g.time_ns > c_r.time_ns);
    }

    #[test]
    fn bytes_respect_storage_dtype() {
        let mut g = Graph::new();
        let a = g.input("a", &[1000]).unwrap();
        let s = g.scalar_add(a, 1.0).unwrap();
        let f32_bytes = op_cost(&g, g.node(s), &cfg(), false).bytes;
        g.storage_dtype = gaudi_tensor_dtype_bf16();
        let bf16_bytes = op_cost(&g, g.node(s), &cfg(), false).bytes;
        assert_eq!(f32_bytes, 8000);
        assert_eq!(bf16_bytes, 4000);
    }

    fn gaudi_tensor_dtype_bf16() -> gaudi_tensor::DType {
        gaudi_tensor::DType::BF16
    }
}
