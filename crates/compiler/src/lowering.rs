//! Lowering passes.
//!
//! The only rewrite SynapseAI is missing per the paper's Insight #2 is the
//! one implemented here: turning fused `einsum` contractions into basic
//! transpose + matmul so they map to the MME. The ablation benchmark runs
//! the same graph with and without this pass.

use gaudi_graph::{EinsumSpec, Graph, GraphError, NodeId, OpKind};
use std::collections::HashMap;

/// Rewrite every `Einsum` node into `transpose` + `matmul` basic ops.
///
/// Returns a new graph; all other nodes are copied verbatim (with remapped
/// operand ids) and marked outputs follow the rewrite.
pub fn lower_einsum(graph: &Graph) -> Result<Graph, GraphError> {
    let mut out = Graph::new();
    out.storage_dtype = graph.storage_dtype;
    let mut remap: HashMap<NodeId, NodeId> = HashMap::new();

    for node in graph.nodes() {
        let inputs: Vec<NodeId> = node.inputs.iter().map(|i| remap[i]).collect();
        let new_id = match &node.kind {
            OpKind::Einsum(EinsumSpec::ScoresQKt) => {
                // bhnd,bhmd->bhnm  ==  q @ transpose(k)
                let kt = out.transpose(inputs[1])?;
                out.matmul(inputs[0], kt)?
            }
            OpKind::Einsum(EinsumSpec::OutputAv) => {
                // bhnm,bhmd->bhnd  ==  a @ v
                out.matmul(inputs[0], inputs[1])?
            }
            kind => out.push_node(kind.clone(), &inputs, node.shape, node.name.clone())?,
        };
        remap.insert(node.id, new_id);
    }
    for o in graph.outputs() {
        out.mark_output(remap[o]);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attention_graph() -> (Graph, NodeId) {
        let mut g = Graph::new();
        let q = g.input("q", &[2, 4, 32, 16]).unwrap();
        let k = g.input("k", &[2, 4, 32, 16]).unwrap();
        let v = g.input("v", &[2, 4, 32, 16]).unwrap();
        let s = g.einsum(EinsumSpec::ScoresQKt, q, k).unwrap();
        let p = g.softmax(s).unwrap();
        let o = g.einsum(EinsumSpec::OutputAv, p, v).unwrap();
        g.mark_output(o);
        (g, o)
    }

    #[test]
    fn einsums_disappear_and_matmuls_appear() {
        let (g, _) = attention_graph();
        let lowered = lower_einsum(&g).unwrap();
        assert!(lowered
            .nodes()
            .iter()
            .all(|n| !matches!(n.kind, OpKind::Einsum(_))));
        let matmuls = lowered
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, OpKind::MatMul))
            .count();
        assert_eq!(matmuls, 2);
        let transposes = lowered
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, OpKind::Transpose))
            .count();
        assert_eq!(transposes, 1);
        lowered.validate().unwrap();
    }

    #[test]
    fn output_shapes_preserved() {
        let (g, o) = attention_graph();
        let lowered = lower_einsum(&g).unwrap();
        assert_eq!(lowered.outputs().len(), 1);
        let new_out = lowered.outputs()[0];
        assert_eq!(lowered.shape(new_out).dims(), g.shape(o).dims());
    }

    #[test]
    fn non_einsum_graphs_pass_through() {
        let mut g = Graph::new();
        let a = g.input("a", &[4, 4]).unwrap();
        let b = g.matmul(a, a).unwrap();
        let c = g.softmax(b).unwrap();
        g.mark_output(c);
        let lowered = lower_einsum(&g).unwrap();
        assert_eq!(lowered.len(), g.len());
        for (old, new) in g.nodes().iter().zip(lowered.nodes()) {
            assert_eq!(old.kind, new.kind);
            assert_eq!(old.shape.dims(), new.shape.dims());
        }
    }
}
