//! Scheduling: place costed nodes on engine timelines.

use crate::cost::op_cost;
use crate::lowering::lower_einsum;
use crate::CompilerOptions;
use gaudi_graph::{Activation, CollectiveKind, Graph, GraphError, NodeId, OpKind};
use gaudi_hw::des::Timeline;
use gaudi_hw::memory::DmaModel;
use gaudi_hw::{DeviceId, EngineId, GaudiConfig, Topology};
use std::collections::{HashMap, HashSet};

/// Scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Issue in program order; an op on a different engine than its
    /// predecessor waits for the predecessor to finish. Models SynapseAI's
    /// missed cross-engine overlap (Figure 6).
    InOrder,
    /// Dependency-only list scheduling: independent MME and TPC work
    /// overlaps freely.
    Overlap,
}

/// One scheduled occupation of an engine lane.
#[derive(Debug, Clone)]
pub struct PlannedOp {
    /// Graph node this step executes (None for DMA transfers and stalls).
    pub node: Option<NodeId>,
    /// Trace label.
    pub label: String,
    /// Trace category (`op`, `dma`, `stall`, `collective`).
    pub category: &'static str,
    /// Device the step runs on (`DeviceId(0)` for single-device plans).
    pub device: DeviceId,
    /// Engine lane.
    pub engine: EngineId,
    /// Start time, ns.
    pub start_ns: f64,
    /// Duration, ns.
    pub dur_ns: f64,
    /// Floating-point operations performed (0 for transfers/stalls).
    pub flops: f64,
    /// Global-memory bytes moved.
    pub bytes: u64,
}

/// The compiler's output: a (possibly lowered) graph plus a fully-timed
/// execution plan over the engine lanes.
#[derive(Debug, Clone)]
pub struct ExecutionPlan {
    /// Scheduled steps in issue order.
    pub steps: Vec<PlannedOp>,
    /// Completion time of each node, ns.
    pub node_end_ns: HashMap<NodeId, f64>,
    /// Overall makespan, ns.
    pub makespan_ns: f64,
}

/// The SynapseAI-like graph compiler.
#[derive(Debug, Clone)]
pub struct GraphCompiler {
    cfg: GaudiConfig,
    opts: CompilerOptions,
}

impl GraphCompiler {
    /// Compiler over a hardware configuration with the given options.
    pub fn new(cfg: GaudiConfig, opts: CompilerOptions) -> Self {
        GraphCompiler { cfg, opts }
    }

    /// The SynapseAI-like default compiler for HLS-1.
    pub fn synapse_like() -> Self {
        GraphCompiler::new(GaudiConfig::hls1(), CompilerOptions::default())
    }

    /// Hardware configuration in use.
    pub fn config(&self) -> &GaudiConfig {
        &self.cfg
    }

    /// Options in use.
    pub fn options(&self) -> &CompilerOptions {
        &self.opts
    }

    /// Compile a graph: lower (optionally), cost, and schedule.
    ///
    /// Returns the graph actually scheduled (lowered when `lower_einsum` is
    /// set) along with the plan, whose node ids refer to that graph.
    pub fn compile(&self, graph: &Graph) -> Result<(Graph, ExecutionPlan), GraphError> {
        graph.validate()?;
        let mut g = if self.opts.lower_einsum {
            lower_einsum(graph)?
        } else {
            graph.clone()
        };
        if self.opts.dce {
            g = crate::dce::eliminate_dead_code(&g)?.0;
        }
        if self.opts.fuse_elementwise {
            g = crate::fusion::fuse_elementwise(&g)?.0;
        }
        if self.opts.fuse_attention {
            g = crate::attention_fusion::fuse_attention(&g)?.0;
        }
        let plan = self.schedule(&g, None);
        Ok((g, plan))
    }

    /// Like [`compile`](Self::compile), additionally running the static
    /// memory planner ([`crate::memplan`]) over the scheduled graph: the
    /// returned [`MemoryPlan`](crate::memplan::MemoryPlan) carries tensor
    /// lifetimes, in-placing decisions, locked arena offsets, and the
    /// peak/arena/naive activation footprints the serving stack budgets
    /// admission with.
    pub fn compile_with_memplan(
        &self,
        graph: &Graph,
    ) -> Result<(Graph, ExecutionPlan, crate::memplan::MemoryPlan), GraphError> {
        let (g, plan) = self.compile(graph)?;
        let mem = crate::memplan::plan_memory(&g);
        Ok((g, plan, mem))
    }

    /// Like [`compile`](Self::compile), pricing [`OpKind::Collective`] nodes
    /// on the NIC lane with the given collective-group topology. Used by the
    /// partitioning pipeline (`compile_partitioned`); with a single-device
    /// topology collectives are free metadata ops.
    pub fn compile_with_topology(
        &self,
        graph: &Graph,
        comm: &Topology,
    ) -> Result<(Graph, ExecutionPlan), GraphError> {
        graph.validate()?;
        let mut g = if self.opts.lower_einsum {
            lower_einsum(graph)?
        } else {
            graph.clone()
        };
        if self.opts.dce {
            g = crate::dce::eliminate_dead_code(&g)?.0;
        }
        if self.opts.fuse_elementwise {
            g = crate::fusion::fuse_elementwise(&g)?.0;
        }
        if self.opts.fuse_attention {
            g = crate::attention_fusion::fuse_attention(&g)?.0;
        }
        let plan = self.schedule(&g, Some(comm));
        Ok((g, plan))
    }

    /// Wire time of one collective node under `comm`, ns.
    fn collective_time_ns(g: &Graph, node: &gaudi_graph::Node, comm: &Topology) -> f64 {
        let elem = g.storage_dtype.size_of() as u64;
        let in_bytes = g.shape(node.inputs[0]).numel() as u64 * elem;
        let out_bytes = g.shape(node.id).numel() as u64 * elem;
        match node.kind {
            OpKind::Collective(CollectiveKind::AllReduce) => comm.allreduce_time_ns(in_bytes),
            OpKind::Collective(CollectiveKind::AllGather { .. }) => {
                comm.allgather_time_ns(out_bytes)
            }
            OpKind::Collective(CollectiveKind::ReduceScatter { .. }) => {
                comm.reducescatter_time_ns(in_bytes)
            }
            OpKind::Collective(CollectiveKind::Broadcast) => comm.broadcast_time_ns(in_bytes),
            _ => 0.0,
        }
    }

    fn schedule(&self, g: &Graph, comm: Option<&Topology>) -> ExecutionPlan {
        let dma = DmaModel::new(self.cfg.memory.clone());
        let mut timeline = Timeline::new();
        let mut steps: Vec<PlannedOp> = Vec::new();
        let mut node_end: HashMap<NodeId, f64> = HashMap::new();
        let mut node_engine: HashMap<NodeId, EngineId> = HashMap::new();
        let mut transferred: HashSet<(NodeId, EngineId)> = HashSet::new();
        let mut last_issue: Option<(EngineId, f64)> = None;
        let mut issue_floor = 0.0f64; // raised by recompilation stalls
        let mut glu_compiled = false;

        for node in g.nodes() {
            let mut cost = op_cost(g, node, &self.cfg, self.opts.lower_einsum);
            let mut deps_end = node
                .inputs
                .iter()
                .map(|i| node_end.get(i).copied().unwrap_or(0.0))
                .fold(0.0, f64::max);

            // Collectives occupy the NIC lane for the ring/tree wire time of
            // the collective group. Every device of the symmetric SPMD
            // program reaches this point at the same simulated time, so the
            // synchronization barrier is implicit.
            if matches!(node.kind, OpKind::Collective(_)) {
                if let Some(comm) = comm {
                    cost.time_ns = Self::collective_time_ns(g, node, comm);
                }
                if cost.time_ns > 0.0 {
                    let (start, end) = timeline.reserve(EngineId::Nic, deps_end, cost.time_ns);
                    steps.push(PlannedOp {
                        node: Some(node.id),
                        label: node.kind.label(),
                        category: "collective",
                        device: DeviceId(0),
                        engine: EngineId::Nic,
                        start_ns: start,
                        dur_ns: cost.time_ns,
                        flops: 0.0,
                        bytes: cost.bytes,
                    });
                    node_end.insert(node.id, end);
                    node_engine.insert(node.id, EngineId::Nic);
                    last_issue = Some((EngineId::Nic, end));
                } else {
                    // Single-device group: the collective is an identity op.
                    node_end.insert(node.id, deps_end);
                    node_engine.insert(node.id, EngineId::Host);
                }
                continue;
            }

            if cost.time_ns == 0.0 {
                // Metadata-only: completes with its dependencies.
                node_end.insert(node.id, deps_end);
                node_engine.insert(node.id, EngineId::Host);
                continue;
            }

            // Engine-to-engine transfers ride the DMA lane.
            if self.opts.model_dma {
                for &input in &node.inputs {
                    let src = node_engine.get(&input).copied().unwrap_or(EngineId::Host);
                    if src.is_compute()
                        && src != cost.engine
                        && transferred.insert((input, cost.engine))
                    {
                        let bytes =
                            g.shape(input).numel() as u64 * g.storage_dtype.size_of() as u64;
                        let dur = dma.transfer_time_ns(bytes);
                        let ready = node_end.get(&input).copied().unwrap_or(0.0);
                        let (s, e) = timeline.reserve(EngineId::Dma(0), ready, dur);
                        steps.push(PlannedOp {
                            node: None,
                            label: format!("dma({})", g.node(input).kind.label()),
                            category: "dma",
                            device: DeviceId(0),
                            engine: EngineId::Dma(0),
                            start_ns: s,
                            dur_ns: dur,
                            flops: 0.0,
                            bytes,
                        });
                        deps_end = deps_end.max(e);
                    }
                }
            }

            // One-time Graph-Compiler recompilation for recipe-less ops (GLU).
            if self.opts.glu_recompile_stall
                && !glu_compiled
                && matches!(node.kind, OpKind::Activation(Activation::Glu))
            {
                glu_compiled = true;
                let stall = self.cfg.recompile_stall_ns;
                let (s, e) = timeline.reserve(EngineId::Host, deps_end, stall);
                steps.push(PlannedOp {
                    node: None,
                    label: "recompile(glu)".to_string(),
                    category: "stall",
                    device: DeviceId(0),
                    engine: EngineId::Host,
                    start_ns: s,
                    dur_ns: stall,
                    flops: 0.0,
                    bytes: 0,
                });
                deps_end = deps_end.max(e);
                issue_floor = issue_floor.max(e);
            }

            let mut earliest = deps_end.max(issue_floor);
            if self.opts.scheduler == SchedulerKind::InOrder {
                if let Some((prev_engine, prev_end)) = last_issue {
                    if prev_engine != cost.engine {
                        earliest = earliest.max(prev_end);
                    }
                }
            }

            let (start, end) = timeline.reserve(cost.engine, earliest, cost.time_ns);
            steps.push(PlannedOp {
                node: Some(node.id),
                label: if node.name.is_empty() {
                    node.kind.label()
                } else {
                    format!("{}:{}", node.name, node.kind.label())
                },
                category: "op",
                device: DeviceId(0),
                engine: cost.engine,
                start_ns: start,
                dur_ns: cost.time_ns,
                flops: cost.flops,
                bytes: cost.bytes,
            });
            node_end.insert(node.id, end);
            node_engine.insert(node.id, cost.engine);
            last_issue = Some((cost.engine, end));
        }

        let makespan_ns = steps
            .iter()
            .map(|s| s.start_ns + s.dur_ns)
            .fold(0.0, f64::max);
        ExecutionPlan {
            steps,
            node_end_ns: node_end,
            makespan_ns,
        }
    }
}

impl ExecutionPlan {
    /// Total busy time of an engine lane, ns.
    pub fn engine_busy_ns(&self, engine: EngineId) -> f64 {
        // fold, not sum: an empty f64 sum is -0.0, which renders as "-0.0%".
        self.steps
            .iter()
            .filter(|s| s.engine == engine)
            .fold(0.0, |acc, s| acc + s.dur_ns)
    }

    /// Makespan in milliseconds.
    pub fn makespan_ms(&self) -> f64 {
        self.makespan_ns / 1.0e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaudi_graph::EinsumSpec;

    /// Two independent chains: a matmul (MME) and a big exp (TPC).
    fn independent_graph() -> Graph {
        let mut g = Graph::new();
        let a = g.input("a", &[64, 512, 512]).unwrap();
        let b = g.input("b", &[64, 512, 512]).unwrap();
        let m = g.matmul(a, b).unwrap();
        let x = g.input("x", &[64, 1024, 1024]).unwrap();
        let e = g.exp(x).unwrap();
        g.mark_output(m);
        g.mark_output(e);
        g
    }

    #[test]
    fn overlap_scheduler_runs_independent_work_concurrently() {
        let g = independent_graph();
        let overlap = GraphCompiler::new(
            GaudiConfig::hls1(),
            CompilerOptions {
                scheduler: SchedulerKind::Overlap,
                ..Default::default()
            },
        );
        let inorder = GraphCompiler::synapse_like();
        let (_, p_overlap) = overlap.compile(&g).unwrap();
        let (_, p_inorder) = inorder.compile(&g).unwrap();
        // In-order serializes MME behind TPC (or vice versa).
        assert!(
            p_inorder.makespan_ns > 1.5 * p_overlap.makespan_ns,
            "inorder {} vs overlap {}",
            p_inorder.makespan_ms(),
            p_overlap.makespan_ms()
        );
    }

    #[test]
    fn dependencies_always_respected() {
        let mut g = Graph::new();
        let a = g.input("a", &[256, 256]).unwrap();
        let m = g.matmul(a, a).unwrap();
        let s = g.softmax(m).unwrap();
        g.mark_output(s);
        for kind in [SchedulerKind::InOrder, SchedulerKind::Overlap] {
            let c = GraphCompiler::new(
                GaudiConfig::hls1(),
                CompilerOptions {
                    scheduler: kind,
                    ..Default::default()
                },
            );
            let (g2, plan) = c.compile(&g).unwrap();
            let find = |id: NodeId| {
                plan.steps
                    .iter()
                    .find(|st| st.node == Some(id))
                    .expect("scheduled")
            };
            let sm_node = g2
                .nodes()
                .iter()
                .find(|n| matches!(n.kind, OpKind::Softmax))
                .unwrap();
            let mm_node = g2
                .nodes()
                .iter()
                .find(|n| matches!(n.kind, OpKind::MatMul))
                .unwrap();
            let mm = find(mm_node.id);
            let sm = find(sm_node.id);
            assert!(sm.start_ns >= mm.start_ns + mm.dur_ns - 1e-6);
        }
    }

    #[test]
    fn dma_inserted_between_engines() {
        let mut g = Graph::new();
        let a = g.input("a", &[512, 512]).unwrap();
        let m = g.matmul(a, a).unwrap(); // MME
        let s = g.softmax(m).unwrap(); // TPC, input crosses engines
        g.mark_output(s);
        let (_, plan) = GraphCompiler::synapse_like().compile(&g).unwrap();
        assert!(plan.steps.iter().any(|st| st.category == "dma"));
        // With DMA modelling off, no transfer events appear.
        let c = GraphCompiler::new(
            GaudiConfig::hls1(),
            CompilerOptions {
                model_dma: false,
                ..Default::default()
            },
        );
        let (_, plan2) = c.compile(&g).unwrap();
        assert!(plan2.steps.iter().all(|st| st.category != "dma"));
        assert!(plan2.makespan_ns <= plan.makespan_ns);
    }

    #[test]
    fn glu_triggers_one_recompile_stall() {
        let mut g = Graph::new();
        let x = g.input("x", &[128, 512]).unwrap();
        let g1 = g.activation(Activation::Glu, x).unwrap();
        let y = g.input("y", &[128, 512]).unwrap();
        let g2 = g.activation(Activation::Glu, y).unwrap();
        g.mark_output(g1);
        g.mark_output(g2);
        let (_, plan) = GraphCompiler::synapse_like().compile(&g).unwrap();
        let stalls: Vec<_> = plan
            .steps
            .iter()
            .filter(|s| s.category == "stall")
            .collect();
        assert_eq!(stalls.len(), 1);
        assert_eq!(stalls[0].engine, EngineId::Host);
        assert_eq!(stalls[0].dur_ns, GaudiConfig::hls1().recompile_stall_ns);
    }

    #[test]
    fn lowering_changes_einsum_engine() {
        let mut g = Graph::new();
        let q = g.input("q", &[4, 8, 1024, 64]).unwrap();
        let k = g.input("k", &[4, 8, 1024, 64]).unwrap();
        let e = g.einsum(EinsumSpec::ScoresQKt, q, k).unwrap();
        g.mark_output(e);

        let naive = GraphCompiler::new(
            GaudiConfig::hls1(),
            CompilerOptions {
                lower_einsum: false,
                ..Default::default()
            },
        );
        let (_, p1) = naive.compile(&g).unwrap();
        assert!(p1.engine_busy_ns(EngineId::Mme) == 0.0);
        assert!(p1.engine_busy_ns(EngineId::TpcCluster) > 0.0);

        let good = GraphCompiler::new(
            GaudiConfig::hls1(),
            CompilerOptions {
                lower_einsum: true,
                ..Default::default()
            },
        );
        let (_, p2) = good.compile(&g).unwrap();
        assert!(p2.engine_busy_ns(EngineId::Mme) > 0.0);
        assert!(p2.makespan_ns < p1.makespan_ns);
    }

    #[test]
    fn engines_never_double_booked() {
        let g = independent_graph();
        let (_, plan) = GraphCompiler::synapse_like().compile(&g).unwrap();
        for engine in [EngineId::Mme, EngineId::TpcCluster, EngineId::Dma(0)] {
            let mut evs: Vec<_> = plan.steps.iter().filter(|s| s.engine == engine).collect();
            evs.sort_by(|a, b| a.start_ns.total_cmp(&b.start_ns));
            for w in evs.windows(2) {
                assert!(w[1].start_ns >= w[0].start_ns + w[0].dur_ns - 1e-6);
            }
        }
    }
}
