//! # gaudi-exec — deterministic parallel execution
//!
//! A std-only scoped work-stealing thread pool built for one job: running
//! the simulator's embarrassingly-parallel loops (data-parallel serving
//! replicas, per-device SPMD interpretation, sweep configuration points)
//! without perturbing a single bit of their output.
//!
//! The contract is the whole point:
//!
//! * [`ExecPool::par_map`] **always returns results in input order**, no
//!   matter which worker computed which item or in what order items
//!   finished. Callers that fold results index-by-index therefore produce
//!   output bit-identical to a serial loop — which is what lets CI keep
//!   gating on two-run (and serial-vs-parallel) reproducibility.
//! * [`ExecPool::try_par_map`] surfaces the **lowest-index** error, exactly
//!   the error a serial `collect::<Result<_, _>>()` would have returned.
//! * A panicking task is re-thrown on the caller's thread after the batch
//!   quiesces — never swallowed, never deadlocked.
//!
//! ## Design
//!
//! Workers are long-lived threads parked on a condition variable. Each
//! `par_map` call builds a *batch* on the caller's stack: the input slice,
//! the closure, and one atomic `[start, end)` index range per participant.
//! A type-erased handle to the batch is announced to the pool; workers that
//! pick it up claim indices one at a time from their own range and, when it
//! runs dry, **steal from the back of the fullest remaining range** (plain
//! CAS on a packed `u64`, no locks on the claim path). The caller
//! participates too, so a busy pool can never deadlock a nested `par_map`:
//! every claimed index is actively being executed by some thread, and
//! unclaimed indices can always be claimed by the caller itself.
//!
//! Borrowing non-`'static` data from worker threads is made sound by a
//! close/drain protocol rather than by scoped-spawn: workers register
//! entry into a batch under a lock, the caller marks the batch closed and
//! waits until every registered participant has exited before its stack
//! frame is allowed to unwind. Stale announcements popped after the close
//! see the closed flag and never touch the (gone) batch.
//!
//! Thread count comes from [`ExecPool::new`], or for the shared
//! [`ExecPool::global`] pool from the `GAUDI_EXEC_THREADS` environment
//! variable (defaulting to [`std::thread::available_parallelism`]).
//! `GAUDI_EXEC_THREADS=1` forces every consumer of the global pool down
//! the inline serial path — the lever CI uses to diff parallel runs
//! against serial ones.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// A handle to a (possibly shared) pool of worker threads.
///
/// Cloning is cheap and shares the underlying workers. A pool of
/// concurrency 1 ([`ExecPool::serial`]) owns no threads at all and runs
/// every `par_map` inline — it is the reference against which parallel
/// runs are compared bit-for-bit.
#[derive(Clone)]
pub struct ExecPool {
    shared: Option<Arc<PoolShared>>,
}

impl std::fmt::Debug for ExecPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecPool")
            .field("concurrency", &self.concurrency())
            .finish()
    }
}

impl ExecPool {
    /// A pool with `threads`-way concurrency: `threads - 1` worker threads
    /// plus the calling thread, which always participates in its own
    /// batches. `threads <= 1` yields the inline serial pool.
    pub fn new(threads: usize) -> Self {
        if threads <= 1 {
            return ExecPool { shared: None };
        }
        let inner = Arc::new(PoolInner {
            queue: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            workers: threads - 1,
        });
        let mut handles = Vec::with_capacity(threads - 1);
        for i in 0..threads - 1 {
            let inner = Arc::clone(&inner);
            let h = std::thread::Builder::new()
                .name(format!("gaudi-exec-{i}"))
                .spawn(move || worker_loop(&inner));
            match h {
                Ok(h) => handles.push(h),
                Err(_) => break, // run with however many threads we got
            }
        }
        if handles.is_empty() {
            return ExecPool { shared: None };
        }
        ExecPool {
            shared: Some(Arc::new(PoolShared {
                inner,
                handles: Mutex::new(handles),
            })),
        }
    }

    /// The 1-way pool: no threads, `par_map` runs inline. The serial
    /// baseline every parallel run must match bit-for-bit.
    pub fn serial() -> Self {
        ExecPool { shared: None }
    }

    /// The process-wide shared pool, created on first use. Sized by the
    /// `GAUDI_EXEC_THREADS` environment variable when set (min 1),
    /// otherwise by [`std::thread::available_parallelism`].
    pub fn global() -> &'static ExecPool {
        static GLOBAL: OnceLock<ExecPool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let threads = std::env::var("GAUDI_EXEC_THREADS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n >= 1)
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1)
                });
            ExecPool::new(threads)
        })
    }

    /// Total concurrency: worker threads plus the participating caller.
    pub fn concurrency(&self) -> usize {
        match &self.shared {
            None => 1,
            Some(s) => s.inner.workers + 1,
        }
    }

    /// Whether `par_map` runs inline on the calling thread.
    pub fn is_serial(&self) -> bool {
        self.shared.is_none()
    }

    /// Map `f` over `0..n` in parallel, returning results **in index
    /// order**. `f` must be a pure function of its index for the ordering
    /// guarantee to mean determinism — which is true of everything this
    /// workspace simulates.
    ///
    /// Panics in `f` are re-raised on the calling thread once the batch
    /// has quiesced.
    pub fn par_map_range<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let Some(shared) = &self.shared else {
            return (0..n).map(f).collect();
        };
        if n <= 1 {
            return (0..n).map(f).collect();
        }
        run_batch(&shared.inner, n, &f)
    }

    /// Map `f` over a slice in parallel; results come back in input order.
    /// `f` receives `(index, &item)`.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.par_map_range(items.len(), |i| f(i, &items[i]))
    }

    /// Fallible [`par_map_range`](Self::par_map_range): returns the
    /// **lowest-index** error — exactly what a serial
    /// `collect::<Result<Vec<_>, _>>()` over the same closure would
    /// return, so error behavior is identical to the serial path. (Later
    /// items may still have been computed and discarded; `f` must be free
    /// of side effects that would make that observable.)
    pub fn try_par_map_range<R, E, F>(&self, n: usize, f: F) -> Result<Vec<R>, E>
    where
        R: Send,
        E: Send,
        F: Fn(usize) -> Result<R, E> + Sync,
    {
        let mut out = Vec::with_capacity(n);
        for r in self.par_map_range(n, f) {
            out.push(r?);
        }
        Ok(out)
    }

    /// Fallible [`par_map`](Self::par_map) with the same lowest-index
    /// error guarantee.
    pub fn try_par_map<T, R, E, F>(&self, items: &[T], f: F) -> Result<Vec<R>, E>
    where
        T: Sync,
        R: Send,
        E: Send,
        F: Fn(usize, &T) -> Result<R, E> + Sync,
    {
        self.try_par_map_range(items.len(), |i| f(i, &items[i]))
    }
}

/// What every clone of a parallel [`ExecPool`] shares. Dropping the last
/// clone shuts the workers down and joins them.
struct PoolShared {
    inner: Arc<PoolInner>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Drop for PoolShared {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        // Take the queue lock so the notify cannot race a worker between
        // its shutdown check and its wait.
        {
            let _q = self.inner.queue.lock().unwrap();
            self.inner.work_cv.notify_all();
        }
        for h in self.handles.lock().unwrap().drain(..) {
            let _ = h.join();
        }
    }
}

struct PoolInner {
    /// Announced batches. A batch may be announced multiple times (once
    /// per worker it could use); stale announcements are harmless — see
    /// [`BatchCore::participate`].
    queue: Mutex<VecDeque<Arc<BatchCore>>>,
    work_cv: Condvar,
    shutdown: AtomicBool,
    workers: usize,
}

fn worker_loop(inner: &PoolInner) {
    loop {
        let core = {
            let mut q = inner.queue.lock().unwrap();
            loop {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(c) = q.pop_front() {
                    break c;
                }
                q = inner.work_cv.wait(q).unwrap();
            }
        };
        core.participate();
    }
}

/// The `'static` announcement handle for one `par_map` batch. The batch
/// data itself lives on the caller's stack; this core carries a
/// type-erased pointer to it plus the entry/close bookkeeping that makes
/// the borrow sound.
struct BatchCore {
    state: Mutex<BatchState>,
    quiesced: Condvar,
    /// Monomorphized participant entry point for the erased batch.
    runner: unsafe fn(*const ()),
}

struct BatchState {
    /// Pointer to the stack-resident `BatchData`; nulled after close+drain.
    batch: *const (),
    /// Participants currently inside `runner`.
    active: usize,
    /// Set by the caller once all work is claimed; late poppers must not
    /// enter.
    closed: bool,
}

// SAFETY: `batch` is only dereferenced by participants registered under
// the state lock while `closed` is false; the owning stack frame does not
// exit (or unwind) until `closed` is set and `active` has drained to zero.
unsafe impl Send for BatchCore {}
unsafe impl Sync for BatchCore {}

impl BatchCore {
    fn participate(&self) {
        let ptr = {
            let mut st = self.state.lock().unwrap();
            if st.closed {
                return;
            }
            st.active += 1;
            st.batch
        };
        // SAFETY: entry was registered above, so the caller is blocked in
        // `drain` until we exit; `ptr` stays valid for the whole call.
        // `runner` catches panics internally and never unwinds.
        unsafe { (self.runner)(ptr) };
        let mut st = self.state.lock().unwrap();
        st.active -= 1;
        if st.active == 0 {
            self.quiesced.notify_all();
        }
    }

    /// Close the batch and wait until every registered participant has
    /// left. After this returns the caller's stack frame is the only
    /// referent of the batch data.
    fn drain(&self) {
        let mut st = self.state.lock().unwrap();
        st.closed = true;
        while st.active > 0 {
            st = self.quiesced.wait(st).unwrap();
        }
        st.batch = std::ptr::null();
    }
}

/// Pack a half-open index range `[start, end)` into one CAS-able word.
#[inline]
fn pack(start: u32, end: u32) -> u64 {
    ((start as u64) << 32) | end as u64
}

#[inline]
fn unpack(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

/// The per-batch scratch living on the caller's stack for the duration of
/// one `par_map_range` call.
struct BatchData<'a, R, F> {
    f: &'a F,
    /// One claimable `[start, end)` range per potential participant.
    ranges: Vec<AtomicU64>,
    /// Hands each entering participant a distinct home range.
    next_slot: AtomicUsize,
    /// `(index, result)` pairs, flushed once per participant.
    results: Mutex<Vec<(usize, R)>>,
    /// A task panicked: stop claiming, propagate after the drain.
    panicked: AtomicBool,
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

impl<R, F: Fn(usize) -> R> BatchData<'_, R, F> {
    /// Claim the next index from `slot`'s own range front.
    fn claim_own(&self, slot: usize) -> Option<usize> {
        let r = self.ranges.get(slot)?;
        loop {
            let cur = r.load(Ordering::Acquire);
            let (s, e) = unpack(cur);
            if s >= e {
                return None;
            }
            if r.compare_exchange_weak(cur, pack(s + 1, e), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Some(s as usize);
            }
        }
    }

    /// Steal one index from the back of the fullest other range.
    fn steal(&self, slot: usize) -> Option<usize> {
        loop {
            let victim = self
                .ranges
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != slot)
                .map(|(i, r)| {
                    let (s, e) = unpack(r.load(Ordering::Acquire));
                    (i, e.saturating_sub(s))
                })
                .max_by_key(|&(_, remaining)| remaining)
                .filter(|&(_, remaining)| remaining > 0)?;
            let r = &self.ranges[victim.0];
            let cur = r.load(Ordering::Acquire);
            let (s, e) = unpack(cur);
            if s >= e {
                continue; // lost the race; rescan
            }
            if r.compare_exchange(cur, pack(s, e - 1), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Some((e - 1) as usize);
            }
        }
    }

    /// One participant's whole contribution: claim → run → repeat, then
    /// flush results. Never unwinds; a panicking task is recorded.
    fn participant(&self) {
        let slot = self.next_slot.fetch_add(1, Ordering::Relaxed);
        let mut local: Vec<(usize, R)> = Vec::new();
        let run = catch_unwind(AssertUnwindSafe(|| {
            while !self.panicked.load(Ordering::Relaxed) {
                let Some(i) = self.claim_own(slot).or_else(|| self.steal(slot)) else {
                    break;
                };
                local.push((i, (self.f)(i)));
            }
        }));
        if let Err(payload) = run {
            self.panicked.store(true, Ordering::Relaxed);
            let mut p = self.panic.lock().unwrap();
            p.get_or_insert(payload);
        }
        self.results.lock().unwrap().append(&mut local);
    }
}

/// Type-erased participant entry: `ptr` is a `*const BatchData<R, F>`.
///
/// # Safety
/// `ptr` must point to a live `BatchData<R, F>` of exactly this `R`/`F`
/// monomorphization — guaranteed by pairing the fn pointer with the data
/// in [`run_batch`].
unsafe fn batch_runner<R, F: Fn(usize) -> R>(ptr: *const ()) {
    let batch = unsafe { &*(ptr as *const BatchData<'_, R, F>) };
    batch.participant();
}

fn run_batch<R, F>(inner: &Arc<PoolInner>, n: usize, f: &F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    // One contiguous home range per potential participant; ranges are a
    // partition of 0..n, so every index is claimed exactly once.
    let participants = (inner.workers + 1).min(n);
    let per = n.div_ceil(participants);
    let ranges: Vec<AtomicU64> = (0..participants)
        .map(|p| {
            let start = (p * per).min(n) as u32;
            let end = ((p + 1) * per).min(n) as u32;
            AtomicU64::new(pack(start, end))
        })
        .collect();
    let batch = BatchData {
        f,
        ranges,
        next_slot: AtomicUsize::new(0),
        results: Mutex::new(Vec::with_capacity(n)),
        panicked: AtomicBool::new(false),
        panic: Mutex::new(None),
    };
    let core = Arc::new(BatchCore {
        state: Mutex::new(BatchState {
            batch: &batch as *const BatchData<'_, R, F> as *const (),
            active: 0,
            closed: false,
        }),
        quiesced: Condvar::new(),
        runner: batch_runner::<R, F>,
    });

    // Announce to as many workers as could usefully help, then pitch in.
    {
        let mut q = inner.queue.lock().unwrap();
        for _ in 0..inner.workers.min(n - 1) {
            q.push_back(Arc::clone(&core));
        }
        inner.work_cv.notify_all();
    }
    core.participate();
    core.drain();

    // The batch is exclusively ours again: settle panics, then order.
    if let Some(payload) = batch.panic.lock().unwrap().take() {
        resume_unwind(payload);
    }
    let mut pairs = std::mem::take(&mut *batch.results.lock().unwrap());
    debug_assert_eq!(pairs.len(), n, "every index claimed exactly once");
    pairs.sort_unstable_by_key(|&(i, _)| i);
    pairs.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_input_order() {
        let pool = ExecPool::new(4);
        let items: Vec<usize> = (0..1000).collect();
        let out = pool.par_map(&items, |i, &x| {
            assert_eq!(i, x);
            x * x
        });
        let expect: Vec<usize> = items.iter().map(|&x| x * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let pool = ExecPool::new(8);
        let calls = AtomicUsize::new(0);
        let n = 10_000;
        let out = pool.par_map_range(n, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), n);
        assert_eq!(out, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        // f64 accumulation in a fixed order: the exact check the serving
        // engine relies on.
        let work = |i: usize| {
            let mut acc = 0.1f64;
            for k in 0..100 {
                acc += ((i * 31 + k) as f64).sin();
            }
            acc
        };
        let serial = ExecPool::serial().par_map_range(257, work);
        let parallel = ExecPool::new(5).par_map_range(257, work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn serial_pool_runs_inline_without_threads() {
        let pool = ExecPool::serial();
        assert!(pool.is_serial());
        assert_eq!(pool.concurrency(), 1);
        // Non-Send closures state would fail to compile; runtime check: a
        // thread-local-ish marker survives because everything is inline.
        let here = std::thread::current().id();
        let ids = pool.par_map_range(4, |_| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == here));
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let pool = ExecPool::new(4);
        let empty: Vec<u8> = Vec::new();
        assert!(pool.par_map(&empty, |_, &b| b).is_empty());
        assert_eq!(pool.par_map(&[41], |_, &x| x + 1), vec![42]);
    }

    #[test]
    fn try_par_map_returns_the_lowest_index_error() {
        let pool = ExecPool::new(4);
        let r: Result<Vec<usize>, usize> =
            pool.try_par_map_range(100, |i| if i % 7 == 3 { Err(i) } else { Ok(i) });
        assert_eq!(r.unwrap_err(), 3, "serial would fail at index 3 first");
        let ok: Result<Vec<usize>, ()> = pool.try_par_map_range(10, Ok);
        assert_eq!(ok.unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn nested_par_map_on_one_pool_makes_progress() {
        let pool = ExecPool::new(3);
        let out = pool.par_map_range(6, |i| {
            let inner: usize = pool.par_map_range(5, |j| i * 10 + j).into_iter().sum();
            inner
        });
        let expect: Vec<usize> = (0..6).map(|i| (0..5).map(|j| i * 10 + j).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let pool = ExecPool::new(4);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.par_map_range(64, |i| {
                if i == 17 {
                    panic!("task 17 exploded");
                }
                i
            })
        }));
        let payload = r.unwrap_err();
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("exploded"), "got: {msg}");
        // The pool survives a panicked batch.
        assert_eq!(pool.par_map_range(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn many_small_batches_reuse_the_workers() {
        let pool = ExecPool::new(4);
        for round in 0..200 {
            let out = pool.par_map_range(8, |i| i + round);
            assert_eq!(out, (round..round + 8).collect::<Vec<_>>());
        }
    }

    #[test]
    fn borrows_non_static_data() {
        let pool = ExecPool::new(4);
        let data: Vec<String> = (0..64).map(|i| format!("item-{i}")).collect();
        let lens = pool.par_map(&data, |_, s| s.len());
        assert_eq!(lens[0], "item-0".len());
        assert_eq!(lens[63], "item-63".len());
        drop(data); // still exclusively ours
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        let a = ExecPool::global();
        let b = ExecPool::global();
        assert_eq!(a.concurrency(), b.concurrency());
        assert!(a.concurrency() >= 1);
        assert_eq!(a.par_map_range(5, |i| i * 2), vec![0, 2, 4, 6, 8]);
    }
}
