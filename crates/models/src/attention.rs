//! The three attention mechanisms of §3.3.
//!
//! All three builders take queries/keys/values already shaped `[B, H, N, D]`
//! and return the attention output in the same shape. They emit only basic
//! torch-like ops (Insight #2), so every matrix product reaches the MME and
//! every softmax/exponential lands on the TPC — reproducing the engine
//! placement the paper's traces show.

use gaudi_graph::{Activation, Graph, GraphError, NodeId};

/// Attention mechanism selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttentionKind {
    /// Softmax attention (Vaswani et al.) — O(N²), softmax on TPC is the
    /// Figure 4 bottleneck.
    Softmax,
    /// Linear-Transformer attention with `φ(x) = elu(x) + 1` — O(N),
    /// the Figure 5 winner (≈6x).
    Linear,
    /// Performer FAVOR with `m` random features — O(N) but with exponential
    /// feature maps on TPC (Figure 6, ≈2x, un-overlapped q'/k').
    Favor {
        /// Number of random features `m`.
        features: usize,
    },
    /// Block-local windowed attention (Sparse-Transformer style): each query
    /// attends within its window of `window` positions — O(N·W) softmax with
    /// all matrix work MME-friendly. This is the paper's *future work*
    /// ("novel attention mechanisms tailored to GAUDI's architecture"):
    /// it shrinks the TPC-bound softmax by N/W while keeping exact local
    /// interactions.
    LocalWindow {
        /// Window size `W` (must divide the sequence length).
        window: usize,
    },
}

impl AttentionKind {
    /// Display name used in benchmark tables.
    pub fn name(&self) -> &'static str {
        match self {
            AttentionKind::Softmax => "softmax",
            AttentionKind::Linear => "linear",
            AttentionKind::Favor { .. } => "performer",
            AttentionKind::LocalWindow { .. } => "local_window",
        }
    }
}

/// Scaled-dot-product softmax attention over `[B, H, N, D]` tensors.
///
/// `mask` (optional, broadcastable to `[B, H, N, N]`) is added to the scores
/// before the softmax — used for GPT's causal masking.
pub fn softmax_attention(
    g: &mut Graph,
    q: NodeId,
    k: NodeId,
    v: NodeId,
    mask: Option<NodeId>,
) -> Result<NodeId, GraphError> {
    let d = g.shape(q).last_dim() as f32;
    let kt = g.transpose(k)?;
    let scores = g.matmul(q, kt)?;
    g.name_last("attn_scores");
    let scaled = g.scalar_mul(scores, 1.0 / d.sqrt())?;
    let masked = match mask {
        Some(m) => g.add(scaled, m)?,
        None => scaled,
    };
    let probs = g.softmax(masked)?;
    g.name_last("attn_softmax");
    let out = g.matmul(probs, v)?;
    g.name_last("attn_output");
    Ok(out)
}

/// Linear-Transformer attention: `φ(Q) (φ(K)ᵀ V) / (φ(Q) (φ(K)ᵀ 1))` with
/// `φ(x) = elu(x) + 1`. The associativity rewrite keeps almost all compute
/// in matrix products on the MME.
pub fn linear_attention(
    g: &mut Graph,
    q: NodeId,
    k: NodeId,
    v: NodeId,
) -> Result<NodeId, GraphError> {
    let phi_q = g.activation(Activation::EluPlusOne, q)?;
    g.name_last("phi_q");
    let phi_k = g.activation(Activation::EluPlusOne, k)?;
    g.name_last("phi_k");
    let phi_kt = g.transpose(phi_k)?; // [B,H,D,N]
    let kv = g.matmul(phi_kt, v)?; // [B,H,D,D]
    g.name_last("kv_state");
    let numer = g.matmul(phi_q, kv)?; // [B,H,N,D]
    g.name_last("attn_numer");

    // Normalizer: z = φ(Q) (φ(K)ᵀ 1_N) as an [B,H,N,1] column.
    let v_dims = g.shape(v).dims().to_vec();
    let ones = g.fill("ones_col", &[v_dims[0], v_dims[1], v_dims[2], 1], 1.0)?;
    let k_sum = g.matmul(phi_kt, ones)?; // [B,H,D,1]
    let z = g.matmul(phi_q, k_sum)?; // [B,H,N,1]
    g.name_last("attn_norm");
    let out = g.div(numer, z)?;
    g.name_last("attn_output");
    Ok(out)
}

/// Performer FAVOR attention, transcribed from the paper's Listing 1:
///
/// ```python
/// q_scaled = self.pre_scale(q) @ self.features
/// q_prime  = torch.exp(q_scaled + self.offset)
/// ...
/// att_norm = q_prime @ (k_prime.transpose(-2,-1) @ torch.ones_like(v))
/// att_raw  = q_prime @ (k_prime.transpose(-2,-1) @ v)
/// x = att_raw / att_norm
/// ```
///
/// `features` is a `[D, m]` random-projection parameter. The `q_prime` /
/// `k_prime` exponentials are *independent*, which the in-order compiler
/// fails to overlap — the Figure 6 MME gap.
pub fn favor_attention(
    g: &mut Graph,
    q: NodeId,
    k: NodeId,
    v: NodeId,
    num_features: usize,
) -> Result<NodeId, GraphError> {
    let d = g.shape(q).last_dim();
    let pre_scale = 1.0 / (d as f32).sqrt().sqrt(); // d^(-1/4), split across q and k
    let offset = -0.5f32; // stand-in for the -||x||^2/2 stabilizer

    let features = g.parameter("favor_features", &[d, num_features])?;

    let q_scaled = g.scalar_mul(q, pre_scale)?;
    let q_feat = g.matmul(q_scaled, features)?; // [B,H,N,m]
    g.name_last("q_features");
    let q_shift = g.scalar_add(q_feat, offset)?;
    let q_prime = g.exp(q_shift)?;
    g.name_last("q_prime");

    let k_scaled = g.scalar_mul(k, pre_scale)?;
    let k_feat = g.matmul(k_scaled, features)?;
    g.name_last("k_features");
    let k_shift = g.scalar_add(k_feat, offset)?;
    let k_prime = g.exp(k_shift)?;
    g.name_last("k_prime");

    let k_prime_t = g.transpose(k_prime)?; // [B,H,m,N]
    let ones = g.ones_like(v, "ones_like_v")?;
    let norm_state = g.matmul(k_prime_t, ones)?; // [B,H,m,D]
    let att_norm = g.matmul(q_prime, norm_state)?; // [B,H,N,D]
    g.name_last("att_norm");
    let raw_state = g.matmul(k_prime_t, v)?; // [B,H,m,D]
    let att_raw = g.matmul(q_prime, raw_state)?; // [B,H,N,D]
    g.name_last("att_raw");
    let out = g.div(att_raw, att_norm)?;
    g.name_last("attn_output");
    Ok(out)
}

/// Block-local windowed attention: fold the sequence into `N / window`
/// independent blocks, run exact softmax attention inside each block, and
/// unfold. The softmax shrinks from `N x N` to `N x W` — attacking exactly
/// the Figure 4 bottleneck — while every matrix product stays on the MME.
pub fn local_window_attention(
    g: &mut Graph,
    q: NodeId,
    k: NodeId,
    v: NodeId,
    window: usize,
) -> Result<NodeId, GraphError> {
    let dims = g.shape(q).dims().to_vec();
    let (b, h, n, d) = (dims[0], dims[1], dims[2], dims[3]);
    if window == 0 || n % window != 0 {
        return Err(GraphError::Rank {
            what: "window must divide the sequence length",
        });
    }
    let blocks = n / window;
    let fold = |g: &mut Graph, t: NodeId| g.reshape(t, &[b * h * blocks, window, d]);
    let qb = fold(g, q)?;
    let kb = fold(g, k)?;
    let vb = fold(g, v)?;
    let kt = g.transpose(kb)?;
    let scores = g.matmul(qb, kt)?;
    g.name_last("attn_scores_local");
    let scaled = g.scalar_mul(scores, 1.0 / (d as f32).sqrt())?;
    let probs = g.softmax(scaled)?;
    g.name_last("attn_softmax_local");
    let ob = g.matmul(probs, vb)?;
    let out = g.reshape(ob, &[b, h, n, d])?;
    g.name_last("attn_output");
    Ok(out)
}

/// Build the selected attention over `[B, H, N, D]` operands.
pub fn build_attention(
    g: &mut Graph,
    kind: AttentionKind,
    q: NodeId,
    k: NodeId,
    v: NodeId,
    mask: Option<NodeId>,
) -> Result<NodeId, GraphError> {
    match kind {
        AttentionKind::Softmax => softmax_attention(g, q, k, v, mask),
        AttentionKind::Linear => linear_attention(g, q, k, v),
        AttentionKind::Favor { features } => favor_attention(g, q, k, v, features),
        AttentionKind::LocalWindow { window } => local_window_attention(g, q, k, v, window),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaudi_graph::OpKind;

    fn qkv(g: &mut Graph) -> (NodeId, NodeId, NodeId) {
        let q = g.input("q", &[2, 3, 16, 8]).unwrap();
        let k = g.input("k", &[2, 3, 16, 8]).unwrap();
        let v = g.input("v", &[2, 3, 16, 8]).unwrap();
        (q, k, v)
    }

    #[test]
    fn softmax_attention_shape_preserved() {
        let mut g = Graph::new();
        let (q, k, v) = qkv(&mut g);
        let out = softmax_attention(&mut g, q, k, v, None).unwrap();
        assert_eq!(g.shape(out).dims(), &[2, 3, 16, 8]);
        assert!(g.nodes().iter().any(|n| matches!(n.kind, OpKind::Softmax)));
        g.validate().unwrap();
    }

    #[test]
    fn linear_attention_has_no_softmax_and_no_nxn_product() {
        let mut g = Graph::new();
        let (q, k, v) = qkv(&mut g);
        let out = linear_attention(&mut g, q, k, v).unwrap();
        assert_eq!(g.shape(out).dims(), &[2, 3, 16, 8]);
        assert!(!g.nodes().iter().any(|n| matches!(n.kind, OpKind::Softmax)));
        // No intermediate is N x N: linear attention avoids the quadratic blow-up.
        for n in g.nodes() {
            let dims = n.shape.dims();
            if dims.len() == 4 {
                assert!(
                    !(dims[2] == 16 && dims[3] == 16),
                    "found quadratic intermediate {:?} at {}",
                    dims,
                    n.kind
                );
            }
        }
    }

    #[test]
    fn favor_follows_listing_one() {
        let mut g = Graph::new();
        let (q, k, v) = qkv(&mut g);
        let out = favor_attention(&mut g, q, k, v, 32).unwrap();
        assert_eq!(g.shape(out).dims(), &[2, 3, 16, 8]);
        // Two exponentials (q_prime, k_prime) and a ones_like normalizer.
        let exps = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.kind, OpKind::Exp))
            .count();
        assert_eq!(exps, 2);
        assert!(g.nodes().iter().any(|n| n.name == "ones_like_v"));
        // Final op is a division (att_raw / att_norm).
        assert!(matches!(g.node(out).kind, OpKind::Div));
    }

    #[test]
    fn favor_feature_dim_appears() {
        let mut g = Graph::new();
        let (q, k, v) = qkv(&mut g);
        let _ = favor_attention(&mut g, q, k, v, 48).unwrap();
        assert!(g
            .nodes()
            .iter()
            .any(|n| n.name == "q_features" && n.shape.dims() == [2, 3, 16, 48]));
    }

    #[test]
    fn masked_softmax_attention_builds() {
        let mut g = Graph::new();
        let (q, k, v) = qkv(&mut g);
        let mask = g.input("mask", &[16, 16]).unwrap();
        let out = softmax_attention(&mut g, q, k, v, Some(mask)).unwrap();
        assert_eq!(g.shape(out).dims(), &[2, 3, 16, 8]);
    }

    #[test]
    fn names_cover_all_kinds() {
        assert_eq!(AttentionKind::Softmax.name(), "softmax");
        assert_eq!(AttentionKind::Linear.name(), "linear");
        assert_eq!(AttentionKind::Favor { features: 4 }.name(), "performer");
        assert_eq!(
            AttentionKind::LocalWindow { window: 64 }.name(),
            "local_window"
        );
    }

    #[test]
    fn local_window_shapes_and_block_structure() {
        let mut g = Graph::new();
        let (q, k, v) = qkv(&mut g);
        let out = local_window_attention(&mut g, q, k, v, 4).unwrap();
        assert_eq!(g.shape(out).dims(), &[2, 3, 16, 8]);
        // The softmax operates on [B*H*blocks, W, W] = [24, 4, 4], not NxN.
        let sm = g
            .nodes()
            .iter()
            .find(|n| matches!(n.kind, OpKind::Softmax))
            .unwrap();
        assert_eq!(sm.shape.dims(), &[24, 4, 4]);
        g.validate().unwrap();
    }

    #[test]
    fn local_window_rejects_non_divisor() {
        let mut g = Graph::new();
        let (q, k, v) = qkv(&mut g);
        assert!(local_window_attention(&mut g, q, k, v, 5).is_err());
        let mut g2 = Graph::new();
        let (q, k, v) = qkv(&mut g2);
        assert!(local_window_attention(&mut g2, q, k, v, 0).is_err());
    }

    #[test]
    fn full_window_equals_global_softmax_attention_shape() {
        // window == N degenerates to one block of full attention.
        let mut g = Graph::new();
        let (q, k, v) = qkv(&mut g);
        let out = local_window_attention(&mut g, q, k, v, 16).unwrap();
        assert_eq!(g.shape(out).dims(), &[2, 3, 16, 8]);
        let sm = g
            .nodes()
            .iter()
            .find(|n| matches!(n.kind, OpKind::Softmax))
            .unwrap();
        assert_eq!(sm.shape.dims(), &[6, 16, 16]);
    }
}
