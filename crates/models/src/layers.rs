//! Building-block layers: linear projections, multi-head split/merge, FFN
//! with the Figure 7 activation sweep, and layernorm.

use gaudi_graph::{Activation, Graph, GraphError, NodeId};

/// `y = x W + b` with parameters named `{name}.w` / `{name}.b`.
pub fn linear(
    g: &mut Graph,
    x: NodeId,
    d_in: usize,
    d_out: usize,
    name: &str,
) -> Result<NodeId, GraphError> {
    let w = g.parameter(&format!("{name}.w"), &[d_in, d_out])?;
    let b = g.parameter(&format!("{name}.b"), &[d_out])?;
    let xw = g.matmul(x, w)?;
    g.name_last(name);
    let y = g.add(xw, b)?;
    Ok(y)
}

/// Split `[B, N, H*D]` into heads `[B, H, N, D]`.
pub fn split_heads(
    g: &mut Graph,
    x: NodeId,
    heads: usize,
    head_dim: usize,
) -> Result<NodeId, GraphError> {
    let dims = g.shape(x).dims().to_vec();
    let (b, n) = (dims[0], dims[1]);
    let r = g.reshape(x, &[b, n, heads, head_dim])?;
    g.permute(r, &[0, 2, 1, 3])
}

/// Merge heads `[B, H, N, D]` back into `[B, N, H*D]`.
pub fn merge_heads(g: &mut Graph, x: NodeId) -> Result<NodeId, GraphError> {
    let dims = g.shape(x).dims().to_vec();
    let (b, h, n, d) = (dims[0], dims[1], dims[2], dims[3]);
    let p = g.permute(x, &[0, 2, 1, 3])?;
    g.reshape(p, &[b, n, h * d])
}

/// Layer normalization with parameters named `{name}.gamma` / `{name}.beta`.
pub fn layernorm(g: &mut Graph, x: NodeId, name: &str) -> Result<NodeId, GraphError> {
    let d = g.shape(x).last_dim();
    let gamma = g.parameter(&format!("{name}.gamma"), &[d])?;
    let beta = g.parameter(&format!("{name}.beta"), &[d])?;
    let y = g.layernorm(x, gamma, beta, 1e-5)?;
    g.name_last(name);
    Ok(y)
}

/// Position-wise feed-forward block: `act(x W1 + b1) W2 + b2`.
///
/// GLU follows `torch.nn.GLU` semantics: it halves the activation width, so
/// the second projection reads `d_ff / 2` features (`d_ff` must be even).
pub fn ffn(
    g: &mut Graph,
    x: NodeId,
    d_model: usize,
    d_ff: usize,
    act: Activation,
    name: &str,
) -> Result<NodeId, GraphError> {
    let h = linear(g, x, d_model, d_ff, &format!("{name}.fc1"))?;
    let a = g.activation(act, h)?;
    g.name_last(&format!("{name}.{}", act.name()));
    let second_in = if matches!(act, Activation::Glu) {
        d_ff / 2
    } else {
        d_ff
    };
    linear(g, a, second_in, d_model, &format!("{name}.fc2"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_shapes() {
        let mut g = Graph::new();
        let x = g.input("x", &[4, 10, 16]).unwrap();
        let y = linear(&mut g, x, 16, 32, "proj").unwrap();
        assert_eq!(g.shape(y).dims(), &[4, 10, 32]);
        assert!(g.nodes().iter().any(|n| n.name == "proj.w"));
        assert!(g.nodes().iter().any(|n| n.name == "proj.b"));
    }

    #[test]
    fn head_split_merge_roundtrip_shapes() {
        let mut g = Graph::new();
        let x = g.input("x", &[2, 10, 24]).unwrap();
        let s = split_heads(&mut g, x, 3, 8).unwrap();
        assert_eq!(g.shape(s).dims(), &[2, 3, 10, 8]);
        let m = merge_heads(&mut g, s).unwrap();
        assert_eq!(g.shape(m).dims(), &[2, 10, 24]);
    }

    #[test]
    fn ffn_shapes_for_all_activations() {
        for act in [
            Activation::Relu,
            Activation::LeakyRelu(0.01),
            Activation::Gelu,
            Activation::Glu,
        ] {
            let mut g = Graph::new();
            let x = g.input("x", &[2, 6, 16]).unwrap();
            let y = ffn(&mut g, x, 16, 32, act, "ffn").unwrap();
            assert_eq!(g.shape(y).dims(), &[2, 6, 16], "{act:?}");
            g.validate().unwrap();
        }
    }

    #[test]
    fn glu_ffn_halves_the_gate_width() {
        let mut g = Graph::new();
        let x = g.input("x", &[2, 6, 16]).unwrap();
        let _ = ffn(&mut g, x, 16, 32, Activation::Glu, "ffn").unwrap();
        // fc1 keeps [16, 32]; GLU halves to 16 features; fc2 reads [16, 16].
        let w1 = g.nodes().iter().find(|n| n.name == "ffn.fc1.w").unwrap();
        assert_eq!(w1.shape.dims(), &[16, 32]);
        let w2 = g.nodes().iter().find(|n| n.name == "ffn.fc2.w").unwrap();
        assert_eq!(w2.shape.dims(), &[16, 16]);
    }

    #[test]
    fn layernorm_has_params() {
        let mut g = Graph::new();
        let x = g.input("x", &[2, 6, 16]).unwrap();
        let y = layernorm(&mut g, x, "ln").unwrap();
        assert_eq!(g.shape(y).dims(), &[2, 6, 16]);
        assert!(g.nodes().iter().any(|n| n.name == "ln.gamma"));
    }
}
