//! Experiment configurations, with constructors matching the paper's setups.

use crate::attention::AttentionKind;
use gaudi_graph::Activation;

/// Configuration of a single Transformer layer benchmark (§3.3).
#[derive(Debug, Clone)]
pub struct TransformerLayerConfig {
    /// Input sequence length `N`.
    pub seq_len: usize,
    /// Batch size.
    pub batch: usize,
    /// Number of attention heads `H`.
    pub heads: usize,
    /// Hidden size per head `D`.
    pub head_dim: usize,
    /// Attention mechanism under test.
    pub attention: AttentionKind,
    /// Feed-forward activation (the Figure 7 sweep).
    pub activation: Activation,
    /// FFN inner-size multiplier (1 keeps the layer at the paper's ~30 ms
    /// scale; classic Transformers use 4).
    pub ffn_mult: usize,
    /// Include the position-wise feed-forward block.
    pub include_ffn: bool,
    /// Append the backward (training) graph.
    pub training: bool,
}

impl TransformerLayerConfig {
    /// The §3.3 profiling configuration: "we set the input sequence length,
    /// batch size, the number of heads, and the hidden size per head as
    /// 2048, 128, 6, and 64 respectively".
    pub fn paper_section_3_3() -> Self {
        TransformerLayerConfig {
            seq_len: 2048,
            batch: 128,
            heads: 6,
            head_dim: 64,
            attention: AttentionKind::Softmax,
            activation: Activation::Relu,
            ffn_mult: 1,
            include_ffn: true,
            training: false,
        }
    }

    /// A host-executable miniature (same structure, tiny dims) for numeric
    /// tests and the quickstart example.
    pub fn tiny() -> Self {
        TransformerLayerConfig {
            seq_len: 64,
            batch: 2,
            heads: 2,
            head_dim: 8,
            attention: AttentionKind::Softmax,
            activation: Activation::Relu,
            ffn_mult: 1,
            include_ffn: true,
            training: false,
        }
    }

    /// Select the attention mechanism.
    pub fn with_attention(mut self, kind: AttentionKind) -> Self {
        self.attention = kind;
        self
    }

    /// Select the FFN activation.
    pub fn with_activation(mut self, act: Activation) -> Self {
        self.activation = act;
        self
    }

    /// Select the sequence length.
    pub fn with_seq_len(mut self, n: usize) -> Self {
        self.seq_len = n;
        self
    }

    /// Enable the backward pass.
    pub fn with_training(mut self, on: bool) -> Self {
        self.training = on;
        self
    }

    /// Model width `H * D`.
    pub fn model_dim(&self) -> usize {
        self.heads * self.head_dim
    }
}

/// Configuration of an end-to-end language model benchmark (§3.4).
#[derive(Debug, Clone)]
pub struct LlmConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Input sequence length.
    pub seq_len: usize,
    /// Batch size.
    pub batch: usize,
    /// Number of Transformer layers.
    pub layers: usize,
    /// Attention heads.
    pub heads: usize,
    /// Hidden size per head.
    pub head_dim: usize,
    /// FFN inner-size multiplier.
    pub ffn_mult: usize,
    /// Append the backward (training) graph.
    pub training: bool,
}

impl LlmConfig {
    /// The §3.4 configuration: "input sequence length, batch size, the
    /// number of layers, the number of heads, and the hidden size per head
    /// as 2048, 8, 2, 8, and 64" — batch limited by the 32 GB HBM.
    pub fn paper_section_3_4(vocab: usize) -> Self {
        LlmConfig {
            vocab,
            seq_len: 2048,
            batch: 8,
            layers: 2,
            heads: 8,
            head_dim: 64,
            ffn_mult: 4,
            training: true,
        }
    }

    /// Host-executable miniature for numeric tests.
    pub fn tiny(vocab: usize) -> Self {
        LlmConfig {
            vocab,
            seq_len: 32,
            batch: 2,
            layers: 2,
            heads: 2,
            head_dim: 8,
            ffn_mult: 2,
            training: false,
        }
    }

    /// Model width `H * D`.
    pub fn model_dim(&self) -> usize {
        self.heads * self.head_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_match_the_text() {
        let c = TransformerLayerConfig::paper_section_3_3();
        assert_eq!(
            (c.seq_len, c.batch, c.heads, c.head_dim),
            (2048, 128, 6, 64)
        );
        assert_eq!(c.model_dim(), 384);

        let l = LlmConfig::paper_section_3_4(30522);
        assert_eq!(
            (l.seq_len, l.batch, l.layers, l.heads, l.head_dim),
            (2048, 8, 2, 8, 64)
        );
        assert_eq!(l.model_dim(), 512);
    }

    #[test]
    fn builders_chain() {
        let c = TransformerLayerConfig::tiny()
            .with_attention(AttentionKind::Linear)
            .with_activation(Activation::Gelu)
            .with_seq_len(128)
            .with_training(true);
        assert_eq!(c.attention, AttentionKind::Linear);
        assert_eq!(c.seq_len, 128);
        assert!(c.training);
    }
}
