//! # gaudi-models
//!
//! Transformer model builders emitting `gaudi-graph` compute graphs — the
//! operator streams the paper profiles on real Gaudi hardware:
//!
//! * [`attention`] — the three §3.3 mechanisms: softmax attention (Vaswani),
//!   Linear-Transformer attention (`φ(x) = elu(x)+1`, Katharopoulos et al.),
//!   and Performer FAVOR (Choromanski et al., built exactly as the paper's
//!   Listing 1 including the `ones_like` normalizer);
//! * [`layers`] — linear/FFN/layernorm building blocks with the Figure 7
//!   activation sweep (ReLU, LeakyReLU, GELU, GLU);
//! * [`transformer`] — the single-layer configuration of §3.3 (sequence
//!   2048, batch 128, 6 heads, 64 hidden per head);
//! * [`bert`] / [`gpt`] — the end-to-end `BertForMaskedLM` and
//!   `GPT2LMHeadModel` analogs of §3.4 (sequence 2048, batch 8, 2 layers,
//!   8 heads, 64 hidden per head).

pub mod attention;
pub mod bert;
pub mod config;
pub mod decode;
pub mod gpt;
pub mod layers;
pub mod transformer;

pub use attention::AttentionKind;
pub use bert::BertConfig;
pub use config::{LlmConfig, TransformerLayerConfig};
pub use decode::{build_decode_step, build_prefill, BuiltDecodeStep, BuiltPrefill};
pub use gpt::GptConfig;
pub use transformer::build_transformer_layer;

/// Activation selection re-exported from the graph IR.
pub type ActivationKind = gaudi_graph::Activation;
