//! Inference-phase graph builders: prompt prefill and single-token decode.
//!
//! Online serving splits every request into two very different workloads:
//!
//! * **Prefill** — one forward pass over the whole prompt. Shaped like the
//!   training forward ([B, N, d] activations), it is MME-heavy: the big
//!   `[B·N, d] × [d, d]` projections run near the Table 2 GEMM plateau.
//! * **Decode** — one forward pass per generated token over a *single*
//!   position, attending to the KV cache. Every projection collapses to a
//!   batched GEMV (`[B, 1, d] × [d, d]`), which the MME executes at its
//!   launch-overhead floor while softmax/layernorm TPC work stays roughly
//!   constant — so the MME/TPC balance shifts exactly as the paper's
//!   Table 2 small-GEMM measurements predict.
//!
//! There is no concatenation operator in the IR, so the decode builder
//! models the KV cache as *input* tensors of the current context length;
//! the freshly projected K/V for the current token are marked as outputs
//! (the cache write-back). Cost-wise this is identical to attending over
//! `ctx` cached positions.

use crate::attention::softmax_attention;
use crate::config::LlmConfig;
use crate::layers::{ffn, layernorm, linear, merge_heads, split_heads};
use gaudi_graph::{Activation, Graph, GraphError, NodeId};

/// Node handles of a built prefill graph.
#[derive(Debug, Clone)]
pub struct BuiltPrefill {
    /// Token-id input `[B, N]`.
    pub ids: NodeId,
    /// Final hidden states `[B, N, d]` (the KV cache + last-position state).
    pub hidden: NodeId,
}

/// Node handles of a built decode-step graph.
#[derive(Debug, Clone)]
pub struct BuiltDecodeStep {
    /// Current-token id input `[B, 1]`.
    pub ids: NodeId,
    /// Next-token logits `[B, 1, V]`.
    pub logits: NodeId,
}

/// Build the prefill graph: embed a `[batch, prompt_len]` prompt and run
/// the full causal encoder stack, producing the hidden states that seed
/// the KV cache. The LM head is *not* applied here — the first sampled
/// token comes out of the first decode step, which is also how
/// iteration-level serving engines schedule it.
pub fn build_prefill(
    cfg: &LlmConfig,
    batch: usize,
    prompt_len: usize,
) -> Result<(Graph, BuiltPrefill), GraphError> {
    assert!(batch > 0 && prompt_len > 0, "empty prefill");
    let mut g = Graph::new();
    g.storage_dtype = gaudi_tensor::DType::F32;
    let d = cfg.model_dim();

    let ids = g.input("ids", &[batch, prompt_len])?;
    let tok_table = g.parameter("serve.tok_embed", &[cfg.vocab, d])?;
    let tok = g.embedding(tok_table, ids)?;
    g.name_last("tok_embed");
    let pos_table = g.parameter("serve.pos_embed", &[prompt_len, d])?;
    let mut h = g.add(tok, pos_table)?;
    h = layernorm(&mut g, h, "serve.embed_ln")?;

    let mask = g.input("causal_mask", &[prompt_len, prompt_len])?;
    let layer_cfg = crate::config::TransformerLayerConfig {
        seq_len: prompt_len,
        batch,
        heads: cfg.heads,
        head_dim: cfg.head_dim,
        attention: crate::attention::AttentionKind::Softmax,
        activation: Activation::Gelu,
        ffn_mult: cfg.ffn_mult,
        include_ffn: true,
        training: false,
    };
    for l in 0..cfg.layers {
        h = crate::transformer::transformer_layer(
            &mut g,
            h,
            &layer_cfg,
            &format!("serve.layer{l}"),
            Some(mask),
        )?;
    }
    g.mark_output(h);
    Ok((g, BuiltPrefill { ids, hidden: h }))
}

/// Build one decode step: a `[batch, 1]` token batch attends to per-layer
/// KV caches of `ctx_len` positions and produces next-token logits.
pub fn build_decode_step(
    cfg: &LlmConfig,
    batch: usize,
    ctx_len: usize,
) -> Result<(Graph, BuiltDecodeStep), GraphError> {
    assert!(batch > 0 && ctx_len > 0, "empty decode step");
    let mut g = Graph::new();
    g.storage_dtype = gaudi_tensor::DType::F32;
    let d = cfg.model_dim();

    let ids = g.input("ids", &[batch, 1])?;
    let tok_table = g.parameter("serve.tok_embed", &[cfg.vocab, d])?;
    let tok = g.embedding(tok_table, ids)?;
    g.name_last("tok_embed");
    // One position's worth of positional embedding (gather stand-in).
    let pos = g.parameter("serve.pos_embed_step", &[1, d])?;
    let mut h = g.add(tok, pos)?;
    h = layernorm(&mut g, h, "serve.embed_ln")?;

    for l in 0..cfg.layers {
        let name = format!("serve.layer{l}");
        // GEMV-shaped projections for the single current position.
        let q = linear(&mut g, h, d, d, &format!("{name}.q_proj"))?;
        let k = linear(&mut g, h, d, d, &format!("{name}.k_proj"))?;
        let v = linear(&mut g, h, d, d, &format!("{name}.v_proj"))?;
        let qh = split_heads(&mut g, q, cfg.heads, cfg.head_dim)?;
        let kh = split_heads(&mut g, k, cfg.heads, cfg.head_dim)?;
        let vh = split_heads(&mut g, v, cfg.heads, cfg.head_dim)?;
        // The new K/V rows are written back to the cache.
        g.mark_output(kh);
        g.mark_output(vh);

        // Attend over the cached context.
        let k_cache = g.input(
            &format!("{name}.k_cache"),
            &[batch, cfg.heads, ctx_len, cfg.head_dim],
        )?;
        let v_cache = g.input(
            &format!("{name}.v_cache"),
            &[batch, cfg.heads, ctx_len, cfg.head_dim],
        )?;
        let ctx = softmax_attention(&mut g, qh, k_cache, v_cache, None)?;
        let merged = merge_heads(&mut g, ctx)?;
        let attn_out = linear(&mut g, merged, d, d, &format!("{name}.out_proj"))?;

        let res1 = g.add(h, attn_out)?;
        let ln1 = layernorm(&mut g, res1, &format!("{name}.ln1"))?;
        let f = ffn(
            &mut g,
            ln1,
            d,
            d * cfg.ffn_mult,
            Activation::Gelu,
            &format!("{name}.ffn"),
        )?;
        let res2 = g.add(ln1, f)?;
        h = layernorm(&mut g, res2, &format!("{name}.ln2"))?;
    }

    // LM head over the single position: `[B, 1, d] × [d, V]`.
    let logits = linear(&mut g, h, d, cfg.vocab, "serve.lm_head")?;
    g.mark_output(logits);
    Ok((g, BuiltDecodeStep { ids, logits }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LlmConfig {
        LlmConfig::tiny(97)
    }

    #[test]
    fn prefill_builds_with_expected_shapes() {
        let (g, built) = build_prefill(&tiny(), 3, 16).unwrap();
        g.validate().unwrap();
        assert_eq!(g.shape(built.ids).dims(), &[3, 16]);
        assert_eq!(g.shape(built.hidden).dims(), &[3, 16, 16]);
    }

    #[test]
    fn decode_step_is_single_position() {
        let (g, built) = build_decode_step(&tiny(), 4, 32).unwrap();
        g.validate().unwrap();
        assert_eq!(g.shape(built.logits).dims(), &[4, 1, 97]);
        // The attention score matrix is [B, H, 1, ctx].
        assert!(g.nodes().iter().any(|n| n.shape.dims() == [4, 2, 1, 32]));
    }

    #[test]
    fn decode_marks_cache_writeback_outputs() {
        let cfg = tiny();
        let (g, _) = build_decode_step(&cfg, 2, 8).unwrap();
        // hidden K/V per layer + logits: at least 2*layers + 1 outputs.
        assert!(g.outputs().len() > 2 * cfg.layers);
    }

    #[test]
    fn decode_cost_grows_with_context() {
        use gaudi_compiler::GraphCompiler;
        let compiler = GraphCompiler::synapse_like();
        let cfg = tiny();
        let (short, _) = build_decode_step(&cfg, 4, 16).unwrap();
        let (long, _) = build_decode_step(&cfg, 4, 512).unwrap();
        let (_, p_short) = compiler.compile(&short).unwrap();
        let (_, p_long) = compiler.compile(&long).unwrap();
        assert!(p_long.makespan_ns > p_short.makespan_ns);
    }
}
