//! The single Transformer layer benchmarked in §3.3 (Figures 4–7).

use crate::attention::build_attention;
use crate::config::TransformerLayerConfig;
use crate::layers::{ffn, layernorm, linear, merge_heads, split_heads};
use gaudi_graph::{autograd, Graph, GraphError, NodeId};

/// The IDs a built layer exposes.
#[derive(Debug, Clone)]
pub struct BuiltLayer {
    /// The `Input` node (`[B, N, H*D]`), named `x`.
    pub input: NodeId,
    /// The layer output (`[B, N, H*D]`).
    pub output: NodeId,
    /// The scalar training loss, when `training` was requested.
    pub loss: Option<NodeId>,
}

/// Append one post-LN Transformer layer to `g`, reading from `x`.
pub fn transformer_layer(
    g: &mut Graph,
    x: NodeId,
    cfg: &TransformerLayerConfig,
    name: &str,
    mask: Option<NodeId>,
) -> Result<NodeId, GraphError> {
    let d_model = cfg.model_dim();

    // Projections, head split.
    let q = linear(g, x, d_model, d_model, &format!("{name}.q_proj"))?;
    let k = linear(g, x, d_model, d_model, &format!("{name}.k_proj"))?;
    let v = linear(g, x, d_model, d_model, &format!("{name}.v_proj"))?;
    let qh = split_heads(g, q, cfg.heads, cfg.head_dim)?;
    let kh = split_heads(g, k, cfg.heads, cfg.head_dim)?;
    let vh = split_heads(g, v, cfg.heads, cfg.head_dim)?;

    // Attention.
    let ctx = build_attention(g, cfg.attention, qh, kh, vh, mask)?;
    let merged = merge_heads(g, ctx)?;
    let attn_out = linear(g, merged, d_model, d_model, &format!("{name}.out_proj"))?;

    // Residual + LN.
    let res1 = g.add(x, attn_out)?;
    let ln1 = layernorm(g, res1, &format!("{name}.ln1"))?;

    if !cfg.include_ffn {
        return Ok(ln1);
    }

    // FFN + residual + LN.
    let d_ff = d_model * cfg.ffn_mult;
    let f = ffn(
        g,
        ln1,
        d_model,
        d_ff,
        cfg.activation,
        &format!("{name}.ffn"),
    )?;
    let res2 = g.add(ln1, f)?;
    layernorm(g, res2, &format!("{name}.ln2"))
}

/// Build a standalone single-layer benchmark graph per the configuration.
///
/// With `training` set, a mean-square pseudo-loss and the full backward
/// graph are appended (the paper profiles training runs).
pub fn build_transformer_layer(
    cfg: &TransformerLayerConfig,
) -> Result<(Graph, BuiltLayer), GraphError> {
    let mut g = Graph::new();
    g.storage_dtype = gaudi_tensor::DType::BF16;
    let d_model = cfg.model_dim();
    let x = g.input("x", &[cfg.batch, cfg.seq_len, d_model])?;
    let out = transformer_layer(&mut g, x, cfg, "layer0", None)?;
    g.mark_output(out);

    let loss = if cfg.training {
        let sq = g.square(out)?;
        let s1 = g.reduce_mean(sq, false)?;
        let s2 = g.reduce_mean(s1, false)?;
        let loss = g.reduce_mean(s2, false)?;
        let grads = autograd::backward(&mut g, loss)?;
        // Keep parameter gradients live as outputs.
        for p in autograd::parameters(&g) {
            if let Some(&gp) = grads.get(&p) {
                g.mark_output(gp);
            }
        }
        Some(loss)
    } else {
        None
    };

    Ok((
        g,
        BuiltLayer {
            input: x,
            output: out,
            loss,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attention::AttentionKind;
    use gaudi_graph::OpKind;

    #[test]
    fn builds_for_every_attention_kind() {
        for kind in [
            AttentionKind::Softmax,
            AttentionKind::Linear,
            AttentionKind::Favor { features: 16 },
        ] {
            let cfg = TransformerLayerConfig::tiny().with_attention(kind);
            let (g, built) = build_transformer_layer(&cfg).unwrap();
            assert_eq!(g.shape(built.output).dims(), &[2, 64, 16]);
            g.validate().unwrap();
        }
    }

    #[test]
    fn paper_config_builds_with_expected_shapes() {
        let cfg = TransformerLayerConfig::paper_section_3_3();
        let (g, built) = build_transformer_layer(&cfg).unwrap();
        assert_eq!(g.shape(built.input).dims(), &[128, 2048, 384]);
        // The N x N attention matrix exists somewhere in the graph.
        assert!(g
            .nodes()
            .iter()
            .any(|n| n.shape.dims() == [128, 6, 2048, 2048]));
    }

    #[test]
    fn training_appends_backward_ops() {
        let cfg = TransformerLayerConfig::tiny().with_training(true);
        let (g, built) = build_transformer_layer(&cfg).unwrap();
        assert!(built.loss.is_some());
        assert!(g
            .nodes()
            .iter()
            .any(|n| matches!(n.kind, OpKind::SoftmaxGrad)));
        assert!(g.outputs().len() > 1, "parameter grads are outputs");
        let fwd_only = build_transformer_layer(&TransformerLayerConfig::tiny())
            .unwrap()
            .0;
        assert!(
            g.len() > 2 * fwd_only.len(),
            "backward roughly doubles the graph"
        );
    }

    #[test]
    fn ffn_can_be_disabled() {
        let mut cfg = TransformerLayerConfig::tiny();
        cfg.include_ffn = false;
        let (g, _) = build_transformer_layer(&cfg).unwrap();
        assert!(!g.nodes().iter().any(|n| n.name.contains("ffn")));
    }
}
