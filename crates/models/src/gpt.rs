//! `GPT2LMHeadModel` analog: causal decoder stack + LM head (§3.4, Figure 8).

use crate::attention::AttentionKind;
use crate::bert::{build_encoder_lm, BuiltLlm};
use crate::config::LlmConfig;
use gaudi_graph::{Activation, Graph, GraphError};
use gaudi_tensor::Tensor;

/// GPT model configuration (GPT-2 BPE vocabulary by default).
#[derive(Debug, Clone)]
pub struct GptConfig {
    /// Shared LLM dimensions.
    pub base: LlmConfig,
}

impl GptConfig {
    /// The §3.4 end-to-end configuration with GPT-2's vocabulary.
    pub fn paper() -> Self {
        GptConfig {
            base: LlmConfig::paper_section_3_4(50257),
        }
    }

    /// Host-executable miniature.
    pub fn tiny() -> Self {
        GptConfig {
            base: LlmConfig::tiny(97),
        }
    }
}

/// Build the causal language-model training graph. GPT "is both an encoder
/// and a decoder, but during training only the decoder portion is utilized"
/// — i.e. an encoder stack with causal masking, which is what this builds.
pub fn build_gpt_lm(cfg: &GptConfig) -> Result<(Graph, BuiltLlm), GraphError> {
    build_encoder_lm(
        &cfg.base,
        AttentionKind::Softmax,
        Activation::Gelu,
        true,
        "gpt",
    )
}

/// The additive causal mask tensor fed to the `causal_mask` input in
/// full-numerics (`NumericsMode::Full`) runs: 0 on and below the diagonal,
/// a large negative value above it.
pub fn causal_mask_tensor(n: usize) -> Tensor {
    let mut data = vec![0.0f32; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            data[i * n + j] = -1.0e9;
        }
    }
    Tensor::from_vec(&[n, n], data).expect("square mask")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_gpt_builds_with_causal_mask_input() {
        let (g, built) = build_gpt_lm(&GptConfig::tiny()).unwrap();
        g.validate().unwrap();
        assert!(g.nodes().iter().any(|n| n.name == "causal_mask"));
        assert_eq!(g.shape(built.loss).dims(), &[1]);
    }

    #[test]
    fn causal_mask_is_lower_triangular_zero() {
        let m = causal_mask_tensor(4);
        assert_eq!(m.at(&[2, 1]), 0.0);
        assert_eq!(m.at(&[2, 2]), 0.0);
        assert_eq!(m.at(&[1, 3]), -1.0e9);
        assert_eq!(m.at(&[0, 0]), 0.0);
    }

    #[test]
    fn gpt_vocab_differs_from_bert() {
        let g = GptConfig::paper();
        assert_eq!(g.base.vocab, 50257);
        let (graph, built) = build_gpt_lm(&GptConfig::tiny()).unwrap();
        assert_eq!(graph.shape(built.logits).last_dim(), 97);
    }
}
