//! `BertForMaskedLM` analog: encoder stack + language-modelling head, as
//! profiled end-to-end in §3.4 (Figure 9).

use crate::attention::AttentionKind;
use crate::config::{LlmConfig, TransformerLayerConfig};
use crate::layers::{layernorm, linear};
use crate::transformer::transformer_layer;
use gaudi_graph::{autograd, Activation, Graph, GraphError, NodeId};

/// BERT model configuration (wraps the shared LLM configuration with the
/// BERT-base vocabulary).
#[derive(Debug, Clone)]
pub struct BertConfig {
    /// Shared LLM dimensions.
    pub base: LlmConfig,
}

impl BertConfig {
    /// The §3.4 end-to-end configuration with BERT's WordPiece vocabulary.
    pub fn paper() -> Self {
        BertConfig {
            base: LlmConfig::paper_section_3_4(30522),
        }
    }

    /// Host-executable miniature.
    pub fn tiny() -> Self {
        BertConfig {
            base: LlmConfig::tiny(101),
        }
    }
}

/// Node handles of a built language model.
#[derive(Debug, Clone)]
pub struct BuiltLlm {
    /// Token-id input `[B, N]`.
    pub ids: NodeId,
    /// Label input `[B, N]` (MLM targets for BERT, shifted tokens for GPT).
    pub labels: NodeId,
    /// Token logits `[B, N, V]`.
    pub logits: NodeId,
    /// Scalar cross-entropy loss.
    pub loss: NodeId,
}

/// Build the masked-LM training graph.
pub fn build_bert_mlm(cfg: &BertConfig) -> Result<(Graph, BuiltLlm), GraphError> {
    let c = &cfg.base;
    build_encoder_lm(c, AttentionKind::Softmax, Activation::Gelu, false, "bert")
}

/// Shared encoder-LM builder (BERT without mask, GPT adds a causal mask).
pub(crate) fn build_encoder_lm(
    c: &LlmConfig,
    attention: AttentionKind,
    activation: Activation,
    causal: bool,
    name: &str,
) -> Result<(Graph, BuiltLlm), GraphError> {
    let mut g = Graph::new();
    // Hugging Face models run fp32 by default under PyTorch 1.13 (§3.1).
    g.storage_dtype = gaudi_tensor::DType::F32;
    let d = c.model_dim();

    let ids = g.input("ids", &[c.batch, c.seq_len])?;
    let labels = g.input("labels", &[c.batch, c.seq_len])?;

    let tok_table = g.parameter(&format!("{name}.tok_embed"), &[c.vocab, d])?;
    let tok = g.embedding(tok_table, ids)?;
    g.name_last("tok_embed");
    let pos_table = g.parameter(&format!("{name}.pos_embed"), &[c.seq_len, d])?;
    let mut h = g.add(tok, pos_table)?;
    h = layernorm(&mut g, h, &format!("{name}.embed_ln"))?;

    let mask = if causal {
        Some(g.input("causal_mask", &[c.seq_len, c.seq_len])?)
    } else {
        None
    };

    let layer_cfg = TransformerLayerConfig {
        seq_len: c.seq_len,
        batch: c.batch,
        heads: c.heads,
        head_dim: c.head_dim,
        attention,
        activation,
        ffn_mult: c.ffn_mult,
        include_ffn: true,
        training: false,
    };
    for l in 0..c.layers {
        h = transformer_layer(&mut g, h, &layer_cfg, &format!("{name}.layer{l}"), mask)?;
    }

    let logits = linear(&mut g, h, d, c.vocab, &format!("{name}.lm_head"))?;
    let loss = g.cross_entropy(logits, labels)?;
    g.name_last("lm_loss");
    g.mark_output(loss);

    if c.training {
        let grads = autograd::backward(&mut g, loss)?;
        for p in autograd::parameters(&g) {
            if let Some(&gp) = grads.get(&p) {
                g.mark_output(gp);
            }
        }
    }

    Ok((
        g,
        BuiltLlm {
            ids,
            labels,
            logits,
            loss,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaudi_graph::OpKind;

    #[test]
    fn tiny_bert_builds_and_validates() {
        let (g, built) = build_bert_mlm(&BertConfig::tiny()).unwrap();
        g.validate().unwrap();
        assert_eq!(g.shape(built.loss).dims(), &[1]);
        assert_eq!(g.shape(built.logits).dims(), &[2, 32, 101]);
    }

    #[test]
    fn paper_bert_has_two_layers_and_mlm_head() {
        let (g, _) = build_bert_mlm(&BertConfig::paper()).unwrap();
        assert!(g.nodes().iter().any(|n| n.name.contains("layer0")));
        assert!(g.nodes().iter().any(|n| n.name.contains("layer1")));
        assert!(!g.nodes().iter().any(|n| n.name.contains("layer2")));
        assert!(g.nodes().iter().any(|n| n.name.contains("lm_head")));
        // Training graph: embedding gradient present.
        assert!(g
            .nodes()
            .iter()
            .any(|n| matches!(n.kind, OpKind::EmbeddingGrad)));
    }

    #[test]
    fn bert_is_bidirectional_no_mask() {
        let (g, _) = build_bert_mlm(&BertConfig::tiny()).unwrap();
        assert!(!g.nodes().iter().any(|n| n.name == "causal_mask"));
    }
}
