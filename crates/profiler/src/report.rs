//! Formatted text reports: the summary blocks the benchmark binaries print
//! under each regenerated figure.

use crate::analysis::TraceAnalysis;
use crate::trace::Trace;
use gaudi_hw::EngineId;

/// A plain-text table builder with right-aligned numeric columns.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(r[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cell, width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
        }
        out
    }
}

/// Standard per-trace summary: span, engine utilizations, longest MME gap,
/// and compute overlap — the observations the paper makes per figure.
pub fn trace_summary(trace: &Trace) -> String {
    let a = TraceAnalysis::of(trace);
    let mut out = String::new();
    out.push_str(&format!(
        "total time: {:.2} ms over {} events\n",
        trace.span_ms(),
        trace.len()
    ));
    for e in &a.engines {
        let gap = e.gaps.first().map(|g| g.dur_ns / 1e6).unwrap_or(0.0);
        out.push_str(&format!(
            "  {:>5}: busy {:>8.2} ms  util {:>5.1}%  gaps {:>3}  longest gap {:>7.2} ms\n",
            e.engine.label(),
            e.busy_ns / 1e6,
            e.utilization * 100.0,
            e.gaps.len(),
            gap
        ));
    }
    out.push_str(&format!(
        "  MME/TPC overlap: {:.1}%\n",
        a.compute_overlap(trace) * 100.0
    ));
    let softmax_share = a.op_share_of_engine(trace, EngineId::TpcCluster, "softmax");
    if softmax_share > 0.0 {
        out.push_str(&format!(
            "  softmax share of TPC busy time: {:.1}%\n",
            softmax_share * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(&["Size", "T_MME"]);
        t.row(&["128".into(), "7.31".into()]);
        t.row(&["2048".into(), "338.27".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Size"));
        assert!(lines[2].ends_with("7.31"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn table_rejects_bad_arity() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["only one".into()]);
    }

    #[test]
    fn summary_mentions_engines_and_softmax() {
        let mut t = Trace::new();
        t.push(TraceEvent::basic("matmul", "f", EngineId::Mme, 0.0, 5e6));
        t.push(TraceEvent::basic(
            "softmax",
            "f",
            EngineId::TpcCluster,
            5e6,
            15e6,
        ));
        let s = trace_summary(&t);
        assert!(s.contains("MME"));
        assert!(s.contains("TPC"));
        assert!(s.contains("softmax share of TPC busy time: 100.0%"));
        assert!(s.contains("total time: 20.00 ms"));
    }
}
