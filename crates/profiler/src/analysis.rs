//! Timeline analysis: the quantities the paper reads off its trace figures.
//!
//! * per-engine busy/idle fractions and idle-gap lists — "there are many
//!   blank areas in the MME operating area" (Figures 4, 8, 9);
//! * per-operator time breakdowns — "the running time of softmax exceeds 80%
//!   of the total running time" (Figure 4);
//! * engine overlap — "there is no good overlap between MME and TPC" (§3.4).

use crate::trace::Trace;
use gaudi_hw::EngineId;
use std::collections::BTreeMap;

/// An idle interval on an engine lane.
#[derive(Debug, Clone, PartialEq)]
pub struct Gap {
    /// Gap start in nanoseconds.
    pub start_ns: f64,
    /// Gap duration in nanoseconds.
    pub dur_ns: f64,
}

/// Busy/idle statistics for one engine lane.
#[derive(Debug, Clone)]
pub struct EngineStats {
    /// The engine.
    pub engine: EngineId,
    /// Total busy time in nanoseconds.
    pub busy_ns: f64,
    /// Busy time divided by the trace span.
    pub utilization: f64,
    /// Idle gaps between the engine's first and last event, longest first.
    pub gaps: Vec<Gap>,
    /// Number of events on the lane.
    pub events: usize,
}

impl EngineStats {
    /// Total idle time within the trace span.
    pub fn idle_ns(&self, span_ns: f64) -> f64 {
        (span_ns - self.busy_ns).max(0.0)
    }
}

/// Aggregated analysis of a trace.
#[derive(Debug, Clone)]
pub struct TraceAnalysis {
    /// Trace span (makespan) in nanoseconds.
    pub span_ns: f64,
    /// Per-engine statistics.
    pub engines: Vec<EngineStats>,
    /// Total busy nanoseconds per operator name, across engines.
    pub op_breakdown: BTreeMap<String, f64>,
}

impl TraceAnalysis {
    /// Analyze a trace.
    pub fn of(trace: &Trace) -> Self {
        let span_ns = trace.span_ns();
        let mut engines = Vec::new();
        for engine in trace.engines() {
            let evs = trace.engine_events(engine);
            let busy_ns: f64 = evs.iter().map(|e| e.dur_ns).sum();
            let mut gaps = Vec::new();
            for w in evs.windows(2) {
                let gap = w[1].start_ns - w[0].end_ns();
                if gap > 1e-6 {
                    gaps.push(Gap {
                        start_ns: w[0].end_ns(),
                        dur_ns: gap,
                    });
                }
            }
            gaps.sort_by(|a, b| b.dur_ns.total_cmp(&a.dur_ns));
            engines.push(EngineStats {
                engine,
                busy_ns,
                utilization: if span_ns > 0.0 {
                    busy_ns / span_ns
                } else {
                    0.0
                },
                gaps,
                events: evs.len(),
            });
        }
        let mut op_breakdown: BTreeMap<String, f64> = BTreeMap::new();
        for e in trace.events() {
            *op_breakdown.entry(e.name.clone()).or_insert(0.0) += e.dur_ns;
        }
        TraceAnalysis {
            span_ns,
            engines,
            op_breakdown,
        }
    }

    /// Statistics for one engine, if present in the trace.
    pub fn engine(&self, engine: EngineId) -> Option<&EngineStats> {
        self.engines.iter().find(|e| e.engine == engine)
    }

    /// Fraction of an engine's *busy* time spent in operators whose name
    /// contains `needle` (e.g. softmax share of TPC time, Figure 4).
    pub fn op_share_of_engine(&self, trace: &Trace, engine: EngineId, needle: &str) -> f64 {
        let busy: f64 = trace
            .events()
            .iter()
            .filter(|e| e.engine == engine)
            .map(|e| e.dur_ns)
            .sum();
        if busy <= 0.0 {
            return 0.0;
        }
        let matched: f64 = trace
            .events()
            .iter()
            .filter(|e| e.engine == engine && e.name.contains(needle))
            .map(|e| e.dur_ns)
            .sum();
        matched / busy
    }

    /// Time both compute engines (MME and TPC) are simultaneously busy,
    /// normalized by the smaller engine busy time: 1.0 = perfect overlap.
    pub fn compute_overlap(&self, trace: &Trace) -> f64 {
        let mme = intervals(trace, EngineId::Mme);
        let tpc = intervals(trace, EngineId::TpcCluster);
        let both = intersect_len(&mme, &tpc);
        let min_busy = total_len(&mme).min(total_len(&tpc));
        if min_busy <= 0.0 {
            0.0
        } else {
            both / min_busy
        }
    }
}

fn intervals(trace: &Trace, engine: EngineId) -> Vec<(f64, f64)> {
    trace
        .engine_events(engine)
        .iter()
        .map(|e| (e.start_ns, e.end_ns()))
        .collect()
}

fn total_len(iv: &[(f64, f64)]) -> f64 {
    iv.iter().map(|(s, e)| e - s).sum()
}

fn intersect_len(a: &[(f64, f64)], b: &[(f64, f64)]) -> f64 {
    let mut total = 0.0;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if hi > lo {
            total += hi - lo;
        }
        if a[i].1 < b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;

    fn ev(name: &str, engine: EngineId, start: f64, dur: f64) -> TraceEvent {
        TraceEvent::basic(name, "t", engine, start, dur)
    }

    fn sample() -> Trace {
        let mut t = Trace::new();
        t.push(ev("matmul", EngineId::Mme, 0.0, 10.0));
        t.push(ev("matmul", EngineId::Mme, 30.0, 10.0));
        t.push(ev("softmax", EngineId::TpcCluster, 10.0, 20.0));
        t.push(ev("add", EngineId::TpcCluster, 30.0, 5.0));
        t
    }

    #[test]
    fn busy_utilization_and_gaps() {
        let t = sample();
        let a = TraceAnalysis::of(&t);
        assert_eq!(a.span_ns, 40.0);
        let mme = a.engine(EngineId::Mme).unwrap();
        assert_eq!(mme.busy_ns, 20.0);
        assert!((mme.utilization - 0.5).abs() < 1e-9);
        assert_eq!(mme.gaps.len(), 1);
        assert_eq!(mme.gaps[0].dur_ns, 20.0);
        assert_eq!(mme.idle_ns(a.span_ns), 20.0);
    }

    #[test]
    fn op_breakdown_sums_durations() {
        let a = TraceAnalysis::of(&sample());
        assert_eq!(a.op_breakdown["matmul"], 20.0);
        assert_eq!(a.op_breakdown["softmax"], 20.0);
    }

    #[test]
    fn softmax_share_of_tpc() {
        let t = sample();
        let a = TraceAnalysis::of(&t);
        let share = a.op_share_of_engine(&t, EngineId::TpcCluster, "softmax");
        assert!((share - 0.8).abs() < 1e-9);
    }

    #[test]
    fn overlap_zero_when_serialized() {
        let t = sample();
        let a = TraceAnalysis::of(&t);
        // MME busy [0,10] and [30,40]; TPC busy [10,30] and [30,35]:
        // intersection = [30,35] -> 5; min busy = 20 -> 0.25.
        assert!((a.compute_overlap(&t) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn overlap_full_when_parallel() {
        let mut t = Trace::new();
        t.push(ev("m", EngineId::Mme, 0.0, 10.0));
        t.push(ev("s", EngineId::TpcCluster, 0.0, 10.0));
        let a = TraceAnalysis::of(&t);
        assert!((a.compute_overlap(&t) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_is_harmless() {
        let t = Trace::new();
        let a = TraceAnalysis::of(&t);
        assert_eq!(a.span_ns, 0.0);
        assert!(a.engines.is_empty());
        assert_eq!(a.compute_overlap(&t), 0.0);
    }
}
