//! Trace event collection.

use gaudi_hw::{DeviceId, EngineId};
use std::sync::{Arc, Mutex};

/// One hardware trace event: an engine was busy with `name` from `start_ns`
/// for `dur_ns` nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Operation label (e.g. `softmax`, `matmul`).
    pub name: String,
    /// Category tag grouping events (e.g. `op`, `dma`, `stall`).
    pub category: String,
    /// The card the event ran on (`DeviceId(0)` for single-device traces).
    pub device: DeviceId,
    /// The engine lane the event occupies.
    pub engine: EngineId,
    /// Start time in nanoseconds.
    pub start_ns: f64,
    /// Duration in nanoseconds.
    pub dur_ns: f64,
    /// Floating-point operations performed (0 for moves/stalls).
    pub flops: f64,
    /// Global-memory bytes moved.
    pub bytes: f64,
}

impl TraceEvent {
    /// Event without performance metadata (tests, ad-hoc traces).
    pub fn basic(
        name: impl Into<String>,
        category: impl Into<String>,
        engine: EngineId,
        start_ns: f64,
        dur_ns: f64,
    ) -> Self {
        TraceEvent {
            name: name.into(),
            category: category.into(),
            device: DeviceId(0),
            engine,
            start_ns,
            dur_ns,
            flops: 0.0,
            bytes: 0.0,
        }
    }

    /// Re-tag the event with the card it ran on.
    pub fn on_device(mut self, device: DeviceId) -> Self {
        self.device = device;
        self
    }

    /// End time in nanoseconds.
    pub fn end_ns(&self) -> f64 {
        self.start_ns + self.dur_ns
    }

    /// Arithmetic intensity in flops per byte (None when no traffic).
    pub fn intensity(&self) -> Option<f64> {
        if self.bytes > 0.0 {
            Some(self.flops / self.bytes)
        } else {
            None
        }
    }
}

/// A completed trace: a set of events over a set of engine lanes.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Append an event.
    pub fn push(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    /// All events, unsorted.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events on one engine lane, sorted by start time.
    pub fn engine_events(&self, engine: EngineId) -> Vec<&TraceEvent> {
        let mut evs: Vec<&TraceEvent> = self.events.iter().filter(|e| e.engine == engine).collect();
        evs.sort_by(|a, b| a.start_ns.total_cmp(&b.start_ns));
        evs
    }

    /// Engines that appear in the trace, in canonical display order.
    pub fn engines(&self) -> Vec<EngineId> {
        let mut engines: Vec<EngineId> = Vec::new();
        for order in EngineId::trace_order() {
            if self.events.iter().any(|e| e.engine == order) {
                engines.push(order);
            }
        }
        engines
    }

    /// Devices that appear in the trace, sorted.
    pub fn devices(&self) -> Vec<DeviceId> {
        let mut devices: Vec<DeviceId> = self.events.iter().map(|e| e.device).collect();
        devices.sort();
        devices.dedup();
        devices
    }

    /// Events on one (device, engine) lane, sorted by start time.
    pub fn device_engine_events(&self, device: DeviceId, engine: EngineId) -> Vec<&TraceEvent> {
        let mut evs: Vec<&TraceEvent> = self
            .events
            .iter()
            .filter(|e| e.device == device && e.engine == engine)
            .collect();
        evs.sort_by(|a, b| a.start_ns.total_cmp(&b.start_ns));
        evs
    }

    /// Trace end time (makespan) in nanoseconds.
    pub fn span_ns(&self) -> f64 {
        self.events
            .iter()
            .map(TraceEvent::end_ns)
            .fold(0.0, f64::max)
    }

    /// Total wall time in milliseconds.
    pub fn span_ms(&self) -> f64 {
        self.span_ns() / 1.0e6
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Verify no two events on the same (device, engine) lane overlap (an
    /// engine executes one kernel at a time; different cards run
    /// independently). Returns the first offending pair if any.
    pub fn check_no_overlap(&self) -> Option<(TraceEvent, TraceEvent)> {
        for device in self.devices() {
            for engine in self.engines() {
                let evs = self.device_engine_events(device, engine);
                for w in evs.windows(2) {
                    // Allow tiny float slop.
                    if w[1].start_ns < w[0].end_ns() - 1e-6 {
                        return Some((w[0].clone(), w[1].clone()));
                    }
                }
            }
        }
        None
    }
}

/// A thread-safe sink the executor writes events into while simulating.
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    inner: Arc<Mutex<Trace>>,
}

impl TraceSink {
    /// Fresh empty sink.
    pub fn new() -> Self {
        TraceSink::default()
    }

    /// Record an event without performance metadata.
    pub fn record(
        &self,
        name: impl Into<String>,
        category: impl Into<String>,
        engine: EngineId,
        start_ns: f64,
        dur_ns: f64,
    ) {
        self.inner
            .lock()
            .expect("trace sink poisoned")
            .push(TraceEvent::basic(name, category, engine, start_ns, dur_ns));
    }

    /// Record an event with device tag and flop/byte counts (for per-card
    /// timelines and roofline analysis).
    #[allow(clippy::too_many_arguments)]
    pub fn record_full(
        &self,
        name: impl Into<String>,
        category: impl Into<String>,
        device: DeviceId,
        engine: EngineId,
        start_ns: f64,
        dur_ns: f64,
        flops: f64,
        bytes: f64,
    ) {
        let mut ev = TraceEvent::basic(name, category, engine, start_ns, dur_ns).on_device(device);
        ev.flops = flops;
        ev.bytes = bytes;
        self.inner.lock().expect("trace sink poisoned").push(ev);
    }

    /// Extract the completed trace.
    pub fn finish(self) -> Trace {
        Arc::try_unwrap(self.inner)
            .map(|m| m.into_inner().expect("trace sink poisoned"))
            .unwrap_or_else(|arc| arc.lock().expect("trace sink poisoned").clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, engine: EngineId, start: f64, dur: f64) -> TraceEvent {
        TraceEvent::basic(name, "test", engine, start, dur)
    }

    #[test]
    fn span_is_latest_end() {
        let mut t = Trace::new();
        t.push(ev("a", EngineId::Mme, 0.0, 10.0));
        t.push(ev("b", EngineId::TpcCluster, 5.0, 20.0));
        assert_eq!(t.span_ns(), 25.0);
        assert_eq!(t.span_ms(), 25.0 / 1e6);
    }

    #[test]
    fn engine_events_sorted() {
        let mut t = Trace::new();
        t.push(ev("late", EngineId::Mme, 10.0, 1.0));
        t.push(ev("early", EngineId::Mme, 0.0, 1.0));
        let evs = t.engine_events(EngineId::Mme);
        assert_eq!(evs[0].name, "early");
        assert_eq!(evs[1].name, "late");
    }

    #[test]
    fn overlap_detection() {
        let mut t = Trace::new();
        t.push(ev("a", EngineId::Mme, 0.0, 10.0));
        t.push(ev("b", EngineId::Mme, 5.0, 10.0));
        assert!(t.check_no_overlap().is_some());

        let mut ok = Trace::new();
        ok.push(ev("a", EngineId::Mme, 0.0, 10.0));
        ok.push(ev("b", EngineId::Mme, 10.0, 10.0));
        ok.push(ev("c", EngineId::TpcCluster, 5.0, 10.0));
        assert!(ok.check_no_overlap().is_none());
    }

    #[test]
    fn engines_in_display_order() {
        let mut t = Trace::new();
        t.push(ev("b", EngineId::TpcCluster, 0.0, 1.0));
        t.push(ev("a", EngineId::Mme, 0.0, 1.0));
        assert_eq!(t.engines(), vec![EngineId::Mme, EngineId::TpcCluster]);
    }

    #[test]
    fn devices_get_independent_lanes() {
        // Same engine, same instant, different cards: not an overlap.
        let mut t = Trace::new();
        t.push(ev("a", EngineId::Mme, 0.0, 10.0));
        t.push(ev("b", EngineId::Mme, 0.0, 10.0).on_device(DeviceId(1)));
        assert!(t.check_no_overlap().is_none());
        assert_eq!(t.devices(), vec![DeviceId(0), DeviceId(1)]);
        assert_eq!(t.device_engine_events(DeviceId(1), EngineId::Mme).len(), 1);
    }

    #[test]
    fn sink_collects_across_clones() {
        let sink = TraceSink::new();
        let s2 = sink.clone();
        s2.record("x", "c", EngineId::Mme, 0.0, 1.0);
        sink.record("y", "c", EngineId::TpcCluster, 1.0, 1.0);
        drop(s2);
        let t = sink.finish();
        assert_eq!(t.len(), 2);
    }
}
