//! Roofline analysis over a hardware trace.
//!
//! Classifies every compute event by arithmetic intensity against the
//! device's compute/bandwidth roofs, answering the paper's workload-balance
//! question quantitatively: operators below the ridge point are
//! bandwidth-bound on the TPC's global-memory path; operators above it are
//! compute-bound (the MME's GEMMs, the TPC's softmax).

use crate::trace::Trace;
use gaudi_hw::EngineId;
use std::collections::BTreeMap;

/// Whether an operator class is limited by compute or memory bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// Above the ridge point: limited by the engine's arithmetic roof.
    Compute,
    /// Below the ridge point: limited by memory bandwidth.
    Memory,
    /// No byte traffic recorded (cannot classify).
    Unknown,
}

/// Aggregated roofline entry for one operator name.
#[derive(Debug, Clone)]
pub struct RooflinePoint {
    /// Operator label.
    pub name: String,
    /// Engine the operator ran on.
    pub engine: EngineId,
    /// Total time, ns.
    pub total_ns: f64,
    /// Total flops.
    pub flops: f64,
    /// Total bytes.
    pub bytes: f64,
    /// Arithmetic intensity, flops/byte (0 when no traffic).
    pub intensity: f64,
    /// Achieved throughput, GFLOP/s.
    pub achieved_gflops: f64,
    /// Classification against the given roofs.
    pub bound: Bound,
}

/// Roofline model parameters of one engine.
#[derive(Debug, Clone, Copy)]
pub struct Roof {
    /// Peak arithmetic throughput in GFLOP/s.
    pub peak_gflops: f64,
    /// Peak memory bandwidth in GB/s.
    pub peak_gbps: f64,
}

impl Roof {
    /// Intensity at which the two roofs intersect (flops/byte).
    pub fn ridge(&self) -> f64 {
        self.peak_gflops / self.peak_gbps
    }
}

/// Build the per-operator roofline table from a trace.
///
/// `roofs` maps each compute engine to its roof; events on engines without
/// a roof entry are skipped.
pub fn roofline(trace: &Trace, roofs: &[(EngineId, Roof)]) -> Vec<RooflinePoint> {
    #[derive(Default)]
    struct Acc {
        total_ns: f64,
        flops: f64,
        bytes: f64,
    }
    let mut acc: BTreeMap<(String, EngineId), Acc> = BTreeMap::new();
    for e in trace.events() {
        if e.category != "op" {
            continue;
        }
        let Some(_) = roofs.iter().find(|(eng, _)| *eng == e.engine) else {
            continue;
        };
        let a = acc.entry((e.name.clone(), e.engine)).or_default();
        a.total_ns += e.dur_ns;
        a.flops += e.flops;
        a.bytes += e.bytes;
    }
    acc.into_iter()
        .map(|((name, engine), a)| {
            let roof = roofs
                .iter()
                .find(|(eng, _)| *eng == engine)
                .map(|(_, r)| *r)
                .unwrap();
            let intensity = if a.bytes > 0.0 {
                a.flops / a.bytes
            } else {
                0.0
            };
            let bound = if a.bytes <= 0.0 {
                Bound::Unknown
            } else if intensity >= roof.ridge() {
                Bound::Compute
            } else {
                Bound::Memory
            };
            RooflinePoint {
                name,
                engine,
                total_ns: a.total_ns,
                flops: a.flops,
                bytes: a.bytes,
                intensity,
                // flops / ns == GFLOP/s.
                achieved_gflops: if a.total_ns > 0.0 {
                    a.flops / a.total_ns
                } else {
                    0.0
                },
                bound,
            }
        })
        .collect()
}

/// Render the roofline table sorted by total time, largest first.
pub fn render_roofline(points: &mut [RooflinePoint]) -> String {
    points.sort_by(|a, b| b.total_ns.total_cmp(&a.total_ns));
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:>5} {:>10} {:>12} {:>12} {:>8}\n",
        "op", "eng", "time(ms)", "GFLOP/s", "flops/byte", "bound"
    ));
    for p in points.iter() {
        out.push_str(&format!(
            "{:<28} {:>5} {:>10.3} {:>12.1} {:>12.2} {:>8}\n",
            truncate(&p.name, 28),
            p.engine.label(),
            p.total_ns / 1e6,
            p.achieved_gflops,
            p.intensity,
            match p.bound {
                Bound::Compute => "compute",
                Bound::Memory => "memory",
                Bound::Unknown => "-",
            }
        ));
    }
    out
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n.saturating_sub(1)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;

    fn mk(name: &str, engine: EngineId, dur: f64, flops: f64, bytes: f64) -> TraceEvent {
        let mut e = TraceEvent::basic(name, "op", engine, 0.0, dur);
        e.flops = flops;
        e.bytes = bytes;
        e
    }

    fn roofs() -> Vec<(EngineId, Roof)> {
        vec![
            (
                EngineId::Mme,
                Roof {
                    peak_gflops: 14_800.0,
                    peak_gbps: 1000.0,
                },
            ),
            (
                EngineId::TpcCluster,
                Roof {
                    peak_gflops: 2_230.0,
                    peak_gbps: 691.0,
                },
            ),
        ]
    }

    #[test]
    fn classifies_gemm_compute_bound_and_add_memory_bound() {
        let mut t = Trace::new();
        // GEMM: 1e9 flops over 1e7 bytes -> intensity 100 >> ridge 14.8.
        t.push(mk("matmul", EngineId::Mme, 1e5, 1e9, 1e7));
        // add: 1e6 flops over 1.2e7 bytes -> intensity ~0.08 << ridge 3.2.
        t.push(mk("add", EngineId::TpcCluster, 1e4, 1e6, 1.2e7));
        let points = roofline(&t, &roofs());
        let gemm = points.iter().find(|p| p.name == "matmul").unwrap();
        let add = points.iter().find(|p| p.name == "add").unwrap();
        assert_eq!(gemm.bound, Bound::Compute);
        assert_eq!(add.bound, Bound::Memory);
        assert!((gemm.achieved_gflops - 1e4).abs() < 1.0);
    }

    #[test]
    fn aggregates_repeated_ops() {
        let mut t = Trace::new();
        t.push(mk("exp", EngineId::TpcCluster, 1e3, 1e6, 1e6));
        t.push(mk("exp", EngineId::TpcCluster, 1e3, 1e6, 1e6));
        let points = roofline(&t, &roofs());
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].flops, 2e6);
        assert_eq!(points[0].total_ns, 2e3);
    }

    #[test]
    fn skips_dma_and_unroofed_engines() {
        let mut t = Trace::new();
        let mut dma = TraceEvent::basic("dma(x)", "dma", EngineId::Dma(0), 0.0, 1.0);
        dma.bytes = 100.0;
        t.push(dma);
        t.push(mk("host_thing", EngineId::Host, 1.0, 1.0, 1.0));
        assert!(roofline(&t, &roofs()).is_empty());
    }

    #[test]
    fn render_sorts_by_time() {
        let mut t = Trace::new();
        t.push(mk("small", EngineId::Mme, 1e3, 1e6, 1e4));
        t.push(mk("big", EngineId::Mme, 1e6, 1e9, 1e7));
        let mut points = roofline(&t, &roofs());
        let s = render_roofline(&mut points);
        let big_pos = s.find("big").unwrap();
        let small_pos = s.find("small").unwrap();
        assert!(big_pos < small_pos);
    }

    #[test]
    fn ridge_point() {
        let r = Roof {
            peak_gflops: 1000.0,
            peak_gbps: 100.0,
        };
        assert_eq!(r.ridge(), 10.0);
    }
}
