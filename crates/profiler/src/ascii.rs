//! ASCII timeline rendering — terminal renditions of the paper's trace
//! figures (Figures 4–9), one row per engine, `#` for busy, `.` for idle.

use crate::trace::Trace;

/// Render the trace as a fixed-width ASCII timeline.
///
/// `width` is the number of character columns the span is quantized into.
/// A cell is drawn busy (`#`) if the engine is busy for more than half of
/// the cell's time window.
pub fn render_timeline(trace: &Trace, width: usize) -> String {
    let span = trace.span_ns();
    let mut out = String::new();
    if span <= 0.0 || width == 0 {
        return out;
    }
    let cell = span / width as f64;
    let devices = trace.devices();
    let multi = devices.len() > 1;
    for device in devices {
        for engine in trace.engines() {
            let evs = trace.device_engine_events(device, engine);
            if evs.is_empty() {
                continue;
            }
            let mut row = String::with_capacity(width);
            for c in 0..width {
                let lo = c as f64 * cell;
                let hi = lo + cell;
                let busy: f64 = evs
                    .iter()
                    .map(|e| (e.end_ns().min(hi) - e.start_ns.max(lo)).max(0.0))
                    .sum();
                row.push(if busy > cell * 0.5 { '#' } else { '.' });
            }
            let label = if multi {
                format!("{} {}", device, engine.label())
            } else {
                engine.label()
            };
            out.push_str(&format!("{label:>8} |{row}|\n"));
        }
    }
    out.push_str(&format!("{:>8} |{}|\n", "", time_axis(span, width)));
    out
}

fn time_axis(span_ns: f64, width: usize) -> String {
    let total_ms = span_ns / 1e6;
    let label = format!(
        "0 ms {:>width$.2} ms",
        total_ms,
        width = width.saturating_sub(9)
    );
    if label.len() > width {
        format!("{:.2} ms total", total_ms)
    } else {
        label
    }
}

/// Render the trace with one line per event (useful for small graphs).
pub fn render_event_list(trace: &Trace, max_events: usize) -> String {
    let mut evs: Vec<_> = trace.events().to_vec();
    evs.sort_by(|a, b| a.start_ns.total_cmp(&b.start_ns));
    let mut out = String::new();
    for e in evs.iter().take(max_events) {
        out.push_str(&format!(
            "{:>10.3} ms  {:>5}  {:<24} {:>10.3} ms\n",
            e.start_ns / 1e6,
            e.engine.label(),
            e.name,
            e.dur_ns / 1e6
        ));
    }
    if evs.len() > max_events {
        out.push_str(&format!("... ({} more events)\n", evs.len() - max_events));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;
    use gaudi_hw::EngineId;

    fn trace() -> Trace {
        let mut t = Trace::new();
        t.push(TraceEvent::basic("m", "f", EngineId::Mme, 0.0, 50.0));
        t.push(TraceEvent::basic(
            "s",
            "f",
            EngineId::TpcCluster,
            50.0,
            50.0,
        ));
        t
    }

    #[test]
    fn rows_reflect_busy_halves() {
        let s = render_timeline(&trace(), 10);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].trim_start().starts_with("MME"));
        assert!(lines[0].contains("#####....."));
        assert!(lines[1].contains(".....#####"));
    }

    #[test]
    fn multi_device_traces_get_per_card_rows() {
        use gaudi_hw::DeviceId;
        let mut t = trace();
        t.push(TraceEvent::basic("m", "f", EngineId::Mme, 0.0, 100.0).on_device(DeviceId(1)));
        let s = render_timeline(&t, 10);
        assert!(s.contains("D0 MME"));
        assert!(s.contains("D1 MME"));
        // Device 1 never ran the TPC: no row for that lane.
        assert!(!s.contains("D1 TPC"));
    }

    #[test]
    fn empty_trace_renders_empty() {
        assert!(render_timeline(&Trace::new(), 20).is_empty());
        assert!(render_timeline(&trace(), 0).is_empty());
    }

    #[test]
    fn event_list_truncates() {
        let s = render_event_list(&trace(), 1);
        assert!(s.contains("more events"));
        let full = render_event_list(&trace(), 10);
        assert!(!full.contains("more events"));
        assert!(full.contains("MME"));
    }
}
