//! Chrome-trace JSON export.
//!
//! Produces the `chrome://tracing` / Perfetto "trace event" array format so
//! the simulated hardware traces can be inspected with the same kind of
//! timeline viewer the paper's figures were produced with. Serialization is
//! hand-rolled (the approved dependency list has no JSON crate).

use crate::trace::Trace;
use gaudi_hw::EngineId;

/// Render a trace as a Chrome trace-event JSON string.
///
/// Each engine becomes a thread lane (`tid`), each event a complete (`"X"`)
/// event; timestamps are microseconds per the format.
pub fn to_chrome_json(trace: &Trace) -> String {
    let mut out = String::from("[\n");
    let mut first = true;

    // Thread-name metadata so lanes are labelled in the viewer.
    for (tid, engine) in trace.engines().iter().enumerate() {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!(
            "  {{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":{}}}}}",
            tid,
            json_string(&engine.label())
        ));
    }

    let engines = trace.engines();
    for e in trace.events() {
        let tid = engines.iter().position(|&x| x == e.engine).unwrap_or(0);
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!(
            "  {{\"name\":{},\"cat\":{},\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}}}",
            json_string(&e.name),
            json_string(&e.category),
            tid,
            e.start_ns / 1000.0,
            e.dur_ns / 1000.0
        ));
    }
    out.push_str("\n]\n");
    out
}

/// Lane index for an engine (stable across exports of the same trace).
pub fn lane_of(trace: &Trace, engine: EngineId) -> Option<usize> {
    trace.engines().iter().position(|&x| x == engine)
}

/// Minimal JSON string escaping.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;

    fn sample() -> Trace {
        let mut t = Trace::new();
        t.push(TraceEvent::basic(
            "matmul",
            "fwd",
            EngineId::Mme,
            1000.0,
            2000.0,
        ));
        t.push(TraceEvent::basic(
            "softmax \"x\"",
            "fwd",
            EngineId::TpcCluster,
            3000.0,
            500.0,
        ));
        t
    }

    #[test]
    fn emits_one_complete_event_per_trace_event() {
        let json = to_chrome_json(&sample());
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"M\"").count(), 2);
        // Microsecond conversion: 1000 ns -> 1.000 us.
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"dur\":2.000"));
    }

    #[test]
    fn escapes_quotes() {
        let json = to_chrome_json(&sample());
        assert!(json.contains("softmax \\\"x\\\""));
    }

    #[test]
    fn is_well_formed_array() {
        let json = to_chrome_json(&sample());
        let trimmed = json.trim();
        assert!(trimmed.starts_with('['));
        assert!(trimmed.ends_with(']'));
        // Balanced braces (cheap well-formedness check without a parser).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn lane_assignment_is_stable() {
        let t = sample();
        assert_eq!(lane_of(&t, EngineId::Mme), Some(0));
        assert_eq!(lane_of(&t, EngineId::TpcCluster), Some(1));
        assert_eq!(lane_of(&t, EngineId::Host), None);
    }

    #[test]
    fn json_string_escapes_controls() {
        assert_eq!(json_string("a\tb"), "\"a\\tb\"");
        assert_eq!(json_string("x\u{1}"), "\"x\\u0001\"");
    }
}
