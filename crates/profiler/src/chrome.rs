//! Chrome-trace JSON export.
//!
//! Produces the `chrome://tracing` / Perfetto "trace event" array format so
//! the simulated hardware traces can be inspected with the same kind of
//! timeline viewer the paper's figures were produced with. Serialization is
//! hand-rolled (the approved dependency list has no JSON crate).

use crate::trace::Trace;
use gaudi_hw::EngineId;

/// Render a trace as a Chrome trace-event JSON string.
///
/// Each device becomes a process (`pid = device + 1`, named `Gaudi-<n>`),
/// each engine a thread lane (`tid`) within it, each event a complete
/// (`"X"`) event; timestamps are microseconds per the format. Multi-card
/// traces thus show one collapsible lane group per card in the viewer.
pub fn to_chrome_json(trace: &Trace) -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    let mut push = |line: String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(&line);
    };

    // Process/thread-name metadata so lanes are labelled in the viewer.
    let engines = trace.engines();
    for device in trace.devices() {
        let pid = device.index() + 1;
        push(
            format!(
                "  {{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"args\":{{\"name\":{}}}}}",
                pid,
                json_string(&format!("Gaudi-{}", device.index()))
            ),
            &mut first,
        );
        for (tid, engine) in engines.iter().enumerate() {
            if trace
                .events()
                .iter()
                .any(|e| e.device == device && e.engine == *engine)
            {
                push(
                    format!(
                        "  {{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\"args\":{{\"name\":{}}}}}",
                        pid,
                        tid,
                        json_string(&engine.label())
                    ),
                    &mut first,
                );
            }
        }
    }

    for e in trace.events() {
        let tid = engines.iter().position(|&x| x == e.engine).unwrap_or(0);
        push(
            format!(
                "  {{\"name\":{},\"cat\":{},\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}}}",
                json_string(&e.name),
                json_string(&e.category),
                e.device.index() + 1,
                tid,
                e.start_ns / 1000.0,
                e.dur_ns / 1000.0
            ),
            &mut first,
        );
    }
    out.push_str("\n]\n");
    out
}

/// Lane index for an engine (stable across exports of the same trace).
pub fn lane_of(trace: &Trace, engine: EngineId) -> Option<usize> {
    trace.engines().iter().position(|&x| x == engine)
}

/// Minimal JSON string escaping.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;

    fn sample() -> Trace {
        let mut t = Trace::new();
        t.push(TraceEvent::basic(
            "matmul",
            "fwd",
            EngineId::Mme,
            1000.0,
            2000.0,
        ));
        t.push(TraceEvent::basic(
            "softmax \"x\"",
            "fwd",
            EngineId::TpcCluster,
            3000.0,
            500.0,
        ));
        t
    }

    #[test]
    fn emits_one_complete_event_per_trace_event() {
        let json = to_chrome_json(&sample());
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        // One process_name + two thread_name metadata records.
        assert_eq!(json.matches("\"ph\":\"M\"").count(), 3);
        assert!(json.contains("Gaudi-0"));
        // Microsecond conversion: 1000 ns -> 1.000 us.
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"dur\":2.000"));
    }

    #[test]
    fn each_device_becomes_a_process() {
        use gaudi_hw::DeviceId;
        let mut t = sample();
        t.push(
            TraceEvent::basic("matmul", "fwd", EngineId::Mme, 1000.0, 2000.0)
                .on_device(DeviceId(1)),
        );
        let json = to_chrome_json(&t);
        assert!(json.contains("\"name\":\"Gaudi-0\""));
        assert!(json.contains("\"name\":\"Gaudi-1\""));
        assert!(json.contains("\"pid\":1"));
        assert!(json.contains("\"pid\":2"));
        // Device 1 only ran the MME: no TPC thread lane in its process.
        let d1_threads = json
            .lines()
            .filter(|l| l.contains("thread_name") && l.contains("\"pid\":2"))
            .count();
        assert_eq!(d1_threads, 1);
    }

    #[test]
    fn escapes_quotes() {
        let json = to_chrome_json(&sample());
        assert!(json.contains("softmax \\\"x\\\""));
    }

    #[test]
    fn is_well_formed_array() {
        let json = to_chrome_json(&sample());
        let trimmed = json.trim();
        assert!(trimmed.starts_with('['));
        assert!(trimmed.ends_with(']'));
        // Balanced braces (cheap well-formedness check without a parser).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn lane_assignment_is_stable() {
        let t = sample();
        assert_eq!(lane_of(&t, EngineId::Mme), Some(0));
        assert_eq!(lane_of(&t, EngineId::TpcCluster), Some(1));
        assert_eq!(lane_of(&t, EngineId::Host), None);
    }

    #[test]
    fn json_string_escapes_controls() {
        assert_eq!(json_string("a\tb"), "\"a\\tb\"");
        assert_eq!(json_string("x\u{1}"), "\"x\\u0001\"");
    }
}
