//! # gaudi-profiler
//!
//! The stand-in for the SynapseAI profiler: collects per-engine hardware
//! trace events from the simulator, analyzes them (busy/idle fractions, idle
//! gaps, per-operator breakdowns — everything the paper reads off Figures
//! 4–9), renders ASCII timelines, and exports Chrome-trace JSON that can be
//! opened in `chrome://tracing` or Perfetto.

pub mod analysis;
pub mod ascii;
pub mod chrome;
pub mod report;
pub mod roofline;
pub mod trace;

pub use analysis::{EngineStats, TraceAnalysis};
pub use roofline::{roofline, Bound, Roof, RooflinePoint};
pub use trace::{Trace, TraceEvent};
