//! Criterion bench for Figures 4–7: time to build + compile + schedule the
//! paper-configuration layer for each attention mechanism, and the full
//! numeric forward of a miniature layer.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gaudi_compiler::CompilerOptions;
use gaudi_hw::GaudiConfig;
use gaudi_models::attention::AttentionKind;
use gaudi_models::config::TransformerLayerConfig;
use gaudi_models::transformer::build_transformer_layer;
use gaudi_runtime::{Feeds, NumericsMode, Runtime};
use gaudi_tensor::{SeededRng, Tensor};

fn paper_layer_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper_layer_simulation");
    for (name, kind) in [
        ("softmax", AttentionKind::Softmax),
        ("linear", AttentionKind::Linear),
        ("performer", AttentionKind::Favor { features: 256 }),
    ] {
        let cfg = TransformerLayerConfig::paper_section_3_3().with_attention(kind);
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            let rt = Runtime::new(GaudiConfig::hls1(), CompilerOptions::default());
            b.iter(|| {
                let (graph, _) = build_transformer_layer(black_box(cfg)).unwrap();
                rt.run(&graph, &Feeds::auto(0), NumericsMode::ShapeOnly)
                    .unwrap()
                    .makespan_ms
            });
        });
    }
    group.finish();
}

fn tiny_layer_full_numerics(c: &mut Criterion) {
    let mut group = c.benchmark_group("tiny_layer_full_numerics");
    for (name, kind) in [
        ("softmax", AttentionKind::Softmax),
        ("linear", AttentionKind::Linear),
        ("performer", AttentionKind::Favor { features: 16 }),
    ] {
        let cfg = TransformerLayerConfig::tiny().with_attention(kind);
        let (graph, built) = build_transformer_layer(&cfg).unwrap();
        let mut rng = SeededRng::new(2);
        let x = Tensor::randn(graph.shape(built.input).dims(), 1.0, &mut rng).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &graph, |b, graph| {
            let rt = Runtime::hls1();
            b.iter(|| {
                let feeds = Feeds::auto(3).with_input("x", x.clone());
                rt.run(black_box(graph), &feeds, NumericsMode::Full)
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, paper_layer_simulation, tiny_layer_full_numerics);
criterion_main!(benches);
