//! Criterion bench for the graph compiler: compile + schedule throughput on
//! the end-to-end LLM training graphs (hundreds of nodes), per policy.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gaudi_compiler::{CompilerOptions, GraphCompiler, SchedulerKind};
use gaudi_hw::GaudiConfig;
use gaudi_models::bert::{build_bert_mlm, BertConfig};

fn compile_bert(c: &mut Criterion) {
    let (graph, _) = build_bert_mlm(&BertConfig::paper()).unwrap();
    let mut group = c.benchmark_group("compile_bert_training_graph");
    for (name, kind) in [
        ("inorder", SchedulerKind::InOrder),
        ("overlap", SchedulerKind::Overlap),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &graph, |b, g| {
            let compiler = GraphCompiler::new(
                GaudiConfig::hls1(),
                CompilerOptions::builder().scheduler(kind).build(),
            );
            b.iter(|| compiler.compile(black_box(g)).unwrap().1.makespan_ns);
        });
    }
    group.finish();
}

fn graph_construction(c: &mut Criterion) {
    c.bench_function("build_bert_training_graph", |b| {
        b.iter(|| {
            build_bert_mlm(black_box(&BertConfig::paper()))
                .unwrap()
                .0
                .len()
        });
    });
}

criterion_group!(benches, compile_bert, graph_construction);
criterion_main!(benches);
