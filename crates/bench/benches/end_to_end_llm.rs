//! Criterion bench for Figures 8–9: the complete end-to-end experiment
//! pipeline (graph build → compile → schedule → trace analysis) and the
//! synthetic-BookCorpus batch generation feeding it.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gaudi_bench::{llm_experiment, LlmKind};
use gaudi_workloads::{clm_batch, mlm_batch, SyntheticBookCorpus};

fn end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("llm_experiment");
    group.sample_size(10);
    group.bench_function("fig8_gpt", |b| {
        b.iter(|| llm_experiment(black_box(LlmKind::Gpt)).unwrap().total_ms)
    });
    group.bench_function("fig9_bert", |b| {
        b.iter(|| llm_experiment(black_box(LlmKind::Bert)).unwrap().total_ms)
    });
    group.finish();
}

fn workload_generation(c: &mut Criterion) {
    c.bench_function("mlm_batch_8x2048", |b| {
        let mut corpus = SyntheticBookCorpus::new(30522, 1);
        b.iter(|| mlm_batch(black_box(&mut corpus), 8, 2048));
    });
    c.bench_function("clm_batch_8x2048", |b| {
        let mut corpus = SyntheticBookCorpus::new(50257, 1);
        b.iter(|| clm_batch(black_box(&mut corpus), 8, 2048));
    });
}

criterion_group!(benches, end_to_end, workload_generation);
criterion_main!(benches);
