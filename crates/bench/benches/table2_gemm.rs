//! Criterion bench backing Table 2: measures the real Rust hot paths under
//! the experiment — the host tensor matmul kernel (used by full-numerics
//! runs) and the analytic MME/TPC timing queries (used by every simulation).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gaudi_hw::config::{MmeConfig, TpcConfig};
use gaudi_hw::{MmeModel, TpcCostModel};
use gaudi_tensor::{ops, SeededRng, Tensor};

fn host_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("host_matmul");
    let mut rng = SeededRng::new(1);
    for &size in &[64usize, 128, 256] {
        let a = Tensor::randn(&[8, size, size], 1.0, &mut rng).unwrap();
        let b = Tensor::randn(&[8, size, size], 1.0, &mut rng).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |bench, _| {
            bench.iter(|| ops::bmm(black_box(&a), black_box(&b)).unwrap());
        });
    }
    group.finish();
}

fn cost_model_queries(c: &mut Criterion) {
    let mme = MmeModel::new(MmeConfig::default());
    let tpc = TpcCostModel::new(TpcConfig::default());
    c.bench_function("mme_gemm_time_query", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &s in &[128usize, 256, 512, 1024, 2048] {
                acc += mme.gemm_time_ns(black_box(64), s, s, s);
            }
            acc
        })
    });
    c.bench_function("tpc_matmul_time_query", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &s in &[128usize, 256, 512, 1024, 2048] {
                let flops = 2.0 * 64.0 * (s as f64).powi(3);
                acc += tpc.matmul_time_ns(black_box(flops));
            }
            acc
        })
    });
}

fn table2_regeneration(c: &mut Criterion) {
    c.bench_function("table2_full_regeneration", |b| b.iter(gaudi_bench::table2));
}

criterion_group!(
    benches,
    host_matmul,
    cost_model_queries,
    table2_regeneration
);
criterion_main!(benches);
