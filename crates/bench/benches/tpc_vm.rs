//! Criterion bench for the TPC virtual machine: kernel execution throughput
//! of the cycle-counting interpreter (the fidelity the simulator can buy).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gaudi_hw::config::TpcConfig;
use gaudi_tensor::{SeededRng, Tensor};
use gaudi_tpc::kernels;
use gaudi_tpc::vm::static_cycles;

fn kernel_execution(c: &mut Criterion) {
    let cfg = TpcConfig::default();
    let mut rng = SeededRng::new(4);

    let mut group = c.benchmark_group("tpc_vm_softmax_rows");
    for &rows in &[16usize, 64] {
        let x = Tensor::randn(&[rows, 256], 1.0, &mut rng).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(rows), &x, |b, x| {
            b.iter(|| kernels::softmax_rows(black_box(x), &cfg).unwrap());
        });
    }
    group.finish();

    let a = Tensor::randn(&[2, 32, 32], 0.5, &mut rng).unwrap();
    let bm = Tensor::randn(&[2, 32, 64], 0.5, &mut rng).unwrap();
    c.bench_function("tpc_vm_bmm_2x32x32x64", |b| {
        b.iter(|| kernels::bmm_tpc(black_box(&a), black_box(&bm), &cfg).unwrap());
    });

    let big = Tensor::randn(&[1 << 16], 1.0, &mut rng).unwrap();
    c.bench_function("tpc_vm_relu_64k", |b| {
        b.iter(|| kernels::krelu(black_box(&big), &cfg).unwrap());
    });
}

fn cycle_counting(c: &mut Criterion) {
    let cfg = TpcConfig::default();
    let x = Tensor::ones(&[64, 512]).unwrap();
    // static_cycles runs once per launch; measure it standalone on the
    // softmax program by extracting through a launch.
    c.bench_function("vliw_packing_softmax_program", |b| {
        let r = kernels::softmax_rows(&x, &cfg).unwrap();
        let _ = r;
        // Re-pack a representative straight-line program.
        let prog: Vec<gaudi_tpc::Instr> = (0..64)
            .map(|i| gaudi_tpc::Instr::AddVImm {
                dst: (i % 16) as u8,
                a: ((i + 1) % 16) as u8,
                imm: 1.0,
            })
            .collect();
        b.iter(|| static_cycles(black_box(&prog), 4.0, 20.0));
    });
}

criterion_group!(benches, kernel_execution, cycle_counting);
criterion_main!(benches);
