//! Experiment library: one module per paper artifact group.

pub mod ablations;
pub mod layer_figs;
pub mod llm_figs;
pub mod table2;
