//! Figures 8 and 9: end-to-end GPT and BERT training-step traces at the
//! §3.4 configuration (sequence 2048, batch 8, 2 layers, 8 heads, 64 hidden
//! per head, BookCorpus input).

use gaudi_compiler::CompilerOptions;
use gaudi_hw::{EngineId, GaudiConfig};
use gaudi_models::bert::{build_bert_mlm, BertConfig};
use gaudi_models::gpt::{build_gpt_lm, GptConfig};
use gaudi_profiler::{Trace, TraceAnalysis};
use gaudi_runtime::{Feeds, NumericsMode, Runtime};
use gaudi_tensor::{Result as TensorResult, TensorError};

/// Which end-to-end model to profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LlmKind {
    /// `GPT2LMHeadModel` analog (Figure 8).
    Gpt,
    /// `BertForMaskedLM` analog (Figure 9).
    Bert,
}

/// Metrics of an end-to-end LLM training-step trace.
#[derive(Debug, Clone)]
pub struct LlmFigure {
    /// Experiment id (`fig8-gpt` / `fig9-bert`).
    pub name: String,
    /// Model kind.
    pub kind: LlmKind,
    /// Total simulated step time, ms.
    pub total_ms: f64,
    /// MME busy fraction.
    pub mme_util: f64,
    /// TPC busy fraction.
    pub tpc_util: f64,
    /// Number of idle gaps on the MME lane.
    pub mme_gaps: usize,
    /// MME/TPC overlap coefficient.
    pub overlap: f64,
    /// Estimated peak HBM, bytes.
    pub peak_hbm_bytes: u64,
    /// Whether the run fits the 32 GB device.
    pub fits_hbm: bool,
    /// The trace.
    pub trace: Trace,
}

/// Profile one end-to-end model (paper configuration, training step).
pub fn llm_experiment(kind: LlmKind) -> TensorResult<LlmFigure> {
    let (graph, name) = match kind {
        LlmKind::Gpt => (
            build_gpt_lm(&GptConfig::paper())
                .map_err(|_| TensorError::EmptyTensor)?
                .0,
            "fig8-gpt",
        ),
        LlmKind::Bert => (
            build_bert_mlm(&BertConfig::paper())
                .map_err(|_| TensorError::EmptyTensor)?
                .0,
            "fig9-bert",
        ),
    };
    // Figures 8–9 reproduce observed SynapseAI traces, which predate fused
    // attention kernels — pin the unfused pipeline.
    let rt = Runtime::new(
        GaudiConfig::hls1(),
        CompilerOptions::builder().fuse_attention(false).build(),
    );
    let report = rt
        .run(&graph, &Feeds::auto(0), NumericsMode::ShapeOnly)
        .map_err(|_| TensorError::EmptyTensor)?;
    let analysis = TraceAnalysis::of(&report.trace);
    let mme = analysis.engine(EngineId::Mme);
    let tpc = analysis.engine(EngineId::TpcCluster);
    let hbm = GaudiConfig::hls1().memory.hbm_capacity_bytes;
    Ok(LlmFigure {
        name: name.to_string(),
        kind,
        total_ms: report.makespan_ms,
        mme_util: mme.map(|e| e.utilization).unwrap_or(0.0),
        tpc_util: tpc.map(|e| e.utilization).unwrap_or(0.0),
        mme_gaps: mme.map(|e| e.gaps.len()).unwrap_or(0),
        overlap: analysis.compute_overlap(&report.trace),
        peak_hbm_bytes: report.peak_hbm_bytes,
        fits_hbm: report.peak_hbm_bytes <= hbm,
        trace: report.trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_gpt_shows_idle_mme_busy_tpc() {
        let fig = llm_experiment(LlmKind::Gpt).unwrap();
        // "There are many blank areas in the MME operating area ... however,
        // TPC is obviously busy."
        assert!(fig.mme_util < 0.75, "MME util {}", fig.mme_util);
        assert!(fig.tpc_util > 0.3, "TPC util {}", fig.tpc_util);
        assert!(fig.mme_gaps > 10);
        // "As a result, either MME or TPC is idle" — no good overlap.
        assert!(fig.overlap < 0.3, "overlap {}", fig.overlap);
        assert!(
            fig.mme_util + fig.tpc_util < 1.05,
            "engines mostly mutually exclusive"
        );
    }

    #[test]
    fn fig9_bert_shows_the_same_observations() {
        let fig = llm_experiment(LlmKind::Bert).unwrap();
        assert!(fig.mme_util < 0.75);
        assert!(fig.tpc_util > 0.3);
        assert!(fig.overlap < 0.3);
    }

    #[test]
    fn paper_batch_8_fits_the_32gb_device() {
        let fig = llm_experiment(LlmKind::Bert).unwrap();
        assert!(fig.fits_hbm, "peak {} GiB", fig.peak_hbm_bytes >> 30);
        // And it is no small fraction of the device: the paper had to shrink
        // the batch to 8 because memory is tight.
        assert!(
            fig.peak_hbm_bytes > 4 << 30,
            "peak {} GiB",
            fig.peak_hbm_bytes >> 30
        );
    }

    #[test]
    fn traces_are_wellformed() {
        let fig = llm_experiment(LlmKind::Gpt).unwrap();
        assert!(fig.trace.check_no_overlap().is_none());
        assert!(
            fig.trace.len() > 100,
            "a 2-layer training step has many ops"
        );
    }
}
