//! Table 2: MME vs TPC execution time for batched matrix multiplication.
//!
//! The paper runs `torch.bmm` (batch 64) on the MME and a custom TPC kernel
//! for square sizes 128..2048, repeating each measurement a fixed number of
//! iterations. Iteration counts are chosen to match the total FLOP counts
//! implied by the paper's reported times and TFLOPS (64/64/64/16/4 — the
//! paper scaled iterations down at the largest sizes).

use gaudi_hw::config::{MmeConfig, TpcConfig};
use gaudi_hw::{tflops, MmeModel, TpcCostModel};

/// One reproduced row of Table 2 plus the paper's reference values.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Square matrix size.
    pub size: usize,
    /// bmm batch (64, as in the paper).
    pub batch: usize,
    /// Iterations measured.
    pub iterations: usize,
    /// Measured MME time, ms.
    pub t_mme_ms: f64,
    /// Measured MME throughput, TFLOPS.
    pub f_mme: f64,
    /// Measured TPC time, ms.
    pub t_tpc_ms: f64,
    /// Measured TPC throughput, TFLOPS.
    pub f_tpc: f64,
    /// Speedup `T_TPC / T_MME`.
    pub speedup: f64,
    /// Paper values `(T_MME, F_MME, T_TPC, F_TPC, speedup)`.
    pub paper: (f64, f64, f64, f64, f64),
}

/// Paper reference rows (Table 2).
pub const PAPER_TABLE2: [(usize, f64, f64, f64, f64, f64); 5] = [
    (128, 7.31, 2.35, 9.21, 1.86, 1.3),
    (256, 11.78, 11.67, 67.04, 2.05, 5.7),
    (512, 76.51, 14.37, 516.60, 2.13, 6.7),
    (1024, 151.03, 14.56, 1006.30, 2.18, 6.7),
    (2048, 338.27, 14.59, 2247.80, 2.19, 6.6),
];

/// Iterations per size (reconstructed from the paper's time/TFLOPS pairs).
pub const ITERATIONS: [usize; 5] = [64, 64, 64, 16, 4];

/// Regenerate Table 2 on the calibrated hardware model.
pub fn table2() -> Vec<Table2Row> {
    let mme = MmeModel::new(MmeConfig::default());
    let tpc = TpcCostModel::new(TpcConfig::default());
    let batch = 64;

    PAPER_TABLE2
        .iter()
        .zip(ITERATIONS.iter())
        .map(
            |(&(size, pt_mme, pf_mme, pt_tpc, pf_tpc, pspeed), &iterations)| {
                let flops_per_iter = MmeModel::gemm_flops(batch, size, size, size);
                let total_flops = flops_per_iter * iterations as f64;

                let t_mme_ns = mme.gemm_time_ns(batch, size, size, size) * iterations as f64;
                let t_tpc_ns = tpc.matmul_time_ns(flops_per_iter) * iterations as f64;

                Table2Row {
                    size,
                    batch,
                    iterations,
                    t_mme_ms: t_mme_ns / 1e6,
                    f_mme: tflops(total_flops, t_mme_ns),
                    t_tpc_ms: t_tpc_ns / 1e6,
                    f_tpc: tflops(total_flops, t_tpc_ns),
                    speedup: t_tpc_ns / t_mme_ns,
                    paper: (pt_mme, pf_mme, pt_tpc, pf_tpc, pspeed),
                }
            },
        )
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_rows_in_size_order() {
        let rows = table2();
        assert_eq!(rows.len(), 5);
        assert!(rows.windows(2).all(|w| w[0].size < w[1].size));
    }

    #[test]
    fn mme_throughput_ramp_matches_paper_shape() {
        let rows = table2();
        // Monotone ramp saturating near the plateau.
        assert!(rows.windows(2).all(|w| w[0].f_mme <= w[1].f_mme + 0.3));
        for r in &rows {
            let (_, pf_mme, ..) = r.paper;
            let rel = (r.f_mme - pf_mme).abs() / pf_mme;
            assert!(
                rel < 0.25,
                "size {}: {} vs paper {}",
                r.size,
                r.f_mme,
                pf_mme
            );
        }
    }

    #[test]
    fn tpc_stays_flat_near_2_tflops() {
        let rows = table2();
        for r in &rows {
            assert!(
                (1.5..2.5).contains(&r.f_tpc),
                "size {}: {}",
                r.size,
                r.f_tpc
            );
        }
    }

    #[test]
    fn speedup_ramps_from_about_1_to_about_7() {
        let rows = table2();
        assert!(rows[0].speedup < 2.0, "{}", rows[0].speedup);
        for r in &rows[1..] {
            assert!(
                (4.5..8.0).contains(&r.speedup),
                "size {}: speedup {} out of the paper's band",
                r.size,
                r.speedup
            );
        }
    }

    #[test]
    fn absolute_times_are_in_the_paper_ballpark() {
        // Not required by the brief, but the calibration lands close: check
        // within a factor of 2 to catch regressions of the cost model.
        for r in table2() {
            let (pt_mme, _, pt_tpc, ..) = r.paper;
            assert!(
                r.t_mme_ms / pt_mme < 2.0 && r.t_mme_ms / pt_mme > 0.5,
                "{:?}",
                r
            );
            assert!(
                r.t_tpc_ms / pt_tpc < 2.0 && r.t_tpc_ms / pt_tpc > 0.5,
                "{:?}",
                r
            );
        }
    }
}
