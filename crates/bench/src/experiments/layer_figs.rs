//! Figures 4–7: single Transformer-layer traces at the §3.3 configuration
//! (sequence 2048, batch 128, 6 heads, 64 hidden per head).

use gaudi_compiler::CompilerOptions;
use gaudi_hw::{EngineId, GaudiConfig};
use gaudi_models::attention::AttentionKind;
use gaudi_models::config::TransformerLayerConfig;
use gaudi_models::transformer::build_transformer_layer;
use gaudi_profiler::{Trace, TraceAnalysis};
use gaudi_runtime::{Feeds, NumericsMode, Runtime};
use gaudi_tensor::{Result as TensorResult, TensorError};

/// Number of FAVOR random features used for the Performer runs (m ≈ D ln D).
pub const FAVOR_FEATURES: usize = 256;

/// Key metrics read off a layer trace — the observations the paper makes
/// under each figure.
#[derive(Debug, Clone)]
pub struct LayerFigure {
    /// Human-readable experiment id (e.g. `fig4-softmax`).
    pub name: String,
    /// The configuration used.
    pub attention: AttentionKind,
    /// Total simulated time, ms.
    pub total_ms: f64,
    /// MME busy fraction of the span.
    pub mme_util: f64,
    /// TPC busy fraction of the span.
    pub tpc_util: f64,
    /// Longest idle gap on the MME lane, ms.
    pub longest_mme_gap_ms: f64,
    /// Softmax share of TPC busy time (Figure 4's ">80%").
    pub softmax_share_of_tpc: f64,
    /// MME/TPC overlap coefficient (1 = perfect overlap).
    pub overlap: f64,
    /// The full trace for rendering/export.
    pub trace: Trace,
}

/// Run one single-layer experiment at the paper configuration.
pub fn layer_experiment(
    name: &str,
    cfg: &TransformerLayerConfig,
    opts: CompilerOptions,
) -> TensorResult<LayerFigure> {
    let (graph, _built) = build_transformer_layer(cfg).map_err(|_| TensorError::EmptyTensor)?;
    let rt = Runtime::new(GaudiConfig::hls1(), opts);
    let report = rt
        .run(&graph, &Feeds::auto(0), NumericsMode::ShapeOnly)
        .map_err(|_| TensorError::EmptyTensor)?;
    let analysis = TraceAnalysis::of(&report.trace);
    let mme = analysis.engine(EngineId::Mme);
    let tpc = analysis.engine(EngineId::TpcCluster);
    Ok(LayerFigure {
        name: name.to_string(),
        attention: cfg.attention,
        total_ms: report.makespan_ms,
        mme_util: mme.map(|e| e.utilization).unwrap_or(0.0),
        tpc_util: tpc.map(|e| e.utilization).unwrap_or(0.0),
        longest_mme_gap_ms: mme
            .and_then(|e| e.gaps.first())
            .map(|gp| gp.dur_ns / 1e6)
            .unwrap_or(0.0),
        softmax_share_of_tpc: analysis.op_share_of_engine(
            &report.trace,
            EngineId::TpcCluster,
            "softmax",
        ),
        overlap: analysis.compute_overlap(&report.trace),
        trace: report.trace,
    })
}

/// Compiler options for the figure reproductions: the paper traces were
/// taken on SynapseAI *without* fused attention kernels, so the figures pin
/// the unfused pipeline explicitly. The fused-vs-unfused ablation lives in
/// the `kernel_sweep` bin.
pub fn paper_options() -> CompilerOptions {
    CompilerOptions::builder().fuse_attention(false).build()
}

/// Figure 4: softmax attention.
pub fn fig4_softmax() -> TensorResult<LayerFigure> {
    let cfg = TransformerLayerConfig::paper_section_3_3();
    layer_experiment("fig4-softmax", &cfg, paper_options())
}

/// Figure 5: Linear-Transformer attention.
pub fn fig5_linear() -> TensorResult<LayerFigure> {
    let cfg = TransformerLayerConfig::paper_section_3_3().with_attention(AttentionKind::Linear);
    layer_experiment("fig5-linear", &cfg, paper_options())
}

/// Figure 6: Performer (FAVOR) attention.
pub fn fig6_performer() -> TensorResult<LayerFigure> {
    let cfg = TransformerLayerConfig::paper_section_3_3().with_attention(AttentionKind::Favor {
        features: FAVOR_FEATURES,
    });
    layer_experiment("fig6-performer", &cfg, paper_options())
}

/// Figure 7: the activation sweep over a linear-attention layer.
///
/// Returns `(activation name, figure)` pairs for ReLU, LeakyReLU, GELU, GLU.
pub fn activation_sweep() -> TensorResult<Vec<(String, LayerFigure)>> {
    use gaudi_graph::Activation::*;
    let mut out = Vec::new();
    for act in [Relu, LeakyRelu(0.01), Gelu, Glu] {
        let cfg = TransformerLayerConfig::paper_section_3_3()
            .with_attention(AttentionKind::Linear)
            .with_activation(act);
        let fig = layer_experiment(&format!("fig7-{}", act.name()), &cfg, paper_options())?;
        out.push((act.name().to_string(), fig));
    }
    Ok(out)
}

/// Paper reference times for the §3.3 figures, ms.
pub mod paper {
    /// Figure 5: linear Transformer total run time.
    pub const LINEAR_MS: f64 = 30.0;
    /// Figure 6: Performer total run time.
    pub const PERFORMER_MS: f64 = 80.0;
    /// Figure 5 text: linear vs softmax speedup.
    pub const LINEAR_SPEEDUP: f64 = 6.0;
    /// Figure 6 text: Performer vs softmax speedup.
    pub const PERFORMER_SPEEDUP: f64 = 2.0;
    /// Figure 7: (ReLU, LeakyReLU, GELU, GLU) totals.
    pub const ACTIVATIONS_MS: [f64; 4] = [30.1, 30.2, 29.7, 32.6];
    /// Figure 4 text: softmax exceeds this fraction of TPC time.
    pub const SOFTMAX_TPC_SHARE: f64 = 0.80;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_softmax_dominates_tpc_time() {
        let fig = fig4_softmax().unwrap();
        assert!(
            fig.softmax_share_of_tpc > paper::SOFTMAX_TPC_SHARE,
            "softmax share {}",
            fig.softmax_share_of_tpc
        );
        // "There are many blank areas in the MME operating area."
        assert!(fig.mme_util < 0.6, "MME util {}", fig.mme_util);
        assert!(fig.longest_mme_gap_ms > 1.0);
    }

    #[test]
    fn fig5_linear_is_about_6x_faster_with_busy_mme() {
        let softmax = fig4_softmax().unwrap();
        let linear = fig5_linear().unwrap();
        let speedup = softmax.total_ms / linear.total_ms;
        assert!(
            (4.0..9.0).contains(&speedup),
            "linear speedup {speedup} (paper: ~{})",
            paper::LINEAR_SPEEDUP
        );
        // "Not many blank areas in the MME operating area."
        assert!(linear.mme_util > softmax.mme_util + 0.2);
    }

    #[test]
    fn fig6_performer_sits_between() {
        let softmax = fig4_softmax().unwrap();
        let linear = fig5_linear().unwrap();
        let performer = fig6_performer().unwrap();
        let speedup = softmax.total_ms / performer.total_ms;
        assert!(
            (1.4..4.0).contains(&speedup),
            "performer speedup {speedup} (paper: ~{})",
            paper::PERFORMER_SPEEDUP
        );
        assert!(performer.total_ms > linear.total_ms);
        // The un-overlapped exponentials leave an MME gap.
        assert!(
            performer.longest_mme_gap_ms > 0.5,
            "{}",
            performer.longest_mme_gap_ms
        );
    }

    #[test]
    fn fig7_glu_is_slowest_with_mme_blank() {
        let sweep = activation_sweep().unwrap();
        assert_eq!(sweep.len(), 4);
        let by_name = |n: &str| sweep.iter().find(|(name, _)| name == n).unwrap().1.total_ms;
        let relu = by_name("relu");
        let leaky = by_name("leaky_relu");
        let gelu = by_name("gelu");
        let glu = by_name("glu");
        // ReLU/LeakyReLU/GELU within a few percent of each other.
        let base = relu.min(leaky).min(gelu);
        let top = relu.max(leaky).max(gelu);
        assert!(top / base < 1.10, "spread {relu} {leaky} {gelu}");
        // GLU strictly slower (recompile stall), by a modest margin.
        assert!(glu > top, "glu {glu} vs others {top}");
        assert!(glu / base < 1.35, "glu penalty too large: {glu} vs {base}");
    }

    #[test]
    fn traces_are_wellformed() {
        let fig = fig5_linear().unwrap();
        assert!(fig.trace.check_no_overlap().is_none());
        assert!(fig.trace.len() > 10);
        assert!((0.0..=1.0).contains(&fig.overlap));
    }
}
