//! Ablations and extensions (DESIGN.md A1–A4): the quantified versions of
//! the paper's Insights, plus sequence-length and scale-out sweeps.

use crate::experiments::layer_figs::{layer_experiment, LayerFigure, FAVOR_FEATURES};
use gaudi_compiler::{CompilerOptions, GraphCompiler, SchedulerKind};
use gaudi_graph::{EinsumSpec, Graph};
use gaudi_hw::roce::RoceModel;
use gaudi_hw::GaudiConfig;
use gaudi_models::attention::AttentionKind;
use gaudi_models::config::TransformerLayerConfig;
use gaudi_tensor::{Result as TensorResult, TensorError};

/// A1 — scheduler ablation on the Performer layer: the Figure 6 MME gap,
/// then the same graph under the overlap-aware scheduler.
pub fn scheduler_ablation() -> TensorResult<(LayerFigure, LayerFigure)> {
    let cfg = TransformerLayerConfig::paper_section_3_3().with_attention(AttentionKind::Favor {
        features: FAVOR_FEATURES,
    });
    let inorder = layer_experiment(
        "ablation-performer-inorder",
        &cfg,
        CompilerOptions::default(),
    )?;
    let overlap = layer_experiment(
        "ablation-performer-overlap",
        &cfg,
        CompilerOptions::builder()
            .scheduler(SchedulerKind::Overlap)
            .build(),
    )?;
    Ok((inorder, overlap))
}

/// A2 — einsum ablation: an attention score+output block written with the
/// fused `einsum` op, compiled (a) naively (TPC fallback) and (b) with the
/// lowering pass (MME). Returns `(naive_ms, lowered_ms)`.
pub fn einsum_ablation() -> TensorResult<(f64, f64)> {
    let cfg = TransformerLayerConfig::paper_section_3_3();
    let (b, h, n, d) = (cfg.batch, cfg.heads, cfg.seq_len, cfg.head_dim);

    let mut g = Graph::new();
    g.storage_dtype = gaudi_tensor::DType::BF16;
    let q = g
        .input("q", &[b, h, n, d])
        .map_err(|_| TensorError::EmptyTensor)?;
    let k = g
        .input("k", &[b, h, n, d])
        .map_err(|_| TensorError::EmptyTensor)?;
    let v = g
        .input("v", &[b, h, n, d])
        .map_err(|_| TensorError::EmptyTensor)?;
    let s = g
        .einsum(EinsumSpec::ScoresQKt, q, k)
        .map_err(|_| TensorError::EmptyTensor)?;
    let p = g.softmax(s).map_err(|_| TensorError::EmptyTensor)?;
    let o = g
        .einsum(EinsumSpec::OutputAv, p, v)
        .map_err(|_| TensorError::EmptyTensor)?;
    g.mark_output(o);

    let run = |lower: bool| -> f64 {
        let compiler = GraphCompiler::new(
            GaudiConfig::hls1(),
            CompilerOptions::builder().lower_einsum(lower).build(),
        );
        let (_, plan) = compiler.compile(&g).expect("valid graph");
        plan.makespan_ms()
    };
    Ok((run(false), run(true)))
}

/// A5 — element-wise fusion ablation on the Performer layer (whose
/// `scalar_add -> exp` feature-map chains are the fusion targets). Returns
/// `(unfused, fused)` figures.
pub fn fusion_ablation() -> TensorResult<(LayerFigure, LayerFigure)> {
    let cfg = TransformerLayerConfig::paper_section_3_3().with_attention(AttentionKind::Favor {
        features: FAVOR_FEATURES,
    });
    let unfused = layer_experiment("ablation-fusion-off", &cfg, CompilerOptions::default())?;
    let fused = layer_experiment(
        "ablation-fusion-on",
        &cfg,
        CompilerOptions::builder().fuse_elementwise(true).build(),
    )?;
    Ok((unfused, fused))
}

/// One point of the A3 sequence-length sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Sequence length.
    pub seq_len: usize,
    /// Total layer time per attention kind, ms: (softmax, linear, performer).
    pub softmax_ms: f64,
    /// Linear attention, ms.
    pub linear_ms: f64,
    /// Performer, ms.
    pub performer_ms: f64,
}

/// A3 — sequence-length sweep of the three attention mechanisms at the
/// paper's layer configuration (batch is scaled down at very long sequences
/// would not change the *ratios*; we keep the paper batch).
pub fn seqlen_sweep(lengths: &[usize]) -> TensorResult<Vec<SweepPoint>> {
    let mut out = Vec::new();
    for &n in lengths {
        let base = TransformerLayerConfig::paper_section_3_3().with_seq_len(n);
        // A3 reproduces the paper's unfused-attention scaling behaviour.
        let opts = crate::experiments::layer_figs::paper_options();
        let softmax = layer_experiment("sweep-softmax", &base, opts.clone())?.total_ms;
        let linear = layer_experiment(
            "sweep-linear",
            &base.clone().with_attention(AttentionKind::Linear),
            opts.clone(),
        )?
        .total_ms;
        let performer = layer_experiment(
            "sweep-performer",
            &base.with_attention(AttentionKind::Favor {
                features: FAVOR_FEATURES,
            }),
            opts,
        )?
        .total_ms;
        out.push(SweepPoint {
            seq_len: n,
            softmax_ms: softmax,
            linear_ms: linear,
            performer_ms: performer,
        });
    }
    Ok(out)
}

/// One point of the A4 scale-out sweep.
#[derive(Debug, Clone)]
pub struct ScaleoutPoint {
    /// Number of Gaudi processors.
    pub world: usize,
    /// All-reduce time for the gradient volume, ms.
    pub allreduce_ms: f64,
    /// Data-parallel scaling efficiency (0..1).
    pub efficiency: f64,
}

/// A4 — data-parallel scaling of a BERT training step over the HLS-1's
/// RoCE fabric. `step_compute_ms` is the single-device step time (from
/// Figure 9's run); `grad_bytes` the gradient volume.
pub fn scaleout_sweep(
    step_compute_ms: f64,
    grad_bytes: u64,
    worlds: &[usize],
) -> Vec<ScaleoutPoint> {
    let roce = RoceModel::new(GaudiConfig::hls1().roce);
    worlds
        .iter()
        .map(|&world| {
            let allreduce_ns = roce.allreduce_time_ns(grad_bytes, world);
            ScaleoutPoint {
                world,
                allreduce_ms: allreduce_ns / 1e6,
                efficiency: roce.scaling_efficiency(step_compute_ms * 1e6, grad_bytes, world),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_fix_speeds_up_performer_modestly() {
        // The independence fix recovers some time, but not the whole Figure 6
        // gap: both exponentials serialize on the *same* TPC cluster, so only
        // cross-engine slack (the k-branch MME work) is reclaimable.
        let (inorder, overlap) = scheduler_ablation().unwrap();
        assert!(
            overlap.total_ms < inorder.total_ms - 0.5,
            "overlap {} vs inorder {}",
            overlap.total_ms,
            inorder.total_ms
        );
        assert!(overlap.longest_mme_gap_ms <= inorder.longest_mme_gap_ms + 1e-9);
    }

    #[test]
    fn einsum_lowering_wins_severalfold() {
        let (naive, lowered) = einsum_ablation().unwrap();
        // The un-lowered graph pays the ~7x TPC-matmul penalty on both
        // contractions; the shared softmax bounds the end-to-end ratio.
        assert!(
            naive / lowered > 2.0,
            "naive {naive} ms vs lowered {lowered} ms — expected the engine gap to show"
        );
    }

    #[test]
    fn softmax_grows_quadratically_linear_linearly() {
        let sweep = seqlen_sweep(&[512, 1024, 2048, 4096]).unwrap();
        // Softmax 4096/512 should grow much faster than linear's.
        let s_ratio = sweep[3].softmax_ms / sweep[0].softmax_ms;
        let l_ratio = sweep[3].linear_ms / sweep[0].linear_ms;
        assert!(
            s_ratio > 2.0 * l_ratio,
            "softmax x{s_ratio} vs linear x{l_ratio}"
        );
        // Crossover: at short lengths the gap is small; at 4096 it is large.
        let short_gap = sweep[0].softmax_ms / sweep[0].linear_ms;
        let long_gap = sweep[3].softmax_ms / sweep[3].linear_ms;
        assert!(
            long_gap > 2.0 * short_gap,
            "short {short_gap} vs long {long_gap}"
        );
    }

    #[test]
    fn fusion_saves_time_on_performer() {
        let (unfused, fused) = fusion_ablation().unwrap();
        assert!(
            fused.total_ms < unfused.total_ms,
            "fused {} vs unfused {}",
            fused.total_ms,
            unfused.total_ms
        );
        // Fewer trace events: chains collapsed.
        assert!(fused.trace.len() < unfused.trace.len());
    }

    #[test]
    fn scaleout_efficiency_decays_with_world_size() {
        let points = scaleout_sweep(100.0, 500 << 20, &[1, 2, 4, 8]);
        assert_eq!(points[0].allreduce_ms, 0.0);
        assert!((points[0].efficiency - 1.0).abs() < 1e-9);
        for w in points.windows(2) {
            assert!(w[1].efficiency <= w[0].efficiency);
        }
        assert!(
            points[3].efficiency > 0.5,
            "RoCE should keep BERT steps scalable"
        );
    }
}
