//! # gaudi-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper on the simulator, plus the ablations called out in DESIGN.md.
//!
//! Each experiment is a library function returning a structured result, so
//! that (a) the `bin/` binaries are thin printers, (b) `all_experiments`
//! can regenerate the whole evaluation in one run, and (c) integration
//! tests can assert the *shape* of every reproduced result (who wins, by
//! what factor) without scraping stdout.

pub mod experiments;
pub mod support;

pub use experiments::ablations::{
    einsum_ablation, fusion_ablation, scaleout_sweep, scheduler_ablation, seqlen_sweep,
};
pub use experiments::layer_figs::{activation_sweep, layer_experiment, LayerFigure};
pub use experiments::llm_figs::{llm_experiment, LlmFigure, LlmKind};
pub use experiments::table2::{table2, Table2Row};
