//! Shared harness support: results directory, file output, and formatting.

use gaudi_profiler::chrome::to_chrome_json;
use gaudi_profiler::Trace;
use std::path::PathBuf;

/// Directory experiment artifacts (Chrome traces, CSVs) are written into.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("GAUDI_BENCH_RESULTS").unwrap_or_else(|_| "results".to_string());
    let p = PathBuf::from(dir);
    let _ = std::fs::create_dir_all(&p);
    p
}

/// Write a Chrome trace JSON for a figure; returns the path written (or
/// `None` when the filesystem is unavailable).
pub fn write_chrome_trace(name: &str, trace: &Trace) -> Option<PathBuf> {
    let path = results_dir().join(format!("{name}.trace.json"));
    std::fs::write(&path, to_chrome_json(trace)).ok()?;
    Some(path)
}

/// Write a text artifact next to the traces.
pub fn write_text(name: &str, contents: &str) -> Option<PathBuf> {
    let path = results_dir().join(name);
    std::fs::write(&path, contents).ok()?;
    Some(path)
}

/// Format a milliseconds value with sensible precision.
pub fn ms(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Format a ratio like `6.3x`.
pub fn ratio(v: f64) -> String {
    format!("{v:.1}x")
}

/// Format a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(ms(123.456), "123.5");
        assert_eq!(ms(12.345), "12.35");
        assert_eq!(ratio(6.31), "6.3x");
        assert_eq!(pct(0.805), "80.5%");
    }

    #[test]
    fn results_dir_exists_after_call() {
        let d = results_dir();
        assert!(d.exists());
    }
}
