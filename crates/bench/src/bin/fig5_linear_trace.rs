//! Regenerate Figure 5: hardware trace of the Linear-Transformer layer.

use gaudi_bench::experiments::layer_figs::{fig4_softmax, fig5_linear, paper};
use gaudi_bench::support::{ms, pct, ratio, write_chrome_trace};
use gaudi_profiler::ascii::render_timeline;
use gaudi_profiler::report::trace_summary;

fn main() {
    let softmax = fig4_softmax().expect("baseline runs");
    let fig = fig5_linear().expect("experiment runs");
    println!("Figure 5: Transformer layer with linear attention (elu(x)+1)\n");
    println!("{}", render_timeline(&fig.trace, 100));
    println!("{}", trace_summary(&fig.trace));
    println!(
        "total {} ms (paper: ~{} ms); speedup over softmax attention {} (paper: ~{});\n\
         MME utilization {} — 'not many blank areas in the MME operating area'.",
        ms(fig.total_ms),
        paper::LINEAR_MS,
        ratio(softmax.total_ms / fig.total_ms),
        ratio(paper::LINEAR_SPEEDUP),
        pct(fig.mme_util),
    );
    if let Some(p) = write_chrome_trace("fig5_linear", &fig.trace) {
        println!("\nChrome trace written to {}", p.display());
    }
}
