//! Regenerate Figure 6: hardware trace of the Performer (FAVOR) layer.

use gaudi_bench::experiments::layer_figs::{fig4_softmax, fig6_performer, paper};
use gaudi_bench::support::{ms, ratio, write_chrome_trace};
use gaudi_profiler::ascii::render_timeline;
use gaudi_profiler::report::trace_summary;

fn main() {
    let softmax = fig4_softmax().expect("baseline runs");
    let fig = fig6_performer().expect("experiment runs");
    println!("Figure 6: Transformer layer with Performer FAVOR attention\n");
    println!("{}", render_timeline(&fig.trace, 100));
    println!("{}", trace_summary(&fig.trace));
    println!(
        "total {} ms (paper: ~{} ms); speedup over softmax attention {} (paper: ~{}).\n\
         Blank area on the MME lane: longest gap {} ms — the TPC is busy with the\n\
         q'/k' exponentials, which the in-order Graph Compiler does not overlap\n\
         with MME work (see `ablation_scheduler` for the fixed-compiler run).",
        ms(fig.total_ms),
        paper::PERFORMER_MS,
        ratio(softmax.total_ms / fig.total_ms),
        ratio(paper::PERFORMER_SPEEDUP),
        ms(fig.longest_mme_gap_ms),
    );
    if let Some(p) = write_chrome_trace("fig6_performer", &fig.trace) {
        println!("\nChrome trace written to {}", p.display());
    }
}
