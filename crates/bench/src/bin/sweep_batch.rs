//! Extension: batch-size sweep of the BERT training step — the §3.4 memory
//! story quantified. The paper fixed batch 8 "due to limited GAUDI memory";
//! this sweep shows step time, token throughput and HBM pressure per batch.

use gaudi_bench::support::ms;
use gaudi_compiler::CompilerOptions;
use gaudi_hw::GaudiConfig;
use gaudi_models::bert::{build_bert_mlm, BertConfig};
use gaudi_models::config::LlmConfig;
use gaudi_profiler::report::TextTable;
use gaudi_runtime::{Feeds, NumericsMode, Runtime};

fn main() {
    let rt = Runtime::new(GaudiConfig::hls1(), CompilerOptions::default());
    let capacity = GaudiConfig::hls1().memory.hbm_capacity_bytes;

    println!("Extension: BERT training step vs batch size (seq 2048, 2 layers)\n");
    let mut t = TextTable::new(&[
        "Batch",
        "Step (ms)",
        "Tokens/s",
        "Peak HBM (GiB)",
        "Fits 32 GiB",
    ]);
    for batch in [1usize, 2, 4, 8, 16, 32, 64] {
        let cfg = BertConfig {
            base: LlmConfig {
                batch,
                ..LlmConfig::paper_section_3_4(30522)
            },
        };
        let (graph, _) = build_bert_mlm(&cfg).expect("builds");
        let report = rt
            .run(&graph, &Feeds::auto(0), NumericsMode::ShapeOnly)
            .expect("runs");
        let tokens = (batch * cfg.base.seq_len) as f64;
        let tokens_per_s = tokens / (report.makespan_ms / 1e3);
        t.row(&[
            format!("{batch}{}", if batch == 8 { "  <- paper" } else { "" }),
            ms(report.makespan_ms),
            format!("{tokens_per_s:.0}"),
            format!("{:.1}", report.peak_hbm_bytes as f64 / (1u64 << 30) as f64),
            if report.fits_hbm(capacity) {
                "yes"
            } else {
                "NO"
            }
            .to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Reading: throughput keeps improving with batch (fixed per-launch\n\
         overheads amortize), but activation memory grows linearly and crosses\n\
         the 32 GiB device before batch 64 — even under this liveness-based\n\
         lower bound. A real allocator (optimizer states, workspace, no\n\
         perfect reuse) hits the wall earlier: at the paper's batch 8."
    );
}
