//! Extension: storage-precision sweep. The paper runs PyTorch defaults
//! (fp32); Gaudi's headline datapath is bf16. Storage width changes the
//! memory-bound TPC ops and every DMA transfer — this sweep quantifies how
//! much of the layer time is precision-sensitive.

use gaudi_bench::support::{ms, ratio};
use gaudi_compiler::CompilerOptions;
use gaudi_hw::GaudiConfig;
use gaudi_models::attention::AttentionKind;
use gaudi_models::config::TransformerLayerConfig;
use gaudi_models::transformer::build_transformer_layer;
use gaudi_profiler::report::TextTable;
use gaudi_runtime::{Feeds, NumericsMode, Runtime};
use gaudi_tensor::DType;

fn layer_ms(kind: AttentionKind, dtype: DType) -> f64 {
    let cfg = TransformerLayerConfig::paper_section_3_3().with_attention(kind);
    let (mut graph, _) = build_transformer_layer(&cfg).expect("builds");
    graph.storage_dtype = dtype;
    let rt = Runtime::new(GaudiConfig::hls1(), CompilerOptions::default());
    rt.run(&graph, &Feeds::auto(0), NumericsMode::ShapeOnly)
        .expect("runs")
        .makespan_ms
}

fn main() {
    println!("Extension: activation storage precision (paper layer config)\n");
    let mut t = TextTable::new(&["Attention", "fp32 (ms)", "bf16 (ms)", "bf16 saves"]);
    for (name, kind) in [
        ("softmax", AttentionKind::Softmax),
        ("linear", AttentionKind::Linear),
        ("performer", AttentionKind::Favor { features: 256 }),
    ] {
        let f32_ms = layer_ms(kind, DType::F32);
        let bf16_ms = layer_ms(kind, DType::BF16);
        t.row(&[
            name.into(),
            ms(f32_ms),
            ms(bf16_ms),
            ratio(f32_ms / bf16_ms),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Reading: compute-bound work (MME GEMMs, softmax exponentials) is\n\
         precision-insensitive in this model; the bf16 win comes from halved\n\
         DMA transfers and memory-bound element-wise traffic."
    );
}
