//! A4 — data-parallel scale-out over the HLS-1 RoCE fabric (extension:
//! the paper runs one Gaudi of the eight-Gaudi system).

use gaudi_bench::support::ms;
use gaudi_bench::{llm_experiment, scaleout_sweep, LlmKind};
use gaudi_models::bert::BertConfig;
use gaudi_profiler::report::TextTable;

fn main() {
    // Single-device BERT step time from the Figure 9 run.
    let bert = llm_experiment(LlmKind::Bert).expect("baseline runs");

    // Gradient volume = parameter bytes (fp32) of the BERT configuration.
    let cfg = BertConfig::paper().base;
    let d = cfg.heads * cfg.head_dim;
    let per_layer = 4 * d * d + 2 * d * cfg.ffn_mult * d + (9 * d); // qkv+out + ffn + ln/bias approx
    let params = cfg.vocab * d + cfg.seq_len * d + cfg.layers * per_layer + d * cfg.vocab;
    let grad_bytes = (params * 4) as u64;

    println!("Extension A4: data-parallel scaling of a BERT training step\n");
    println!(
        "single-device step: {} ms; gradient volume: {:.1} MiB\n",
        ms(bert.total_ms),
        grad_bytes as f64 / (1u64 << 20) as f64
    );
    let mut t = TextTable::new(&["Gaudis", "All-reduce (ms)", "Scaling efficiency"]);
    for p in scaleout_sweep(bert.total_ms, grad_bytes, &[1, 2, 4, 8]) {
        t.row(&[
            p.world.to_string(),
            ms(p.allreduce_ms),
            format!("{:.1}%", p.efficiency * 100.0),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Shape: the ten 100 GbE RoCE ports keep ring all-reduce cheap relative to a\n\
         {} ms step, so data-parallel efficiency stays high across the full HLS-1 —\n\
         the scalability §2.1 advertises.",
        ms(bert.total_ms)
    );
}
