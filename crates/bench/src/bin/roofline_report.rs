//! Roofline report over the Figure 4 trace: quantifies which operators of
//! the softmax-attention layer are compute- vs bandwidth-bound, grounding
//! the paper's workload-balance discussion.

use gaudi_bench::experiments::layer_figs::fig4_softmax;
use gaudi_hw::{EngineId, GaudiConfig};
use gaudi_profiler::roofline::{render_roofline, roofline, Roof};

fn main() {
    let fig = fig4_softmax().expect("experiment runs");
    let cfg = GaudiConfig::hls1();
    let roofs = vec![
        (
            EngineId::Mme,
            Roof {
                peak_gflops: cfg.mme.peak_tflops * 1000.0,
                peak_gbps: cfg.memory.hbm_bandwidth_gbps,
            },
        ),
        (
            EngineId::TpcCluster,
            Roof {
                peak_gflops: cfg.tpc.matmul_peak_tflops * 1000.0,
                peak_gbps: cfg.tpc.num_cores as f64 * 256.0 / cfg.tpc.global_access_cycles
                    * cfg.tpc.clock_ghz,
            },
        ),
    ];
    let mut points = roofline(&fig.trace, &roofs);
    println!("Roofline over the Figure 4 (softmax attention) trace\n");
    println!("{}", render_roofline(&mut points));
    println!(
        "Reading: the attention GEMMs sit on the MME compute roof; the TPC's\n\
         element-wise ops are bandwidth-bound on the global-memory path, and\n\
         softmax burns compute cycles in its exponentials and reductions — the\n\
         imbalance behind the paper's idle-MME traces."
    );
}
