//! Regenerate Figure 8: end-to-end hardware trace of the GPT model
//! (GPT2LMHeadModel analog, training step, §3.4 configuration).

use gaudi_bench::support::{pct, write_chrome_trace};
use gaudi_bench::{llm_experiment, LlmKind};
use gaudi_profiler::ascii::render_timeline;
use gaudi_profiler::report::trace_summary;

fn main() {
    let fig = llm_experiment(LlmKind::Gpt).expect("experiment runs");
    println!("Figure 8: hardware trace of the GPT model (seq 2048, batch 8, 2 layers)\n");
    println!("{}", render_timeline(&fig.trace, 100));
    println!("{}", trace_summary(&fig.trace));
    println!(
        "Observations (paper §3.4): {} MME idle gaps; MME utilization {}; TPC {};\n\
         MME/TPC overlap {} — 'workload between MME and TPC is unbalanced' and\n\
         'there is no good overlap between MME and TPC'.\n\
         Peak HBM estimate: {:.1} GiB of the 32 GiB device (why the paper's batch is 8).",
        fig.mme_gaps,
        pct(fig.mme_util),
        pct(fig.tpc_util),
        pct(fig.overlap),
        fig.peak_hbm_bytes as f64 / (1u64 << 30) as f64,
    );
    if let Some(p) = write_chrome_trace("fig8_gpt", &fig.trace) {
        println!("\nChrome trace written to {}", p.display());
    }
}
