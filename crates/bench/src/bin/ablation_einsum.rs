//! A2 — einsum ablation: the paper's Insight #2 ("avoid high-level
//! abstracts like torch.einsum") quantified.

use gaudi_bench::einsum_ablation;
use gaudi_bench::support::{ms, ratio};
use gaudi_profiler::report::TextTable;

fn main() {
    let (naive, lowered) = einsum_ablation().expect("ablation runs");
    println!("Ablation A2: fused einsum vs basic-op lowering (attention block)\n");
    let mut t = TextTable::new(&["Compilation", "Total (ms)"]);
    t.row(&["einsum kept fused (TPC matmul fallback)".into(), ms(naive)]);
    t.row(&["lowered to transpose + matmul (MME)".into(), ms(lowered)]);
    println!("{}", t.render());
    println!(
        "Finding: lowering wins {} end-to-end. The fused contraction falls back\n\
         to a TPC matmul kernel, paying the ~7x engine gap of Table 2 on both\n\
         the QK^T and AV products; the softmax between them bounds the ratio.",
        ratio(naive / lowered)
    );
}
