//! Regenerate Figure 4: hardware trace of a Transformer layer with softmax
//! attention (seq 2048, batch 128, 6 heads, 64 hid/head).

use gaudi_bench::experiments::layer_figs::{fig4_softmax, paper};
use gaudi_bench::support::{pct, write_chrome_trace};
use gaudi_profiler::ascii::render_timeline;
use gaudi_profiler::report::trace_summary;

fn main() {
    let fig = fig4_softmax().expect("experiment runs");
    println!("Figure 4: Transformer layer with softmax attention\n");
    println!("{}", render_timeline(&fig.trace, 100));
    println!("{}", trace_summary(&fig.trace));
    println!(
        "Observations (paper §3.3):\n\
         (1) blank areas in the MME lane: MME utilization {} (longest gap {:.1} ms);\n\
         (2) softmax consumes {} of TPC busy time (paper: >{}).",
        pct(fig.mme_util),
        fig.longest_mme_gap_ms,
        pct(fig.softmax_share_of_tpc),
        pct(paper::SOFTMAX_TPC_SHARE),
    );
    if let Some(p) = write_chrome_trace("fig4_softmax", &fig.trace) {
        println!("\nChrome trace written to {}", p.display());
    }
}
