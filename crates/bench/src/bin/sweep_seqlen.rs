//! A3 — sequence-length sweep of the three attention mechanisms
//! (the paper's §3.3 motivation and "future work" direction).

use gaudi_bench::seqlen_sweep;
use gaudi_bench::support::{ms, ratio, write_text};
use gaudi_profiler::report::TextTable;

fn main() {
    let lengths = [256, 512, 1024, 2048, 4096, 8192];
    let sweep = seqlen_sweep(&lengths).expect("sweep runs");
    println!("Extension A3: attention mechanisms across sequence length\n");
    let mut t = TextTable::new(&[
        "Seq len",
        "Softmax (ms)",
        "Linear (ms)",
        "Performer (ms)",
        "Softmax/Linear",
    ]);
    let mut csv = String::from("seq_len,softmax_ms,linear_ms,performer_ms\n");
    for p in &sweep {
        t.row(&[
            p.seq_len.to_string(),
            ms(p.softmax_ms),
            ms(p.linear_ms),
            ms(p.performer_ms),
            ratio(p.softmax_ms / p.linear_ms),
        ]);
        csv.push_str(&format!(
            "{},{:.3},{:.3},{:.3}\n",
            p.seq_len, p.softmax_ms, p.linear_ms, p.performer_ms
        ));
    }
    println!("{}", t.render());
    println!(
        "Shape: softmax attention grows quadratically (its softmax runs on the TPC),\n\
         linearized attention grows ~linearly; the gap widens with sequence length,\n\
         'especially when the sequence length exceeds 1024' (§3.3)."
    );
    if let Some(p) = write_text("sweep_seqlen.csv", &csv) {
        println!("\nCSV written to {}", p.display());
    }
}
