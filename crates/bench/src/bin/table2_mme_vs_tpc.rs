//! Regenerate Table 2: MME vs TPC batched-matmul comparison.

use gaudi_bench::support::{ms, ratio};
use gaudi_bench::table2;
use gaudi_profiler::report::TextTable;

fn main() {
    println!("Table 2: MME vs TPC batched matmul (batch 64), measured vs paper\n");
    let mut t = TextTable::new(&[
        "Size",
        "T_MME",
        "F_MME",
        "T_TPC",
        "F_TPC",
        "Speedup",
        "|",
        "paper T_MME",
        "F_MME",
        "T_TPC",
        "F_TPC",
        "Speedup",
    ]);
    for r in table2() {
        let (pt_mme, pf_mme, pt_tpc, pf_tpc, pspeed) = r.paper;
        t.row(&[
            r.size.to_string(),
            ms(r.t_mme_ms),
            format!("{:.2}", r.f_mme),
            ms(r.t_tpc_ms),
            format!("{:.2}", r.f_tpc),
            ratio(r.speedup),
            "|".to_string(),
            ms(pt_mme),
            format!("{pf_mme:.2}"),
            ms(pt_tpc),
            format!("{pf_tpc:.2}"),
            ratio(pspeed),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Shape check: TPC is ~{} slower than MME at large sizes (paper: 'up to 7x');\n\
         MME efficiency ramps from launch-overhead-bound at size 128 to its plateau at 512+.",
        ratio(table2().last().unwrap().speedup)
    );
}
