//! A1 — scheduler ablation: the Figure 6 Performer layer under the
//! SynapseAI-like in-order scheduler vs the overlap-aware list scheduler
//! (the fix the paper's Insight #1 asks for).

use gaudi_bench::scheduler_ablation;
use gaudi_bench::support::{ms, pct};
use gaudi_profiler::report::TextTable;

fn main() {
    let (inorder, overlap) = scheduler_ablation().expect("ablation runs");
    println!("Ablation A1: scheduler policy on the Performer layer\n");
    let mut t = TextTable::new(&[
        "Scheduler",
        "Total (ms)",
        "MME util",
        "Longest MME gap (ms)",
    ]);
    t.row(&[
        "in-order (SynapseAI-like)".into(),
        ms(inorder.total_ms),
        pct(inorder.mme_util),
        ms(inorder.longest_mme_gap_ms),
    ]);
    t.row(&[
        "overlap-aware".into(),
        ms(overlap.total_ms),
        pct(overlap.mme_util),
        ms(overlap.longest_mme_gap_ms),
    ]);
    println!("{}", t.render());
    println!(
        "Finding: detecting the q'/k' independence recovers {:.1} ms ({:.1}%), but\n\
         NOT the whole Figure 6 gap — both exponentials execute on the same TPC\n\
         cluster, so only the cross-engine slack (the k-branch MME work) is\n\
         reclaimable. The bigger lever is reducing special-function work itself.",
        inorder.total_ms - overlap.total_ms,
        (inorder.total_ms - overlap.total_ms) / inorder.total_ms * 100.0,
    );
}
