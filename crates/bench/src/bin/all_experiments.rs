//! Run the full evaluation: every table, figure, ablation and sweep, and
//! emit the paper-vs-measured summary block that EXPERIMENTS.md records.

use gaudi_bench::experiments::layer_figs::{
    activation_sweep, fig4_softmax, fig5_linear, fig6_performer, paper,
};
use gaudi_bench::support::{ms, pct, ratio, write_chrome_trace, write_text};
use gaudi_bench::{
    einsum_ablation, fusion_ablation, llm_experiment, scheduler_ablation, seqlen_sweep, table2,
    LlmKind,
};
use gaudi_compiler::table1;
use gaudi_profiler::report::TextTable;

fn main() {
    let mut md = String::new();
    let mut emit = |s: &str| {
        println!("{s}");
        md.push_str(s);
        md.push('\n');
    };

    emit("# Full experiment run\n");

    // ---- Table 1 ----
    emit("## Table 1 — op→engine mapping");
    let mme_ops: Vec<_> = table1()
        .into_iter()
        .filter(|r| r.mapping.label() == "MME")
        .map(|r| r.operation)
        .collect();
    emit(&format!(
        "ops mapped to MME: {mme_ops:?} (paper: only torch.matmul) — all 9 rows match.\n"
    ));

    // ---- Table 2 ----
    emit("## Table 2 — MME vs TPC bmm");
    let mut t = TextTable::new(&[
        "Size", "F_MME", "paper", "F_TPC", "paper", "Speedup", "paper",
    ]);
    for r in table2() {
        let (_, pf_mme, _, pf_tpc, pspeed) = r.paper;
        t.row(&[
            r.size.to_string(),
            format!("{:.2}", r.f_mme),
            format!("{pf_mme:.2}"),
            format!("{:.2}", r.f_tpc),
            format!("{pf_tpc:.2}"),
            ratio(r.speedup),
            ratio(pspeed),
        ]);
    }
    emit(&t.render());

    // ---- Figures 4-6 ----
    emit("## Figures 4-6 — attention mechanisms (seq 2048, batch 128, 6 heads, 64 hid)");
    let f4 = fig4_softmax().expect("fig4");
    let f5 = fig5_linear().expect("fig5");
    let f6 = fig6_performer().expect("fig6");
    let mut t = TextTable::new(&[
        "Attention",
        "Total (ms)",
        "vs softmax",
        "paper",
        "MME util",
        "softmax%TPC",
    ]);
    t.row(&[
        "softmax".into(),
        ms(f4.total_ms),
        "1.0x".into(),
        "1.0x".into(),
        pct(f4.mme_util),
        pct(f4.softmax_share_of_tpc),
    ]);
    t.row(&[
        "linear".into(),
        ms(f5.total_ms),
        ratio(f4.total_ms / f5.total_ms),
        ratio(paper::LINEAR_SPEEDUP),
        pct(f5.mme_util),
        "-".into(),
    ]);
    t.row(&[
        "performer".into(),
        ms(f6.total_ms),
        ratio(f4.total_ms / f6.total_ms),
        ratio(paper::PERFORMER_SPEEDUP),
        pct(f6.mme_util),
        "-".into(),
    ]);
    emit(&t.render());
    emit(&format!(
        "fig4: softmax share of TPC busy = {} (paper: >{}); longest MME gap {} ms\n",
        pct(f4.softmax_share_of_tpc),
        pct(paper::SOFTMAX_TPC_SHARE),
        ms(f4.longest_mme_gap_ms)
    ));
    write_chrome_trace("fig4_softmax", &f4.trace);
    write_chrome_trace("fig5_linear", &f5.trace);
    write_chrome_trace("fig6_performer", &f6.trace);

    // ---- Figure 7 ----
    emit("## Figure 7 — activation sweep");
    let sweep = activation_sweep().expect("fig7");
    let mut t = TextTable::new(&["Activation", "Total (ms)", "paper (ms)"]);
    for ((name, fig), p) in sweep.iter().zip(paper::ACTIVATIONS_MS.iter()) {
        t.row(&[name.clone(), ms(fig.total_ms), format!("{p}")]);
    }
    emit(&t.render());

    // ---- Figures 8-9 ----
    emit("## Figures 8-9 — end-to-end LLMs (seq 2048, batch 8, 2 layers)");
    let mut t = TextTable::new(&[
        "Model",
        "Step (ms)",
        "MME util",
        "TPC util",
        "Overlap",
        "Peak HBM (GiB)",
    ]);
    for kind in [LlmKind::Gpt, LlmKind::Bert] {
        let f = llm_experiment(kind).expect("llm");
        t.row(&[
            f.name.clone(),
            ms(f.total_ms),
            pct(f.mme_util),
            pct(f.tpc_util),
            pct(f.overlap),
            format!("{:.1}", f.peak_hbm_bytes as f64 / (1u64 << 30) as f64),
        ]);
        write_chrome_trace(&f.name.clone(), &f.trace);
    }
    emit(&t.render());

    // ---- Ablations ----
    emit("## Ablations and extensions");
    let (ino, ovl) = scheduler_ablation().expect("A1");
    emit(&format!(
        "A1 scheduler: in-order {} ms -> overlap {} ms (gain {:.1}%)",
        ms(ino.total_ms),
        ms(ovl.total_ms),
        (ino.total_ms - ovl.total_ms) / ino.total_ms * 100.0
    ));
    let (naive, lowered) = einsum_ablation().expect("A2");
    emit(&format!(
        "A2 einsum: fused {} ms vs lowered {} ms ({} win)",
        ms(naive),
        ms(lowered),
        ratio(naive / lowered)
    ));
    let (unfused, fused_fig) = fusion_ablation().expect("A5");
    emit(&format!(
        "A5 fusion: off {} ms -> on {} ms (gain {:.1}%)",
        ms(unfused.total_ms),
        ms(fused_fig.total_ms),
        (unfused.total_ms - fused_fig.total_ms) / unfused.total_ms * 100.0
    ));
    let sw = seqlen_sweep(&[512, 2048, 8192]).expect("A3");
    emit(&format!(
        "A3 seq-len: softmax/linear ratio {} at 512 -> {} at 8192",
        ratio(sw[0].softmax_ms / sw[0].linear_ms),
        ratio(sw[2].softmax_ms / sw[2].linear_ms)
    ));

    if let Some(p) = write_text("all_experiments.md", &md) {
        println!("\nSummary written to {}", p.display());
    }
}
