//! Regenerate Table 1: operation → hardware mapping via the SynapseAI-like
//! compiler. The mapping is *queried from the compiler*, not hard-coded.

use gaudi_compiler::table1;
use gaudi_profiler::report::TextTable;

fn main() {
    println!("Table 1: Operation-Hardware Mapping via SynapseAI (reproduced)\n");
    let mut t = TextTable::new(&["Operation", "Explanation", "Mapping", "Paper"]);
    for row in table1() {
        let paper = if row.operation == "torch.matmul" {
            "MME"
        } else {
            "TPC"
        };
        t.row(&[
            row.operation.to_string(),
            row.explanation.to_string(),
            row.mapping.label(),
            paper.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Conclusion (matches §3.2): only matrix multiplication reaches the MME;\n\
         every other operation — even scalar * tensor — runs on the TPC cluster."
    );
}
