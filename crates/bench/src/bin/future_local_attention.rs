//! Future-work experiment: the paper closes with "we plan to investigate
//! novel attention mechanisms tailored to GAUDI's architecture \[to\]
//! optimize performance for long sequences". This binary evaluates one such
//! mechanism — block-local windowed attention — against the paper's three
//! baselines at the §3.3 configuration and across window sizes.

use gaudi_bench::experiments::layer_figs::{layer_experiment, FAVOR_FEATURES};
use gaudi_bench::support::{ms, pct, ratio};
use gaudi_compiler::CompilerOptions;
use gaudi_models::attention::AttentionKind;
use gaudi_models::config::TransformerLayerConfig;
use gaudi_profiler::report::TextTable;

fn main() {
    let base = TransformerLayerConfig::paper_section_3_3();
    let softmax = layer_experiment("fw-softmax", &base, CompilerOptions::default()).expect("runs");

    println!("Future work: block-local windowed attention (seq 2048, batch 128)\n");
    let mut t = TextTable::new(&[
        "Mechanism",
        "Total (ms)",
        "vs softmax",
        "MME util",
        "softmax%TPC",
    ]);
    t.row(&[
        "softmax (global)".into(),
        ms(softmax.total_ms),
        "1.0x".into(),
        pct(softmax.mme_util),
        pct(softmax.softmax_share_of_tpc),
    ]);
    for window in [512usize, 256, 128, 64] {
        let cfg = base
            .clone()
            .with_attention(AttentionKind::LocalWindow { window });
        let fig = layer_experiment(
            &format!("fw-local-{window}"),
            &cfg,
            CompilerOptions::default(),
        )
        .expect("runs");
        t.row(&[
            format!("local window W={window}"),
            ms(fig.total_ms),
            ratio(softmax.total_ms / fig.total_ms),
            pct(fig.mme_util),
            pct(fig.softmax_share_of_tpc),
        ]);
    }
    for (name, kind) in [
        ("linear (elu+1)", AttentionKind::Linear),
        (
            "performer",
            AttentionKind::Favor {
                features: FAVOR_FEATURES,
            },
        ),
    ] {
        let cfg = base.clone().with_attention(kind);
        let fig = layer_experiment(&format!("fw-{name}"), &cfg, CompilerOptions::default())
            .expect("runs");
        t.row(&[
            name.into(),
            ms(fig.total_ms),
            ratio(softmax.total_ms / fig.total_ms),
            pct(fig.mme_util),
            "-".into(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Finding: shrinking the softmax from NxN to NxW attacks the Figure 4\n\
         bottleneck directly — the TPC softmax cost falls by N/W while every\n\
         matrix product stays on the MME, and unlike linearized attention the\n\
         within-window interactions remain exact."
    );
}
