//! Regenerate Figure 7: the activation-function sweep (ReLU, LeakyReLU,
//! GELU, GLU) over the §3.3 Transformer layer.

use gaudi_bench::activation_sweep;
use gaudi_bench::experiments::layer_figs::paper;
use gaudi_bench::support::{ms, pct, write_chrome_trace};
use gaudi_profiler::report::TextTable;

fn main() {
    let sweep = activation_sweep().expect("sweep runs");
    println!("Figure 7: activation functions in a Transformer layer\n");
    let mut t = TextTable::new(&["Activation", "Total (ms)", "MME util", "Paper (ms)"]);
    for ((name, fig), paper_ms) in sweep.iter().zip(paper::ACTIVATIONS_MS.iter()) {
        t.row(&[
            name.clone(),
            ms(fig.total_ms),
            pct(fig.mme_util),
            format!("{paper_ms}"),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Shape check (paper §3.3): ReLU / LeakyReLU / GELU are within a few percent\n\
         of each other; GLU is the slowest and stalls the MME, because SynapseAI\n\
         lacks a pre-compiled GLU recipe and recompiles on first execution."
    );
    for (name, fig) in &sweep {
        write_chrome_trace(&format!("fig7_{name}"), &fig.trace);
    }
}
