//! A5 — element-wise fusion ablation: chains of unary TPC ops collapsed
//! into single kernel launches (part of Insight #1's "good mapping and
//! schedule").

use gaudi_bench::fusion_ablation;
use gaudi_bench::support::{ms, pct};
use gaudi_profiler::report::TextTable;

fn main() {
    let (unfused, fused) = fusion_ablation().expect("ablation runs");
    println!("Ablation A5: element-wise fusion on the Performer layer\n");
    let mut t = TextTable::new(&["Fusion", "Total (ms)", "Trace events", "MME util"]);
    t.row(&[
        "off (one launch per op)".into(),
        ms(unfused.total_ms),
        unfused.trace.len().to_string(),
        pct(unfused.mme_util),
    ]);
    t.row(&[
        "on (chains collapsed)".into(),
        ms(fused.total_ms),
        fused.trace.len().to_string(),
        pct(fused.mme_util),
    ]);
    println!("{}", t.render());
    println!(
        "Finding: fusing the scalar_add->exp feature-map chains removes {} trace\n\
         events and {:.1} ms ({:.1}%): intermediate tensors stop round-tripping\n\
         through global memory and launch overheads collapse.",
        unfused.trace.len() - fused.trace.len(),
        unfused.total_ms - fused.total_ms,
        (unfused.total_ms - fused.total_ms) / unfused.total_ms * 100.0
    );
}
