//! The kernel instruction set: a TPC-C-like IR embedded in Rust.
//!
//! The real TPC is programmed in TPC-C, a C dialect with vector types and
//! intrinsics, compiled by an LLVM back end into VLIW bundles. This IR sits
//! at roughly the post-compilation level: straight-line vector/scalar
//! instructions plus counted loops, which is enough to express the kernel
//! library while keeping the cycle model faithful to the 4-slot VLIW issue.

/// Lanes in one 2048-bit vector register at `f32` precision.
pub const VECTOR_LANES: usize = 64;

/// Number of scalar registers.
pub const NUM_SREGS: usize = 32;
/// Number of vector registers.
pub const NUM_VREGS: usize = 32;

/// Scalar register index.
pub type SReg = u8;
/// Vector register index.
pub type VReg = u8;
/// Bound-tensor slot index (the "tensor access points" of the TPC).
pub type TensorSlot = u8;

/// Scalar registers `S0..=S2` hold the index-space member coordinates at
/// member entry.
pub const COORD_REGS: [SReg; 3] = [0, 1, 2];
/// Launch-time scalar arguments are loaded starting at this register.
pub const ARG_REG_BASE: SReg = 16;

/// The four VLIW functional slots (§2.2), plus a pseudo-slot for loop
/// control handled by the sequencer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Slot {
    /// Memory loads, value moves into registers.
    Load,
    /// Scalar computation.
    Spu,
    /// Vector computation.
    Vpu,
    /// Memory stores.
    Store,
    /// Loop sequencing.
    Ctrl,
}

/// Kernel instructions.
///
/// Vector instructions operate lane-wise on 64 `f32` lanes. Global tensor
/// accesses read/write 64 consecutive elements with clipping at the buffer
/// end (TPC-style padding semantics).
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    // ---- Load slot --------------------------------------------------------
    /// `S[dst] = imm`.
    MovSImm { dst: SReg, imm: f32 },
    /// `S[dst] = S[src]`.
    MovSS { dst: SReg, src: SReg },
    /// Broadcast a scalar into all lanes: `V[dst][l] = S[src]`.
    BcastV { dst: VReg, src: SReg },
    /// `V[dst][l] = imm`.
    MovVImm { dst: VReg, imm: f32 },
    /// Load 64 elements from tensor `tensor` at offset `round(S[off])`.
    LdTnsrV {
        dst: VReg,
        tensor: TensorSlot,
        off: SReg,
    },
    /// Load a single element: `S[dst] = tensor[round(S[off])]`.
    LdTnsrS {
        dst: SReg,
        tensor: TensorSlot,
        off: SReg,
    },
    /// Load 64 elements from *vector local memory* at element address
    /// `round(S[addr])`. Local memory has "unrestricted bandwidth ... in
    /// each cycle" (§2.2): cost 1 cycle.
    LdVlmV { dst: VReg, addr: SReg },
    /// Load one element of vector local memory into a scalar register.
    LdVlmS { dst: SReg, addr: SReg },

    // ---- SPU slot ---------------------------------------------------------
    /// `S[dst] = S[a] + S[b]`.
    AddS { dst: SReg, a: SReg, b: SReg },
    /// `S[dst] = S[a] - S[b]`.
    SubS { dst: SReg, a: SReg, b: SReg },
    /// `S[dst] = S[a] * S[b]`.
    MulS { dst: SReg, a: SReg, b: SReg },
    /// `S[dst] = S[a] + imm`.
    AddSImm { dst: SReg, a: SReg, imm: f32 },
    /// `S[dst] = S[a] * imm`.
    MulSImm { dst: SReg, a: SReg, imm: f32 },
    /// `S[dst] = max(S[a], S[b])`.
    MaxS { dst: SReg, a: SReg, b: SReg },
    /// `S[dst] = 1 / S[a]` (scalar special function).
    RcpS { dst: SReg, a: SReg },

    // ---- VPU slot ---------------------------------------------------------
    /// Lane-wise add.
    AddV { dst: VReg, a: VReg, b: VReg },
    /// Lane-wise subtract.
    SubV { dst: VReg, a: VReg, b: VReg },
    /// Lane-wise multiply.
    MulV { dst: VReg, a: VReg, b: VReg },
    /// Lane-wise maximum.
    MaxV { dst: VReg, a: VReg, b: VReg },
    /// Lane-wise multiply-accumulate: `V[dst] += V[a] * V[b]`.
    MacV { dst: VReg, a: VReg, b: VReg },
    /// Lane-wise add-immediate.
    AddVImm { dst: VReg, a: VReg, imm: f32 },
    /// Lane-wise multiply-immediate.
    MulVImm { dst: VReg, a: VReg, imm: f32 },
    /// Lane-wise max-immediate (ReLU is `MaxVImm { imm: 0.0 }`).
    MaxVImm { dst: VReg, a: VReg, imm: f32 },
    /// Lane-wise exponential (special function).
    ExpV { dst: VReg, a: VReg },
    /// Lane-wise hyperbolic tangent (special function).
    TanhV { dst: VReg, a: VReg },
    /// Lane-wise natural log (special function).
    LogV { dst: VReg, a: VReg },
    /// Lane-wise square root (special function).
    SqrtV { dst: VReg, a: VReg },
    /// Lane-wise reciprocal (special function).
    RcpV { dst: VReg, a: VReg },
    /// Lane-wise select: `V[dst][l] = V[cond][l] > 0 ? V[a][l] : V[b][l]`.
    SelGtzV {
        dst: VReg,
        cond: VReg,
        a: VReg,
        b: VReg,
    },
    /// Horizontal sum of lanes into a scalar (reduction tree).
    RedSumV { dst: SReg, src: VReg },
    /// Horizontal max of lanes into a scalar (reduction tree).
    RedMaxV { dst: SReg, src: VReg },

    // ---- Store slot -------------------------------------------------------
    /// Store 64 elements into tensor `tensor` at offset `round(S[off])`.
    StTnsrV {
        tensor: TensorSlot,
        off: SReg,
        src: VReg,
    },
    /// Store a single element.
    StTnsrS {
        tensor: TensorSlot,
        off: SReg,
        src: SReg,
    },
    /// Store 64 elements into vector local memory at `round(S[addr])`.
    StVlmV { addr: SReg, src: VReg },

    // ---- control ----------------------------------------------------------
    /// Counted loop: `S[counter]` starts at `start` and advances by `step`
    /// per iteration, for `trip` iterations.
    Loop {
        counter: SReg,
        start: f32,
        step: f32,
        trip: usize,
        body: Vec<Instr>,
    },
}

impl Instr {
    /// VLIW slot the instruction issues on.
    pub fn slot(&self) -> Slot {
        use Instr::*;
        match self {
            MovSImm { .. }
            | MovSS { .. }
            | BcastV { .. }
            | MovVImm { .. }
            | LdTnsrV { .. }
            | LdTnsrS { .. }
            | LdVlmV { .. }
            | LdVlmS { .. } => Slot::Load,
            AddS { .. }
            | SubS { .. }
            | MulS { .. }
            | AddSImm { .. }
            | MulSImm { .. }
            | MaxS { .. }
            | RcpS { .. } => Slot::Spu,
            AddV { .. }
            | SubV { .. }
            | MulV { .. }
            | MaxV { .. }
            | MacV { .. }
            | AddVImm { .. }
            | MulVImm { .. }
            | MaxVImm { .. }
            | ExpV { .. }
            | TanhV { .. }
            | LogV { .. }
            | SqrtV { .. }
            | RcpV { .. }
            | SelGtzV { .. }
            | RedSumV { .. }
            | RedMaxV { .. } => Slot::Vpu,
            StTnsrV { .. } | StTnsrS { .. } | StVlmV { .. } => Slot::Store,
            Loop { .. } => Slot::Ctrl,
        }
    }

    /// Cycles the instruction occupies its slot, given the architecture's
    /// global-access and special-function costs.
    pub fn cycles(&self, global_access_cycles: f64, special_func_cycles: f64) -> f64 {
        use Instr::*;
        match self {
            LdTnsrV { .. } | StTnsrV { .. } => global_access_cycles,
            LdTnsrS { .. } | StTnsrS { .. } => global_access_cycles,
            // "Unrestricted bandwidth when reading from or writing to the
            // local memory in each cycle."
            LdVlmV { .. } | LdVlmS { .. } | StVlmV { .. } => 1.0,
            ExpV { .. } | TanhV { .. } | LogV { .. } | SqrtV { .. } | RcpV { .. } | RcpS { .. } => {
                special_func_cycles
            }
            // A lane-reduction tree over 64 lanes: log2(64) dependent steps.
            RedSumV { .. } | RedMaxV { .. } => (VECTOR_LANES as f64).log2(),
            Loop { .. } => 2.0, // sequencer overhead per loop entry
            _ => 1.0,
        }
    }

    /// Registers read by the instruction, as (is_vector, index) pairs.
    pub fn reads(&self) -> Vec<(bool, u8)> {
        use Instr::*;
        match self {
            MovSImm { .. } | MovVImm { .. } => vec![],
            MovSS { src, .. } => vec![(false, *src)],
            BcastV { src, .. } => vec![(false, *src)],
            LdTnsrV { off, .. } | LdTnsrS { off, .. } => vec![(false, *off)],
            LdVlmV { addr, .. } | LdVlmS { addr, .. } => vec![(false, *addr)],
            StVlmV { addr, src } => vec![(false, *addr), (true, *src)],
            AddS { a, b, .. } | SubS { a, b, .. } | MulS { a, b, .. } | MaxS { a, b, .. } => {
                vec![(false, *a), (false, *b)]
            }
            AddSImm { a, .. } | MulSImm { a, .. } | RcpS { a, .. } => vec![(false, *a)],
            AddV { a, b, .. } | SubV { a, b, .. } | MulV { a, b, .. } | MaxV { a, b, .. } => {
                vec![(true, *a), (true, *b)]
            }
            MacV { dst, a, b } => vec![(true, *dst), (true, *a), (true, *b)],
            AddVImm { a, .. }
            | MulVImm { a, .. }
            | MaxVImm { a, .. }
            | ExpV { a, .. }
            | TanhV { a, .. }
            | LogV { a, .. }
            | SqrtV { a, .. }
            | RcpV { a, .. } => {
                vec![(true, *a)]
            }
            SelGtzV { cond, a, b, .. } => vec![(true, *cond), (true, *a), (true, *b)],
            RedSumV { src, .. } | RedMaxV { src, .. } => vec![(true, *src)],
            StTnsrV { off, src, .. } => vec![(false, *off), (true, *src)],
            StTnsrS { off, src, .. } => vec![(false, *off), (false, *src)],
            Loop { .. } => vec![],
        }
    }

    /// Register written by the instruction, if any.
    pub fn writes(&self) -> Option<(bool, u8)> {
        use Instr::*;
        match self {
            MovSImm { dst, .. }
            | MovSS { dst, .. }
            | AddS { dst, .. }
            | SubS { dst, .. }
            | MulS { dst, .. }
            | AddSImm { dst, .. }
            | MulSImm { dst, .. }
            | MaxS { dst, .. }
            | RcpS { dst, .. }
            | LdTnsrS { dst, .. }
            | LdVlmS { dst, .. }
            | RedSumV { dst, .. }
            | RedMaxV { dst, .. } => Some((false, *dst)),
            BcastV { dst, .. }
            | MovVImm { dst, .. }
            | LdTnsrV { dst, .. }
            | LdVlmV { dst, .. }
            | AddV { dst, .. }
            | SubV { dst, .. }
            | MulV { dst, .. }
            | MaxV { dst, .. }
            | MacV { dst, .. }
            | AddVImm { dst, .. }
            | MulVImm { dst, .. }
            | MaxVImm { dst, .. }
            | ExpV { dst, .. }
            | TanhV { dst, .. }
            | LogV { dst, .. }
            | SqrtV { dst, .. }
            | RcpV { dst, .. }
            | SelGtzV { dst, .. } => Some((true, *dst)),
            StTnsrV { .. } | StTnsrS { .. } | StVlmV { .. } | Loop { .. } => None,
        }
    }
}

/// A TPC kernel: a named program over an index space.
///
/// `index_space` has 1–3 dimensions; each member executes the program once
/// with its coordinates pre-loaded into `S0..S2`. Members must write
/// disjoint output regions (the launcher executes them in arbitrary
/// core-order).
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Kernel name, used in traces.
    pub name: String,
    /// Index space extents (1–3 dims).
    pub index_space: Vec<usize>,
    /// The program executed per index-space member.
    pub program: Vec<Instr>,
}

impl Kernel {
    /// Total number of index-space members.
    pub fn members(&self) -> usize {
        self.index_space.iter().product()
    }

    /// Decompose a linear member id into coordinates.
    pub fn member_coords(&self, mut id: usize) -> [usize; 3] {
        let mut coords = [0usize; 3];
        for (i, &dim) in self.index_space.iter().enumerate().rev() {
            coords[i] = id % dim;
            id /= dim;
        }
        coords
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_cover_the_four_functional_units() {
        assert_eq!(
            Instr::LdTnsrV {
                dst: 0,
                tensor: 0,
                off: 0
            }
            .slot(),
            Slot::Load
        );
        assert_eq!(Instr::AddS { dst: 0, a: 0, b: 0 }.slot(), Slot::Spu);
        assert_eq!(Instr::MacV { dst: 0, a: 1, b: 2 }.slot(), Slot::Vpu);
        assert_eq!(
            Instr::StTnsrV {
                tensor: 0,
                off: 0,
                src: 0
            }
            .slot(),
            Slot::Store
        );
    }

    #[test]
    fn global_access_costs_four_cycles() {
        let ld = Instr::LdTnsrV {
            dst: 0,
            tensor: 0,
            off: 0,
        };
        assert_eq!(ld.cycles(4.0, 16.0), 4.0);
        let exp = Instr::ExpV { dst: 0, a: 0 };
        assert_eq!(exp.cycles(4.0, 16.0), 16.0);
        let red = Instr::RedSumV { dst: 0, src: 0 };
        assert_eq!(red.cycles(4.0, 16.0), 6.0);
    }

    #[test]
    fn mac_reads_its_accumulator() {
        let mac = Instr::MacV { dst: 3, a: 1, b: 2 };
        assert!(mac.reads().contains(&(true, 3)));
        assert_eq!(mac.writes(), Some((true, 3)));
    }

    #[test]
    fn member_coords_roundtrip() {
        let k = Kernel {
            name: "t".into(),
            index_space: vec![3, 4, 5],
            program: vec![],
        };
        assert_eq!(k.members(), 60);
        assert_eq!(k.member_coords(0), [0, 0, 0]);
        assert_eq!(k.member_coords(59), [2, 3, 4]);
        assert_eq!(k.member_coords(5), [0, 1, 0]);
    }
}
