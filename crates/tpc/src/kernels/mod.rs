//! Reference TPC kernels written in the kernel IR — the analog of Habana's
//! `Habana_Custom_Kernel` example repository the paper used for its TPC
//! matmul measurements (§3.2).
//!
//! Each function builds the kernel, launches it on the simulated cluster,
//! and returns the numeric output together with cycle counts. Row-structured
//! kernels require the row length to be a multiple of the 64-lane vector
//! width (the natural TPC tile); the builders check this.

pub mod attention;
pub mod elementwise;
pub mod layernorm;
pub mod matmul;
pub mod reduce;
pub mod softmax;

pub use attention::{
    fused_attention_rows, fused_softmax_matmul_rows, unfused_softmax_matmul_cycles,
};
pub use elementwise::{kelu, kexp, kgelu, krelu, kscale_add, ksigmoid, kvec_add, kvec_mul, memset};
pub use layernorm::layernorm_rows;
pub use matmul::{bmm_tpc, bmm_tpc_blocked};
pub use reduce::{row_max, row_sum};
pub use softmax::softmax_rows;

use crate::isa::VECTOR_LANES;

/// Number of 64-lane vectors covering `n` elements.
pub(crate) fn nvec(n: usize) -> usize {
    n.div_ceil(VECTOR_LANES)
}

/// Panic unless `d` is vector-aligned (row kernels tile rows by 64 lanes).
pub(crate) fn require_aligned(d: usize, kernel: &str) {
    assert!(
        d.is_multiple_of(VECTOR_LANES) && d > 0,
        "{kernel}: row length {d} must be a positive multiple of {VECTOR_LANES}"
    );
}

#[cfg(test)]
mod cross_check {
    //! Fidelity cross-check (DESIGN.md §6.4): the VM's cycle counts must
    //! agree with the analytic TPC cost model of `gaudi-hw` within a small
    //! band for the kernel classes the analytic model is calibrated on.

    use super::*;
    use gaudi_hw::config::TpcConfig;
    use gaudi_hw::{TpcCostModel, TpcOpClass};
    use gaudi_tensor::{SeededRng, Tensor};

    fn ratio_vm_over_analytic(vm_ns: f64, analytic_ns: f64) -> f64 {
        vm_ns / analytic_ns
    }

    #[test]
    fn elementwise_kernel_matches_analytic_model() {
        let cfg = TpcConfig::default();
        let model = TpcCostModel::new(cfg.clone());
        let mut rng = SeededRng::new(3);
        let n = 64 * 1024;
        let a = Tensor::randn(&[n], 1.0, &mut rng).unwrap();
        let b = Tensor::randn(&[n], 1.0, &mut rng).unwrap();
        let r = kvec_add(&a, &b, &cfg).unwrap();
        let analytic = model.class_time_ns(TpcOpClass::Elementwise(1.0), n as f64, 12.0 * n as f64);
        let ratio = ratio_vm_over_analytic(r.time_ns, analytic);
        assert!((0.3..3.0).contains(&ratio), "elementwise ratio {ratio}");
    }

    #[test]
    fn softmax_kernel_matches_analytic_model() {
        let cfg = TpcConfig::default();
        let model = TpcCostModel::new(cfg.clone());
        let mut rng = SeededRng::new(4);
        let (rows, d) = (256, 512);
        let x = Tensor::randn(&[rows, d], 1.0, &mut rng).unwrap();
        let r = softmax_rows(&x, &cfg).unwrap();
        let elems = (rows * d) as f64;
        let analytic = model.class_time_ns(TpcOpClass::Softmax, elems, 8.0 * elems);
        let ratio = ratio_vm_over_analytic(r.time_ns, analytic);
        assert!((0.3..3.0).contains(&ratio), "softmax ratio {ratio}");
    }
}
