//! Row-reduction kernels: one index-space member per row.
//!
//! Reductions are the operation class the paper singles out as ill-suited to
//! the TPC's SIMD datapath (§3.3): the horizontal tree at the end of each
//! row serializes, which is visible in these kernels' cycle counts.

use super::require_aligned;
use crate::isa::{Instr::*, Kernel, VECTOR_LANES};
use crate::launch::{launch, Bindings, LaunchError, LaunchResult};
use gaudi_hw::config::TpcConfig;
use gaudi_tensor::Tensor;

fn row_reduce(
    name: &str,
    x: &Tensor,
    init: f32,
    combine: crate::isa::Instr,
    tree: crate::isa::Instr,
    cfg: &TpcConfig,
) -> Result<LaunchResult, LaunchError> {
    let d = x.shape().last_dim();
    require_aligned(d, name);
    let rows = x.shape().rows();
    let trips = d / VECTOR_LANES;
    let program = vec![
        // S4 = row base
        MulSImm {
            dst: 4,
            a: 0,
            imm: d as f32,
        },
        MovVImm { dst: 0, imm: init },
        Loop {
            counter: 6,
            start: 0.0,
            step: VECTOR_LANES as f32,
            trip: trips,
            body: vec![
                AddS { dst: 7, a: 4, b: 6 },
                LdTnsrV {
                    dst: 1,
                    tensor: 0,
                    off: 7,
                },
                combine,
            ],
        },
        tree,
        StTnsrS {
            tensor: 1,
            off: 0,
            src: 8,
        },
    ];
    let kernel = Kernel {
        name: name.into(),
        index_space: vec![rows],
        program,
    };
    launch(
        &kernel,
        &Bindings {
            inputs: vec![x],
            output_dims: vec![rows],
            args: vec![],
        },
        cfg,
    )
}

/// Sum over the last axis: output `[rows]`.
pub fn row_sum(x: &Tensor, cfg: &TpcConfig) -> Result<LaunchResult, LaunchError> {
    row_reduce(
        "row_sum",
        x,
        0.0,
        AddV { dst: 0, a: 0, b: 1 },
        RedSumV { dst: 8, src: 0 },
        cfg,
    )
}

/// Max over the last axis: output `[rows]`.
pub fn row_max(x: &Tensor, cfg: &TpcConfig) -> Result<LaunchResult, LaunchError> {
    row_reduce(
        "row_max",
        x,
        f32::NEG_INFINITY,
        MaxV { dst: 0, a: 0, b: 1 },
        RedMaxV { dst: 8, src: 0 },
        cfg,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaudi_tensor::ops;
    use gaudi_tensor::SeededRng;

    #[test]
    fn row_sum_matches_reference() {
        let mut rng = SeededRng::new(7);
        let x = Tensor::randn(&[16, 128], 1.0, &mut rng).unwrap();
        let r = row_sum(&x, &TpcConfig::default()).unwrap();
        let expect = ops::sum_last_axis(&x, false).unwrap();
        assert!(r.output.max_abs_diff(&expect) < 1e-3);
    }

    #[test]
    fn row_max_matches_reference() {
        let mut rng = SeededRng::new(8);
        let x = Tensor::randn(&[32, 64], 3.0, &mut rng).unwrap();
        let r = row_max(&x, &TpcConfig::default()).unwrap();
        let expect = ops::max_last_axis(&x, false).unwrap();
        assert!(r.output.max_abs_diff(&expect) < 1e-6);
    }

    #[test]
    #[should_panic(expected = "must be a positive multiple")]
    fn misaligned_rows_rejected() {
        let x = Tensor::ones(&[4, 100]).unwrap();
        let _ = row_sum(&x, &TpcConfig::default());
    }

    #[test]
    fn reduction_tree_visible_in_cycles() {
        // Doubling the row length should roughly double the loop cycles but
        // keep the fixed tree cost — so cycles-per-element fall.
        let x1 = Tensor::ones(&[8, 64]).unwrap();
        let x2 = Tensor::ones(&[8, 1024]).unwrap();
        let cfg = TpcConfig::default();
        let r1 = row_sum(&x1, &cfg).unwrap();
        let r2 = row_sum(&x2, &cfg).unwrap();
        let cpe1 = r1.cycles_per_member / 64.0;
        let cpe2 = r2.cycles_per_member / 1024.0;
        assert!(cpe2 < cpe1, "tree cost must amortize: {cpe1} vs {cpe2}");
    }
}
