//! Element-wise kernels: each index-space member handles one 64-lane vector.

use super::nvec;
use crate::isa::{Instr::*, Kernel, VECTOR_LANES};
use crate::launch::{launch, Bindings, LaunchError, LaunchResult};
use gaudi_hw::config::TpcConfig;
use gaudi_tensor::Tensor;

fn vector_offset_prelude() -> Vec<crate::isa::Instr> {
    // S4 = member * 64 (element offset of this member's vector).
    vec![MulSImm {
        dst: 4,
        a: 0,
        imm: VECTOR_LANES as f32,
    }]
}

/// Fill a tensor with a constant.
pub fn memset(dims: &[usize], value: f32, cfg: &TpcConfig) -> Result<LaunchResult, LaunchError> {
    let n: usize = dims.iter().product();
    let mut program = vector_offset_prelude();
    program.extend([
        MovVImm { dst: 0, imm: value },
        StTnsrV {
            tensor: 0,
            off: 4,
            src: 0,
        },
    ]);
    let kernel = Kernel {
        name: "memset".into(),
        index_space: vec![nvec(n)],
        program,
    };
    launch(
        &kernel,
        &Bindings {
            inputs: vec![],
            output_dims: dims.to_vec(),
            args: vec![],
        },
        cfg,
    )
}

fn unary(
    name: &str,
    x: &Tensor,
    body: Vec<crate::isa::Instr>,
    cfg: &TpcConfig,
) -> Result<LaunchResult, LaunchError> {
    let mut program = vector_offset_prelude();
    program.push(LdTnsrV {
        dst: 0,
        tensor: 0,
        off: 4,
    });
    program.extend(body); // transforms V0 -> V1
    program.push(StTnsrV {
        tensor: 1,
        off: 4,
        src: 1,
    });
    let kernel = Kernel {
        name: name.into(),
        index_space: vec![nvec(x.numel())],
        program,
    };
    launch(
        &kernel,
        &Bindings {
            inputs: vec![x],
            output_dims: x.dims().to_vec(),
            args: vec![],
        },
        cfg,
    )
}

/// `y = mul * x + add`.
pub fn kscale_add(
    x: &Tensor,
    mul: f32,
    add: f32,
    cfg: &TpcConfig,
) -> Result<LaunchResult, LaunchError> {
    unary(
        "scale_add",
        x,
        vec![
            MulVImm {
                dst: 1,
                a: 0,
                imm: mul,
            },
            AddVImm {
                dst: 1,
                a: 1,
                imm: add,
            },
        ],
        cfg,
    )
}

/// Rectified linear unit.
pub fn krelu(x: &Tensor, cfg: &TpcConfig) -> Result<LaunchResult, LaunchError> {
    unary(
        "relu",
        x,
        vec![MaxVImm {
            dst: 1,
            a: 0,
            imm: 0.0,
        }],
        cfg,
    )
}

/// Element-wise exponential (the Performer/softmax special function).
pub fn kexp(x: &Tensor, cfg: &TpcConfig) -> Result<LaunchResult, LaunchError> {
    unary("exp", x, vec![ExpV { dst: 1, a: 0 }], cfg)
}

/// GELU (tanh approximation), exercising the TanhV special function:
/// `0.5 x (1 + tanh(sqrt(2/pi) (x + 0.044715 x^3)))`.
pub fn kgelu(x: &Tensor, cfg: &TpcConfig) -> Result<LaunchResult, LaunchError> {
    const C: f32 = 0.797_884_6;
    unary(
        "gelu",
        x,
        vec![
            // V2 = x^3 * 0.044715 + x
            MulV { dst: 2, a: 0, b: 0 },
            MulV { dst: 2, a: 2, b: 0 },
            MulVImm {
                dst: 2,
                a: 2,
                imm: 0.044_715,
            },
            AddV { dst: 2, a: 2, b: 0 },
            MulVImm {
                dst: 2,
                a: 2,
                imm: C,
            },
            TanhV { dst: 2, a: 2 },
            AddVImm {
                dst: 2,
                a: 2,
                imm: 1.0,
            },
            MulV { dst: 1, a: 2, b: 0 },
            MulVImm {
                dst: 1,
                a: 1,
                imm: 0.5,
            },
        ],
        cfg,
    )
}

/// Logistic sigmoid via the reciprocal special function:
/// `1 / (1 + exp(-x))`.
pub fn ksigmoid(x: &Tensor, cfg: &TpcConfig) -> Result<LaunchResult, LaunchError> {
    unary(
        "sigmoid",
        x,
        vec![
            MulVImm {
                dst: 2,
                a: 0,
                imm: -1.0,
            },
            ExpV { dst: 2, a: 2 },
            AddVImm {
                dst: 2,
                a: 2,
                imm: 1.0,
            },
            RcpV { dst: 1, a: 2 },
        ],
        cfg,
    )
}

/// ELU (alpha = 1) via select: `x > 0 ? x : exp(x) - 1`.
pub fn kelu(x: &Tensor, cfg: &TpcConfig) -> Result<LaunchResult, LaunchError> {
    unary(
        "elu",
        x,
        vec![
            ExpV { dst: 2, a: 0 },
            AddVImm {
                dst: 2,
                a: 2,
                imm: -1.0,
            },
            SelGtzV {
                dst: 1,
                cond: 0,
                a: 0,
                b: 2,
            },
        ],
        cfg,
    )
}

fn binary(
    name: &str,
    a: &Tensor,
    b: &Tensor,
    op: crate::isa::Instr,
    cfg: &TpcConfig,
) -> Result<LaunchResult, LaunchError> {
    assert_eq!(a.dims(), b.dims(), "{name}: operand shapes must match");
    let mut program = vector_offset_prelude();
    program.extend([
        LdTnsrV {
            dst: 0,
            tensor: 0,
            off: 4,
        },
        LdTnsrV {
            dst: 1,
            tensor: 1,
            off: 4,
        },
        op,
        StTnsrV {
            tensor: 2,
            off: 4,
            src: 2,
        },
    ]);
    let kernel = Kernel {
        name: name.into(),
        index_space: vec![nvec(a.numel())],
        program,
    };
    launch(
        &kernel,
        &Bindings {
            inputs: vec![a, b],
            output_dims: a.dims().to_vec(),
            args: vec![],
        },
        cfg,
    )
}

/// Element-wise sum.
pub fn kvec_add(a: &Tensor, b: &Tensor, cfg: &TpcConfig) -> Result<LaunchResult, LaunchError> {
    binary("vec_add", a, b, AddV { dst: 2, a: 0, b: 1 }, cfg)
}

/// Element-wise product (`torch.mul`).
pub fn kvec_mul(a: &Tensor, b: &Tensor, cfg: &TpcConfig) -> Result<LaunchResult, LaunchError> {
    binary("vec_mul", a, b, MulV { dst: 2, a: 0, b: 1 }, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaudi_tensor::ops;
    use gaudi_tensor::SeededRng;

    fn cfg() -> TpcConfig {
        TpcConfig::default()
    }

    #[test]
    fn memset_fills_exactly() {
        let r = memset(&[3, 50], 2.5, &cfg()).unwrap();
        assert_eq!(r.output.dims(), &[3, 50]);
        assert!(r.output.data().iter().all(|&v| v == 2.5));
    }

    #[test]
    fn scale_add_matches_reference() {
        let mut rng = SeededRng::new(1);
        let x = Tensor::randn(&[777], 1.0, &mut rng).unwrap();
        let r = kscale_add(&x, 3.0, -1.0, &cfg()).unwrap();
        let expect = ops::scalar_add(&ops::scalar_mul(&x, 3.0), -1.0);
        assert!(r.output.max_abs_diff(&expect) < 1e-6);
    }

    #[test]
    fn relu_matches_reference() {
        let mut rng = SeededRng::new(2);
        let x = Tensor::randn(&[1000], 2.0, &mut rng).unwrap();
        let r = krelu(&x, &cfg()).unwrap();
        assert!(r.output.max_abs_diff(&ops::relu(&x)) < 1e-7);
    }

    #[test]
    fn exp_matches_reference() {
        let mut rng = SeededRng::new(3);
        let x = Tensor::randn(&[320], 1.0, &mut rng).unwrap();
        let r = kexp(&x, &cfg()).unwrap();
        assert!(r.output.max_abs_diff(&ops::exp(&x)) < 1e-5);
    }

    #[test]
    fn sigmoid_and_elu_match_reference() {
        let mut rng = SeededRng::new(6);
        let x = Tensor::randn(&[400], 2.0, &mut rng).unwrap();
        let s = ksigmoid(&x, &cfg()).unwrap();
        assert!(s.output.max_abs_diff(&ops::sigmoid(&x)) < 1e-5);
        let e = kelu(&x, &cfg()).unwrap();
        assert!(e.output.max_abs_diff(&ops::elu(&x)) < 1e-5);
    }

    #[test]
    fn gelu_matches_reference() {
        let mut rng = SeededRng::new(5);
        let x = Tensor::randn(&[512], 1.5, &mut rng).unwrap();
        let r = kgelu(&x, &cfg()).unwrap();
        assert!(r.output.max_abs_diff(&ops::gelu(&x)) < 1e-4);
        // TanhV makes GELU pricier per vector than ReLU.
        let relu = krelu(&x, &cfg()).unwrap();
        assert!(r.cycles_per_member > relu.cycles_per_member);
    }

    #[test]
    fn add_and_mul_match_reference() {
        let mut rng = SeededRng::new(4);
        let a = Tensor::randn(&[4, 100], 1.0, &mut rng).unwrap();
        let b = Tensor::randn(&[4, 100], 1.0, &mut rng).unwrap();
        let r = kvec_add(&a, &b, &cfg()).unwrap();
        assert!(r.output.max_abs_diff(&ops::add(&a, &b).unwrap()) < 1e-6);
        let r = kvec_mul(&a, &b, &cfg()).unwrap();
        assert!(r.output.max_abs_diff(&ops::mul(&a, &b).unwrap()) < 1e-6);
    }

    #[test]
    fn non_aligned_tails_are_handled() {
        // 65 elements: second vector covers one element + 63 padded lanes.
        let x = Tensor::ones(&[65]).unwrap();
        let r = kscale_add(&x, 2.0, 0.0, &cfg()).unwrap();
        assert!(r.output.data().iter().all(|&v| v == 2.0));
        assert_eq!(r.output.numel(), 65);
    }

    #[test]
    fn cycle_count_scales_with_members() {
        let x64 = Tensor::ones(&[64]).unwrap();
        let x4096 = Tensor::ones(&[64 * 64]).unwrap();
        let r1 = krelu(&x64, &cfg()).unwrap();
        let r2 = krelu(&x4096, &cfg()).unwrap();
        // 64 members over 8 cores = 8 members per core.
        assert_eq!(r2.critical_cycles, 8.0 * r1.critical_cycles);
    }
}
