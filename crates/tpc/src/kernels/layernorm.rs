//! Row layer-normalization kernel: two reduction passes plus a normalize
//! pass with learned scale/shift.

use super::require_aligned;
use crate::isa::{Instr::*, Kernel, VECTOR_LANES};
use crate::launch::{launch, Bindings, LaunchError, LaunchResult};
use gaudi_hw::config::TpcConfig;
use gaudi_tensor::Tensor;

/// Layer normalization over the last axis with scale `gamma` and shift
/// `beta` (both `[d]`, `d` 64-aligned).
pub fn layernorm_rows(
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    eps: f32,
    cfg: &TpcConfig,
) -> Result<LaunchResult, LaunchError> {
    let d = x.shape().last_dim();
    require_aligned(d, "layernorm_rows");
    assert_eq!(gamma.numel(), d, "gamma must have row length");
    assert_eq!(beta.numel(), d, "beta must have row length");
    let rows = x.shape().rows();
    let trips = d / VECTOR_LANES;
    let step = VECTOR_LANES as f32;
    let inv_d = 1.0 / d as f32;

    let program = vec![
        MulSImm {
            dst: 4,
            a: 0,
            imm: d as f32,
        }, // row base
        // ---- pass 1: mean ----
        MovVImm { dst: 0, imm: 0.0 },
        Loop {
            counter: 6,
            start: 0.0,
            step,
            trip: trips,
            body: vec![
                AddS { dst: 7, a: 4, b: 6 },
                LdTnsrV {
                    dst: 1,
                    tensor: 0,
                    off: 7,
                },
                AddV { dst: 0, a: 0, b: 1 },
            ],
        },
        RedSumV { dst: 8, src: 0 },
        MulSImm {
            dst: 8,
            a: 8,
            imm: inv_d,
        }, // mean
        BcastV { dst: 2, src: 8 },
        // ---- pass 2: variance ----
        MovVImm { dst: 3, imm: 0.0 },
        Loop {
            counter: 6,
            start: 0.0,
            step,
            trip: trips,
            body: vec![
                AddS { dst: 7, a: 4, b: 6 },
                LdTnsrV {
                    dst: 1,
                    tensor: 0,
                    off: 7,
                },
                SubV { dst: 1, a: 1, b: 2 },
                MulV { dst: 1, a: 1, b: 1 },
                AddV { dst: 3, a: 3, b: 1 },
            ],
        },
        RedSumV { dst: 9, src: 3 },
        MulSImm {
            dst: 9,
            a: 9,
            imm: inv_d,
        },
        AddSImm {
            dst: 9,
            a: 9,
            imm: eps,
        },
        BcastV { dst: 4, src: 9 },
        SqrtV { dst: 4, a: 4 },
        RcpV { dst: 4, a: 4 }, // 1/sqrt(var+eps)
        // ---- pass 3: normalize, scale, shift ----
        Loop {
            counter: 6,
            start: 0.0,
            step,
            trip: trips,
            body: vec![
                AddS { dst: 7, a: 4, b: 6 },
                LdTnsrV {
                    dst: 1,
                    tensor: 0,
                    off: 7,
                },
                SubV { dst: 1, a: 1, b: 2 },
                MulV { dst: 1, a: 1, b: 4 },
                LdTnsrV {
                    dst: 5,
                    tensor: 1,
                    off: 6,
                }, // gamma[j]
                MulV { dst: 1, a: 1, b: 5 },
                LdTnsrV {
                    dst: 6,
                    tensor: 2,
                    off: 6,
                }, // beta[j]
                AddV { dst: 1, a: 1, b: 6 },
                StTnsrV {
                    tensor: 3,
                    off: 7,
                    src: 1,
                },
            ],
        },
    ];
    let kernel = Kernel {
        name: "layernorm".into(),
        index_space: vec![rows],
        program,
    };
    launch(
        &kernel,
        &Bindings {
            inputs: vec![x, gamma, beta],
            output_dims: x.dims().to_vec(),
            args: vec![],
        },
        cfg,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaudi_tensor::ops;
    use gaudi_tensor::SeededRng;

    #[test]
    fn matches_reference_layernorm() {
        let mut rng = SeededRng::new(31);
        let x = Tensor::randn(&[10, 128], 2.0, &mut rng).unwrap();
        let gamma = Tensor::randn(&[128], 1.0, &mut rng).unwrap();
        let beta = Tensor::randn(&[128], 1.0, &mut rng).unwrap();
        let r = layernorm_rows(&x, &gamma, &beta, 1e-5, &TpcConfig::default()).unwrap();
        let expect = ops::layernorm_last_axis(&x, &gamma, &beta, 1e-5).unwrap();
        assert!(r.output.max_abs_diff(&expect) < 1e-3);
    }

    #[test]
    fn unit_gamma_zero_beta_standardizes() {
        let mut rng = SeededRng::new(32);
        let x = Tensor::randn(&[4, 64], 7.0, &mut rng).unwrap();
        let gamma = Tensor::ones(&[64]).unwrap();
        let beta = Tensor::zeros(&[64]).unwrap();
        let r = layernorm_rows(&x, &gamma, &beta, 1e-6, &TpcConfig::default()).unwrap();
        let mean = ops::mean_last_axis(&r.output, false).unwrap();
        for &m in mean.data() {
            assert!(m.abs() < 1e-4);
        }
    }

    #[test]
    fn cheaper_than_softmax_per_element() {
        // LayerNorm has no exp: its per-element cost must undercut softmax.
        let cfg = TpcConfig::default();
        let mut rng = SeededRng::new(33);
        let x = Tensor::randn(&[16, 256], 1.0, &mut rng).unwrap();
        let gamma = Tensor::ones(&[256]).unwrap();
        let beta = Tensor::zeros(&[256]).unwrap();
        let ln = layernorm_rows(&x, &gamma, &beta, 1e-5, &cfg).unwrap();
        let sm = crate::kernels::softmax_rows(&x, &cfg).unwrap();
        assert!(ln.critical_cycles < sm.critical_cycles);
    }
}
