//! The three-pass numerically-stable softmax kernel — the operation the
//! paper identifies as consuming >80% of TPC time in long-sequence
//! Transformer layers (Figure 4).

use super::require_aligned;
use crate::isa::{Instr::*, Kernel, VECTOR_LANES};
use crate::launch::{launch, Bindings, LaunchError, LaunchResult};
use gaudi_hw::config::TpcConfig;
use gaudi_tensor::Tensor;

/// Softmax over the last axis (row length must be 64-aligned).
pub fn softmax_rows(x: &Tensor, cfg: &TpcConfig) -> Result<LaunchResult, LaunchError> {
    let d = x.shape().last_dim();
    require_aligned(d, "softmax_rows");
    let rows = x.shape().rows();
    let trips = d / VECTOR_LANES;
    let step = VECTOR_LANES as f32;

    let program = vec![
        MulSImm {
            dst: 4,
            a: 0,
            imm: d as f32,
        }, // row base
        // ---- pass 1: running max ----
        MovVImm {
            dst: 0,
            imm: f32::NEG_INFINITY,
        },
        Loop {
            counter: 6,
            start: 0.0,
            step,
            trip: trips,
            body: vec![
                AddS { dst: 7, a: 4, b: 6 },
                LdTnsrV {
                    dst: 1,
                    tensor: 0,
                    off: 7,
                },
                MaxV { dst: 0, a: 0, b: 1 },
            ],
        },
        RedMaxV { dst: 8, src: 0 },
        BcastV { dst: 2, src: 8 },
        // ---- pass 2: exp(x - max), accumulate sum, store raw exps ----
        MovVImm { dst: 3, imm: 0.0 },
        Loop {
            counter: 6,
            start: 0.0,
            step,
            trip: trips,
            body: vec![
                AddS { dst: 7, a: 4, b: 6 },
                LdTnsrV {
                    dst: 1,
                    tensor: 0,
                    off: 7,
                },
                SubV { dst: 1, a: 1, b: 2 },
                ExpV { dst: 1, a: 1 },
                AddV { dst: 3, a: 3, b: 1 },
                StTnsrV {
                    tensor: 1,
                    off: 7,
                    src: 1,
                },
            ],
        },
        RedSumV { dst: 9, src: 3 },
        RcpS { dst: 9, a: 9 },
        BcastV { dst: 4, src: 9 },
        // ---- pass 3: normalize in place ----
        Loop {
            counter: 6,
            start: 0.0,
            step,
            trip: trips,
            body: vec![
                AddS { dst: 7, a: 4, b: 6 },
                LdTnsrV {
                    dst: 1,
                    tensor: 1,
                    off: 7,
                },
                MulV { dst: 1, a: 1, b: 4 },
                StTnsrV {
                    tensor: 1,
                    off: 7,
                    src: 1,
                },
            ],
        },
    ];
    let kernel = Kernel {
        name: "softmax".into(),
        index_space: vec![rows],
        program,
    };
    launch(
        &kernel,
        &Bindings {
            inputs: vec![x],
            output_dims: x.dims().to_vec(),
            args: vec![],
        },
        cfg,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaudi_tensor::ops;
    use gaudi_tensor::SeededRng;

    #[test]
    fn matches_reference_softmax() {
        let mut rng = SeededRng::new(11);
        let x = Tensor::randn(&[12, 256], 2.0, &mut rng).unwrap();
        let r = softmax_rows(&x, &TpcConfig::default()).unwrap();
        let expect = ops::softmax_last_axis(&x).unwrap();
        assert!(r.output.max_abs_diff(&expect) < 1e-5);
    }

    #[test]
    fn rows_sum_to_one() {
        let mut rng = SeededRng::new(12);
        let x = Tensor::randn(&[9, 128], 5.0, &mut rng).unwrap();
        let r = softmax_rows(&x, &TpcConfig::default()).unwrap();
        let sums = ops::sum_last_axis(&r.output, false).unwrap();
        for &s in sums.data() {
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn stable_for_large_logits() {
        let x = Tensor::from_vec(&[1, 64], (0..64).map(|i| 500.0 + i as f32).collect()).unwrap();
        let r = softmax_rows(&x, &TpcConfig::default()).unwrap();
        assert!(r.output.all_finite());
    }

    #[test]
    fn quadratic_growth_with_sequence_length() {
        // Softmax over an [N, N] score matrix: doubling N must roughly
        // quadruple the cycle count — the O(N^2) wall the paper hits.
        let cfg = TpcConfig::default();
        let a = Tensor::ones(&[128, 128]).unwrap();
        let b = Tensor::ones(&[256, 256]).unwrap();
        let ra = softmax_rows(&a, &cfg).unwrap();
        let rb = softmax_rows(&b, &cfg).unwrap();
        let ratio = rb.critical_cycles / ra.critical_cycles;
        assert!((3.0..5.0).contains(&ratio), "ratio={ratio}");
    }
}
