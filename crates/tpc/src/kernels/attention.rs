//! Tiled FlashAttention-style fused attention and fused softmax-matmul.
//!
//! The Fig. 4 trace shows why these kernels exist: softmax attention
//! round-trips an `S×S` score matrix through HBM three times (scores out,
//! softmax in/out, probabilities back in for the `P·V` matmul), and the MME
//! sits idle while the memory-bound TPC passes grind. The fused kernels
//! below keep every intermediate in the 80 KB vector local memory:
//!
//! * [`fused_attention_rows`] computes `softmax(scale·Q Kᵀ [+ mask]) · V`
//!   with one index-space member per query row, looping over KV tiles of 64
//!   keys with **online softmax** — running row max `m` and normalizer `l`
//!   are carried across tiles, the output accumulator is rescaled by
//!   `exp(m_prev − m_next)` whenever the max moves, and the score tile
//!   lives only in registers/local memory. No `S×S` buffer ever reaches
//!   global memory.
//! * [`fused_softmax_matmul_rows`] fuses a row softmax directly into the
//!   following matmul: the probability row is staged in local memory and
//!   consumed by the `P·V` accumulation at 1-cycle local-load cost, instead
//!   of being written to HBM and re-read scalar-by-scalar at 4 cycles.
//!
//! Both return the usual [`LaunchResult`] so callers can compare cycle
//! counts against the unfused `softmax_rows` + `bmm_tpc` pipeline.

use super::require_aligned;
use crate::isa::{Instr::*, Kernel, VECTOR_LANES};
use crate::launch::{launch, Bindings, LaunchError, LaunchResult};
use crate::vm::VLM_ELEMS;
use gaudi_hw::config::TpcConfig;
use gaudi_tensor::Tensor;

/// Fused scaled-dot-product attention over `q [B, N, D]`, `k/v [B, M, Dv]`
/// (with `k [B, M, D]`), and an optional additive `mask [N, M]` shared
/// across the batch. Returns `softmax(scale · q kᵀ [+ mask]) · v` of shape
/// `[B, N, Dv]`.
///
/// One index-space member owns one query row: it stages its Q row and the
/// output accumulator in vector local memory, then walks the keys in
/// 64-wide tiles carrying the online-softmax running max/sum. `D`, `Dv`,
/// and `M` must be 64-aligned; `D + Dv + 64` must fit local memory.
///
/// K is read in transposed order (the launcher stages `kᵀ` as the
/// stationary operand, the same layout choice the MME makes); the global
/// access count is unchanged, and — unlike the unfused pipeline — the
/// `N×M` score matrix never touches global memory at all.
pub fn fused_attention_rows(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    mask: Option<&Tensor>,
    scale: f32,
    cfg: &TpcConfig,
) -> Result<LaunchResult, LaunchError> {
    assert_eq!(q.shape().rank(), 3, "fused_attention expects rank-3 q");
    assert_eq!(k.shape().rank(), 3, "fused_attention expects rank-3 k");
    assert_eq!(v.shape().rank(), 3, "fused_attention expects rank-3 v");
    let (batch, n, d) = (q.dims()[0], q.dims()[1], q.dims()[2]);
    let (kb, m, kd) = (k.dims()[0], k.dims()[1], k.dims()[2]);
    let (vb, vm, dv) = (v.dims()[0], v.dims()[1], v.dims()[2]);
    assert_eq!(batch, kb, "batch mismatch");
    assert_eq!(batch, vb, "batch mismatch");
    assert_eq!(d, kd, "head-dim mismatch");
    assert_eq!(m, vm, "key/value row mismatch");
    require_aligned(d, "fused_attention (d)");
    require_aligned(dv, "fused_attention (dv)");
    require_aligned(m, "fused_attention (m)");
    assert!(
        d + dv + VECTOR_LANES <= VLM_ELEMS,
        "q row + accumulator + score tile must fit vector local memory"
    );
    if let Some(mk) = mask {
        assert_eq!(mk.dims(), [n, m], "mask must be [n, m]");
    }

    // The kernel reads K feature-major so a key tile is one vector load.
    let kt = k.transpose_last2().map_err(LaunchError::Shape)?;

    let ktiles = m / VECTOR_LANES;
    let dtrips = d / VECTOR_LANES;
    let dvtrips = dv / VECTOR_LANES;
    let step = VECTOR_LANES as f32;
    // VLM layout: [0, d) q row | [d, d+dv) accumulator | [d+dv, ..) p tile.
    let scores_base = (d + dv) as f32;
    let out_slot = if mask.is_some() { 4 } else { 3 };

    let mut program = vec![
        // S4 = q row base = (b*n + i)*d
        MulSImm {
            dst: 4,
            a: 0,
            imm: n as f32,
        },
        AddS { dst: 4, a: 4, b: 1 },
        MulSImm {
            dst: 4,
            a: 4,
            imm: d as f32,
        },
        // S5 = kt base = b*d*m, S22 = v base = b*m*dv
        MulSImm {
            dst: 5,
            a: 0,
            imm: (d * m) as f32,
        },
        MulSImm {
            dst: 22,
            a: 0,
            imm: (m * dv) as f32,
        },
        // S25 = mask row base = i*m (dead if unmasked), S26 = p-tile base.
        MulSImm {
            dst: 25,
            a: 1,
            imm: m as f32,
        },
        MovSImm {
            dst: 26,
            imm: scores_base,
        },
        // Stage the Q row into local memory.
        Loop {
            counter: 7,
            start: 0.0,
            step,
            trip: dtrips,
            body: vec![
                AddS { dst: 9, a: 4, b: 7 },
                LdTnsrV {
                    dst: 2,
                    tensor: 0,
                    off: 9,
                },
                StVlmV { addr: 7, src: 2 },
            ],
        },
        // Zero the output accumulator.
        MovVImm { dst: 6, imm: 0.0 },
        Loop {
            counter: 8,
            start: d as f32,
            step,
            trip: dvtrips,
            body: vec![StVlmV { addr: 8, src: 6 }],
        },
        // Online-softmax carries: S20 = running max, S21 = running sum.
        MovSImm {
            dst: 20,
            imm: f32::NEG_INFINITY,
        },
        MovSImm { dst: 21, imm: 0.0 },
    ];

    // The KV tile loop.
    let mut tile_body = vec![
        // Score tile: V0[j] = q · k_(tile+j), accumulated feature-by-feature.
        MovVImm { dst: 0, imm: 0.0 },
        Loop {
            counter: 7, // kk: feature index
            start: 0.0,
            step: 1.0,
            trip: d,
            body: vec![
                LdVlmS { dst: 10, addr: 7 },
                BcastV { dst: 1, src: 10 },
                MulSImm {
                    dst: 11,
                    a: 7,
                    imm: m as f32,
                },
                AddS {
                    dst: 11,
                    a: 11,
                    b: 5,
                },
                AddS {
                    dst: 11,
                    a: 11,
                    b: 6,
                },
                LdTnsrV {
                    dst: 2,
                    tensor: 1,
                    off: 11,
                },
                MacV { dst: 0, a: 1, b: 2 },
            ],
        },
        MulVImm {
            dst: 0,
            a: 0,
            imm: scale,
        },
    ];
    if mask.is_some() {
        tile_body.extend([
            AddS {
                dst: 18,
                a: 25,
                b: 6,
            },
            LdTnsrV {
                dst: 3,
                tensor: 3,
                off: 18,
            },
            AddV { dst: 0, a: 0, b: 3 },
        ]);
    }
    tile_body.extend([
        // m_next = max(m_prev, tile max); p = exp(s - m_next).
        RedMaxV { dst: 12, src: 0 },
        MaxS {
            dst: 13,
            a: 20,
            b: 12,
        },
        BcastV { dst: 4, src: 13 },
        SubV { dst: 0, a: 0, b: 4 },
        ExpV { dst: 0, a: 0 },
        StVlmV { addr: 26, src: 0 },
        RedSumV { dst: 14, src: 0 },
        // alpha = exp(m_prev - m_next); l = alpha*l + sum(p).
        SubS {
            dst: 15,
            a: 20,
            b: 13,
        },
        BcastV { dst: 5, src: 15 },
        ExpV { dst: 5, a: 5 },
        RedMaxV { dst: 15, src: 5 },
        MulS {
            dst: 21,
            a: 21,
            b: 15,
        },
        AddS {
            dst: 21,
            a: 21,
            b: 14,
        },
        MovSS { dst: 20, src: 13 },
        // Rescale the accumulator by alpha and fold in this tile's P·V.
        Loop {
            counter: 8, // jd: output feature chunk
            start: 0.0,
            step,
            trip: dvtrips,
            body: vec![
                AddSImm {
                    dst: 16,
                    a: 8,
                    imm: d as f32,
                },
                LdVlmV { dst: 6, addr: 16 },
                MulV { dst: 6, a: 6, b: 5 },
                Loop {
                    counter: 9, // j: key within the tile
                    start: 0.0,
                    step: 1.0,
                    trip: VECTOR_LANES,
                    body: vec![
                        AddS {
                            dst: 18,
                            a: 26,
                            b: 9,
                        },
                        LdVlmS { dst: 17, addr: 18 },
                        BcastV { dst: 7, src: 17 },
                        AddS {
                            dst: 19,
                            a: 6,
                            b: 9,
                        },
                        MulSImm {
                            dst: 19,
                            a: 19,
                            imm: dv as f32,
                        },
                        AddS {
                            dst: 19,
                            a: 19,
                            b: 22,
                        },
                        AddS {
                            dst: 19,
                            a: 19,
                            b: 8,
                        },
                        LdTnsrV {
                            dst: 8,
                            tensor: 2,
                            off: 19,
                        },
                        MacV { dst: 6, a: 7, b: 8 },
                    ],
                },
                StVlmV { addr: 16, src: 6 },
            ],
        },
    ]);
    program.push(Loop {
        counter: 6, // KV tile offset, in key units
        start: 0.0,
        step,
        trip: ktiles,
        body: tile_body,
    });

    // Finalize: out row = acc / l.
    program.extend([
        RcpS { dst: 23, a: 21 },
        BcastV { dst: 9, src: 23 },
        MulSImm {
            dst: 24,
            a: 0,
            imm: n as f32,
        },
        AddS {
            dst: 24,
            a: 24,
            b: 1,
        },
        MulSImm {
            dst: 24,
            a: 24,
            imm: dv as f32,
        },
        Loop {
            counter: 8,
            start: 0.0,
            step,
            trip: dvtrips,
            body: vec![
                AddSImm {
                    dst: 16,
                    a: 8,
                    imm: d as f32,
                },
                LdVlmV { dst: 6, addr: 16 },
                MulV { dst: 6, a: 6, b: 9 },
                AddS {
                    dst: 17,
                    a: 24,
                    b: 8,
                },
                StTnsrV {
                    tensor: out_slot,
                    off: 17,
                    src: 6,
                },
            ],
        },
    ]);

    let kernel = Kernel {
        name: "fused_attention".into(),
        index_space: vec![batch, n],
        program,
    };
    let mut inputs = vec![q, &kt, v];
    if let Some(mk) = mask {
        inputs.push(mk);
    }
    launch(
        &kernel,
        &Bindings {
            inputs,
            output_dims: vec![batch, n, dv],
            args: vec![],
        },
        cfg,
    )
}

/// Fused `softmax(x) · v` for `x [B, N, M]`, `v [B, M, Dv]` → `[B, N, Dv]`.
///
/// One member per output row: the row softmax is computed with the usual
/// max/exp/sum passes but the probability row is *staged in local memory*
/// and consumed by the matmul at 1-cycle loads — it never round-trips
/// through global memory the way `softmax_rows` + `bmm_tpc` forces.
/// `M` and `Dv` must be 64-aligned and `M` must fit local memory.
pub fn fused_softmax_matmul_rows(
    x: &Tensor,
    v: &Tensor,
    cfg: &TpcConfig,
) -> Result<LaunchResult, LaunchError> {
    assert_eq!(x.shape().rank(), 3, "fused_softmax_matmul expects rank-3 x");
    assert_eq!(v.shape().rank(), 3, "fused_softmax_matmul expects rank-3 v");
    let (batch, n, m) = (x.dims()[0], x.dims()[1], x.dims()[2]);
    let (vb, vm, dv) = (v.dims()[0], v.dims()[1], v.dims()[2]);
    assert_eq!(batch, vb, "batch mismatch");
    assert_eq!(m, vm, "inner-dim mismatch");
    require_aligned(m, "fused_softmax_matmul (m)");
    require_aligned(dv, "fused_softmax_matmul (dv)");
    assert!(m <= VLM_ELEMS, "probability row must fit local memory");

    let mtrips = m / VECTOR_LANES;
    let dvtrips = dv / VECTOR_LANES;
    let step = VECTOR_LANES as f32;

    let program = vec![
        // S4 = x row base, S22 = v base, S24 = out row base.
        MulSImm {
            dst: 4,
            a: 0,
            imm: n as f32,
        },
        AddS { dst: 4, a: 4, b: 1 },
        MulSImm {
            dst: 24,
            a: 4,
            imm: dv as f32,
        },
        MulSImm {
            dst: 4,
            a: 4,
            imm: m as f32,
        },
        MulSImm {
            dst: 22,
            a: 0,
            imm: (m * dv) as f32,
        },
        // Pass 1: row max.
        MovVImm {
            dst: 0,
            imm: f32::NEG_INFINITY,
        },
        Loop {
            counter: 6,
            start: 0.0,
            step,
            trip: mtrips,
            body: vec![
                AddS { dst: 7, a: 4, b: 6 },
                LdTnsrV {
                    dst: 1,
                    tensor: 0,
                    off: 7,
                },
                MaxV { dst: 0, a: 0, b: 1 },
            ],
        },
        RedMaxV { dst: 12, src: 0 },
        BcastV { dst: 2, src: 12 },
        // Pass 2: exp(x - max) staged into local memory, sum accumulated.
        MovVImm { dst: 3, imm: 0.0 },
        Loop {
            counter: 6,
            start: 0.0,
            step,
            trip: mtrips,
            body: vec![
                AddS { dst: 7, a: 4, b: 6 },
                LdTnsrV {
                    dst: 1,
                    tensor: 0,
                    off: 7,
                },
                SubV { dst: 1, a: 1, b: 2 },
                ExpV { dst: 1, a: 1 },
                AddV { dst: 3, a: 3, b: 1 },
                StVlmV { addr: 6, src: 1 },
            ],
        },
        RedSumV { dst: 9, src: 3 },
        RcpS { dst: 9, a: 9 },
        BcastV { dst: 4, src: 9 },
        // Pass 3: P·V straight out of local memory.
        Loop {
            counter: 8, // jd: output feature chunk
            start: 0.0,
            step,
            trip: dvtrips,
            body: vec![
                MovVImm { dst: 6, imm: 0.0 },
                Loop {
                    counter: 10, // j: key index
                    start: 0.0,
                    step: 1.0,
                    trip: m,
                    body: vec![
                        LdVlmS { dst: 11, addr: 10 },
                        BcastV { dst: 7, src: 11 },
                        MulSImm {
                            dst: 13,
                            a: 10,
                            imm: dv as f32,
                        },
                        AddS {
                            dst: 13,
                            a: 13,
                            b: 22,
                        },
                        AddS {
                            dst: 13,
                            a: 13,
                            b: 8,
                        },
                        LdTnsrV {
                            dst: 8,
                            tensor: 1,
                            off: 13,
                        },
                        MacV { dst: 6, a: 7, b: 8 },
                    ],
                },
                MulV { dst: 6, a: 6, b: 4 },
                AddS {
                    dst: 14,
                    a: 24,
                    b: 8,
                },
                StTnsrV {
                    tensor: 2,
                    off: 14,
                    src: 6,
                },
            ],
        },
    ];
    let kernel = Kernel {
        name: "fused_softmax_matmul".into(),
        index_space: vec![batch, n],
        program,
    };
    launch(
        &kernel,
        &Bindings {
            inputs: vec![x, v],
            output_dims: vec![batch, n, dv],
            args: vec![],
        },
        cfg,
    )
}

/// Cycle count of the *unfused* reference pipeline for the same shapes:
/// `softmax_rows` over the scores plus `bmm_tpc` for `P·V` — the two
/// launches the fused kernel replaces (score GEMM excluded; the MME owns
/// it in both configurations).
pub fn unfused_softmax_matmul_cycles(
    x: &Tensor,
    v: &Tensor,
    cfg: &TpcConfig,
) -> Result<(Tensor, f64), LaunchError> {
    let sm = super::softmax_rows(x, cfg)?;
    let pv = super::bmm_tpc(&sm.output, v, cfg)?;
    Ok((pv.output, sm.critical_cycles + pv.critical_cycles))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaudi_tensor::{ops, SeededRng};

    fn reference_attention(
        q: &Tensor,
        k: &Tensor,
        v: &Tensor,
        mask: Option<&Tensor>,
        scale: f32,
    ) -> Tensor {
        let kt = k.transpose_last2().unwrap();
        let scores = ops::bmm(q, &kt).unwrap();
        let mut scaled = ops::scalar_mul(&scores, scale);
        if let Some(m) = mask {
            scaled = ops::add(&scaled, m).unwrap();
        }
        let p = ops::softmax_last_axis(&scaled).unwrap();
        ops::bmm(&p, v).unwrap()
    }

    #[test]
    fn fused_attention_matches_reference() {
        let mut rng = SeededRng::new(31);
        let q = Tensor::randn(&[2, 5, 64], 0.5, &mut rng).unwrap();
        let k = Tensor::randn(&[2, 128, 64], 0.5, &mut rng).unwrap();
        let v = Tensor::randn(&[2, 128, 64], 0.5, &mut rng).unwrap();
        let scale = 1.0 / 8.0;
        let r = fused_attention_rows(&q, &k, &v, None, scale, &TpcConfig::default()).unwrap();
        let expect = reference_attention(&q, &k, &v, None, scale);
        assert!(r.output.max_abs_diff(&expect) < 1e-5);
    }

    #[test]
    fn masked_fused_attention_matches_reference() {
        let mut rng = SeededRng::new(32);
        let (n, m) = (64, 64);
        let q = Tensor::randn(&[1, n, 64], 0.5, &mut rng).unwrap();
        let k = Tensor::randn(&[1, m, 64], 0.5, &mut rng).unwrap();
        let v = Tensor::randn(&[1, m, 64], 0.5, &mut rng).unwrap();
        // Causal mask with the large-negative (not -inf) convention.
        let mut mk = vec![0.0f32; n * m];
        for i in 0..n {
            for j in (i + 1)..m {
                mk[i * m + j] = -1e9;
            }
        }
        let mask = Tensor::from_vec(&[n, m], mk).unwrap();
        let scale = 1.0 / 8.0;
        let r =
            fused_attention_rows(&q, &k, &v, Some(&mask), scale, &TpcConfig::default()).unwrap();
        let expect = reference_attention(&q, &k, &v, Some(&mask), scale);
        assert!(r.output.max_abs_diff(&expect) < 1e-5);
    }

    #[test]
    fn online_rescaling_survives_hostile_score_ranges() {
        // Tiles whose maxima climb steeply force repeated accumulator
        // rescaling; the online softmax must stay finite and exact.
        let (m, d) = (256, 64);
        let q = Tensor::ones(&[1, 1, d]).unwrap();
        let mut kv = vec![0.0f32; m * d];
        for (j, row) in kv.chunks_mut(d).enumerate() {
            row[0] = j as f32; // scores 0, 4, 8, ... with scale 4/d
        }
        let k = Tensor::from_vec(&[1, m, d], kv).unwrap();
        let mut rng = SeededRng::new(33);
        let v = Tensor::randn(&[1, m, d], 1.0, &mut rng).unwrap();
        let r =
            fused_attention_rows(&q, &k, &v, None, 4.0 / d as f32, &TpcConfig::default()).unwrap();
        assert!(r.output.all_finite());
        let expect = reference_attention(&q, &k, &v, None, 4.0 / d as f32);
        assert!(r.output.max_abs_diff(&expect) < 1e-4);
    }

    #[test]
    fn fused_softmax_matmul_matches_reference() {
        let mut rng = SeededRng::new(34);
        let x = Tensor::randn(&[2, 7, 128], 2.0, &mut rng).unwrap();
        let v = Tensor::randn(&[2, 128, 64], 0.5, &mut rng).unwrap();
        let r = fused_softmax_matmul_rows(&x, &v, &TpcConfig::default()).unwrap();
        let p = ops::softmax_last_axis(&x).unwrap();
        let expect = ops::bmm(&p, &v).unwrap();
        assert!(r.output.max_abs_diff(&expect) < 1e-5);
    }

    #[test]
    fn fusion_beats_the_unfused_pipeline() {
        // The whole point: keeping P in local memory must cut TPC cycles
        // versus softmax-to-HBM followed by a matmul that re-reads it.
        let cfg = TpcConfig::default();
        let mut rng = SeededRng::new(35);
        let x = Tensor::randn(&[1, 64, 256], 1.0, &mut rng).unwrap();
        let v = Tensor::randn(&[1, 256, 64], 0.5, &mut rng).unwrap();
        let fused = fused_softmax_matmul_rows(&x, &v, &cfg).unwrap();
        let (unfused_out, unfused_cycles) = unfused_softmax_matmul_cycles(&x, &v, &cfg).unwrap();
        assert!(fused.output.max_abs_diff(&unfused_out) < 1e-4);
        assert!(
            fused.critical_cycles < unfused_cycles,
            "fused {} vs unfused {}",
            fused.critical_cycles,
            unfused_cycles
        );
    }

    #[test]
    fn decode_shape_single_query_row() {
        // Decode: one query token against a long KV context, batch > 1.
        let mut rng = SeededRng::new(36);
        let q = Tensor::randn(&[4, 1, 64], 0.5, &mut rng).unwrap();
        let k = Tensor::randn(&[4, 512, 64], 0.5, &mut rng).unwrap();
        let v = Tensor::randn(&[4, 512, 64], 0.5, &mut rng).unwrap();
        let scale = 0.125;
        let r = fused_attention_rows(&q, &k, &v, None, scale, &TpcConfig::default()).unwrap();
        let expect = reference_attention(&q, &k, &v, None, scale);
        assert!(r.output.max_abs_diff(&expect) < 1e-5);
    }

    #[test]
    fn cycles_scale_linearly_in_kv_length() {
        // Unlike the unfused pipeline (whose HBM traffic is quadratic in
        // S through the materialized score matrix), the fused kernel's
        // per-row work is linear in the KV length.
        let cfg = TpcConfig::default();
        let d = 64;
        let mk = |m: usize| {
            let q = Tensor::ones(&[1, 8, d]).unwrap();
            let k = Tensor::ones(&[1, m, d]).unwrap();
            let v = Tensor::ones(&[1, m, d]).unwrap();
            fused_attention_rows(&q, &k, &v, None, 0.125, &cfg).unwrap()
        };
        let a = mk(128);
        let b = mk(256);
        let ratio = b.cycles_per_member / a.cycles_per_member;
        assert!((1.7..2.3).contains(&ratio), "ratio={ratio}");
    }
}
