//! Batched matmul forced onto the TPC cluster.
//!
//! This is the Table 2 comparison kernel: the paper implemented a TPC bmm
//! "using example code from the Habana_Custom_Kernel repository" to measure
//! how much slower the TPC is than the MME at dense GEMM. The kernel below
//! is the same naive one-output-row-per-member strategy; its measured cycle
//! counts confirm that a TPC matmul leaves most of the datapath idle (no
//! local-memory blocking, broadcast-scalar operand), which is *why* the
//! engine gap exists.

use crate::isa::{Instr::*, Kernel, VECTOR_LANES};
use crate::launch::{launch, Bindings, LaunchError, LaunchResult};
use gaudi_hw::config::TpcConfig;
use gaudi_tensor::Tensor;

/// Batched matrix product `[b, m, k] x [b, k, n] -> [b, m, n]` on the TPC
/// cluster. `n` must be 64-aligned. One index-space member computes one
/// output row.
pub fn bmm_tpc(a: &Tensor, b: &Tensor, cfg: &TpcConfig) -> Result<LaunchResult, LaunchError> {
    assert_eq!(a.shape().rank(), 3, "bmm_tpc expects rank-3 operands");
    assert_eq!(b.shape().rank(), 3, "bmm_tpc expects rank-3 operands");
    let (batch, m, k) = (a.dims()[0], a.dims()[1], a.dims()[2]);
    let (b2, k2, n) = (b.dims()[0], b.dims()[1], b.dims()[2]);
    assert_eq!(batch, b2, "batch mismatch");
    assert_eq!(k, k2, "inner-dim mismatch");
    super::require_aligned(n, "bmm_tpc");

    let jtrips = n / VECTOR_LANES;
    let program = vec![
        // S4 = a row base = (batch*m + row)*k
        MulSImm {
            dst: 4,
            a: 0,
            imm: m as f32,
        },
        AddS { dst: 4, a: 4, b: 1 },
        MulSImm {
            dst: 4,
            a: 4,
            imm: k as f32,
        },
        // S5 = b matrix base = batch * k * n
        MulSImm {
            dst: 5,
            a: 0,
            imm: (k * n) as f32,
        },
        // S8 = out row base = (batch*m + row)*n
        MulSImm {
            dst: 8,
            a: 0,
            imm: m as f32,
        },
        AddS { dst: 8, a: 8, b: 1 },
        MulSImm {
            dst: 8,
            a: 8,
            imm: n as f32,
        },
        Loop {
            counter: 6, // jv: output column offset
            start: 0.0,
            step: VECTOR_LANES as f32,
            trip: jtrips,
            body: vec![
                MovVImm { dst: 0, imm: 0.0 },
                Loop {
                    counter: 7, // kk
                    start: 0.0,
                    step: 1.0,
                    trip: k,
                    body: vec![
                        AddS { dst: 9, a: 4, b: 7 },
                        LdTnsrS {
                            dst: 10,
                            tensor: 0,
                            off: 9,
                        },
                        BcastV { dst: 1, src: 10 },
                        MulSImm {
                            dst: 11,
                            a: 7,
                            imm: n as f32,
                        },
                        AddS {
                            dst: 11,
                            a: 11,
                            b: 5,
                        },
                        AddS {
                            dst: 11,
                            a: 11,
                            b: 6,
                        },
                        LdTnsrV {
                            dst: 2,
                            tensor: 1,
                            off: 11,
                        },
                        MacV { dst: 0, a: 1, b: 2 },
                    ],
                },
                AddS {
                    dst: 12,
                    a: 8,
                    b: 6,
                },
                StTnsrV {
                    tensor: 2,
                    off: 12,
                    src: 0,
                },
            ],
        },
    ];
    let kernel = Kernel {
        name: "bmm_tpc".into(),
        index_space: vec![batch, m],
        program,
    };
    launch(
        &kernel,
        &Bindings {
            inputs: vec![a, b],
            output_dims: vec![batch, m, n],
            args: vec![],
        },
        cfg,
    )
}

/// Batched matmul with **vector-local-memory blocking**: each member first
/// stages its A row in the 80 KB local memory (one global load per element),
/// then streams B. Compared to [`bmm_tpc`], the inner loop replaces a
/// 4-cycle global scalar load with a 1-cycle local load — the optimization
/// a production TPC kernel would apply, and a measure of how much of the
/// Table 2 engine gap is *kernel* quality rather than architecture.
///
/// Requires `k % 64 == 0`, `k <= 20480` (the local capacity) and `n % 64 == 0`.
pub fn bmm_tpc_blocked(
    a: &Tensor,
    b: &Tensor,
    cfg: &TpcConfig,
) -> Result<LaunchResult, LaunchError> {
    assert_eq!(
        a.shape().rank(),
        3,
        "bmm_tpc_blocked expects rank-3 operands"
    );
    assert_eq!(
        b.shape().rank(),
        3,
        "bmm_tpc_blocked expects rank-3 operands"
    );
    let (batch, m, k) = (a.dims()[0], a.dims()[1], a.dims()[2]);
    let (b2, k2, n) = (b.dims()[0], b.dims()[1], b.dims()[2]);
    assert_eq!(batch, b2, "batch mismatch");
    assert_eq!(k, k2, "inner-dim mismatch");
    super::require_aligned(n, "bmm_tpc_blocked");
    super::require_aligned(k, "bmm_tpc_blocked (k)");
    assert!(
        k <= crate::vm::VLM_ELEMS,
        "A row must fit vector local memory"
    );

    let jtrips = n / VECTOR_LANES;
    let ktrips = k / VECTOR_LANES;
    let program = vec![
        // S4 = a row base, S5 = b base, S8 = out row base (as in bmm_tpc).
        MulSImm {
            dst: 4,
            a: 0,
            imm: m as f32,
        },
        AddS { dst: 4, a: 4, b: 1 },
        MulSImm {
            dst: 4,
            a: 4,
            imm: k as f32,
        },
        MulSImm {
            dst: 5,
            a: 0,
            imm: (k * n) as f32,
        },
        MulSImm {
            dst: 8,
            a: 0,
            imm: m as f32,
        },
        AddS { dst: 8, a: 8, b: 1 },
        MulSImm {
            dst: 8,
            a: 8,
            imm: n as f32,
        },
        // Stage the A row into local memory.
        Loop {
            counter: 13,
            start: 0.0,
            step: VECTOR_LANES as f32,
            trip: ktrips,
            body: vec![
                AddS {
                    dst: 9,
                    a: 4,
                    b: 13,
                },
                LdTnsrV {
                    dst: 3,
                    tensor: 0,
                    off: 9,
                },
                StVlmV { addr: 13, src: 3 },
            ],
        },
        Loop {
            counter: 6, // jv
            start: 0.0,
            step: VECTOR_LANES as f32,
            trip: jtrips,
            body: vec![
                MovVImm { dst: 0, imm: 0.0 },
                Loop {
                    counter: 7, // kk
                    start: 0.0,
                    step: 1.0,
                    trip: k,
                    body: vec![
                        LdVlmS { dst: 10, addr: 7 }, // A[i,kk] from local (1 cyc)
                        BcastV { dst: 1, src: 10 },
                        MulSImm {
                            dst: 11,
                            a: 7,
                            imm: n as f32,
                        },
                        AddS {
                            dst: 11,
                            a: 11,
                            b: 5,
                        },
                        AddS {
                            dst: 11,
                            a: 11,
                            b: 6,
                        },
                        LdTnsrV {
                            dst: 2,
                            tensor: 1,
                            off: 11,
                        },
                        MacV { dst: 0, a: 1, b: 2 },
                    ],
                },
                AddS {
                    dst: 12,
                    a: 8,
                    b: 6,
                },
                StTnsrV {
                    tensor: 2,
                    off: 12,
                    src: 0,
                },
            ],
        },
    ];
    let kernel = Kernel {
        name: "bmm_tpc_blocked".into(),
        index_space: vec![batch, m],
        program,
    };
    launch(
        &kernel,
        &Bindings {
            inputs: vec![a, b],
            output_dims: vec![batch, m, n],
            args: vec![],
        },
        cfg,
    )
}

/// Effective TFLOPS of a [`bmm_tpc`] launch.
pub fn effective_tflops(result: &LaunchResult, batch: usize, m: usize, k: usize, n: usize) -> f64 {
    let flops = 2.0 * batch as f64 * m as f64 * k as f64 * n as f64;
    gaudi_hw::tflops(flops, result.time_ns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaudi_tensor::ops;
    use gaudi_tensor::SeededRng;

    #[test]
    fn matches_reference_bmm() {
        let mut rng = SeededRng::new(21);
        let a = Tensor::randn(&[2, 5, 7], 0.5, &mut rng).unwrap();
        let b = Tensor::randn(&[2, 7, 64], 0.5, &mut rng).unwrap();
        let r = bmm_tpc(&a, &b, &TpcConfig::default()).unwrap();
        let expect = ops::bmm(&a, &b).unwrap();
        assert!(r.output.max_abs_diff(&expect) < 1e-4);
    }

    #[test]
    fn larger_bmm_matches_reference() {
        let mut rng = SeededRng::new(22);
        let a = Tensor::randn(&[3, 16, 32], 0.3, &mut rng).unwrap();
        let b = Tensor::randn(&[3, 32, 128], 0.3, &mut rng).unwrap();
        let r = bmm_tpc(&a, &b, &TpcConfig::default()).unwrap();
        let expect = ops::bmm(&a, &b).unwrap();
        assert!(r.output.max_abs_diff(&expect) < 1e-3);
    }

    #[test]
    fn cycles_scale_cubically() {
        let cfg = TpcConfig::default();
        let mk = |s: usize| {
            let a = Tensor::ones(&[1, s, s]).unwrap();
            let b = Tensor::ones(&[1, s, s]).unwrap();
            bmm_tpc(&a, &b, &cfg).unwrap()
        };
        let r64 = mk(64);
        let r128 = mk(128);
        // 2x size => 8x flops. Members (rows) double; per-member work 4x.
        let ratio = (r128.critical_cycles * 1.0) / r64.critical_cycles;
        assert!((6.0..10.0).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn blocked_kernel_matches_reference() {
        let mut rng = SeededRng::new(23);
        let a = Tensor::randn(&[2, 10, 64], 0.5, &mut rng).unwrap();
        let b = Tensor::randn(&[2, 64, 128], 0.5, &mut rng).unwrap();
        let r = bmm_tpc_blocked(&a, &b, &TpcConfig::default()).unwrap();
        let expect = ops::bmm(&a, &b).unwrap();
        assert!(r.output.max_abs_diff(&expect) < 1e-3);
    }

    #[test]
    fn blocking_beats_the_naive_kernel() {
        let cfg = TpcConfig::default();
        let a = Tensor::ones(&[1, 64, 128]).unwrap();
        let b = Tensor::ones(&[1, 128, 128]).unwrap();
        let naive = bmm_tpc(&a, &b, &cfg).unwrap();
        let blocked = bmm_tpc_blocked(&a, &b, &cfg).unwrap();
        assert!(blocked.output.max_abs_diff(&naive.output) < 1e-4);
        assert!(
            blocked.critical_cycles < 0.85 * naive.critical_cycles,
            "local staging must cut cycles: {} vs {}",
            blocked.critical_cycles,
            naive.critical_cycles
        );
        // ...but still nowhere near closing the ~7x MME gap: the win is a
        // constant factor, not an architectural equalizer.
        assert!(blocked.critical_cycles > 0.3 * naive.critical_cycles);
    }

    #[test]
    fn naive_kernel_is_far_from_mme_peak() {
        // The VM-measured throughput of this kernel demonstrates the paper's
        // point: a TPC matmul cannot compete with the MME.
        let cfg = TpcConfig::default();
        let a = Tensor::ones(&[1, 128, 128]).unwrap();
        let b = Tensor::ones(&[1, 128, 128]).unwrap();
        let r = bmm_tpc(&a, &b, &cfg).unwrap();
        let tf = effective_tflops(&r, 1, 128, 128, 128);
        assert!(
            tf < 2.0,
            "naive TPC matmul must stay below TPC plateau: {tf}"
        );
        assert!(tf > 0.01, "but not absurdly slow: {tf}");
    }
}
