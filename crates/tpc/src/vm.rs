//! The TPC virtual machine: functional execution plus VLIW cycle counting.

use crate::isa::{Instr, Slot, NUM_SREGS, NUM_VREGS, VECTOR_LANES};
use std::collections::HashSet;

/// A tensor bound to a kernel slot.
pub enum TensorRef<'a> {
    /// Read-only global tensor.
    In(&'a [f32]),
    /// Writable global tensor (index into the launch's output buffers).
    Out(usize),
}

/// Register file + bound tensors for one index-space member execution.
pub struct Vm<'a, 'b> {
    sregs: [f32; NUM_SREGS],
    vregs: Vec<[f32; VECTOR_LANES]>,
    /// Vector local memory: 80 KB per core = 20480 f32 elements (§2.2).
    vlm: Vec<f32>,
    tensors: &'a [TensorRef<'b>],
    outputs: &'a mut [Vec<f32>],
}

/// Vector-local-memory capacity in f32 elements (80 KB per core).
pub const VLM_ELEMS: usize = (80 << 10) / 4;

impl<'a, 'b> Vm<'a, 'b> {
    /// Fresh VM over the given tensor bindings.
    pub fn new(tensors: &'a [TensorRef<'b>], outputs: &'a mut [Vec<f32>]) -> Self {
        Vm {
            sregs: [0.0; NUM_SREGS],
            vregs: vec![[0.0; VECTOR_LANES]; NUM_VREGS],
            vlm: vec![0.0; VLM_ELEMS],
            tensors,
            outputs,
        }
    }

    /// Set a scalar register (used by the launcher for coords and args).
    pub fn set_sreg(&mut self, r: u8, v: f32) {
        self.sregs[r as usize] = v;
    }

    /// Read a scalar register (tests).
    pub fn sreg(&self, r: u8) -> f32 {
        self.sregs[r as usize]
    }

    /// Read a vector register (tests).
    pub fn vreg(&self, r: u8) -> &[f32; VECTOR_LANES] {
        &self.vregs[r as usize]
    }

    fn load(&self, slot: u8, idx: isize) -> f32 {
        let t = &self.tensors[slot as usize];
        let data: &[f32] = match t {
            TensorRef::In(d) => d,
            TensorRef::Out(i) => &self.outputs[*i],
        };
        if idx < 0 || idx as usize >= data.len() {
            0.0
        } else {
            data[idx as usize]
        }
    }

    fn store(&mut self, slot: u8, idx: isize, v: f32) {
        if let TensorRef::Out(i) = self.tensors[slot as usize] {
            let data = &mut self.outputs[i];
            if idx >= 0 && (idx as usize) < data.len() {
                data[idx as usize] = v;
            }
        }
    }

    fn offset(&self, off_reg: u8) -> isize {
        self.sregs[off_reg as usize].round() as isize
    }

    /// Execute a program (functionally).
    pub fn exec(&mut self, program: &[Instr]) {
        for instr in program {
            self.step(instr);
        }
    }

    fn step(&mut self, instr: &Instr) {
        use Instr::*;
        match instr {
            MovSImm { dst, imm } => self.sregs[*dst as usize] = *imm,
            MovSS { dst, src } => self.sregs[*dst as usize] = self.sregs[*src as usize],
            BcastV { dst, src } => {
                let v = self.sregs[*src as usize];
                self.vregs[*dst as usize] = [v; VECTOR_LANES];
            }
            MovVImm { dst, imm } => self.vregs[*dst as usize] = [*imm; VECTOR_LANES],
            LdTnsrV { dst, tensor, off } => {
                let base = self.offset(*off);
                let mut v = [0.0f32; VECTOR_LANES];
                for (l, lane) in v.iter_mut().enumerate() {
                    *lane = self.load(*tensor, base + l as isize);
                }
                self.vregs[*dst as usize] = v;
            }
            LdTnsrS { dst, tensor, off } => {
                let base = self.offset(*off);
                self.sregs[*dst as usize] = self.load(*tensor, base);
            }
            LdVlmV { dst, addr } => {
                let base = self.offset(*addr);
                assert!(
                    base >= 0 && base as usize + VECTOR_LANES <= VLM_ELEMS,
                    "vector local-memory load out of range at {base}"
                );
                let mut v = [0.0f32; VECTOR_LANES];
                v.copy_from_slice(&self.vlm[base as usize..base as usize + VECTOR_LANES]);
                self.vregs[*dst as usize] = v;
            }
            LdVlmS { dst, addr } => {
                let base = self.offset(*addr);
                assert!(
                    base >= 0 && (base as usize) < VLM_ELEMS,
                    "local-memory scalar load out of range at {base}"
                );
                self.sregs[*dst as usize] = self.vlm[base as usize];
            }
            StVlmV { addr, src } => {
                let base = self.offset(*addr);
                assert!(
                    base >= 0 && base as usize + VECTOR_LANES <= VLM_ELEMS,
                    "vector local-memory store out of range at {base}"
                );
                let v = self.vregs[*src as usize];
                self.vlm[base as usize..base as usize + VECTOR_LANES].copy_from_slice(&v);
            }
            AddS { dst, a, b } => {
                self.sregs[*dst as usize] = self.sregs[*a as usize] + self.sregs[*b as usize]
            }
            SubS { dst, a, b } => {
                self.sregs[*dst as usize] = self.sregs[*a as usize] - self.sregs[*b as usize]
            }
            MulS { dst, a, b } => {
                self.sregs[*dst as usize] = self.sregs[*a as usize] * self.sregs[*b as usize]
            }
            AddSImm { dst, a, imm } => self.sregs[*dst as usize] = self.sregs[*a as usize] + imm,
            MulSImm { dst, a, imm } => self.sregs[*dst as usize] = self.sregs[*a as usize] * imm,
            MaxS { dst, a, b } => {
                self.sregs[*dst as usize] = self.sregs[*a as usize].max(self.sregs[*b as usize])
            }
            RcpS { dst, a } => self.sregs[*dst as usize] = 1.0 / self.sregs[*a as usize],
            AddV { dst, a, b } => self.vbin(*dst, *a, *b, |x, y| x + y),
            SubV { dst, a, b } => self.vbin(*dst, *a, *b, |x, y| x - y),
            MulV { dst, a, b } => self.vbin(*dst, *a, *b, |x, y| x * y),
            MaxV { dst, a, b } => self.vbin(*dst, *a, *b, f32::max),
            MacV { dst, a, b } => {
                for l in 0..VECTOR_LANES {
                    self.vregs[*dst as usize][l] +=
                        self.vregs[*a as usize][l] * self.vregs[*b as usize][l];
                }
            }
            AddVImm { dst, a, imm } => self.vun(*dst, *a, |x| x + imm),
            MulVImm { dst, a, imm } => self.vun(*dst, *a, |x| x * imm),
            MaxVImm { dst, a, imm } => self.vun(*dst, *a, |x| x.max(*imm)),
            ExpV { dst, a } => self.vun(*dst, *a, |x| x.exp()),
            TanhV { dst, a } => self.vun(*dst, *a, |x| x.tanh()),
            LogV { dst, a } => self.vun(*dst, *a, |x| x.ln()),
            SqrtV { dst, a } => self.vun(*dst, *a, |x| x.sqrt()),
            RcpV { dst, a } => self.vun(*dst, *a, |x| 1.0 / x),
            SelGtzV { dst, cond, a, b } => {
                for l in 0..VECTOR_LANES {
                    self.vregs[*dst as usize][l] = if self.vregs[*cond as usize][l] > 0.0 {
                        self.vregs[*a as usize][l]
                    } else {
                        self.vregs[*b as usize][l]
                    };
                }
            }
            RedSumV { dst, src } => {
                self.sregs[*dst as usize] = self.vregs[*src as usize].iter().sum();
            }
            RedMaxV { dst, src } => {
                self.sregs[*dst as usize] = self.vregs[*src as usize]
                    .iter()
                    .fold(f32::NEG_INFINITY, |m, &x| m.max(x));
            }
            StTnsrV { tensor, off, src } => {
                let base = self.offset(*off);
                let v = self.vregs[*src as usize];
                for (l, lane) in v.iter().enumerate() {
                    self.store(*tensor, base + l as isize, *lane);
                }
            }
            StTnsrS { tensor, off, src } => {
                let base = self.offset(*off);
                let v = self.sregs[*src as usize];
                self.store(*tensor, base, v);
            }
            Loop {
                counter,
                start,
                step,
                trip,
                body,
            } => {
                self.sregs[*counter as usize] = *start;
                for _ in 0..*trip {
                    self.exec(body);
                    self.sregs[*counter as usize] += step;
                }
            }
        }
    }

    fn vbin(&mut self, dst: u8, a: u8, b: u8, f: impl Fn(f32, f32) -> f32) {
        for l in 0..VECTOR_LANES {
            self.vregs[dst as usize][l] = f(self.vregs[a as usize][l], self.vregs[b as usize][l]);
        }
    }

    fn vun(&mut self, dst: u8, a: u8, f: impl Fn(&f32) -> f32) {
        for l in 0..VECTOR_LANES {
            self.vregs[dst as usize][l] = f(&self.vregs[a as usize][l]);
        }
    }
}

/// Cycle count of one index-space member, using greedy VLIW bundle packing:
/// an instruction joins the current bundle unless its slot is occupied or it
/// reads/writes a register touched by the bundle; a bundle's duration is the
/// longest of its instructions. Loops cost their (static) body cycles per
/// trip plus sequencer overhead.
pub fn static_cycles(
    program: &[Instr],
    global_access_cycles: f64,
    special_func_cycles: f64,
) -> f64 {
    let mut total = 0.0;
    let mut used: HashSet<Slot> = HashSet::new();
    let mut touched: HashSet<(bool, u8)> = HashSet::new();
    let mut duration = 0.0f64;

    let flush = |used: &mut HashSet<Slot>,
                 touched: &mut HashSet<(bool, u8)>,
                 duration: &mut f64,
                 total: &mut f64| {
        *total += *duration;
        used.clear();
        touched.clear();
        *duration = 0.0;
    };

    for instr in program {
        if let Instr::Loop { trip, body, .. } = instr {
            flush(&mut used, &mut touched, &mut duration, &mut total);
            total += instr.cycles(global_access_cycles, special_func_cycles)
                + *trip as f64 * static_cycles(body, global_access_cycles, special_func_cycles);
            continue;
        }
        let slot = instr.slot();
        let conflict = used.contains(&slot)
            || instr.reads().iter().any(|r| touched.contains(r))
            || instr
                .writes()
                .map(|w| touched.contains(&w))
                .unwrap_or(false);
        if conflict {
            flush(&mut used, &mut touched, &mut duration, &mut total);
        }
        used.insert(slot);
        for r in instr.reads() {
            touched.insert(r);
        }
        if let Some(w) = instr.writes() {
            touched.insert(w);
        }
        duration = duration.max(instr.cycles(global_access_cycles, special_func_cycles));
    }
    total + duration
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Instr::*;

    #[test]
    fn scalar_and_vector_arithmetic() {
        let outs: &mut [Vec<f32>] = &mut [];
        let tensors: &[TensorRef] = &[];
        let mut vm = Vm::new(tensors, outs);
        vm.exec(&[
            MovSImm { dst: 0, imm: 3.0 },
            MovSImm { dst: 1, imm: 4.0 },
            AddS { dst: 2, a: 0, b: 1 },
            MulSImm {
                dst: 3,
                a: 2,
                imm: 2.0,
            },
            BcastV { dst: 0, src: 3 },
            AddVImm {
                dst: 1,
                a: 0,
                imm: 1.0,
            },
        ]);
        assert_eq!(vm.sreg(2), 7.0);
        assert_eq!(vm.sreg(3), 14.0);
        assert!(vm.vreg(1).iter().all(|&x| x == 15.0));
    }

    #[test]
    fn tensor_load_store_roundtrip() {
        let input: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let tensors = [TensorRef::In(&input), TensorRef::Out(0)];
        let mut outs = vec![vec![0.0f32; 100]];
        let mut vm = Vm::new(&tensors, &mut outs);
        vm.exec(&[
            MovSImm { dst: 0, imm: 10.0 },
            LdTnsrV {
                dst: 0,
                tensor: 0,
                off: 0,
            },
            MulVImm {
                dst: 0,
                a: 0,
                imm: 2.0,
            },
            StTnsrV {
                tensor: 1,
                off: 0,
                src: 0,
            },
        ]);
        assert_eq!(outs[0][10], 20.0);
        assert_eq!(outs[0][73], 146.0);
        assert_eq!(outs[0][74], 0.0); // only 64 lanes written
    }

    #[test]
    fn out_of_bounds_loads_zero_and_stores_clip() {
        let input = vec![1.0f32; 8];
        let tensors = [TensorRef::In(&input), TensorRef::Out(0)];
        let mut outs = vec![vec![9.0f32; 8]];
        let mut vm = Vm::new(&tensors, &mut outs);
        vm.exec(&[
            MovSImm { dst: 0, imm: 4.0 },
            LdTnsrV {
                dst: 0,
                tensor: 0,
                off: 0,
            },
            RedSumV { dst: 1, src: 0 },
            StTnsrV {
                tensor: 1,
                off: 0,
                src: 0,
            },
        ]);
        // lanes 0..4 loaded 1.0, rest zero-padded.
        assert_eq!(vm.sreg(1), 4.0);
        assert_eq!(outs[0][4], 1.0);
        assert_eq!(outs[0][7], 1.0);
    }

    #[test]
    fn loops_iterate_and_advance_counter() {
        let tensors: &[TensorRef] = &[];
        let outs: &mut [Vec<f32>] = &mut [];
        let mut vm = Vm::new(tensors, outs);
        // sum 0..5 into S2 using loop counter S1.
        vm.exec(&[
            MovSImm { dst: 2, imm: 0.0 },
            Loop {
                counter: 1,
                start: 0.0,
                step: 1.0,
                trip: 5,
                body: vec![AddS { dst: 2, a: 2, b: 1 }],
            },
        ]);
        assert_eq!(vm.sreg(2), 10.0);
        assert_eq!(vm.sreg(1), 5.0);
    }

    #[test]
    fn reductions_and_select() {
        let tensors: &[TensorRef] = &[];
        let outs: &mut [Vec<f32>] = &mut [];
        let mut vm = Vm::new(tensors, outs);
        vm.exec(&[
            MovVImm { dst: 0, imm: 2.0 },
            RedSumV { dst: 0, src: 0 },
            MovVImm { dst: 1, imm: -1.0 },
            MovVImm { dst: 2, imm: 5.0 },
            MovVImm { dst: 3, imm: 7.0 },
            SelGtzV {
                dst: 4,
                cond: 1,
                a: 2,
                b: 3,
            },
            RedMaxV { dst: 1, src: 4 },
        ]);
        assert_eq!(vm.sreg(0), 128.0);
        assert_eq!(vm.sreg(1), 7.0);
    }

    #[test]
    fn bundle_packing_exploits_independent_slots() {
        // Load + SPU + VPU + Store on disjoint registers -> 1 bundle of 4 cyc
        // (the load dominates).
        let prog = vec![
            MovSImm { dst: 0, imm: 0.0 }, // Load slot
            AddS { dst: 1, a: 2, b: 3 },  // SPU
            AddV { dst: 0, a: 1, b: 2 },  // VPU
            StTnsrS {
                tensor: 0,
                off: 4,
                src: 5,
            }, // Store
        ];
        assert_eq!(static_cycles(&prog, 4.0, 16.0), 4.0);
    }

    #[test]
    fn dependent_instructions_serialize() {
        let prog = vec![
            MovSImm { dst: 0, imm: 1.0 },
            AddSImm {
                dst: 1,
                a: 0,
                imm: 1.0,
            }, // reads S0 written in bundle
            AddSImm {
                dst: 2,
                a: 1,
                imm: 1.0,
            }, // reads S1
        ];
        assert_eq!(static_cycles(&prog, 4.0, 16.0), 3.0);
    }

    #[test]
    fn loop_cycles_scale_with_trip_count() {
        let body = vec![AddV { dst: 0, a: 1, b: 2 }];
        let prog = vec![Loop {
            counter: 1,
            start: 0.0,
            step: 1.0,
            trip: 10,
            body,
        }];
        // 2 (sequencer) + 10 * 1.
        assert_eq!(static_cycles(&prog, 4.0, 16.0), 12.0);
    }

    #[test]
    fn same_slot_instructions_serialize() {
        let prog = vec![
            AddV { dst: 0, a: 1, b: 2 },
            AddV { dst: 3, a: 4, b: 5 }, // independent but same VPU slot
        ];
        assert_eq!(static_cycles(&prog, 4.0, 16.0), 2.0);
    }
}
