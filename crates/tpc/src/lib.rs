//! # gaudi-tpc
//!
//! A reproduction of the Gaudi **TPC programming model** (§2.2 of the paper)
//! as a Rust-embedded kernel IR plus a functional, cycle-counting virtual
//! machine:
//!
//! * **VLIW, four slots** — every instruction is classed Load / SPU / VPU /
//!   Store; the VM packs independent instructions into bundles exactly the
//!   way the TPC's four functional slots would issue them, so cycle counts
//!   reflect the architecture's instruction-level parallelism.
//! * **2048-bit SIMD** — vector registers hold 64 `f32` lanes.
//! * **Tensor addressing** — kernels access global memory through bound
//!   tensor slots; a 2048-bit global access occupies its slot for four
//!   cycles (the datasheet figure quoted in the paper).
//! * **Index spaces** — like CUDA grids, an index space divides work across
//!   the eight TPC cores; the host-glue launcher assigns members to cores
//!   and the kernel time is the slowest core's cycle count.
//!
//! The [`kernels`] module is the analog of Habana's `Habana_Custom_Kernel`
//! repository: reference kernels (element-wise, reductions, softmax, batched
//! matmul, layernorm) written in the IR, used both to validate the analytic
//! TPC cost model of `gaudi-hw` and to regenerate Table 2's TPC column.

pub mod isa;
pub mod kernels;
pub mod launch;
pub mod vm;

pub use isa::{Instr, Kernel, SReg, Slot, TensorSlot, VReg, VECTOR_LANES};
pub use launch::{launch, Bindings, LaunchError, LaunchResult};
