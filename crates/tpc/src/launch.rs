//! Host glue: binds tensors, splits the index space over the eight TPC
//! cores, executes members, and aggregates cycle counts into a launch time.

use crate::isa::{Kernel, ARG_REG_BASE, COORD_REGS};
use crate::vm::{static_cycles, TensorRef, Vm};
use gaudi_hw::config::TpcConfig;
use gaudi_tensor::{Tensor, TensorError};

/// Tensor bindings and scalar arguments for one kernel launch.
pub struct Bindings<'a> {
    /// Read-only global tensors, bound to slots `0..inputs.len()`.
    pub inputs: Vec<&'a Tensor>,
    /// Output tensor shape; bound to slot `inputs.len()`.
    pub output_dims: Vec<usize>,
    /// Scalar launch arguments, loaded into `S16, S17, ...` per member.
    pub args: Vec<f32>,
}

/// Launch failures.
#[derive(Debug, Clone, PartialEq)]
pub enum LaunchError {
    /// Output shape invalid.
    Shape(TensorError),
    /// The index space has no members or more than 3 dims.
    BadIndexSpace,
    /// Too many scalar args for the register file.
    TooManyArgs,
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::Shape(e) => write!(f, "bad output shape: {e}"),
            LaunchError::BadIndexSpace => write!(f, "index space must have 1-3 non-empty dims"),
            LaunchError::TooManyArgs => write!(f, "too many scalar launch arguments"),
        }
    }
}

impl std::error::Error for LaunchError {}

impl From<TensorError> for LaunchError {
    fn from(e: TensorError) -> Self {
        LaunchError::Shape(e)
    }
}

/// Result of a simulated kernel launch.
#[derive(Debug, Clone)]
pub struct LaunchResult {
    /// The computed output tensor.
    pub output: Tensor,
    /// Cycle count of the slowest core (determines kernel latency).
    pub critical_cycles: f64,
    /// Cycle count per core.
    pub per_core_cycles: Vec<f64>,
    /// Wall time of the launch in nanoseconds (cycles / clock + overhead).
    pub time_ns: f64,
    /// Static cycles of one index-space member.
    pub cycles_per_member: f64,
}

/// Execute `kernel` on the simulated TPC cluster.
///
/// Functionally, every index-space member runs exactly once (members are
/// distributed round-robin over cores, which must not affect results since
/// members write disjoint regions). Timing-wise, the kernel completes when
/// the most-loaded core finishes.
///
/// ```
/// use gaudi_hw::config::TpcConfig;
/// use gaudi_tpc::{launch, Bindings, Instr::*, Kernel};
///
/// // One member per 64-lane vector: out[i] = 2.0 everywhere.
/// let kernel = Kernel {
///     name: "twos".into(),
///     index_space: vec![4],
///     program: vec![
///         MulSImm { dst: 4, a: 0, imm: 64.0 },
///         MovVImm { dst: 0, imm: 2.0 },
///         StTnsrV { tensor: 0, off: 4, src: 0 },
///     ],
/// };
/// let b = Bindings { inputs: vec![], output_dims: vec![256], args: vec![] };
/// let r = launch(&kernel, &b, &TpcConfig::default()).unwrap();
/// assert!(r.output.data().iter().all(|&v| v == 2.0));
/// assert!(r.time_ns > 0.0);
/// ```
pub fn launch(
    kernel: &Kernel,
    bindings: &Bindings<'_>,
    cfg: &TpcConfig,
) -> Result<LaunchResult, LaunchError> {
    if kernel.index_space.is_empty() || kernel.index_space.len() > 3 || kernel.members() == 0 {
        return Err(LaunchError::BadIndexSpace);
    }
    if ARG_REG_BASE as usize + bindings.args.len() > 32 {
        return Err(LaunchError::TooManyArgs);
    }

    let out = Tensor::zeros(&bindings.output_dims)?;
    let mut outputs = vec![out.into_vec()];

    let mut tensors: Vec<TensorRef> = bindings
        .inputs
        .iter()
        .map(|t| TensorRef::In(t.data()))
        .collect();
    tensors.push(TensorRef::Out(0));

    // Execute every member (functional semantics).
    for member in 0..kernel.members() {
        let coords = kernel.member_coords(member);
        let mut vm = Vm::new(&tensors, &mut outputs);
        for (i, &c) in coords.iter().enumerate() {
            vm.set_sreg(COORD_REGS[i], c as f32);
        }
        for (i, &a) in bindings.args.iter().enumerate() {
            vm.set_sreg(ARG_REG_BASE + i as u8, a);
        }
        vm.exec(&kernel.program);
    }

    // Timing: static per-member cycles, members round-robin over cores.
    let cycles_per_member = static_cycles(
        &kernel.program,
        cfg.global_access_cycles,
        cfg.special_func_cycles,
    );
    let members = kernel.members();
    let cores = cfg.num_cores.max(1);
    let mut per_core_cycles = vec![0.0; cores];
    for (c, cycles) in per_core_cycles.iter_mut().enumerate() {
        let members_on_core = members / cores + usize::from(c < members % cores);
        *cycles = members_on_core as f64 * cycles_per_member;
    }
    let critical_cycles = per_core_cycles.iter().copied().fold(0.0, f64::max);
    let time_ns = critical_cycles / cfg.clock_ghz + cfg.launch_overhead_ns;

    let data = outputs.pop().expect("single output buffer");
    let output = Tensor::from_vec(&bindings.output_dims, data)?;
    Ok(LaunchResult {
        output,
        critical_cycles,
        per_core_cycles,
        time_ns,
        cycles_per_member,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Instr::*;

    /// Kernel writing `coord0 + 100*coord1` at linear offset of each member.
    fn probe_kernel(d0: usize, d1: usize) -> Kernel {
        Kernel {
            name: "probe".into(),
            index_space: vec![d0, d1],
            program: vec![
                // off = c0 * d1 + c1
                MulSImm {
                    dst: 4,
                    a: 0,
                    imm: d1 as f32,
                },
                AddS { dst: 4, a: 4, b: 1 },
                // val = c0 + 100*c1
                MulSImm {
                    dst: 5,
                    a: 1,
                    imm: 100.0,
                },
                AddS { dst: 5, a: 5, b: 0 },
                StTnsrS {
                    tensor: 0,
                    off: 4,
                    src: 5,
                },
            ],
        }
    }

    #[test]
    fn every_member_executes_once() {
        let k = probe_kernel(3, 4);
        let b = Bindings {
            inputs: vec![],
            output_dims: vec![3, 4],
            args: vec![],
        };
        let r = launch(&k, &b, &TpcConfig::default()).unwrap();
        for c0 in 0..3 {
            for c1 in 0..4 {
                assert_eq!(r.output.at(&[c0, c1]), (c0 + 100 * c1) as f32);
            }
        }
    }

    #[test]
    fn load_balancing_over_eight_cores() {
        let k = probe_kernel(4, 4); // 16 members over 8 cores = 2 each
        let b = Bindings {
            inputs: vec![],
            output_dims: vec![4, 4],
            args: vec![],
        };
        let r = launch(&k, &b, &TpcConfig::default()).unwrap();
        assert!(r
            .per_core_cycles
            .iter()
            .all(|&c| c == 2.0 * r.cycles_per_member));
        assert_eq!(r.critical_cycles, 2.0 * r.cycles_per_member);
    }

    #[test]
    fn uneven_member_count_loads_first_cores_more() {
        let k = probe_kernel(3, 3); // 9 members over 8 cores
        let b = Bindings {
            inputs: vec![],
            output_dims: vec![3, 3],
            args: vec![],
        };
        let r = launch(&k, &b, &TpcConfig::default()).unwrap();
        assert_eq!(r.per_core_cycles[0], 2.0 * r.cycles_per_member);
        assert_eq!(r.per_core_cycles[7], r.cycles_per_member);
    }

    #[test]
    fn args_reach_registers() {
        let k = Kernel {
            name: "args".into(),
            index_space: vec![1],
            program: vec![
                MovSImm { dst: 4, imm: 0.0 },
                StTnsrS {
                    tensor: 0,
                    off: 4,
                    src: ARG_REG_BASE,
                },
            ],
        };
        let b = Bindings {
            inputs: vec![],
            output_dims: vec![1],
            args: vec![42.5],
        };
        let r = launch(&k, &b, &TpcConfig::default()).unwrap();
        assert_eq!(r.output.data()[0], 42.5);
    }

    #[test]
    fn rejects_bad_index_space() {
        let mut k = probe_kernel(2, 2);
        k.index_space = vec![];
        let b = Bindings {
            inputs: vec![],
            output_dims: vec![4],
            args: vec![],
        };
        assert_eq!(
            launch(&k, &b, &TpcConfig::default()).unwrap_err(),
            LaunchError::BadIndexSpace
        );
        let mut k2 = probe_kernel(2, 2);
        k2.index_space = vec![2, 0];
        assert_eq!(
            launch(&k2, &b, &TpcConfig::default()).unwrap_err(),
            LaunchError::BadIndexSpace
        );
    }

    #[test]
    fn launch_time_includes_overhead() {
        let k = probe_kernel(1, 1);
        let b = Bindings {
            inputs: vec![],
            output_dims: vec![1, 1],
            args: vec![],
        };
        let cfg = TpcConfig::default();
        let r = launch(&k, &b, &cfg).unwrap();
        assert!(r.time_ns >= cfg.launch_overhead_ns);
    }
}
